//! Strong-Wolfe line search used by the quasi-Newton optimiser.
//!
//! The search works entirely in caller-provided buffers: candidate points are
//! formed in a scratch slice and gradients are written through
//! [`Objective::value_and_gradient_into`], so a full search performs no heap
//! allocations.

use crate::objective::{dot, Objective};

/// Outcome of a line search along a descent direction. The gradient at the
/// accepted point is left in the `gradient` buffer passed to
/// [`strong_wolfe_into`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct LineSearchOutcome {
    /// Accepted step length.
    pub step: f64,
    /// Objective value at the accepted point.
    pub value: f64,
    /// Number of objective evaluations consumed.
    pub evaluations: usize,
}

/// Strong-Wolfe line search (Nocedal & Wright, Algorithms 3.5/3.6 with
/// bisection-based zoom).
///
/// `x` is the current point, `direction` a descent direction, `f0`/`g0` the
/// value and gradient at `x`. `point` and `gradient` are scratch buffers of
/// dimension `x.len()`; on success `gradient` holds the gradient at the
/// accepted point. Returns `None` if no acceptable step is found within the
/// evaluation budget (the caller then falls back to a small step; `gradient`
/// holds the last evaluated candidate's gradient in that case).
#[allow(clippy::too_many_arguments)]
pub(crate) fn strong_wolfe_into(
    objective: &dyn Objective,
    x: &[f64],
    direction: &[f64],
    f0: f64,
    g0: &[f64],
    initial_step: f64,
    point: &mut [f64],
    gradient: &mut [f64],
) -> Option<LineSearchOutcome> {
    const C1: f64 = 1e-4;
    const C2: f64 = 0.9;
    const MAX_EVALS: usize = 40;

    let d_phi0 = dot(g0, direction);
    if d_phi0 >= 0.0 {
        return None; // not a descent direction
    }

    // Evaluates φ(α) = f(x + α·d), leaving the gradient in `gradient` and
    // returning (value, slope).
    let eval = |alpha: f64, point: &mut [f64], gradient: &mut [f64]| -> (f64, f64) {
        for ((p, xi), di) in point.iter_mut().zip(x.iter()).zip(direction.iter()) {
            *p = xi + alpha * di;
        }
        let value = objective.value_and_gradient_into(point, gradient);
        (value, dot(gradient, direction))
    };

    let mut evaluations = 0usize;
    let mut alpha_prev = 0.0;
    let mut f_prev = f0;
    let mut alpha = initial_step.max(1e-12);
    let mut zoom_bounds: Option<(f64, f64, f64)> = None; // (lo, f_lo, hi)

    for i in 0..10 {
        let (f_alpha, slope_alpha) = eval(alpha, point, gradient);
        evaluations += 1;
        if f_alpha > f0 + C1 * alpha * d_phi0 || (i > 0 && f_alpha >= f_prev) {
            zoom_bounds = Some((alpha_prev, f_prev, alpha));
            break;
        }
        if slope_alpha.abs() <= -C2 * d_phi0 {
            return Some(LineSearchOutcome {
                step: alpha,
                value: f_alpha,
                evaluations,
            });
        }
        if slope_alpha >= 0.0 {
            zoom_bounds = Some((alpha, f_alpha, alpha_prev));
            break;
        }
        alpha_prev = alpha;
        f_prev = f_alpha;
        alpha *= 2.0;
    }

    let (mut lo, mut f_lo, mut hi) = zoom_bounds?;
    while evaluations < MAX_EVALS {
        let mid = 0.5 * (lo + hi);
        let (f_mid, slope_mid) = eval(mid, point, gradient);
        evaluations += 1;
        if f_mid > f0 + C1 * mid * d_phi0 || f_mid >= f_lo {
            hi = mid;
        } else {
            if slope_mid.abs() <= -C2 * d_phi0 {
                return Some(LineSearchOutcome {
                    step: mid,
                    value: f_mid,
                    evaluations,
                });
            }
            if slope_mid * (hi - lo) >= 0.0 {
                hi = lo;
            }
            lo = mid;
            f_lo = f_mid;
        }
        if (hi - lo).abs() < 1e-14 {
            // Interval collapsed; accept the best point found so far (its
            // gradient is already in the buffer).
            return Some(LineSearchOutcome {
                step: mid,
                value: f_mid,
                evaluations,
            });
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::FnObjective;

    fn quadratic() -> impl Objective {
        FnObjective::new(
            2,
            |x: &[f64]| x.iter().map(|v| v * v).sum::<f64>(),
            |x: &[f64]| x.iter().map(|v| 2.0 * v).collect(),
        )
    }

    fn search(
        obj: &dyn Objective,
        x: &[f64],
        direction: &[f64],
        gradient: &mut [f64],
    ) -> Option<LineSearchOutcome> {
        let f0 = obj.value(x);
        let g0 = obj.gradient(x);
        let mut point = vec![0.0; x.len()];
        strong_wolfe_into(obj, x, direction, f0, &g0, 1.0, &mut point, gradient)
    }

    #[test]
    fn finds_wolfe_step_on_quadratic() {
        let obj = quadratic();
        let x = vec![1.0, 1.0];
        let direction: Vec<f64> = obj.gradient(&x).iter().map(|v| -v).collect();
        let mut gradient = vec![0.0; 2];
        let result = search(&obj, &x, &direction, &mut gradient).unwrap();
        assert!(result.value < obj.value(&x));
        assert!(result.step > 0.0);
        // The gradient buffer holds ∇f at the accepted point.
        let accepted: Vec<f64> = x
            .iter()
            .zip(direction.iter())
            .map(|(xi, di)| xi + result.step * di)
            .collect();
        assert_eq!(gradient, obj.gradient(&accepted));
    }

    #[test]
    fn rejects_ascent_direction() {
        let obj = quadratic();
        let x = vec![1.0, 1.0];
        let direction = obj.gradient(&x); // ascent
        let mut gradient = vec![0.0; 2];
        assert!(search(&obj, &x, &direction, &mut gradient).is_none());
    }

    #[test]
    fn satisfies_armijo_condition() {
        let obj = quadratic();
        let x = vec![3.0, -2.0];
        let g0 = obj.gradient(&x);
        let direction: Vec<f64> = g0.iter().map(|v| -v).collect();
        let f0 = obj.value(&x);
        let d_phi0: f64 = g0.iter().zip(direction.iter()).map(|(a, b)| a * b).sum();
        let mut gradient = vec![0.0; 2];
        let result = search(&obj, &x, &direction, &mut gradient).unwrap();
        assert!(result.value <= f0 + 1e-4 * result.step * d_phi0 + 1e-12);
    }
}

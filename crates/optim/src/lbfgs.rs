//! Limited-memory BFGS, the optimiser the paper uses for EnQode's symbolic
//! loss.

use crate::line_search::strong_wolfe_into;
use crate::objective::{dot, norm, Objective, OptimizeResult, Optimizer};

/// Limited-memory BFGS with a strong-Wolfe line search.
///
/// This mirrors the role of `scipy.optimize.minimize(method="L-BFGS-B")` in
/// the paper (without bound constraints, which EnQode does not need: the `Rz`
/// angles are unconstrained and 2π-periodic).
///
/// All working storage — the curvature-pair ring buffers, the two-loop
/// recursion scratch, and the line-search buffers — lives in a
/// [`LbfgsWorkspace`] allocated once per [`Optimizer::minimize`] call (or
/// reused across calls via [`Lbfgs::minimize_with`]); the iteration loop
/// itself performs **zero heap allocations**.
///
/// # Examples
///
/// ```
/// use enq_optim::{FnObjective, Lbfgs, Optimizer};
///
/// // Minimise a shifted quadratic.
/// let obj = FnObjective::new(
///     2,
///     |x| (x[0] - 3.0).powi(2) + 2.0 * (x[1] + 1.0).powi(2),
///     |x| vec![2.0 * (x[0] - 3.0), 4.0 * (x[1] + 1.0)],
/// );
/// let result = Lbfgs::default().minimize(&obj, &[0.0, 0.0]);
/// assert!(result.converged);
/// assert!((result.x[0] - 3.0).abs() < 1e-6);
/// assert!((result.x[1] + 1.0).abs() < 1e-6);
/// ```
#[derive(Debug, Clone)]
pub struct Lbfgs {
    /// Number of curvature pairs kept for the inverse-Hessian approximation.
    pub memory: usize,
    /// Maximum number of outer iterations.
    pub max_iterations: usize,
    /// Convergence threshold on the gradient norm.
    pub gradient_tolerance: f64,
    /// Convergence threshold on the relative objective decrease.
    pub value_tolerance: f64,
}

impl Default for Lbfgs {
    fn default() -> Self {
        Self {
            memory: 10,
            max_iterations: 200,
            gradient_tolerance: 1e-8,
            value_tolerance: 1e-12,
        }
    }
}

impl Lbfgs {
    /// Creates an optimiser with the given iteration budget, keeping the
    /// other parameters at their defaults.
    pub fn with_max_iterations(max_iterations: usize) -> Self {
        Self {
            max_iterations,
            ..Self::default()
        }
    }
}

/// Preallocated working storage for [`Lbfgs`].
///
/// Create one with [`LbfgsWorkspace::new`] and pass it to
/// [`Lbfgs::minimize_with`] to run many optimisations (EnQode: one per
/// restart, one per embedded sample) without reallocating; buffers are
/// resized only when the problem dimension or memory depth grows.
#[derive(Debug, Clone, Default)]
pub struct LbfgsWorkspace {
    x: Vec<f64>,
    g: Vec<f64>,
    new_x: Vec<f64>,
    new_g: Vec<f64>,
    q: Vec<f64>,
    direction: Vec<f64>,
    point: Vec<f64>,
    alphas: Vec<f64>,
    /// Curvature-pair ring buffers (`memory` slots of dimension `n` each).
    s_hist: Vec<Vec<f64>>,
    y_hist: Vec<Vec<f64>>,
    rho_hist: Vec<f64>,
}

impl LbfgsWorkspace {
    /// Creates an empty workspace; buffers are sized on first use.
    pub fn new() -> Self {
        Self::default()
    }

    fn ensure(&mut self, n: usize, memory: usize) {
        let resize = |v: &mut Vec<f64>| {
            v.clear();
            v.resize(n, 0.0);
        };
        resize(&mut self.x);
        resize(&mut self.g);
        resize(&mut self.new_x);
        resize(&mut self.new_g);
        resize(&mut self.q);
        resize(&mut self.direction);
        resize(&mut self.point);
        self.alphas.clear();
        self.alphas.resize(memory, 0.0);
        self.rho_hist.clear();
        self.rho_hist.resize(memory, 0.0);
        self.s_hist.resize_with(memory, Vec::new);
        self.y_hist.resize_with(memory, Vec::new);
        for v in self.s_hist.iter_mut().chain(self.y_hist.iter_mut()) {
            resize(v);
        }
    }
}

impl Lbfgs {
    /// Minimises `objective` from `x0` reusing the given workspace, so
    /// repeated optimisations (restarts, per-sample fine-tuning) allocate
    /// nothing beyond the returned result vector.
    ///
    /// # Panics
    ///
    /// Panics if `x0.len()` differs from the objective dimension.
    pub fn minimize_with(
        &self,
        objective: &dyn Objective,
        x0: &[f64],
        ws: &mut LbfgsWorkspace,
    ) -> OptimizeResult {
        let n = objective.dimension();
        assert_eq!(x0.len(), n, "initial point has wrong dimension");
        let memory = self.memory.max(1);
        ws.ensure(n, memory);

        ws.x.copy_from_slice(x0);
        let mut f = objective.value_and_gradient_into(&ws.x, &mut ws.g);
        let mut evaluations = 1usize;

        // Ring-buffer state: `hist_len` pairs, oldest at `hist_head`.
        let mut hist_len = 0usize;
        let mut hist_head = 0usize;

        let mut converged = false;
        let mut iterations = 0usize;

        for iter in 0..self.max_iterations {
            iterations = iter + 1;
            let g_norm = norm(&ws.g);
            if g_norm < self.gradient_tolerance {
                converged = true;
                break;
            }

            // Two-loop recursion for the search direction d = -H·g.
            ws.q.copy_from_slice(&ws.g);
            for k in (0..hist_len).rev() {
                let idx = (hist_head + k) % memory;
                let rho = ws.rho_hist[idx];
                let alpha = rho * dot(&ws.s_hist[idx], &ws.q);
                for (qi, yi) in ws.q.iter_mut().zip(ws.y_hist[idx].iter()) {
                    *qi -= alpha * yi;
                }
                ws.alphas[k] = alpha;
            }
            // Initial Hessian scaling γ = s·y / y·y of the most recent pair.
            let gamma = if hist_len > 0 {
                let idx = (hist_head + hist_len - 1) % memory;
                let yy = dot(&ws.y_hist[idx], &ws.y_hist[idx]);
                if yy > 1e-16 {
                    dot(&ws.s_hist[idx], &ws.y_hist[idx]) / yy
                } else {
                    1.0
                }
            } else {
                1.0
            };
            for qi in ws.q.iter_mut() {
                *qi *= gamma;
            }
            for k in 0..hist_len {
                let idx = (hist_head + k) % memory;
                let rho = ws.rho_hist[idx];
                let beta = rho * dot(&ws.y_hist[idx], &ws.q);
                let alpha = ws.alphas[k];
                for (qi, si) in ws.q.iter_mut().zip(ws.s_hist[idx].iter()) {
                    *qi += (alpha - beta) * si;
                }
            }
            for (di, qi) in ws.direction.iter_mut().zip(ws.q.iter()) {
                *di = -qi;
            }

            // Line search.
            let initial_step = if hist_len == 0 {
                (1.0 / norm(&ws.direction).max(1e-12)).min(1.0)
            } else {
                1.0
            };
            let search = strong_wolfe_into(
                objective,
                &ws.x,
                &ws.direction,
                f,
                &ws.g,
                initial_step,
                &mut ws.point,
                &mut ws.new_g,
            );
            let (step, new_f) = match search {
                Some(outcome) => {
                    evaluations += outcome.evaluations;
                    (outcome.step, outcome.value)
                }
                None => {
                    // Fall back to a conservative gradient step.
                    let step = 1e-4 / norm(&ws.g).max(1.0);
                    for ((p, xi), gi) in ws.point.iter_mut().zip(ws.x.iter()).zip(ws.g.iter()) {
                        *p = xi - step * gi;
                    }
                    let cf = objective.value_and_gradient_into(&ws.point, &mut ws.new_g);
                    evaluations += 1;
                    if cf >= f {
                        converged = true; // cannot make progress
                        break;
                    }
                    ws.x.copy_from_slice(&ws.point);
                    std::mem::swap(&mut ws.g, &mut ws.new_g);
                    f = cf;
                    continue;
                }
            };

            for ((nx, xi), di) in ws
                .new_x
                .iter_mut()
                .zip(ws.x.iter())
                .zip(ws.direction.iter())
            {
                *nx = xi + step * di;
            }
            // Curvature pair s = new_x − x, y = new_g − g; only stored (into
            // a recycled ring-buffer slot) when it carries curvature.
            let mut sy = 0.0;
            for i in 0..n {
                sy += (ws.new_x[i] - ws.x[i]) * (ws.new_g[i] - ws.g[i]);
            }
            if sy > 1e-12 {
                let slot = if hist_len == memory {
                    let oldest = hist_head;
                    hist_head = (hist_head + 1) % memory;
                    oldest
                } else {
                    (hist_head + hist_len) % memory
                };
                let s_buf = &mut ws.s_hist[slot];
                let y_buf = &mut ws.y_hist[slot];
                for i in 0..n {
                    s_buf[i] = ws.new_x[i] - ws.x[i];
                    y_buf[i] = ws.new_g[i] - ws.g[i];
                }
                ws.rho_hist[slot] = 1.0 / sy;
                if hist_len < memory {
                    hist_len += 1;
                }
            }

            let value_change = (f - new_f).abs();
            std::mem::swap(&mut ws.x, &mut ws.new_x);
            std::mem::swap(&mut ws.g, &mut ws.new_g);
            f = new_f;
            if value_change < self.value_tolerance * (1.0 + f.abs()) {
                converged = true;
                break;
            }
        }

        OptimizeResult {
            gradient_norm: norm(&ws.g),
            x: ws.x.clone(),
            value: f,
            iterations,
            evaluations,
            converged,
        }
    }
}

impl Optimizer for Lbfgs {
    fn minimize(&self, objective: &dyn Objective, x0: &[f64]) -> OptimizeResult {
        let mut ws = LbfgsWorkspace::new();
        self.minimize_with(objective, x0, &mut ws)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::FnObjective;

    fn rosenbrock() -> impl Objective {
        FnObjective::new(
            2,
            |x: &[f64]| (1.0 - x[0]).powi(2) + 100.0 * (x[1] - x[0] * x[0]).powi(2),
            |x: &[f64]| {
                vec![
                    -2.0 * (1.0 - x[0]) - 400.0 * x[0] * (x[1] - x[0] * x[0]),
                    200.0 * (x[1] - x[0] * x[0]),
                ]
            },
        )
    }

    #[test]
    fn minimises_rosenbrock() {
        let result = Lbfgs::default().minimize(&rosenbrock(), &[-1.2, 1.0]);
        assert!(result.converged, "did not converge: {result:?}");
        assert!((result.x[0] - 1.0).abs() < 1e-5, "{:?}", result.x);
        assert!((result.x[1] - 1.0).abs() < 1e-5);
        assert!(result.value < 1e-9);
    }

    #[test]
    fn minimises_high_dimensional_quadratic() {
        let n = 50;
        let obj = FnObjective::new(
            n,
            move |x: &[f64]| {
                x.iter()
                    .enumerate()
                    .map(|(i, v)| (i as f64 + 1.0) * (v - 1.0) * (v - 1.0))
                    .sum()
            },
            move |x: &[f64]| {
                x.iter()
                    .enumerate()
                    .map(|(i, v)| 2.0 * (i as f64 + 1.0) * (v - 1.0))
                    .collect()
            },
        );
        let result = Lbfgs::default().minimize(&obj, &vec![0.0; n]);
        assert!(result.converged);
        for v in &result.x {
            assert!((v - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn minimises_trigonometric_objective() {
        // Similar structure to EnQode's fidelity loss: 1 - |Σ cos terms|².
        let obj = FnObjective::new(
            3,
            |x: &[f64]| 3.0 - x.iter().map(|v| v.cos()).sum::<f64>(),
            |x: &[f64]| x.iter().map(|v| v.sin()).collect(),
        );
        let result = Lbfgs::default().minimize(&obj, &[0.5, -0.4, 0.3]);
        assert!(result.converged);
        assert!(result.value < 1e-8);
        for v in &result.x {
            assert!(v.abs() < 1e-4);
        }
    }

    #[test]
    fn starting_at_minimum_converges_immediately() {
        let obj = FnObjective::new(
            2,
            |x: &[f64]| x.iter().map(|v| v * v).sum::<f64>(),
            |x: &[f64]| x.iter().map(|v| 2.0 * v).collect(),
        );
        let result = Lbfgs::default().minimize(&obj, &[0.0, 0.0]);
        assert!(result.converged);
        assert_eq!(result.iterations, 1);
        assert!(result.value < 1e-15);
    }

    #[test]
    fn respects_iteration_budget() {
        let result = Lbfgs {
            max_iterations: 2,
            gradient_tolerance: 1e-20,
            value_tolerance: 0.0,
            memory: 5,
        }
        .minimize(&rosenbrock(), &[-1.2, 1.0]);
        assert!(result.iterations <= 2);
    }

    #[test]
    fn workspace_reuse_matches_fresh_runs() {
        // Reusing one workspace across problems of different dimensions must
        // not change any result.
        let mut ws = LbfgsWorkspace::new();
        let optimizer = Lbfgs::default();
        let big = FnObjective::new(
            6,
            |x: &[f64]| x.iter().map(|v| (v - 2.0) * (v - 2.0)).sum::<f64>(),
            |x: &[f64]| x.iter().map(|v| 2.0 * (v - 2.0)).collect(),
        );
        let reused_big = optimizer.minimize_with(&big, &[0.0; 6], &mut ws);
        let reused_small = optimizer.minimize_with(&rosenbrock(), &[-1.2, 1.0], &mut ws);
        let fresh_big = optimizer.minimize(&big, &[0.0; 6]);
        let fresh_small = optimizer.minimize(&rosenbrock(), &[-1.2, 1.0]);
        assert_eq!(reused_big, fresh_big);
        assert_eq!(reused_small, fresh_small);
    }

    #[test]
    #[should_panic]
    fn wrong_dimension_panics() {
        let obj = FnObjective::new(
            2,
            |x: &[f64]| x.iter().sum(),
            |x: &[f64]| vec![1.0; x.len()],
        );
        let _ = Lbfgs::default().minimize(&obj, &[0.0; 3]);
    }
}

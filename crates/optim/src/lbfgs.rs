//! Limited-memory BFGS, the optimiser the paper uses for EnQode's symbolic
//! loss.

use crate::line_search::strong_wolfe;
use crate::objective::{dot, norm, Objective, OptimizeResult, Optimizer};
use std::collections::VecDeque;

/// Limited-memory BFGS with a strong-Wolfe line search.
///
/// This mirrors the role of `scipy.optimize.minimize(method="L-BFGS-B")` in
/// the paper (without bound constraints, which EnQode does not need: the `Rz`
/// angles are unconstrained and 2π-periodic).
///
/// # Examples
///
/// ```
/// use enq_optim::{FnObjective, Lbfgs, Optimizer};
///
/// // Minimise a shifted quadratic.
/// let obj = FnObjective::new(
///     2,
///     |x| (x[0] - 3.0).powi(2) + 2.0 * (x[1] + 1.0).powi(2),
///     |x| vec![2.0 * (x[0] - 3.0), 4.0 * (x[1] + 1.0)],
/// );
/// let result = Lbfgs::default().minimize(&obj, &[0.0, 0.0]);
/// assert!(result.converged);
/// assert!((result.x[0] - 3.0).abs() < 1e-6);
/// assert!((result.x[1] + 1.0).abs() < 1e-6);
/// ```
#[derive(Debug, Clone)]
pub struct Lbfgs {
    /// Number of curvature pairs kept for the inverse-Hessian approximation.
    pub memory: usize,
    /// Maximum number of outer iterations.
    pub max_iterations: usize,
    /// Convergence threshold on the gradient norm.
    pub gradient_tolerance: f64,
    /// Convergence threshold on the relative objective decrease.
    pub value_tolerance: f64,
}

impl Default for Lbfgs {
    fn default() -> Self {
        Self {
            memory: 10,
            max_iterations: 200,
            gradient_tolerance: 1e-8,
            value_tolerance: 1e-12,
        }
    }
}

impl Lbfgs {
    /// Creates an optimiser with the given iteration budget, keeping the
    /// other parameters at their defaults.
    pub fn with_max_iterations(max_iterations: usize) -> Self {
        Self {
            max_iterations,
            ..Self::default()
        }
    }
}

impl Optimizer for Lbfgs {
    fn minimize(&self, objective: &dyn Objective, x0: &[f64]) -> OptimizeResult {
        let n = objective.dimension();
        assert_eq!(x0.len(), n, "initial point has wrong dimension");

        let mut x = x0.to_vec();
        let (mut f, mut g) = objective.value_and_gradient(&x);
        let mut evaluations = 1usize;

        let mut s_history: VecDeque<Vec<f64>> = VecDeque::with_capacity(self.memory);
        let mut y_history: VecDeque<Vec<f64>> = VecDeque::with_capacity(self.memory);
        let mut rho_history: VecDeque<f64> = VecDeque::with_capacity(self.memory);

        let mut converged = false;
        let mut iterations = 0usize;

        for iter in 0..self.max_iterations {
            iterations = iter + 1;
            let g_norm = norm(&g);
            if g_norm < self.gradient_tolerance {
                converged = true;
                break;
            }

            // Two-loop recursion for the search direction d = -H·g.
            let mut q = g.clone();
            let mut alphas = Vec::with_capacity(s_history.len());
            for ((s, y), rho) in s_history
                .iter()
                .zip(y_history.iter())
                .zip(rho_history.iter())
                .rev()
            {
                let alpha = rho * dot(s, &q);
                for (qi, yi) in q.iter_mut().zip(y.iter()) {
                    *qi -= alpha * yi;
                }
                alphas.push(alpha);
            }
            // Initial Hessian scaling γ = s·y / y·y of the most recent pair.
            let gamma = match (s_history.back(), y_history.back()) {
                (Some(s), Some(y)) => {
                    let yy = dot(y, y);
                    if yy > 1e-16 {
                        dot(s, y) / yy
                    } else {
                        1.0
                    }
                }
                _ => 1.0,
            };
            for qi in q.iter_mut() {
                *qi *= gamma;
            }
            for (((s, y), rho), alpha) in s_history
                .iter()
                .zip(y_history.iter())
                .zip(rho_history.iter())
                .zip(alphas.iter().rev())
            {
                let beta = rho * dot(y, &q);
                for (qi, si) in q.iter_mut().zip(s.iter()) {
                    *qi += (alpha - beta) * si;
                }
            }
            let direction: Vec<f64> = q.iter().map(|v| -v).collect();

            // Line search.
            let initial_step = if s_history.is_empty() {
                (1.0 / norm(&direction).max(1e-12)).min(1.0)
            } else {
                1.0
            };
            let search = strong_wolfe(objective, &x, &direction, f, &g, initial_step);
            let (step, new_f, new_g, used) = match search {
                Some(ls) => (ls.step, ls.value, ls.gradient, ls.evaluations),
                None => {
                    // Fall back to a conservative gradient step.
                    let step = 1e-4 / norm(&g).max(1.0);
                    let candidate: Vec<f64> = x
                        .iter()
                        .zip(g.iter())
                        .map(|(xi, gi)| xi - step * gi)
                        .collect();
                    let (cf, cg) = objective.value_and_gradient(&candidate);
                    if cf >= f {
                        evaluations += 1;
                        converged = true; // cannot make progress
                        break;
                    }
                    let direction_fallback: Vec<f64> = g.iter().map(|v| -v).collect();
                    let s: Vec<f64> = direction_fallback.iter().map(|d| step * d).collect();
                    let new_x: Vec<f64> = x.iter().zip(s.iter()).map(|(a, b)| a + b).collect();
                    x = new_x;
                    f = cf;
                    g = cg;
                    evaluations += 1;
                    continue;
                }
            };
            evaluations += used;

            let new_x: Vec<f64> = x
                .iter()
                .zip(direction.iter())
                .map(|(xi, di)| xi + step * di)
                .collect();
            let s: Vec<f64> = new_x.iter().zip(x.iter()).map(|(a, b)| a - b).collect();
            let y: Vec<f64> = new_g.iter().zip(g.iter()).map(|(a, b)| a - b).collect();
            let sy = dot(&s, &y);
            if sy > 1e-12 {
                if s_history.len() == self.memory {
                    s_history.pop_front();
                    y_history.pop_front();
                    rho_history.pop_front();
                }
                rho_history.push_back(1.0 / sy);
                s_history.push_back(s);
                y_history.push_back(y);
            }

            let value_change = (f - new_f).abs();
            x = new_x;
            f = new_f;
            g = new_g;
            if value_change < self.value_tolerance * (1.0 + f.abs()) {
                converged = true;
                break;
            }
        }

        OptimizeResult {
            gradient_norm: norm(&g),
            x,
            value: f,
            iterations,
            evaluations,
            converged,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::FnObjective;

    fn rosenbrock() -> impl Objective {
        FnObjective::new(
            2,
            |x: &[f64]| (1.0 - x[0]).powi(2) + 100.0 * (x[1] - x[0] * x[0]).powi(2),
            |x: &[f64]| {
                vec![
                    -2.0 * (1.0 - x[0]) - 400.0 * x[0] * (x[1] - x[0] * x[0]),
                    200.0 * (x[1] - x[0] * x[0]),
                ]
            },
        )
    }

    #[test]
    fn minimises_rosenbrock() {
        let result = Lbfgs::default().minimize(&rosenbrock(), &[-1.2, 1.0]);
        assert!(result.converged, "did not converge: {result:?}");
        assert!((result.x[0] - 1.0).abs() < 1e-5, "{:?}", result.x);
        assert!((result.x[1] - 1.0).abs() < 1e-5);
        assert!(result.value < 1e-9);
    }

    #[test]
    fn minimises_high_dimensional_quadratic() {
        let n = 50;
        let obj = FnObjective::new(
            n,
            move |x: &[f64]| {
                x.iter()
                    .enumerate()
                    .map(|(i, v)| (i as f64 + 1.0) * (v - 1.0) * (v - 1.0))
                    .sum()
            },
            move |x: &[f64]| {
                x.iter()
                    .enumerate()
                    .map(|(i, v)| 2.0 * (i as f64 + 1.0) * (v - 1.0))
                    .collect()
            },
        );
        let result = Lbfgs::default().minimize(&obj, &vec![0.0; n]);
        assert!(result.converged);
        for v in &result.x {
            assert!((v - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn minimises_trigonometric_objective() {
        // Similar structure to EnQode's fidelity loss: 1 - |Σ cos terms|².
        let obj = FnObjective::new(
            3,
            |x: &[f64]| 3.0 - x.iter().map(|v| v.cos()).sum::<f64>(),
            |x: &[f64]| x.iter().map(|v| v.sin()).collect(),
        );
        let result = Lbfgs::default().minimize(&obj, &[0.5, -0.4, 0.3]);
        assert!(result.converged);
        assert!(result.value < 1e-8);
        for v in &result.x {
            assert!(v.abs() < 1e-4);
        }
    }

    #[test]
    fn starting_at_minimum_converges_immediately() {
        let obj = FnObjective::new(
            2,
            |x: &[f64]| x.iter().map(|v| v * v).sum::<f64>(),
            |x: &[f64]| x.iter().map(|v| 2.0 * v).collect(),
        );
        let result = Lbfgs::default().minimize(&obj, &[0.0, 0.0]);
        assert!(result.converged);
        assert_eq!(result.iterations, 1);
        assert!(result.value < 1e-15);
    }

    #[test]
    fn respects_iteration_budget() {
        let result = Lbfgs {
            max_iterations: 2,
            gradient_tolerance: 1e-20,
            value_tolerance: 0.0,
            memory: 5,
        }
        .minimize(&rosenbrock(), &[-1.2, 1.0]);
        assert!(result.iterations <= 2);
    }

    #[test]
    #[should_panic]
    fn wrong_dimension_panics() {
        let obj = FnObjective::new(
            2,
            |x: &[f64]| x.iter().sum(),
            |x: &[f64]| vec![1.0; x.len()],
        );
        let _ = Lbfgs::default().minimize(&obj, &[0.0; 3]);
    }
}

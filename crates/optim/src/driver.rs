//! A resumable, evaluation-inverted L-BFGS step machine.
//!
//! [`Lbfgs::minimize_with`] owns its loop and calls the objective itself;
//! that shape cannot drive **batched** objective evaluation, where `B`
//! independent optimisations want their pending points evaluated together in
//! one fused kernel sweep. [`LbfgsDriver`] inverts the control flow: it
//! exposes the next point it needs evaluated ([`LbfgsDriver::pending`]), the
//! caller supplies the value and gradient ([`LbfgsDriver::supply`]), and the
//! driver advances its internal state until it needs the next evaluation or
//! finishes.
//!
//! The driver is a faithful port of `minimize_with` plus its strong-Wolfe
//! line search: every arithmetic operation happens in the same order on the
//! same values, so a driver stepped to completion produces a **bit-identical
//! [`OptimizeResult`]** to calling [`Lbfgs::minimize_with`] directly (the
//! `driver_matches_minimize_bitwise` test pins this). That equivalence is
//! what lets the batched embedding path claim bit-identical outputs to the
//! per-request path.
//!
//! Between [`LbfgsDriver::new`] and completion there is always **exactly one
//! pending evaluation**, so a lockstep loop over `B` drivers evaluates
//! exactly `B` points per round.

use crate::lbfgs::Lbfgs;
use crate::objective::{dot, norm, OptimizeResult};

const C1: f64 = 1e-4;
const C2: f64 = 0.9;
const MAX_EVALS: usize = 40;
const MAX_BRACKET: usize = 10;

/// Where the driver is inside one strong-Wolfe line search.
#[derive(Debug, Clone, Copy)]
enum LineStage {
    /// Bracketing phase (Nocedal & Wright Algorithm 3.5), step `i` of
    /// [`MAX_BRACKET`].
    Bracket {
        i: usize,
        alpha_prev: f64,
        f_prev: f64,
    },
    /// Bisection zoom (Algorithm 3.6) on the interval `(lo, hi)`.
    Zoom { lo: f64, f_lo: f64, hi: f64 },
}

/// In-flight line-search bookkeeping.
#[derive(Debug, Clone, Copy)]
struct LineState {
    /// Value at the line-search origin.
    f0: f64,
    /// Directional derivative at the origin.
    d_phi0: f64,
    /// Step whose evaluation is currently pending.
    alpha: f64,
    /// Evaluations consumed by this search (only added to the global count
    /// if the search succeeds, mirroring `minimize_with`).
    evals: usize,
    stage: LineStage,
}

/// What evaluation the driver is waiting for.
#[derive(Debug, Clone, Copy)]
enum Phase {
    /// Waiting for the value/gradient at the initial point.
    Initial,
    /// Waiting for a line-search candidate.
    Line(LineState),
    /// Waiting for the conservative fallback step after a failed search.
    Fallback,
    /// Finished; the result is available.
    Done,
}

/// Resumable L-BFGS optimisation over one problem: ask [`pending`], answer
/// with [`supply`], repeat until [`is_done`]. See the module docs.
///
/// [`pending`]: LbfgsDriver::pending
/// [`supply`]: LbfgsDriver::supply
/// [`is_done`]: LbfgsDriver::is_done
#[derive(Debug, Clone)]
pub struct LbfgsDriver {
    params: Lbfgs,
    n: usize,
    memory: usize,
    /// Current iterate and its gradient.
    x: Vec<f64>,
    g: Vec<f64>,
    /// Accepted next iterate (scratch for the curvature-pair update).
    new_x: Vec<f64>,
    /// Gradient at the most recently supplied evaluation.
    new_g: Vec<f64>,
    /// Two-loop recursion scratch.
    q: Vec<f64>,
    direction: Vec<f64>,
    /// The point whose evaluation is pending.
    point: Vec<f64>,
    alphas: Vec<f64>,
    s_hist: Vec<Vec<f64>>,
    y_hist: Vec<Vec<f64>>,
    rho_hist: Vec<f64>,
    hist_len: usize,
    hist_head: usize,
    f: f64,
    evaluations: usize,
    iterations: usize,
    /// Iterations started so far (the `for iter in 0..max_iterations`
    /// counter).
    iter: usize,
    converged: bool,
    phase: Phase,
}

impl LbfgsDriver {
    /// Starts an optimisation of an `x0.len()`-dimensional problem from
    /// `x0`. The first pending evaluation is `x0` itself.
    pub fn new(params: Lbfgs, x0: &[f64]) -> Self {
        let n = x0.len();
        let memory = params.memory.max(1);
        Self {
            params,
            n,
            memory,
            x: x0.to_vec(),
            g: vec![0.0; n],
            new_x: vec![0.0; n],
            new_g: vec![0.0; n],
            q: vec![0.0; n],
            direction: vec![0.0; n],
            point: x0.to_vec(),
            alphas: vec![0.0; memory],
            s_hist: vec![vec![0.0; n]; memory],
            y_hist: vec![vec![0.0; n]; memory],
            rho_hist: vec![0.0; memory],
            hist_len: 0,
            hist_head: 0,
            f: 0.0,
            evaluations: 0,
            iterations: 0,
            iter: 0,
            converged: false,
            phase: Phase::Initial,
        }
    }

    /// Returns the point awaiting evaluation, or `None` once finished.
    pub fn pending(&self) -> Option<&[f64]> {
        match self.phase {
            Phase::Done => None,
            _ => Some(&self.point),
        }
    }

    /// True once the optimisation has terminated and [`LbfgsDriver::result`]
    /// is available.
    pub fn is_done(&self) -> bool {
        matches!(self.phase, Phase::Done)
    }

    /// Supplies the objective value and gradient at the pending point and
    /// advances to the next pending evaluation (or completion).
    ///
    /// # Panics
    ///
    /// Panics if the driver is already done or `gradient.len()` differs from
    /// the problem dimension.
    pub fn supply(&mut self, value: f64, gradient: &[f64]) {
        assert_eq!(gradient.len(), self.n, "gradient has wrong dimension");
        assert!(!self.is_done(), "supply called on a finished driver");
        match self.phase {
            Phase::Done => unreachable!(),
            Phase::Initial => {
                self.f = value;
                self.g.copy_from_slice(gradient);
                self.evaluations = 1;
                self.begin_iteration();
            }
            Phase::Line(mut st) => {
                self.new_g.copy_from_slice(gradient);
                st.evals += 1;
                let slope = dot(&self.new_g, &self.direction);
                match st.stage {
                    LineStage::Bracket {
                        i,
                        alpha_prev,
                        f_prev,
                    } => {
                        self.step_bracket(st, value, slope, i, alpha_prev, f_prev);
                    }
                    LineStage::Zoom { lo, f_lo, hi } => {
                        self.step_zoom(st, value, slope, lo, f_lo, hi);
                    }
                }
            }
            Phase::Fallback => {
                self.evaluations += 1;
                if value >= self.f {
                    self.converged = true; // cannot make progress
                    self.phase = Phase::Done;
                    return;
                }
                self.x.copy_from_slice(&self.point);
                self.g.copy_from_slice(gradient);
                self.f = value;
                self.begin_iteration();
            }
        }
    }

    /// Returns the optimisation result once [`LbfgsDriver::is_done`].
    pub fn result(&self) -> Option<OptimizeResult> {
        if !self.is_done() {
            return None;
        }
        Some(OptimizeResult {
            gradient_norm: norm(&self.g),
            x: self.x.clone(),
            value: self.f,
            iterations: self.iterations,
            evaluations: self.evaluations,
            converged: self.converged,
        })
    }

    /// Top of the outer iteration: convergence checks, two-loop recursion,
    /// and kick-off of the line search (mirrors the head of
    /// `Lbfgs::minimize_with`'s loop body).
    fn begin_iteration(&mut self) {
        if self.iter == self.params.max_iterations {
            self.phase = Phase::Done;
            return;
        }
        self.iter += 1;
        self.iterations = self.iter;
        if norm(&self.g) < self.params.gradient_tolerance {
            self.converged = true;
            self.phase = Phase::Done;
            return;
        }

        // Two-loop recursion for the search direction d = -H·g.
        let memory = self.memory;
        self.q.copy_from_slice(&self.g);
        for k in (0..self.hist_len).rev() {
            let idx = (self.hist_head + k) % memory;
            let rho = self.rho_hist[idx];
            let alpha = rho * dot(&self.s_hist[idx], &self.q);
            for (qi, yi) in self.q.iter_mut().zip(self.y_hist[idx].iter()) {
                *qi -= alpha * yi;
            }
            self.alphas[k] = alpha;
        }
        let gamma = if self.hist_len > 0 {
            let idx = (self.hist_head + self.hist_len - 1) % memory;
            let yy = dot(&self.y_hist[idx], &self.y_hist[idx]);
            if yy > 1e-16 {
                dot(&self.s_hist[idx], &self.y_hist[idx]) / yy
            } else {
                1.0
            }
        } else {
            1.0
        };
        for qi in self.q.iter_mut() {
            *qi *= gamma;
        }
        for k in 0..self.hist_len {
            let idx = (self.hist_head + k) % memory;
            let rho = self.rho_hist[idx];
            let beta = rho * dot(&self.y_hist[idx], &self.q);
            let alpha = self.alphas[k];
            for (qi, si) in self.q.iter_mut().zip(self.s_hist[idx].iter()) {
                *qi += (alpha - beta) * si;
            }
        }
        for (di, qi) in self.direction.iter_mut().zip(self.q.iter()) {
            *di = -qi;
        }

        let initial_step = if self.hist_len == 0 {
            (1.0 / norm(&self.direction).max(1e-12)).min(1.0)
        } else {
            1.0
        };
        let d_phi0 = dot(&self.g, &self.direction);
        if d_phi0 >= 0.0 {
            // Not a descent direction: the line search would refuse it.
            self.enter_fallback();
            return;
        }
        let alpha = initial_step.max(1e-12);
        let st = LineState {
            f0: self.f,
            d_phi0,
            alpha,
            evals: 0,
            stage: LineStage::Bracket {
                i: 0,
                alpha_prev: 0.0,
                f_prev: self.f,
            },
        };
        self.request_line_point(st);
    }

    /// Forms `point = x + α·d` and parks in the line phase.
    fn request_line_point(&mut self, st: LineState) {
        for ((p, xi), di) in self
            .point
            .iter_mut()
            .zip(self.x.iter())
            .zip(self.direction.iter())
        {
            *p = xi + st.alpha * di;
        }
        self.phase = Phase::Line(st);
    }

    /// One bracketing step, fed with the evaluation at `st.alpha`.
    fn step_bracket(
        &mut self,
        mut st: LineState,
        f_alpha: f64,
        slope_alpha: f64,
        i: usize,
        alpha_prev: f64,
        f_prev: f64,
    ) {
        let alpha = st.alpha;
        if f_alpha > st.f0 + C1 * alpha * st.d_phi0 || (i > 0 && f_alpha >= f_prev) {
            self.enter_zoom(st, alpha_prev, f_prev, alpha);
            return;
        }
        if slope_alpha.abs() <= -C2 * st.d_phi0 {
            self.accept_step(alpha, f_alpha, st.evals);
            return;
        }
        if slope_alpha >= 0.0 {
            self.enter_zoom(st, alpha, f_alpha, alpha_prev);
            return;
        }
        if i + 1 == MAX_BRACKET {
            // Bracket budget exhausted without an interval: search fails.
            self.enter_fallback();
            return;
        }
        st.stage = LineStage::Bracket {
            i: i + 1,
            alpha_prev: alpha,
            f_prev: f_alpha,
        };
        st.alpha = alpha * 2.0;
        self.request_line_point(st);
    }

    /// Starts (or refuses to start) the zoom phase on `(lo, hi)`.
    fn enter_zoom(&mut self, mut st: LineState, lo: f64, f_lo: f64, hi: f64) {
        if st.evals >= MAX_EVALS {
            self.enter_fallback();
            return;
        }
        st.stage = LineStage::Zoom { lo, f_lo, hi };
        st.alpha = 0.5 * (lo + hi);
        self.request_line_point(st);
    }

    /// One zoom step, fed with the evaluation at the midpoint `st.alpha`.
    fn step_zoom(
        &mut self,
        mut st: LineState,
        f_mid: f64,
        slope_mid: f64,
        mut lo: f64,
        mut f_lo: f64,
        mut hi: f64,
    ) {
        let mid = st.alpha;
        if f_mid > st.f0 + C1 * mid * st.d_phi0 || f_mid >= f_lo {
            hi = mid;
        } else {
            if slope_mid.abs() <= -C2 * st.d_phi0 {
                self.accept_step(mid, f_mid, st.evals);
                return;
            }
            if slope_mid * (hi - lo) >= 0.0 {
                hi = lo;
            }
            lo = mid;
            f_lo = f_mid;
        }
        if (hi - lo).abs() < 1e-14 {
            // Interval collapsed; accept the best point found so far (its
            // gradient is already in `new_g`).
            self.accept_step(mid, f_mid, st.evals);
            return;
        }
        if st.evals >= MAX_EVALS {
            self.enter_fallback();
            return;
        }
        st.stage = LineStage::Zoom { lo, f_lo, hi };
        st.alpha = 0.5 * (lo + hi);
        self.request_line_point(st);
    }

    /// Line search succeeded: curvature-pair update and convergence check
    /// (the tail of `minimize_with`'s loop body).
    fn accept_step(&mut self, step: f64, new_f: f64, search_evals: usize) {
        self.evaluations += search_evals;
        for ((nx, xi), di) in self
            .new_x
            .iter_mut()
            .zip(self.x.iter())
            .zip(self.direction.iter())
        {
            *nx = xi + step * di;
        }
        let mut sy = 0.0;
        for i in 0..self.n {
            sy += (self.new_x[i] - self.x[i]) * (self.new_g[i] - self.g[i]);
        }
        if sy > 1e-12 {
            let memory = self.memory;
            let slot = if self.hist_len == memory {
                let oldest = self.hist_head;
                self.hist_head = (self.hist_head + 1) % memory;
                oldest
            } else {
                (self.hist_head + self.hist_len) % memory
            };
            let s_buf = &mut self.s_hist[slot];
            let y_buf = &mut self.y_hist[slot];
            for i in 0..self.n {
                s_buf[i] = self.new_x[i] - self.x[i];
                y_buf[i] = self.new_g[i] - self.g[i];
            }
            self.rho_hist[slot] = 1.0 / sy;
            if self.hist_len < memory {
                self.hist_len += 1;
            }
        }

        let value_change = (self.f - new_f).abs();
        std::mem::swap(&mut self.x, &mut self.new_x);
        std::mem::swap(&mut self.g, &mut self.new_g);
        self.f = new_f;
        if value_change < self.params.value_tolerance * (1.0 + self.f.abs()) {
            self.converged = true;
            self.phase = Phase::Done;
            return;
        }
        self.begin_iteration();
    }

    /// Line search failed: request the conservative gradient step
    /// `x − (1e-4 / max(‖g‖, 1))·g` (the evaluations the failed search
    /// consumed are dropped, mirroring `minimize_with`).
    fn enter_fallback(&mut self) {
        let step = 1e-4 / norm(&self.g).max(1.0);
        for ((p, xi), gi) in self.point.iter_mut().zip(self.x.iter()).zip(self.g.iter()) {
            *p = xi - step * gi;
        }
        self.phase = Phase::Fallback;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::{FnObjective, Objective, Optimizer};

    /// Steps a driver to completion using direct objective evaluation.
    fn run_driver(params: Lbfgs, objective: &dyn Objective, x0: &[f64]) -> OptimizeResult {
        let mut driver = LbfgsDriver::new(params, x0);
        let mut gradient = vec![0.0; x0.len()];
        let mut rounds = 0usize;
        while let Some(point) = driver.pending() {
            let point = point.to_vec();
            let value = objective.value_and_gradient_into(&point, &mut gradient);
            driver.supply(value, &gradient);
            rounds += 1;
            assert!(rounds < 100_000, "driver failed to terminate");
        }
        driver.result().unwrap()
    }

    fn assert_bitwise_eq(a: &OptimizeResult, b: &OptimizeResult) {
        assert_eq!(a.iterations, b.iterations);
        assert_eq!(a.evaluations, b.evaluations);
        assert_eq!(a.converged, b.converged);
        assert_eq!(a.value.to_bits(), b.value.to_bits(), "value differs");
        assert_eq!(
            a.gradient_norm.to_bits(),
            b.gradient_norm.to_bits(),
            "gradient norm differs"
        );
        for (i, (xa, xb)) in a.x.iter().zip(b.x.iter()).enumerate() {
            assert_eq!(xa.to_bits(), xb.to_bits(), "x[{i}] differs");
        }
    }

    fn rosenbrock() -> impl Objective {
        FnObjective::new(
            2,
            |x: &[f64]| (1.0 - x[0]).powi(2) + 100.0 * (x[1] - x[0] * x[0]).powi(2),
            |x: &[f64]| {
                vec![
                    -2.0 * (1.0 - x[0]) - 400.0 * x[0] * (x[1] - x[0] * x[0]),
                    200.0 * (x[1] - x[0] * x[0]),
                ]
            },
        )
    }

    #[test]
    fn driver_matches_minimize_bitwise() {
        let obj = rosenbrock();
        for x0 in [[-1.2, 1.0], [3.0, -5.0], [0.0, 0.0]] {
            let params = Lbfgs::default();
            let direct = params.minimize(&obj, &x0);
            let driven = run_driver(params, &obj, &x0);
            assert_bitwise_eq(&driven, &direct);
        }
    }

    #[test]
    fn driver_matches_on_trigonometric_objective() {
        // Similar structure to EnQode's fidelity loss.
        let obj = FnObjective::new(
            3,
            |x: &[f64]| 3.0 - x.iter().map(|v| v.cos()).sum::<f64>(),
            |x: &[f64]| x.iter().map(|v| v.sin()).collect(),
        );
        let params = Lbfgs::default();
        let direct = params.minimize(&obj, &[0.5, -0.4, 0.3]);
        let driven = run_driver(params, &obj, &[0.5, -0.4, 0.3]);
        assert_bitwise_eq(&driven, &direct);
    }

    #[test]
    fn driver_matches_under_tight_budgets() {
        let obj = rosenbrock();
        for max_iterations in [0usize, 1, 2, 5] {
            let params = Lbfgs {
                max_iterations,
                gradient_tolerance: 1e-20,
                value_tolerance: 0.0,
                memory: 3,
            };
            let direct = params.clone().minimize(&obj, &[-1.2, 1.0]);
            let driven = run_driver(params, &obj, &[-1.2, 1.0]);
            assert_bitwise_eq(&driven, &direct);
        }
    }

    #[test]
    fn driver_converges_immediately_at_minimum() {
        let obj = FnObjective::new(
            2,
            |x: &[f64]| x.iter().map(|v| v * v).sum::<f64>(),
            |x: &[f64]| x.iter().map(|v| 2.0 * v).collect(),
        );
        let params = Lbfgs::default();
        let direct = params.minimize(&obj, &[0.0, 0.0]);
        let driven = run_driver(params, &obj, &[0.0, 0.0]);
        assert_bitwise_eq(&driven, &direct);
        assert_eq!(driven.iterations, 1);
    }
}

//! Objective-function abstraction shared by all optimisers.

/// A smooth scalar objective with an analytic gradient.
///
/// EnQode's symbolic representation exists precisely to make
/// [`Objective::gradient`] cheap and exact (no finite differences), which is
/// what lets the quasi-Newton optimiser converge in a handful of iterations.
pub trait Objective {
    /// Number of optimisation variables.
    fn dimension(&self) -> usize;

    /// Evaluates the objective at `x`.
    fn value(&self, x: &[f64]) -> f64;

    /// Evaluates the gradient at `x`.
    fn gradient(&self, x: &[f64]) -> Vec<f64>;

    /// Evaluates objective and gradient together. Override when they share
    /// work (the default calls both separately).
    fn value_and_gradient(&self, x: &[f64]) -> (f64, Vec<f64>) {
        (self.value(x), self.gradient(x))
    }

    /// Evaluates objective and gradient, writing the gradient into a
    /// caller-provided buffer of length [`Objective::dimension`].
    ///
    /// Hot-path objectives (EnQode's fidelity loss) override this to avoid
    /// any per-evaluation heap allocation; the optimisers in this crate call
    /// it exclusively from their inner loops. The default delegates to
    /// [`Objective::value_and_gradient`].
    ///
    /// # Panics
    ///
    /// Panics if `gradient.len()` differs from the objective dimension.
    fn value_and_gradient_into(&self, x: &[f64], gradient: &mut [f64]) -> f64 {
        let (value, g) = self.value_and_gradient(x);
        gradient.copy_from_slice(&g);
        value
    }
}

/// The result of an optimisation run.
#[derive(Debug, Clone, PartialEq)]
pub struct OptimizeResult {
    /// The best point found.
    pub x: Vec<f64>,
    /// The objective value at [`OptimizeResult::x`].
    pub value: f64,
    /// Number of outer iterations performed.
    pub iterations: usize,
    /// Number of objective (value or value+gradient) evaluations.
    pub evaluations: usize,
    /// Euclidean norm of the gradient at the final point (if computed).
    pub gradient_norm: f64,
    /// Whether the optimiser met its convergence criterion (as opposed to
    /// running out of iterations).
    pub converged: bool,
}

/// A reusable iterative minimiser.
pub trait Optimizer {
    /// Minimises `objective` starting from `x0`.
    fn minimize(&self, objective: &dyn Objective, x0: &[f64]) -> OptimizeResult;
}

/// An [`Objective`] defined by closures, convenient for tests and examples.
///
/// # Examples
///
/// ```
/// use enq_optim::{FnObjective, Objective};
///
/// let sphere = FnObjective::new(
///     2,
///     |x| x.iter().map(|v| v * v).sum(),
///     |x| x.iter().map(|v| 2.0 * v).collect(),
/// );
/// assert_eq!(sphere.value(&[0.0, 0.0]), 0.0);
/// ```
pub struct FnObjective<V, G>
where
    V: Fn(&[f64]) -> f64,
    G: Fn(&[f64]) -> Vec<f64>,
{
    dimension: usize,
    value_fn: V,
    gradient_fn: G,
}

impl<V, G> FnObjective<V, G>
where
    V: Fn(&[f64]) -> f64,
    G: Fn(&[f64]) -> Vec<f64>,
{
    /// Creates an objective from value and gradient closures.
    pub fn new(dimension: usize, value_fn: V, gradient_fn: G) -> Self {
        Self {
            dimension,
            value_fn,
            gradient_fn,
        }
    }
}

impl<V, G> Objective for FnObjective<V, G>
where
    V: Fn(&[f64]) -> f64,
    G: Fn(&[f64]) -> Vec<f64>,
{
    fn dimension(&self) -> usize {
        self.dimension
    }

    fn value(&self, x: &[f64]) -> f64 {
        (self.value_fn)(x)
    }

    fn gradient(&self, x: &[f64]) -> Vec<f64> {
        (self.gradient_fn)(x)
    }
}

/// Returns the Euclidean norm of a vector.
pub(crate) fn norm(v: &[f64]) -> f64 {
    v.iter().map(|x| x * x).sum::<f64>().sqrt()
}

/// Returns the dot product of two equal-length vectors.
pub(crate) fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b.iter()).map(|(x, y)| x * y).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fn_objective_delegates() {
        let obj = FnObjective::new(
            3,
            |x: &[f64]| x.iter().sum(),
            |x: &[f64]| vec![1.0; x.len()],
        );
        assert_eq!(obj.dimension(), 3);
        assert_eq!(obj.value(&[1.0, 2.0, 3.0]), 6.0);
        assert_eq!(obj.gradient(&[1.0, 2.0, 3.0]), vec![1.0, 1.0, 1.0]);
        let (v, g) = obj.value_and_gradient(&[1.0, 1.0, 1.0]);
        assert_eq!(v, 3.0);
        assert_eq!(g.len(), 3);
    }

    #[test]
    fn helpers() {
        assert!((norm(&[3.0, 4.0]) - 5.0).abs() < 1e-12);
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
    }
}

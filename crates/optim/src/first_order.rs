//! First-order optimisers (gradient descent and Adam), used as ablation
//! baselines against L-BFGS.

use crate::objective::{norm, Objective, OptimizeResult, Optimizer};

/// Plain gradient descent `θ ← θ − η·∇L(θ)` (Eq. 2 of the paper).
#[derive(Debug, Clone)]
pub struct GradientDescent {
    /// Learning rate η.
    pub learning_rate: f64,
    /// Maximum number of iterations.
    pub max_iterations: usize,
    /// Convergence threshold on the gradient norm.
    pub gradient_tolerance: f64,
}

impl Default for GradientDescent {
    fn default() -> Self {
        Self {
            learning_rate: 0.1,
            max_iterations: 2000,
            gradient_tolerance: 1e-8,
        }
    }
}

impl Optimizer for GradientDescent {
    fn minimize(&self, objective: &dyn Objective, x0: &[f64]) -> OptimizeResult {
        assert_eq!(x0.len(), objective.dimension());
        let mut x = x0.to_vec();
        let mut evaluations = 0usize;
        let mut converged = false;
        let mut iterations = 0usize;
        let mut value = objective.value(&x);
        let mut gradient = vec![0.0; x.len()];
        evaluations += 1;
        for iter in 0..self.max_iterations {
            iterations = iter + 1;
            let (f, g) = objective.value_and_gradient(&x);
            evaluations += 1;
            value = f;
            gradient = g;
            if norm(&gradient) < self.gradient_tolerance {
                converged = true;
                break;
            }
            for (xi, gi) in x.iter_mut().zip(gradient.iter()) {
                *xi -= self.learning_rate * gi;
            }
        }
        OptimizeResult {
            gradient_norm: norm(&gradient),
            x,
            value,
            iterations,
            evaluations,
            converged,
        }
    }
}

/// The Adam optimiser (adaptive moment estimation).
#[derive(Debug, Clone)]
pub struct Adam {
    /// Learning rate.
    pub learning_rate: f64,
    /// First-moment decay rate.
    pub beta1: f64,
    /// Second-moment decay rate.
    pub beta2: f64,
    /// Numerical stabiliser.
    pub epsilon: f64,
    /// Maximum number of iterations.
    pub max_iterations: usize,
    /// Convergence threshold on the gradient norm.
    pub gradient_tolerance: f64,
}

impl Default for Adam {
    fn default() -> Self {
        Self {
            learning_rate: 0.05,
            beta1: 0.9,
            beta2: 0.999,
            epsilon: 1e-8,
            max_iterations: 2000,
            gradient_tolerance: 1e-8,
        }
    }
}

impl Optimizer for Adam {
    fn minimize(&self, objective: &dyn Objective, x0: &[f64]) -> OptimizeResult {
        assert_eq!(x0.len(), objective.dimension());
        let n = x0.len();
        let mut x = x0.to_vec();
        let mut m = vec![0.0; n];
        let mut v = vec![0.0; n];
        let mut evaluations = 0usize;
        let mut converged = false;
        let mut iterations = 0usize;
        let mut value = objective.value(&x);
        evaluations += 1;
        let mut gradient = vec![0.0; n];
        for iter in 0..self.max_iterations {
            iterations = iter + 1;
            let (f, g) = objective.value_and_gradient(&x);
            evaluations += 1;
            value = f;
            gradient = g;
            if norm(&gradient) < self.gradient_tolerance {
                converged = true;
                break;
            }
            let t = (iter + 1) as f64;
            for i in 0..n {
                m[i] = self.beta1 * m[i] + (1.0 - self.beta1) * gradient[i];
                v[i] = self.beta2 * v[i] + (1.0 - self.beta2) * gradient[i] * gradient[i];
                let m_hat = m[i] / (1.0 - self.beta1.powf(t));
                let v_hat = v[i] / (1.0 - self.beta2.powf(t));
                x[i] -= self.learning_rate * m_hat / (v_hat.sqrt() + self.epsilon);
            }
        }
        OptimizeResult {
            gradient_norm: norm(&gradient),
            x,
            value,
            iterations,
            evaluations,
            converged,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::FnObjective;

    fn quadratic() -> impl Objective {
        FnObjective::new(
            3,
            |x: &[f64]| x.iter().map(|v| (v - 2.0) * (v - 2.0)).sum::<f64>(),
            |x: &[f64]| x.iter().map(|v| 2.0 * (v - 2.0)).collect(),
        )
    }

    #[test]
    fn gradient_descent_converges_on_quadratic() {
        let result = GradientDescent::default().minimize(&quadratic(), &[0.0, 5.0, -3.0]);
        assert!(result.converged);
        for v in &result.x {
            assert!((v - 2.0).abs() < 1e-5);
        }
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let result = Adam::default().minimize(&quadratic(), &[0.0, 5.0, -3.0]);
        assert!(result.value < 1e-6, "value {}", result.value);
    }

    #[test]
    fn gradient_descent_with_tiny_budget_does_not_converge() {
        let gd = GradientDescent {
            max_iterations: 1,
            ..GradientDescent::default()
        };
        let result = gd.minimize(&quadratic(), &[10.0, 10.0, 10.0]);
        assert!(!result.converged);
        assert_eq!(result.iterations, 1);
    }

    #[test]
    fn adam_handles_poorly_scaled_problems() {
        let obj = FnObjective::new(
            2,
            |x: &[f64]| 1000.0 * x[0] * x[0] + 0.01 * x[1] * x[1],
            |x: &[f64]| vec![2000.0 * x[0], 0.02 * x[1]],
        );
        let adam = Adam {
            max_iterations: 8000,
            learning_rate: 0.1,
            ..Adam::default()
        };
        let result = adam.minimize(&obj, &[1.0, 1.0]);
        assert!(result.value < 1e-3, "value {}", result.value);
    }
}

//! # enq-optim
//!
//! Classical optimisers for training EnQode's ansatz parameters:
//!
//! * [`Lbfgs`] — limited-memory BFGS with a strong-Wolfe line search, the
//!   optimiser the paper uses together with the symbolic Jacobian,
//! * [`GradientDescent`] and [`Adam`] — first-order ablation baselines,
//! * [`NelderMead`] — a derivative-free baseline showing the cost of not
//!   having analytic gradients.
//!
//! All optimisers minimise an [`Objective`] through the common [`Optimizer`]
//! trait.
//!
//! ## Example
//!
//! ```
//! use enq_optim::{FnObjective, Lbfgs, Optimizer};
//!
//! let objective = FnObjective::new(
//!     1,
//!     |x| (x[0] - 0.5).powi(2),
//!     |x| vec![2.0 * (x[0] - 0.5)],
//! );
//! let result = Lbfgs::default().minimize(&objective, &[5.0]);
//! assert!((result.x[0] - 0.5).abs() < 1e-6);
//! ```

#![warn(missing_docs)]

mod driver;
mod first_order;
mod lbfgs;
mod line_search;
mod nelder_mead;
mod objective;

pub use driver::LbfgsDriver;
pub use first_order::{Adam, GradientDescent};
pub use lbfgs::{Lbfgs, LbfgsWorkspace};
pub use nelder_mead::NelderMead;
pub use objective::{FnObjective, Objective, OptimizeResult, Optimizer};

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        #[test]
        fn lbfgs_finds_minimum_of_random_convex_quadratics(
            center in proptest::collection::vec(-3.0..3.0f64, 4),
            scales in proptest::collection::vec(0.5..5.0f64, 4),
            start in proptest::collection::vec(-3.0..3.0f64, 4),
        ) {
            let c = center.clone();
            let s = scales.clone();
            let c2 = center.clone();
            let s2 = scales.clone();
            let obj = FnObjective::new(
                4,
                move |x: &[f64]| {
                    x.iter()
                        .zip(c.iter())
                        .zip(s.iter())
                        .map(|((xi, ci), si)| si * (xi - ci) * (xi - ci))
                        .sum()
                },
                move |x: &[f64]| {
                    x.iter()
                        .zip(c2.iter())
                        .zip(s2.iter())
                        .map(|((xi, ci), si)| 2.0 * si * (xi - ci))
                        .collect()
                },
            );
            let result = Lbfgs::default().minimize(&obj, &start);
            for (xi, ci) in result.x.iter().zip(center.iter()) {
                prop_assert!((xi - ci).abs() < 1e-4);
            }
        }

        #[test]
        fn optimisers_never_increase_the_objective(
            start in proptest::collection::vec(-2.0..2.0f64, 3),
        ) {
            let obj = FnObjective::new(
                3,
                |x: &[f64]| x.iter().map(|v| v.powi(4) + v * v).sum::<f64>(),
                |x: &[f64]| x.iter().map(|v| 4.0 * v.powi(3) + 2.0 * v).collect(),
            );
            let initial = obj.value(&start);
            for result in [
                Lbfgs::default().minimize(&obj, &start),
                GradientDescent::default().minimize(&obj, &start),
                Adam::default().minimize(&obj, &start),
                NelderMead::default().minimize(&obj, &start),
            ] {
                prop_assert!(result.value <= initial + 1e-9);
            }
        }
    }
}

//! Derivative-free Nelder-Mead simplex optimiser.
//!
//! Included as an ablation baseline: it shows what EnQode's training would
//! cost without the symbolic Jacobian (every probe is a full objective
//! evaluation and convergence is much slower than L-BFGS).

use crate::objective::{norm, Objective, OptimizeResult, Optimizer};

/// The Nelder-Mead downhill-simplex method.
#[derive(Debug, Clone)]
pub struct NelderMead {
    /// Maximum number of iterations (simplex updates).
    pub max_iterations: usize,
    /// Convergence threshold on the simplex value spread.
    pub tolerance: f64,
    /// Size of the initial simplex around the starting point.
    pub initial_step: f64,
}

impl Default for NelderMead {
    fn default() -> Self {
        Self {
            max_iterations: 5000,
            tolerance: 1e-10,
            initial_step: 0.5,
        }
    }
}

impl Optimizer for NelderMead {
    fn minimize(&self, objective: &dyn Objective, x0: &[f64]) -> OptimizeResult {
        let n = objective.dimension();
        assert_eq!(x0.len(), n);
        let alpha = 1.0; // reflection
        let gamma = 2.0; // expansion
        let rho = 0.5; // contraction
        let sigma = 0.5; // shrink

        let mut evaluations = 0usize;
        let mut simplex: Vec<Vec<f64>> = Vec::with_capacity(n + 1);
        simplex.push(x0.to_vec());
        for i in 0..n {
            let mut p = x0.to_vec();
            p[i] += self.initial_step;
            simplex.push(p);
        }
        let mut values: Vec<f64> = simplex
            .iter()
            .map(|p| {
                evaluations += 1;
                objective.value(p)
            })
            .collect();

        let mut iterations = 0usize;
        let mut converged = false;
        for iter in 0..self.max_iterations {
            iterations = iter + 1;
            // Sort simplex by value.
            let mut order: Vec<usize> = (0..simplex.len()).collect();
            order.sort_by(|&a, &b| values[a].partial_cmp(&values[b]).expect("finite values"));
            simplex = order.iter().map(|&i| simplex[i].clone()).collect();
            values = order.iter().map(|&i| values[i]).collect();

            if (values[n] - values[0]).abs() < self.tolerance {
                converged = true;
                break;
            }

            // Centroid of all but the worst point.
            let mut centroid = vec![0.0; n];
            for p in simplex.iter().take(n) {
                for (c, v) in centroid.iter_mut().zip(p.iter()) {
                    *c += v / n as f64;
                }
            }
            let worst = simplex[n].clone();
            let reflect: Vec<f64> = centroid
                .iter()
                .zip(worst.iter())
                .map(|(c, w)| c + alpha * (c - w))
                .collect();
            let f_reflect = objective.value(&reflect);
            evaluations += 1;

            if f_reflect < values[0] {
                // Try expansion.
                let expand: Vec<f64> = centroid
                    .iter()
                    .zip(worst.iter())
                    .map(|(c, w)| c + gamma * (c - w))
                    .collect();
                let f_expand = objective.value(&expand);
                evaluations += 1;
                if f_expand < f_reflect {
                    simplex[n] = expand;
                    values[n] = f_expand;
                } else {
                    simplex[n] = reflect;
                    values[n] = f_reflect;
                }
            } else if f_reflect < values[n - 1] {
                simplex[n] = reflect;
                values[n] = f_reflect;
            } else {
                // Contraction.
                let contract: Vec<f64> = centroid
                    .iter()
                    .zip(worst.iter())
                    .map(|(c, w)| c + rho * (w - c))
                    .collect();
                let f_contract = objective.value(&contract);
                evaluations += 1;
                if f_contract < values[n] {
                    simplex[n] = contract;
                    values[n] = f_contract;
                } else {
                    // Shrink towards the best point.
                    let best = simplex[0].clone();
                    for i in 1..=n {
                        let shrunk: Vec<f64> = best
                            .iter()
                            .zip(simplex[i].iter())
                            .map(|(b, p)| b + sigma * (p - b))
                            .collect();
                        values[i] = objective.value(&shrunk);
                        evaluations += 1;
                        simplex[i] = shrunk;
                    }
                }
            }
        }

        let mut best_idx = 0;
        for i in 1..values.len() {
            if values[i] < values[best_idx] {
                best_idx = i;
            }
        }
        OptimizeResult {
            gradient_norm: norm(&objective.gradient(&simplex[best_idx])),
            x: simplex[best_idx].clone(),
            value: values[best_idx],
            iterations,
            evaluations,
            converged,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::FnObjective;

    fn sphere() -> impl Objective {
        FnObjective::new(
            3,
            |x: &[f64]| x.iter().map(|v| v * v).sum::<f64>(),
            |x: &[f64]| x.iter().map(|v| 2.0 * v).collect(),
        )
    }

    #[test]
    fn converges_on_sphere() {
        let result = NelderMead::default().minimize(&sphere(), &[1.0, -2.0, 0.5]);
        assert!(result.converged);
        assert!(result.value < 1e-8);
    }

    #[test]
    fn uses_more_evaluations_than_lbfgs() {
        let nm = NelderMead::default().minimize(&sphere(), &[1.0, -2.0, 0.5]);
        let lbfgs = crate::Lbfgs::default().minimize(&sphere(), &[1.0, -2.0, 0.5]);
        assert!(
            nm.evaluations > lbfgs.evaluations,
            "nelder-mead {} vs l-bfgs {}",
            nm.evaluations,
            lbfgs.evaluations
        );
    }

    #[test]
    fn respects_iteration_budget() {
        let nm = NelderMead {
            max_iterations: 3,
            ..NelderMead::default()
        };
        let result = nm.minimize(&sphere(), &[5.0, 5.0, 5.0]);
        assert!(result.iterations <= 3);
        assert!(!result.converged);
    }
}

//! `enqd` — the EnQode network serving daemon.
//!
//! Binds a TCP front door over an [`enq_serve::EmbedService`], trains (or
//! loads) its models, prints `ENQD LISTENING <addr>` once ready, and
//! serves until a graceful drain — triggered by SIGTERM/SIGINT or a
//! `Drain` control frame — after which it finishes in-flight admitted
//! requests and exits 0.
//!
//! ```text
//! enqd [--addr HOST:PORT] [--model ID] [--data PATH.enqb] [--seed N]
//!      [--model-dir DIR] [--max-pending N] [--max-conns N] [--rate R]
//!      [--burst B] [--read-timeout-ms N] [--autopilot]
//! ```
//!
//! With `--data`, the model is trained from the named `ENQB` binary
//! dataset; otherwise a small synthetic MNIST-like dataset keeps the
//! daemon self-contained (smoke tests, demos).
//!
//! With `--model-dir`, the daemon is **durable**: on startup it restores
//! every `ENQM` artifact in the directory and serves them at their
//! recorded generations — a *warm boot*, no training before readiness,
//! bit-identical answers to the previous process. If the directory holds
//! no artifact for `--model`, it trains one (*cold start*) and persists it.
//! Either way a `ENQD WARMBOOT`/`ENQD COLDBOOT` status line precedes the
//! readiness line, and every later successful background rebuild rewrites
//! its model's artifact. See `docs/FORMATS.md` and `docs/OPERATIONS.md`.
//!
//! With `--autopilot`, traffic capture is enabled and an
//! [`enq_serve::Autopilot`] scheduler watches the served models, firing
//! traffic-fed refreshes on audit-fidelity decay or cache-hit-rate drops
//! (default [`enq_serve::RefreshPolicy`]). Every autopilot action is
//! reported as an `ENQD AUTOPILOT <ACTION> …` status line, and a final
//! `ENQD AUTOPILOT STOPPED …` summary prints at drain. See the
//! "Autopilot" section of `docs/OPERATIONS.md`.

use enq_data::{generate_synthetic, Dataset, DatasetKind, SyntheticConfig};
use enq_net::{AdmissionConfig, EnqdServer, FaultPlan, NetConfig};
use enq_serve::{
    Autopilot, AutopilotEvent, EmbedService, RefreshPolicy, ServeConfig, TrafficConfig,
};
use enqode::{AnsatzConfig, EnqodeConfig, EnqodePipeline, EntanglerKind};
use std::io::Write;
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Raw signal(2) bindings: the libc surface this daemon needs for graceful
/// drain, bound directly (same pattern as `enq_data`'s mmap bindings) so
/// the build stays free of external crates.
#[cfg(unix)]
mod sig {
    use super::{AtomicBool, Ordering};

    /// Set from the signal handler; polled by the main loop.
    pub static TERM_REQUESTED: AtomicBool = AtomicBool::new(false);

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" fn on_term(_signum: i32) {
        // Only an atomic store: async-signal-safe.
        TERM_REQUESTED.store(true, Ordering::SeqCst);
    }

    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    /// Installs the drain handler for SIGTERM and SIGINT.
    pub fn install() {
        let handler = on_term as extern "C" fn(i32) as usize;
        unsafe {
            signal(SIGTERM, handler);
            signal(SIGINT, handler);
        }
    }

    pub fn term_requested() -> bool {
        TERM_REQUESTED.load(Ordering::SeqCst)
    }
}

#[cfg(not(unix))]
mod sig {
    pub fn install() {}
    pub fn term_requested() -> bool {
        false
    }
}

struct Args {
    addr: String,
    model: String,
    data: Option<String>,
    model_dir: Option<String>,
    seed: u64,
    max_pending: usize,
    max_conns: usize,
    rate: f64,
    burst: f64,
    read_timeout_ms: u64,
    autopilot: bool,
}

impl Args {
    fn parse() -> Result<Self, String> {
        let mut args = Self {
            addr: "127.0.0.1:0".into(),
            model: "default".into(),
            data: None,
            model_dir: None,
            seed: 7,
            max_pending: 256,
            max_conns: 64,
            rate: 0.0,
            burst: 8.0,
            read_timeout_ms: 2_000,
            autopilot: false,
        };
        let mut it = std::env::args().skip(1);
        while let Some(flag) = it.next() {
            let mut value = |name: &str| {
                it.next()
                    .ok_or_else(|| format!("flag {name} needs a value"))
            };
            match flag.as_str() {
                "--addr" => args.addr = value("--addr")?,
                "--model" => args.model = value("--model")?,
                "--data" => args.data = Some(value("--data")?),
                "--model-dir" => args.model_dir = Some(value("--model-dir")?),
                "--seed" => {
                    args.seed = value("--seed")?
                        .parse()
                        .map_err(|e| format!("--seed: {e}"))?;
                }
                "--max-pending" => {
                    args.max_pending = value("--max-pending")?
                        .parse()
                        .map_err(|e| format!("--max-pending: {e}"))?;
                }
                "--max-conns" => {
                    args.max_conns = value("--max-conns")?
                        .parse()
                        .map_err(|e| format!("--max-conns: {e}"))?;
                }
                "--rate" => {
                    args.rate = value("--rate")?
                        .parse()
                        .map_err(|e| format!("--rate: {e}"))?;
                }
                "--burst" => {
                    args.burst = value("--burst")?
                        .parse()
                        .map_err(|e| format!("--burst: {e}"))?;
                }
                "--read-timeout-ms" => {
                    args.read_timeout_ms = value("--read-timeout-ms")?
                        .parse()
                        .map_err(|e| format!("--read-timeout-ms: {e}"))?;
                }
                "--autopilot" => args.autopilot = true,
                other => return Err(format!("unknown flag {other:?}")),
            }
        }
        Ok(args)
    }
}

/// A small self-contained training config: 3 qubits, 2 clusters — enough
/// to serve real embeddings in well under a second of training.
fn demo_config(seed: u64) -> EnqodeConfig {
    EnqodeConfig {
        ansatz: AnsatzConfig {
            num_qubits: 3,
            num_layers: 4,
            entangler: EntanglerKind::Cy,
        },
        fidelity_threshold: 0.8,
        max_clusters: 2,
        offline_max_iterations: 40,
        offline_restarts: 1,
        online_max_iterations: 15,
        offline_rescue: false,
        seed,
    }
}

fn train_model(args: &Args) -> Result<EnqodePipeline, String> {
    let dataset = match &args.data {
        Some(path) => {
            let mut source =
                enq_data::BinarySource::open(path).map_err(|e| format!("opening {path}: {e}"))?;
            enq_data::materialize(&mut source, "enqd-data")
                .map_err(|e| format!("reading {path}: {e}"))?
        }
        None => demo_dataset(args.seed),
    };
    EnqodePipeline::build(&dataset, demo_config(args.seed)).map_err(|e| format!("training: {e}"))
}

fn demo_dataset(seed: u64) -> Dataset {
    generate_synthetic(
        DatasetKind::MnistLike,
        &SyntheticConfig {
            classes: 2,
            samples_per_class: 6,
            seed,
        },
    )
    .expect("synthetic dataset generation")
}

/// Populates the service's registry, durably when `--model-dir` is set.
///
/// Without `--model-dir` this is the original flow: train, register, serve.
/// With it, the store decides: artifacts present → **warm boot** (restore
/// everything at its recorded generation; zero training before readiness);
/// no artifact for `--model` → **cold start** (train it, register it, and
/// persist the whole registry so the *next* boot is warm). Both paths then
/// enable persist-on-swap so background rebuilds keep the store current.
/// A corrupt or unreadable artifact fails the boot — never a partial
/// registry (see [`enq_serve::restore_registry`]).
///
/// Status lines (`ENQD WARMBOOT …`/`ENQD COLDBOOT …`) print **before** the
/// readiness line, so anything scripted against `ENQD LISTENING` still
/// works unchanged.
fn boot(args: &Args, service: &EmbedService) -> Result<(), String> {
    let Some(dir) = &args.model_dir else {
        let pipeline = train_model(args)?;
        service.register_model(args.model.clone(), pipeline);
        return Ok(());
    };
    let dir = std::path::Path::new(dir);
    let restored = enq_serve::restore_registry(service.registry(), dir)
        .map_err(|e| format!("restoring models from {}: {e}", dir.display()))?;
    let warm = restored.iter().any(|m| m.model_id == args.model);
    if warm {
        let generation = restored.iter().map(|m| m.generation).max().unwrap_or(0);
        println!(
            "ENQD WARMBOOT models={} generation={generation}",
            restored.len()
        );
    } else {
        let pipeline = train_model(args)?;
        let (_, generation) = service.register_model_tracked(args.model.clone(), pipeline);
        enq_serve::snapshot_registry(service.registry(), dir)
            .map_err(|e| format!("persisting models to {}: {e}", dir.display()))?;
        println!(
            "ENQD COLDBOOT models={} generation={generation}",
            service.registry().len()
        );
    }
    service
        .enable_persistence(dir)
        .map_err(|e| format!("enabling persistence in {}: {e}", dir.display()))?;
    Ok(())
}

fn main() -> ExitCode {
    let args = match Args::parse() {
        Ok(args) => args,
        Err(e) => {
            eprintln!("enqd: {e}");
            return ExitCode::FAILURE;
        }
    };
    sig::install();
    // The autopilot needs traffic capture: its signals (spot-audit, refresh
    // corpus) all come from recorded request features.
    let serve_config = if args.autopilot {
        ServeConfig {
            traffic: TrafficConfig {
                enabled: true,
                ..TrafficConfig::default()
            },
            ..ServeConfig::default()
        }
    } else {
        ServeConfig::default()
    };
    let service = Arc::new(EmbedService::new(serve_config));
    if let Err(e) = boot(&args, &service) {
        eprintln!("enqd: {e}");
        return ExitCode::FAILURE;
    }
    let config = NetConfig {
        max_connections: args.max_conns,
        max_pending: args.max_pending,
        read_timeout: Duration::from_millis(args.read_timeout_ms),
        admission: AdmissionConfig {
            rate_per_sec: args.rate,
            burst: args.burst,
            ..AdmissionConfig::default()
        },
        ..NetConfig::default()
    };
    let autopilot = args
        .autopilot
        .then(|| Autopilot::spawn(Arc::clone(&service), RefreshPolicy::default()));
    let handle = match EnqdServer::spawn(service, &args.addr, config, FaultPlan::none()) {
        Ok(handle) => handle,
        Err(e) => {
            eprintln!("enqd: binding {}: {e}", args.addr);
            return ExitCode::FAILURE;
        }
    };
    // The readiness line smoke tests and orchestration scripts key on.
    println!("ENQD LISTENING {}", handle.addr());
    if autopilot.is_some() {
        println!("ENQD AUTOPILOT ENABLED");
    }
    let _ = std::io::stdout().flush();
    loop {
        if sig::term_requested() {
            handle.drain();
        }
        if let Some(autopilot) = &autopilot {
            print_autopilot_events(autopilot);
        }
        if handle.is_finished() || handle.is_draining() {
            break;
        }
        std::thread::sleep(Duration::from_millis(25));
    }
    let stats = handle.join();
    if let Some(mut autopilot) = autopilot {
        autopilot.shutdown();
        print_autopilot_events(&autopilot);
        let ap = autopilot.stats();
        println!(
            "ENQD AUTOPILOT STOPPED polls={} fires={} successes={} failures={} compactions={}",
            ap.polls, ap.fires, ap.refresh_successes, ap.refresh_failures, ap.compactions
        );
    }
    println!(
        "ENQD DRAINED served={} shed={} rate_limited={} hostile_closes={}",
        stats.served, stats.shed, stats.rate_limited, stats.hostile_closes
    );
    ExitCode::SUCCESS
}

/// Prints every drained autopilot action as an `ENQD AUTOPILOT` line, the
/// same machine-greppable shape as the boot and drain lines.
fn print_autopilot_events(autopilot: &Autopilot) {
    for event in autopilot.drain_events() {
        match event {
            AutopilotEvent::Fired {
                model_id,
                reason,
                fit_threads,
            } => println!(
                "ENQD AUTOPILOT FIRED model={model_id} reason=\"{reason}\" fit_threads={fit_threads}"
            ),
            AutopilotEvent::RefreshFinished { model_id, status } => {
                println!("ENQD AUTOPILOT REFRESHED model={model_id} status={status:?}")
            }
            AutopilotEvent::RefreshRejected { model_id, error } => {
                println!("ENQD AUTOPILOT REJECTED model={model_id} error=\"{error}\"")
            }
            AutopilotEvent::Compacted { model_id, merged } => {
                println!("ENQD AUTOPILOT COMPACTED model={model_id} merged={merged}")
            }
        }
    }
    let _ = std::io::stdout().flush();
}

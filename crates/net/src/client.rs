//! `enq_client`: the blocking client library for the `enqd` wire protocol.
//!
//! [`EnqClient::embed`] is the one-call API: it sends the request, waits
//! for the reply, and on **retryable** failures (typed
//! [`ErrorCode`]s with [`ErrorCode::is_retryable`], connection resets,
//! torn replies) retries with bounded exponential backoff plus
//! deterministic jitter. A server-provided `retry_after_ms` hint is
//! honoured as a *floor* on the next delay — the server knows its own
//! backlog better than any client-side curve. Terminal error codes and
//! exhausted budgets surface as typed [`ClientError`]s; the client never
//! retries work the server said cannot succeed.

use crate::protocol::{decode_frame, DecodeError, ErrorCode, Frame, MAX_FRAME_LEN};
use std::fmt;
use std::io::{self, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

/// Retry/backoff policy for [`EnqClient::embed`].
#[derive(Debug, Clone, PartialEq)]
pub struct RetryPolicy {
    /// Total attempts (first try included). 1 disables retries.
    pub max_attempts: u32,
    /// Backoff before the second attempt; doubles each retry.
    pub base_backoff: Duration,
    /// Cap on any single backoff delay.
    pub max_backoff: Duration,
    /// Seed for the deterministic jitter stream (same seed + same failure
    /// sequence = same delays; vary per client instance in production).
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_attempts: 4,
            base_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_secs(1),
            jitter_seed: 0x51ab_17e5,
        }
    }
}

/// A successful embedding as seen over the wire.
#[derive(Debug, Clone, PartialEq)]
pub struct WireEmbedding {
    /// The class label the server chose.
    pub label: u64,
    /// Noiseless fidelity of the prepared state.
    pub ideal_fidelity: f64,
    /// The ansatz rotation parameters, bit-exact.
    pub parameters: Vec<f64>,
    /// Solution provenance: 0 computed, 1 cache hit, 2 batch dedup.
    pub source: u8,
    /// Attempts spent (1 = first try succeeded).
    pub attempts: u32,
}

/// Why an [`EnqClient`] call failed.
#[derive(Debug)]
pub enum ClientError {
    /// Transport-level failure after all retries.
    Io(io::Error),
    /// The server answered with a **terminal** typed error.
    Server {
        /// The typed code.
        code: ErrorCode,
        /// Human-readable detail from the server.
        message: String,
    },
    /// Every attempt failed retryably; the last typed code (if the last
    /// failure was typed) rides along.
    RetriesExhausted {
        /// Attempts made.
        attempts: u32,
        /// The last retryable code observed, if the last failure was a
        /// typed reject rather than a transport error.
        last_code: Option<ErrorCode>,
    },
    /// The server broke the protocol (bad frame, wrong reply id, torn
    /// bytes). Fail closed.
    Protocol(DecodeError),
    /// The server replied with an unexpected frame type.
    UnexpectedFrame,
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport error: {e}"),
            ClientError::Server { code, message } => {
                write!(f, "server rejected the request ({code:?}): {message}")
            }
            ClientError::RetriesExhausted {
                attempts,
                last_code,
            } => write!(
                f,
                "no success after {attempts} attempts (last typed code: {last_code:?})"
            ),
            ClientError::Protocol(e) => write!(f, "protocol violation from server: {e}"),
            ClientError::UnexpectedFrame => write!(f, "unexpected reply frame type"),
        }
    }
}

impl std::error::Error for ClientError {}

/// A blocking `enqd` client holding one connection (re-established as
/// needed across retries).
#[derive(Debug)]
pub struct EnqClient {
    addr: String,
    policy: RetryPolicy,
    stream: Option<TcpStream>,
    read_buf: Vec<u8>,
    next_id: u64,
    /// xorshift64* state for jitter.
    rng: u64,
    /// Per-reply read timeout.
    io_timeout: Duration,
}

impl EnqClient {
    /// Creates a client for `addr`. No connection is made until the first
    /// call.
    pub fn new(addr: impl Into<String>, policy: RetryPolicy) -> Self {
        let rng = policy.jitter_seed | 1; // xorshift state must be non-zero
        Self {
            addr: addr.into(),
            policy,
            stream: None,
            read_buf: Vec::new(),
            next_id: 1,
            rng,
            io_timeout: Duration::from_secs(10),
        }
    }

    /// Overrides the per-reply I/O timeout (default 10 s).
    pub fn set_io_timeout(&mut self, timeout: Duration) {
        self.io_timeout = timeout;
        self.stream = None; // re-apply on next connect
    }

    /// Sends one frame and reads exactly one reply frame, reconnecting
    /// first if needed. Any failure discards the connection — after a
    /// framing hiccup the byte stream can't be trusted.
    fn round_trip(&mut self, frame: &Frame) -> Result<Frame, ClientError> {
        let bytes = frame.encode();
        let deadline = Instant::now() + self.io_timeout;
        if self.stream.is_none() {
            let addr = self
                .addr
                .to_socket_addrs()
                .map_err(ClientError::Io)?
                .next()
                .ok_or_else(|| {
                    ClientError::Io(io::Error::new(io::ErrorKind::NotFound, "no address"))
                })?;
            let stream =
                TcpStream::connect_timeout(&addr, self.io_timeout).map_err(ClientError::Io)?;
            stream
                .set_read_timeout(Some(Duration::from_millis(20)))
                .map_err(ClientError::Io)?;
            let _ = stream.set_nodelay(true);
            self.read_buf.clear();
            self.stream = Some(stream);
        }
        let mut stream = self.stream.take().expect("connected above");
        let result = Self::round_trip_on(&mut stream, &mut self.read_buf, &bytes, deadline);
        if result.is_ok() {
            self.stream = Some(stream);
        }
        result
    }

    fn round_trip_on(
        stream: &mut TcpStream,
        read_buf: &mut Vec<u8>,
        bytes: &[u8],
        deadline: Instant,
    ) -> Result<Frame, ClientError> {
        stream.write_all(bytes).map_err(ClientError::Io)?;
        let mut scratch = [0u8; 16 * 1024];
        loop {
            match decode_frame(read_buf).map_err(ClientError::Protocol)? {
                Some((reply, consumed)) => {
                    read_buf.drain(..consumed);
                    return Ok(reply);
                }
                None => {
                    if Instant::now() >= deadline {
                        return Err(ClientError::Io(io::Error::new(
                            io::ErrorKind::TimedOut,
                            "reply timed out",
                        )));
                    }
                    match stream.read(&mut scratch) {
                        Ok(0) => {
                            // Peer closed mid-reply: a torn/absent reply is
                            // a transport failure, retryable.
                            return Err(ClientError::Io(io::Error::new(
                                io::ErrorKind::UnexpectedEof,
                                "connection closed before a full reply",
                            )));
                        }
                        Ok(n) => {
                            if read_buf.len() + n > MAX_FRAME_LEN + 4 {
                                return Err(ClientError::Protocol(DecodeError::Oversized {
                                    declared: (read_buf.len() + n) as u64,
                                }));
                            }
                            read_buf.extend_from_slice(&scratch[..n]);
                        }
                        Err(e)
                            if e.kind() == io::ErrorKind::WouldBlock
                                || e.kind() == io::ErrorKind::TimedOut
                                || e.kind() == io::ErrorKind::Interrupted => {}
                        Err(e) => return Err(ClientError::Io(e)),
                    }
                }
            }
        }
    }

    /// Next jitter sample in `[0, 1)` (xorshift64*).
    fn jitter(&mut self) -> f64 {
        let mut x = self.rng;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng = x;
        let bits = x.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 11;
        bits as f64 / (1u64 << 53) as f64
    }

    /// The delay before retry number `attempt` (1-based), honouring the
    /// server hint as a floor.
    fn backoff_delay(&mut self, attempt: u32, server_hint_ms: u64) -> Duration {
        let exp = self
            .policy
            .base_backoff
            .saturating_mul(1u32 << attempt.min(16))
            .min(self.policy.max_backoff);
        // Up to +50% jitter de-synchronises retry herds.
        let jittered = exp.mul_f64(1.0 + 0.5 * self.jitter());
        jittered.max(Duration::from_millis(server_hint_ms))
    }

    /// Embeds one sample, retrying retryable failures per the policy.
    ///
    /// `deadline_ms = 0` means no server-side deadline.
    ///
    /// # Errors
    ///
    /// [`ClientError::Server`] for terminal typed rejections,
    /// [`ClientError::RetriesExhausted`] when the budget runs out,
    /// [`ClientError::Io`]/[`ClientError::Protocol`] for unrecoverable
    /// transport problems.
    pub fn embed(
        &mut self,
        tenant: &str,
        model_id: &str,
        sample: &[f64],
        deadline_ms: u32,
    ) -> Result<WireEmbedding, ClientError> {
        let mut last_code: Option<ErrorCode> = None;
        for attempt in 1..=self.policy.max_attempts.max(1) {
            let id = self.next_id;
            self.next_id += 1;
            let request = Frame::EmbedRequest {
                id,
                deadline_ms,
                tenant: tenant.to_string(),
                model_id: model_id.to_string(),
                sample: sample.to_vec(),
            };
            let failure_hint_ms = match self.round_trip(&request) {
                Ok(Frame::EmbedReply {
                    id: reply_id,
                    label,
                    ideal_fidelity,
                    parameters,
                    source,
                }) => {
                    if reply_id != id {
                        return Err(ClientError::UnexpectedFrame);
                    }
                    return Ok(WireEmbedding {
                        label,
                        ideal_fidelity,
                        parameters,
                        source,
                        attempts: attempt,
                    });
                }
                Ok(Frame::ErrorReply {
                    code,
                    retry_after_ms,
                    message,
                    ..
                }) => {
                    if !code.is_retryable() {
                        return Err(ClientError::Server { code, message });
                    }
                    last_code = Some(code);
                    retry_after_ms
                }
                Ok(_) => return Err(ClientError::UnexpectedFrame),
                Err(ClientError::Io(_)) => {
                    // Transport failures (reset, torn reply, refused while a
                    // drained server restarts) are retryable.
                    last_code = None;
                    0
                }
                Err(e) => return Err(e),
            };
            if attempt < self.policy.max_attempts.max(1) {
                let delay = self.backoff_delay(attempt, failure_hint_ms);
                std::thread::sleep(delay);
            }
        }
        Err(ClientError::RetriesExhausted {
            attempts: self.policy.max_attempts.max(1),
            last_code,
        })
    }

    /// Liveness probe: one Ping/Pong round trip, no retries.
    ///
    /// # Errors
    ///
    /// [`ClientError`] on transport or protocol failure.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        match self.round_trip(&Frame::Ping)? {
            Frame::Pong => Ok(()),
            _ => Err(ClientError::UnexpectedFrame),
        }
    }

    /// Sends the drain control frame and waits for the acknowledgement.
    ///
    /// # Errors
    ///
    /// [`ClientError`] on transport or protocol failure.
    pub fn drain(&mut self) -> Result<(), ClientError> {
        match self.round_trip(&Frame::Drain)? {
            Frame::DrainAck => Ok(()),
            _ => Err(ClientError::UnexpectedFrame),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jitter_is_deterministic_per_seed() {
        let mut a = EnqClient::new("127.0.0.1:1", RetryPolicy::default());
        let mut b = EnqClient::new("127.0.0.1:1", RetryPolicy::default());
        for _ in 0..32 {
            let (x, y) = (a.jitter(), b.jitter());
            assert_eq!(x.to_bits(), y.to_bits());
            assert!((0.0..1.0).contains(&x));
        }
        let mut c = EnqClient::new(
            "127.0.0.1:1",
            RetryPolicy {
                jitter_seed: 999,
                ..RetryPolicy::default()
            },
        );
        assert_ne!(a.jitter().to_bits(), c.jitter().to_bits());
    }

    #[test]
    fn backoff_grows_is_capped_and_honours_server_floor() {
        let mut client = EnqClient::new(
            "127.0.0.1:1",
            RetryPolicy {
                max_attempts: 10,
                base_backoff: Duration::from_millis(10),
                max_backoff: Duration::from_millis(200),
                jitter_seed: 7,
            },
        );
        let d1 = client.backoff_delay(1, 0);
        assert!(d1 >= Duration::from_millis(20), "{d1:?}");
        // Jitter adds at most 50%.
        assert!(d1 <= Duration::from_millis(30), "{d1:?}");
        // Deep attempts saturate at max_backoff (+ jitter).
        let deep = client.backoff_delay(9, 0);
        assert!(deep <= Duration::from_millis(300), "{deep:?}");
        // The server's hint is a floor.
        let floored = client.backoff_delay(1, 5_000);
        assert!(floored >= Duration::from_secs(5), "{floored:?}");
    }
}

//! Per-tenant token-bucket admission control.
//!
//! Every [`EmbedRequest`](crate::Frame::EmbedRequest) names a tenant; each
//! tenant gets an independent token bucket so one chatty tenant exhausts
//! *its own* budget instead of starving the rest. A rejected request is
//! told **when** to come back ([`AdmissionControl::try_admit`] returns the
//! time until a token accrues), which the wire layer forwards as
//! `retry_after_ms` — clients never have to guess a backoff.
//!
//! The bucket is the classic continuous-refill kind: `burst` tokens of
//! capacity, refilled at `rate_per_sec`, both measured against a
//! monotonic clock at admit time (no background refill thread).

use std::collections::{HashMap, VecDeque};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Admission-control knobs.
#[derive(Debug, Clone, PartialEq)]
pub struct AdmissionConfig {
    /// Sustained tokens (requests) per second per tenant. `0.0` or less
    /// disables admission control entirely — every request is admitted.
    pub rate_per_sec: f64,
    /// Bucket capacity: how many requests a tenant can burst above the
    /// sustained rate. Clamped to at least 1 token.
    pub burst: f64,
    /// Upper bound on tracked tenants. When a new tenant arrives at
    /// capacity, the least-recently-active tenant's bucket is evicted (it
    /// re-forms, full, on that tenant's next request — eviction can only
    /// ever be *generous*).
    pub max_tenants: usize,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        Self {
            rate_per_sec: 0.0,
            burst: 8.0,
            max_tenants: 1024,
        }
    }
}

#[derive(Debug)]
struct Bucket {
    /// Tokens currently available, `<= burst`.
    tokens: f64,
    /// When `tokens` was last brought up to date.
    refilled_at: Instant,
}

/// The bucket map plus a second-chance eviction queue, guarded together
/// by one mutex.
///
/// Eviction must not scan the whole map under the global lock (at
/// `max_tenants` with tenant churn, an O(n) `min_by_key` scan stalls every
/// connection thread on every new tenant). Instead each tracked tenant has
/// exactly one entry in `order`, stamped with its activity time when
/// enqueued. Eviction pops the front: an entry whose tenant has been
/// active since it was stamped gets a *second chance* (re-enqueued with
/// the fresh stamp), otherwise the tenant is evicted. Re-enqueued entries
/// carry the current stamp, so within one eviction pass (the lock is
/// held, no activity can intervene) a second encounter always evicts —
/// the loop pops at most `2n` entries, and each re-enqueue is paid for by
/// an intervening admit of that tenant, making eviction amortized O(1).
/// The victim approximates the least-recently-active tenant; like the
/// exact scan it replaces, eviction is only ever *generous* (the evictee's
/// bucket re-forms full on its next request).
#[derive(Debug, Default)]
struct Table {
    buckets: HashMap<String, Bucket>,
    /// One `(tenant, activity stamp when enqueued)` entry per tracked
    /// tenant: pushed on insert, popped (and possibly re-pushed) only by
    /// eviction, removed when its tenant is evicted. Invariant:
    /// `order.len() == buckets.len()`.
    order: VecDeque<(String, Instant)>,
}

impl Table {
    /// Evicts one tenant via the second-chance queue. Must only be called
    /// when the table is non-empty.
    fn evict_one(&mut self) {
        while let Some((tenant, stamp)) = self.order.pop_front() {
            match self.buckets.get(&tenant) {
                Some(bucket) if bucket.refilled_at > stamp => {
                    // Active since enqueued: second chance with the
                    // current stamp.
                    let fresh = bucket.refilled_at;
                    self.order.push_back((tenant, fresh));
                }
                Some(_) => {
                    self.buckets.remove(&tenant);
                    return;
                }
                // Unreachable while the invariant holds, but a stale
                // entry is harmlessly dropped rather than trusted.
                None => {}
            }
        }
    }
}

/// The per-tenant token-bucket table. Interior-mutable and `Sync`: every
/// connection thread shares one instance.
#[derive(Debug)]
pub struct AdmissionControl {
    config: AdmissionConfig,
    table: Mutex<Table>,
}

impl AdmissionControl {
    /// Creates the table. `burst` is clamped to at least one token so an
    /// enabled limiter can always admit *something*.
    pub fn new(config: AdmissionConfig) -> Self {
        let config = AdmissionConfig {
            burst: config.burst.max(1.0),
            ..config
        };
        Self {
            config,
            table: Mutex::new(Table::default()),
        }
    }

    /// Whether admission control is enabled at all.
    pub fn is_enabled(&self) -> bool {
        self.config.rate_per_sec > 0.0
    }

    /// Tries to take one token from `tenant`'s bucket.
    ///
    /// # Errors
    ///
    /// Returns the time until the next token accrues — the retry hint a
    /// shed reply carries. Never errors when the limiter is disabled.
    pub fn try_admit(&self, tenant: &str) -> Result<(), Duration> {
        if !self.is_enabled() {
            return Ok(());
        }
        let now = Instant::now();
        let mut table = self.table.lock().expect("admission table poisoned");
        // A known tenant is served without copying its name: the owned key
        // is only allocated the first time a tenant shows up. (Admission
        // runs per request, so the steady-state path must stay
        // allocation-free.)
        if !table.buckets.contains_key(tenant) {
            if table.buckets.len() >= self.config.max_tenants.max(1) {
                // Evict an approximately-least-recently-active tenant to
                // stay bounded (amortized O(1), see [`Table`]). The
                // evictee loses nothing durable: its bucket re-forms full.
                table.evict_one();
            }
            table.buckets.insert(
                tenant.to_string(),
                Bucket {
                    tokens: self.config.burst,
                    refilled_at: now,
                },
            );
            table.order.push_back((tenant.to_string(), now));
        }
        let bucket = table
            .buckets
            .get_mut(tenant)
            .expect("present or just inserted");
        // Continuous refill since the last touch, capped at the burst size.
        let accrued =
            now.duration_since(bucket.refilled_at).as_secs_f64() * self.config.rate_per_sec;
        bucket.tokens = (bucket.tokens + accrued).min(self.config.burst);
        bucket.refilled_at = now;
        if bucket.tokens >= 1.0 {
            bucket.tokens -= 1.0;
            Ok(())
        } else {
            let deficit = 1.0 - bucket.tokens;
            Err(Duration::from_secs_f64(deficit / self.config.rate_per_sec))
        }
    }

    /// Number of tenants currently tracked.
    pub fn tracked_tenants(&self) -> usize {
        self.table
            .lock()
            .expect("admission table poisoned")
            .buckets
            .len()
    }

    /// Length of the internal eviction queue — exposed so tests can assert
    /// it stays in lock-step with the bucket table and never grows
    /// unboundedly under churn.
    #[cfg(test)]
    fn eviction_queue_len(&self) -> usize {
        self.table
            .lock()
            .expect("admission table poisoned")
            .order
            .len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_limiter_admits_everything() {
        let ac = AdmissionControl::new(AdmissionConfig::default());
        assert!(!ac.is_enabled());
        for _ in 0..10_000 {
            ac.try_admit("anyone").unwrap();
        }
        assert_eq!(ac.tracked_tenants(), 0);
    }

    #[test]
    fn burst_then_reject_with_positive_retry_hint() {
        let ac = AdmissionControl::new(AdmissionConfig {
            rate_per_sec: 10.0,
            burst: 2.0,
            max_tenants: 16,
        });
        ac.try_admit("t").unwrap();
        ac.try_admit("t").unwrap();
        let wait = ac.try_admit("t").unwrap_err();
        assert!(wait > Duration::ZERO);
        // One token accrues every 100 ms at 10/s; the hint can't promise
        // more than that.
        assert!(wait <= Duration::from_millis(110), "{wait:?}");
    }

    #[test]
    fn tenants_are_isolated() {
        let ac = AdmissionControl::new(AdmissionConfig {
            rate_per_sec: 1.0,
            burst: 1.0,
            max_tenants: 16,
        });
        ac.try_admit("noisy").unwrap();
        assert!(ac.try_admit("noisy").is_err());
        // A different tenant still has its full burst.
        ac.try_admit("quiet").unwrap();
    }

    #[test]
    fn tokens_refill_over_time() {
        let ac = AdmissionControl::new(AdmissionConfig {
            rate_per_sec: 1000.0,
            burst: 1.0,
            max_tenants: 16,
        });
        ac.try_admit("t").unwrap();
        let wait = ac.try_admit("t").unwrap_err();
        std::thread::sleep(wait + Duration::from_millis(2));
        ac.try_admit("t")
            .expect("token accrued after the hinted wait");
    }

    #[test]
    fn tenant_table_stays_bounded() {
        let ac = AdmissionControl::new(AdmissionConfig {
            rate_per_sec: 100.0,
            burst: 4.0,
            max_tenants: 8,
        });
        for i in 0..100 {
            ac.try_admit(&format!("tenant-{i}")).unwrap();
        }
        assert!(ac.tracked_tenants() <= 8);
    }

    /// Heavy tenant churn at capacity: the table and the internal
    /// eviction queue both stay bounded (the queue tracks the table in
    /// lock-step — a leak here would grow memory without bound even
    /// though `tracked_tenants` looks fine), and admit/reject semantics
    /// are unchanged by eviction pressure — a brand-new tenant always
    /// gets its full burst, an exhausted *resident* tenant is still
    /// rejected.
    #[test]
    fn eviction_under_churn_is_bounded_and_semantics_preserved() {
        let ac = AdmissionControl::new(AdmissionConfig {
            rate_per_sec: 0.001, // effectively no refill during the test
            burst: 2.0,
            max_tenants: 8,
        });
        // A resident tenant kept hot throughout the churn: touched before
        // every one-shot admit, so it is always the most-recently-active
        // tenant and must survive every eviction.
        ac.try_admit("resident").unwrap();
        ac.try_admit("resident").unwrap(); // burst exhausted from here on
        for i in 0..5_000 {
            // Activity: a rejected admit still counts as a touch.
            let _ = ac.try_admit("resident");
            // Every one-shot tenant gets its full burst on arrival,
            // regardless of how much eviction it causes.
            ac.try_admit(&format!("churn-{i}")).unwrap();
            assert!(ac.tracked_tenants() <= 8, "table escaped max_tenants");
            assert_eq!(
                ac.eviction_queue_len(),
                ac.tracked_tenants(),
                "eviction queue out of lock-step with bucket table"
            );
        }
        // The resident was never evicted: its bucket must still be
        // exhausted. (Had eviction dropped it, the bucket would have
        // re-formed full and this admit would succeed.)
        assert!(
            ac.try_admit("resident").is_err(),
            "resident tenant was evicted despite constant activity"
        );
        // Per-tenant burst semantics are intact after heavy churn.
        ac.try_admit("fresh").unwrap();
        ac.try_admit("fresh").unwrap();
        assert!(ac.try_admit("fresh").is_err());
    }
}

//! The `enqd` TCP front door.
//!
//! [`EnqdServer::spawn`] binds a listener and runs an acceptor on an
//! [`enq_parallel`] worker thread; each accepted connection gets its own
//! worker running a frame loop that feeds the shared
//! [`EmbedService`] micro-batcher — concurrent connections are what lets
//! the batcher form real batches. The front door's job is *survival*, in
//! three layers, checked in order for every embed request:
//!
//! 1. **drain** — a draining server answers [`ErrorCode::Draining`] and
//!    closes; in-flight admitted work still completes.
//! 2. **admission** — the tenant's token bucket
//!    ([`AdmissionControl`]) answers [`ErrorCode::RateLimited`] with the
//!    exact wait until a token accrues.
//! 3. **load shedding** — when the batcher's queue depth reaches
//!    [`NetConfig::max_pending`], the request is shed with
//!    [`ErrorCode::RetryAfter`] and a hint derived from an EWMA of
//!    observed service time × current depth. Shedding costs no compute:
//!    the request never enters the queue.
//!
//! Hostile input never reaches the service: malformed, oversized and
//! trailing-garbage frames fail closed with a best-effort
//! [`ErrorCode::BadRequest`] and a connection close; a half-sent frame
//! that stops making progress (slowloris) is timed out from the moment
//! its first byte arrived, so trickling one byte per tick buys nothing.

use crate::admission::{AdmissionConfig, AdmissionControl};
use crate::fault::{FaultPlan, WriteFault};
use crate::protocol::{
    decode_frame, duration_to_retry_ms, encode_embed_reply_into, encode_error_reply_into,
    wire_error, ErrorCode, Frame,
};
use enq_parallel::{spawn_worker, WorkerHandle};
use enq_serve::{EmbedService, SolutionSource};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Front-door knobs.
#[derive(Debug, Clone, PartialEq)]
pub struct NetConfig {
    /// Maximum concurrent connections; further accepts are answered with a
    /// typed [`ErrorCode::RetryAfter`] and closed.
    pub max_connections: usize,
    /// Queue-depth shed threshold: an embed request arriving while the
    /// batcher already holds this many queued requests is shed.
    pub max_pending: usize,
    /// Slowloris guard: a connection whose partially-received frame is
    /// older than this is closed, no matter how slowly it trickles bytes.
    pub read_timeout: Duration,
    /// Socket poll granularity (read timeout on the connection socket);
    /// bounds how fast drain and slowloris checks are noticed.
    pub tick: Duration,
    /// Per-tenant admission control (disabled by default).
    pub admission: AdmissionConfig,
}

impl Default for NetConfig {
    fn default() -> Self {
        Self {
            max_connections: 64,
            max_pending: 256,
            read_timeout: Duration::from_secs(2),
            tick: Duration::from_millis(10),
            admission: AdmissionConfig::default(),
        }
    }
}

/// Monotonic front-door counters (see [`ServerHandle::stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct NetStats {
    /// Connections accepted into a frame loop.
    pub connections_accepted: u64,
    /// Connections refused at the cap (typed reject, then close).
    pub connections_refused: u64,
    /// Embed requests answered successfully.
    pub served: u64,
    /// Embed requests shed at the queue-depth door.
    pub shed: u64,
    /// Embed requests refused by admission control.
    pub rate_limited: u64,
    /// Connections closed for protocol violations or slowloris timeouts.
    pub hostile_closes: u64,
}

/// Ceiling on a single service-time sample fed into the EWMA,
/// microseconds. Matches the 10 s upper clamp on
/// [`Shared::shed_retry_hint`]: a larger sample cannot change any hint the
/// server will ever emit, but it *can* overflow the smoothing arithmetic.
const MAX_SERVICE_SAMPLE_US: u64 = 10_000_000;

#[derive(Debug, Default)]
struct Shared {
    draining: AtomicBool,
    active_connections: AtomicUsize,
    connections_accepted: AtomicU64,
    connections_refused: AtomicU64,
    served: AtomicU64,
    shed: AtomicU64,
    rate_limited: AtomicU64,
    hostile_closes: AtomicU64,
    /// EWMA of observed embed service time, microseconds. Seeds shed
    /// retry hints.
    ewma_service_us: AtomicU64,
    /// Reusable per-connection (read, write) buffer pairs: a connection
    /// checks a pair out for its whole life and parks it on close, so a
    /// reconnect churn of short-lived connections does not re-grow frame
    /// buffers from scratch each time. Parked pairs are capped at
    /// [`NetConfig::max_connections`].
    conn_bufs: Mutex<Vec<(Vec<u8>, Vec<u8>)>>,
}

impl Shared {
    /// Checks a (read, write) buffer pair out of the connection pool.
    fn checkout_bufs(&self) -> (Vec<u8>, Vec<u8>) {
        self.conn_bufs
            .lock()
            .expect("connection buffer pool poisoned")
            .pop()
            .unwrap_or_default()
    }

    /// Parks a buffer pair for the next connection, keeping at most `cap`
    /// pairs (beyond that the buffers are simply dropped).
    fn park_bufs(&self, mut read: Vec<u8>, mut write: Vec<u8>, cap: usize) {
        read.clear();
        write.clear();
        let mut pool = self
            .conn_bufs
            .lock()
            .expect("connection buffer pool poisoned");
        if pool.len() < cap {
            pool.push((read, write));
        }
    }

    fn stats(&self) -> NetStats {
        NetStats {
            connections_accepted: self.connections_accepted.load(Ordering::Relaxed),
            connections_refused: self.connections_refused.load(Ordering::Relaxed),
            served: self.served.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            rate_limited: self.rate_limited.load(Ordering::Relaxed),
            hostile_closes: self.hostile_closes.load(Ordering::Relaxed),
        }
    }

    fn observe_service_time(&self, elapsed: Duration) {
        // A stalled connection can report an arbitrarily large elapsed
        // time; beyond the retry-hint clamp ceiling (10 s) the exact value
        // carries no information, and an unclamped sample would overflow
        // `old * 4 + sample` and corrupt every subsequent retry hint.
        let sample = u64::try_from(elapsed.as_micros())
            .unwrap_or(u64::MAX)
            .min(MAX_SERVICE_SAMPLE_US);
        // Racy read-modify-write is fine: this is a smoothing hint, not an
        // invariant.
        let old = self.ewma_service_us.load(Ordering::Relaxed);
        let new = if old == 0 {
            sample
        } else {
            (old.saturating_mul(4).saturating_add(sample)) / 5
        };
        self.ewma_service_us.store(new, Ordering::Relaxed);
    }

    /// Retry hint for a shed request: roughly how long the current
    /// backlog takes to clear at the observed service rate.
    fn shed_retry_hint(&self, depth: usize) -> u64 {
        let per_request_us = self.ewma_service_us.load(Ordering::Relaxed).max(100);
        (per_request_us.saturating_mul(depth as u64 + 1) / 1000).clamp(1, 10_000)
    }
}

/// The `enqd` server. Construct with [`EnqdServer::spawn`]; the returned
/// [`ServerHandle`] is the only handle.
#[derive(Debug)]
pub struct EnqdServer;

/// A running server: address, drain control, stats.
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    acceptor: WorkerHandle<()>,
}

impl ServerHandle {
    /// The bound address (real port, even when spawned on port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Begins a graceful drain: the listener stops accepting, every
    /// connection finishes the request it is processing (admitted work is
    /// never abandoned) and closes, then the acceptor exits. Idempotent;
    /// also triggered by a [`Frame::Drain`] control frame.
    pub fn drain(&self) {
        self.shared.draining.store(true, Ordering::SeqCst);
    }

    /// Whether a drain has been requested (by [`ServerHandle::drain`] or a
    /// control frame).
    pub fn is_draining(&self) -> bool {
        self.shared.draining.load(Ordering::SeqCst)
    }

    /// Whether the server has fully wound down (listener closed, all
    /// connections finished).
    pub fn is_finished(&self) -> bool {
        self.acceptor.is_finished()
    }

    /// Current front-door counters.
    pub fn stats(&self) -> NetStats {
        self.shared.stats()
    }

    /// Number of live connections.
    pub fn active_connections(&self) -> usize {
        self.shared.active_connections.load(Ordering::SeqCst)
    }

    /// Drains (if not already draining) and blocks until the server has
    /// fully wound down, returning the final counters.
    pub fn join(self) -> NetStats {
        self.drain();
        let shared = Arc::clone(&self.shared);
        // A panicking acceptor still yields the shared counters.
        let _ = self.acceptor.join();
        shared.stats()
    }
}

impl EnqdServer {
    /// Binds `addr` (use port 0 for an ephemeral port) and spawns the
    /// acceptor. The server serves until [`ServerHandle::drain`] (or a
    /// [`Frame::Drain`] control frame) winds it down.
    ///
    /// # Errors
    ///
    /// Any [`io::Error`] from binding the listener.
    pub fn spawn(
        service: Arc<EmbedService>,
        addr: &str,
        config: NetConfig,
        faults: FaultPlan,
    ) -> io::Result<ServerHandle> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared::default());
        let admission = Arc::new(AdmissionControl::new(config.admission.clone()));
        let acceptor = {
            let shared = Arc::clone(&shared);
            spawn_worker("enqd-acceptor", move |token| {
                let mut conns: Vec<WorkerHandle<()>> = Vec::new();
                let mut conn_seq = 0u64;
                loop {
                    if token.is_cancelled() || shared.draining.load(Ordering::SeqCst) {
                        break;
                    }
                    match listener.accept() {
                        Ok((stream, _peer)) => {
                            conns.retain(|h| !h.is_finished());
                            if conns.len() >= config.max_connections {
                                shared.connections_refused.fetch_add(1, Ordering::Relaxed);
                                refuse_connection(stream);
                                continue;
                            }
                            shared.connections_accepted.fetch_add(1, Ordering::Relaxed);
                            shared.active_connections.fetch_add(1, Ordering::SeqCst);
                            let service = Arc::clone(&service);
                            let shared = Arc::clone(&shared);
                            let admission = Arc::clone(&admission);
                            let faults = faults.clone();
                            let config = config.clone();
                            conn_seq += 1;
                            conns.push(spawn_worker(
                                &format!("enqd-conn-{conn_seq}"),
                                move |conn_token| {
                                    connection_loop(
                                        stream,
                                        &service,
                                        &shared,
                                        &admission,
                                        &faults,
                                        &config,
                                        &conn_token,
                                    );
                                    shared.active_connections.fetch_sub(1, Ordering::SeqCst);
                                },
                            ));
                        }
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                            std::thread::sleep(config.tick.min(Duration::from_millis(5)));
                        }
                        Err(_) => {
                            // Transient accept failure (EMFILE, ECONNABORTED):
                            // back off and keep serving.
                            std::thread::sleep(config.tick);
                        }
                    }
                }
                // Graceful drain: the listener is closed (dropped) and every
                // connection finishes its in-flight request before exiting.
                drop(listener);
                for conn in conns {
                    let _ = conn.join();
                }
            })
        };
        Ok(ServerHandle {
            addr,
            shared,
            acceptor,
        })
    }
}

/// Best-effort typed reject for a connection refused at the cap.
fn refuse_connection(mut stream: TcpStream) {
    let reply = Frame::ErrorReply {
        id: 0,
        code: ErrorCode::RetryAfter,
        retry_after_ms: 50,
        message: "connection limit reached".into(),
    };
    let _ = stream.write_all(&reply.encode());
}

/// What the frame handler tells the connection loop to do next.
enum Disposition {
    /// Keep serving this connection.
    KeepOpen,
    /// Close the connection (handler already wrote whatever it wanted).
    Close,
}

/// Checks a buffer pair out of the shared pool, runs the frame loop, and
/// parks the pair again on any exit path.
fn connection_loop(
    stream: TcpStream,
    service: &EmbedService,
    shared: &Shared,
    admission: &AdmissionControl,
    faults: &FaultPlan,
    config: &NetConfig,
    token: &enq_parallel::CancelToken,
) {
    let (mut buf, mut write_buf) = shared.checkout_bufs();
    run_connection(
        stream,
        service,
        shared,
        admission,
        faults,
        config,
        token,
        &mut buf,
        &mut write_buf,
    );
    shared.park_bufs(buf, write_buf, config.max_connections);
}

#[allow(clippy::too_many_lines, clippy::too_many_arguments)]
fn run_connection(
    mut stream: TcpStream,
    service: &EmbedService,
    shared: &Shared,
    admission: &AdmissionControl,
    faults: &FaultPlan,
    config: &NetConfig,
    token: &enq_parallel::CancelToken,
    buf: &mut Vec<u8>,
    write_buf: &mut Vec<u8>,
) {
    if stream.set_read_timeout(Some(config.tick)).is_err() {
        return;
    }
    let _ = stream.set_nodelay(true);
    let mut scratch = [0u8; 16 * 1024];
    // Slowloris guard: measured from the first byte of the pending frame,
    // not from the last byte received — trickling resets nothing.
    let mut frame_started: Option<Instant> = None;
    loop {
        if token.is_cancelled() || shared.draining.load(Ordering::SeqCst) {
            return;
        }
        if let Some(delay) = faults.read_delay() {
            std::thread::sleep(delay);
        }
        // Drain every complete frame already buffered.
        loop {
            match decode_frame(buf) {
                Ok(Some((frame, consumed))) => {
                    buf.drain(..consumed);
                    frame_started = if buf.is_empty() {
                        None
                    } else {
                        Some(Instant::now())
                    };
                    match handle_frame(
                        frame,
                        &mut stream,
                        service,
                        shared,
                        admission,
                        faults,
                        config,
                        write_buf,
                    ) {
                        Disposition::KeepOpen => {}
                        Disposition::Close => return,
                    }
                    if shared.draining.load(Ordering::SeqCst) {
                        return;
                    }
                }
                Ok(None) => break,
                Err(e) => {
                    // Fail closed: typed best-effort reject, then close.
                    shared.hostile_closes.fetch_add(1, Ordering::Relaxed);
                    encode_error_reply_into(write_buf, 0, ErrorCode::BadRequest, 0, &e.to_string());
                    let _ = stream.write_all(write_buf);
                    return;
                }
            }
        }
        match stream.read(&mut scratch) {
            Ok(0) => return, // peer closed
            Ok(n) => {
                if buf.is_empty() {
                    frame_started = Some(Instant::now());
                }
                buf.extend_from_slice(&scratch[..n]);
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut => {
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => return,
        }
        if let Some(started) = frame_started {
            if started.elapsed() >= config.read_timeout {
                // Slowloris: a frame has been pending too long.
                shared.hostile_closes.fetch_add(1, Ordering::Relaxed);
                return;
            }
        }
    }
}

/// Handles one decoded frame, encoding any reply into the connection's
/// reusable `out` buffer. Overload replies (drain, rate limit, shed) carry
/// **static** messages: they are exactly the replies emitted in volume
/// when the server is already struggling, so they must not format fresh
/// strings per request — the typed `retry_after_ms` field carries the
/// per-request signal instead.
#[allow(clippy::too_many_arguments)]
fn handle_frame(
    frame: Frame,
    stream: &mut TcpStream,
    service: &EmbedService,
    shared: &Shared,
    admission: &AdmissionControl,
    faults: &FaultPlan,
    config: &NetConfig,
    out: &mut Vec<u8>,
) -> Disposition {
    match frame {
        Frame::Ping => {
            Frame::Pong.encode_into(out);
            write_reply(stream, out, faults)
        }
        Frame::Drain => {
            shared.draining.store(true, Ordering::SeqCst);
            Frame::DrainAck.encode_into(out);
            let _ = write_reply(stream, out, faults);
            Disposition::Close
        }
        Frame::EmbedRequest {
            id,
            deadline_ms,
            tenant,
            model_id,
            sample,
        } => {
            if shared.draining.load(Ordering::SeqCst) {
                encode_error_reply_into(out, id, ErrorCode::Draining, 100, "server is draining");
                let _ = write_reply(stream, out, faults);
                return Disposition::Close;
            }
            if let Err(wait) = admission.try_admit(&tenant) {
                shared.rate_limited.fetch_add(1, Ordering::Relaxed);
                encode_error_reply_into(
                    out,
                    id,
                    ErrorCode::RateLimited,
                    duration_to_retry_ms(wait).max(1),
                    "tenant is over its admission rate",
                );
                return write_reply(stream, out, faults);
            }
            let depth = service.queue_depth();
            if depth >= config.max_pending.max(1) {
                shared.shed.fetch_add(1, Ordering::Relaxed);
                encode_error_reply_into(
                    out,
                    id,
                    ErrorCode::RetryAfter,
                    shared.shed_retry_hint(depth),
                    "queue depth at capacity",
                );
                return write_reply(stream, out, faults);
            }
            let deadline = (deadline_ms > 0)
                .then(|| Instant::now() + Duration::from_millis(deadline_ms.into()));
            let started = Instant::now();
            match service.embed_with_deadline(&model_id, &sample, deadline) {
                Ok(response) => {
                    shared.served.fetch_add(1, Ordering::Relaxed);
                    shared.observe_service_time(started.elapsed());
                    // Encode straight from the shared solution — the
                    // parameter vector is never cloned into an owned frame.
                    encode_embed_reply_into(
                        out,
                        id,
                        response.label() as u64,
                        response.embedding().ideal_fidelity,
                        &response.embedding().parameters,
                        match response.source {
                            SolutionSource::Computed => 0,
                            SolutionSource::CacheHit => 1,
                            SolutionSource::BatchDedup => 2,
                        },
                    );
                }
                Err(e) => {
                    let (code, retry_after_ms, message) = wire_error(&e);
                    encode_error_reply_into(out, id, code, retry_after_ms, &message);
                }
            }
            write_reply(stream, out, faults)
        }
        // A client has no business sending server-side frames; treat as
        // hostile and close.
        Frame::EmbedReply { .. } | Frame::ErrorReply { .. } | Frame::Pong | Frame::DrainAck => {
            shared.hostile_closes.fetch_add(1, Ordering::Relaxed);
            encode_error_reply_into(
                out,
                0,
                ErrorCode::BadRequest,
                0,
                "unexpected server-side frame from client",
            );
            let _ = stream.write_all(out);
            Disposition::Close
        }
    }
}

/// Writes one already-encoded reply through the fault layer. Any fault or
/// write failure closes the connection — a half-written frame can never be
/// recovered by the peer.
fn write_reply(stream: &mut TcpStream, bytes: &[u8], faults: &FaultPlan) -> Disposition {
    match faults.on_write() {
        WriteFault::None => {
            if stream.write_all(bytes).is_ok() {
                Disposition::KeepOpen
            } else {
                Disposition::Close
            }
        }
        WriteFault::CloseConnection => Disposition::Close,
        WriteFault::IoError => Disposition::Close,
        WriteFault::Truncate => {
            let _ = stream.write_all(&bytes[..bytes.len() / 2]);
            Disposition::Close
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Regression test: a stalled connection reports a pathological elapsed
    /// duration whose microsecond count saturates to `u64::MAX`. The old
    /// smoothing code computed `old * 4 + sample`, which wraps (and panics
    /// in debug builds) on the second such observation, corrupting every
    /// subsequent retry hint. Samples are now clamped before smoothing.
    #[test]
    fn pathological_service_time_cannot_corrupt_retry_hints() {
        let shared = Shared::default();
        // ~585k years: `as_micros()` exceeds u64::MAX, so the conversion
        // saturates exactly as it would for a wedged connection clock.
        let stalled = Duration::from_secs(u64::MAX / 1_000);
        shared.observe_service_time(stalled);
        // Old code: ewma == u64::MAX here, and the next observation wraps.
        shared.observe_service_time(stalled);
        let ewma = shared.ewma_service_us.load(Ordering::Relaxed);
        assert!(
            ewma <= MAX_SERVICE_SAMPLE_US,
            "EWMA {ewma} escaped the sample ceiling"
        );
        // The hint stays in its documented [1 ms, 10 s] band even at depth.
        let hint = shared.shed_retry_hint(1_000);
        assert!(
            (1..=10_000).contains(&hint),
            "retry hint {hint} out of band"
        );
    }

    /// The EWMA still tracks ordinary samples after a pathological one: a
    /// burst of fast requests pulls the hint back down instead of being
    /// dominated by a wrapped/saturated value.
    #[test]
    fn ewma_recovers_after_pathological_sample() {
        let shared = Shared::default();
        shared.observe_service_time(Duration::from_secs(u64::MAX / 1_000));
        for _ in 0..200 {
            shared.observe_service_time(Duration::from_micros(500));
        }
        let ewma = shared.ewma_service_us.load(Ordering::Relaxed);
        assert!(ewma < 1_000, "EWMA {ewma} did not converge back down");
    }
}

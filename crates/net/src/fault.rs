//! Injectable faults for the server's connection I/O path.
//!
//! The fault harness answers one question: *does the server survive its
//! own failure modes?* A [`FaultPlan`] is threaded into
//! [`EnqdServer`](crate::EnqdServer) at spawn time and consulted at the
//! two spots where a real deployment bleeds — reading a request and
//! writing a reply. Tests arm a fault, drive traffic, then assert the
//! registry/cache/batcher invariants still hold and a follow-up request
//! returns bit-identical results to an unfaulted run.
//!
//! All knobs are atomics on a shared `Arc`, so a test can re-arm faults
//! while the server is live.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// What the server should do at an I/O point (the fault layer's verdict).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteFault {
    /// No fault: write the reply normally.
    None,
    /// Drop the connection without writing (simulates a peer RST / a
    /// crashed proxy mid-reply).
    CloseConnection,
    /// Fail the write with an I/O error (simulates a full send buffer on
    /// a dead peer).
    IoError,
    /// Write only the first half of the encoded reply, then close
    /// (simulates a torn write — the *client* must fail closed).
    Truncate,
}

#[derive(Debug, Default)]
struct FaultState {
    /// Remaining replies to write before the armed write fault fires
    /// (`u64::MAX` = disarmed).
    write_fault_after: AtomicU64,
    /// Which [`WriteFault`] fires when the countdown hits zero (encoded as
    /// u8; 0 = None).
    write_fault_kind: AtomicU64,
    /// Artificial pre-read delay in microseconds (0 = none) — slows the
    /// server's read loop to widen race windows.
    read_delay_us: AtomicU64,
    /// Count of faults actually fired (test observability).
    fired: AtomicUsize,
}

/// A shareable, re-armable fault plan. `FaultPlan::default()` is the
/// no-fault plan production uses.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    state: Arc<FaultState>,
}

const KIND_NONE: u64 = 0;
const KIND_CLOSE: u64 = 1;
const KIND_IO_ERROR: u64 = 2;
const KIND_TRUNCATE: u64 = 3;

impl FaultPlan {
    /// The no-fault plan.
    pub fn none() -> Self {
        let plan = Self::default();
        plan.state
            .write_fault_after
            .store(u64::MAX, Ordering::SeqCst);
        plan
    }

    /// Arms a write fault: the `after`-th reply write (0-based) is
    /// replaced by `kind`. One-shot — the plan disarms after firing.
    pub fn arm_write_fault(&self, after: u64, kind: WriteFault) {
        let encoded = match kind {
            WriteFault::None => KIND_NONE,
            WriteFault::CloseConnection => KIND_CLOSE,
            WriteFault::IoError => KIND_IO_ERROR,
            WriteFault::Truncate => KIND_TRUNCATE,
        };
        self.state.write_fault_kind.store(encoded, Ordering::SeqCst);
        self.state.write_fault_after.store(after, Ordering::SeqCst);
    }

    /// Slows every connection read by `delay` (0 disables).
    pub fn set_read_delay(&self, delay: Duration) {
        self.state.read_delay_us.store(
            u64::try_from(delay.as_micros()).unwrap_or(u64::MAX),
            Ordering::SeqCst,
        );
    }

    /// How many armed faults have fired so far.
    pub fn fired(&self) -> usize {
        self.state.fired.load(Ordering::SeqCst)
    }

    /// Server hook: consulted before each reply write. Counts down the
    /// armed fault and fires it exactly once.
    pub(crate) fn on_write(&self) -> WriteFault {
        let remaining = self.state.write_fault_after.load(Ordering::SeqCst);
        if remaining == u64::MAX {
            return WriteFault::None;
        }
        let previous =
            self.state
                .write_fault_after
                .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |v| match v {
                    u64::MAX => None,
                    0 => Some(u64::MAX), // fire and disarm
                    n => Some(n - 1),
                });
        match previous {
            Ok(0) => {
                self.state.fired.fetch_add(1, Ordering::SeqCst);
                match self.state.write_fault_kind.load(Ordering::SeqCst) {
                    KIND_CLOSE => WriteFault::CloseConnection,
                    KIND_IO_ERROR => WriteFault::IoError,
                    KIND_TRUNCATE => WriteFault::Truncate,
                    _ => WriteFault::None,
                }
            }
            _ => WriteFault::None,
        }
    }

    /// Server hook: the artificial delay to apply before each read poll.
    pub(crate) fn read_delay(&self) -> Option<Duration> {
        match self.state.read_delay_us.load(Ordering::SeqCst) {
            0 => None,
            us => Some(Duration::from_micros(us)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disarmed_plan_never_faults() {
        let plan = FaultPlan::none();
        for _ in 0..100 {
            assert_eq!(plan.on_write(), WriteFault::None);
        }
        assert_eq!(plan.fired(), 0);
        assert_eq!(plan.read_delay(), None);
    }

    #[test]
    fn armed_write_fault_fires_exactly_once_at_the_countdown() {
        let plan = FaultPlan::none();
        plan.arm_write_fault(2, WriteFault::IoError);
        assert_eq!(plan.on_write(), WriteFault::None);
        assert_eq!(plan.on_write(), WriteFault::None);
        assert_eq!(plan.on_write(), WriteFault::IoError);
        assert_eq!(plan.fired(), 1);
        // Disarmed afterwards.
        for _ in 0..10 {
            assert_eq!(plan.on_write(), WriteFault::None);
        }
        // Re-armable.
        plan.arm_write_fault(0, WriteFault::Truncate);
        assert_eq!(plan.on_write(), WriteFault::Truncate);
        assert_eq!(plan.fired(), 2);
    }

    #[test]
    fn read_delay_round_trips() {
        let plan = FaultPlan::none();
        plan.set_read_delay(Duration::from_micros(250));
        assert_eq!(plan.read_delay(), Some(Duration::from_micros(250)));
        plan.set_read_delay(Duration::ZERO);
        assert_eq!(plan.read_delay(), None);
    }

    #[test]
    fn clones_share_state() {
        let plan = FaultPlan::none();
        let clone = plan.clone();
        plan.arm_write_fault(0, WriteFault::CloseConnection);
        assert_eq!(clone.on_write(), WriteFault::CloseConnection);
        assert_eq!(plan.fired(), 1);
    }
}

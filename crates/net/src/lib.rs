//! # enq-net
//!
//! The **network serving tier** of the EnQode reproduction: `enqd`, a TCP
//! front door over [`enq_serve::EmbedService`], built for survival rather
//! than features. Everything is hand-rolled on `std::net` — the offline
//! build has zero external RPC dependencies.
//!
//! * [`protocol`] — the length-prefixed binary wire format
//!   ([`Frame`]/[`decode_frame`]), fail-closed on anything malformed,
//!   oversized or trailing-garbage.
//! * [`AdmissionControl`] — per-tenant token buckets; a rejected request
//!   is told exactly when a token accrues.
//! * [`EnqdServer`] — the acceptor + per-connection frame loops (on
//!   [`enq_parallel`] worker threads) feeding the shared micro-batcher;
//!   queue-depth load shedding with typed
//!   [`RetryAfter`](ErrorCode::RetryAfter) replies; per-request deadlines
//!   propagated into the batcher so expired work is dropped before
//!   compute; graceful drain that completes in-flight admitted requests.
//! * [`EnqClient`] — the blocking client with bounded
//!   exponential-backoff-plus-jitter retries that honour server
//!   `retry_after_ms` hints as a floor and never retry terminal codes.
//! * [`FaultPlan`] — the injectable fault layer behind the fault-injection
//!   harness: torn writes, dropped connections and slowed reads on the
//!   live server, so tests can prove the service invariants survive.
//!
//! ```text
//!  client ──TCP──► acceptor ──► conn loop ──► drain? admit? shed? ──► EmbedService
//!                                  ▲                 │ typed ErrorReply    │
//!                                  └── FaultPlan ────┴─── EmbedReply ◄─────┘
//! ```

#![warn(missing_docs)]

mod admission;
mod client;
mod fault;
pub mod protocol;
mod server;

pub use admission::{AdmissionConfig, AdmissionControl};
pub use client::{ClientError, EnqClient, RetryPolicy, WireEmbedding};
pub use fault::{FaultPlan, WriteFault};
pub use protocol::{decode_frame, wire_error, DecodeError, ErrorCode, Frame, MAX_FRAME_LEN};
pub use server::{EnqdServer, NetConfig, NetStats, ServerHandle};

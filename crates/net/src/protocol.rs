//! The `enqd` wire protocol: a small length-prefixed binary framing over
//! TCP, hand-rolled so the serving tier has **zero** external RPC
//! dependencies.
//!
//! # Framing
//!
//! ```text
//! [u32 LE frame_len] [u8 frame_type] [payload …]
//! ```
//!
//! `frame_len` counts everything after the length word (the type byte plus
//! the payload), and is capped at [`MAX_FRAME_LEN`] — a longer length
//! prefix is rejected **before** any allocation, so a hostile 4-byte
//! header cannot reserve gigabytes. Inside payloads:
//!
//! * strings are `[u16 LE len][utf8 bytes]`;
//! * f64 vectors are `[u32 LE count][count × f64 LE]` (bit-exact: values
//!   round-trip through [`f64::to_le_bytes`], NaN payloads included);
//! * integers are fixed-width little-endian.
//!
//! Decoding is **fail-closed**: truncated fields, trailing bytes, unknown
//! frame types, invalid UTF-8 and oversized declarations all surface a
//! typed [`DecodeError`] — never a panic, never a partial frame.

use enq_serve::ServeError;
use std::borrow::Cow;
use std::fmt;
use std::time::Duration;

/// Hard cap on `frame_len` (type byte + payload). One embed request for a
/// 64-qubit-scale sample is a few KiB; 1 MiB leaves two orders of
/// magnitude of headroom while bounding what a hostile length prefix can
/// make the server buffer.
pub const MAX_FRAME_LEN: usize = 1 << 20;

/// Typed error codes carried by [`Frame::ErrorReply`].
///
/// The split that matters to clients is [`ErrorCode::is_retryable`]:
/// retryable codes mean *this exact request can succeed later* (back off
/// and resend, honouring `retry_after_ms`); terminal codes mean resending
/// the same request is pointless.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u16)]
pub enum ErrorCode {
    /// The request frame was malformed (decode failure, bad field).
    /// Terminal.
    BadRequest = 1,
    /// The request named a model id with no registered pipeline. Terminal.
    ModelNotFound = 2,
    /// The embedding itself failed (dimension mismatch, zero vector, …).
    /// Terminal.
    EmbedFailed = 3,
    /// The server shed the request under queue-depth overload. Retryable
    /// after `retry_after_ms`.
    RetryAfter = 4,
    /// The tenant's token bucket is empty. Retryable after
    /// `retry_after_ms`.
    RateLimited = 5,
    /// The server is draining and no longer accepts new work. Retryable
    /// (against a replacement instance, or after the drain).
    Draining = 6,
    /// The request's deadline expired while it was queued; no compute was
    /// spent on it. Terminal — the deadline has passed, resending the same
    /// expired intent cannot succeed.
    DeadlineExceeded = 7,
    /// A background rebuild is in flight for the model; `retry_after_ms`
    /// carries the rebuild's estimated remaining time. Retryable.
    RebuildInProgress = 8,
    /// No recorded traffic exists to refresh the model from. Terminal —
    /// retrying cannot conjure traffic.
    NoTraffic = 9,
    /// Internal server error. Terminal.
    Internal = 10,
    /// The request carried a non-finite (NaN or infinite) feature value.
    /// Terminal — the same sample can never embed; resending it is
    /// pointless. (The wire format itself round-trips NaN payloads
    /// bit-exactly; the *serving* layer rejects them before any cache
    /// tier, and this code carries that rejection back.)
    InvalidFeatures = 11,
}

impl ErrorCode {
    /// Decodes a wire code, rejecting unknown values (fail closed).
    pub fn from_u16(code: u16) -> Option<Self> {
        Some(match code {
            1 => Self::BadRequest,
            2 => Self::ModelNotFound,
            3 => Self::EmbedFailed,
            4 => Self::RetryAfter,
            5 => Self::RateLimited,
            6 => Self::Draining,
            7 => Self::DeadlineExceeded,
            8 => Self::RebuildInProgress,
            9 => Self::NoTraffic,
            10 => Self::Internal,
            11 => Self::InvalidFeatures,
            _ => return None,
        })
    }

    /// Whether a client should back off and resend the same request.
    pub fn is_retryable(self) -> bool {
        matches!(
            self,
            Self::RetryAfter | Self::RateLimited | Self::Draining | Self::RebuildInProgress
        )
    }
}

/// Maps a serve-layer error onto its wire representation: the typed code,
/// the retry hint (0 for terminal codes unless the serve layer supplied
/// one) and a human-readable message.
///
/// The retryable/terminal split mirrors the serve layer's semantics:
/// [`ServeError::RebuildInProgress`] is retryable and forwards the
/// rebuild's [estimated remaining time](enq_serve::RebuildTicket::estimated_remaining)
/// as the hint; [`ServeError::NoTraffic`] is terminal (retrying cannot
/// conjure recorded traffic).
///
/// **Retryable** codes carry static messages (`Cow::Borrowed`): they are
/// exactly the replies a server under overload or drain emits in volume,
/// and formatting a fresh `String` per shed request would put allocation
/// on the one path that must stay cheap. The per-request signal (the retry
/// delay, the rebuild estimate) travels in the typed `retry_after_ms`
/// field, not the prose. Terminal codes format their detail normally —
/// they are rare and the detail matters.
pub fn wire_error(error: &ServeError) -> (ErrorCode, u64, Cow<'static, str>) {
    match error {
        ServeError::ModelNotFound(_) => (ErrorCode::ModelNotFound, 0, error.to_string().into()),
        ServeError::Embed(_) => (ErrorCode::EmbedFailed, 0, error.to_string().into()),
        ServeError::ShuttingDown => (
            ErrorCode::Draining,
            100,
            Cow::Borrowed("the embedding service is shutting down"),
        ),
        ServeError::DeadlineExceeded { .. } => {
            (ErrorCode::DeadlineExceeded, 0, error.to_string().into())
        }
        ServeError::RebuildInProgress { retry_after, .. } => (
            ErrorCode::RebuildInProgress,
            duration_to_retry_ms(*retry_after),
            Cow::Borrowed(
                "a background rebuild of this model is in flight; retry after the hinted delay",
            ),
        ),
        ServeError::NonFiniteFeature { .. } => {
            (ErrorCode::InvalidFeatures, 0, error.to_string().into())
        }
        ServeError::NoTraffic(_) => (ErrorCode::NoTraffic, 0, error.to_string().into()),
        _ => (ErrorCode::Internal, 0, error.to_string().into()),
    }
}

/// Converts a retry hint to whole milliseconds, rounding sub-millisecond
/// hints **up** so a positive hint never degrades to "retry immediately".
pub fn duration_to_retry_ms(d: Duration) -> u64 {
    if d.is_zero() {
        0
    } else {
        u64::try_from(d.as_millis()).unwrap_or(u64::MAX).max(1)
    }
}

/// One protocol frame. See the [module docs](self) for the byte layout.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// Client → server: embed one sample.
    EmbedRequest {
        /// Client-chosen correlation id, echoed in the reply.
        id: u64,
        /// Request deadline in milliseconds from receipt; `0` = no
        /// deadline. Propagated into the batcher so expired work is
        /// dropped before compute.
        deadline_ms: u32,
        /// Tenant name for per-tenant admission control.
        tenant: String,
        /// Which registered model serves the request.
        model_id: String,
        /// The raw (pre-feature-extraction) sample.
        sample: Vec<f64>,
    },
    /// Server → client: a successful embedding.
    EmbedReply {
        /// Echo of the request id.
        id: u64,
        /// The class label the pipeline chose.
        label: u64,
        /// Noiseless fidelity of the prepared state.
        ideal_fidelity: f64,
        /// The ansatz rotation parameters (bit-exact).
        parameters: Vec<f64>,
        /// How the solution was obtained: 0 computed, 1 cache hit, 2 batch
        /// dedup.
        source: u8,
    },
    /// Server → client: a typed failure.
    ErrorReply {
        /// Echo of the request id (`0` when no request could be parsed).
        id: u64,
        /// The typed error code.
        code: ErrorCode,
        /// Retry hint in milliseconds (`0` = none / terminal).
        retry_after_ms: u64,
        /// Human-readable detail.
        message: String,
    },
    /// Liveness probe.
    Ping,
    /// Liveness answer.
    Pong,
    /// Control command: begin a graceful drain.
    Drain,
    /// Drain acknowledged; the server stops accepting and finishes
    /// in-flight work.
    DrainAck,
}

const TYPE_EMBED_REQUEST: u8 = 0x01;
const TYPE_EMBED_REPLY: u8 = 0x02;
const TYPE_ERROR_REPLY: u8 = 0x03;
const TYPE_PING: u8 = 0x04;
const TYPE_PONG: u8 = 0x05;
const TYPE_DRAIN: u8 = 0x06;
const TYPE_DRAIN_ACK: u8 = 0x07;

/// Why a byte sequence failed to decode as a frame. Every variant closes
/// the connection — a peer that framed one message wrong cannot be trusted
/// to frame the next one right.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The length prefix exceeds [`MAX_FRAME_LEN`] (rejected before any
    /// payload is buffered).
    Oversized {
        /// The declared frame length.
        declared: u64,
    },
    /// The length prefix is too short to hold even the type byte.
    EmptyFrame,
    /// The frame type byte is not a known frame.
    UnknownType(u8),
    /// A field ran past the end of the frame.
    Truncated(&'static str),
    /// The frame decoded cleanly but left unconsumed payload bytes —
    /// treated as corruption, not as forward-compatible padding.
    TrailingBytes {
        /// How many bytes were left over.
        extra: usize,
    },
    /// A string field held invalid UTF-8.
    InvalidUtf8(&'static str),
    /// An error reply carried an unknown error code.
    UnknownErrorCode(u16),
    /// A declared element count does not fit in the frame.
    CountOverflow(&'static str),
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::Oversized { declared } => {
                write!(f, "frame declares {declared} bytes (cap {MAX_FRAME_LEN})")
            }
            DecodeError::EmptyFrame => write!(f, "frame too short to hold a type byte"),
            DecodeError::UnknownType(t) => write!(f, "unknown frame type {t:#04x}"),
            DecodeError::Truncated(field) => write!(f, "frame truncated inside field {field:?}"),
            DecodeError::TrailingBytes { extra } => {
                write!(f, "{extra} unconsumed bytes after the frame payload")
            }
            DecodeError::InvalidUtf8(field) => write!(f, "field {field:?} is not valid UTF-8"),
            DecodeError::UnknownErrorCode(code) => write!(f, "unknown error code {code}"),
            DecodeError::CountOverflow(field) => {
                write!(
                    f,
                    "field {field:?} declares more elements than the frame holds"
                )
            }
        }
    }
}

impl std::error::Error for DecodeError {}

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

fn put_str(out: &mut Vec<u8>, s: &str) {
    let len = u16::try_from(s.len()).expect("string field over 64 KiB");
    out.extend_from_slice(&len.to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

fn put_f64s(out: &mut Vec<u8>, values: &[f64]) {
    let count = u32::try_from(values.len()).expect("f64 vector over u32::MAX");
    out.extend_from_slice(&count.to_le_bytes());
    for v in values {
        out.extend_from_slice(&v.to_le_bytes());
    }
}

/// Opens a frame in `out`: clears it and writes a 4-byte length
/// placeholder that [`finish_frame`] patches once the body is in place.
fn start_frame(out: &mut Vec<u8>) {
    out.clear();
    out.extend_from_slice(&[0u8; 4]);
}

/// Patches the length prefix written by [`start_frame`].
fn finish_frame(out: &mut [u8]) {
    let body_len = out.len() - 4;
    assert!(body_len <= MAX_FRAME_LEN, "frame exceeds MAX_FRAME_LEN");
    out[..4].copy_from_slice(&(body_len as u32).to_le_bytes());
}

impl Frame {
    /// Encodes the frame, length prefix included, ready to write to a
    /// socket.
    ///
    /// # Panics
    ///
    /// Panics if a string field exceeds 64 KiB or the encoded frame would
    /// exceed [`MAX_FRAME_LEN`] — both are caller bugs (the server never
    /// builds such frames; clients validate their inputs).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64);
        self.encode_into(&mut out);
        out
    }

    /// Encodes the frame into a reusable buffer (`out` is cleared first).
    /// Byte-identical to [`Frame::encode`]; the server's connection loop
    /// reuses one write buffer per connection so steady-state replies never
    /// allocate fresh frame storage.
    ///
    /// # Panics
    ///
    /// Same conditions as [`Frame::encode`].
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        start_frame(out);
        match self {
            Frame::EmbedRequest {
                id,
                deadline_ms,
                tenant,
                model_id,
                sample,
            } => {
                out.push(TYPE_EMBED_REQUEST);
                out.extend_from_slice(&id.to_le_bytes());
                out.extend_from_slice(&deadline_ms.to_le_bytes());
                put_str(out, tenant);
                put_str(out, model_id);
                put_f64s(out, sample);
            }
            Frame::EmbedReply {
                id,
                label,
                ideal_fidelity,
                parameters,
                source,
            } => {
                encode_embed_reply_into(out, *id, *label, *ideal_fidelity, parameters, *source);
                return;
            }
            Frame::ErrorReply {
                id,
                code,
                retry_after_ms,
                message,
            } => {
                encode_error_reply_into(out, *id, *code, *retry_after_ms, message);
                return;
            }
            Frame::Ping => out.push(TYPE_PING),
            Frame::Pong => out.push(TYPE_PONG),
            Frame::Drain => out.push(TYPE_DRAIN),
            Frame::DrainAck => out.push(TYPE_DRAIN_ACK),
        }
        finish_frame(out);
    }
}

/// Encodes an [`Frame::EmbedReply`] directly from borrowed parts into a
/// reusable buffer — byte-identical to building the frame and calling
/// [`Frame::encode`], without cloning the parameter vector into an owned
/// frame first. This is the server's hot reply path.
///
/// # Panics
///
/// Same conditions as [`Frame::encode`].
pub fn encode_embed_reply_into(
    out: &mut Vec<u8>,
    id: u64,
    label: u64,
    ideal_fidelity: f64,
    parameters: &[f64],
    source: u8,
) {
    start_frame(out);
    out.push(TYPE_EMBED_REPLY);
    out.extend_from_slice(&id.to_le_bytes());
    out.extend_from_slice(&label.to_le_bytes());
    out.extend_from_slice(&ideal_fidelity.to_le_bytes());
    put_f64s(out, parameters);
    out.push(source);
    finish_frame(out);
}

/// Encodes an [`Frame::ErrorReply`] directly from borrowed parts into a
/// reusable buffer — byte-identical to building the frame and calling
/// [`Frame::encode`]. Paired with the static messages of retryable
/// [`wire_error`] codes, a shed/drain reply encodes without any
/// allocation beyond the (reused) buffer itself.
///
/// # Panics
///
/// Same conditions as [`Frame::encode`].
pub fn encode_error_reply_into(
    out: &mut Vec<u8>,
    id: u64,
    code: ErrorCode,
    retry_after_ms: u64,
    message: &str,
) {
    start_frame(out);
    out.push(TYPE_ERROR_REPLY);
    out.extend_from_slice(&id.to_le_bytes());
    out.extend_from_slice(&(code as u16).to_le_bytes());
    out.extend_from_slice(&retry_after_ms.to_le_bytes());
    put_str(out, message);
    finish_frame(out);
}

// ---------------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------------

/// A bounds-checked forward cursor over one frame's payload.
struct Cursor<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize, field: &'static str) -> Result<&'a [u8], DecodeError> {
        let end = self
            .at
            .checked_add(n)
            .filter(|&end| end <= self.bytes.len())
            .ok_or(DecodeError::Truncated(field))?;
        let slice = &self.bytes[self.at..end];
        self.at = end;
        Ok(slice)
    }

    fn u8(&mut self, field: &'static str) -> Result<u8, DecodeError> {
        Ok(self.take(1, field)?[0])
    }

    fn u16(&mut self, field: &'static str) -> Result<u16, DecodeError> {
        Ok(u16::from_le_bytes(
            self.take(2, field)?.try_into().expect("2 bytes"),
        ))
    }

    fn u32(&mut self, field: &'static str) -> Result<u32, DecodeError> {
        Ok(u32::from_le_bytes(
            self.take(4, field)?.try_into().expect("4 bytes"),
        ))
    }

    fn u64(&mut self, field: &'static str) -> Result<u64, DecodeError> {
        Ok(u64::from_le_bytes(
            self.take(8, field)?.try_into().expect("8 bytes"),
        ))
    }

    fn f64(&mut self, field: &'static str) -> Result<f64, DecodeError> {
        Ok(f64::from_le_bytes(
            self.take(8, field)?.try_into().expect("8 bytes"),
        ))
    }

    fn string(&mut self, field: &'static str) -> Result<String, DecodeError> {
        let len = self.u16(field)? as usize;
        let bytes = self.take(len, field)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| DecodeError::InvalidUtf8(field))
    }

    fn f64s(&mut self, field: &'static str) -> Result<Vec<f64>, DecodeError> {
        let count = self.u32(field)? as usize;
        // The count must fit in the bytes actually present — a hostile
        // count cannot reserve memory beyond the (already capped) frame.
        if count > (self.bytes.len() - self.at) / 8 {
            return Err(DecodeError::CountOverflow(field));
        }
        let mut values = Vec::with_capacity(count);
        for _ in 0..count {
            values.push(self.f64(field)?);
        }
        Ok(values)
    }

    fn finish(self) -> Result<(), DecodeError> {
        let extra = self.bytes.len() - self.at;
        if extra == 0 {
            Ok(())
        } else {
            Err(DecodeError::TrailingBytes { extra })
        }
    }
}

/// Attempts to decode one frame from the front of `buf`.
///
/// * `Ok(None)` — `buf` holds a prefix of a valid-so-far frame; read more
///   bytes and call again.
/// * `Ok(Some((frame, consumed)))` — one complete frame; drop `consumed`
///   bytes from the front of `buf` before the next call.
/// * `Err(_)` — the stream is corrupt or hostile; fail closed (close the
///   connection).
///
/// # Errors
///
/// Any [`DecodeError`]; oversized length prefixes are rejected from the
/// first 4 bytes, before the payload arrives.
pub fn decode_frame(buf: &[u8]) -> Result<Option<(Frame, usize)>, DecodeError> {
    if buf.len() < 4 {
        return Ok(None);
    }
    let declared = u32::from_le_bytes(buf[..4].try_into().expect("4 bytes")) as u64;
    if declared as usize > MAX_FRAME_LEN {
        return Err(DecodeError::Oversized { declared });
    }
    if declared == 0 {
        return Err(DecodeError::EmptyFrame);
    }
    let total = 4 + declared as usize;
    if buf.len() < total {
        return Ok(None);
    }
    let mut cursor = Cursor {
        bytes: &buf[4..total],
        at: 0,
    };
    let frame_type = cursor.u8("frame_type")?;
    let frame = match frame_type {
        TYPE_EMBED_REQUEST => Frame::EmbedRequest {
            id: cursor.u64("id")?,
            deadline_ms: cursor.u32("deadline_ms")?,
            tenant: cursor.string("tenant")?,
            model_id: cursor.string("model_id")?,
            sample: cursor.f64s("sample")?,
        },
        TYPE_EMBED_REPLY => Frame::EmbedReply {
            id: cursor.u64("id")?,
            label: cursor.u64("label")?,
            ideal_fidelity: cursor.f64("ideal_fidelity")?,
            parameters: cursor.f64s("parameters")?,
            source: cursor.u8("source")?,
        },
        TYPE_ERROR_REPLY => {
            let id = cursor.u64("id")?;
            let raw_code = cursor.u16("code")?;
            let code =
                ErrorCode::from_u16(raw_code).ok_or(DecodeError::UnknownErrorCode(raw_code))?;
            Frame::ErrorReply {
                id,
                code,
                retry_after_ms: cursor.u64("retry_after_ms")?,
                message: cursor.string("message")?,
            }
        }
        TYPE_PING => Frame::Ping,
        TYPE_PONG => Frame::Pong,
        TYPE_DRAIN => Frame::Drain,
        TYPE_DRAIN_ACK => Frame::DrainAck,
        other => return Err(DecodeError::UnknownType(other)),
    };
    cursor.finish()?;
    Ok(Some((frame, total)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(frame: Frame) {
        let bytes = frame.encode();
        let (decoded, consumed) = decode_frame(&bytes).unwrap().expect("complete frame");
        assert_eq!(consumed, bytes.len());
        assert_eq!(decoded, frame);
    }

    #[test]
    fn every_frame_type_round_trips() {
        roundtrip(Frame::EmbedRequest {
            id: 42,
            deadline_ms: 1500,
            tenant: "acme".into(),
            model_id: "mnist".into(),
            sample: vec![0.25, -1.5, f64::MIN_POSITIVE, 0.0],
        });
        roundtrip(Frame::EmbedReply {
            id: 42,
            label: 7,
            ideal_fidelity: 0.998,
            parameters: vec![1.0, -2.0, 3.5],
            source: 1,
        });
        roundtrip(Frame::ErrorReply {
            id: 9,
            code: ErrorCode::RetryAfter,
            retry_after_ms: 250,
            message: "shed".into(),
        });
        roundtrip(Frame::Ping);
        roundtrip(Frame::Pong);
        roundtrip(Frame::Drain);
        roundtrip(Frame::DrainAck);
    }

    #[test]
    fn streaming_encoders_match_frame_encode_byte_for_byte() {
        let reply = Frame::EmbedReply {
            id: u64::MAX,
            label: 3,
            ideal_fidelity: 0.25 + f64::EPSILON,
            parameters: vec![1.5, -0.0, f64::from_bits(0x7ff8_0000_0000_0001)],
            source: 2,
        };
        let mut streamed = vec![0xAA; 512]; // stale contents must not leak through
        if let Frame::EmbedReply {
            id,
            label,
            ideal_fidelity,
            parameters,
            source,
        } = &reply
        {
            encode_embed_reply_into(
                &mut streamed,
                *id,
                *label,
                *ideal_fidelity,
                parameters,
                *source,
            );
        }
        assert_eq!(streamed, reply.encode());

        let error = Frame::ErrorReply {
            id: 7,
            code: ErrorCode::RetryAfter,
            retry_after_ms: 250,
            message: "queue depth at capacity".into(),
        };
        encode_error_reply_into(
            &mut streamed,
            7,
            ErrorCode::RetryAfter,
            250,
            "queue depth at capacity",
        );
        assert_eq!(streamed, error.encode());

        // `encode_into` reuses the buffer for every frame shape.
        for frame in [
            Frame::Ping,
            Frame::Pong,
            Frame::Drain,
            Frame::DrainAck,
            reply,
            error,
        ] {
            frame.encode_into(&mut streamed);
            assert_eq!(streamed, frame.encode());
        }
    }

    #[test]
    fn nan_payloads_round_trip_bit_exactly() {
        let weird = f64::from_bits(0x7ff8_dead_beef_0001);
        let frame = Frame::EmbedRequest {
            id: 1,
            deadline_ms: 0,
            tenant: String::new(),
            model_id: "m".into(),
            sample: vec![weird],
        };
        let bytes = frame.encode();
        let (decoded, _) = decode_frame(&bytes).unwrap().unwrap();
        let Frame::EmbedRequest { sample, .. } = decoded else {
            panic!("wrong frame type");
        };
        assert_eq!(sample[0].to_bits(), weird.to_bits());
    }

    #[test]
    fn partial_frames_ask_for_more_bytes() {
        let bytes = Frame::Ping.encode();
        for cut in 0..bytes.len() {
            assert_eq!(decode_frame(&bytes[..cut]).unwrap(), None, "cut at {cut}");
        }
    }

    #[test]
    fn oversized_length_prefix_rejected_before_payload() {
        let mut buf = ((MAX_FRAME_LEN + 1) as u32).to_le_bytes().to_vec();
        buf.push(TYPE_PING);
        assert!(matches!(
            decode_frame(&buf),
            Err(DecodeError::Oversized { .. })
        ));
        // u32::MAX too — no overflow on 32-bit-adjacent arithmetic.
        let buf = u32::MAX.to_le_bytes();
        assert!(matches!(
            decode_frame(&buf),
            Err(DecodeError::Oversized { .. })
        ));
    }

    #[test]
    fn malformed_frames_fail_closed() {
        // Zero-length frame.
        assert_eq!(
            decode_frame(&0u32.to_le_bytes()),
            Err(DecodeError::EmptyFrame)
        );
        // Unknown type.
        let mut buf = 1u32.to_le_bytes().to_vec();
        buf.push(0x7f);
        assert_eq!(decode_frame(&buf), Err(DecodeError::UnknownType(0x7f)));
        // Trailing garbage after a Ping payload.
        let mut buf = 3u32.to_le_bytes().to_vec();
        buf.extend_from_slice(&[TYPE_PING, 0xAA, 0xBB]);
        assert_eq!(
            decode_frame(&buf),
            Err(DecodeError::TrailingBytes { extra: 2 })
        );
        // Truncated embed request (id field cut off mid-frame).
        let mut buf = 5u32.to_le_bytes().to_vec();
        buf.extend_from_slice(&[TYPE_EMBED_REQUEST, 1, 2, 3, 4]);
        assert_eq!(decode_frame(&buf), Err(DecodeError::Truncated("id")));
        // Hostile element count: frame says 1000 floats, holds none.
        let mut body = vec![TYPE_EMBED_REQUEST];
        body.extend_from_slice(&7u64.to_le_bytes());
        body.extend_from_slice(&0u32.to_le_bytes());
        body.extend_from_slice(&0u16.to_le_bytes()); // tenant ""
        body.extend_from_slice(&1u16.to_le_bytes()); // model_id "m"
        body.push(b'm');
        body.extend_from_slice(&1000u32.to_le_bytes()); // sample count lie
        let mut buf = (body.len() as u32).to_le_bytes().to_vec();
        buf.extend_from_slice(&body);
        assert_eq!(
            decode_frame(&buf),
            Err(DecodeError::CountOverflow("sample"))
        );
        // Invalid UTF-8 in a string field.
        let mut body = vec![TYPE_EMBED_REQUEST];
        body.extend_from_slice(&7u64.to_le_bytes());
        body.extend_from_slice(&0u32.to_le_bytes());
        body.extend_from_slice(&2u16.to_le_bytes());
        body.extend_from_slice(&[0xff, 0xfe]); // not UTF-8
        body.extend_from_slice(&1u16.to_le_bytes());
        body.push(b'm');
        body.extend_from_slice(&0u32.to_le_bytes());
        let mut buf = (body.len() as u32).to_le_bytes().to_vec();
        buf.extend_from_slice(&body);
        assert_eq!(decode_frame(&buf), Err(DecodeError::InvalidUtf8("tenant")));
    }

    #[test]
    fn wire_error_mapping_covers_every_serve_variant() {
        use enqode::EnqodeError;
        let cases: Vec<(ServeError, ErrorCode, bool)> = vec![
            (
                ServeError::ModelNotFound("m".into()),
                ErrorCode::ModelNotFound,
                false,
            ),
            (
                ServeError::Embed(EnqodeError::NotTrained),
                ErrorCode::EmbedFailed,
                false,
            ),
            (ServeError::ShuttingDown, ErrorCode::Draining, true),
            (
                ServeError::DeadlineExceeded {
                    waited: Duration::from_millis(7),
                },
                ErrorCode::DeadlineExceeded,
                false,
            ),
            (
                ServeError::RebuildInProgress {
                    model_id: "m".into(),
                    retry_after: Duration::from_millis(123),
                },
                ErrorCode::RebuildInProgress,
                true,
            ),
            (
                ServeError::NonFiniteFeature {
                    index: 3,
                    value: f64::NAN,
                },
                ErrorCode::InvalidFeatures,
                false,
            ),
            (
                ServeError::NoTraffic("m".into()),
                ErrorCode::NoTraffic,
                false,
            ),
            (
                ServeError::Traffic(enq_data::DataError::Io("disk".into())),
                ErrorCode::Internal,
                false,
            ),
            (
                ServeError::Rebuild("spawn failed".into()),
                ErrorCode::Internal,
                false,
            ),
        ];
        for (error, expected_code, expected_retryable) in cases {
            let (code, _, message) = wire_error(&error);
            assert_eq!(code, expected_code, "{error}");
            assert_eq!(code.is_retryable(), expected_retryable, "{error}");
            assert!(!message.is_empty());
        }
        // The rebuild hint forwards the ticket's estimate.
        let (_, retry_ms, _) = wire_error(&ServeError::RebuildInProgress {
            model_id: "m".into(),
            retry_after: Duration::from_millis(123),
        });
        assert_eq!(retry_ms, 123);
        // Sub-millisecond hints round up, never to zero.
        assert_eq!(duration_to_retry_ms(Duration::from_micros(10)), 1);
        assert_eq!(duration_to_retry_ms(Duration::ZERO), 0);
    }

    #[test]
    fn error_code_wire_values_are_stable() {
        for code in 1..=11u16 {
            let decoded = ErrorCode::from_u16(code).expect("known code");
            assert_eq!(decoded as u16, code);
        }
        assert_eq!(ErrorCode::from_u16(0), None);
        assert_eq!(ErrorCode::from_u16(12), None);
        assert_eq!(ErrorCode::from_u16(u16::MAX), None);
    }
}

//! Uniformly-controlled (multiplexed) `Ry` rotations.

use enq_circuit::QuantumCircuit;

/// Default threshold under which a rotation angle is treated as zero and
/// elided, making the emitted circuit data dependent (as in qiskit's state
/// preparation).
pub(crate) const ANGLE_EPS: f64 = 1e-12;

/// Appends a uniformly-controlled `Ry` rotation, eliding individual rotations
/// whose transformed angle falls below `tolerance`.
///
/// The Walsh-transformed angles of smooth (PCA-like) amplitude vectors decay
/// quickly, so a synthesis tolerance on the order of the hardware's rotation
/// resolution drops a data-dependent number of gates — this is the source of
/// the Baseline's per-sample gate-count and depth variability in the paper.
///
/// # Panics
///
/// Panics if `angles.len() != 2^controls.len()` or any qubit is out of range.
pub fn append_multiplexed_ry_with_tolerance(
    circuit: &mut QuantumCircuit,
    target: usize,
    controls: &[usize],
    angles: &[f64],
    tolerance: f64,
) {
    emit(circuit, target, controls, angles, tolerance.max(ANGLE_EPS));
}

/// Appends a uniformly-controlled `Ry` rotation to `circuit`.
///
/// For every computational-basis pattern `j` of the `controls` (with
/// `controls[b]` supplying bit `b` of `j`), the target qubit is rotated by
/// `Ry(angles[j])`. The decomposition is the Gray-code construction of
/// Möttönen et al.: the angles are mapped through the Walsh–Hadamard-like
/// transform `t_i = 2^{-k} Σ_j (−1)^{⟨j, gray(i)⟩} α_j` and emitted as an
/// alternating sequence of `Ry(t_i)` and `CX` gates whose control follows the
/// bit that changes in the Gray code, costing at most `2^k` `CX` and `2^k`
/// `Ry` gates for `k` controls. Multiplexors whose angles are all
/// (numerically) zero are elided entirely, and individual zero rotations are
/// skipped, making the emitted circuit data dependent.
///
/// # Panics
///
/// Panics if `angles.len() != 2^controls.len()` or any qubit is out of range
/// (the circuit builder validates operands).
///
/// # Examples
///
/// ```
/// use enq_circuit::QuantumCircuit;
/// use enq_stateprep::append_multiplexed_ry;
///
/// let mut qc = QuantumCircuit::new(2);
/// append_multiplexed_ry(&mut qc, 1, &[0], &[0.3, 1.2]);
/// assert!(qc.len() > 0);
/// ```
pub fn append_multiplexed_ry(
    circuit: &mut QuantumCircuit,
    target: usize,
    controls: &[usize],
    angles: &[f64],
) {
    emit(circuit, target, controls, angles, ANGLE_EPS);
}

fn emit(
    circuit: &mut QuantumCircuit,
    target: usize,
    controls: &[usize],
    angles: &[f64],
    tolerance: f64,
) {
    let k = controls.len();
    assert_eq!(
        angles.len(),
        1usize << k,
        "multiplexed Ry needs 2^k angles for k controls"
    );
    if angles.iter().all(|a| a.abs() < tolerance) {
        return;
    }
    if k == 0 {
        circuit.ry(angles[0], target);
        return;
    }
    let size = 1usize << k;
    let gray = |i: usize| i ^ (i >> 1);
    // Transformed rotation angles.
    let mut transformed = vec![0.0f64; size];
    for (i, t) in transformed.iter_mut().enumerate() {
        let g = gray(i);
        let mut acc = 0.0;
        for (j, &a) in angles.iter().enumerate() {
            let sign = if (j & g).count_ones() % 2 == 0 {
                1.0
            } else {
                -1.0
            };
            acc += sign * a;
        }
        *t = acc / size as f64;
    }
    for (i, &t) in transformed.iter().enumerate() {
        if t.abs() >= tolerance {
            circuit.ry(t, target);
        }
        // The CX control follows the bit that flips between consecutive Gray
        // codes (wrapping around at the end).
        let changed = gray(i) ^ gray((i + 1) % size);
        let bit = changed.trailing_zeros() as usize;
        circuit.cx(controls[bit], target);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use enq_circuit::Gate;
    use enq_qsim::Statevector;
    use std::f64::consts::PI;

    /// Builds the expected statevector by applying Ry(angles[pattern]) to the
    /// target conditioned on the control pattern, starting from a uniform
    /// superposition of the controls.
    fn reference_action(
        target: usize,
        controls: &[usize],
        angles: &[f64],
        n: usize,
    ) -> Statevector {
        // Start with H on all controls so every pattern is populated, then
        // apply the controlled rotations by direct state manipulation.
        let mut prep = QuantumCircuit::new(n);
        for &c in controls {
            prep.h(c);
        }
        let base = Statevector::from_circuit(&prep).unwrap();
        let mut amps = base.amplitudes().to_vec();
        let dim = amps.len();
        // For each basis index with target bit 0, rotate the (i, i|target) pair.
        for i in 0..dim {
            if (i >> target) & 1 == 1 {
                continue;
            }
            let mut pattern = 0usize;
            for (b, &c) in controls.iter().enumerate() {
                pattern |= ((i >> c) & 1) << b;
            }
            let theta = angles[pattern];
            let (c, s) = ((theta / 2.0).cos(), (theta / 2.0).sin());
            let j = i | (1 << target);
            let a0 = amps[i];
            let a1 = amps[j];
            amps[i] = a0 * c - a1 * s;
            amps[j] = a0 * s + a1 * c;
        }
        Statevector::from_amplitudes(amps).unwrap()
    }

    fn check_multiplexor(target: usize, controls: &[usize], angles: &[f64], n: usize) {
        let mut qc = QuantumCircuit::new(n);
        for &c in controls {
            qc.h(c);
        }
        append_multiplexed_ry(&mut qc, target, controls, angles);
        let got = Statevector::from_circuit(&qc).unwrap();
        let expected = reference_action(target, controls, angles, n);
        let f = got.fidelity(&expected).unwrap();
        assert!(
            (f - 1.0).abs() < 1e-9,
            "multiplexor mismatch: fidelity {f} for {controls:?} angles {angles:?}"
        );
    }

    #[test]
    fn no_controls_is_plain_ry() {
        let mut qc = QuantumCircuit::new(1);
        append_multiplexed_ry(&mut qc, 0, &[], &[0.7]);
        assert_eq!(qc.len(), 1);
        assert!(matches!(qc.instructions()[0].gate, Gate::Ry(_)));
    }

    #[test]
    fn single_control_both_branches() {
        check_multiplexor(1, &[0], &[0.4, 1.9], 2);
        check_multiplexor(0, &[1], &[-1.1, 0.6], 2);
    }

    #[test]
    fn two_controls_all_patterns() {
        check_multiplexor(2, &[0, 1], &[0.3, -0.8, 1.4, 2.2], 3);
    }

    #[test]
    fn three_controls() {
        let angles: Vec<f64> = (0..8).map(|i| 0.1 * i as f64 - 0.3).collect();
        check_multiplexor(3, &[0, 1, 2], &angles, 4);
    }

    #[test]
    fn zero_angles_emit_nothing() {
        let mut qc = QuantumCircuit::new(3);
        append_multiplexed_ry(&mut qc, 2, &[0, 1], &[0.0; 4]);
        assert!(qc.is_empty());
    }

    #[test]
    fn gate_count_is_bounded_by_2k_each() {
        let angles: Vec<f64> = (0..16).map(|i| 0.05 * (i + 1) as f64).collect();
        let mut qc = QuantumCircuit::new(5);
        append_multiplexed_ry(&mut qc, 4, &[0, 1, 2, 3], &angles);
        let cx = qc.count_filtered(|i| matches!(i.gate, Gate::Cx));
        let ry = qc.count_filtered(|i| matches!(i.gate, Gate::Ry(_)));
        assert!(cx <= 16);
        assert!(ry <= 16);
    }

    #[test]
    fn pi_rotation_flips_conditioned_branch() {
        // angles = [0, π]: when control is 1 the target flips (up to sign).
        let mut qc = QuantumCircuit::new(2);
        qc.x(0);
        append_multiplexed_ry(&mut qc, 1, &[0], &[0.0, PI]);
        let sv = Statevector::from_circuit(&qc).unwrap();
        let probs = sv.probabilities();
        assert!((probs[3] - 1.0).abs() < 1e-10);
    }
}

//! # enq-stateprep
//!
//! Exact amplitude embedding (the paper's **Baseline**): state preparation of
//! a real-valued, normalised amplitude vector via uniformly-controlled
//! (multiplexed) `Ry` rotations, the same construction family behind qiskit's
//! `StatePreparation` / isometry synthesis (Möttönen et al.; Iten et al.).
//!
//! The resulting circuits are data dependent — rotations whose angle is zero
//! are elided — which is exactly the source of the per-sample depth and gate
//! count variability the paper attributes to the Baseline.
//!
//! ## Example
//!
//! ```
//! use enq_stateprep::exact_amplitude_embedding;
//!
//! // Prepare a 3-qubit state proportional to (1, 2, 3, 4, 5, 6, 7, 8).
//! let values: Vec<f64> = (1..=8).map(f64::from).collect();
//! let circuit = exact_amplitude_embedding(&values)?;
//! assert_eq!(circuit.num_qubits(), 3);
//! # Ok::<(), enq_stateprep::StatePrepError>(())
//! ```

#![warn(missing_docs)]

mod multiplexor;
mod prepare;

pub use multiplexor::{append_multiplexed_ry, append_multiplexed_ry_with_tolerance};
pub use prepare::{
    exact_amplitude_embedding, exact_amplitude_embedding_with_tolerance, rotation_tree_angles,
    StatePrepError,
};

//! Exact amplitude embedding of real-valued vectors.

use crate::multiplexor::{append_multiplexed_ry_with_tolerance, ANGLE_EPS};
use enq_circuit::QuantumCircuit;
use std::error::Error;
use std::fmt;

/// Errors returned by the Baseline state-preparation routines.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum StatePrepError {
    /// The amplitude vector length was not a power of two (or was empty).
    InvalidLength {
        /// The length that was supplied.
        found: usize,
    },
    /// The amplitude vector had zero norm.
    ZeroVector,
}

impl fmt::Display for StatePrepError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StatePrepError::InvalidLength { found } => {
                write!(f, "amplitude vector length {found} is not a power of two")
            }
            StatePrepError::ZeroVector => write!(f, "amplitude vector has zero norm"),
        }
    }
}

impl Error for StatePrepError {}

/// Computes the binary-tree rotation angles used by the Möttönen-style
/// construction.
///
/// Level `l` (0-based, `l < n`) contains `2^l` angles; the angle at node `j`
/// splits the probability mass of that subtree between its two children. The
/// leaf level additionally encodes the signs of the (real) amplitudes.
///
/// # Errors
///
/// Returns [`StatePrepError::InvalidLength`] for a non-power-of-two input and
/// [`StatePrepError::ZeroVector`] when all entries are zero.
pub fn rotation_tree_angles(values: &[f64]) -> Result<Vec<Vec<f64>>, StatePrepError> {
    let len = values.len();
    if len < 2 || len & (len - 1) != 0 {
        return Err(StatePrepError::InvalidLength { found: len });
    }
    let norm: f64 = values.iter().map(|v| v * v).sum::<f64>().sqrt();
    if norm <= 0.0 {
        return Err(StatePrepError::ZeroVector);
    }
    let n = len.trailing_zeros() as usize;

    // subtree_norms[l][j] = Euclidean norm of the amplitudes under node j at
    // level l (level n = leaves = |values|, level 0 = root).
    let mut level_norms: Vec<Vec<f64>> = Vec::with_capacity(n + 1);
    level_norms.push(values.iter().map(|v| v.abs()).collect());
    for _ in 0..n {
        let prev = level_norms.last().expect("at least one level exists");
        let next: Vec<f64> = prev
            .chunks(2)
            .map(|pair| (pair[0] * pair[0] + pair[1] * pair[1]).sqrt())
            .collect();
        level_norms.push(next);
    }
    level_norms.reverse(); // level_norms[l] now has 2^l entries.

    let mut angles: Vec<Vec<f64>> = Vec::with_capacity(n);
    for l in 0..n {
        let children = &level_norms[l + 1];
        let mut level = Vec::with_capacity(1 << l);
        for j in 0..(1usize << l) {
            let left = children[2 * j];
            let right = children[2 * j + 1];
            let angle = if l + 1 == n {
                // Leaf level: use the signed amplitudes so negative values are
                // produced directly by the Ry rotation.
                let a = values[2 * j];
                let b = values[2 * j + 1];
                if a.abs() < ANGLE_EPS && b.abs() < ANGLE_EPS {
                    0.0
                } else {
                    2.0 * b.atan2(a)
                }
            } else if left < ANGLE_EPS && right < ANGLE_EPS {
                0.0
            } else {
                2.0 * right.atan2(left)
            };
            level.push(angle);
        }
        angles.push(level);
    }
    Ok(angles)
}

/// Builds the exact amplitude-embedding circuit for a real-valued vector
/// (the paper's Baseline).
///
/// The vector is normalised internally; its length must be a power of two.
/// The circuit acts on `log2(len)` qubits, little-endian, and maps `|0…0⟩` to
/// `Σ_i (values[i]/‖values‖)·|i⟩`.
///
/// # Errors
///
/// Returns [`StatePrepError::InvalidLength`] or [`StatePrepError::ZeroVector`]
/// for malformed inputs.
///
/// # Examples
///
/// ```
/// use enq_stateprep::exact_amplitude_embedding;
/// use enq_qsim::Statevector;
///
/// let values = [0.5, -0.5, 0.5, 0.5];
/// let circuit = exact_amplitude_embedding(&values)?;
/// let state = Statevector::from_circuit(&circuit).unwrap();
/// assert!((state.amplitudes()[1].re + 0.5).abs() < 1e-9);
/// # Ok::<(), enq_stateprep::StatePrepError>(())
/// ```
pub fn exact_amplitude_embedding(values: &[f64]) -> Result<QuantumCircuit, StatePrepError> {
    exact_amplitude_embedding_with_tolerance(values, ANGLE_EPS)
}

/// Builds the exact amplitude-embedding circuit, eliding every rotation whose
/// (Walsh-transformed) angle is smaller than `tolerance` radians.
///
/// A tolerance on the order of the hardware's rotation resolution (~10⁻³ rad)
/// drops a data-dependent number of gates from each circuit, reproducing the
/// per-sample gate-count and depth variability that the paper reports for the
/// Baseline; the induced state error is far below the device noise floor.
///
/// # Errors
///
/// Same as [`exact_amplitude_embedding`].
pub fn exact_amplitude_embedding_with_tolerance(
    values: &[f64],
    tolerance: f64,
) -> Result<QuantumCircuit, StatePrepError> {
    let angles = rotation_tree_angles(values)?;
    let n = angles.len();
    let mut circuit = QuantumCircuit::new(n);
    // Level l targets qubit (n-1-l), controlled on all more significant
    // qubits (n-1-l+1 .. n-1), whose basis pattern indexes the node j.
    for (l, level_angles) in angles.iter().enumerate() {
        let target = n - 1 - l;
        let controls: Vec<usize> = ((target + 1)..n).collect();
        // Node index j at level l is the integer formed by the top `l` index
        // bits, so control qubit `target + 1 + b` carries exactly bit `b` of
        // `j` — the multiplexor's pattern index coincides with `j`.
        append_multiplexed_ry_with_tolerance(
            &mut circuit,
            target,
            &controls,
            level_angles,
            tolerance,
        );
    }
    Ok(circuit)
}

#[cfg(test)]
mod tests {
    use super::*;
    use enq_circuit::Gate;
    use enq_qsim::Statevector;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn prepared_state(values: &[f64]) -> Statevector {
        let qc = exact_amplitude_embedding(values).unwrap();
        Statevector::from_circuit(&qc).unwrap()
    }

    fn target_state(values: &[f64]) -> Statevector {
        Statevector::from_real_normalized(values).unwrap()
    }

    #[test]
    fn invalid_inputs_rejected() {
        assert!(matches!(
            exact_amplitude_embedding(&[1.0, 2.0, 3.0]),
            Err(StatePrepError::InvalidLength { found: 3 })
        ));
        assert!(matches!(
            exact_amplitude_embedding(&[0.0, 0.0, 0.0, 0.0]),
            Err(StatePrepError::ZeroVector)
        ));
        assert!(exact_amplitude_embedding(&[1.0]).is_err());
    }

    #[test]
    fn uniform_superposition() {
        let values = [1.0; 8];
        let got = prepared_state(&values);
        let want = target_state(&values);
        assert!((got.fidelity(&want).unwrap() - 1.0).abs() < 1e-10);
    }

    #[test]
    fn basis_state_preparation_is_cheap() {
        // Preparing |100⟩ (index 4) needs only a handful of gates because all
        // other rotations are elided.
        let mut values = [0.0; 8];
        values[4] = 1.0;
        let qc = exact_amplitude_embedding(&values).unwrap();
        let got = Statevector::from_circuit(&qc).unwrap();
        assert!((got.probabilities()[4] - 1.0).abs() < 1e-10);
        assert!(qc.len() <= 3, "basis state should elide almost everything");
    }

    #[test]
    fn negative_amplitudes_preserved_exactly() {
        let values = [0.5, -0.5, -0.5, 0.5];
        let got = prepared_state(&values);
        for (i, &v) in values.iter().enumerate() {
            assert!(
                (got.amplitudes()[i].re - v / 1.0).abs() < 1e-9,
                "amplitude {i}: got {} want {v}",
                got.amplitudes()[i].re
            );
            assert!(got.amplitudes()[i].im.abs() < 1e-9);
        }
    }

    #[test]
    fn random_vectors_high_dimensional() {
        let mut rng = StdRng::seed_from_u64(11);
        for n in [2usize, 3, 4, 5] {
            for _ in 0..4 {
                let values: Vec<f64> = (0..(1 << n)).map(|_| rng.gen_range(-1.0..1.0)).collect();
                let got = prepared_state(&values);
                let want = target_state(&values);
                let f = got.fidelity(&want).unwrap();
                assert!((f - 1.0).abs() < 1e-8, "n={n} fidelity {f}");
            }
        }
    }

    #[test]
    fn sparse_vectors_use_fewer_gates_than_dense() {
        let mut rng = StdRng::seed_from_u64(3);
        let dense: Vec<f64> = (0..256).map(|_| rng.gen_range(0.1..1.0)).collect();
        let mut sparse = vec![0.0; 256];
        for v in sparse.iter_mut().take(4) {
            *v = rng.gen_range(0.1..1.0);
        }
        let dense_len = exact_amplitude_embedding(&dense).unwrap().len();
        let sparse_len = exact_amplitude_embedding(&sparse).unwrap().len();
        // Whole multiplexors acting above the sparse support are elided, so
        // the sparse circuit is measurably smaller (this is the source of the
        // Baseline's per-sample variability).
        assert!(
            sparse_len < (dense_len * 9) / 10,
            "sparse {sparse_len} vs dense {dense_len}"
        );
    }

    #[test]
    fn gate_budget_matches_mottonen_bound() {
        // Dense vector on n qubits: at most 2^n - 2 CX and 2^n - 1 Ry.
        let mut rng = StdRng::seed_from_u64(5);
        let n = 6usize;
        let values: Vec<f64> = (0..(1 << n)).map(|_| rng.gen_range(0.1..1.0)).collect();
        let qc = exact_amplitude_embedding(&values).unwrap();
        let cx = qc.count_filtered(|i| matches!(i.gate, Gate::Cx));
        let ry = qc.count_filtered(|i| matches!(i.gate, Gate::Ry(_)));
        assert!(cx <= (1 << n) - 2);
        assert!(ry < (1 << n));
        assert!(cx > (1 << (n - 1)), "dense vectors should need many CX");
    }

    #[test]
    fn rotation_tree_shape() {
        let values = [0.5, 0.5, 0.5, 0.5];
        let tree = rotation_tree_angles(&values).unwrap();
        assert_eq!(tree.len(), 2);
        assert_eq!(tree[0].len(), 1);
        assert_eq!(tree[1].len(), 2);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn preparation_is_exact_for_random_vectors(
            values in proptest::collection::vec(-1.0..1.0f64, 16)
        ) {
            let norm: f64 = values.iter().map(|v| v * v).sum::<f64>();
            prop_assume!(norm > 1e-3);
            let got = prepared_state(&values);
            let want = target_state(&values);
            prop_assert!((got.fidelity(&want).unwrap() - 1.0).abs() < 1e-7);
        }

        #[test]
        fn circuit_size_is_data_dependent_but_bounded(
            values in proptest::collection::vec(-1.0..1.0f64, 32)
        ) {
            let norm: f64 = values.iter().map(|v| v * v).sum::<f64>();
            prop_assume!(norm > 1e-3);
            let qc = exact_amplitude_embedding(&values).unwrap();
            prop_assert!(qc.len() <= 2 * 32);
        }
    }
}

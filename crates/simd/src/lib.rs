//! Runtime-dispatched compute backends for the EnQode hot loops.
//!
//! The symbolic kernel spends its time in three loop shapes: Walsh–Hadamard
//! butterflies, a fused sin/cos row sweep, and dense dot products (PCA
//! projection). This crate provides each of them behind a [`ComputeBackend`]
//! dispatch — mirroring quant-iron's size-thresholded scalar / parallel /
//! accelerated operator shape — so the same call site runs portable scalar
//! code, AVX2+FMA lanes, or NEON lanes depending on what the host CPU
//! supports at runtime (and so a GPU/OpenCL backend can slot in behind the
//! same enum later).
//!
//! # Bit-identicality contract
//!
//! Every operator in this crate produces **bit-identical results on every
//! backend**, by construction:
//!
//! * butterflies and the weighted-row arithmetic ([`weighted_rows`],
//!   [`weighted_rows_planar`], [`scale_add`]) are element-wise adds,
//!   subtracts and multiplies — IEEE-754 ops are correctly rounded, so lane
//!   width cannot change a single bit;
//! * reductions ([`dot`], [`dot_centered`], the sums of [`weighted_rows`]
//!   and [`sum_lanes`]) fix one canonical lane-structured summation order
//!   (four interleaved accumulators, combined pairwise, then a sequential
//!   tail) that the scalar path implements explicitly and the SIMD paths
//!   implement natively;
//! * [`sin_cos_slice`] uses one polynomial kernel (Cody–Waite π/2 range
//!   reduction + fdlibm min-max polynomials) whose every operation is either
//!   a correctly-rounded primitive or a fused multiply-add, and `fma` is
//!   fused on **all** paths (`f64::mul_add` on scalar, `vfmadd` on AVX2), so
//!   the scalar fallback reproduces the SIMD lanes exactly.
//!
//! The upshot: forcing a backend (see below) changes wall-clock time, never
//! results, and golden-pinned tests hold across machines.
//!
//! # Dispatch rules
//!
//! [`active`] resolves the backend once per call site:
//!
//! 1. a test override installed via [`force_backend`] wins;
//! 2. otherwise the `ENQ_COMPUTE_BACKEND` environment variable (`scalar`,
//!    `simd`, or `auto`; read once per process) decides;
//! 3. otherwise the best instruction set the CPU reports is used
//!    (AVX2+FMA on x86-64, NEON on aarch64, scalar elsewhere).
//!
//! Inputs shorter than a small size threshold always take the scalar lane —
//! dispatch and lane-setup overhead dominates below it, and bit-identicality
//! makes the cutover invisible.

#![warn(missing_docs)]

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

/// Which instruction set the dispatched operators run on.
///
/// Obtain the active one with [`active`]; pin it for a test or a benchmark
/// leg with [`force_backend`] or the `ENQ_COMPUTE_BACKEND` environment
/// variable. All variants produce bit-identical results (see the
/// [module docs](self)).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ComputeBackend {
    /// Portable scalar lanes. Still uses fused multiply-adds (hardware FMA
    /// where the CPU has it, the correctly-rounded `fma` libm routine
    /// elsewhere), so it is the reference semantics, not a degraded mode.
    Scalar,
    /// 256-bit AVX2 + FMA lanes (x86-64, runtime-detected).
    Avx2,
    /// 128-bit NEON lanes (aarch64; baseline on that architecture).
    Neon,
}

impl ComputeBackend {
    /// Short lower-case name (`"scalar"`, `"avx2"`, `"neon"`), used by bench
    /// output and logs.
    pub fn name(self) -> &'static str {
        match self {
            ComputeBackend::Scalar => "scalar",
            ComputeBackend::Avx2 => "avx2",
            ComputeBackend::Neon => "neon",
        }
    }
}

const FORCE_UNSET: u8 = 0;
const FORCE_SCALAR: u8 = 1;
const FORCE_SIMD: u8 = 2;

/// Test/bench override; `FORCE_UNSET` defers to the environment/detection.
static FORCE: AtomicU8 = AtomicU8::new(FORCE_UNSET);

/// Returns the best backend the host CPU supports, ignoring overrides.
pub fn detect() -> ComputeBackend {
    #[cfg(target_arch = "x86_64")]
    {
        if is_x86_feature_detected!("avx2") && is_x86_feature_detected!("fma") {
            return ComputeBackend::Avx2;
        }
    }
    #[cfg(target_arch = "aarch64")]
    {
        return ComputeBackend::Neon;
    }
    #[allow(unreachable_code)]
    ComputeBackend::Scalar
}

fn env_choice() -> Option<ComputeBackend> {
    static CHOICE: OnceLock<Option<ComputeBackend>> = OnceLock::new();
    *CHOICE.get_or_init(|| match std::env::var("ENQ_COMPUTE_BACKEND") {
        Ok(v) => match v.trim().to_ascii_lowercase().as_str() {
            "scalar" => Some(ComputeBackend::Scalar),
            "simd" => Some(detect()),
            "auto" | "" => None,
            other => panic!(
                "ENQ_COMPUTE_BACKEND={other:?} is not recognised \
                 (expected \"scalar\", \"simd\", or \"auto\")"
            ),
        },
        Err(_) => None,
    })
}

/// Returns the backend every dispatched operator will use right now:
/// [`force_backend`] override, then `ENQ_COMPUTE_BACKEND`, then [`detect`].
pub fn active() -> ComputeBackend {
    match FORCE.load(Ordering::Relaxed) {
        FORCE_SCALAR => ComputeBackend::Scalar,
        FORCE_SIMD => detect(),
        _ => env_choice().unwrap_or_else(detect),
    }
}

/// Pins (or with `None` releases) the backend process-wide.
///
/// Intended for tests and benchmark legs that compare backends inside one
/// process. Because all backends are bit-identical, a concurrent test
/// observing the override still computes correct results — the knob only
/// moves work between lanes. Forcing [`ComputeBackend::Avx2`]/
/// [`ComputeBackend::Neon`] on a CPU without that instruction set silently
/// degrades to the best available set (never to illegal instructions).
pub fn force_backend(backend: Option<ComputeBackend>) {
    let v = match backend {
        None => FORCE_UNSET,
        Some(ComputeBackend::Scalar) => FORCE_SCALAR,
        Some(_) => FORCE_SIMD,
    };
    FORCE.store(v, Ordering::Relaxed);
}

/// Inputs shorter than this take the scalar lane on every operator: below
/// it, dispatch + lane setup costs more than it saves (the quant-iron
/// size-threshold rule). Bit-identicality makes the cutover unobservable.
pub const SIMD_MIN_LEN: usize = 8;

// ---------------------------------------------------------------------------
// Walsh–Hadamard transforms
// ---------------------------------------------------------------------------

/// In-place unnormalised Walsh–Hadamard transform:
/// `out[r] = Σ_m in[m]·(−1)^{popcount(r & m)}`.
///
/// `data.len()` **must be a power of two** (`≥ 1`); the butterfly schedule
/// silently reads out of step otherwise. Debug builds assert it.
#[inline]
pub fn walsh_hadamard(data: &mut [f64]) {
    debug_assert!(
        data.len().is_power_of_two(),
        "walsh_hadamard needs a power-of-two length, got {}",
        data.len()
    );
    match active() {
        #[cfg(target_arch = "x86_64")]
        ComputeBackend::Avx2 if data.len() >= SIMD_MIN_LEN => unsafe { avx2::wht(data) },
        #[cfg(target_arch = "aarch64")]
        ComputeBackend::Neon if data.len() >= SIMD_MIN_LEN => unsafe { neon::wht(data) },
        _ => wht_scalar(data),
    }
}

/// Batched in-place Walsh–Hadamard transform over `lanes` interleaved
/// problems.
///
/// `data` stores element `r` of problem `b` at `data[r * lanes + b]`
/// (`data.len() = dim * lanes`, `dim` a power of two). One butterfly-schedule
/// traversal transforms all `lanes` problems — the loop structure is walked
/// once instead of `lanes` times, and every butterfly touches `lanes`
/// contiguous values, so even tiny `dim`s (where the single-problem
/// transform's low stages cannot fill a vector) run full-width lanes.
///
/// Bit-identical to calling [`walsh_hadamard`] on each de-interleaved
/// problem: butterflies are element-wise adds and subtracts.
#[inline]
pub fn walsh_hadamard_batch(data: &mut [f64], lanes: usize) {
    debug_assert!(lanes > 0, "walsh_hadamard_batch needs at least one lane");
    debug_assert!(
        data.len().is_multiple_of(lanes) && (data.len() / lanes).is_power_of_two(),
        "walsh_hadamard_batch needs lanes × power-of-two elements, got {} / {}",
        data.len(),
        lanes
    );
    match active() {
        #[cfg(target_arch = "x86_64")]
        ComputeBackend::Avx2 if data.len() >= SIMD_MIN_LEN => unsafe {
            avx2::wht_batch(data, lanes)
        },
        #[cfg(target_arch = "aarch64")]
        ComputeBackend::Neon if data.len() >= SIMD_MIN_LEN => unsafe {
            neon::wht_batch(data, lanes)
        },
        _ => wht_batch_scalar(data, lanes),
    }
}

fn wht_scalar(data: &mut [f64]) {
    let n = data.len();
    let mut h = 1;
    while h < n {
        let mut block = 0;
        while block < n {
            for i in block..block + h {
                let a = data[i];
                let b = data[i + h];
                data[i] = a + b;
                data[i + h] = a - b;
            }
            block += h * 2;
        }
        h *= 2;
    }
}

fn wht_batch_scalar(data: &mut [f64], lanes: usize) {
    let dim = data.len() / lanes;
    let mut h = 1;
    while h < dim {
        let mut block = 0;
        while block < dim {
            for i in block..block + h {
                let (pa, pb) = (i * lanes, (i + h) * lanes);
                for b in 0..lanes {
                    let a = data[pa + b];
                    let c = data[pb + b];
                    data[pa + b] = a + c;
                    data[pb + b] = a - c;
                }
            }
            block += h * 2;
        }
        h *= 2;
    }
}

// ---------------------------------------------------------------------------
// Fused sin/cos
// ---------------------------------------------------------------------------

/// Computes `sin(args[i])` and `cos(args[i])` for every element.
///
/// One polynomial kernel serves every backend (see the
/// [module docs](self) for why that makes results bit-identical): the
/// argument is reduced to `[−π/4, π/4]` with a three-term Cody–Waite π/2
/// decomposition, the fdlibm min-max polynomials evaluate the kernel sin and
/// cos, and the quadrant (taken from the low bits of the round-to-nearest
/// multiple of π/2) selects/negates the outputs with pure bit operations.
///
/// Accuracy is ~1–2 ulp for finite arguments up to `|x| ≈ 2^30` — far beyond
/// the phase magnitudes the symbolic kernel produces. Non-finite arguments
/// yield unspecified (finite garbage) values, exactly like the surrounding
/// kernels; callers validate inputs upstream.
///
/// # Panics
///
/// Panics if the three slices differ in length.
#[inline]
pub fn sin_cos_slice(args: &[f64], sin_out: &mut [f64], cos_out: &mut [f64]) {
    assert_eq!(args.len(), sin_out.len(), "sin slice length mismatch");
    assert_eq!(args.len(), cos_out.len(), "cos slice length mismatch");
    match active() {
        #[cfg(target_arch = "x86_64")]
        ComputeBackend::Avx2 if args.len() >= 4 => unsafe { avx2::sin_cos(args, sin_out, cos_out) },
        _ => sin_cos_scalar(args, sin_out, cos_out),
    }
}

/// `2/π`, the range-reduction multiplier.
const TWO_OVER_PI: f64 = std::f64::consts::FRAC_2_PI;
/// `1.5 × 2^52`: adding it forces round-to-nearest-even integer extraction —
/// the low mantissa bits of `x·2/π + MAGIC` hold the nearest integer mod
/// 2^52 (valid for |n| < 2^51).
const MAGIC: f64 = 6_755_399_441_055_744.0;
/// Three-term Cody–Waite decomposition of π/2 (fdlibm's `pio2_1`, `pio2_2`,
/// `pio2_2t`): each head term has trailing zero bits so `n × PIO2_k` is
/// exact for the `n` range we reduce.
#[allow(clippy::excessive_precision)] // fdlibm digits kept verbatim
const PIO2_1: f64 = 1.570_796_326_734_125_61e0;
const PIO2_2: f64 = 6.077_100_506_303_966e-11;
const PIO2_3: f64 = 2.022_266_248_795_950_6e-21;
/// fdlibm kernel-sin polynomial coefficients (odd powers over `[−π/4, π/4]`).
#[allow(clippy::excessive_precision)] // fdlibm digits kept verbatim
const S: [f64; 6] = [
    -1.666_666_666_666_663_2e-1,
    8.333_333_333_322_489e-3,
    -1.984_126_982_985_795e-4,
    2.755_731_370_707_007e-6,
    -2.505_076_025_340_686_4e-8,
    1.589_690_995_211_55e-10,
];
/// fdlibm kernel-cos polynomial coefficients (even powers ≥ 4).
const C: [f64; 6] = [
    4.166_666_666_666_66e-2,
    -1.388_888_888_887_411e-3,
    2.480_158_728_947_673e-5,
    -2.755_731_435_139_066_4e-7,
    2.087_572_321_298_175e-9,
    -1.135_964_755_778_819_5e-11,
];

/// The scalar sin/cos kernel — the canonical semantics every SIMD lane
/// mirrors operation for operation.
#[inline(always)]
fn sin_cos_one(x: f64) -> (f64, f64) {
    // Nearest multiple of π/2 via the 1.5·2^52 trick: the fused product
    // x·(2/π) + MAGIC rounds once, its low mantissa bits hold n mod 2^52,
    // and subtracting MAGIC back is exact.
    let nf = x.mul_add(TWO_OVER_PI, MAGIC);
    let bits = nf.to_bits();
    let n = nf - MAGIC;
    // r = x − n·π/2, one Cody–Waite term at a time, each step fused.
    let mut r = (-n).mul_add(PIO2_1, x);
    r = (-n).mul_add(PIO2_2, r);
    r = (-n).mul_add(PIO2_3, r);
    let z = r * r;
    // Kernel sin: r + z·r·P(z).
    let mut ps = S[5];
    ps = ps.mul_add(z, S[4]);
    ps = ps.mul_add(z, S[3]);
    ps = ps.mul_add(z, S[2]);
    ps = ps.mul_add(z, S[1]);
    ps = ps.mul_add(z, S[0]);
    let s_r = (z * r).mul_add(ps, r);
    // Kernel cos: 1 − z/2 + z²·Q(z).
    let mut pc = C[5];
    pc = pc.mul_add(z, C[4]);
    pc = pc.mul_add(z, C[3]);
    pc = pc.mul_add(z, C[2]);
    pc = pc.mul_add(z, C[1]);
    pc = pc.mul_add(z, C[0]);
    let c_r = (z * z).mul_add(pc, (-0.5f64).mul_add(z, 1.0));
    // Quadrant fixup from n mod 4: odd quadrants swap sin/cos, quadrants
    // {2,3} negate sin, {1,2} negate cos — all as bit operations so the
    // SIMD mask path is reproduced exactly.
    let (s_sel, c_sel) = if bits & 1 == 1 {
        (c_r, s_r)
    } else {
        (s_r, c_r)
    };
    let sin_sign = (bits & 2) << 62;
    let cos_sign = (bits.wrapping_add(1) & 2) << 62;
    (
        f64::from_bits(s_sel.to_bits() ^ sin_sign),
        f64::from_bits(c_sel.to_bits() ^ cos_sign),
    )
}

#[inline(always)]
fn sin_cos_scalar_body(args: &[f64], sin_out: &mut [f64], cos_out: &mut [f64]) {
    for ((a, s), c) in args.iter().zip(sin_out.iter_mut()).zip(cos_out.iter_mut()) {
        let (sv, cv) = sin_cos_one(*a);
        *s = sv;
        *c = cv;
    }
}

/// Scalar dispatch: on x86-64 with FMA, run the same body compiled with the
/// `fma` target feature so `mul_add` lowers to an inline `vfmadd` instead of
/// a libm call — identical results, hardware speed.
fn sin_cos_scalar(args: &[f64], sin_out: &mut [f64], cos_out: &mut [f64]) {
    #[cfg(target_arch = "x86_64")]
    {
        if is_x86_feature_detected!("fma") {
            // SAFETY: FMA support was just detected.
            unsafe { x86_scalar_fma::sin_cos(args, sin_out, cos_out) }
            return;
        }
    }
    sin_cos_scalar_body(args, sin_out, cos_out);
}

#[cfg(target_arch = "x86_64")]
mod x86_scalar_fma {
    /// # Safety
    ///
    /// The CPU must support FMA (caller runtime-detects).
    #[target_feature(enable = "fma")]
    pub unsafe fn sin_cos(args: &[f64], sin_out: &mut [f64], cos_out: &mut [f64]) {
        super::sin_cos_scalar_body(args, sin_out, cos_out);
    }

    /// # Safety
    ///
    /// The CPU must support FMA (caller runtime-detects).
    #[target_feature(enable = "fma")]
    #[allow(clippy::too_many_arguments)]
    pub unsafe fn fused_weighted_rows(
        phase: &[f64],
        base: &[f64],
        t_re: &[f64],
        t_im: &[f64],
        scale: f64,
        lanes: usize,
        w_re: &mut [f64],
        w_im: &mut [f64],
    ) {
        super::fused_weighted_rows_body(phase, base, t_re, t_im, scale, lanes, w_re, w_im);
    }
}

// ---------------------------------------------------------------------------
// Dot products (PCA projection)
// ---------------------------------------------------------------------------

/// Dot product `Σ a[i]·b[i]` in the canonical lane-structured order: four
/// interleaved fused accumulators over the 4-aligned prefix, combined as
/// `(acc0 + acc1) + (acc2 + acc3)`, then a sequential fused tail. Every
/// backend implements exactly this order, so results are bit-identical
/// across backends (though different from a naive sequential sum).
///
/// # Panics
///
/// Panics if the slices differ in length.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot length mismatch");
    match active() {
        #[cfg(target_arch = "x86_64")]
        ComputeBackend::Avx2 if a.len() >= SIMD_MIN_LEN => unsafe { avx2::dot(a, b) },
        _ => dot_scalar(a, b),
    }
}

/// Centered dot product `Σ axis[i]·(x[i] − mean[i])` — the PCA projection
/// inner loop — in the same canonical lane order as [`dot`].
///
/// # Panics
///
/// Panics if the slices differ in length.
#[inline]
pub fn dot_centered(axis: &[f64], x: &[f64], mean: &[f64]) -> f64 {
    assert_eq!(axis.len(), x.len(), "dot_centered length mismatch");
    assert_eq!(axis.len(), mean.len(), "dot_centered mean length mismatch");
    match active() {
        #[cfg(target_arch = "x86_64")]
        ComputeBackend::Avx2 if axis.len() >= SIMD_MIN_LEN => unsafe {
            avx2::dot_centered(axis, x, mean)
        },
        _ => dot_centered_scalar(axis, x, mean),
    }
}

#[inline(always)]
fn dot_scalar_body(a: &[f64], b: &[f64]) -> f64 {
    let mut acc = [0.0f64; 4];
    let quads = a.len() / 4 * 4;
    let mut i = 0;
    while i < quads {
        acc[0] = a[i].mul_add(b[i], acc[0]);
        acc[1] = a[i + 1].mul_add(b[i + 1], acc[1]);
        acc[2] = a[i + 2].mul_add(b[i + 2], acc[2]);
        acc[3] = a[i + 3].mul_add(b[i + 3], acc[3]);
        i += 4;
    }
    let mut sum = (acc[0] + acc[1]) + (acc[2] + acc[3]);
    while i < a.len() {
        sum = a[i].mul_add(b[i], sum);
        i += 1;
    }
    sum
}

#[inline(always)]
fn dot_centered_body(axis: &[f64], x: &[f64], mean: &[f64]) -> f64 {
    let mut acc = [0.0f64; 4];
    let quads = axis.len() / 4 * 4;
    let mut i = 0;
    while i < quads {
        acc[0] = axis[i].mul_add(x[i] - mean[i], acc[0]);
        acc[1] = axis[i + 1].mul_add(x[i + 1] - mean[i + 1], acc[1]);
        acc[2] = axis[i + 2].mul_add(x[i + 2] - mean[i + 2], acc[2]);
        acc[3] = axis[i + 3].mul_add(x[i + 3] - mean[i + 3], acc[3]);
        i += 4;
    }
    let mut sum = (acc[0] + acc[1]) + (acc[2] + acc[3]);
    while i < axis.len() {
        sum = axis[i].mul_add(x[i] - mean[i], sum);
        i += 1;
    }
    sum
}

fn dot_scalar(a: &[f64], b: &[f64]) -> f64 {
    #[cfg(target_arch = "x86_64")]
    {
        if is_x86_feature_detected!("fma") {
            // SAFETY: FMA support was just detected.
            return unsafe { x86_scalar_fma_dot::dot(a, b) };
        }
    }
    dot_scalar_body(a, b)
}

fn dot_centered_scalar(axis: &[f64], x: &[f64], mean: &[f64]) -> f64 {
    #[cfg(target_arch = "x86_64")]
    {
        if is_x86_feature_detected!("fma") {
            // SAFETY: FMA support was just detected.
            return unsafe { x86_scalar_fma_dot::dot_centered(axis, x, mean) };
        }
    }
    dot_centered_body(axis, x, mean)
}

#[cfg(target_arch = "x86_64")]
mod x86_scalar_fma_dot {
    /// # Safety
    ///
    /// The CPU must support FMA (caller runtime-detects).
    #[target_feature(enable = "fma")]
    pub unsafe fn dot(a: &[f64], b: &[f64]) -> f64 {
        super::dot_scalar_body(a, b)
    }

    /// # Safety
    ///
    /// The CPU must support FMA (caller runtime-detects).
    #[target_feature(enable = "fma")]
    pub unsafe fn dot_centered(axis: &[f64], x: &[f64], mean: &[f64]) -> f64 {
        super::dot_centered_body(axis, x, mean)
    }
}

// ---------------------------------------------------------------------------
// Weighted rows (symbolic overlap kernel)
// ---------------------------------------------------------------------------

/// Scaled element-wise add `out[i] = k·a[i] + b[i]` with **plain**
/// (non-fused) operations on every backend — the symbolic kernel's
/// row-argument sweep `arg_r = φ_r/2 + base_r`. Plain multiplies and adds
/// are correctly rounded element-wise, so every backend is bit-identical.
///
/// # Panics
///
/// Panics if the slices differ in length.
#[inline]
pub fn scale_add(a: &[f64], k: f64, b: &[f64], out: &mut [f64]) {
    assert_eq!(a.len(), b.len(), "scale_add length mismatch");
    assert_eq!(a.len(), out.len(), "scale_add output length mismatch");
    match active() {
        #[cfg(target_arch = "x86_64")]
        ComputeBackend::Avx2 if a.len() >= SIMD_MIN_LEN => unsafe { avx2::scale_add(a, k, b, out) },
        _ => scale_add_body(a, k, b, out),
    }
}

#[inline(always)]
fn scale_add_body(a: &[f64], k: f64, b: &[f64], out: &mut [f64]) {
    for ((o, x), y) in out.iter_mut().zip(a.iter()).zip(b.iter()) {
        *o = k * x + y;
    }
}

/// The symbolic kernel's weighted-row sweep: with the conjugated target
/// stored interleaved (`target[2r] = re_r`, `target[2r + 1] = im_r`) and the
/// row phases' `sin`/`cos` precomputed, writes
///
/// ```text
/// w_re[r] = scale · (re_r·cos_r − im_r·sin_r)
/// w_im[r] = scale · (re_r·sin_r + im_r·cos_r)
/// ```
///
/// and returns `(Σ w_re, Σ w_im)` in the canonical lane-structured order of
/// [`dot`] (four accumulators over the 4-aligned row prefix, combined
/// `(a₀+a₁)+(a₂+a₃)`, sequential tail). The products are plain element-wise
/// mul/sub/add — never fused — and the scalar path implements the reduction
/// order the SIMD lanes produce natively, so every backend is bit-identical.
/// [`sum_lanes`] applies the same order per batch lane, which is what keeps
/// batched lanes bit-identical to solo calls.
///
/// # Panics
///
/// Panics if `target.len() != 2·sin.len()` or any other slice length
/// disagrees with `sin.len()`.
pub fn weighted_rows(
    target: &[f64],
    sin: &[f64],
    cos: &[f64],
    scale: f64,
    w_re: &mut [f64],
    w_im: &mut [f64],
) -> (f64, f64) {
    let n = sin.len();
    assert_eq!(target.len(), 2 * n, "weighted_rows target length mismatch");
    assert_eq!(cos.len(), n, "weighted_rows cos length mismatch");
    assert_eq!(w_re.len(), n, "weighted_rows w_re length mismatch");
    assert_eq!(w_im.len(), n, "weighted_rows w_im length mismatch");
    match active() {
        #[cfg(target_arch = "x86_64")]
        ComputeBackend::Avx2 if n >= SIMD_MIN_LEN => unsafe {
            avx2::weighted_rows(target, sin, cos, scale, w_re, w_im)
        },
        _ => {
            weighted_rows_scalar(target, sin, cos, scale, w_re, w_im);
            sum_pair_body(w_re, w_im)
        }
    }
}

#[inline(always)]
fn weighted_rows_scalar(
    target: &[f64],
    sin: &[f64],
    cos: &[f64],
    scale: f64,
    w_re: &mut [f64],
    w_im: &mut [f64],
) {
    for r in 0..sin.len() {
        let (tr, ti) = (target[2 * r], target[2 * r + 1]);
        let (s, c) = (sin[r], cos[r]);
        w_re[r] = scale * (tr * c - ti * s);
        w_im[r] = scale * (tr * s + ti * c);
    }
}

/// Canonical lane-structured sums of two equal-length slices (the reduction
/// leg of [`weighted_rows`]).
#[inline(always)]
fn sum_pair_body(w_re: &[f64], w_im: &[f64]) -> (f64, f64) {
    let n = w_re.len();
    let quads = n / 4 * 4;
    let mut ar = [0.0f64; 4];
    let mut ai = [0.0f64; 4];
    let mut r = 0;
    while r < quads {
        ar[0] += w_re[r];
        ar[1] += w_re[r + 1];
        ar[2] += w_re[r + 2];
        ar[3] += w_re[r + 3];
        ai[0] += w_im[r];
        ai[1] += w_im[r + 1];
        ai[2] += w_im[r + 2];
        ai[3] += w_im[r + 3];
        r += 4;
    }
    let mut sum_re = (ar[0] + ar[1]) + (ar[2] + ar[3]);
    let mut sum_im = (ai[0] + ai[1]) + (ai[2] + ai[3]);
    while r < n {
        sum_re += w_re[r];
        sum_im += w_im[r];
        r += 1;
    }
    (sum_re, sum_im)
}

/// Element-wise planar variant of [`weighted_rows`] for the batched kernel:
/// all six buffers share the `dim × lanes` lane-interleaved layout, the
/// products are the identical plain mul/sub/add sequence, and no sums are
/// formed — the batch reduces per lane afterwards with [`sum_lanes`].
/// Bit-identical across backends for the same reason as [`weighted_rows`].
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn weighted_rows_planar(
    t_re: &[f64],
    t_im: &[f64],
    sin: &[f64],
    cos: &[f64],
    scale: f64,
    w_re: &mut [f64],
    w_im: &mut [f64],
) {
    let n = t_re.len();
    assert_eq!(t_im.len(), n, "weighted_rows_planar t_im length mismatch");
    assert_eq!(sin.len(), n, "weighted_rows_planar sin length mismatch");
    assert_eq!(cos.len(), n, "weighted_rows_planar cos length mismatch");
    assert_eq!(w_re.len(), n, "weighted_rows_planar w_re length mismatch");
    assert_eq!(w_im.len(), n, "weighted_rows_planar w_im length mismatch");
    match active() {
        #[cfg(target_arch = "x86_64")]
        ComputeBackend::Avx2 if n >= SIMD_MIN_LEN => unsafe {
            avx2::weighted_rows_planar(t_re, t_im, sin, cos, scale, w_re, w_im)
        },
        _ => weighted_rows_planar_body(t_re, t_im, sin, cos, scale, w_re, w_im),
    }
}

#[inline(always)]
fn weighted_rows_planar_body(
    t_re: &[f64],
    t_im: &[f64],
    sin: &[f64],
    cos: &[f64],
    scale: f64,
    w_re: &mut [f64],
    w_im: &mut [f64],
) {
    for i in 0..t_re.len() {
        w_re[i] = scale * (t_re[i] * cos[i] - t_im[i] * sin[i]);
        w_im[i] = scale * (t_re[i] * sin[i] + t_im[i] * cos[i]);
    }
}

/// Fused batched row sweep over a `dim × lanes` lane-interleaved block: for
/// every element, `arg = phase/2 + base[row]`, `(sin, cos) = sin_cos(arg)`,
/// then the weighted-row products of [`weighted_rows_planar`] — with the
/// arguments and sin/cos living entirely in registers — and finally the
/// per-lane canonical sums of [`sum_lanes`], accumulated while the products
/// are still hot. Only `w_re`/`w_im`/`sum_re`/`sum_im` are written, roughly
/// halving the batch's streamed traffic versus running [`scale_add`],
/// [`sin_cos_slice`], [`weighted_rows_planar`] and two [`sum_lanes`] passes
/// separately.
///
/// Element-wise and sum-order identical to that composition — same plain
/// argument arithmetic, same sin/cos polynomial kernel, same plain
/// products, same canonical lane-structured reduction — hence bit-identical
/// across backends and to the solo kernels.
///
/// # Panics
///
/// Panics if `phase.len() != base.len() · lanes` or any other slice length
/// disagrees with the `dim × lanes` layout.
#[allow(clippy::too_many_arguments)]
pub fn fused_weighted_rows(
    phase: &[f64],
    base: &[f64],
    t_re: &[f64],
    t_im: &[f64],
    scale: f64,
    lanes: usize,
    w_re: &mut [f64],
    w_im: &mut [f64],
    sum_re: &mut [f64],
    sum_im: &mut [f64],
) {
    let n = phase.len();
    assert!(lanes > 0, "fused_weighted_rows needs at least one lane");
    assert_eq!(
        base.len() * lanes,
        n,
        "fused_weighted_rows base/lanes layout mismatch"
    );
    assert_eq!(t_re.len(), n, "fused_weighted_rows t_re length mismatch");
    assert_eq!(t_im.len(), n, "fused_weighted_rows t_im length mismatch");
    assert_eq!(w_re.len(), n, "fused_weighted_rows w_re length mismatch");
    assert_eq!(w_im.len(), n, "fused_weighted_rows w_im length mismatch");
    assert_eq!(sum_re.len(), lanes, "fused_weighted_rows sum_re mismatch");
    assert_eq!(sum_im.len(), lanes, "fused_weighted_rows sum_im mismatch");
    match active() {
        #[cfg(target_arch = "x86_64")]
        ComputeBackend::Avx2 if lanes >= 4 && n >= SIMD_MIN_LEN => unsafe {
            avx2::fused_weighted_rows(
                phase, base, t_re, t_im, scale, lanes, w_re, w_im, sum_re, sum_im,
            )
        },
        _ => {
            fused_weighted_rows_scalar(phase, base, t_re, t_im, scale, lanes, w_re, w_im);
            sum_lanes_body(w_re, lanes, sum_re, 0, lanes);
            sum_lanes_body(w_im, lanes, sum_im, 0, lanes);
        }
    }
}

#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn fused_weighted_rows_body(
    phase: &[f64],
    base: &[f64],
    t_re: &[f64],
    t_im: &[f64],
    scale: f64,
    lanes: usize,
    w_re: &mut [f64],
    w_im: &mut [f64],
) {
    for (r, &bp) in base.iter().enumerate() {
        let row = r * lanes;
        for i in row..row + lanes {
            let (s, c) = sin_cos_one(0.5 * phase[i] + bp);
            w_re[i] = scale * (t_re[i] * c - t_im[i] * s);
            w_im[i] = scale * (t_re[i] * s + t_im[i] * c);
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn fused_weighted_rows_scalar(
    phase: &[f64],
    base: &[f64],
    t_re: &[f64],
    t_im: &[f64],
    scale: f64,
    lanes: usize,
    w_re: &mut [f64],
    w_im: &mut [f64],
) {
    #[cfg(target_arch = "x86_64")]
    {
        if is_x86_feature_detected!("fma") {
            // SAFETY: FMA support was just detected.
            unsafe {
                x86_scalar_fma::fused_weighted_rows(
                    phase, base, t_re, t_im, scale, lanes, w_re, w_im,
                )
            }
            return;
        }
    }
    fused_weighted_rows_body(phase, base, t_re, t_im, scale, lanes, w_re, w_im);
}

/// Per-lane canonical sums over a lane-interleaved batch buffer:
/// `out[b] = Σ_r data[r·lanes + b]`, every lane reduced in exactly the
/// canonical lane-structured **row** order of [`weighted_rows`] (four
/// accumulators over the 4-aligned row prefix, combined `(a₀+a₁)+(a₂+a₃)`,
/// sequential row tail). That makes a batch lane's sum bit-identical to the
/// solo kernel's — on every backend.
///
/// # Panics
///
/// Panics if `data.len() != lanes · out.len()`.
pub fn sum_lanes(data: &[f64], lanes: usize, out: &mut [f64]) {
    assert!(lanes > 0, "sum_lanes needs at least one lane");
    assert_eq!(
        data.len(),
        lanes * (data.len() / lanes.max(1)),
        "sum_lanes layout mismatch"
    );
    assert_eq!(out.len(), lanes, "sum_lanes output length mismatch");
    match active() {
        #[cfg(target_arch = "x86_64")]
        ComputeBackend::Avx2 if lanes >= 4 && data.len() >= SIMD_MIN_LEN => unsafe {
            avx2::sum_lanes(data, lanes, out)
        },
        _ => sum_lanes_body(data, lanes, out, 0, lanes),
    }
}

/// Scalar per-lane reduction for lanes `from..to` (the SIMD path reuses it
/// for its lane tail).
#[inline(always)]
fn sum_lanes_body(data: &[f64], lanes: usize, out: &mut [f64], from: usize, to: usize) {
    let dim = data.len() / lanes;
    let quads = dim / 4 * 4;
    for (b, o) in out.iter_mut().enumerate().take(to).skip(from) {
        let mut acc = [0.0f64; 4];
        let mut r = 0;
        while r < quads {
            acc[0] += data[r * lanes + b];
            acc[1] += data[(r + 1) * lanes + b];
            acc[2] += data[(r + 2) * lanes + b];
            acc[3] += data[(r + 3) * lanes + b];
            r += 4;
        }
        let mut sum = (acc[0] + acc[1]) + (acc[2] + acc[3]);
        while r < dim {
            sum += data[r * lanes + b];
            r += 1;
        }
        *o = sum;
    }
}

// ---------------------------------------------------------------------------
// Cache-key quantization
// ---------------------------------------------------------------------------

/// Quantizes a feature vector into grid-cell indices — the serve layer's
/// cache-key body, routed through the backend layer so key hashing shares
/// the operator table (and its tests) with the kernels.
///
/// Semantics are pinned, not vectorised: `round` here is IEEE
/// round-half-away-from-zero and the `i64` conversion saturates, neither of
/// which AVX2 expresses in a form worth the lane setup at cache-key widths
/// (≤ a few hundred features) — so the dispatcher's size threshold always
/// selects the scalar lane and every backend is trivially bit-identical.
///
/// **Non-finite inputs are the caller's bug**: NaN converts to 0 and ±∞
/// saturate, silently colliding with legitimate cells. The serve layer
/// rejects non-finite features with a typed error before any key is built.
pub fn quantize_cells(features: &[f64], quantum: f64) -> Vec<i64> {
    let mut cells = Vec::new();
    quantize_cells_into(features, quantum, &mut cells);
    cells
}

/// [`quantize_cells`] writing into a caller-owned buffer (cleared first),
/// so a steady-state cache probe reuses one allocation across requests.
/// Cell values are bit-identical to [`quantize_cells`].
pub fn quantize_cells_into(features: &[f64], quantum: f64, out: &mut Vec<i64>) {
    out.clear();
    if quantum <= 0.0 {
        out.extend(features.iter().map(|f| f.to_bits() as i64));
    } else {
        out.extend(features.iter().map(|f| (f / quantum).round() as i64));
    }
}

// ---------------------------------------------------------------------------
// AVX2 backend
// ---------------------------------------------------------------------------

#[cfg(target_arch = "x86_64")]
mod avx2 {
    //! AVX2 + FMA lanes. Every function requires `avx2` and `fma` to be
    //! runtime-detected by the caller; all arithmetic mirrors the scalar
    //! bodies operation for operation (see the crate docs).

    use super::{C, MAGIC, PIO2_1, PIO2_2, PIO2_3, S, TWO_OVER_PI};
    use std::arch::x86_64::*;

    /// # Safety
    ///
    /// Requires AVX2 (caller runtime-detects).
    #[target_feature(enable = "avx2")]
    pub unsafe fn wht(data: &mut [f64]) {
        let n = data.len();
        let ptr = data.as_mut_ptr();
        // Stages h=1 and h=2 fused in-register: each quad [x0,x1,x2,x3]
        // becomes [x0+x1, x0−x1, x2+x3, x2−x3], then the h=2 butterfly on
        // that. The blends select `swap − x` lanes so every subtraction has
        // the scalar schedule's operand order (a − b), and additions only
        // commute — both leave results bit-identical to the scalar stages.
        // The dispatcher guarantees n ≥ 8, so n is a multiple of 4.
        let mut i = 0;
        while i < n {
            let x = _mm256_loadu_pd(ptr.add(i));
            let sw1 = _mm256_permute_pd::<0b0101>(x);
            let y = _mm256_blend_pd::<0b1010>(_mm256_add_pd(x, sw1), _mm256_sub_pd(sw1, x));
            let sw2 = _mm256_permute4x64_pd::<0x4E>(y);
            let z = _mm256_blend_pd::<0b1100>(_mm256_add_pd(y, sw2), _mm256_sub_pd(sw2, y));
            _mm256_storeu_pd(ptr.add(i), z);
            i += 4;
        }
        let mut h = 4usize;
        while h < n {
            let mut block = 0;
            while block < n {
                let mut i = block;
                while i < block + h {
                    let pa = ptr.add(i);
                    let pb = ptr.add(i + h);
                    let a = _mm256_loadu_pd(pa);
                    let b = _mm256_loadu_pd(pb);
                    _mm256_storeu_pd(pa, _mm256_add_pd(a, b));
                    _mm256_storeu_pd(pb, _mm256_sub_pd(a, b));
                    i += 4;
                }
                block += h * 2;
            }
            h *= 2;
        }
    }

    /// One batched butterfly: `count` contiguous (a+b, a−b) pairs.
    ///
    /// # Safety
    ///
    /// Requires AVX2; `pa + count` and `pb + count` must be in bounds.
    #[target_feature(enable = "avx2")]
    unsafe fn butterfly_rows(ptr: *mut f64, pa: usize, pb: usize, count: usize) {
        let quads = count / 4 * 4;
        let mut b = 0;
        while b < quads {
            let qa = ptr.add(pa + b);
            let qb = ptr.add(pb + b);
            let a = _mm256_loadu_pd(qa);
            let c = _mm256_loadu_pd(qb);
            _mm256_storeu_pd(qa, _mm256_add_pd(a, c));
            _mm256_storeu_pd(qb, _mm256_sub_pd(a, c));
            b += 4;
        }
        while b < count {
            let a = *ptr.add(pa + b);
            let c = *ptr.add(pb + b);
            *ptr.add(pa + b) = a + c;
            *ptr.add(pb + b) = a - c;
            b += 1;
        }
    }

    /// Runs the full butterfly schedule over one 8-lane column block. The
    /// block's working set is one cache line per row (so every stage runs
    /// out of L1), and stages are fused in triples: rows `i, i+h, …, i+7h`
    /// are loaded once, the stage-`h`, stage-`2h`, and stage-`4h`
    /// butterflies run in registers, and the rows are stored once — a third
    /// of the unfused load/store traffic. Both the lane blocking and the
    /// stage fusion only reorder independent element-wise butterflies, and
    /// every butterfly keeps the scalar operand order
    /// `(lower + upper, lower − upper)`, so results stay bit-identical to
    /// the scalar schedule.
    ///
    /// # Safety
    ///
    /// Requires AVX2; columns `b0..b0 + 8` of every row must be in bounds.
    #[target_feature(enable = "avx2")]
    unsafe fn wht_batch_cols8(ptr: *mut f64, dim: usize, lanes: usize, b0: usize) {
        let mut h = 1usize;
        while h * 4 < dim {
            let mut block = 0;
            while block < dim {
                for i in block..block + h {
                    let rows: [*mut f64; 8] =
                        std::array::from_fn(|k| ptr.add((i + k * h) * lanes + b0));
                    for off in [0usize, 4] {
                        let r: [__m256d; 8] =
                            std::array::from_fn(|k| _mm256_loadu_pd(rows[k].add(off)));
                        // Stage h: pairs at distance h.
                        let s0 = _mm256_add_pd(r[0], r[1]);
                        let s1 = _mm256_sub_pd(r[0], r[1]);
                        let s2 = _mm256_add_pd(r[2], r[3]);
                        let s3 = _mm256_sub_pd(r[2], r[3]);
                        let s4 = _mm256_add_pd(r[4], r[5]);
                        let s5 = _mm256_sub_pd(r[4], r[5]);
                        let s6 = _mm256_add_pd(r[6], r[7]);
                        let s7 = _mm256_sub_pd(r[6], r[7]);
                        // Stage 2h: pairs at distance 2h.
                        let t0 = _mm256_add_pd(s0, s2);
                        let t2 = _mm256_sub_pd(s0, s2);
                        let t1 = _mm256_add_pd(s1, s3);
                        let t3 = _mm256_sub_pd(s1, s3);
                        let t4 = _mm256_add_pd(s4, s6);
                        let t6 = _mm256_sub_pd(s4, s6);
                        let t5 = _mm256_add_pd(s5, s7);
                        let t7 = _mm256_sub_pd(s5, s7);
                        // Stage 4h: pairs at distance 4h.
                        _mm256_storeu_pd(rows[0].add(off), _mm256_add_pd(t0, t4));
                        _mm256_storeu_pd(rows[4].add(off), _mm256_sub_pd(t0, t4));
                        _mm256_storeu_pd(rows[1].add(off), _mm256_add_pd(t1, t5));
                        _mm256_storeu_pd(rows[5].add(off), _mm256_sub_pd(t1, t5));
                        _mm256_storeu_pd(rows[2].add(off), _mm256_add_pd(t2, t6));
                        _mm256_storeu_pd(rows[6].add(off), _mm256_sub_pd(t2, t6));
                        _mm256_storeu_pd(rows[3].add(off), _mm256_add_pd(t3, t7));
                        _mm256_storeu_pd(rows[7].add(off), _mm256_sub_pd(t3, t7));
                    }
                }
                block += h * 8;
            }
            h *= 8;
        }
        if h * 2 < dim {
            // Two stages left: one pair-fused pass.
            let mut block = 0;
            while block < dim {
                for i in block..block + h {
                    let q0 = ptr.add(i * lanes + b0);
                    let q1 = ptr.add((i + h) * lanes + b0);
                    let q2 = ptr.add((i + 2 * h) * lanes + b0);
                    let q3 = ptr.add((i + 3 * h) * lanes + b0);
                    for off in [0usize, 4] {
                        let a = _mm256_loadu_pd(q0.add(off));
                        let b = _mm256_loadu_pd(q1.add(off));
                        let c = _mm256_loadu_pd(q2.add(off));
                        let d = _mm256_loadu_pd(q3.add(off));
                        let ab0 = _mm256_add_pd(a, b);
                        let ab1 = _mm256_sub_pd(a, b);
                        let cd0 = _mm256_add_pd(c, d);
                        let cd1 = _mm256_sub_pd(c, d);
                        _mm256_storeu_pd(q0.add(off), _mm256_add_pd(ab0, cd0));
                        _mm256_storeu_pd(q1.add(off), _mm256_add_pd(ab1, cd1));
                        _mm256_storeu_pd(q2.add(off), _mm256_sub_pd(ab0, cd0));
                        _mm256_storeu_pd(q3.add(off), _mm256_sub_pd(ab1, cd1));
                    }
                }
                block += h * 4;
            }
            h *= 4;
        }
        if h < dim {
            // Odd stage count: one unfused pass at the final stride.
            let mut block = 0;
            while block < dim {
                for i in block..block + h {
                    let qa = ptr.add(i * lanes + b0);
                    let qb = ptr.add((i + h) * lanes + b0);
                    for off in [0usize, 4] {
                        let a = _mm256_loadu_pd(qa.add(off));
                        let c = _mm256_loadu_pd(qb.add(off));
                        _mm256_storeu_pd(qa.add(off), _mm256_add_pd(a, c));
                        _mm256_storeu_pd(qb.add(off), _mm256_sub_pd(a, c));
                    }
                }
                block += h * 2;
            }
        }
    }

    /// # Safety
    ///
    /// Requires AVX2 (caller runtime-detects).
    #[target_feature(enable = "avx2")]
    pub unsafe fn wht_batch(data: &mut [f64], lanes: usize) {
        let dim = data.len() / lanes;
        let ptr = data.as_mut_ptr();
        // Lane-blocked: butterflies never mix columns, so running the whole
        // stage schedule per 8-lane column block is a pure reordering of
        // independent element-wise operations (bit-identical) that keeps the
        // working set L1-resident instead of streaming the full buffer once
        // per stage.
        let mut b0 = 0;
        while b0 + 8 <= lanes {
            wht_batch_cols8(ptr, dim, lanes, b0);
            b0 += 8;
        }
        if b0 < lanes {
            let rem = lanes - b0;
            let mut h = 1usize;
            while h < dim {
                let mut block = 0;
                while block < dim {
                    for i in block..block + h {
                        butterfly_rows(ptr, i * lanes + b0, (i + h) * lanes + b0, rem);
                    }
                    block += h * 2;
                }
                h *= 2;
            }
        }
    }

    /// Four-lane clone of [`super::sin_cos_one`] — same constants, same
    /// operation order, `vfmadd` for every `mul_add`.
    ///
    /// # Safety
    ///
    /// Requires AVX2 + FMA (caller runtime-detects).
    #[target_feature(enable = "avx2", enable = "fma")]
    unsafe fn sin_cos4(x: __m256d) -> (__m256d, __m256d) {
        let magic = _mm256_set1_pd(MAGIC);
        let nf = _mm256_fmadd_pd(x, _mm256_set1_pd(TWO_OVER_PI), magic);
        let bits = _mm256_castpd_si256(nf);
        let n = _mm256_sub_pd(nf, magic);
        let mut r = _mm256_fnmadd_pd(n, _mm256_set1_pd(PIO2_1), x);
        r = _mm256_fnmadd_pd(n, _mm256_set1_pd(PIO2_2), r);
        r = _mm256_fnmadd_pd(n, _mm256_set1_pd(PIO2_3), r);
        let z = _mm256_mul_pd(r, r);
        let mut ps = _mm256_set1_pd(S[5]);
        ps = _mm256_fmadd_pd(ps, z, _mm256_set1_pd(S[4]));
        ps = _mm256_fmadd_pd(ps, z, _mm256_set1_pd(S[3]));
        ps = _mm256_fmadd_pd(ps, z, _mm256_set1_pd(S[2]));
        ps = _mm256_fmadd_pd(ps, z, _mm256_set1_pd(S[1]));
        ps = _mm256_fmadd_pd(ps, z, _mm256_set1_pd(S[0]));
        let s_r = _mm256_fmadd_pd(_mm256_mul_pd(z, r), ps, r);
        let mut pc = _mm256_set1_pd(C[5]);
        pc = _mm256_fmadd_pd(pc, z, _mm256_set1_pd(C[4]));
        pc = _mm256_fmadd_pd(pc, z, _mm256_set1_pd(C[3]));
        pc = _mm256_fmadd_pd(pc, z, _mm256_set1_pd(C[2]));
        pc = _mm256_fmadd_pd(pc, z, _mm256_set1_pd(C[1]));
        pc = _mm256_fmadd_pd(pc, z, _mm256_set1_pd(C[0]));
        let half = _mm256_fnmadd_pd(_mm256_set1_pd(0.5), z, _mm256_set1_pd(1.0));
        let c_r = _mm256_fmadd_pd(_mm256_mul_pd(z, z), pc, half);
        // Quadrant fixup, mirroring the scalar bit operations.
        let one = _mm256_set1_epi64x(1);
        let two = _mm256_set1_epi64x(2);
        let swap = _mm256_cmpeq_epi64(_mm256_and_si256(bits, one), one);
        let swap_pd = _mm256_castsi256_pd(swap);
        let s_sel = _mm256_blendv_pd(s_r, c_r, swap_pd);
        let c_sel = _mm256_blendv_pd(c_r, s_r, swap_pd);
        let sin_sign = _mm256_slli_epi64::<62>(_mm256_and_si256(bits, two));
        let cos_sign = _mm256_slli_epi64::<62>(_mm256_and_si256(_mm256_add_epi64(bits, one), two));
        (
            _mm256_xor_pd(s_sel, _mm256_castsi256_pd(sin_sign)),
            _mm256_xor_pd(c_sel, _mm256_castsi256_pd(cos_sign)),
        )
    }

    /// # Safety
    ///
    /// Requires AVX2 + FMA (caller runtime-detects). Slice lengths must be
    /// equal (the dispatcher asserts).
    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn sin_cos(args: &[f64], sin_out: &mut [f64], cos_out: &mut [f64]) {
        let quads = args.len() / 4 * 4;
        let mut i = 0;
        while i < quads {
            let x = _mm256_loadu_pd(args.as_ptr().add(i));
            let (s, c) = sin_cos4(x);
            _mm256_storeu_pd(sin_out.as_mut_ptr().add(i), s);
            _mm256_storeu_pd(cos_out.as_mut_ptr().add(i), c);
            i += 4;
        }
        while i < args.len() {
            let (s, c) = super::sin_cos_one(args[i]);
            sin_out[i] = s;
            cos_out[i] = c;
            i += 1;
        }
    }

    /// Combines a 4-lane accumulator in the canonical `(l0+l1)+(l2+l3)`
    /// order.
    ///
    /// # Safety
    ///
    /// Requires AVX2.
    #[target_feature(enable = "avx2")]
    unsafe fn reduce_lanes(acc: __m256d) -> f64 {
        let mut lanes = [0.0f64; 4];
        _mm256_storeu_pd(lanes.as_mut_ptr(), acc);
        (lanes[0] + lanes[1]) + (lanes[2] + lanes[3])
    }

    /// # Safety
    ///
    /// Requires AVX2 + FMA; slices of equal length (dispatcher asserts).
    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn dot(a: &[f64], b: &[f64]) -> f64 {
        let quads = a.len() / 4 * 4;
        let mut acc = _mm256_setzero_pd();
        let mut i = 0;
        while i < quads {
            let va = _mm256_loadu_pd(a.as_ptr().add(i));
            let vb = _mm256_loadu_pd(b.as_ptr().add(i));
            acc = _mm256_fmadd_pd(va, vb, acc);
            i += 4;
        }
        let mut sum = reduce_lanes(acc);
        while i < a.len() {
            sum = a[i].mul_add(b[i], sum);
            i += 1;
        }
        sum
    }

    /// # Safety
    ///
    /// Requires AVX2; slice lengths validated by the dispatcher.
    #[target_feature(enable = "avx2")]
    pub unsafe fn scale_add(a: &[f64], k: f64, b: &[f64], out: &mut [f64]) {
        let quads = a.len() / 4 * 4;
        let vk = _mm256_set1_pd(k);
        let mut i = 0;
        while i < quads {
            let va = _mm256_loadu_pd(a.as_ptr().add(i));
            let vb = _mm256_loadu_pd(b.as_ptr().add(i));
            // Plain multiply + add (no fusing), mirroring the scalar body.
            _mm256_storeu_pd(
                out.as_mut_ptr().add(i),
                _mm256_add_pd(_mm256_mul_pd(vk, va), vb),
            );
            i += 4;
        }
        while i < a.len() {
            out[i] = k * a[i] + b[i];
            i += 1;
        }
    }

    /// Weighted rows over an interleaved `(re, im)` target. Two quad loads
    /// plus `unpacklo`/`unpackhi` de-interleave four rows into the lane
    /// permutation `(0, 2, 1, 3)`; `permute4x64(0xD8)` (its own inverse)
    /// brings the `sin`/`cos` loads into the same permutation and the
    /// products back into row order, so the stores and the lane accumulators
    /// see natural row order — lane `k` of the accumulator sums rows
    /// `≡ k (mod 4)`, exactly the scalar canon.
    ///
    /// # Safety
    ///
    /// Requires AVX2; slice lengths validated by the dispatcher.
    #[target_feature(enable = "avx2")]
    pub unsafe fn weighted_rows(
        target: &[f64],
        sin: &[f64],
        cos: &[f64],
        scale: f64,
        w_re: &mut [f64],
        w_im: &mut [f64],
    ) -> (f64, f64) {
        let n = sin.len();
        let quads = n / 4 * 4;
        let vscale = _mm256_set1_pd(scale);
        let mut acc_re = _mm256_setzero_pd();
        let mut acc_im = _mm256_setzero_pd();
        let mut r = 0;
        while r < quads {
            let lo = _mm256_loadu_pd(target.as_ptr().add(2 * r));
            let hi = _mm256_loadu_pd(target.as_ptr().add(2 * r + 4));
            let tr = _mm256_unpacklo_pd(lo, hi);
            let ti = _mm256_unpackhi_pd(lo, hi);
            let s = _mm256_permute4x64_pd::<0xD8>(_mm256_loadu_pd(sin.as_ptr().add(r)));
            let c = _mm256_permute4x64_pd::<0xD8>(_mm256_loadu_pd(cos.as_ptr().add(r)));
            let re = _mm256_mul_pd(
                vscale,
                _mm256_sub_pd(_mm256_mul_pd(tr, c), _mm256_mul_pd(ti, s)),
            );
            let im = _mm256_mul_pd(
                vscale,
                _mm256_add_pd(_mm256_mul_pd(tr, s), _mm256_mul_pd(ti, c)),
            );
            let re_rows = _mm256_permute4x64_pd::<0xD8>(re);
            let im_rows = _mm256_permute4x64_pd::<0xD8>(im);
            _mm256_storeu_pd(w_re.as_mut_ptr().add(r), re_rows);
            _mm256_storeu_pd(w_im.as_mut_ptr().add(r), im_rows);
            acc_re = _mm256_add_pd(acc_re, re_rows);
            acc_im = _mm256_add_pd(acc_im, im_rows);
            r += 4;
        }
        let mut sum_re = reduce_lanes(acc_re);
        let mut sum_im = reduce_lanes(acc_im);
        while r < n {
            let (tr, ti) = (target[2 * r], target[2 * r + 1]);
            let (s, c) = (sin[r], cos[r]);
            let re = scale * (tr * c - ti * s);
            let im = scale * (tr * s + ti * c);
            w_re[r] = re;
            w_im[r] = im;
            sum_re += re;
            sum_im += im;
            r += 1;
        }
        (sum_re, sum_im)
    }

    /// # Safety
    ///
    /// Requires AVX2; slice lengths validated by the dispatcher.
    #[target_feature(enable = "avx2")]
    pub unsafe fn weighted_rows_planar(
        t_re: &[f64],
        t_im: &[f64],
        sin: &[f64],
        cos: &[f64],
        scale: f64,
        w_re: &mut [f64],
        w_im: &mut [f64],
    ) {
        let n = t_re.len();
        let quads = n / 4 * 4;
        let vscale = _mm256_set1_pd(scale);
        let mut i = 0;
        while i < quads {
            let tr = _mm256_loadu_pd(t_re.as_ptr().add(i));
            let ti = _mm256_loadu_pd(t_im.as_ptr().add(i));
            let s = _mm256_loadu_pd(sin.as_ptr().add(i));
            let c = _mm256_loadu_pd(cos.as_ptr().add(i));
            let re = _mm256_mul_pd(
                vscale,
                _mm256_sub_pd(_mm256_mul_pd(tr, c), _mm256_mul_pd(ti, s)),
            );
            let im = _mm256_mul_pd(
                vscale,
                _mm256_add_pd(_mm256_mul_pd(tr, s), _mm256_mul_pd(ti, c)),
            );
            _mm256_storeu_pd(w_re.as_mut_ptr().add(i), re);
            _mm256_storeu_pd(w_im.as_mut_ptr().add(i), im);
            i += 4;
        }
        while i < n {
            w_re[i] = scale * (t_re[i] * cos[i] - t_im[i] * sin[i]);
            w_im[i] = scale * (t_re[i] * sin[i] + t_im[i] * cos[i]);
            i += 1;
        }
    }

    /// Fused batched row sweep — argument arithmetic, [`sin_cos4`] and the
    /// weighted-row products per quad, nothing but `w` written back. The
    /// per-row lane tail uses the scalar kernel compiled in this
    /// FMA-enabled context, so its `mul_add`s fuse exactly like the scalar
    /// backend's.
    ///
    /// # Safety
    ///
    /// Requires AVX2 + FMA; layout validated by the dispatcher.
    /// Widest batch the in-pass sum accumulators cover; wider batches fall
    /// back to a separate [`sum_lanes`] pass after the row sweep.
    const FUSED_SUM_MAX_LANES: usize = 64;

    #[target_feature(enable = "avx2", enable = "fma")]
    #[allow(clippy::too_many_arguments)]
    pub unsafe fn fused_weighted_rows(
        phase: &[f64],
        base: &[f64],
        t_re: &[f64],
        t_im: &[f64],
        scale: f64,
        lanes: usize,
        w_re: &mut [f64],
        w_im: &mut [f64],
        sum_re: &mut [f64],
        sum_im: &mut [f64],
    ) {
        let dim = base.len();
        let quads = lanes / 4 * 4;
        let vhalf = _mm256_set1_pd(0.5);
        let vscale = _mm256_set1_pd(scale);
        // Canonical per-lane sums ride along in four row-class accumulators
        // (`class = row mod 4`, each class summed in ascending row order) —
        // exactly the canonical reduction `sum_lanes` performs — whenever
        // the row count is 4-aligned so no sequential row tail is needed.
        let fuse_sums = dim.is_multiple_of(4) && lanes <= FUSED_SUM_MAX_LANES;
        let mut acc_re = [0.0f64; 4 * FUSED_SUM_MAX_LANES];
        let mut acc_im = [0.0f64; 4 * FUSED_SUM_MAX_LANES];
        for (r, &bp) in base.iter().enumerate() {
            let row = r * lanes;
            let class = (r & 3) * lanes;
            let vb = _mm256_set1_pd(bp);
            let mut b = 0;
            while b < quads {
                let i = row + b;
                let p = _mm256_loadu_pd(phase.as_ptr().add(i));
                // Plain multiply + add, matching the scalar argument path.
                let arg = _mm256_add_pd(_mm256_mul_pd(vhalf, p), vb);
                let (s, c) = sin_cos4(arg);
                let tr = _mm256_loadu_pd(t_re.as_ptr().add(i));
                let ti = _mm256_loadu_pd(t_im.as_ptr().add(i));
                let re = _mm256_mul_pd(
                    vscale,
                    _mm256_sub_pd(_mm256_mul_pd(tr, c), _mm256_mul_pd(ti, s)),
                );
                let im = _mm256_mul_pd(
                    vscale,
                    _mm256_add_pd(_mm256_mul_pd(tr, s), _mm256_mul_pd(ti, c)),
                );
                _mm256_storeu_pd(w_re.as_mut_ptr().add(i), re);
                _mm256_storeu_pd(w_im.as_mut_ptr().add(i), im);
                if fuse_sums {
                    let ar = acc_re.as_mut_ptr().add(class + b);
                    let ai = acc_im.as_mut_ptr().add(class + b);
                    _mm256_storeu_pd(ar, _mm256_add_pd(_mm256_loadu_pd(ar), re));
                    _mm256_storeu_pd(ai, _mm256_add_pd(_mm256_loadu_pd(ai), im));
                }
                b += 4;
            }
            while b < lanes {
                let i = row + b;
                let (s, c) = super::sin_cos_one(0.5 * phase[i] + bp);
                w_re[i] = scale * (t_re[i] * c - t_im[i] * s);
                w_im[i] = scale * (t_re[i] * s + t_im[i] * c);
                if fuse_sums {
                    acc_re[class + b] += w_re[i];
                    acc_im[class + b] += w_im[i];
                }
                b += 1;
            }
        }
        if fuse_sums {
            // Combine the classes in the canonical `(a₀+a₁)+(a₂+a₃)` order.
            for b in 0..lanes {
                sum_re[b] = (acc_re[b] + acc_re[lanes + b])
                    + (acc_re[2 * lanes + b] + acc_re[3 * lanes + b]);
                sum_im[b] = (acc_im[b] + acc_im[lanes + b])
                    + (acc_im[2 * lanes + b] + acc_im[3 * lanes + b]);
            }
        } else {
            sum_lanes(w_re, lanes, sum_re);
            sum_lanes(w_im, lanes, sum_im);
        }
    }

    /// Per-lane canonical sums, four lanes per vector: accumulator `k` holds
    /// rows `≡ k (mod 4)` of four adjacent lanes, the pairwise combine
    /// `(a₀+a₁)+(a₂+a₃)` happens per vector lane, and tail rows are added
    /// sequentially — the scalar canon, replicated four lanes at a time.
    ///
    /// # Safety
    ///
    /// Requires AVX2; layout validated by the dispatcher.
    #[target_feature(enable = "avx2")]
    pub unsafe fn sum_lanes(data: &[f64], lanes: usize, out: &mut [f64]) {
        let dim = data.len() / lanes;
        let row_quads = dim / 4 * 4;
        let lane_quads = lanes / 4 * 4;
        let mut b = 0;
        while b < lane_quads {
            let mut acc = [_mm256_setzero_pd(); 4];
            let mut r = 0;
            while r < row_quads {
                for (k, a) in acc.iter_mut().enumerate() {
                    *a = _mm256_add_pd(*a, _mm256_loadu_pd(data.as_ptr().add((r + k) * lanes + b)));
                }
                r += 4;
            }
            let mut sums =
                _mm256_add_pd(_mm256_add_pd(acc[0], acc[1]), _mm256_add_pd(acc[2], acc[3]));
            while r < dim {
                sums = _mm256_add_pd(sums, _mm256_loadu_pd(data.as_ptr().add(r * lanes + b)));
                r += 1;
            }
            _mm256_storeu_pd(out.as_mut_ptr().add(b), sums);
            b += 4;
        }
        super::sum_lanes_body(data, lanes, out, b, lanes);
    }

    /// # Safety
    ///
    /// Requires AVX2 + FMA; slices of equal length (dispatcher asserts).
    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn dot_centered(axis: &[f64], x: &[f64], mean: &[f64]) -> f64 {
        let quads = axis.len() / 4 * 4;
        let mut acc = _mm256_setzero_pd();
        let mut i = 0;
        while i < quads {
            let va = _mm256_loadu_pd(axis.as_ptr().add(i));
            let vx = _mm256_loadu_pd(x.as_ptr().add(i));
            let vm = _mm256_loadu_pd(mean.as_ptr().add(i));
            acc = _mm256_fmadd_pd(va, _mm256_sub_pd(vx, vm), acc);
            i += 4;
        }
        let mut sum = reduce_lanes(acc);
        while i < axis.len() {
            sum = axis[i].mul_add(x[i] - mean[i], sum);
            i += 1;
        }
        sum
    }
}

// ---------------------------------------------------------------------------
// NEON backend
// ---------------------------------------------------------------------------

#[cfg(target_arch = "aarch64")]
mod neon {
    //! NEON (128-bit, two f64 lanes) butterflies. aarch64 `f64::mul_add`
    //! already lowers to an inline `fmadd` (FP is baseline), so the sin/cos
    //! and dot kernels reuse the scalar bodies; only the pure add/sub
    //! butterflies — where two lanes still halve the instruction count —
    //! get NEON paths. Element-wise adds are exact, so results are
    //! bit-identical to the scalar schedule.

    use std::arch::aarch64::*;

    /// # Safety
    ///
    /// NEON is baseline on aarch64; pointer arithmetic stays in bounds by
    /// the power-of-two length contract.
    #[target_feature(enable = "neon")]
    pub unsafe fn wht(data: &mut [f64]) {
        let n = data.len();
        let ptr = data.as_mut_ptr();
        let mut h = 1usize;
        while h < n && h < 2 {
            let mut block = 0;
            while block < n {
                for i in block..block + h {
                    let a = data[i];
                    let b = data[i + h];
                    data[i] = a + b;
                    data[i + h] = a - b;
                }
                block += h * 2;
            }
            h *= 2;
        }
        while h < n {
            let mut block = 0;
            while block < n {
                let mut i = block;
                while i < block + h {
                    let pa = ptr.add(i);
                    let pb = ptr.add(i + h);
                    let a = vld1q_f64(pa);
                    let b = vld1q_f64(pb);
                    vst1q_f64(pa, vaddq_f64(a, b));
                    vst1q_f64(pb, vsubq_f64(a, b));
                    i += 2;
                }
                block += h * 2;
            }
            h *= 2;
        }
    }

    /// # Safety
    ///
    /// NEON is baseline on aarch64; the dispatcher validates the layout.
    #[target_feature(enable = "neon")]
    pub unsafe fn wht_batch(data: &mut [f64], lanes: usize) {
        let dim = data.len() / lanes;
        let ptr = data.as_mut_ptr();
        let mut h = 1usize;
        while h < dim {
            let mut block = 0;
            while block < dim {
                for i in block..block + h {
                    let (pa, pb) = (i * lanes, (i + h) * lanes);
                    let pairs = lanes / 2 * 2;
                    let mut b = 0;
                    while b < pairs {
                        let qa = ptr.add(pa + b);
                        let qb = ptr.add(pb + b);
                        let a = vld1q_f64(qa);
                        let c = vld1q_f64(qb);
                        vst1q_f64(qa, vaddq_f64(a, c));
                        vst1q_f64(qb, vsubq_f64(a, c));
                        b += 2;
                    }
                    while b < lanes {
                        let a = *ptr.add(pa + b);
                        let c = *ptr.add(pb + b);
                        *ptr.add(pa + b) = a + c;
                        *ptr.add(pb + b) = a - c;
                        b += 1;
                    }
                }
                block += h * 2;
            }
            h *= 2;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn wht_direct(input: &[f64]) -> Vec<f64> {
        (0..input.len())
            .map(|r| {
                input
                    .iter()
                    .enumerate()
                    .map(|(m, v)| {
                        if (r & m).count_ones() % 2 == 1 {
                            -v
                        } else {
                            *v
                        }
                    })
                    .sum()
            })
            .collect()
    }

    #[test]
    fn wht_matches_direct_sum_on_both_backends() {
        let mut rng = StdRng::seed_from_u64(1);
        for bits in 0..8usize {
            let input: Vec<f64> = (0..1 << bits).map(|_| rng.gen_range(-2.0..2.0)).collect();
            let expect = wht_direct(&input);
            for backend in [None, Some(ComputeBackend::Scalar), Some(detect())] {
                force_backend(backend);
                let mut data = input.clone();
                walsh_hadamard(&mut data);
                for (a, b) in data.iter().zip(expect.iter()) {
                    assert!((a - b).abs() < 1e-9 * (1 << bits) as f64, "{a} vs {b}");
                }
            }
            force_backend(None);
        }
    }

    #[test]
    fn wht_is_bit_identical_across_backends() {
        let mut rng = StdRng::seed_from_u64(2);
        for bits in [0usize, 1, 2, 3, 5, 8, 10] {
            let input: Vec<f64> = (0..1 << bits).map(|_| rng.gen_range(-3.0..3.0)).collect();
            force_backend(Some(ComputeBackend::Scalar));
            let mut scalar = input.clone();
            walsh_hadamard(&mut scalar);
            force_backend(Some(detect()));
            let mut simd = input.clone();
            walsh_hadamard(&mut simd);
            force_backend(None);
            assert_eq!(scalar, simd, "bits={bits}");
        }
    }

    #[test]
    fn batched_wht_matches_per_lane_singles_bitwise() {
        let mut rng = StdRng::seed_from_u64(3);
        for (bits, lanes) in [(3usize, 1usize), (3, 2), (5, 7), (4, 16), (6, 3)] {
            let dim = 1 << bits;
            let singles: Vec<Vec<f64>> = (0..lanes)
                .map(|_| (0..dim).map(|_| rng.gen_range(-2.0..2.0)).collect())
                .collect();
            let mut interleaved = vec![0.0; dim * lanes];
            for (b, s) in singles.iter().enumerate() {
                for (r, v) in s.iter().enumerate() {
                    interleaved[r * lanes + b] = *v;
                }
            }
            for backend in [Some(ComputeBackend::Scalar), Some(detect())] {
                force_backend(backend);
                let mut batch = interleaved.clone();
                walsh_hadamard_batch(&mut batch, lanes);
                for (b, s) in singles.iter().enumerate() {
                    let mut single = s.clone();
                    walsh_hadamard(&mut single);
                    for (r, v) in single.iter().enumerate() {
                        assert_eq!(
                            batch[r * lanes + b].to_bits(),
                            v.to_bits(),
                            "lane {b} row {r} (bits={bits}, lanes={lanes})"
                        );
                    }
                }
            }
            force_backend(None);
        }
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "power-of-two")]
    fn wht_rejects_non_power_of_two_lengths_in_debug() {
        let mut data = vec![0.0; 6];
        walsh_hadamard(&mut data);
    }

    #[test]
    fn sin_cos_is_accurate_and_bit_identical() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut args: Vec<f64> = (0..4099).map(|_| rng.gen_range(-400.0..400.0)).collect();
        // Near-axis and tiny arguments stress the range reduction.
        args.extend([
            0.0,
            -0.0,
            1e-300,
            std::f64::consts::FRAC_PI_2,
            -std::f64::consts::FRAC_PI_2,
            std::f64::consts::PI,
            100.0 * std::f64::consts::PI,
            1e6,
        ]);
        let n = args.len();
        force_backend(Some(ComputeBackend::Scalar));
        let (mut s_scalar, mut c_scalar) = (vec![0.0; n], vec![0.0; n]);
        sin_cos_slice(&args, &mut s_scalar, &mut c_scalar);
        force_backend(Some(detect()));
        let (mut s_simd, mut c_simd) = (vec![0.0; n], vec![0.0; n]);
        sin_cos_slice(&args, &mut s_simd, &mut c_simd);
        force_backend(None);
        for i in 0..n {
            let (s_ref, c_ref) = args[i].sin_cos();
            assert!(
                (s_scalar[i] - s_ref).abs() < 1e-16 + 4.0 * f64::EPSILON,
                "sin({}) = {} vs std {}",
                args[i],
                s_scalar[i],
                s_ref
            );
            assert!(
                (c_scalar[i] - c_ref).abs() < 1e-16 + 4.0 * f64::EPSILON,
                "cos({}) = {} vs std {}",
                args[i],
                c_scalar[i],
                c_ref
            );
            assert_eq!(
                s_scalar[i].to_bits(),
                s_simd[i].to_bits(),
                "arg {}",
                args[i]
            );
            assert_eq!(
                c_scalar[i].to_bits(),
                c_simd[i].to_bits(),
                "arg {}",
                args[i]
            );
            let unit = s_scalar[i] * s_scalar[i] + c_scalar[i] * c_scalar[i];
            assert!((unit - 1.0).abs() < 8.0 * f64::EPSILON, "norm {unit}");
        }
    }

    #[test]
    fn dot_matches_reference_and_is_bit_identical() {
        let mut rng = StdRng::seed_from_u64(5);
        for len in [0usize, 1, 3, 4, 7, 8, 31, 64, 1000] {
            let a: Vec<f64> = (0..len).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let b: Vec<f64> = (0..len).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let m: Vec<f64> = (0..len).map(|_| rng.gen_range(-0.5..0.5)).collect();
            let naive: f64 = a.iter().zip(b.iter()).map(|(x, y)| x * y).sum();
            force_backend(Some(ComputeBackend::Scalar));
            let (ds, dcs) = (dot(&a, &b), dot_centered(&a, &b, &m));
            force_backend(Some(detect()));
            let (dv, dcv) = (dot(&a, &b), dot_centered(&a, &b, &m));
            force_backend(None);
            assert_eq!(ds.to_bits(), dv.to_bits(), "len {len}");
            assert_eq!(dcs.to_bits(), dcv.to_bits(), "len {len}");
            assert!(
                (ds - naive).abs() < 1e-12 * (1.0 + naive.abs()),
                "len {len}"
            );
            let naive_centered: f64 = a
                .iter()
                .zip(b.iter().zip(m.iter()))
                .map(|(x, (y, mm))| x * (y - mm))
                .sum();
            assert!(
                (dcs - naive_centered).abs() < 1e-12 * (1.0 + naive_centered.abs()),
                "len {len}"
            );
        }
    }

    #[test]
    fn scale_add_matches_reference_and_is_bit_identical() {
        let mut rng = StdRng::seed_from_u64(6);
        for len in [0usize, 1, 3, 4, 7, 8, 31, 256] {
            let a: Vec<f64> = (0..len).map(|_| rng.gen_range(-9.0..9.0)).collect();
            let b: Vec<f64> = (0..len).map(|_| rng.gen_range(-2.0..2.0)).collect();
            force_backend(Some(ComputeBackend::Scalar));
            let mut scalar = vec![0.0; len];
            scale_add(&a, 0.5, &b, &mut scalar);
            force_backend(Some(detect()));
            let mut simd = vec![0.0; len];
            scale_add(&a, 0.5, &b, &mut simd);
            force_backend(None);
            for i in 0..len {
                assert_eq!(scalar[i].to_bits(), (0.5 * a[i] + b[i]).to_bits(), "i {i}");
                assert_eq!(scalar[i].to_bits(), simd[i].to_bits(), "i {i}");
            }
        }
    }

    #[test]
    fn weighted_rows_matches_reference_and_is_bit_identical() {
        let mut rng = StdRng::seed_from_u64(7);
        for len in [0usize, 1, 3, 4, 7, 8, 13, 64, 256] {
            let target: Vec<f64> = (0..2 * len).map(|_| rng.gen_range(-1.5..1.5)).collect();
            let sin: Vec<f64> = (0..len).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let cos: Vec<f64> = (0..len).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let scale = 0.37;
            let run = || {
                let mut w_re = vec![0.0; len];
                let mut w_im = vec![0.0; len];
                let sums = weighted_rows(&target, &sin, &cos, scale, &mut w_re, &mut w_im);
                (w_re, w_im, sums)
            };
            force_backend(Some(ComputeBackend::Scalar));
            let (re_s, im_s, sums_s) = run();
            force_backend(Some(detect()));
            let (re_v, im_v, sums_v) = run();
            force_backend(None);
            assert_eq!(sums_s.0.to_bits(), sums_v.0.to_bits(), "len {len} sum_re");
            assert_eq!(sums_s.1.to_bits(), sums_v.1.to_bits(), "len {len} sum_im");
            let mut naive = (0.0, 0.0);
            for r in 0..len {
                let (tr, ti) = (target[2 * r], target[2 * r + 1]);
                let re = scale * (tr * cos[r] - ti * sin[r]);
                let im = scale * (tr * sin[r] + ti * cos[r]);
                assert_eq!(re_s[r].to_bits(), re.to_bits(), "len {len} w_re[{r}]");
                assert_eq!(im_s[r].to_bits(), im.to_bits(), "len {len} w_im[{r}]");
                assert_eq!(re_s[r].to_bits(), re_v[r].to_bits(), "len {len} w_re[{r}]");
                assert_eq!(im_s[r].to_bits(), im_v[r].to_bits(), "len {len} w_im[{r}]");
                naive.0 += re;
                naive.1 += im;
            }
            assert!((sums_s.0 - naive.0).abs() < 1e-12 * (1.0 + naive.0.abs()));
            assert!((sums_s.1 - naive.1).abs() < 1e-12 * (1.0 + naive.1.abs()));
        }
    }

    #[test]
    fn planar_rows_and_lane_sums_match_solo_rows_bitwise() {
        let mut rng = StdRng::seed_from_u64(8);
        for (dim, lanes) in [(8usize, 1usize), (16, 2), (8, 7), (32, 16), (256, 5)] {
            let t_re: Vec<f64> = (0..dim * lanes).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let t_im: Vec<f64> = (0..dim * lanes).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let sin: Vec<f64> = (0..dim * lanes).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let cos: Vec<f64> = (0..dim * lanes).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let scale = 0.25;
            for backend in [Some(ComputeBackend::Scalar), Some(detect())] {
                force_backend(backend);
                let mut w_re = vec![0.0; dim * lanes];
                let mut w_im = vec![0.0; dim * lanes];
                weighted_rows_planar(&t_re, &t_im, &sin, &cos, scale, &mut w_re, &mut w_im);
                let mut sums_re = vec![0.0; lanes];
                let mut sums_im = vec![0.0; lanes];
                sum_lanes(&w_re, lanes, &mut sums_re);
                sum_lanes(&w_im, lanes, &mut sums_im);
                // Every lane must agree bitwise with a solo weighted_rows
                // call on the de-interleaved slices.
                for b in 0..lanes {
                    let solo_t: Vec<f64> = (0..dim)
                        .flat_map(|r| [t_re[r * lanes + b], t_im[r * lanes + b]])
                        .collect();
                    let solo_sin: Vec<f64> = (0..dim).map(|r| sin[r * lanes + b]).collect();
                    let solo_cos: Vec<f64> = (0..dim).map(|r| cos[r * lanes + b]).collect();
                    let mut solo_re = vec![0.0; dim];
                    let mut solo_im = vec![0.0; dim];
                    let (sum_re, sum_im) = weighted_rows(
                        &solo_t,
                        &solo_sin,
                        &solo_cos,
                        scale,
                        &mut solo_re,
                        &mut solo_im,
                    );
                    assert_eq!(sums_re[b].to_bits(), sum_re.to_bits(), "lane {b} sum_re");
                    assert_eq!(sums_im[b].to_bits(), sum_im.to_bits(), "lane {b} sum_im");
                    for r in 0..dim {
                        assert_eq!(
                            w_re[r * lanes + b].to_bits(),
                            solo_re[r].to_bits(),
                            "lane {b} row {r}"
                        );
                    }
                }
            }
            force_backend(None);
        }
    }

    #[test]
    fn fused_rows_match_three_pass_composition_bitwise() {
        let mut rng = StdRng::seed_from_u64(21);
        for (dim, lanes) in [
            (8usize, 1usize),
            (16, 2),
            (8, 7),
            (32, 16),
            (256, 5),
            (6, 5),
        ] {
            let n = dim * lanes;
            let phase: Vec<f64> = (0..n).map(|_| rng.gen_range(-40.0..40.0)).collect();
            let base: Vec<f64> = (0..dim).map(|_| rng.gen_range(-4.0..4.0)).collect();
            let t_re: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let t_im: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let scale = 0.0625;
            // Reference: the unfused three-pass composition under the scalar
            // backend (args broadcast per row, shared sin/cos, planar rows).
            force_backend(Some(ComputeBackend::Scalar));
            let mut args = vec![0.0; n];
            for r in 0..dim {
                for b in 0..lanes {
                    args[r * lanes + b] = 0.5 * phase[r * lanes + b] + base[r];
                }
            }
            let mut sin = vec![0.0; n];
            let mut cos = vec![0.0; n];
            sin_cos_slice(&args, &mut sin, &mut cos);
            let mut ref_re = vec![0.0; n];
            let mut ref_im = vec![0.0; n];
            weighted_rows_planar(&t_re, &t_im, &sin, &cos, scale, &mut ref_re, &mut ref_im);
            let mut ref_sum_re = vec![0.0; lanes];
            let mut ref_sum_im = vec![0.0; lanes];
            sum_lanes(&ref_re, lanes, &mut ref_sum_re);
            sum_lanes(&ref_im, lanes, &mut ref_sum_im);
            for backend in [Some(ComputeBackend::Scalar), Some(detect())] {
                force_backend(backend);
                let mut w_re = vec![f64::NAN; n];
                let mut w_im = vec![f64::NAN; n];
                let mut sum_re = vec![f64::NAN; lanes];
                let mut sum_im = vec![f64::NAN; lanes];
                fused_weighted_rows(
                    &phase,
                    &base,
                    &t_re,
                    &t_im,
                    scale,
                    lanes,
                    &mut w_re,
                    &mut w_im,
                    &mut sum_re,
                    &mut sum_im,
                );
                for b in 0..lanes {
                    assert_eq!(
                        sum_re[b].to_bits(),
                        ref_sum_re[b].to_bits(),
                        "{backend:?} lanes={lanes} lane {b} sum_re"
                    );
                    assert_eq!(
                        sum_im[b].to_bits(),
                        ref_sum_im[b].to_bits(),
                        "{backend:?} lanes={lanes} lane {b} sum_im"
                    );
                }
                for i in 0..n {
                    assert_eq!(
                        w_re[i].to_bits(),
                        ref_re[i].to_bits(),
                        "{backend:?} lanes={lanes} idx {i} re"
                    );
                    assert_eq!(
                        w_im[i].to_bits(),
                        ref_im[i].to_bits(),
                        "{backend:?} lanes={lanes} idx {i} im"
                    );
                }
            }
            force_backend(None);
        }
    }

    #[test]
    fn quantize_cells_semantics_are_pinned() {
        // Grid mode buckets near-equal values together.
        assert_eq!(
            quantize_cells(&[0.100_000_1, -0.2], 1e-3),
            quantize_cells(&[0.100_000_9, -0.2], 1e-3)
        );
        // Exact mode keys raw bit patterns; −0.0 and +0.0 differ there but
        // share a cell in grid mode.
        assert_ne!(quantize_cells(&[-0.0], 0.0), quantize_cells(&[0.0], 0.0));
        assert_eq!(quantize_cells(&[-0.0], 1e-3), quantize_cells(&[0.0], 1e-3));
        // The documented non-finite hazard (callers must reject first): NaN
        // lands on the zero cell, ±∞ saturate.
        assert_eq!(quantize_cells(&[f64::NAN], 1e-3), vec![0]);
        assert_eq!(
            quantize_cells(&[f64::INFINITY, f64::NEG_INFINITY], 1e-3),
            vec![i64::MAX, i64::MIN]
        );
    }

    #[test]
    fn detection_and_naming() {
        let b = detect();
        assert!(!b.name().is_empty());
        force_backend(Some(ComputeBackend::Scalar));
        assert_eq!(active(), ComputeBackend::Scalar);
        force_backend(None);
    }
}

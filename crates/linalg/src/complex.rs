//! Complex scalar arithmetic.
//!
//! The EnQode reproduction hand-rolls its numerics, so this module provides a
//! small, fully-featured double-precision complex type, [`C64`], used by the
//! vector/matrix types, the quantum simulators, and the symbolic engine.

use std::fmt;
use std::iter::{Product, Sum};
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A double-precision complex number `re + i·im`.
///
/// # Examples
///
/// ```
/// use enq_linalg::C64;
///
/// let z = C64::new(1.0, 2.0) * C64::i();
/// assert_eq!(z, C64::new(-2.0, 1.0));
/// assert!((z.abs() - 5.0_f64.sqrt()).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
#[repr(C)]
pub struct C64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl C64 {
    /// The additive identity `0 + 0i`.
    pub const ZERO: C64 = C64 { re: 0.0, im: 0.0 };
    /// The multiplicative identity `1 + 0i`.
    pub const ONE: C64 = C64 { re: 1.0, im: 0.0 };
    /// The imaginary unit `0 + 1i`.
    pub const I: C64 = C64 { re: 0.0, im: 1.0 };

    /// Creates a complex number from real and imaginary parts.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        Self { re, im }
    }

    /// Creates a purely real complex number.
    #[inline]
    pub const fn real(re: f64) -> Self {
        Self { re, im: 0.0 }
    }

    /// Returns the imaginary unit `i`.
    #[inline]
    pub const fn i() -> Self {
        Self::I
    }

    /// Creates a complex number from polar form `r·e^{iθ}`.
    ///
    /// # Examples
    ///
    /// ```
    /// use enq_linalg::C64;
    /// let z = C64::from_polar(2.0, std::f64::consts::FRAC_PI_2);
    /// assert!((z - C64::new(0.0, 2.0)).abs() < 1e-12);
    /// ```
    #[inline]
    pub fn from_polar(r: f64, theta: f64) -> Self {
        Self::new(r * theta.cos(), r * theta.sin())
    }

    /// Returns `e^{iθ}`, a unit-modulus phase factor.
    #[inline]
    pub fn cis(theta: f64) -> Self {
        Self::from_polar(1.0, theta)
    }

    /// Returns the complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Self::new(self.re, -self.im)
    }

    /// Returns the squared modulus `|z|²`.
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Returns the modulus `|z|`.
    #[inline]
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Returns the argument (phase angle) in radians, in `(-π, π]`.
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Returns the multiplicative inverse `1/z`.
    ///
    /// # Panics
    ///
    /// Does not panic, but returns non-finite components when `self` is zero.
    #[inline]
    pub fn recip(self) -> Self {
        let d = self.norm_sqr();
        Self::new(self.re / d, -self.im / d)
    }

    /// Returns the principal square root.
    pub fn sqrt(self) -> Self {
        let r = self.abs();
        let theta = self.arg();
        Self::from_polar(r.sqrt(), theta / 2.0)
    }

    /// Returns the complex exponential `e^z`.
    pub fn exp(self) -> Self {
        Self::from_polar(self.re.exp(), self.im)
    }

    /// Scales by a real factor.
    #[inline]
    pub fn scale(self, s: f64) -> Self {
        Self::new(self.re * s, self.im * s)
    }

    /// Returns `true` if both components are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }

    /// Returns `true` if `|self - other| <= tol`.
    #[inline]
    pub fn approx_eq(self, other: Self, tol: f64) -> bool {
        (self - other).abs() <= tol
    }
}

impl From<f64> for C64 {
    fn from(re: f64) -> Self {
        Self::real(re)
    }
}

impl fmt::Display for C64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}i", self.re, self.im)
        } else {
            write!(f, "{}{}i", self.re, self.im)
        }
    }
}

impl Add for C64 {
    type Output = C64;
    #[inline]
    fn add(self, rhs: C64) -> C64 {
        C64::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl Sub for C64 {
    type Output = C64;
    #[inline]
    fn sub(self, rhs: C64) -> C64 {
        C64::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for C64 {
    type Output = C64;
    #[inline]
    fn mul(self, rhs: C64) -> C64 {
        C64::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl Div for C64 {
    type Output = C64;
    #[inline]
    #[allow(clippy::suspicious_arithmetic_impl)]
    fn div(self, rhs: C64) -> C64 {
        self * rhs.recip()
    }
}

impl Neg for C64 {
    type Output = C64;
    #[inline]
    fn neg(self) -> C64 {
        C64::new(-self.re, -self.im)
    }
}

impl Add<f64> for C64 {
    type Output = C64;
    #[inline]
    fn add(self, rhs: f64) -> C64 {
        C64::new(self.re + rhs, self.im)
    }
}

impl Sub<f64> for C64 {
    type Output = C64;
    #[inline]
    fn sub(self, rhs: f64) -> C64 {
        C64::new(self.re - rhs, self.im)
    }
}

impl Mul<f64> for C64 {
    type Output = C64;
    #[inline]
    fn mul(self, rhs: f64) -> C64 {
        self.scale(rhs)
    }
}

impl Div<f64> for C64 {
    type Output = C64;
    #[inline]
    fn div(self, rhs: f64) -> C64 {
        C64::new(self.re / rhs, self.im / rhs)
    }
}

impl Mul<C64> for f64 {
    type Output = C64;
    #[inline]
    fn mul(self, rhs: C64) -> C64 {
        rhs.scale(self)
    }
}

impl AddAssign for C64 {
    #[inline]
    fn add_assign(&mut self, rhs: C64) {
        *self = *self + rhs;
    }
}

impl SubAssign for C64 {
    #[inline]
    fn sub_assign(&mut self, rhs: C64) {
        *self = *self - rhs;
    }
}

impl MulAssign for C64 {
    #[inline]
    fn mul_assign(&mut self, rhs: C64) {
        *self = *self * rhs;
    }
}

impl DivAssign for C64 {
    #[inline]
    fn div_assign(&mut self, rhs: C64) {
        *self = *self / rhs;
    }
}

impl MulAssign<f64> for C64 {
    #[inline]
    fn mul_assign(&mut self, rhs: f64) {
        *self = self.scale(rhs);
    }
}

impl Sum for C64 {
    fn sum<I: Iterator<Item = C64>>(iter: I) -> C64 {
        iter.fold(C64::ZERO, |a, b| a + b)
    }
}

impl Product for C64 {
    fn product<I: Iterator<Item = C64>>(iter: I) -> C64 {
        iter.fold(C64::ONE, |a, b| a * b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TOL: f64 = 1e-12;

    #[test]
    fn construction_and_constants() {
        assert_eq!(C64::new(1.0, 2.0).re, 1.0);
        assert_eq!(C64::new(1.0, 2.0).im, 2.0);
        assert_eq!(C64::ZERO + C64::ONE, C64::ONE);
        assert_eq!(C64::I * C64::I, -C64::ONE);
        assert_eq!(C64::from(3.0), C64::real(3.0));
    }

    #[test]
    fn arithmetic_identities() {
        let a = C64::new(1.5, -2.25);
        let b = C64::new(-0.5, 4.0);
        assert!((a + b - b).approx_eq(a, TOL));
        assert!((a * b / b).approx_eq(a, TOL));
        assert!((a * a.recip()).approx_eq(C64::ONE, TOL));
        assert!((-a + a).approx_eq(C64::ZERO, TOL));
    }

    #[test]
    fn conjugate_and_modulus() {
        let z = C64::new(3.0, 4.0);
        assert_eq!(z.conj(), C64::new(3.0, -4.0));
        assert!((z.abs() - 5.0).abs() < TOL);
        assert!((z.norm_sqr() - 25.0).abs() < TOL);
        assert!(((z * z.conj()).re - 25.0).abs() < TOL);
    }

    #[test]
    fn polar_roundtrip() {
        let z = C64::new(-1.0, 1.0);
        let w = C64::from_polar(z.abs(), z.arg());
        assert!(z.approx_eq(w, TOL));
    }

    #[test]
    fn sqrt_squares_back() {
        let z = C64::new(-3.0, 0.5);
        let s = z.sqrt();
        assert!((s * s).approx_eq(z, 1e-10));
    }

    #[test]
    fn exp_of_imaginary_is_cis() {
        let theta = 0.7;
        assert!(C64::new(0.0, theta).exp().approx_eq(C64::cis(theta), TOL));
    }

    #[test]
    fn real_scalar_ops() {
        let z = C64::new(2.0, -1.0);
        assert_eq!(z * 2.0, C64::new(4.0, -2.0));
        assert_eq!(2.0 * z, C64::new(4.0, -2.0));
        assert_eq!(z / 2.0, C64::new(1.0, -0.5));
        assert_eq!(z + 1.0, C64::new(3.0, -1.0));
        assert_eq!(z - 1.0, C64::new(1.0, -1.0));
    }

    #[test]
    fn sum_and_product() {
        let values = [C64::ONE, C64::I, C64::new(2.0, 0.0)];
        let s: C64 = values.iter().copied().sum();
        assert!(s.approx_eq(C64::new(3.0, 1.0), TOL));
        let p: C64 = values.iter().copied().product();
        assert!(p.approx_eq(C64::new(0.0, 2.0), TOL));
    }

    #[test]
    fn display_formats_sign() {
        assert_eq!(C64::new(1.0, 2.0).to_string(), "1+2i");
        assert_eq!(C64::new(1.0, -2.0).to_string(), "1-2i");
    }

    #[test]
    fn assign_ops() {
        let mut z = C64::new(1.0, 1.0);
        z += C64::ONE;
        assert_eq!(z, C64::new(2.0, 1.0));
        z -= C64::I;
        assert_eq!(z, C64::new(2.0, 0.0));
        z *= C64::I;
        assert_eq!(z, C64::new(0.0, 2.0));
        z /= C64::new(0.0, 2.0);
        assert!(z.approx_eq(C64::ONE, TOL));
        z *= 3.0;
        assert!(z.approx_eq(C64::real(3.0), TOL));
    }
}

//! Error types for linear-algebra operations.

use std::error::Error;
use std::fmt;

/// Errors returned by fallible linear-algebra routines.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum LinalgError {
    /// Two operands had incompatible dimensions.
    DimensionMismatch {
        /// Dimension required by the left operand.
        expected: usize,
        /// Dimension found on the right operand.
        found: usize,
    },
    /// A square matrix was required.
    NotSquare {
        /// Number of rows.
        rows: usize,
        /// Number of columns.
        cols: usize,
    },
    /// A matrix was singular (or numerically singular).
    Singular,
    /// An iterative routine failed to converge.
    NoConvergence {
        /// Number of iterations performed before giving up.
        iterations: usize,
    },
    /// The input violated a documented precondition (e.g. non-Hermitian).
    InvalidInput(String),
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::DimensionMismatch { expected, found } => {
                write!(f, "dimension mismatch: expected {expected}, found {found}")
            }
            LinalgError::NotSquare { rows, cols } => {
                write!(f, "matrix is not square ({rows}x{cols})")
            }
            LinalgError::Singular => write!(f, "matrix is singular"),
            LinalgError::NoConvergence { iterations } => {
                write!(
                    f,
                    "iteration did not converge after {iterations} iterations"
                )
            }
            LinalgError::InvalidInput(msg) => write!(f, "invalid input: {msg}"),
        }
    }
}

impl Error for LinalgError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = LinalgError::DimensionMismatch {
            expected: 4,
            found: 8,
        };
        assert!(e.to_string().contains("expected 4"));
        assert!(e.to_string().contains("found 8"));
        assert!(LinalgError::Singular.to_string().contains("singular"));
        assert!(LinalgError::NoConvergence { iterations: 7 }
            .to_string()
            .contains('7'));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<LinalgError>();
    }
}

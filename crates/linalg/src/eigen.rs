//! Hermitian eigendecomposition and matrix functions.
//!
//! The mixed-state fidelity `F(ρ,σ) = (tr √(√ρ σ √ρ))²` used by the paper
//! requires principal square roots of positive-semidefinite matrices, which we
//! obtain from a cyclic complex Jacobi eigensolver.

use crate::complex::C64;
use crate::error::LinalgError;
use crate::matrix::CMatrix;
use crate::vector::CVector;

/// Result of a Hermitian eigendecomposition `A = V · diag(λ) · V†`.
#[derive(Debug, Clone)]
pub struct HermitianEigen {
    /// Eigenvalues in ascending order (all real for Hermitian input).
    pub eigenvalues: Vec<f64>,
    /// Unitary matrix whose columns are the corresponding eigenvectors.
    pub eigenvectors: CMatrix,
}

impl HermitianEigen {
    /// Reconstructs the original matrix `V · diag(λ) · V†`.
    pub fn reconstruct(&self) -> CMatrix {
        let diag = CMatrix::from_diagonal(
            &self
                .eigenvalues
                .iter()
                .map(|&l| C64::real(l))
                .collect::<Vec<_>>(),
        );
        self.eigenvectors
            .matmul(&diag)
            .matmul(&self.eigenvectors.adjoint())
    }

    /// Applies a real function to the eigenvalues and reconstructs
    /// `V · diag(f(λ)) · V†`.
    pub fn map_eigenvalues(&self, f: impl Fn(f64) -> f64) -> CMatrix {
        let diag = CMatrix::from_diagonal(
            &self
                .eigenvalues
                .iter()
                .map(|&l| C64::real(f(l)))
                .collect::<Vec<_>>(),
        );
        self.eigenvectors
            .matmul(&diag)
            .matmul(&self.eigenvectors.adjoint())
    }

    /// Returns the eigenvector associated with the largest eigenvalue.
    pub fn dominant_eigenvector(&self) -> CVector {
        let n = self.eigenvectors.nrows();
        let last = self.eigenvalues.len() - 1;
        let mut v = CVector::zeros(n);
        for i in 0..n {
            v[i] = self.eigenvectors[(i, last)];
        }
        v
    }
}

/// Computes the eigendecomposition of a Hermitian matrix using cyclic complex
/// Jacobi rotations.
///
/// # Errors
///
/// Returns [`LinalgError::NotSquare`] for non-square input,
/// [`LinalgError::InvalidInput`] if the matrix is not Hermitian within `1e-8`,
/// and [`LinalgError::NoConvergence`] if the off-diagonal norm does not fall
/// below `1e-12` within 60 sweeps.
///
/// # Examples
///
/// ```
/// use enq_linalg::{C64, CMatrix, hermitian_eigen};
///
/// let x = CMatrix::from_rows(&[
///     &[C64::ZERO, C64::ONE],
///     &[C64::ONE, C64::ZERO],
/// ]);
/// let eig = hermitian_eigen(&x)?;
/// assert!((eig.eigenvalues[0] + 1.0).abs() < 1e-10);
/// assert!((eig.eigenvalues[1] - 1.0).abs() < 1e-10);
/// # Ok::<(), enq_linalg::LinalgError>(())
/// ```
pub fn hermitian_eigen(a: &CMatrix) -> Result<HermitianEigen, LinalgError> {
    if !a.is_square() {
        return Err(LinalgError::NotSquare {
            rows: a.nrows(),
            cols: a.ncols(),
        });
    }
    if !a.is_hermitian(1e-8) {
        return Err(LinalgError::InvalidInput(
            "matrix is not hermitian".to_string(),
        ));
    }
    let n = a.nrows();
    let mut m = a.clone();
    let mut v = CMatrix::identity(n);

    let max_sweeps = 60;
    let tol = 1e-12;
    let mut converged = false;
    for _ in 0..max_sweeps {
        let off = off_diagonal_norm(&m);
        if off < tol {
            converged = true;
            break;
        }
        for p in 0..n {
            for q in (p + 1)..n {
                let beta = m[(p, q)];
                let beta_abs = beta.abs();
                if beta_abs < 1e-300 {
                    continue;
                }
                let alpha = m[(p, p)].re;
                let gamma = m[(q, q)].re;
                // Rotation angle zeroing the (p,q) element.
                let theta = 0.5 * (2.0 * beta_abs).atan2(alpha - gamma);
                let c = theta.cos();
                let s = theta.sin();
                let phase = beta / C64::real(beta_abs); // e^{iφ}

                apply_rotation(&mut m, &mut v, p, q, c, s, phase);
            }
        }
    }
    if !converged && off_diagonal_norm(&m) >= 1e-9 {
        return Err(LinalgError::NoConvergence {
            iterations: max_sweeps,
        });
    }

    // Extract and sort eigenvalues (they live on the diagonal, real).
    let mut order: Vec<usize> = (0..n).collect();
    let diag: Vec<f64> = (0..n).map(|i| m[(i, i)].re).collect();
    order.sort_by(|&i, &j| diag[i].partial_cmp(&diag[j]).expect("finite eigenvalues"));

    let eigenvalues: Vec<f64> = order.iter().map(|&i| diag[i]).collect();
    let mut eigenvectors = CMatrix::zeros(n, n);
    for (new_col, &old_col) in order.iter().enumerate() {
        for row in 0..n {
            eigenvectors[(row, new_col)] = v[(row, old_col)];
        }
    }
    Ok(HermitianEigen {
        eigenvalues,
        eigenvectors,
    })
}

/// Applies the two-sided Jacobi rotation on rows/columns `p`,`q` to `m`, and the
/// one-sided rotation to the eigenvector accumulator `v`.
fn apply_rotation(
    m: &mut CMatrix,
    v: &mut CMatrix,
    p: usize,
    q: usize,
    c: f64,
    s: f64,
    phase: C64,
) {
    let n = m.nrows();
    // J = [[c, -s·phase], [s·conj(phase), c]] acting on columns (p, q).
    // Update columns: M <- M·J, then rows: M <- J†·M; V <- V·J.
    let jpp = C64::real(c);
    let jpq = -phase * s;
    let jqp = phase.conj() * s;
    let jqq = C64::real(c);

    // M <- M · J (affects columns p and q).
    for row in 0..n {
        let mp = m[(row, p)];
        let mq = m[(row, q)];
        m[(row, p)] = mp * jpp + mq * jqp;
        m[(row, q)] = mp * jpq + mq * jqq;
    }
    // M <- J† · M (affects rows p and q). J† = [[c, s·phase],[-s·conj(phase), c]].
    for col in 0..n {
        let mp = m[(p, col)];
        let mq = m[(q, col)];
        m[(p, col)] = mp * jpp.conj() + mq * jqp.conj();
        m[(q, col)] = mp * jpq.conj() + mq * jqq.conj();
    }
    // V <- V · J.
    for row in 0..n {
        let vp = v[(row, p)];
        let vq = v[(row, q)];
        v[(row, p)] = vp * jpp + vq * jqp;
        v[(row, q)] = vp * jpq + vq * jqq;
    }
}

/// Returns the Frobenius norm of the off-diagonal part of a square matrix.
fn off_diagonal_norm(m: &CMatrix) -> f64 {
    let n = m.nrows();
    let mut sum = 0.0;
    for i in 0..n {
        for j in 0..n {
            if i != j {
                sum += m[(i, j)].norm_sqr();
            }
        }
    }
    sum.sqrt()
}

/// Computes the principal square root of a positive-semidefinite Hermitian
/// matrix via its eigendecomposition.
///
/// Small negative eigenvalues arising from round-off are clamped to zero.
///
/// # Errors
///
/// Propagates errors from [`hermitian_eigen`].
pub fn psd_sqrt(a: &CMatrix) -> Result<CMatrix, LinalgError> {
    let eig = hermitian_eigen(a)?;
    Ok(eig.map_eigenvalues(|l| l.max(0.0).sqrt()))
}

/// Computes `(tr √M)` for a positive-semidefinite Hermitian matrix, i.e. the
/// sum of the square roots of its eigenvalues.
///
/// # Errors
///
/// Propagates errors from [`hermitian_eigen`].
pub fn trace_sqrt(a: &CMatrix) -> Result<f64, LinalgError> {
    let eig = hermitian_eigen(a)?;
    Ok(eig.eigenvalues.iter().map(|&l| l.max(0.0).sqrt()).sum())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn random_hermitian(n: usize, seed: u64) -> CMatrix {
        // Simple deterministic LCG so the test does not need `rand`.
        let mut state = seed;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        let mut m = CMatrix::zeros(n, n);
        for i in 0..n {
            for j in i..n {
                if i == j {
                    m[(i, i)] = C64::real(next());
                } else {
                    let z = C64::new(next(), next());
                    m[(i, j)] = z;
                    m[(j, i)] = z.conj();
                }
            }
        }
        m
    }

    #[test]
    fn eigen_of_pauli_z() {
        let z = CMatrix::from_rows(&[&[C64::ONE, C64::ZERO], &[C64::ZERO, -C64::ONE]]);
        let eig = hermitian_eigen(&z).unwrap();
        assert!((eig.eigenvalues[0] + 1.0).abs() < 1e-10);
        assert!((eig.eigenvalues[1] - 1.0).abs() < 1e-10);
    }

    #[test]
    fn eigen_of_pauli_y_has_unit_eigenvalues() {
        let y = CMatrix::from_rows(&[&[C64::ZERO, -C64::I], &[C64::I, C64::ZERO]]);
        let eig = hermitian_eigen(&y).unwrap();
        assert!((eig.eigenvalues[0] + 1.0).abs() < 1e-10);
        assert!((eig.eigenvalues[1] - 1.0).abs() < 1e-10);
        assert!(eig.reconstruct().approx_eq(&y, 1e-9));
    }

    #[test]
    fn reconstruction_matches_original_random() {
        for seed in 1..5u64 {
            let a = random_hermitian(6, seed);
            let eig = hermitian_eigen(&a).unwrap();
            assert!(eig.reconstruct().approx_eq(&a, 1e-8), "seed {seed}");
            assert!(eig.eigenvectors.is_unitary(1e-8));
            // Eigenvalues ascend.
            for w in eig.eigenvalues.windows(2) {
                assert!(w[0] <= w[1] + 1e-12);
            }
        }
    }

    #[test]
    fn trace_is_preserved() {
        let a = random_hermitian(5, 42);
        let eig = hermitian_eigen(&a).unwrap();
        let eig_sum: f64 = eig.eigenvalues.iter().sum();
        assert!((eig_sum - a.trace().re).abs() < 1e-8);
    }

    #[test]
    fn sqrt_squares_back_to_original() {
        // Build an explicitly PSD matrix B†B.
        let b = random_hermitian(4, 7);
        let a = b.adjoint().matmul(&b);
        let s = psd_sqrt(&a).unwrap();
        assert!(s.matmul(&s).approx_eq(&a, 1e-7));
        assert!(s.is_hermitian(1e-8));
    }

    #[test]
    fn trace_sqrt_of_projector_is_one() {
        let v = CVector::from_real(&[0.6, 0.8]);
        let p = CMatrix::outer(&v, &v);
        // sqrt amplifies round-off near zero eigenvalues, so the tolerance is
        // looser than elsewhere.
        assert!((trace_sqrt(&p).unwrap() - 1.0).abs() < 1e-7);
    }

    #[test]
    fn non_hermitian_rejected() {
        let m = CMatrix::from_rows(&[&[C64::ZERO, C64::ONE], &[C64::ZERO, C64::ZERO]]);
        assert!(matches!(
            hermitian_eigen(&m),
            Err(LinalgError::InvalidInput(_))
        ));
    }

    #[test]
    fn non_square_rejected() {
        let m = CMatrix::zeros(2, 3);
        assert!(matches!(
            hermitian_eigen(&m),
            Err(LinalgError::NotSquare { .. })
        ));
    }

    #[test]
    fn dominant_eigenvector_of_projector() {
        let v = CVector::from_real(&[0.6, 0.8]);
        let p = CMatrix::outer(&v, &v);
        let eig = hermitian_eigen(&p).unwrap();
        let dom = eig.dominant_eigenvector();
        assert!(dom.approx_eq_up_to_phase(&v, 1e-9));
    }
}

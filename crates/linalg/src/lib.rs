//! # enq-linalg
//!
//! Hand-rolled dense linear algebra for the EnQode reproduction: a complex
//! scalar type, complex/real dense matrices and vectors, Hermitian and
//! symmetric eigensolvers, and positive-semidefinite matrix functions.
//!
//! Everything downstream (the quantum simulators in `enq-qsim`, the circuit
//! transpiler in `enq-circuit`, the classical-data substrate in `enq-data`,
//! and EnQode's symbolic engine) builds on these primitives, so the crate is
//! deliberately dependency-free.
//!
//! ## Example
//!
//! ```
//! use enq_linalg::{C64, CMatrix, CVector, hermitian_eigen};
//!
//! // Build the Hadamard gate and verify its spectrum is ±1.
//! let h = CMatrix::from_real(2, 2, &[1.0, 1.0, 1.0, -1.0]).scale(C64::real(1.0 / 2f64.sqrt()));
//! let eig = hermitian_eigen(&h)?;
//! assert!((eig.eigenvalues[0] + 1.0).abs() < 1e-10);
//! assert!((eig.eigenvalues[1] - 1.0).abs() < 1e-10);
//!
//! // Apply it to |0⟩ and check we get an equal superposition.
//! let plus = h.matvec(&CVector::basis_state(2, 0));
//! assert!((plus.probabilities()[0] - 0.5).abs() < 1e-12);
//! # Ok::<(), enq_linalg::LinalgError>(())
//! ```

#![warn(missing_docs)]

mod complex;
mod eigen;
mod error;
mod matrix;
mod real;
mod vector;

pub use complex::C64;
pub use eigen::{hermitian_eigen, psd_sqrt, trace_sqrt, HermitianEigen};
pub use error::LinalgError;
pub use matrix::CMatrix;
pub use real::{symmetric_eigen, top_k_eigen, RMatrix, SymmetricEigen};
pub use vector::CVector;

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_c64() -> impl Strategy<Value = C64> {
        (-10.0..10.0f64, -10.0..10.0f64).prop_map(|(re, im)| C64::new(re, im))
    }

    fn arb_cvector(len: usize) -> impl Strategy<Value = CVector> {
        proptest::collection::vec(arb_c64(), len).prop_map(CVector::new)
    }

    proptest! {
        #[test]
        fn complex_mul_is_commutative(a in arb_c64(), b in arb_c64()) {
            prop_assert!((a * b).approx_eq(b * a, 1e-9));
        }

        #[test]
        fn complex_conj_distributes_over_mul(a in arb_c64(), b in arb_c64()) {
            prop_assert!((a * b).conj().approx_eq(a.conj() * b.conj(), 1e-9));
        }

        #[test]
        fn complex_modulus_is_multiplicative(a in arb_c64(), b in arb_c64()) {
            prop_assert!(((a * b).abs() - a.abs() * b.abs()).abs() < 1e-8);
        }

        #[test]
        fn vector_dot_is_conjugate_symmetric(a in arb_cvector(4), b in arb_cvector(4)) {
            let ab = a.dot(&b).unwrap();
            let ba = b.dot(&a).unwrap();
            prop_assert!(ab.approx_eq(ba.conj(), 1e-8));
        }

        #[test]
        fn cauchy_schwarz_holds(a in arb_cvector(5), b in arb_cvector(5)) {
            let lhs = a.dot(&b).unwrap().abs();
            let rhs = a.norm() * b.norm();
            prop_assert!(lhs <= rhs + 1e-8);
        }

        #[test]
        fn normalised_vectors_have_unit_norm(v in arb_cvector(6)) {
            prop_assume!(v.norm() > 1e-6);
            prop_assert!((v.normalized().norm() - 1.0).abs() < 1e-9);
        }

        #[test]
        fn outer_product_trace_equals_inner_product(v in arb_cvector(3)) {
            let p = CMatrix::outer(&v, &v);
            prop_assert!((p.trace().re - v.norm_sqr()).abs() < 1e-8);
        }

        #[test]
        fn kron_norm_is_product_of_norms(a in arb_cvector(3), b in arb_cvector(2)) {
            let k = a.kron(&b);
            prop_assert!((k.norm() - a.norm() * b.norm()).abs() < 1e-7);
        }
    }
}

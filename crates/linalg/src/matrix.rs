//! Dense complex matrices.

use crate::complex::C64;
use crate::error::LinalgError;
use crate::vector::CVector;
use std::fmt;
use std::ops::{Add, Index, IndexMut, Mul, Sub};

/// A dense, row-major complex matrix.
///
/// Used for gate unitaries, density matrices, and the symbolic engine's
/// change-of-basis operators.
///
/// # Examples
///
/// ```
/// use enq_linalg::{C64, CMatrix};
///
/// let x = CMatrix::from_rows(&[
///     &[C64::ZERO, C64::ONE],
///     &[C64::ONE, C64::ZERO],
/// ]);
/// assert!(x.is_unitary(1e-12));
/// assert!(x.matmul(&x).approx_eq(&CMatrix::identity(2), 1e-12));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CMatrix {
    rows: usize,
    cols: usize,
    data: Vec<C64>,
}

impl CMatrix {
    /// Creates a matrix from row-major data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn new(rows: usize, cols: usize, data: Vec<C64>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "matrix data length {} does not match {rows}x{cols}",
            data.len()
        );
        Self { rows, cols, data }
    }

    /// Creates a zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![C64::ZERO; rows * cols],
        }
    }

    /// Creates the `n×n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = C64::ONE;
        }
        m
    }

    /// Creates a matrix from borrowed rows.
    ///
    /// # Panics
    ///
    /// Panics if the rows have inconsistent lengths or there are no rows.
    pub fn from_rows(rows: &[&[C64]]) -> Self {
        assert!(!rows.is_empty(), "cannot build a matrix from zero rows");
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for row in rows {
            assert_eq!(row.len(), cols, "inconsistent row length");
            data.extend_from_slice(row);
        }
        Self {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Creates a matrix from a real row-major slice.
    pub fn from_real(rows: usize, cols: usize, values: &[f64]) -> Self {
        assert_eq!(values.len(), rows * cols);
        Self {
            rows,
            cols,
            data: values.iter().map(|&x| C64::real(x)).collect(),
        }
    }

    /// Creates a diagonal matrix from the given diagonal entries.
    pub fn from_diagonal(diag: &[C64]) -> Self {
        let n = diag.len();
        let mut m = Self::zeros(n, n);
        for (i, &d) in diag.iter().enumerate() {
            m[(i, i)] = d;
        }
        m
    }

    /// Returns the outer product `|v⟩⟨w|`.
    pub fn outer(v: &CVector, w: &CVector) -> Self {
        let mut m = Self::zeros(v.len(), w.len());
        for i in 0..v.len() {
            for j in 0..w.len() {
                m[(i, j)] = v[i] * w[j].conj();
            }
        }
        m
    }

    /// Returns the number of rows.
    pub fn nrows(&self) -> usize {
        self.rows
    }

    /// Returns the number of columns.
    pub fn ncols(&self) -> usize {
        self.cols
    }

    /// Returns `true` if the matrix is square.
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Returns the underlying row-major data.
    pub fn as_slice(&self) -> &[C64] {
        &self.data
    }

    /// Returns the underlying row-major data mutably.
    pub fn as_mut_slice(&mut self) -> &mut [C64] {
        &mut self.data
    }

    /// Returns row `i` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `i >= nrows()`.
    pub fn row(&self, i: usize) -> &[C64] {
        assert!(i < self.rows);
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Returns the transpose.
    pub fn transpose(&self) -> Self {
        let mut out = Self::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out[(j, i)] = self[(i, j)];
            }
        }
        out
    }

    /// Returns the conjugate transpose (Hermitian adjoint).
    pub fn adjoint(&self) -> Self {
        let mut out = Self::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out[(j, i)] = self[(i, j)].conj();
            }
        }
        out
    }

    /// Returns the element-wise complex conjugate.
    pub fn conj(&self) -> Self {
        Self {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|z| z.conj()).collect(),
        }
    }

    /// Returns the matrix product `self · rhs`.
    ///
    /// # Panics
    ///
    /// Panics if the inner dimensions do not match.
    pub fn matmul(&self, rhs: &Self) -> Self {
        assert_eq!(
            self.cols, rhs.rows,
            "matmul dimension mismatch: {}x{} · {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let mut out = Self::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == C64::ZERO {
                    continue;
                }
                let lhs_row = i * rhs.cols;
                let rhs_row = k * rhs.cols;
                for j in 0..rhs.cols {
                    out.data[lhs_row + j] += a * rhs.data[rhs_row + j];
                }
            }
        }
        out
    }

    /// Returns the matrix-vector product `self · v`.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != ncols()`.
    pub fn matvec(&self, v: &CVector) -> CVector {
        assert_eq!(self.cols, v.len(), "matvec dimension mismatch");
        let mut out = CVector::zeros(self.rows);
        for i in 0..self.rows {
            let mut acc = C64::ZERO;
            let base = i * self.cols;
            for j in 0..self.cols {
                acc += self.data[base + j] * v[j];
            }
            out[i] = acc;
        }
        out
    }

    /// Applies this 2×2 matrix to every qubit of a little-endian state
    /// vector in place — multiplication by `self^{⊗n}` in `O(n·2^n)`
    /// operations instead of forming and applying the dense `2^n×2^n`
    /// product (the structure EnQode's closing rotation `W = W₁^{⊗n}` has).
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `self` is not 2×2 or
    /// the state length is not a power of two.
    pub fn apply_kron_power(&self, state: &mut [C64]) -> Result<(), LinalgError> {
        if self.rows != 2 || self.cols != 2 {
            return Err(LinalgError::DimensionMismatch {
                expected: 2,
                found: self.rows.max(self.cols),
            });
        }
        let dim = state.len();
        if dim == 0 || !dim.is_power_of_two() {
            return Err(LinalgError::DimensionMismatch {
                expected: dim.next_power_of_two().max(1),
                found: dim,
            });
        }
        let (m00, m01) = (self.data[0], self.data[1]);
        let (m10, m11) = (self.data[2], self.data[3]);
        let mut stride = 1usize;
        while stride < dim {
            let mut block = 0;
            while block < dim {
                for i in block..block + stride {
                    let a = state[i];
                    let b = state[i + stride];
                    state[i] = m00 * a + m01 * b;
                    state[i + stride] = m10 * a + m11 * b;
                }
                block += stride * 2;
            }
            stride <<= 1;
        }
        Ok(())
    }

    /// Returns the Kronecker (tensor) product `self ⊗ rhs`.
    pub fn kron(&self, rhs: &Self) -> Self {
        let rows = self.rows * rhs.rows;
        let cols = self.cols * rhs.cols;
        let mut out = Self::zeros(rows, cols);
        for i1 in 0..self.rows {
            for j1 in 0..self.cols {
                let a = self[(i1, j1)];
                if a == C64::ZERO {
                    continue;
                }
                for i2 in 0..rhs.rows {
                    for j2 in 0..rhs.cols {
                        out[(i1 * rhs.rows + i2, j1 * rhs.cols + j2)] = a * rhs[(i2, j2)];
                    }
                }
            }
        }
        out
    }

    /// Returns the scalar multiple `c·self`.
    pub fn scale(&self, c: C64) -> Self {
        Self {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&z| z * c).collect(),
        }
    }

    /// Returns the trace.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn trace(&self) -> C64 {
        assert!(self.is_square(), "trace requires a square matrix");
        (0..self.rows).map(|i| self[(i, i)]).sum()
    }

    /// Returns the Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|z| z.norm_sqr()).sum::<f64>().sqrt()
    }

    /// Returns `true` if every entry is within `tol` of the other matrix.
    pub fn approx_eq(&self, other: &Self, tol: f64) -> bool {
        self.rows == other.rows
            && self.cols == other.cols
            && self
                .data
                .iter()
                .zip(other.data.iter())
                .all(|(a, b)| a.approx_eq(*b, tol))
    }

    /// Returns `true` if the matrix is Hermitian within `tol`.
    pub fn is_hermitian(&self, tol: f64) -> bool {
        self.is_square() && self.approx_eq(&self.adjoint(), tol)
    }

    /// Returns `true` if the matrix is unitary within `tol`.
    pub fn is_unitary(&self, tol: f64) -> bool {
        if !self.is_square() {
            return false;
        }
        self.adjoint()
            .matmul(self)
            .approx_eq(&Self::identity(self.rows), tol)
    }

    /// Solves `self · x = b` with partial-pivot Gaussian elimination.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::Singular`] when a pivot smaller than `1e-14` is
    /// encountered, and [`LinalgError::DimensionMismatch`] when shapes differ.
    pub fn solve(&self, b: &CVector) -> Result<CVector, LinalgError> {
        if !self.is_square() {
            return Err(LinalgError::NotSquare {
                rows: self.rows,
                cols: self.cols,
            });
        }
        if b.len() != self.rows {
            return Err(LinalgError::DimensionMismatch {
                expected: self.rows,
                found: b.len(),
            });
        }
        let n = self.rows;
        let mut a = self.clone();
        let mut x = b.clone();
        for col in 0..n {
            // Partial pivoting.
            let mut pivot = col;
            let mut best = a[(col, col)].abs();
            for r in (col + 1)..n {
                let mag = a[(r, col)].abs();
                if mag > best {
                    best = mag;
                    pivot = r;
                }
            }
            if best < 1e-14 {
                return Err(LinalgError::Singular);
            }
            if pivot != col {
                for j in 0..n {
                    let tmp = a[(col, j)];
                    a[(col, j)] = a[(pivot, j)];
                    a[(pivot, j)] = tmp;
                }
                let tmp = x[col];
                x[col] = x[pivot];
                x[pivot] = tmp;
            }
            let inv = a[(col, col)].recip();
            for r in (col + 1)..n {
                let factor = a[(r, col)] * inv;
                if factor == C64::ZERO {
                    continue;
                }
                for j in col..n {
                    let v = a[(col, j)];
                    a[(r, j)] -= factor * v;
                }
                let xv = x[col];
                x[r] -= factor * xv;
            }
        }
        // Back substitution.
        for col in (0..n).rev() {
            let mut acc = x[col];
            for j in (col + 1)..n {
                acc -= a[(col, j)] * x[j];
            }
            x[col] = acc / a[(col, col)];
        }
        Ok(x)
    }
}

impl Index<(usize, usize)> for CMatrix {
    type Output = C64;
    fn index(&self, (i, j): (usize, usize)) -> &C64 {
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for CMatrix {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut C64 {
        &mut self.data[i * self.cols + j]
    }
}

impl Add for &CMatrix {
    type Output = CMatrix;
    fn add(self, rhs: &CMatrix) -> CMatrix {
        assert_eq!(self.rows, rhs.rows);
        assert_eq!(self.cols, rhs.cols);
        CMatrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(rhs.data.iter())
                .map(|(a, b)| *a + *b)
                .collect(),
        }
    }
}

impl Sub for &CMatrix {
    type Output = CMatrix;
    fn sub(self, rhs: &CMatrix) -> CMatrix {
        assert_eq!(self.rows, rhs.rows);
        assert_eq!(self.cols, rhs.cols);
        CMatrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(rhs.data.iter())
                .map(|(a, b)| *a - *b)
                .collect(),
        }
    }
}

impl Mul for &CMatrix {
    type Output = CMatrix;
    fn mul(self, rhs: &CMatrix) -> CMatrix {
        self.matmul(rhs)
    }
}

impl fmt::Display for CMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.rows {
            for j in 0..self.cols {
                if j > 0 {
                    write!(f, "  ")?;
                }
                write!(f, "{}", self[(i, j)])?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pauli_x() -> CMatrix {
        CMatrix::from_rows(&[&[C64::ZERO, C64::ONE], &[C64::ONE, C64::ZERO]])
    }

    #[test]
    fn apply_kron_power_matches_dense_kron_matvec() {
        // An arbitrary non-unitary 2×2 so the test is not symmetry-protected.
        let m = CMatrix::from_rows(&[
            &[C64::new(0.3, -0.8), C64::new(1.1, 0.2)],
            &[C64::new(-0.4, 0.5), C64::new(0.9, 0.7)],
        ]);
        let n = 3;
        let dim = 1usize << n;
        let mut dense = CMatrix::identity(1);
        for _ in 0..n {
            dense = dense.kron(&m);
        }
        let v = CVector::new(
            (0..dim)
                .map(|i| C64::new(0.1 * i as f64 - 0.3, 0.05 * (i * i) as f64))
                .collect(),
        );
        let want = dense.matvec(&v);
        let mut got = v.clone().into_vec();
        m.apply_kron_power(&mut got).unwrap();
        for (a, b) in got.iter().zip(want.iter()) {
            assert!(a.approx_eq(*b, 1e-10), "{a} vs {b}");
        }
    }

    #[test]
    fn apply_kron_power_rejects_bad_shapes() {
        let m3 = CMatrix::identity(3);
        let mut state = vec![C64::ZERO; 8];
        assert!(m3.apply_kron_power(&mut state).is_err());
        let m2 = CMatrix::identity(2);
        let mut odd = vec![C64::ZERO; 6];
        assert!(m2.apply_kron_power(&mut odd).is_err());
    }

    fn pauli_y() -> CMatrix {
        CMatrix::from_rows(&[&[C64::ZERO, -C64::I], &[C64::I, C64::ZERO]])
    }

    #[test]
    fn identity_is_unitary_and_hermitian() {
        let id = CMatrix::identity(4);
        assert!(id.is_unitary(1e-12));
        assert!(id.is_hermitian(1e-12));
        assert!((id.trace().re - 4.0).abs() < 1e-12);
    }

    #[test]
    fn pauli_algebra() {
        let x = pauli_x();
        let y = pauli_y();
        // XY = iZ
        let xy = x.matmul(&y);
        let z = CMatrix::from_rows(&[&[C64::ONE, C64::ZERO], &[C64::ZERO, -C64::ONE]]);
        assert!(xy.approx_eq(&z.scale(C64::I), 1e-12));
        assert!(x.is_unitary(1e-12));
        assert!(y.is_hermitian(1e-12));
    }

    #[test]
    fn matvec_applies_gate() {
        let x = pauli_x();
        let v = CVector::basis_state(2, 0);
        let out = x.matvec(&v);
        assert!(out.approx_eq(&CVector::basis_state(2, 1), 1e-12));
    }

    #[test]
    fn kron_of_identities_is_identity() {
        let a = CMatrix::identity(2);
        let b = CMatrix::identity(3);
        assert!(a.kron(&b).approx_eq(&CMatrix::identity(6), 1e-12));
    }

    #[test]
    fn kron_dimension() {
        let x = pauli_x();
        let k = x.kron(&x);
        assert_eq!(k.nrows(), 4);
        assert_eq!(k.ncols(), 4);
        // (X⊗X)|00⟩ = |11⟩
        let v = CVector::basis_state(4, 0);
        assert!(k.matvec(&v).approx_eq(&CVector::basis_state(4, 3), 1e-12));
    }

    #[test]
    fn adjoint_and_transpose() {
        let y = pauli_y();
        assert!(y.adjoint().approx_eq(&y, 1e-12));
        assert!(y.transpose().approx_eq(&y.conj(), 1e-12));
    }

    #[test]
    fn outer_product_forms_projector() {
        let v = CVector::from_real(&[0.6, 0.8]);
        let p = CMatrix::outer(&v, &v);
        assert!(p.is_hermitian(1e-12));
        assert!((p.trace().re - 1.0).abs() < 1e-12);
        // Projector is idempotent.
        assert!(p.matmul(&p).approx_eq(&p, 1e-12));
    }

    #[test]
    fn solve_recovers_vector() {
        let a = CMatrix::from_rows(&[
            &[C64::new(2.0, 0.0), C64::new(1.0, 1.0)],
            &[C64::new(0.0, -1.0), C64::new(3.0, 0.0)],
        ]);
        let x_true = CVector::new(vec![C64::new(1.0, -0.5), C64::new(0.25, 2.0)]);
        let b = a.matvec(&x_true);
        let x = a.solve(&b).unwrap();
        assert!(x.approx_eq(&x_true, 1e-10));
    }

    #[test]
    fn solve_singular_errors() {
        let a = CMatrix::zeros(2, 2);
        let b = CVector::zeros(2);
        assert!(matches!(a.solve(&b), Err(LinalgError::Singular)));
    }

    #[test]
    fn diagonal_matrix() {
        let d = CMatrix::from_diagonal(&[C64::ONE, C64::I]);
        assert_eq!(d[(0, 0)], C64::ONE);
        assert_eq!(d[(1, 1)], C64::I);
        assert_eq!(d[(0, 1)], C64::ZERO);
        assert!(d.is_unitary(1e-12));
    }

    #[test]
    fn arithmetic_operators() {
        let x = pauli_x();
        let id = CMatrix::identity(2);
        let sum = &x + &id;
        assert_eq!(sum[(0, 0)], C64::ONE);
        assert_eq!(sum[(0, 1)], C64::ONE);
        let diff = &sum - &id;
        assert!(diff.approx_eq(&x, 1e-12));
        let prod = &x * &x;
        assert!(prod.approx_eq(&id, 1e-12));
    }

    #[test]
    fn frobenius_norm_of_unitary() {
        let x = pauli_x();
        assert!((x.frobenius_norm() - 2.0_f64.sqrt()).abs() < 1e-12);
    }
}

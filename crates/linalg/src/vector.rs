//! Dense complex vectors.

use crate::complex::C64;
use crate::error::LinalgError;
use std::fmt;
use std::ops::{Add, Index, IndexMut, Mul, Sub};

/// A dense, heap-allocated complex vector.
///
/// Quantum statevectors in `enq-qsim` and the symbolic amplitudes in `enqode`
/// are represented with this type.
///
/// # Examples
///
/// ```
/// use enq_linalg::{C64, CVector};
///
/// let v = CVector::from_real(&[3.0, 4.0]);
/// assert!((v.norm() - 5.0).abs() < 1e-12);
/// let u = v.normalized();
/// assert!((u.norm() - 1.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CVector {
    data: Vec<C64>,
}

impl CVector {
    /// Creates a vector from complex entries.
    pub fn new(data: Vec<C64>) -> Self {
        Self { data }
    }

    /// Creates a zero vector of length `len`.
    pub fn zeros(len: usize) -> Self {
        Self {
            data: vec![C64::ZERO; len],
        }
    }

    /// Creates a vector from real entries.
    pub fn from_real(values: &[f64]) -> Self {
        Self {
            data: values.iter().map(|&x| C64::real(x)).collect(),
        }
    }

    /// Creates the computational basis state `|index⟩` of dimension `dim`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= dim`.
    pub fn basis_state(dim: usize, index: usize) -> Self {
        assert!(
            index < dim,
            "basis index {index} out of range for dim {dim}"
        );
        let mut v = Self::zeros(dim);
        v.data[index] = C64::ONE;
        v
    }

    /// Returns the number of entries.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` if the vector has no entries.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Returns the entries as a slice.
    pub fn as_slice(&self) -> &[C64] {
        &self.data
    }

    /// Returns the entries as a mutable slice.
    pub fn as_mut_slice(&mut self) -> &mut [C64] {
        &mut self.data
    }

    /// Consumes the vector and returns the underlying storage.
    pub fn into_vec(self) -> Vec<C64> {
        self.data
    }

    /// Returns an iterator over the entries.
    pub fn iter(&self) -> std::slice::Iter<'_, C64> {
        self.data.iter()
    }

    /// Returns the conjugate of every entry.
    pub fn conj(&self) -> Self {
        Self {
            data: self.data.iter().map(|z| z.conj()).collect(),
        }
    }

    /// Returns the Hermitian inner product `⟨self|other⟩` (conjugating `self`).
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if the lengths differ.
    pub fn dot(&self, other: &Self) -> Result<C64, LinalgError> {
        if self.len() != other.len() {
            return Err(LinalgError::DimensionMismatch {
                expected: self.len(),
                found: other.len(),
            });
        }
        Ok(self
            .data
            .iter()
            .zip(other.data.iter())
            .map(|(a, b)| a.conj() * *b)
            .sum())
    }

    /// Returns the squared Euclidean norm `Σ|v_i|²`.
    pub fn norm_sqr(&self) -> f64 {
        self.data.iter().map(|z| z.norm_sqr()).sum()
    }

    /// Returns the Euclidean norm.
    pub fn norm(&self) -> f64 {
        self.norm_sqr().sqrt()
    }

    /// Returns a copy scaled so that its norm is 1.
    ///
    /// # Panics
    ///
    /// Panics if the vector has zero norm.
    pub fn normalized(&self) -> Self {
        let n = self.norm();
        assert!(n > 0.0, "cannot normalise a zero vector");
        self.scale(C64::real(1.0 / n))
    }

    /// Returns the element-wise scaling `c·self`.
    pub fn scale(&self, c: C64) -> Self {
        Self {
            data: self.data.iter().map(|&z| z * c).collect(),
        }
    }

    /// Returns the state-overlap fidelity `|⟨self|other⟩|²` between two
    /// (assumed normalised) vectors.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if the lengths differ.
    pub fn overlap_fidelity(&self, other: &Self) -> Result<f64, LinalgError> {
        Ok(self.dot(other)?.norm_sqr())
    }

    /// Returns `true` if every entry is within `tol` of the other vector.
    pub fn approx_eq(&self, other: &Self, tol: f64) -> bool {
        self.len() == other.len()
            && self
                .data
                .iter()
                .zip(other.data.iter())
                .all(|(a, b)| a.approx_eq(*b, tol))
    }

    /// Returns `true` if the two vectors describe the same quantum state up to
    /// a global phase, within `tol`.
    pub fn approx_eq_up_to_phase(&self, other: &Self, tol: f64) -> bool {
        if self.len() != other.len() {
            return false;
        }
        let ip = match self.dot(other) {
            Ok(ip) => ip,
            Err(_) => return false,
        };
        let n1 = self.norm();
        let n2 = other.norm();
        if n1 == 0.0 || n2 == 0.0 {
            return n1 == n2;
        }
        (ip.abs() / (n1 * n2) - 1.0).abs() <= tol
    }

    /// Returns the Kronecker (tensor) product `self ⊗ other`.
    pub fn kron(&self, other: &Self) -> Self {
        let mut out = Vec::with_capacity(self.len() * other.len());
        for &a in &self.data {
            for &b in &other.data {
                out.push(a * b);
            }
        }
        Self { data: out }
    }

    /// Returns the real parts of all entries.
    pub fn to_real_vec(&self) -> Vec<f64> {
        self.data.iter().map(|z| z.re).collect()
    }

    /// Returns the probability distribution `|v_i|²` over basis states.
    pub fn probabilities(&self) -> Vec<f64> {
        self.data.iter().map(|z| z.norm_sqr()).collect()
    }
}

impl Index<usize> for CVector {
    type Output = C64;
    fn index(&self, index: usize) -> &C64 {
        &self.data[index]
    }
}

impl IndexMut<usize> for CVector {
    fn index_mut(&mut self, index: usize) -> &mut C64 {
        &mut self.data[index]
    }
}

impl Add for &CVector {
    type Output = CVector;
    fn add(self, rhs: &CVector) -> CVector {
        assert_eq!(self.len(), rhs.len(), "vector length mismatch in add");
        CVector::new(
            self.data
                .iter()
                .zip(rhs.data.iter())
                .map(|(a, b)| *a + *b)
                .collect(),
        )
    }
}

impl Sub for &CVector {
    type Output = CVector;
    fn sub(self, rhs: &CVector) -> CVector {
        assert_eq!(self.len(), rhs.len(), "vector length mismatch in sub");
        CVector::new(
            self.data
                .iter()
                .zip(rhs.data.iter())
                .map(|(a, b)| *a - *b)
                .collect(),
        )
    }
}

impl Mul<C64> for &CVector {
    type Output = CVector;
    fn mul(self, rhs: C64) -> CVector {
        self.scale(rhs)
    }
}

impl FromIterator<C64> for CVector {
    fn from_iter<I: IntoIterator<Item = C64>>(iter: I) -> Self {
        Self {
            data: iter.into_iter().collect(),
        }
    }
}

impl<'a> IntoIterator for &'a CVector {
    type Item = &'a C64;
    type IntoIter = std::slice::Iter<'a, C64>;
    fn into_iter(self) -> Self::IntoIter {
        self.data.iter()
    }
}

impl fmt::Display for CVector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, z) in self.data.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{z}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basis_state_is_one_hot() {
        let v = CVector::basis_state(4, 2);
        assert_eq!(v.len(), 4);
        assert_eq!(v[2], C64::ONE);
        assert_eq!(v[0], C64::ZERO);
        assert!((v.norm() - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn basis_state_out_of_range_panics() {
        let _ = CVector::basis_state(4, 4);
    }

    #[test]
    fn dot_product_conjugates_left() {
        let a = CVector::new(vec![C64::I, C64::ZERO]);
        let b = CVector::new(vec![C64::ONE, C64::ZERO]);
        // ⟨a|b⟩ = conj(i)*1 = -i
        assert!(a.dot(&b).unwrap().approx_eq(-C64::I, 1e-12));
    }

    #[test]
    fn dot_dimension_mismatch_errors() {
        let a = CVector::zeros(2);
        let b = CVector::zeros(3);
        assert!(a.dot(&b).is_err());
    }

    #[test]
    fn normalisation() {
        let v = CVector::from_real(&[1.0, 1.0, 1.0, 1.0]);
        let u = v.normalized();
        assert!((u.norm() - 1.0).abs() < 1e-12);
        assert!((u[0].re - 0.5).abs() < 1e-12);
    }

    #[test]
    fn overlap_fidelity_of_identical_states_is_one() {
        let v = CVector::from_real(&[0.6, 0.8]);
        assert!((v.overlap_fidelity(&v).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn overlap_fidelity_of_orthogonal_states_is_zero() {
        let a = CVector::basis_state(2, 0);
        let b = CVector::basis_state(2, 1);
        assert!(a.overlap_fidelity(&b).unwrap() < 1e-15);
    }

    #[test]
    fn kron_dimensions_and_values() {
        let a = CVector::from_real(&[1.0, 2.0]);
        let b = CVector::from_real(&[3.0, 4.0]);
        let k = a.kron(&b);
        assert_eq!(k.len(), 4);
        assert_eq!(k.to_real_vec(), vec![3.0, 4.0, 6.0, 8.0]);
    }

    #[test]
    fn phase_equivalence() {
        let a = CVector::from_real(&[0.6, 0.8]);
        let b = a.scale(C64::cis(1.3));
        assert!(a.approx_eq_up_to_phase(&b, 1e-12));
        assert!(!a.approx_eq(&b, 1e-6));
    }

    #[test]
    fn arithmetic_ops() {
        let a = CVector::from_real(&[1.0, 2.0]);
        let b = CVector::from_real(&[3.0, 5.0]);
        assert_eq!((&a + &b).to_real_vec(), vec![4.0, 7.0]);
        assert_eq!((&b - &a).to_real_vec(), vec![2.0, 3.0]);
        assert_eq!((&a * C64::real(2.0)).to_real_vec(), vec![2.0, 4.0]);
    }

    #[test]
    fn probabilities_sum_to_one_for_normalised() {
        let v = CVector::from_real(&[1.0, 2.0, 2.0]).normalized();
        let total: f64 = v.probabilities().iter().sum();
        assert!((total - 1.0).abs() < 1e-12);
    }
}

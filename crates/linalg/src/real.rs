//! Dense real matrices and symmetric eigensolvers.
//!
//! The classical-data substrate (PCA, covariance analysis, k-means geometry)
//! works on real data, so this module provides a real matrix type alongside a
//! symmetric Jacobi eigensolver and a faster top-`k` subspace iteration used
//! for PCA on high-dimensional image data.

use crate::error::LinalgError;
use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense, row-major real matrix.
///
/// # Examples
///
/// ```
/// use enq_linalg::RMatrix;
///
/// let a = RMatrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
/// let b = a.transpose();
/// assert_eq!(b[(0, 1)], 3.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct RMatrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl RMatrix {
    /// Creates a matrix from row-major data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn new(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "real matrix data length mismatch");
        Self { rows, cols, data }
    }

    /// Creates a zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the identity matrix of size `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Creates a matrix from borrowed rows.
    ///
    /// # Panics
    ///
    /// Panics if the rows have inconsistent lengths or there are no rows.
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        assert!(!rows.is_empty(), "cannot build a matrix from zero rows");
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for row in rows {
            assert_eq!(row.len(), cols, "inconsistent row length");
            data.extend_from_slice(row);
        }
        Self {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Returns the number of rows.
    pub fn nrows(&self) -> usize {
        self.rows
    }

    /// Returns the number of columns.
    pub fn ncols(&self) -> usize {
        self.cols
    }

    /// Returns the underlying row-major data.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Returns row `i` as a slice.
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Returns the transpose.
    pub fn transpose(&self) -> Self {
        let mut out = Self::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out[(j, i)] = self[(i, j)];
            }
        }
        out
    }

    /// Returns the matrix product `self · rhs`.
    ///
    /// # Panics
    ///
    /// Panics if the inner dimensions do not match.
    pub fn matmul(&self, rhs: &Self) -> Self {
        assert_eq!(self.cols, rhs.rows, "real matmul dimension mismatch");
        let mut out = Self::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.data[i * self.cols + k];
                if a == 0.0 {
                    continue;
                }
                let out_base = i * rhs.cols;
                let rhs_base = k * rhs.cols;
                for j in 0..rhs.cols {
                    out.data[out_base + j] += a * rhs.data[rhs_base + j];
                }
            }
        }
        out
    }

    /// Returns the matrix-vector product.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != ncols()`.
    #[allow(clippy::needless_range_loop)]
    pub fn matvec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(self.cols, v.len(), "real matvec dimension mismatch");
        let mut out = vec![0.0; self.rows];
        for i in 0..self.rows {
            let base = i * self.cols;
            let mut acc = 0.0;
            for j in 0..self.cols {
                acc += self.data[base + j] * v[j];
            }
            out[i] = acc;
        }
        out
    }

    /// Returns `true` if every entry is within `tol` of the other matrix.
    pub fn approx_eq(&self, other: &Self, tol: f64) -> bool {
        self.rows == other.rows
            && self.cols == other.cols
            && self
                .data
                .iter()
                .zip(other.data.iter())
                .all(|(a, b)| (a - b).abs() <= tol)
    }

    /// Returns the Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// Returns `true` if the matrix is symmetric within `tol`.
    pub fn is_symmetric(&self, tol: f64) -> bool {
        if self.rows != self.cols {
            return false;
        }
        for i in 0..self.rows {
            for j in (i + 1)..self.cols {
                if (self[(i, j)] - self[(j, i)]).abs() > tol {
                    return false;
                }
            }
        }
        true
    }
}

impl Index<(usize, usize)> for RMatrix {
    type Output = f64;
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for RMatrix {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        &mut self.data[i * self.cols + j]
    }
}

impl fmt::Display for RMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.rows {
            writeln!(f, "{:?}", self.row(i))?;
        }
        Ok(())
    }
}

/// Result of a real symmetric eigendecomposition.
#[derive(Debug, Clone)]
pub struct SymmetricEigen {
    /// Eigenvalues in descending order.
    pub eigenvalues: Vec<f64>,
    /// Matrix whose columns are the corresponding eigenvectors.
    pub eigenvectors: RMatrix,
}

/// Computes the full eigendecomposition of a real symmetric matrix using
/// cyclic Jacobi rotations. Eigenvalues are returned in descending order.
///
/// # Errors
///
/// Returns [`LinalgError::NotSquare`] or [`LinalgError::InvalidInput`] for
/// malformed input and [`LinalgError::NoConvergence`] if 60 sweeps are not
/// enough.
pub fn symmetric_eigen(a: &RMatrix) -> Result<SymmetricEigen, LinalgError> {
    if a.nrows() != a.ncols() {
        return Err(LinalgError::NotSquare {
            rows: a.nrows(),
            cols: a.ncols(),
        });
    }
    if !a.is_symmetric(1e-8) {
        return Err(LinalgError::InvalidInput(
            "matrix is not symmetric".to_string(),
        ));
    }
    let n = a.nrows();
    let mut m = a.clone();
    let mut v = RMatrix::identity(n);

    let max_sweeps = 60;
    let mut converged = false;
    for _ in 0..max_sweeps {
        let mut off = 0.0;
        for i in 0..n {
            for j in (i + 1)..n {
                off += m[(i, j)] * m[(i, j)];
            }
        }
        if off.sqrt() < 1e-12 {
            converged = true;
            break;
        }
        for p in 0..n {
            for q in (p + 1)..n {
                let apq = m[(p, q)];
                if apq.abs() < 1e-300 {
                    continue;
                }
                let app = m[(p, p)];
                let aqq = m[(q, q)];
                let theta = 0.5 * (2.0 * apq).atan2(app - aqq);
                let c = theta.cos();
                let s = theta.sin();
                // Rotate rows/columns p and q.
                for k in 0..n {
                    let mkp = m[(k, p)];
                    let mkq = m[(k, q)];
                    m[(k, p)] = c * mkp + s * mkq;
                    m[(k, q)] = -s * mkp + c * mkq;
                }
                for k in 0..n {
                    let mpk = m[(p, k)];
                    let mqk = m[(q, k)];
                    m[(p, k)] = c * mpk + s * mqk;
                    m[(q, k)] = -s * mpk + c * mqk;
                }
                for k in 0..n {
                    let vkp = v[(k, p)];
                    let vkq = v[(k, q)];
                    v[(k, p)] = c * vkp + s * vkq;
                    v[(k, q)] = -s * vkp + c * vkq;
                }
            }
        }
    }
    if !converged {
        let mut off = 0.0;
        for i in 0..n {
            for j in (i + 1)..n {
                off += m[(i, j)] * m[(i, j)];
            }
        }
        if off.sqrt() >= 1e-9 {
            return Err(LinalgError::NoConvergence {
                iterations: max_sweeps,
            });
        }
    }

    let diag: Vec<f64> = (0..n).map(|i| m[(i, i)]).collect();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&i, &j| diag[j].partial_cmp(&diag[i]).expect("finite eigenvalues"));

    let eigenvalues: Vec<f64> = order.iter().map(|&i| diag[i]).collect();
    let mut eigenvectors = RMatrix::zeros(n, n);
    for (new_col, &old_col) in order.iter().enumerate() {
        for row in 0..n {
            eigenvectors[(row, new_col)] = v[(row, old_col)];
        }
    }
    Ok(SymmetricEigen {
        eigenvalues,
        eigenvectors,
    })
}

/// Orthonormalises the columns of `m` in place using modified Gram-Schmidt.
/// Columns that become numerically zero are replaced with zeros.
fn orthonormalize_columns(m: &mut RMatrix) {
    let rows = m.nrows();
    let cols = m.ncols();
    for j in 0..cols {
        for prev in 0..j {
            let mut dot = 0.0;
            for r in 0..rows {
                dot += m[(r, j)] * m[(r, prev)];
            }
            for r in 0..rows {
                let sub = dot * m[(r, prev)];
                m[(r, j)] -= sub;
            }
        }
        let mut norm = 0.0;
        for r in 0..rows {
            norm += m[(r, j)] * m[(r, j)];
        }
        let norm = norm.sqrt();
        if norm > 1e-14 {
            for r in 0..rows {
                m[(r, j)] /= norm;
            }
        } else {
            for r in 0..rows {
                m[(r, j)] = 0.0;
            }
        }
    }
}

/// Computes the top-`k` eigenpairs of a real symmetric positive-semidefinite
/// matrix using subspace (orthogonal) iteration.
///
/// This is the workhorse for PCA, where only the leading principal components
/// of a large covariance matrix are needed. Eigenvalues are returned in
/// descending order.
///
/// # Errors
///
/// Returns [`LinalgError::InvalidInput`] if `k` is zero or exceeds the matrix
/// dimension, and [`LinalgError::NotSquare`] for non-square input.
pub fn top_k_eigen(
    a: &RMatrix,
    k: usize,
    iterations: usize,
) -> Result<SymmetricEigen, LinalgError> {
    if a.nrows() != a.ncols() {
        return Err(LinalgError::NotSquare {
            rows: a.nrows(),
            cols: a.ncols(),
        });
    }
    let n = a.nrows();
    if k == 0 || k > n {
        return Err(LinalgError::InvalidInput(format!(
            "requested {k} eigenpairs from a {n}x{n} matrix"
        )));
    }
    // Deterministic starting subspace: shifted identity-like columns mixed with
    // a simple varying pattern so that no component is missed.
    let mut q = RMatrix::zeros(n, k);
    for j in 0..k {
        for i in 0..n {
            let phase = ((i * (j + 1) + j) % 97) as f64 / 97.0 - 0.5;
            q[(i, j)] = if i == j { 1.0 } else { 0.1 * phase };
        }
    }
    orthonormalize_columns(&mut q);
    for _ in 0..iterations {
        let aq = a.matmul(&q);
        q = aq;
        orthonormalize_columns(&mut q);
    }
    // Rayleigh-Ritz: project A into the subspace and solve the small problem.
    let aq = a.matmul(&q);
    let small = q.transpose().matmul(&aq); // k x k, symmetric.
                                           // Symmetrise against round-off.
    let mut sym = small.clone();
    for i in 0..k {
        for j in 0..k {
            sym[(i, j)] = 0.5 * (small[(i, j)] + small[(j, i)]);
        }
    }
    let inner = symmetric_eigen(&sym)?;
    let eigenvectors = q.matmul(&inner.eigenvectors);
    Ok(SymmetricEigen {
        eigenvalues: inner.eigenvalues,
        eigenvectors,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn random_symmetric(n: usize, seed: u64) -> RMatrix {
        let mut state = seed;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        let mut m = RMatrix::zeros(n, n);
        for i in 0..n {
            for j in i..n {
                let x = next();
                m[(i, j)] = x;
                m[(j, i)] = x;
            }
        }
        m
    }

    #[test]
    fn matmul_identity() {
        let a = random_symmetric(4, 3);
        let id = RMatrix::identity(4);
        assert!(a.matmul(&id).approx_eq(&a, 1e-12));
    }

    #[test]
    fn transpose_involution() {
        let a = RMatrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert!(a.transpose().transpose().approx_eq(&a, 0.0));
        assert_eq!(a.transpose().nrows(), 3);
    }

    #[test]
    fn symmetric_eigen_reconstructs() {
        let a = random_symmetric(6, 11);
        let eig = symmetric_eigen(&a).unwrap();
        let v = &eig.eigenvectors;
        // Check A v_i = λ_i v_i column by column.
        for (idx, &lambda) in eig.eigenvalues.iter().enumerate() {
            let col: Vec<f64> = (0..6).map(|r| v[(r, idx)]).collect();
            let av = a.matvec(&col);
            for r in 0..6 {
                assert!((av[r] - lambda * col[r]).abs() < 1e-8);
            }
        }
        // Descending order.
        for w in eig.eigenvalues.windows(2) {
            assert!(w[0] >= w[1] - 1e-12);
        }
    }

    #[test]
    fn symmetric_eigen_diag() {
        let d = RMatrix::from_rows(&[&[3.0, 0.0], &[0.0, -1.0]]);
        let eig = symmetric_eigen(&d).unwrap();
        assert!((eig.eigenvalues[0] - 3.0).abs() < 1e-12);
        assert!((eig.eigenvalues[1] + 1.0).abs() < 1e-12);
    }

    #[test]
    fn non_symmetric_rejected() {
        let m = RMatrix::from_rows(&[&[0.0, 1.0], &[0.0, 0.0]]);
        assert!(symmetric_eigen(&m).is_err());
    }

    #[test]
    fn top_k_matches_full_decomposition() {
        // PSD matrix: B^T B.
        let b = random_symmetric(8, 5);
        let a = b.transpose().matmul(&b);
        let full = symmetric_eigen(&a).unwrap();
        let top = top_k_eigen(&a, 3, 200).unwrap();
        for i in 0..3 {
            assert!(
                (full.eigenvalues[i] - top.eigenvalues[i]).abs()
                    < 1e-6 * full.eigenvalues[0].max(1.0),
                "eigenvalue {i}: full {} vs top {}",
                full.eigenvalues[i],
                top.eigenvalues[i]
            );
        }
    }

    #[test]
    fn top_k_eigenvectors_are_orthonormal() {
        let b = random_symmetric(10, 9);
        let a = b.transpose().matmul(&b);
        let top = top_k_eigen(&a, 4, 150).unwrap();
        let v = &top.eigenvectors;
        for i in 0..4 {
            for j in 0..4 {
                let mut dot = 0.0;
                for r in 0..10 {
                    dot += v[(r, i)] * v[(r, j)];
                }
                let expected = if i == j { 1.0 } else { 0.0 };
                assert!((dot - expected).abs() < 1e-6, "({i},{j}) dot {dot}");
            }
        }
    }

    #[test]
    fn top_k_invalid_k() {
        let a = RMatrix::identity(3);
        assert!(top_k_eigen(&a, 0, 10).is_err());
        assert!(top_k_eigen(&a, 4, 10).is_err());
    }
}

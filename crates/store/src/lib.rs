//! `enq_store` — the durable model store for EnQode pipelines.
//!
//! This crate defines the versioned **`ENQM`** artifact container: a
//! self-describing, integrity-checked file holding everything a trained
//! [`enqode::EnqodePipeline`] needs to serve — PCA basis, per-class ansatz
//! configs, trained cluster centroids and parameters — plus the registry
//! identity (model id and generation) it was persisted under. The headline
//! property is **bit-exactness**: `embed` on a decoded pipeline produces
//! output bitwise identical to the pipeline that was encoded, which is what
//! makes zero-downtime warm boots safe (a restarted `enqd` answers with the
//! same bytes as the process it replaced).
//!
//! Decoding is **fail-closed** in the same spirit as the wire protocol in
//! `enq_net`: magic, version, reserved flags, declared length, and an
//! integrity hash over the payload are all validated before any field is
//! decoded; every field read is bounds-checked; trailing bytes are
//! rejected. A truncated, bit-flipped, wrong-version, or wrong-magic file
//! yields a typed [`StoreError`] and nothing else — callers can never adopt
//! a partially decoded model.
//!
//! The byte-level layout is specified in `docs/FORMATS.md`.
//!
//! Dependency note: this crate depends only on `enqode` and `enq_data`.
//! The serving tier (`enq_serve`) layers registry snapshot/restore on top.
#![warn(missing_docs)]

mod artifact;
mod codec;
mod error;

pub use artifact::{
    artifact_file_name, decode_model, encode_model, read_model_file, write_model_file,
    ModelArtifact,
};
pub use codec::{
    fnv1a64, frame_payload, unframe_payload, ARTIFACT_EXTENSION, ENQM_HEADER_LEN, ENQM_MAGIC,
    ENQM_VERSION,
};
pub use error::StoreError;

//! The `ENQM` container: header layout, integrity hash, and the
//! fail-closed payload cursor.
//!
//! Byte-level spec: `docs/FORMATS.md`. The container is deliberately
//! boring — a fixed 24-byte header followed by one contiguous,
//! hash-covered payload — so a reader can validate the whole file from
//! the header before decoding a single field, and an mmap'd artifact
//! decodes from one borrowed slice with no seeking.

use crate::error::StoreError;

/// The artifact magic: the first four bytes of every `ENQM` file.
pub const ENQM_MAGIC: [u8; 4] = *b"ENQM";

/// Highest format version this build writes and reads.
pub const ENQM_VERSION: u16 = 1;

/// Fixed header length: magic (4) + version (2) + flags (2) +
/// payload length (8) + payload hash (8).
pub const ENQM_HEADER_LEN: usize = 24;

/// The canonical file extension for model artifacts.
pub const ARTIFACT_EXTENSION: &str = "enqm";

/// FNV-1a 64-bit offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// The payload integrity hash: FNV-1a 64 over the raw payload bytes.
///
/// The hash detects accidental corruption (torn writes, bit rot, clipped
/// copies) — it is **not** a cryptographic signature and offers no
/// protection against a deliberate forger, who could simply rewrite it.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = FNV_OFFSET;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// Frames `payload` into a complete artifact file image:
/// `header ++ payload`.
pub fn frame_payload(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(ENQM_HEADER_LEN + payload.len());
    out.extend_from_slice(&ENQM_MAGIC);
    out.extend_from_slice(&ENQM_VERSION.to_le_bytes());
    out.extend_from_slice(&0u16.to_le_bytes()); // reserved flags
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&fnv1a64(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Validates the header and integrity hash of a complete artifact image
/// and returns the payload slice.
///
/// Every check runs before any payload field is decoded: magic, version,
/// reserved flags, exact length (`header + declared payload`, nothing
/// more, nothing less), then the FNV-1a hash over the full payload.
///
/// # Errors
///
/// [`StoreError::Truncated`] for a file shorter than the header,
/// [`StoreError::BadMagic`], [`StoreError::UnsupportedVersion`],
/// [`StoreError::ReservedFlags`], [`StoreError::LengthMismatch`], and
/// [`StoreError::IntegrityMismatch`].
pub fn unframe_payload(image: &[u8]) -> Result<&[u8], StoreError> {
    if image.len() < ENQM_HEADER_LEN {
        return Err(StoreError::Truncated("header"));
    }
    let magic: [u8; 4] = image[0..4].try_into().expect("4 bytes");
    if magic != ENQM_MAGIC {
        return Err(StoreError::BadMagic { found: magic });
    }
    let version = u16::from_le_bytes(image[4..6].try_into().expect("2 bytes"));
    if version == 0 || version > ENQM_VERSION {
        return Err(StoreError::UnsupportedVersion {
            found: version,
            supported: ENQM_VERSION,
        });
    }
    let flags = u16::from_le_bytes(image[6..8].try_into().expect("2 bytes"));
    if flags != 0 {
        return Err(StoreError::ReservedFlags { found: flags });
    }
    let declared = u64::from_le_bytes(image[8..16].try_into().expect("8 bytes"));
    let stored = u64::from_le_bytes(image[16..24].try_into().expect("8 bytes"));
    let actual = (image.len() - ENQM_HEADER_LEN) as u64;
    if declared != actual {
        return Err(StoreError::LengthMismatch { declared, actual });
    }
    let payload = &image[ENQM_HEADER_LEN..];
    let computed = fnv1a64(payload);
    if computed != stored {
        return Err(StoreError::IntegrityMismatch { stored, computed });
    }
    Ok(payload)
}

/// Fail-closed payload reader, mirroring the wire protocol's cursor: every
/// read is bounds-checked against the (already hash-validated) payload,
/// counts are checked against the bytes actually present before any
/// allocation, and [`Cursor::finish`] rejects trailing bytes.
pub struct Cursor<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Cursor<'a> {
    /// Starts a cursor over a payload slice.
    pub fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, at: 0 }
    }

    fn take(&mut self, n: usize, field: &'static str) -> Result<&'a [u8], StoreError> {
        let end = self
            .at
            .checked_add(n)
            .filter(|&end| end <= self.bytes.len())
            .ok_or(StoreError::Truncated(field))?;
        let slice = &self.bytes[self.at..end];
        self.at = end;
        Ok(slice)
    }

    /// Reads one byte.
    pub fn u8(&mut self, field: &'static str) -> Result<u8, StoreError> {
        Ok(self.take(1, field)?[0])
    }

    /// Reads a little-endian `u16`.
    pub fn u16(&mut self, field: &'static str) -> Result<u16, StoreError> {
        Ok(u16::from_le_bytes(
            self.take(2, field)?.try_into().expect("2 bytes"),
        ))
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self, field: &'static str) -> Result<u32, StoreError> {
        Ok(u32::from_le_bytes(
            self.take(4, field)?.try_into().expect("4 bytes"),
        ))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self, field: &'static str) -> Result<u64, StoreError> {
        Ok(u64::from_le_bytes(
            self.take(8, field)?.try_into().expect("8 bytes"),
        ))
    }

    /// Reads a little-endian `f64` — bit-exact, NaN payloads included.
    pub fn f64(&mut self, field: &'static str) -> Result<f64, StoreError> {
        Ok(f64::from_le_bytes(
            self.take(8, field)?.try_into().expect("8 bytes"),
        ))
    }

    /// Reads a `[u16 len][utf8 bytes]` string.
    pub fn string(&mut self, field: &'static str) -> Result<String, StoreError> {
        let len = self.u16(field)? as usize;
        let bytes = self.take(len, field)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| StoreError::InvalidUtf8(field))
    }

    /// Reads a `[u32 count][count × f64]` vector.
    pub fn f64s(&mut self, field: &'static str) -> Result<Vec<f64>, StoreError> {
        let count = self.u32(field)? as usize;
        if count > self.remaining() / 8 {
            return Err(StoreError::CountOverflow(field));
        }
        let mut values = Vec::with_capacity(count);
        for _ in 0..count {
            values.push(self.f64(field)?);
        }
        Ok(values)
    }

    /// Reads a boolean encoded as one byte, rejecting anything but 0 or 1.
    pub fn bool(&mut self, field: &'static str) -> Result<bool, StoreError> {
        match self.u8(field)? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(StoreError::InvalidValue {
                field,
                found: other.to_string(),
            }),
        }
    }

    /// Validates that a declared element count can fit in the remaining
    /// bytes, given a minimum encoded size per element.
    pub fn check_count(
        &self,
        count: usize,
        min_element_bytes: usize,
        field: &'static str,
    ) -> Result<(), StoreError> {
        if count > self.remaining() / min_element_bytes.max(1) {
            return Err(StoreError::CountOverflow(field));
        }
        Ok(())
    }

    /// Bytes left to read.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.at
    }

    /// Rejects trailing bytes after a fully decoded payload.
    pub fn finish(self) -> Result<(), StoreError> {
        let extra = self.remaining();
        if extra == 0 {
            Ok(())
        } else {
            Err(StoreError::TrailingBytes { extra })
        }
    }
}

/// Payload writer: the encoding twin of [`Cursor`].
#[derive(Default)]
pub struct Writer {
    bytes: Vec<u8>,
}

impl Writer {
    /// Starts an empty payload.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one byte.
    pub fn u8(&mut self, v: u8) {
        self.bytes.push(v);
    }

    /// Appends a little-endian `u16`.
    pub fn u16(&mut self, v: u16) {
        self.bytes.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    pub fn u32(&mut self, v: u32) {
        self.bytes.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn u64(&mut self, v: u64) {
        self.bytes.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `f64` — bit-exact via [`f64::to_le_bytes`].
    pub fn f64(&mut self, v: f64) {
        self.bytes.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `[u16 len][utf8 bytes]` string.
    ///
    /// # Panics
    ///
    /// Panics if the string exceeds 64 KiB (model ids are short; the
    /// encoder enforces what the decoder's `u16` length can express).
    pub fn string(&mut self, v: &str) {
        let len = u16::try_from(v.len()).expect("string fields are capped at 64 KiB");
        self.u16(len);
        self.bytes.extend_from_slice(v.as_bytes());
    }

    /// Appends a `[u32 count][count × f64]` vector.
    pub fn f64s(&mut self, values: &[f64]) {
        self.u32(u32::try_from(values.len()).expect("vector fields are capped at u32::MAX"));
        for &v in values {
            self.f64(v);
        }
    }

    /// Appends a boolean as one byte.
    pub fn bool(&mut self, v: bool) {
        self.u8(u8::from(v));
    }

    /// Finishes the payload.
    pub fn into_bytes(self) -> Vec<u8> {
        self.bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn frame_unframe_roundtrip() {
        let payload = b"some payload bytes".to_vec();
        let image = frame_payload(&payload);
        assert_eq!(image.len(), ENQM_HEADER_LEN + payload.len());
        assert_eq!(unframe_payload(&image).unwrap(), &payload[..]);
    }

    #[test]
    fn header_validation_fails_closed() {
        let image = frame_payload(b"x");
        // Too short for a header.
        assert!(matches!(
            unframe_payload(&image[..10]),
            Err(StoreError::Truncated("header"))
        ));
        // Wrong magic.
        let mut bad = image.clone();
        bad[0] = b'X';
        assert!(matches!(
            unframe_payload(&bad),
            Err(StoreError::BadMagic { .. })
        ));
        // Future version.
        let mut bad = image.clone();
        bad[4..6].copy_from_slice(&99u16.to_le_bytes());
        assert!(matches!(
            unframe_payload(&bad),
            Err(StoreError::UnsupportedVersion { found: 99, .. })
        ));
        // Version zero.
        let mut bad = image.clone();
        bad[4..6].copy_from_slice(&0u16.to_le_bytes());
        assert!(matches!(
            unframe_payload(&bad),
            Err(StoreError::UnsupportedVersion { found: 0, .. })
        ));
        // Reserved flags.
        let mut bad = image.clone();
        bad[6] = 1;
        assert!(matches!(
            unframe_payload(&bad),
            Err(StoreError::ReservedFlags { found: 1 })
        ));
        // Clipped payload.
        assert!(matches!(
            unframe_payload(&image[..image.len() - 1]),
            Err(StoreError::LengthMismatch { .. })
        ));
        // Appended garbage.
        let mut bad = image.clone();
        bad.push(0);
        assert!(matches!(
            unframe_payload(&bad),
            Err(StoreError::LengthMismatch { .. })
        ));
        // Flipped payload bit.
        let mut bad = image.clone();
        *bad.last_mut().unwrap() ^= 0x01;
        assert!(matches!(
            unframe_payload(&bad),
            Err(StoreError::IntegrityMismatch { .. })
        ));
        // Flipped stored-hash bit.
        let mut bad = image;
        bad[16] ^= 0x01;
        assert!(matches!(
            unframe_payload(&bad),
            Err(StoreError::IntegrityMismatch { .. })
        ));
    }

    #[test]
    fn cursor_roundtrips_and_fails_closed() {
        let mut w = Writer::new();
        w.u8(7);
        w.u16(513);
        w.u32(70_000);
        w.u64(1 << 40);
        w.f64(f64::NAN);
        w.string("model-id");
        w.f64s(&[1.5, -0.25]);
        w.bool(true);
        let bytes = w.into_bytes();

        let mut c = Cursor::new(&bytes);
        assert_eq!(c.u8("a").unwrap(), 7);
        assert_eq!(c.u16("b").unwrap(), 513);
        assert_eq!(c.u32("c").unwrap(), 70_000);
        assert_eq!(c.u64("d").unwrap(), 1 << 40);
        assert!(c.f64("e").unwrap().is_nan());
        assert_eq!(c.string("f").unwrap(), "model-id");
        assert_eq!(c.f64s("g").unwrap(), vec![1.5, -0.25]);
        assert!(c.bool("h").unwrap());
        c.finish().unwrap();

        // Trailing bytes are rejected.
        let mut c = Cursor::new(&bytes);
        c.u8("a").unwrap();
        assert!(matches!(c.finish(), Err(StoreError::TrailingBytes { .. })));

        // A hostile vector count cannot reserve memory.
        let mut w = Writer::new();
        w.u32(u32::MAX);
        let hostile = w.into_bytes();
        let mut c = Cursor::new(&hostile);
        assert!(matches!(c.f64s("v"), Err(StoreError::CountOverflow("v"))));

        // Non-boolean flag bytes are rejected.
        let mut c = Cursor::new(&[2]);
        assert!(matches!(
            c.bool("flag"),
            Err(StoreError::InvalidValue { field: "flag", .. })
        ));

        // Reads past the end are truncation errors.
        let mut c = Cursor::new(&[1, 2]);
        assert!(matches!(c.u32("x"), Err(StoreError::Truncated("x"))));
    }
}

//! The model-store error type.

use std::error::Error;
use std::fmt;

/// Errors returned by the `ENQM` artifact codec and file IO.
///
/// Decoding is **fail-closed**, mirroring the wire protocol: a truncated
/// field, trailing bytes, an unknown magic or version, a payload whose
/// integrity hash does not match, or a structurally invalid model all
/// surface a typed variant — never a panic, never a partially adopted
/// model.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum StoreError {
    /// The file does not start with the `ENQM` magic — not a model
    /// artifact at all (or one whose first bytes were corrupted).
    BadMagic {
        /// The four bytes found where the magic was expected.
        found: [u8; 4],
    },
    /// The artifact declares a format version this build does not decode.
    UnsupportedVersion {
        /// The version found in the header.
        found: u16,
        /// The highest version this build supports.
        supported: u16,
    },
    /// The header's reserved flags word was non-zero. Reserved bits are
    /// written as zero and rejected when set, so a future format revision
    /// that assigns them cannot be half-read by an old decoder.
    ReservedFlags {
        /// The flags word found.
        found: u16,
    },
    /// The named field extends past the end of the available bytes — a
    /// truncated or clipped artifact.
    Truncated(&'static str),
    /// Bytes remain after the payload was fully decoded.
    TrailingBytes {
        /// Number of undecoded bytes left over.
        extra: usize,
    },
    /// The file is shorter or longer than `header + declared payload`.
    LengthMismatch {
        /// Payload length declared by the header.
        declared: u64,
        /// Bytes actually present after the header.
        actual: u64,
    },
    /// A declared element count cannot fit in the bytes actually present —
    /// a hostile count cannot reserve memory beyond the file's real size.
    CountOverflow(&'static str),
    /// A string field held invalid UTF-8.
    InvalidUtf8(&'static str),
    /// The FNV-1a integrity hash over the payload does not match the
    /// header — the payload (or the stored hash) was corrupted in flight
    /// or at rest.
    IntegrityMismatch {
        /// Hash recorded in the header.
        stored: u64,
        /// Hash computed over the payload as read.
        computed: u64,
    },
    /// A field decoded but holds a value outside its domain (unknown
    /// entangler tag, non-boolean flag byte, …).
    InvalidValue {
        /// The field at fault.
        field: &'static str,
        /// What was found, rendered for the error message.
        found: String,
    },
    /// The decoded parts do not assemble into a valid model (dimension
    /// mismatches, invalid ansatz, duplicate class labels, …).
    Model(enqode::EnqodeError),
    /// The decoded parts do not assemble into a valid feature pipeline.
    Data(enq_data::DataError),
    /// Reading or writing the artifact file failed.
    Io(String),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::BadMagic { found } => {
                write!(f, "not an ENQM artifact: magic bytes {found:02x?}")
            }
            StoreError::UnsupportedVersion { found, supported } => write!(
                f,
                "unsupported ENQM format version {found} (this build reads <= {supported})"
            ),
            StoreError::ReservedFlags { found } => {
                write!(f, "reserved header flags set: {found:#06x}")
            }
            StoreError::Truncated(field) => write!(f, "artifact truncated reading {field}"),
            StoreError::TrailingBytes { extra } => {
                write!(f, "{extra} trailing byte(s) after the payload")
            }
            StoreError::LengthMismatch { declared, actual } => write!(
                f,
                "header declares a {declared}-byte payload but {actual} byte(s) follow"
            ),
            StoreError::CountOverflow(field) => {
                write!(f, "declared count for {field} exceeds the artifact size")
            }
            StoreError::InvalidUtf8(field) => write!(f, "invalid UTF-8 in {field}"),
            StoreError::IntegrityMismatch { stored, computed } => write!(
                f,
                "payload integrity hash mismatch: header records {stored:#018x}, \
                 payload hashes to {computed:#018x}"
            ),
            StoreError::InvalidValue { field, found } => {
                write!(f, "invalid value for {field}: {found}")
            }
            StoreError::Model(e) => write!(f, "decoded parts do not form a valid model: {e}"),
            StoreError::Data(e) => {
                write!(f, "decoded parts do not form a valid feature pipeline: {e}")
            }
            StoreError::Io(msg) => write!(f, "artifact io error: {msg}"),
        }
    }
}

impl Error for StoreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            StoreError::Model(e) => Some(e),
            StoreError::Data(e) => Some(e),
            _ => None,
        }
    }
}

impl From<enqode::EnqodeError> for StoreError {
    fn from(e: enqode::EnqodeError) -> Self {
        StoreError::Model(e)
    }
}

impl From<enq_data::DataError> for StoreError {
    fn from(e: enq_data::DataError) -> Self {
        StoreError::Data(e)
    }
}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(StoreError::BadMagic { found: *b"ENQB" }
            .to_string()
            .contains("magic"));
        assert!(StoreError::UnsupportedVersion {
            found: 9,
            supported: 1
        }
        .to_string()
        .contains("version 9"));
        assert!(StoreError::IntegrityMismatch {
            stored: 1,
            computed: 2
        }
        .to_string()
        .contains("integrity"));
        assert!(StoreError::Truncated("mean").to_string().contains("mean"));
        let e: StoreError = enq_data::DataError::EmptyDataset.into();
        assert!(e.source().is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<StoreError>();
    }
}

//! `ENQM` model artifacts: encode a trained [`EnqodePipeline`] into the
//! versioned container and decode it back, bit-for-bit.
//!
//! The payload stores exactly what a fit produces and an embed consumes —
//! the PCA basis, per-class configs, trained clusters (centroids + ansatz
//! parameters) — and **not** the symbolic phase table, which depends only
//! on the ansatz shape and is rebuilt on load (one shared table per shape,
//! like the training paths). Every `f64` round-trips through
//! [`f64::to_le_bytes`], so `embed` on a decoded pipeline is bit-identical
//! to the pipeline that was encoded.

use crate::codec::{frame_payload, unframe_payload, Cursor, Writer, ARTIFACT_EXTENSION};
use crate::error::StoreError;
use enq_data::{FeaturePipeline, Pca};
use enqode::{
    AnsatzConfig, ClassModel, EnqodeConfig, EnqodeModel, EnqodePipeline, EntanglerKind,
    SymbolicState, TrainedCluster,
};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

/// Wire tags for [`EntanglerKind`] (stable across releases; new kinds
/// append, existing tags never change meaning).
const ENTANGLER_CY: u8 = 0;
const ENTANGLER_CX: u8 = 1;
const ENTANGLER_CZ: u8 = 2;

fn entangler_tag(kind: EntanglerKind) -> u8 {
    match kind {
        EntanglerKind::Cy => ENTANGLER_CY,
        EntanglerKind::Cx => ENTANGLER_CX,
        EntanglerKind::Cz => ENTANGLER_CZ,
    }
}

fn entangler_from_tag(tag: u8) -> Result<EntanglerKind, StoreError> {
    match tag {
        ENTANGLER_CY => Ok(EntanglerKind::Cy),
        ENTANGLER_CX => Ok(EntanglerKind::Cx),
        ENTANGLER_CZ => Ok(EntanglerKind::Cz),
        other => Err(StoreError::InvalidValue {
            field: "entangler",
            found: other.to_string(),
        }),
    }
}

/// One decoded model artifact: a trained pipeline plus the identity it was
/// persisted under.
#[derive(Debug, Clone)]
pub struct ModelArtifact {
    /// The registry id the pipeline was serving under when persisted.
    pub model_id: String,
    /// The registry **generation** of that registration. A warm boot
    /// restores the model at this generation, so cache keys and
    /// generation-tagged observability line up with the pre-restart
    /// process.
    pub generation: u64,
    /// The reconstructed pipeline; `embed` is bit-identical to the encoded
    /// one.
    pub pipeline: EnqodePipeline,
}

/// Encodes a trained pipeline into a complete `ENQM` file image
/// (header + payload), ready to be written to disk.
pub fn encode_model(model_id: &str, generation: u64, pipeline: &EnqodePipeline) -> Vec<u8> {
    let mut w = Writer::new();
    w.string(model_id);
    w.u64(generation);

    // Feature pipeline: output dimension + the PCA basis, verbatim.
    let features = pipeline.features();
    let pca = features.pca();
    w.u32(u32::try_from(features.output_dim()).expect("output_dim fits u32"));
    w.f64s(pca.mean());
    w.u32(u32::try_from(pca.components().len()).expect("component count fits u32"));
    for component in pca.components() {
        w.f64s(component);
    }
    w.f64s(pca.explained_variance());

    // Per-class models: label, config, offline duration, trained clusters.
    w.u32(u32::try_from(pipeline.class_models().len()).expect("class count fits u32"));
    for cm in pipeline.class_models() {
        w.u64(cm.label as u64);
        let config = cm.model.config();
        w.u8(u8::try_from(config.ansatz.num_qubits).expect("num_qubits <= 16"));
        w.u32(u32::try_from(config.ansatz.num_layers).expect("num_layers fits u32"));
        w.u8(entangler_tag(config.ansatz.entangler));
        w.f64(config.fidelity_threshold);
        w.u64(config.max_clusters as u64);
        w.u64(config.offline_max_iterations as u64);
        w.u64(config.offline_restarts as u64);
        w.u64(config.online_max_iterations as u64);
        w.bool(config.offline_rescue);
        w.u64(config.seed);
        let offline = cm.model.offline_duration();
        w.u64(offline.as_secs());
        w.u32(offline.subsec_nanos());
        w.u32(u32::try_from(cm.model.clusters().len()).expect("cluster count fits u32"));
        for cluster in cm.model.clusters() {
            w.f64s(&cluster.centroid);
            w.f64s(&cluster.parameters);
            w.f64(cluster.fidelity);
            w.u64(cluster.iterations as u64);
        }
    }
    frame_payload(&w.into_bytes())
}

/// Decodes a complete `ENQM` file image back into a [`ModelArtifact`].
///
/// Fail-closed end to end: the header and integrity hash are validated
/// before any field is read ([`unframe_payload`]), every field read is
/// bounds-checked, trailing bytes are rejected, and the decoded parts must
/// reassemble into a structurally valid pipeline
/// ([`EnqodePipeline::from_trained_parts`]) — on *any* error, nothing is
/// returned, so a caller can never adopt a partially decoded model.
///
/// # Errors
///
/// Every [`StoreError`] variant except `Io`.
pub fn decode_model(image: &[u8]) -> Result<ModelArtifact, StoreError> {
    let payload = unframe_payload(image)?;
    let mut c = Cursor::new(payload);

    let model_id = c.string("model_id")?;
    let generation = c.u64("generation")?;

    let output_dim = c.u32("output_dim")? as usize;
    let mean = c.f64s("pca.mean")?;
    let num_components = c.u32("pca.num_components")? as usize;
    // Each component is at least a u32 count; cross-check the declared
    // count against the real component length too.
    c.check_count(num_components, 4 + mean.len() * 8, "pca.components")?;
    let mut components = Vec::with_capacity(num_components);
    for _ in 0..num_components {
        components.push(c.f64s("pca.component")?);
    }
    let explained_variance = c.f64s("pca.explained_variance")?;
    let pca = Pca::from_raw_parts(mean, components, explained_variance)?;
    let features = FeaturePipeline::from_pca(pca, output_dim)?;

    let class_count = c.u32("class_count")? as usize;
    // Minimum encoded class: label + config + duration + cluster count.
    c.check_count(class_count, 8 + 56 + 12 + 4, "classes")?;
    // One symbolic table per ansatz *shape*, shared across classes — the
    // same aliasing the training paths establish.
    let mut tables: Vec<(AnsatzConfig, Arc<SymbolicState>)> = Vec::new();
    let mut class_models = Vec::with_capacity(class_count);
    for _ in 0..class_count {
        let label = c.u64("class.label")? as usize;
        let ansatz = AnsatzConfig {
            num_qubits: c.u8("ansatz.num_qubits")? as usize,
            num_layers: c.u32("ansatz.num_layers")? as usize,
            entangler: entangler_from_tag(c.u8("ansatz.entangler")?)?,
        };
        let config = EnqodeConfig {
            ansatz,
            fidelity_threshold: c.f64("config.fidelity_threshold")?,
            max_clusters: c.u64("config.max_clusters")? as usize,
            offline_max_iterations: c.u64("config.offline_max_iterations")? as usize,
            offline_restarts: c.u64("config.offline_restarts")? as usize,
            online_max_iterations: c.u64("config.online_max_iterations")? as usize,
            offline_rescue: c.bool("config.offline_rescue")?,
            seed: c.u64("config.seed")?,
        };
        let offline_duration = Duration::new(
            c.u64("offline.secs")?,
            validate_nanos(c.u32("offline.nanos")?)?,
        );
        let cluster_count = c.u32("cluster_count")? as usize;
        // Minimum encoded cluster: two vector counts + fidelity + iterations.
        c.check_count(cluster_count, 4 + 4 + 8 + 8, "clusters")?;
        let mut clusters = Vec::with_capacity(cluster_count);
        for _ in 0..cluster_count {
            clusters.push(TrainedCluster {
                centroid: c.f64s("cluster.centroid")?,
                parameters: c.f64s("cluster.parameters")?,
                fidelity: c.f64("cluster.fidelity")?,
                iterations: c.u64("cluster.iterations")? as usize,
            });
        }
        // Validate the shape before building a table for it, so a hostile
        // ansatz cannot make us allocate a 2^255 table.
        ansatz.validate()?;
        let symbolic = match tables.iter().find(|(shape, _)| *shape == ansatz) {
            Some((_, table)) => Arc::clone(table),
            None => {
                let table = Arc::new(SymbolicState::from_ansatz(&ansatz)?);
                tables.push((ansatz, Arc::clone(&table)));
                table
            }
        };
        let model = EnqodeModel::from_trained_parts(config, symbolic, clusters, offline_duration)?;
        class_models.push(ClassModel { label, model });
    }
    c.finish()?;

    let pipeline = EnqodePipeline::from_trained_parts(features, class_models)?;
    Ok(ModelArtifact {
        model_id,
        generation,
        pipeline,
    })
}

fn validate_nanos(nanos: u32) -> Result<u32, StoreError> {
    if nanos >= 1_000_000_000 {
        return Err(StoreError::InvalidValue {
            field: "offline.nanos",
            found: nanos.to_string(),
        });
    }
    Ok(nanos)
}

/// The canonical on-disk file name for a model id:
/// `<sanitised id>.enqm`, with every byte outside `[A-Za-z0-9._-]`
/// replaced by `_` (ids are arbitrary strings; file systems are not).
///
/// The file name is **advisory** — the authoritative id is the one inside
/// the payload. Two distinct ids can sanitise to the same name; callers
/// persisting a whole registry detect that collision and fail it rather
/// than silently dropping a model.
pub fn artifact_file_name(model_id: &str) -> String {
    let sanitized: String = model_id
        .chars()
        .map(|ch| {
            if ch.is_ascii_alphanumeric() || matches!(ch, '.' | '_' | '-') {
                ch
            } else {
                '_'
            }
        })
        .collect();
    let stem = if sanitized.is_empty() {
        "model".to_string()
    } else {
        sanitized
    };
    format!("{stem}.{ARTIFACT_EXTENSION}")
}

/// Writes a model artifact to `path` **atomically**: the image is written
/// to a temp file in the same directory, flushed to disk, then renamed
/// over `path`. A crash mid-write leaves either the old artifact or none —
/// never a torn file (and a torn file would fail the integrity hash
/// anyway).
///
/// # Errors
///
/// [`StoreError::Io`] for any filesystem failure; the temp file is
/// best-effort removed on error.
pub fn write_model_file(
    path: &Path,
    model_id: &str,
    generation: u64,
    pipeline: &EnqodePipeline,
) -> Result<(), StoreError> {
    let image = encode_model(model_id, generation, pipeline);
    let file_name = path
        .file_name()
        .ok_or_else(|| {
            StoreError::Io(format!("artifact path {} has no file name", path.display()))
        })?
        .to_string_lossy()
        .into_owned();
    let tmp: PathBuf = path.with_file_name(format!(".{file_name}.{}.tmp", std::process::id()));
    let write = || -> std::io::Result<()> {
        let mut file = std::fs::File::create(&tmp)?;
        std::io::Write::write_all(&mut file, &image)?;
        // Flush file contents before the rename publishes the name: the
        // rename must never point at data still in flight.
        file.sync_all()?;
        std::fs::rename(&tmp, path)
    };
    write().map_err(|e| {
        let _ = std::fs::remove_file(&tmp);
        StoreError::Io(format!("writing {}: {e}", path.display()))
    })
}

/// Reads and decodes one artifact file.
///
/// # Errors
///
/// [`StoreError::Io`] for filesystem failures, plus everything
/// [`decode_model`] returns for a corrupt or hostile file.
pub fn read_model_file(path: &Path) -> Result<ModelArtifact, StoreError> {
    let image = std::fs::read(path)
        .map_err(|e| StoreError::Io(format!("reading {}: {e}", path.display())))?;
    decode_model(&image)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn file_names_are_sanitised_and_stable() {
        assert_eq!(artifact_file_name("mnist"), "mnist.enqm");
        assert_eq!(artifact_file_name("tenant/a b"), "tenant_a_b.enqm");
        assert_eq!(artifact_file_name(""), "model.enqm");
        assert_eq!(artifact_file_name("v1.2-rc_3"), "v1.2-rc_3.enqm");
    }

    #[test]
    fn entangler_tags_roundtrip_and_reject_unknown() {
        for kind in [EntanglerKind::Cy, EntanglerKind::Cx, EntanglerKind::Cz] {
            assert_eq!(entangler_from_tag(entangler_tag(kind)).unwrap(), kind);
        }
        assert!(matches!(
            entangler_from_tag(3),
            Err(StoreError::InvalidValue { .. })
        ));
    }

    #[test]
    fn nanos_are_domain_checked() {
        assert_eq!(validate_nanos(999_999_999).unwrap(), 999_999_999);
        assert!(validate_nanos(1_000_000_000).is_err());
    }
}

//! Schedule-aware noisy circuit execution on the density-matrix backend.

use crate::density::DensityMatrix;
use crate::error::QsimError;
use crate::noise_model::DeviceNoiseModel;
use crate::statevector::Statevector;
use enq_circuit::QuantumCircuit;

/// A noisy simulator that executes circuits against a [`DeviceNoiseModel`].
///
/// Execution follows an as-soon-as-possible schedule: every gate is applied as
/// a perfect unitary followed by its depolarizing error and thermal
/// relaxation for its duration; when `include_idle_noise` is set, qubits that
/// wait for a busy partner additionally relax for the waiting time, and all
/// qubits are padded to the final circuit time before the state is returned
/// (as they would be before a simultaneous measurement).
///
/// # Examples
///
/// ```
/// use enq_circuit::QuantumCircuit;
/// use enq_qsim::{DeviceNoiseModel, NoisySimulator};
///
/// let mut qc = QuantumCircuit::new(2);
/// qc.sx(0).cx(0, 1);
/// let sim = NoisySimulator::new(DeviceNoiseModel::ibm_brisbane_like());
/// let rho = sim.run(&qc)?;
/// assert!(rho.purity() < 1.0); // noise mixed the state
/// # Ok::<(), enq_qsim::QsimError>(())
/// ```
#[derive(Debug, Clone)]
pub struct NoisySimulator {
    model: DeviceNoiseModel,
}

impl NoisySimulator {
    /// Creates a simulator for the given noise model.
    pub fn new(model: DeviceNoiseModel) -> Self {
        Self { model }
    }

    /// Creates a noiseless density-matrix simulator.
    pub fn ideal() -> Self {
        Self::new(DeviceNoiseModel::ideal())
    }

    /// Returns the noise model.
    pub fn model(&self) -> &DeviceNoiseModel {
        &self.model
    }

    /// Executes a fully bound circuit from `|0…0⟩` and returns the resulting
    /// density matrix.
    ///
    /// # Errors
    ///
    /// Returns an error for unbound parameters, invalid operands, or invalid
    /// noise parameters.
    pub fn run(&self, circuit: &QuantumCircuit) -> Result<DensityMatrix, QsimError> {
        let n = circuit.num_qubits();
        let mut rho = DensityMatrix::zero_state(n);
        let mut qubit_time = vec![0.0f64; n];

        for inst in circuit.iter() {
            let gate = &inst.gate;
            let qubits = &inst.qubits;
            let duration = self.model.gate_duration_ns(gate);

            // Idle noise: lagging operands relax while waiting for the start
            // of this gate.
            if self.model.include_idle_noise && !gate.is_virtual() {
                let start = qubits.iter().map(|&q| qubit_time[q]).fold(0.0f64, f64::max);
                for &q in qubits {
                    let idle = start - qubit_time[q];
                    if let Some(ch) = self.model.idle_channel(idle)? {
                        rho.apply_channel(&ch, &[q])?;
                    }
                    qubit_time[q] = start;
                }
            }

            // Perfect unitary part of the gate.
            rho.apply_matrix(&gate.matrix()?, qubits)?;

            // Gate noise.
            for (channel, per_qubit) in self.model.channels_for_gate(gate)? {
                if per_qubit {
                    for &q in qubits {
                        rho.apply_channel(&channel, &[q])?;
                    }
                } else {
                    rho.apply_channel(&channel, qubits)?;
                }
            }

            if !gate.is_virtual() {
                for &q in qubits {
                    qubit_time[q] += duration;
                }
            }
        }

        // Pad every qubit to the end of the schedule (simultaneous readout).
        if self.model.include_idle_noise {
            let end = qubit_time.iter().copied().fold(0.0f64, f64::max);
            #[allow(clippy::needless_range_loop)]
            for q in 0..n {
                let idle = end - qubit_time[q];
                if let Some(ch) = self.model.idle_channel(idle)? {
                    rho.apply_channel(&ch, &[q])?;
                }
            }
        }
        Ok(rho)
    }

    /// Convenience: runs the circuit and returns the fidelity of the noisy
    /// output against a pure target state.
    ///
    /// # Errors
    ///
    /// Propagates simulation errors and dimension mismatches.
    pub fn run_fidelity(
        &self,
        circuit: &QuantumCircuit,
        target: &Statevector,
    ) -> Result<f64, QsimError> {
        let rho = self.run(circuit)?;
        rho.fidelity_with_pure(&target.to_cvector())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ghz(n: usize) -> QuantumCircuit {
        let mut qc = QuantumCircuit::new(n);
        qc.h(0);
        for q in 1..n {
            qc.cx(q - 1, q);
        }
        qc
    }

    #[test]
    fn ideal_simulation_matches_statevector() {
        let qc = ghz(3);
        let sim = NoisySimulator::ideal();
        let rho = sim.run(&qc).unwrap();
        let sv = Statevector::from_circuit(&qc).unwrap();
        assert!((rho.fidelity_with_pure(&sv.to_cvector()).unwrap() - 1.0).abs() < 1e-10);
        assert!((rho.purity() - 1.0).abs() < 1e-10);
    }

    #[test]
    fn noisy_simulation_reduces_fidelity() {
        let qc = ghz(3);
        let sim = NoisySimulator::new(DeviceNoiseModel::ibm_brisbane_like());
        let sv = Statevector::from_circuit(&qc).unwrap();
        let f = sim.run_fidelity(&qc, &sv).unwrap();
        assert!(f < 1.0);
        assert!(
            f > 0.8,
            "a 3-qubit GHZ should still be high fidelity, got {f}"
        );
    }

    #[test]
    fn deeper_circuits_lose_more_fidelity() {
        // Repeat an identity-equivalent block: the state should stay |00⟩ in
        // the ideal case, but fidelity decays with depth under noise.
        let sim = NoisySimulator::new(DeviceNoiseModel::ibm_brisbane_like());
        let target = Statevector::zero_state(2);
        let mut shallow = QuantumCircuit::new(2);
        shallow.cx(0, 1).cx(0, 1);
        let mut deep = QuantumCircuit::new(2);
        for _ in 0..10 {
            deep.cx(0, 1).cx(0, 1);
        }
        let f_shallow = sim.run_fidelity(&shallow, &target).unwrap();
        let f_deep = sim.run_fidelity(&deep, &target).unwrap();
        assert!(f_deep < f_shallow);
    }

    #[test]
    fn virtual_gates_cost_nothing() {
        let sim = NoisySimulator::new(DeviceNoiseModel::ibm_brisbane_like());
        let mut qc = QuantumCircuit::new(1);
        for _ in 0..50 {
            qc.rz(0.1, 0);
        }
        let rho = sim.run(&qc).unwrap();
        assert!((rho.purity() - 1.0).abs() < 1e-10);
    }

    #[test]
    fn noise_scaling_orders_fidelity() {
        let qc = ghz(2);
        let sv = Statevector::from_circuit(&qc).unwrap();
        let base = DeviceNoiseModel::ibm_brisbane_like();
        let low = NoisySimulator::new(base.scaled(0.5).unwrap())
            .run_fidelity(&qc, &sv)
            .unwrap();
        let high = NoisySimulator::new(base.scaled(4.0).unwrap())
            .run_fidelity(&qc, &sv)
            .unwrap();
        assert!(low > high);
    }

    #[test]
    fn trace_is_preserved_under_noise() {
        let qc = ghz(3);
        let sim = NoisySimulator::new(DeviceNoiseModel::ibm_brisbane_like());
        let rho = sim.run(&qc).unwrap();
        assert!((rho.trace() - 1.0).abs() < 1e-8);
        assert!(rho.is_valid_state(1e-6));
    }
}

//! Error types for the simulators.

use enq_circuit::CircuitError;
use enq_linalg::LinalgError;
use std::error::Error;
use std::fmt;

/// Errors returned by the statevector and density-matrix simulators.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum QsimError {
    /// The supplied state had the wrong dimension for the register.
    DimensionMismatch {
        /// Expected dimension (`2^n`).
        expected: usize,
        /// Found dimension.
        found: usize,
    },
    /// The supplied amplitudes were not normalised.
    NotNormalized {
        /// The squared norm that was found.
        norm_sqr: f64,
    },
    /// A noise channel was not trace preserving (`Σ K†K ≠ I`).
    NotTracePreserving,
    /// A noise or model parameter was outside its valid range.
    InvalidParameter(String),
    /// An underlying linear-algebra operation failed.
    Linalg(LinalgError),
    /// An underlying circuit operation failed.
    Circuit(CircuitError),
}

impl fmt::Display for QsimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QsimError::DimensionMismatch { expected, found } => {
                write!(
                    f,
                    "state dimension mismatch: expected {expected}, found {found}"
                )
            }
            QsimError::NotNormalized { norm_sqr } => {
                write!(f, "state is not normalised (|ψ|² = {norm_sqr})")
            }
            QsimError::NotTracePreserving => write!(f, "kraus operators are not trace preserving"),
            QsimError::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
            QsimError::Linalg(e) => write!(f, "linear algebra error: {e}"),
            QsimError::Circuit(e) => write!(f, "circuit error: {e}"),
        }
    }
}

impl Error for QsimError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            QsimError::Linalg(e) => Some(e),
            QsimError::Circuit(e) => Some(e),
            _ => None,
        }
    }
}

impl From<LinalgError> for QsimError {
    fn from(e: LinalgError) -> Self {
        QsimError::Linalg(e)
    }
}

impl From<CircuitError> for QsimError {
    fn from(e: CircuitError) -> Self {
        QsimError::Circuit(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = QsimError::from(LinalgError::Singular);
        assert!(e.to_string().contains("singular"));
        assert!(e.source().is_some());
        assert!(QsimError::NotTracePreserving.source().is_none());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<QsimError>();
    }
}

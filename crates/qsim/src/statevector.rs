//! Pure-state (statevector) simulation.

use crate::error::QsimError;
use enq_circuit::{Instruction, QuantumCircuit};
use enq_linalg::{CMatrix, CVector, C64};
use rand::Rng;
use std::collections::BTreeMap;

/// A pure `n`-qubit quantum state with amplitudes stored little-endian
/// (qubit 0 is the least significant bit of the basis index).
///
/// # Examples
///
/// ```
/// use enq_circuit::QuantumCircuit;
/// use enq_qsim::Statevector;
///
/// let mut qc = QuantumCircuit::new(2);
/// qc.h(0).cx(0, 1);
/// let state = Statevector::from_circuit(&qc)?;
/// let probs = state.probabilities();
/// assert!((probs[0] - 0.5).abs() < 1e-12);
/// assert!((probs[3] - 0.5).abs() < 1e-12);
/// # Ok::<(), enq_qsim::QsimError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Statevector {
    num_qubits: usize,
    amplitudes: Vec<C64>,
}

impl Statevector {
    /// Creates the all-zeros state `|0…0⟩` on `num_qubits` qubits.
    pub fn zero_state(num_qubits: usize) -> Self {
        let mut amplitudes = vec![C64::ZERO; 1 << num_qubits];
        amplitudes[0] = C64::ONE;
        Self {
            num_qubits,
            amplitudes,
        }
    }

    /// Creates a state from explicit amplitudes.
    ///
    /// # Errors
    ///
    /// Returns [`QsimError::DimensionMismatch`] if the length is not a power
    /// of two and [`QsimError::NotNormalized`] if the squared norm deviates
    /// from 1 by more than `1e-8`.
    pub fn from_amplitudes(amplitudes: Vec<C64>) -> Result<Self, QsimError> {
        let len = amplitudes.len();
        if len == 0 || len & (len - 1) != 0 {
            return Err(QsimError::DimensionMismatch {
                expected: len.next_power_of_two().max(2),
                found: len,
            });
        }
        let norm_sqr: f64 = amplitudes.iter().map(|a| a.norm_sqr()).sum();
        if (norm_sqr - 1.0).abs() > 1e-8 {
            return Err(QsimError::NotNormalized { norm_sqr });
        }
        Ok(Self {
            num_qubits: len.trailing_zeros() as usize,
            amplitudes,
        })
    }

    /// Creates a state by normalising a real-valued amplitude vector, the form
    /// used for amplitude embedding targets.
    ///
    /// # Errors
    ///
    /// Returns [`QsimError::DimensionMismatch`] for a non-power-of-two length
    /// and [`QsimError::InvalidParameter`] for an all-zero vector.
    pub fn from_real_normalized(values: &[f64]) -> Result<Self, QsimError> {
        let len = values.len();
        if len == 0 || len & (len - 1) != 0 {
            return Err(QsimError::DimensionMismatch {
                expected: len.next_power_of_two().max(2),
                found: len,
            });
        }
        let norm: f64 = values.iter().map(|v| v * v).sum::<f64>().sqrt();
        if norm <= 0.0 {
            return Err(QsimError::InvalidParameter(
                "cannot normalise an all-zero amplitude vector".to_string(),
            ));
        }
        let amplitudes = values.iter().map(|&v| C64::real(v / norm)).collect();
        Ok(Self {
            num_qubits: len.trailing_zeros() as usize,
            amplitudes,
        })
    }

    /// Runs a fully bound circuit starting from `|0…0⟩`.
    ///
    /// # Errors
    ///
    /// Returns an error if the circuit still has unbound parameters.
    pub fn from_circuit(circuit: &QuantumCircuit) -> Result<Self, QsimError> {
        let mut state = Self::zero_state(circuit.num_qubits());
        state.apply_circuit(circuit)?;
        Ok(state)
    }

    /// Returns the number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// Returns the dimension `2^n`.
    pub fn dim(&self) -> usize {
        self.amplitudes.len()
    }

    /// Returns the amplitudes as a slice.
    pub fn amplitudes(&self) -> &[C64] {
        &self.amplitudes
    }

    /// Returns the amplitudes as a [`CVector`].
    pub fn to_cvector(&self) -> CVector {
        CVector::new(self.amplitudes.clone())
    }

    /// Returns the probability distribution over computational basis states.
    pub fn probabilities(&self) -> Vec<f64> {
        self.amplitudes.iter().map(|a| a.norm_sqr()).collect()
    }

    /// Applies every instruction of a circuit.
    ///
    /// # Errors
    ///
    /// Returns an error if a gate has unbound parameters or acts outside the
    /// register.
    pub fn apply_circuit(&mut self, circuit: &QuantumCircuit) -> Result<(), QsimError> {
        if circuit.num_qubits() != self.num_qubits {
            return Err(QsimError::DimensionMismatch {
                expected: self.dim(),
                found: 1 << circuit.num_qubits(),
            });
        }
        for inst in circuit.iter() {
            self.apply_instruction(inst)?;
        }
        Ok(())
    }

    /// Applies a single instruction.
    ///
    /// # Errors
    ///
    /// Returns an error for unbound parameters or invalid operands.
    pub fn apply_instruction(&mut self, inst: &Instruction) -> Result<(), QsimError> {
        let m = inst.gate.matrix()?;
        self.apply_matrix(&m, &inst.qubits)
    }

    /// Applies a 1- or 2-qubit gate matrix to the given operand qubits
    /// (little-endian operand convention, as in `enq-circuit`).
    ///
    /// # Errors
    ///
    /// Returns [`QsimError::DimensionMismatch`] if the matrix size does not
    /// match the operand count or an operand is out of range.
    pub fn apply_matrix(&mut self, m: &CMatrix, qubits: &[usize]) -> Result<(), QsimError> {
        for &q in qubits {
            if q >= self.num_qubits {
                return Err(QsimError::DimensionMismatch {
                    expected: self.num_qubits,
                    found: q + 1,
                });
            }
        }
        match qubits.len() {
            1 => {
                if m.nrows() != 2 || m.ncols() != 2 {
                    return Err(QsimError::DimensionMismatch {
                        expected: 2,
                        found: m.nrows(),
                    });
                }
                apply_1q(&mut self.amplitudes, m, qubits[0]);
                Ok(())
            }
            2 => {
                if m.nrows() != 4 || m.ncols() != 4 {
                    return Err(QsimError::DimensionMismatch {
                        expected: 4,
                        found: m.nrows(),
                    });
                }
                apply_2q(&mut self.amplitudes, m, qubits[0], qubits[1]);
                Ok(())
            }
            k => Err(QsimError::InvalidParameter(format!(
                "unsupported gate arity {k}"
            ))),
        }
    }

    /// Returns the overlap fidelity `|⟨self|other⟩|²` with another pure state.
    ///
    /// # Errors
    ///
    /// Returns [`QsimError::DimensionMismatch`] if the dimensions differ.
    pub fn fidelity(&self, other: &Statevector) -> Result<f64, QsimError> {
        if self.dim() != other.dim() {
            return Err(QsimError::DimensionMismatch {
                expected: self.dim(),
                found: other.dim(),
            });
        }
        let ip: C64 = self
            .amplitudes
            .iter()
            .zip(other.amplitudes.iter())
            .map(|(a, b)| a.conj() * *b)
            .sum();
        Ok(ip.norm_sqr())
    }

    /// Returns the expectation value `⟨ψ|M|ψ⟩` of a full-dimension Hermitian
    /// observable.
    ///
    /// # Errors
    ///
    /// Returns [`QsimError::DimensionMismatch`] if the matrix dimension does
    /// not match the state.
    pub fn expectation(&self, observable: &CMatrix) -> Result<f64, QsimError> {
        if observable.nrows() != self.dim() || observable.ncols() != self.dim() {
            return Err(QsimError::DimensionMismatch {
                expected: self.dim(),
                found: observable.nrows(),
            });
        }
        let v = self.to_cvector();
        Ok(v.dot(&observable.matvec(&v))?.re)
    }

    /// Samples measurement outcomes in the computational basis.
    ///
    /// Returns a map from basis-state index to observed count.
    pub fn sample_counts<R: Rng + ?Sized>(
        &self,
        shots: usize,
        rng: &mut R,
    ) -> BTreeMap<usize, usize> {
        let probs = self.probabilities();
        let mut counts = BTreeMap::new();
        for _ in 0..shots {
            let mut r: f64 = rng.gen();
            let mut outcome = probs.len() - 1;
            for (idx, &p) in probs.iter().enumerate() {
                if r < p {
                    outcome = idx;
                    break;
                }
                r -= p;
            }
            *counts.entry(outcome).or_insert(0) += 1;
        }
        counts
    }
}

/// Applies a 2×2 matrix to qubit `q` of a statevector.
pub(crate) fn apply_1q(state: &mut [C64], m: &CMatrix, q: usize) {
    let dim = state.len();
    let stride = 1usize << q;
    let m00 = m[(0, 0)];
    let m01 = m[(0, 1)];
    let m10 = m[(1, 0)];
    let m11 = m[(1, 1)];
    let mut base = 0usize;
    while base < dim {
        for offset in 0..stride {
            let i0 = base + offset;
            let i1 = i0 + stride;
            let a0 = state[i0];
            let a1 = state[i1];
            state[i0] = m00 * a0 + m01 * a1;
            state[i1] = m10 * a0 + m11 * a1;
        }
        base += stride << 1;
    }
}

/// Applies a 4×4 matrix to qubits `(qa, qb)` of a statevector, where `qa` is
/// the least significant gate-local bit.
pub(crate) fn apply_2q(state: &mut [C64], m: &CMatrix, qa: usize, qb: usize) {
    let dim = state.len();
    let mask_a = 1usize << qa;
    let mask_b = 1usize << qb;
    for i in 0..dim {
        if i & mask_a != 0 || i & mask_b != 0 {
            continue;
        }
        let idx = [i, i | mask_a, i | mask_b, i | mask_a | mask_b];
        let old = [state[idx[0]], state[idx[1]], state[idx[2]], state[idx[3]]];
        for (row, &out_idx) in idx.iter().enumerate() {
            let mut acc = C64::ZERO;
            for (col, &value) in old.iter().enumerate() {
                let g = m[(row, col)];
                if g != C64::ZERO {
                    acc += g * value;
                }
            }
            state[out_idx] = acc;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use enq_circuit::Gate;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zero_state_is_basis_zero() {
        let s = Statevector::zero_state(3);
        assert_eq!(s.dim(), 8);
        assert!((s.probabilities()[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn from_amplitudes_checks_norm_and_size() {
        assert!(Statevector::from_amplitudes(vec![C64::ONE, C64::ZERO]).is_ok());
        assert!(Statevector::from_amplitudes(vec![C64::ONE, C64::ONE]).is_err());
        assert!(Statevector::from_amplitudes(vec![C64::ONE; 3]).is_err());
    }

    #[test]
    fn from_real_normalized_normalises() {
        let s = Statevector::from_real_normalized(&[3.0, 0.0, 0.0, 4.0]).unwrap();
        assert!((s.amplitudes()[0].re - 0.6).abs() < 1e-12);
        assert!((s.amplitudes()[3].re - 0.8).abs() < 1e-12);
        assert!(Statevector::from_real_normalized(&[0.0, 0.0]).is_err());
    }

    #[test]
    fn ghz_state_from_circuit() {
        let mut qc = QuantumCircuit::new(3);
        qc.h(0).cx(0, 1).cx(1, 2);
        let s = Statevector::from_circuit(&qc).unwrap();
        let p = s.probabilities();
        assert!((p[0] - 0.5).abs() < 1e-12);
        assert!((p[7] - 0.5).abs() < 1e-12);
        assert!(p[1] < 1e-12);
    }

    #[test]
    fn matches_circuit_reference_implementation() {
        // Cross-check the optimised kernels against QuantumCircuit's own
        // direct statevector evolution.
        let mut qc = QuantumCircuit::new(4);
        qc.h(0)
            .cy(0, 2)
            .rx(0.37, 1)
            .cz(1, 3)
            .ry(-1.2, 2)
            .swap(0, 3)
            .rz(0.9, 3)
            .cx(3, 1);
        let fast = Statevector::from_circuit(&qc).unwrap().to_cvector();
        let reference = qc.statevector_from_zero().unwrap();
        assert!(fast.approx_eq(&reference, 1e-10));
    }

    #[test]
    fn fidelity_of_orthogonal_states_is_zero() {
        let a = Statevector::zero_state(2);
        let mut qc = QuantumCircuit::new(2);
        qc.x(0);
        let b = Statevector::from_circuit(&qc).unwrap();
        assert!(a.fidelity(&b).unwrap() < 1e-15);
        assert!((a.fidelity(&a).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn expectation_of_pauli_z() {
        let s = Statevector::zero_state(1);
        let z = Gate::Z.matrix().unwrap();
        assert!((s.expectation(&z).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn sampling_matches_distribution() {
        let mut qc = QuantumCircuit::new(1);
        qc.h(0);
        let s = Statevector::from_circuit(&qc).unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        let counts = s.sample_counts(4000, &mut rng);
        let zeros = *counts.get(&0).unwrap_or(&0) as f64;
        assert!((zeros / 4000.0 - 0.5).abs() < 0.05);
    }

    #[test]
    fn state_circuit_size_mismatch_errors() {
        let mut s = Statevector::zero_state(2);
        let qc = QuantumCircuit::new(3);
        assert!(s.apply_circuit(&qc).is_err());
    }

    #[test]
    fn apply_matrix_validates_dimensions() {
        let mut s = Statevector::zero_state(2);
        let bad = CMatrix::identity(4);
        assert!(s.apply_matrix(&bad, &[0]).is_err());
        assert!(s.apply_matrix(&CMatrix::identity(2), &[5]).is_err());
    }
}

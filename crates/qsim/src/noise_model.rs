//! Device-level noise models.
//!
//! [`DeviceNoiseModel`] plays the role of qiskit-aer's backend noise model
//! built from `ibm_brisbane` calibration data: per-gate depolarizing error,
//! thermal relaxation for the gate duration, and a readout assignment error.
//! The default parameters follow the published calibration orders of
//! magnitude for IBM Eagle-class devices.

use crate::error::QsimError;
use crate::noise::NoiseChannel;
use enq_circuit::Gate;

/// Error rate and duration of one class of physical gate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GateNoiseSpec {
    /// Depolarizing error probability per gate.
    pub error: f64,
    /// Gate duration in nanoseconds.
    pub duration_ns: f64,
}

/// A device noise model in the style of an IBM Eagle-class backend.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceNoiseModel {
    /// Noise of physical single-qubit gates (`SX`, `X`).
    pub one_qubit: GateNoiseSpec,
    /// Noise of the two-qubit entangler (`ECR`/`CX`).
    pub two_qubit: GateNoiseSpec,
    /// Median qubit T1 relaxation time in microseconds.
    pub t1_us: f64,
    /// Median qubit T2 dephasing time in microseconds.
    pub t2_us: f64,
    /// Readout assignment error probability.
    pub readout_error: f64,
    /// Measurement duration in nanoseconds.
    pub readout_duration_ns: f64,
    /// Whether idle qubits accumulate thermal relaxation while waiting for
    /// other qubits (schedule-aware idling noise).
    pub include_idle_noise: bool,
}

impl DeviceNoiseModel {
    /// A noiseless model (all error rates and durations are zero).
    pub fn ideal() -> Self {
        Self {
            one_qubit: GateNoiseSpec {
                error: 0.0,
                duration_ns: 0.0,
            },
            two_qubit: GateNoiseSpec {
                error: 0.0,
                duration_ns: 0.0,
            },
            t1_us: f64::INFINITY,
            t2_us: f64::INFINITY,
            readout_error: 0.0,
            readout_duration_ns: 0.0,
            include_idle_noise: false,
        }
    }

    /// A noise model with the published calibration magnitudes of
    /// `ibm_brisbane` (127-qubit Eagle r3): ~2.5·10⁻⁴ single-qubit error,
    /// ~7·10⁻³ ECR error, T1 ≈ 220 µs, T2 ≈ 140 µs, 60 ns single-qubit gates,
    /// 660 ns ECR gates, ~1.3 % readout error.
    pub fn ibm_brisbane_like() -> Self {
        Self {
            one_qubit: GateNoiseSpec {
                error: 2.5e-4,
                duration_ns: 60.0,
            },
            two_qubit: GateNoiseSpec {
                error: 7.0e-3,
                duration_ns: 660.0,
            },
            t1_us: 220.0,
            t2_us: 140.0,
            readout_error: 1.3e-2,
            readout_duration_ns: 4000.0,
            include_idle_noise: true,
        }
    }

    /// Returns a copy with every error rate and `1/T1`, `1/T2` scaled by
    /// `factor` (useful for noise-sensitivity sweeps).
    ///
    /// # Errors
    ///
    /// Returns [`QsimError::InvalidParameter`] if `factor` is negative.
    pub fn scaled(&self, factor: f64) -> Result<Self, QsimError> {
        if factor < 0.0 {
            return Err(QsimError::InvalidParameter(
                "noise scale factor must be non-negative".to_string(),
            ));
        }
        let clamp = |p: f64| (p * factor).min(1.0);
        Ok(Self {
            one_qubit: GateNoiseSpec {
                error: clamp(self.one_qubit.error),
                duration_ns: self.one_qubit.duration_ns,
            },
            two_qubit: GateNoiseSpec {
                error: clamp(self.two_qubit.error),
                duration_ns: self.two_qubit.duration_ns,
            },
            t1_us: if factor == 0.0 {
                f64::INFINITY
            } else {
                self.t1_us / factor
            },
            t2_us: if factor == 0.0 {
                f64::INFINITY
            } else {
                self.t2_us / factor
            },
            readout_error: clamp(self.readout_error),
            readout_duration_ns: self.readout_duration_ns,
            include_idle_noise: self.include_idle_noise,
        })
    }

    /// Returns `true` if the model is exactly noiseless.
    pub fn is_ideal(&self) -> bool {
        self.one_qubit.error == 0.0
            && self.two_qubit.error == 0.0
            && self.readout_error == 0.0
            && !self.t1_us.is_finite()
            && !self.t2_us.is_finite()
    }

    /// Returns the duration of a gate in nanoseconds. Virtual gates take no
    /// time.
    pub fn gate_duration_ns(&self, gate: &Gate) -> f64 {
        if gate.is_virtual() {
            0.0
        } else if gate.is_two_qubit() {
            self.two_qubit.duration_ns
        } else {
            self.one_qubit.duration_ns
        }
    }

    /// Returns the depolarizing error probability of a gate. Virtual gates
    /// are error free.
    pub fn gate_error(&self, gate: &Gate) -> f64 {
        if gate.is_virtual() {
            0.0
        } else if gate.is_two_qubit() {
            self.two_qubit.error
        } else {
            self.one_qubit.error
        }
    }

    /// Builds the noise channels to apply after a gate: a depolarizing
    /// channel over the gate's qubits, plus per-qubit thermal relaxation for
    /// the gate duration.
    ///
    /// Returns `(channel, per_qubit)` pairs where `per_qubit = true` means
    /// the channel should be applied to each operand qubit individually.
    ///
    /// # Errors
    ///
    /// Returns [`QsimError::InvalidParameter`] if the model parameters are
    /// out of range.
    pub fn channels_for_gate(&self, gate: &Gate) -> Result<Vec<(NoiseChannel, bool)>, QsimError> {
        let mut out = Vec::new();
        if gate.is_virtual() {
            return Ok(out);
        }
        let error = self.gate_error(gate);
        if error > 0.0 {
            out.push((NoiseChannel::depolarizing(error)?, false));
        }
        let duration = self.gate_duration_ns(gate);
        if duration > 0.0 && self.t1_us.is_finite() {
            out.push((
                NoiseChannel::thermal_relaxation(self.t1_us, self.t2_us, duration)?,
                true,
            ));
        }
        Ok(out)
    }

    /// Builds the idle thermal-relaxation channel for a qubit that waits for
    /// `duration_ns`, or `None` if the model has no decoherence.
    ///
    /// # Errors
    ///
    /// Returns [`QsimError::InvalidParameter`] if the duration is negative.
    pub fn idle_channel(&self, duration_ns: f64) -> Result<Option<NoiseChannel>, QsimError> {
        if duration_ns <= 0.0 || !self.t1_us.is_finite() {
            return Ok(None);
        }
        Ok(Some(NoiseChannel::thermal_relaxation(
            self.t1_us,
            self.t2_us,
            duration_ns,
        )?))
    }
}

impl Default for DeviceNoiseModel {
    fn default() -> Self {
        Self::ibm_brisbane_like()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use enq_circuit::Angle;

    #[test]
    fn ideal_model_has_no_channels() {
        let m = DeviceNoiseModel::ideal();
        assert!(m.is_ideal());
        assert!(m.channels_for_gate(&Gate::Cx).unwrap().is_empty());
        assert!(m.idle_channel(1000.0).unwrap().is_none());
    }

    #[test]
    fn brisbane_like_magnitudes() {
        let m = DeviceNoiseModel::ibm_brisbane_like();
        assert!(m.two_qubit.error > m.one_qubit.error * 10.0);
        assert!(m.two_qubit.duration_ns > m.one_qubit.duration_ns);
        assert!(m.t2_us <= 2.0 * m.t1_us);
        assert!(!m.is_ideal());
    }

    #[test]
    fn virtual_gates_are_free() {
        let m = DeviceNoiseModel::ibm_brisbane_like();
        let rz = Gate::Rz(Angle::fixed(0.3));
        assert_eq!(m.gate_error(&rz), 0.0);
        assert_eq!(m.gate_duration_ns(&rz), 0.0);
        assert!(m.channels_for_gate(&rz).unwrap().is_empty());
    }

    #[test]
    fn two_qubit_gates_get_depolarizing_and_relaxation() {
        let m = DeviceNoiseModel::ibm_brisbane_like();
        let channels = m.channels_for_gate(&Gate::Cx).unwrap();
        assert_eq!(channels.len(), 2);
        assert!(matches!(channels[0].0, NoiseChannel::Depolarizing { .. }));
        assert!(!channels[0].1);
        assert!(matches!(channels[1].0, NoiseChannel::Kraus(_)));
        assert!(channels[1].1);
    }

    #[test]
    fn scaled_model_interpolates() {
        let m = DeviceNoiseModel::ibm_brisbane_like();
        let half = m.scaled(0.5).unwrap();
        assert!((half.two_qubit.error - m.two_qubit.error * 0.5).abs() < 1e-12);
        assert!((half.t1_us - m.t1_us * 2.0).abs() < 1e-9);
        let zero = m.scaled(0.0).unwrap();
        assert!(zero.is_ideal());
        assert!(m.scaled(-1.0).is_err());
    }

    #[test]
    fn default_is_brisbane_like() {
        assert_eq!(
            DeviceNoiseModel::default(),
            DeviceNoiseModel::ibm_brisbane_like()
        );
    }
}

//! Quantum noise channels.
//!
//! The noisy simulations in the paper use a qiskit-aer noise model derived
//! from `ibm_brisbane` calibration data. The channels implemented here are
//! the ones such device models are built from: depolarizing gate error,
//! amplitude/phase damping, and combined thermal relaxation.

use crate::error::QsimError;
use enq_linalg::{CMatrix, C64};

/// A completely-positive trace-preserving map applied after a gate.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum NoiseChannel {
    /// A coherent (unitary) error.
    Unitary(CMatrix),
    /// A general channel given by Kraus operators `ρ → Σ K_i ρ K_i†`.
    Kraus(Vec<CMatrix>),
    /// The depolarizing channel
    /// `ρ → (1−p)·ρ + p·Tr_Q(ρ) ⊗ I/2^{|Q|}` on the gate's qubits.
    Depolarizing {
        /// The depolarizing probability `p ∈ [0, 1]`.
        probability: f64,
    },
}

impl NoiseChannel {
    /// Creates a depolarizing channel with probability `p`.
    ///
    /// # Errors
    ///
    /// Returns [`QsimError::InvalidParameter`] if `p ∉ [0, 1]`.
    pub fn depolarizing(p: f64) -> Result<Self, QsimError> {
        if !(0.0..=1.0).contains(&p) {
            return Err(QsimError::InvalidParameter(format!(
                "depolarizing probability {p} outside [0, 1]"
            )));
        }
        Ok(NoiseChannel::Depolarizing { probability: p })
    }

    /// Creates a single-qubit bit-flip channel: `X` applied with probability
    /// `p`.
    ///
    /// # Errors
    ///
    /// Returns [`QsimError::InvalidParameter`] if `p ∉ [0, 1]`.
    pub fn bit_flip(p: f64) -> Result<Self, QsimError> {
        if !(0.0..=1.0).contains(&p) {
            return Err(QsimError::InvalidParameter(format!(
                "bit-flip probability {p} outside [0, 1]"
            )));
        }
        let x = CMatrix::from_rows(&[&[C64::ZERO, C64::ONE], &[C64::ONE, C64::ZERO]]);
        Ok(NoiseChannel::Kraus(vec![
            CMatrix::identity(2).scale(C64::real((1.0 - p).sqrt())),
            x.scale(C64::real(p.sqrt())),
        ]))
    }

    /// Creates a single-qubit amplitude-damping channel with decay
    /// probability `gamma`.
    ///
    /// # Errors
    ///
    /// Returns [`QsimError::InvalidParameter`] if `gamma ∉ [0, 1]`.
    pub fn amplitude_damping(gamma: f64) -> Result<Self, QsimError> {
        Self::amplitude_phase_damping(gamma, 0.0)
    }

    /// Creates a single-qubit pure phase-damping channel with parameter
    /// `lambda`.
    ///
    /// # Errors
    ///
    /// Returns [`QsimError::InvalidParameter`] if `lambda ∉ [0, 1]`.
    pub fn phase_damping(lambda: f64) -> Result<Self, QsimError> {
        Self::amplitude_phase_damping(0.0, lambda)
    }

    /// Creates the combined amplitude (`a`) and phase (`b`) damping channel
    /// with Kraus operators
    /// `K₀ = diag(1, √(1−a−b))`, `K₁ = √a·|0⟩⟨1|`, `K₂ = √b·|1⟩⟨1|`.
    ///
    /// # Errors
    ///
    /// Returns [`QsimError::InvalidParameter`] unless `a, b ≥ 0` and
    /// `a + b ≤ 1`.
    pub fn amplitude_phase_damping(a: f64, b: f64) -> Result<Self, QsimError> {
        if a < 0.0 || b < 0.0 || a + b > 1.0 + 1e-12 {
            return Err(QsimError::InvalidParameter(format!(
                "damping parameters a={a}, b={b} must be non-negative with a+b ≤ 1"
            )));
        }
        let z = C64::ZERO;
        let k0 = CMatrix::from_diagonal(&[C64::ONE, C64::real((1.0 - a - b).max(0.0).sqrt())]);
        let k1 = CMatrix::from_rows(&[&[z, C64::real(a.sqrt())], &[z, z]]);
        let k2 = CMatrix::from_rows(&[&[z, z], &[z, C64::real(b.sqrt())]]);
        Ok(NoiseChannel::Kraus(vec![k0, k1, k2]))
    }

    /// Creates the thermal-relaxation channel for a qubit idling (or gated)
    /// for `duration_ns` nanoseconds with relaxation times `t1_us` and
    /// `t2_us` (microseconds).
    ///
    /// The population decays as `e^{-t/T1}` and coherences as `e^{-t/T2}`.
    ///
    /// # Errors
    ///
    /// Returns [`QsimError::InvalidParameter`] if `t1 ≤ 0`, `t2 ≤ 0`,
    /// `t2 > 2·t1`, or the duration is negative.
    pub fn thermal_relaxation(t1_us: f64, t2_us: f64, duration_ns: f64) -> Result<Self, QsimError> {
        if t1_us <= 0.0 || t2_us <= 0.0 {
            return Err(QsimError::InvalidParameter(
                "relaxation times must be positive".to_string(),
            ));
        }
        if t2_us > 2.0 * t1_us + 1e-9 {
            return Err(QsimError::InvalidParameter(format!(
                "unphysical relaxation times: T2 = {t2_us} µs exceeds 2·T1 = {} µs",
                2.0 * t1_us
            )));
        }
        if duration_ns < 0.0 {
            return Err(QsimError::InvalidParameter(
                "duration must be non-negative".to_string(),
            ));
        }
        let t_us = duration_ns * 1e-3;
        let a = 1.0 - (-t_us / t1_us).exp();
        // Coherence decay e^{-t/T2} requires 1 - a - b = e^{-2t/T2}.
        let b = (1.0 - a - (-2.0 * t_us / t2_us).exp()).max(0.0);
        Self::amplitude_phase_damping(a, b)
    }

    /// Returns the number of qubits the channel acts on, if it is fixed by
    /// the channel itself (`Kraus`/`Unitary`); `Depolarizing` adapts to the
    /// gate it follows.
    pub fn num_qubits(&self) -> Option<usize> {
        match self {
            NoiseChannel::Unitary(u) => Some((u.nrows().trailing_zeros()) as usize),
            NoiseChannel::Kraus(ops) => ops.first().map(|k| k.nrows().trailing_zeros() as usize),
            NoiseChannel::Depolarizing { .. } => None,
        }
    }

    /// Checks that the channel is (numerically) trace preserving,
    /// `Σ K†K = I`.
    ///
    /// # Errors
    ///
    /// Returns [`QsimError::NotTracePreserving`] when the completeness
    /// relation is violated by more than `1e-8`.
    pub fn validate(&self) -> Result<(), QsimError> {
        match self {
            NoiseChannel::Depolarizing { probability } => {
                if (0.0..=1.0).contains(probability) {
                    Ok(())
                } else {
                    Err(QsimError::NotTracePreserving)
                }
            }
            NoiseChannel::Unitary(u) => {
                if u.is_unitary(1e-8) {
                    Ok(())
                } else {
                    Err(QsimError::NotTracePreserving)
                }
            }
            NoiseChannel::Kraus(ops) => {
                let dim = ops.first().map(|k| k.nrows()).unwrap_or(0);
                if dim == 0 {
                    return Err(QsimError::NotTracePreserving);
                }
                let mut sum = CMatrix::zeros(dim, dim);
                for k in ops {
                    sum = &sum + &k.adjoint().matmul(k);
                }
                if sum.approx_eq(&CMatrix::identity(dim), 1e-8) {
                    Ok(())
                } else {
                    Err(QsimError::NotTracePreserving)
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::density::DensityMatrix;
    use crate::statevector::Statevector;
    use enq_circuit::QuantumCircuit;

    #[test]
    fn constructors_validate_parameters() {
        assert!(NoiseChannel::depolarizing(0.5).is_ok());
        assert!(NoiseChannel::depolarizing(1.5).is_err());
        assert!(NoiseChannel::bit_flip(-0.1).is_err());
        assert!(NoiseChannel::amplitude_phase_damping(0.7, 0.5).is_err());
        assert!(NoiseChannel::thermal_relaxation(-1.0, 1.0, 10.0).is_err());
        assert!(NoiseChannel::thermal_relaxation(100.0, 300.0, 10.0).is_err());
    }

    #[test]
    fn kraus_channels_are_trace_preserving() {
        for ch in [
            NoiseChannel::bit_flip(0.2).unwrap(),
            NoiseChannel::amplitude_damping(0.3).unwrap(),
            NoiseChannel::phase_damping(0.4).unwrap(),
            NoiseChannel::thermal_relaxation(220.0, 140.0, 660.0).unwrap(),
        ] {
            ch.validate().unwrap();
        }
    }

    #[test]
    fn amplitude_damping_decays_excited_population() {
        let mut qc = QuantumCircuit::new(1);
        qc.x(0);
        let mut rho = DensityMatrix::from_statevector(&Statevector::from_circuit(&qc).unwrap());
        rho.apply_channel(&NoiseChannel::amplitude_damping(0.25).unwrap(), &[0])
            .unwrap();
        let p = rho.probabilities();
        assert!((p[1] - 0.75).abs() < 1e-10);
        assert!((p[0] - 0.25).abs() < 1e-10);
    }

    #[test]
    fn phase_damping_kills_coherence_not_population() {
        let mut qc = QuantumCircuit::new(1);
        qc.h(0);
        let mut rho = DensityMatrix::from_statevector(&Statevector::from_circuit(&qc).unwrap());
        rho.apply_channel(&NoiseChannel::phase_damping(1.0).unwrap(), &[0])
            .unwrap();
        let p = rho.probabilities();
        assert!((p[0] - 0.5).abs() < 1e-10);
        assert!((p[1] - 0.5).abs() < 1e-10);
        assert!(rho.as_matrix()[(0, 1)].abs() < 1e-10);
    }

    #[test]
    fn thermal_relaxation_matches_exponential_decay() {
        let t1 = 100.0; // µs
        let t2 = 80.0; // µs
        let duration = 50_000.0; // ns = 50 µs
        let ch = NoiseChannel::thermal_relaxation(t1, t2, duration).unwrap();

        // Excited-state population should decay by e^{-t/T1}.
        let mut qc = QuantumCircuit::new(1);
        qc.x(0);
        let mut rho = DensityMatrix::from_statevector(&Statevector::from_circuit(&qc).unwrap());
        rho.apply_channel(&ch, &[0]).unwrap();
        let expected_pop = (-50.0f64 / t1).exp();
        assert!((rho.probabilities()[1] - expected_pop).abs() < 1e-9);

        // Coherence should decay by e^{-t/T2}.
        let mut qc2 = QuantumCircuit::new(1);
        qc2.h(0);
        let mut rho2 = DensityMatrix::from_statevector(&Statevector::from_circuit(&qc2).unwrap());
        rho2.apply_channel(&ch, &[0]).unwrap();
        let expected_coherence = 0.5 * (-50.0f64 / t2).exp();
        assert!((rho2.as_matrix()[(0, 1)].abs() - expected_coherence).abs() < 1e-9);
    }

    #[test]
    fn zero_duration_relaxation_is_identity() {
        let ch = NoiseChannel::thermal_relaxation(220.0, 140.0, 0.0).unwrap();
        let mut rho = DensityMatrix::zero_state(1);
        let before = rho.clone();
        rho.apply_channel(&ch, &[0]).unwrap();
        assert!(rho.as_matrix().approx_eq(before.as_matrix(), 1e-12));
    }

    #[test]
    fn channel_arity_report() {
        assert_eq!(NoiseChannel::bit_flip(0.1).unwrap().num_qubits(), Some(1));
        assert_eq!(NoiseChannel::depolarizing(0.1).unwrap().num_qubits(), None);
    }
}

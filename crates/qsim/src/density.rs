//! Mixed-state (density-matrix) simulation.

use crate::error::QsimError;
use crate::noise::NoiseChannel;
use crate::statevector::{apply_1q, apply_2q, Statevector};
use enq_linalg::{CMatrix, CVector, C64};

/// An `n`-qubit density matrix `ρ`, stored as a dense `2^n × 2^n` complex
/// matrix (row-major, little-endian basis ordering).
///
/// # Examples
///
/// ```
/// use enq_qsim::{DensityMatrix, Statevector};
/// use enq_circuit::QuantumCircuit;
///
/// let mut qc = QuantumCircuit::new(2);
/// qc.h(0).cx(0, 1);
/// let pure = Statevector::from_circuit(&qc)?;
/// let rho = DensityMatrix::from_statevector(&pure);
/// assert!((rho.purity() - 1.0).abs() < 1e-10);
/// # Ok::<(), enq_qsim::QsimError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DensityMatrix {
    num_qubits: usize,
    data: CMatrix,
}

impl DensityMatrix {
    /// Creates the pure state `|0…0⟩⟨0…0|`.
    pub fn zero_state(num_qubits: usize) -> Self {
        let dim = 1usize << num_qubits;
        let mut data = CMatrix::zeros(dim, dim);
        data[(0, 0)] = C64::ONE;
        Self { num_qubits, data }
    }

    /// Creates the maximally mixed state `I / 2^n`.
    pub fn maximally_mixed(num_qubits: usize) -> Self {
        let dim = 1usize << num_qubits;
        let mut data = CMatrix::zeros(dim, dim);
        let p = C64::real(1.0 / dim as f64);
        for i in 0..dim {
            data[(i, i)] = p;
        }
        Self { num_qubits, data }
    }

    /// Creates `|ψ⟩⟨ψ|` from a pure statevector.
    pub fn from_statevector(state: &Statevector) -> Self {
        let v = state.to_cvector();
        Self {
            num_qubits: state.num_qubits(),
            data: CMatrix::outer(&v, &v),
        }
    }

    /// Creates `|ψ⟩⟨ψ|` from a normalised complex vector.
    ///
    /// # Errors
    ///
    /// Returns [`QsimError::DimensionMismatch`] for a non-power-of-two length
    /// and [`QsimError::NotNormalized`] if the vector is not normalised.
    pub fn from_pure(v: &CVector) -> Result<Self, QsimError> {
        let len = v.len();
        if len == 0 || len & (len - 1) != 0 {
            return Err(QsimError::DimensionMismatch {
                expected: len.next_power_of_two().max(2),
                found: len,
            });
        }
        let norm_sqr = v.norm_sqr();
        if (norm_sqr - 1.0).abs() > 1e-8 {
            return Err(QsimError::NotNormalized { norm_sqr });
        }
        Ok(Self {
            num_qubits: len.trailing_zeros() as usize,
            data: CMatrix::outer(v, v),
        })
    }

    /// Returns the number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// Returns the Hilbert-space dimension `2^n`.
    pub fn dim(&self) -> usize {
        1usize << self.num_qubits
    }

    /// Returns the underlying matrix.
    pub fn as_matrix(&self) -> &CMatrix {
        &self.data
    }

    /// Returns the trace (should be 1 for a valid state).
    pub fn trace(&self) -> f64 {
        self.data.trace().re
    }

    /// Returns the purity `tr(ρ²)`, which is 1 for pure states and `1/2^n`
    /// for the maximally mixed state.
    pub fn purity(&self) -> f64 {
        let dim = self.dim();
        let mut acc = C64::ZERO;
        for i in 0..dim {
            for j in 0..dim {
                acc += self.data[(i, j)] * self.data[(j, i)];
            }
        }
        acc.re
    }

    /// Returns the diagonal as measurement probabilities.
    pub fn probabilities(&self) -> Vec<f64> {
        (0..self.dim()).map(|i| self.data[(i, i)].re).collect()
    }

    /// Returns `true` if the matrix is Hermitian with unit trace (within
    /// `tol`).
    pub fn is_valid_state(&self, tol: f64) -> bool {
        self.data.is_hermitian(tol) && (self.trace() - 1.0).abs() <= tol
    }

    /// Applies a 1- or 2-qubit unitary (or general linear map) `m` on the
    /// given operand qubits: `ρ → M ρ M†`.
    ///
    /// # Errors
    ///
    /// Returns [`QsimError::DimensionMismatch`] for mismatched operands.
    pub fn apply_matrix(&mut self, m: &CMatrix, qubits: &[usize]) -> Result<(), QsimError> {
        self.validate_operands(m, qubits)?;
        let n = self.num_qubits;
        // ρ is stored row-major: index = row · 2^n + col, so the row (ket)
        // bits occupy positions n..2n and the column (bra) bits 0..n.
        let buf = self.data.as_mut_slice();
        let ket_qubits: Vec<usize> = qubits.iter().map(|&q| q + n).collect();
        apply_on_flattened(buf, m, &ket_qubits);
        let conj = m.conj();
        apply_on_flattened(buf, &conj, qubits);
        Ok(())
    }

    /// Applies a noise channel on the given qubits.
    ///
    /// # Errors
    ///
    /// Returns [`QsimError::DimensionMismatch`] if the channel arity does not
    /// match the operand count.
    pub fn apply_channel(
        &mut self,
        channel: &NoiseChannel,
        qubits: &[usize],
    ) -> Result<(), QsimError> {
        match channel {
            NoiseChannel::Unitary(u) => self.apply_matrix(u, qubits),
            NoiseChannel::Kraus(ops) => {
                let dim = self.dim();
                let mut acc = CMatrix::zeros(dim, dim);
                for k in ops {
                    let mut branch = self.clone();
                    branch.apply_matrix(k, qubits)?;
                    acc = &acc + &branch.data;
                }
                self.data = acc;
                Ok(())
            }
            NoiseChannel::Depolarizing { probability } => {
                self.apply_depolarizing(*probability, qubits)
            }
        }
    }

    /// Applies the depolarizing channel
    /// `ρ → (1−p)·ρ + p · Tr_Q(ρ) ⊗ I_Q / 2^{|Q|}` on qubits `Q`.
    fn apply_depolarizing(&mut self, p: f64, qubits: &[usize]) -> Result<(), QsimError> {
        if !(0.0..=1.0).contains(&p) {
            return Err(QsimError::InvalidParameter(format!(
                "depolarizing probability {p} outside [0, 1]"
            )));
        }
        for &q in qubits {
            if q >= self.num_qubits {
                return Err(QsimError::DimensionMismatch {
                    expected: self.num_qubits,
                    found: q + 1,
                });
            }
        }
        if p == 0.0 {
            return Ok(());
        }
        let dim = self.dim();
        let k = qubits.len();
        let sub_dim = 1usize << k;
        let mask: usize = qubits.iter().map(|&q| 1usize << q).sum();
        let mut mixed = CMatrix::zeros(dim, dim);
        // mixed[i][j] = δ(i_Q, j_Q)/2^k · Σ_x ρ[i with Q=x][j with Q=x]
        for i in 0..dim {
            for j in 0..dim {
                if (i & mask) != (j & mask) {
                    continue;
                }
                let mut acc = C64::ZERO;
                for x in 0..sub_dim {
                    let mut bits = 0usize;
                    for (pos, &q) in qubits.iter().enumerate() {
                        if (x >> pos) & 1 == 1 {
                            bits |= 1usize << q;
                        }
                    }
                    let ii = (i & !mask) | bits;
                    let jj = (j & !mask) | bits;
                    acc += self.data[(ii, jj)];
                }
                mixed[(i, j)] = acc / sub_dim as f64;
            }
        }
        let keep = C64::real(1.0 - p);
        let mix = C64::real(p);
        self.data = &self.data.scale(keep) + &mixed.scale(mix);
        Ok(())
    }

    /// Returns the fidelity `⟨ψ|ρ|ψ⟩` against a pure reference state. This is
    /// the fast path used throughout the paper, where the desired state is
    /// always pure.
    ///
    /// # Errors
    ///
    /// Returns [`QsimError::DimensionMismatch`] if the dimensions differ.
    pub fn fidelity_with_pure(&self, psi: &CVector) -> Result<f64, QsimError> {
        if psi.len() != self.dim() {
            return Err(QsimError::DimensionMismatch {
                expected: self.dim(),
                found: psi.len(),
            });
        }
        let rho_psi = self.data.matvec(psi);
        Ok(psi.dot(&rho_psi)?.re)
    }

    /// Returns the Jozsa fidelity `F(ρ, σ) = (tr √(√ρ σ √ρ))²` against another
    /// density matrix.
    ///
    /// # Errors
    ///
    /// Returns [`QsimError::DimensionMismatch`] for mismatched dimensions or a
    /// linear-algebra error if the eigendecomposition fails.
    pub fn fidelity(&self, other: &DensityMatrix) -> Result<f64, QsimError> {
        if self.dim() != other.dim() {
            return Err(QsimError::DimensionMismatch {
                expected: self.dim(),
                found: other.dim(),
            });
        }
        let sqrt_rho = enq_linalg::psd_sqrt(&self.data)?;
        let inner = sqrt_rho.matmul(&other.data).matmul(&sqrt_rho);
        // Symmetrise against round-off before taking the PSD square root.
        let sym = &inner + &inner.adjoint();
        let sym = sym.scale(C64::real(0.5));
        let t = enq_linalg::trace_sqrt(&sym)?;
        Ok(t * t)
    }

    fn validate_operands(&self, m: &CMatrix, qubits: &[usize]) -> Result<(), QsimError> {
        let expected_dim = 1usize << qubits.len();
        if m.nrows() != expected_dim || m.ncols() != expected_dim {
            return Err(QsimError::DimensionMismatch {
                expected: expected_dim,
                found: m.nrows(),
            });
        }
        if qubits.is_empty() || qubits.len() > 2 {
            return Err(QsimError::InvalidParameter(format!(
                "unsupported gate arity {}",
                qubits.len()
            )));
        }
        for &q in qubits {
            if q >= self.num_qubits {
                return Err(QsimError::DimensionMismatch {
                    expected: self.num_qubits,
                    found: q + 1,
                });
            }
        }
        Ok(())
    }
}

/// Applies a 1- or 2-qubit matrix to the flattened density-matrix buffer,
/// treating it as a `2n`-qubit statevector.
fn apply_on_flattened(buf: &mut [C64], m: &CMatrix, qubits: &[usize]) {
    match qubits.len() {
        1 => apply_1q(buf, m, qubits[0]),
        2 => apply_2q(buf, m, qubits[0], qubits[1]),
        _ => unreachable!("operand arity validated by caller"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use enq_circuit::{Gate, QuantumCircuit};

    fn bell_density() -> DensityMatrix {
        let mut qc = QuantumCircuit::new(2);
        qc.h(0).cx(0, 1);
        DensityMatrix::from_statevector(&Statevector::from_circuit(&qc).unwrap())
    }

    #[test]
    fn zero_state_properties() {
        let rho = DensityMatrix::zero_state(3);
        assert!((rho.trace() - 1.0).abs() < 1e-12);
        assert!((rho.purity() - 1.0).abs() < 1e-12);
        assert!(rho.is_valid_state(1e-10));
    }

    #[test]
    fn maximally_mixed_purity() {
        let rho = DensityMatrix::maximally_mixed(2);
        assert!((rho.purity() - 0.25).abs() < 1e-12);
        assert!((rho.trace() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn unitary_evolution_matches_statevector() {
        let mut qc = QuantumCircuit::new(3);
        qc.h(0).cy(0, 1).rx(0.4, 2).cz(1, 2).rz(1.3, 0);
        let sv = Statevector::from_circuit(&qc).unwrap();
        let mut rho = DensityMatrix::zero_state(3);
        for inst in qc.iter() {
            rho.apply_matrix(&inst.gate.matrix().unwrap(), &inst.qubits)
                .unwrap();
        }
        let expected = DensityMatrix::from_statevector(&sv);
        assert!(rho.as_matrix().approx_eq(expected.as_matrix(), 1e-10));
        assert!((rho.fidelity_with_pure(&sv.to_cvector()).unwrap() - 1.0).abs() < 1e-10);
    }

    #[test]
    fn depolarizing_reduces_purity() {
        let mut rho = bell_density();
        rho.apply_channel(&NoiseChannel::Depolarizing { probability: 0.2 }, &[0])
            .unwrap();
        assert!(rho.purity() < 1.0);
        assert!((rho.trace() - 1.0).abs() < 1e-10);
        assert!(rho.is_valid_state(1e-8));
    }

    #[test]
    fn full_depolarizing_gives_maximally_mixed_on_single_qubit() {
        let mut rho = DensityMatrix::zero_state(1);
        rho.apply_channel(&NoiseChannel::Depolarizing { probability: 1.0 }, &[0])
            .unwrap();
        assert!(rho
            .as_matrix()
            .approx_eq(DensityMatrix::maximally_mixed(1).as_matrix(), 1e-10));
    }

    #[test]
    fn kraus_bit_flip_mixes_states() {
        let x = Gate::X.matrix().unwrap();
        let p = 0.3f64;
        let k0 = CMatrix::identity(2).scale(C64::real((1.0 - p).sqrt()));
        let k1 = x.scale(C64::real(p.sqrt()));
        let mut rho = DensityMatrix::zero_state(1);
        rho.apply_channel(&NoiseChannel::Kraus(vec![k0, k1]), &[0])
            .unwrap();
        let probs = rho.probabilities();
        assert!((probs[0] - 0.7).abs() < 1e-10);
        assert!((probs[1] - 0.3).abs() < 1e-10);
    }

    #[test]
    fn fidelity_with_pure_of_identical_state_is_one() {
        let rho = bell_density();
        let mut qc = QuantumCircuit::new(2);
        qc.h(0).cx(0, 1);
        let psi = Statevector::from_circuit(&qc).unwrap().to_cvector();
        assert!((rho.fidelity_with_pure(&psi).unwrap() - 1.0).abs() < 1e-10);
    }

    #[test]
    fn jozsa_fidelity_matches_pure_overlap() {
        let rho = bell_density();
        let sigma = DensityMatrix::zero_state(2);
        let jozsa = rho.fidelity(&sigma).unwrap();
        let overlap = rho.fidelity_with_pure(&CVector::basis_state(4, 0)).unwrap();
        assert!(
            (jozsa - overlap).abs() < 1e-6,
            "jozsa {jozsa} overlap {overlap}"
        );
    }

    #[test]
    fn jozsa_fidelity_of_identical_mixed_states_is_one() {
        let mut rho = bell_density();
        rho.apply_channel(&NoiseChannel::Depolarizing { probability: 0.3 }, &[1])
            .unwrap();
        let f = rho.fidelity(&rho.clone()).unwrap();
        assert!((f - 1.0).abs() < 1e-6);
    }

    #[test]
    fn from_pure_validates() {
        assert!(DensityMatrix::from_pure(&CVector::from_real(&[1.0, 1.0])).is_err());
        assert!(DensityMatrix::from_pure(&CVector::from_real(&[1.0, 0.0, 0.0])).is_err());
        assert!(DensityMatrix::from_pure(&CVector::from_real(&[0.6, 0.8])).is_ok());
    }

    #[test]
    fn two_qubit_depolarizing_preserves_trace() {
        let mut rho = bell_density();
        rho.apply_channel(&NoiseChannel::Depolarizing { probability: 0.15 }, &[0, 1])
            .unwrap();
        assert!((rho.trace() - 1.0).abs() < 1e-10);
        assert!(rho.purity() < 1.0);
    }
}

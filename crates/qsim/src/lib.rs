//! # enq-qsim
//!
//! Hand-rolled quantum simulators for the EnQode reproduction:
//!
//! * [`Statevector`] — pure-state simulation used for ideal-simulation
//!   fidelity (Fig. 8a of the paper),
//! * [`DensityMatrix`] + [`NoisySimulator`] — mixed-state simulation with an
//!   `ibm_brisbane`-like [`DeviceNoiseModel`] used for noisy-simulation
//!   fidelity (Fig. 8b),
//! * [`NoiseChannel`] — the depolarizing / damping / thermal-relaxation
//!   channels those models are built from,
//! * pure and Jozsa mixed-state [`fidelity`] measures.
//!
//! ## Example
//!
//! ```
//! use enq_circuit::QuantumCircuit;
//! use enq_qsim::{DeviceNoiseModel, NoisySimulator, Statevector};
//!
//! let mut qc = QuantumCircuit::new(3);
//! qc.h(0).cx(0, 1).cx(1, 2);
//! let ideal = Statevector::from_circuit(&qc)?;
//! let noisy = NoisySimulator::new(DeviceNoiseModel::ibm_brisbane_like());
//! let fidelity = noisy.run_fidelity(&qc, &ideal)?;
//! assert!(fidelity > 0.5 && fidelity < 1.0);
//! # Ok::<(), enq_qsim::QsimError>(())
//! ```

#![warn(missing_docs)]

mod density;
mod error;
pub mod fidelity;
mod noise;
mod noise_model;
mod noisy_sim;
mod statevector;

pub use density::DensityMatrix;
pub use error::QsimError;
pub use fidelity::{mixed_fidelity, pure_fidelity, pure_mixed_fidelity};
pub use noise::NoiseChannel;
pub use noise_model::{DeviceNoiseModel, GateNoiseSpec};
pub use noisy_sim::NoisySimulator;
pub use statevector::Statevector;

#[cfg(test)]
mod proptests {
    use super::*;
    use enq_circuit::QuantumCircuit;
    use proptest::prelude::*;

    fn arb_circuit(n: usize, max_len: usize) -> impl Strategy<Value = QuantumCircuit> {
        proptest::collection::vec((0..6u8, 0..n, 0..n, -3.0..3.0f64), 1..max_len).prop_map(
            move |ops| {
                let mut qc = QuantumCircuit::new(n);
                for (kind, a, b, angle) in ops {
                    let b = if a == b { (b + 1) % n } else { b };
                    match kind {
                        0 => {
                            qc.h(a);
                        }
                        1 => {
                            qc.rx(angle, a);
                        }
                        2 => {
                            qc.rz(angle, a);
                        }
                        3 => {
                            qc.cx(a, b);
                        }
                        4 => {
                            qc.cy(a, b);
                        }
                        _ => {
                            qc.ry(angle, a);
                        }
                    }
                }
                qc
            },
        )
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn statevector_stays_normalised(qc in arb_circuit(3, 12)) {
            let sv = Statevector::from_circuit(&qc).unwrap();
            let norm: f64 = sv.probabilities().iter().sum();
            prop_assert!((norm - 1.0).abs() < 1e-9);
        }

        #[test]
        fn ideal_density_matches_statevector(qc in arb_circuit(3, 8)) {
            let sv = Statevector::from_circuit(&qc).unwrap();
            let rho = NoisySimulator::ideal().run(&qc).unwrap();
            let f = rho.fidelity_with_pure(&sv.to_cvector()).unwrap();
            prop_assert!((f - 1.0).abs() < 1e-8);
        }

        #[test]
        fn noisy_fidelity_is_bounded(qc in arb_circuit(3, 8)) {
            let sv = Statevector::from_circuit(&qc).unwrap();
            let sim = NoisySimulator::new(DeviceNoiseModel::ibm_brisbane_like());
            let f = sim.run_fidelity(&qc, &sv).unwrap();
            prop_assert!(f <= 1.0 + 1e-9);
            prop_assert!(f >= 0.0);
        }

        #[test]
        fn noisy_state_remains_physical(qc in arb_circuit(3, 8)) {
            let sim = NoisySimulator::new(DeviceNoiseModel::ibm_brisbane_like());
            let rho = sim.run(&qc).unwrap();
            prop_assert!(rho.is_valid_state(1e-6));
            prop_assert!(rho.purity() <= 1.0 + 1e-9);
            prop_assert!(rho.purity() >= 1.0 / rho.dim() as f64 - 1e-9);
        }

        #[test]
        fn noise_never_increases_fidelity_above_ideal(qc in arb_circuit(2, 8)) {
            let sv = Statevector::from_circuit(&qc).unwrap();
            let noisy = NoisySimulator::new(DeviceNoiseModel::ibm_brisbane_like())
                .run_fidelity(&qc, &sv)
                .unwrap();
            prop_assert!(noisy <= 1.0 + 1e-9);
        }
    }
}

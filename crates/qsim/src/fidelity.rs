//! State fidelity measures.
//!
//! The paper's headline metric is the mixed-state fidelity of Jozsa,
//! `F(ρ, σ) = (tr √(√ρ σ √ρ))²`, evaluated between the desired (pure)
//! amplitude-embedded state and the simulated (possibly noisy) output.

use crate::density::DensityMatrix;
use crate::error::QsimError;
use crate::statevector::Statevector;
use enq_linalg::CVector;

/// Returns the fidelity `|⟨a|b⟩|²` between two pure states.
///
/// # Errors
///
/// Returns [`QsimError::DimensionMismatch`] if the dimensions differ.
pub fn pure_fidelity(a: &Statevector, b: &Statevector) -> Result<f64, QsimError> {
    a.fidelity(b)
}

/// Returns the fidelity `⟨ψ|ρ|ψ⟩` between a pure reference and a mixed state.
///
/// # Errors
///
/// Returns [`QsimError::DimensionMismatch`] if the dimensions differ.
pub fn pure_mixed_fidelity(psi: &CVector, rho: &DensityMatrix) -> Result<f64, QsimError> {
    rho.fidelity_with_pure(psi)
}

/// Returns the Jozsa fidelity between two density matrices.
///
/// # Errors
///
/// Returns [`QsimError::DimensionMismatch`] for mismatched dimensions or a
/// linear-algebra error from the eigendecomposition.
pub fn mixed_fidelity(rho: &DensityMatrix, sigma: &DensityMatrix) -> Result<f64, QsimError> {
    rho.fidelity(sigma)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::noise::NoiseChannel;
    use enq_circuit::QuantumCircuit;

    #[test]
    fn pure_fidelity_bounds() {
        let mut qc = QuantumCircuit::new(2);
        qc.h(0).cx(0, 1);
        let bell = Statevector::from_circuit(&qc).unwrap();
        let zero = Statevector::zero_state(2);
        let f = pure_fidelity(&bell, &zero).unwrap();
        assert!((f - 0.5).abs() < 1e-12);
        assert!((pure_fidelity(&bell, &bell).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn mixed_fidelity_consistent_with_pure_mixed() {
        let mut qc = QuantumCircuit::new(2);
        qc.h(0).cx(0, 1);
        let bell = Statevector::from_circuit(&qc).unwrap();
        let mut rho = DensityMatrix::from_statevector(&bell);
        rho.apply_channel(&NoiseChannel::depolarizing(0.2).unwrap(), &[0])
            .unwrap();
        let f_fast = pure_mixed_fidelity(&bell.to_cvector(), &rho).unwrap();
        let f_jozsa = mixed_fidelity(&DensityMatrix::from_statevector(&bell), &rho).unwrap();
        assert!((f_fast - f_jozsa).abs() < 1e-6);
    }

    #[test]
    fn fidelity_with_maximally_mixed_is_uniform() {
        let psi = Statevector::zero_state(2);
        let mixed = DensityMatrix::maximally_mixed(2);
        let f = pure_mixed_fidelity(&psi.to_cvector(), &mixed).unwrap();
        assert!((f - 0.25).abs() < 1e-12);
    }
}

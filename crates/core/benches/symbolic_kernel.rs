//! Micro-benchmark of the symbolic evaluation core at the paper shape
//! (8 qubits, 8 layers): the sparse Walsh-spectrum kernel vs the retained
//! naive dense-walk reference, plus the allocation-free workspace paths the
//! optimiser actually drives.
//!
//! Run with `cargo bench -p enqode --bench symbolic_kernel`. The final
//! section prints the ratios checked by the acceptance criteria: the
//! naive/sparse speedup (≥ 3×), the forced-scalar/SIMD dispatch speedup
//! (≥ 1.5×), and the batched-B=16/solo-loop speedup (≥ 1.3×), all at the
//! paper shape. After touching any kernel, regenerate `BENCH_symbolic.json`
//! from these numbers — the `bench_check` gates read the committed file.

use criterion::{criterion_group, criterion_main, Criterion};
use enq_linalg::C64;
use enq_simd::ComputeBackend;
use enqode::{AnsatzConfig, EntanglerKind, SymbolicBatch, SymbolicState, SymbolicWorkspace};
use std::hint::black_box;
use std::time::{Duration, Instant};

fn paper_shape() -> (SymbolicState, Vec<f64>, Vec<C64>) {
    let config = AnsatzConfig {
        num_qubits: 8,
        num_layers: 8,
        entangler: EntanglerKind::Cy,
    };
    let symbolic = SymbolicState::from_ansatz(&config).expect("paper shape is valid");
    let theta: Vec<f64> = (0..config.num_parameters())
        .map(|j| 0.11 * j as f64 - 1.7)
        .collect();
    let target_conj: Vec<C64> = (0..symbolic.dim())
        .map(|r| {
            let x = r as f64;
            C64::new((x * 0.37).sin() * 0.6, (x * 0.81).cos() * 0.4)
        })
        .collect();
    (symbolic, theta, target_conj)
}

fn bench_kernels(c: &mut Criterion) {
    let (symbolic, theta, target_conj) = paper_shape();
    let mut ws = SymbolicWorkspace::for_state(&symbolic);
    let mut gradient = vec![C64::ZERO; symbolic.num_parameters()];

    let mut group = c.benchmark_group("symbolic_kernel_8q8l");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(2));
    group.bench_function("overlap_and_gradient_naive_dense", |b| {
        b.iter(|| {
            black_box(
                symbolic
                    .overlap_and_gradient_naive(black_box(&target_conj), black_box(&theta))
                    .unwrap(),
            )
        })
    });
    group.bench_function("overlap_and_gradient_sparse_workspace", |b| {
        b.iter(|| {
            black_box(
                symbolic
                    .overlap_and_gradient_into(
                        black_box(&target_conj),
                        black_box(&theta),
                        &mut ws,
                        &mut gradient,
                    )
                    .unwrap(),
            )
        })
    });
    group.bench_function("overlap_only_sparse_workspace", |b| {
        b.iter(|| {
            black_box(
                symbolic
                    .overlap_into(black_box(&target_conj), black_box(&theta), &mut ws)
                    .unwrap(),
            )
        })
    });
    group.bench_function("amplitudes", |b| {
        b.iter(|| black_box(symbolic.amplitudes(black_box(&theta)).unwrap()))
    });
    group.finish();

    // Headline ratio for the acceptance criteria and BENCH_symbolic.json.
    let time_per_iter = |mut f: Box<dyn FnMut()>| -> f64 {
        // Calibrate to ~200ms of work, then time three batches and keep the
        // fastest (least-noise) estimate.
        let calib_start = Instant::now();
        let mut calib_iters = 0u64;
        while calib_start.elapsed() < Duration::from_millis(50) {
            f();
            calib_iters += 1;
        }
        let iters = calib_iters.max(1) * 4;
        // Best-of-7: the container shares cores, so a timing batch can land
        // in an interference window; the minimum over several batches is a
        // robust estimate of the undisturbed cost.
        let mut best = f64::INFINITY;
        for _ in 0..7 {
            let start = Instant::now();
            for _ in 0..iters {
                f();
            }
            best = best.min(start.elapsed().as_secs_f64() / iters as f64);
        }
        best
    };

    let (s2, theta2, target2) = paper_shape();
    let naive = {
        let (s, t, y) = (s2.clone(), theta2.clone(), target2.clone());
        time_per_iter(Box::new(move || {
            black_box(
                s.overlap_and_gradient_naive(black_box(&y), black_box(&t))
                    .unwrap(),
            );
        }))
    };
    let sparse = {
        let (s, t, y) = (s2.clone(), theta2, target2);
        let mut ws = SymbolicWorkspace::for_state(&s);
        let mut grad = vec![C64::ZERO; s.num_parameters()];
        time_per_iter(Box::new(move || {
            black_box(
                s.overlap_and_gradient_into(black_box(&y), black_box(&t), &mut ws, &mut grad)
                    .unwrap(),
            );
        }))
    };
    println!(
        "\nsymbolic overlap+gradient @ 8 qubits x 8 layers: naive {:.3} µs, sparse {:.3} µs, speedup {:.2}x",
        naive * 1e6,
        sparse * 1e6,
        naive / sparse
    );
    println!(
        "BENCH{{\"name\":\"symbolic_kernel_8q8l/speedup\",\"naive_s\":{naive:e},\"sparse_s\":{sparse:e},\"ratio\":{:.3}}}",
        naive / sparse
    );
    assert!(
        naive / sparse >= 3.0,
        "acceptance criterion: sparse kernel must be >= 3x the naive dense reference (got {:.2}x)",
        naive / sparse
    );

    // Dispatch leg: the same sparse kernel under the forced scalar backend
    // vs the runtime-detected SIMD one (bit-identical outputs, pure speed).
    let time_sparse_under = |backend: ComputeBackend| -> f64 {
        let (s, t, y) = paper_shape();
        let mut ws = SymbolicWorkspace::for_state(&s);
        let mut grad = vec![C64::ZERO; s.num_parameters()];
        enq_simd::force_backend(Some(backend));
        let per_iter = time_per_iter(Box::new(move || {
            black_box(
                s.overlap_and_gradient_into(black_box(&y), black_box(&t), &mut ws, &mut grad)
                    .unwrap(),
            );
        }));
        enq_simd::force_backend(None);
        per_iter
    };
    let scalar_sparse = time_sparse_under(ComputeBackend::Scalar);
    let simd_sparse = time_sparse_under(enq_simd::detect());
    let simd_speedup = scalar_sparse / simd_sparse;
    println!(
        "symbolic dispatch @ paper shape: scalar {:.3} µs, {} {:.3} µs, simd_speedup {:.2}x",
        scalar_sparse * 1e6,
        enq_simd::detect().name(),
        simd_sparse * 1e6,
        simd_speedup
    );
    println!(
        "BENCH{{\"name\":\"symbolic_kernel_8q8l/simd_speedup\",\"scalar_s\":{scalar_sparse:e},\"simd_s\":{simd_sparse:e},\"ratio\":{simd_speedup:.3}}}"
    );
    if enq_simd::detect() != ComputeBackend::Scalar {
        assert!(
            simd_speedup >= 1.5,
            "acceptance criterion: SIMD dispatch must be >= 1.5x the forced scalar sparse kernel (got {simd_speedup:.2}x)"
        );
    }

    // Batched leg: B=16 problems per Walsh sweep vs the per-request solo
    // loop the micro-batcher replaces — each request brings its own target
    // and workspace; the batch answers the same B requests in one sweep
    // (every lane bit-identical to the corresponding solo call).
    const B: usize = 16;
    let per_request_targets = |base: &[C64]| -> Vec<Vec<C64>> {
        (0..B)
            .map(|b| {
                base.iter()
                    .map(|t| C64::new(t.re + 0.001 * b as f64, t.im - 0.001 * b as f64))
                    .collect()
            })
            .collect()
    };
    let batched = {
        let (s, theta, target) = paper_shape();
        let p = s.num_parameters();
        let targets = per_request_targets(&target);
        let target_refs: Vec<&[C64]> = targets.iter().map(|t| t.as_slice()).collect();
        let mut batch = SymbolicBatch::new(&s, &target_refs).expect("paper-shape batch");
        let thetas: Vec<f64> = (0..B)
            .flat_map(|b| theta.iter().map(move |t| t + 0.01 * b as f64))
            .collect();
        let mut overlaps = vec![C64::ZERO; B];
        let mut gradients = vec![C64::ZERO; B * p];
        time_per_iter(Box::new(move || {
            batch
                .overlap_and_gradient(black_box(&thetas), &mut overlaps, &mut gradients)
                .unwrap();
            black_box(&overlaps);
        }))
    };
    let looped = {
        let (s, theta, target) = paper_shape();
        let p = s.num_parameters();
        let targets = per_request_targets(&target);
        let thetas: Vec<f64> = (0..B)
            .flat_map(|b| theta.iter().map(move |t| t + 0.01 * b as f64))
            .collect();
        let mut workspaces: Vec<SymbolicWorkspace> =
            (0..B).map(|_| SymbolicWorkspace::for_state(&s)).collect();
        let mut grad = vec![C64::ZERO; p];
        time_per_iter(Box::new(move || {
            for b in 0..B {
                black_box(
                    s.overlap_and_gradient_into(
                        black_box(&targets[b]),
                        black_box(&thetas[b * p..(b + 1) * p]),
                        &mut workspaces[b],
                        &mut grad,
                    )
                    .unwrap(),
                );
            }
        }))
    };
    let batched_speedup = looped / batched;
    println!(
        "batched transform @ paper shape, B={B}: looped {:.3} µs, batched {:.3} µs, batched_speedup {:.2}x",
        looped * 1e6,
        batched * 1e6,
        batched_speedup
    );
    println!(
        "BENCH{{\"name\":\"symbolic_kernel_8q8l/batched_speedup\",\"looped_s\":{looped:e},\"batched_s\":{batched:e},\"ratio\":{batched_speedup:.3}}}"
    );
    assert!(
        batched_speedup >= 1.3,
        "acceptance criterion: B={B} batched transform must be >= 1.3x the solo-call loop (got {batched_speedup:.2}x)"
    );
}

criterion_group!(benches, bench_kernels);
criterion_main!(benches);

//! Micro-benchmark of the symbolic evaluation core at the paper shape
//! (8 qubits, 8 layers): the sparse Walsh-spectrum kernel vs the retained
//! naive dense-walk reference, plus the allocation-free workspace paths the
//! optimiser actually drives.
//!
//! Run with `cargo bench -p enqode --bench symbolic_kernel`. The final
//! section prints the naive/sparse speedup ratio checked by the acceptance
//! criteria (≥ 3× at the paper shape).

use criterion::{criterion_group, criterion_main, Criterion};
use enq_linalg::C64;
use enqode::{AnsatzConfig, EntanglerKind, SymbolicState, SymbolicWorkspace};
use std::hint::black_box;
use std::time::{Duration, Instant};

fn paper_shape() -> (SymbolicState, Vec<f64>, Vec<C64>) {
    let config = AnsatzConfig {
        num_qubits: 8,
        num_layers: 8,
        entangler: EntanglerKind::Cy,
    };
    let symbolic = SymbolicState::from_ansatz(&config).expect("paper shape is valid");
    let theta: Vec<f64> = (0..config.num_parameters())
        .map(|j| 0.11 * j as f64 - 1.7)
        .collect();
    let target_conj: Vec<C64> = (0..symbolic.dim())
        .map(|r| {
            let x = r as f64;
            C64::new((x * 0.37).sin() * 0.6, (x * 0.81).cos() * 0.4)
        })
        .collect();
    (symbolic, theta, target_conj)
}

fn bench_kernels(c: &mut Criterion) {
    let (symbolic, theta, target_conj) = paper_shape();
    let mut ws = SymbolicWorkspace::for_state(&symbolic);
    let mut gradient = vec![C64::ZERO; symbolic.num_parameters()];

    let mut group = c.benchmark_group("symbolic_kernel_8q8l");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(2));
    group.bench_function("overlap_and_gradient_naive_dense", |b| {
        b.iter(|| {
            black_box(
                symbolic
                    .overlap_and_gradient_naive(black_box(&target_conj), black_box(&theta))
                    .unwrap(),
            )
        })
    });
    group.bench_function("overlap_and_gradient_sparse_workspace", |b| {
        b.iter(|| {
            black_box(
                symbolic
                    .overlap_and_gradient_into(
                        black_box(&target_conj),
                        black_box(&theta),
                        &mut ws,
                        &mut gradient,
                    )
                    .unwrap(),
            )
        })
    });
    group.bench_function("overlap_only_sparse_workspace", |b| {
        b.iter(|| {
            black_box(
                symbolic
                    .overlap_into(black_box(&target_conj), black_box(&theta), &mut ws)
                    .unwrap(),
            )
        })
    });
    group.bench_function("amplitudes", |b| {
        b.iter(|| black_box(symbolic.amplitudes(black_box(&theta)).unwrap()))
    });
    group.finish();

    // Headline ratio for the acceptance criteria and BENCH_symbolic.json.
    let time_per_iter = |mut f: Box<dyn FnMut()>| -> f64 {
        // Calibrate to ~200ms of work, then time three batches and keep the
        // fastest (least-noise) estimate.
        let calib_start = Instant::now();
        let mut calib_iters = 0u64;
        while calib_start.elapsed() < Duration::from_millis(50) {
            f();
            calib_iters += 1;
        }
        let iters = calib_iters.max(1) * 4;
        let mut best = f64::INFINITY;
        for _ in 0..3 {
            let start = Instant::now();
            for _ in 0..iters {
                f();
            }
            best = best.min(start.elapsed().as_secs_f64() / iters as f64);
        }
        best
    };

    let (s2, theta2, target2) = paper_shape();
    let naive = {
        let (s, t, y) = (s2.clone(), theta2.clone(), target2.clone());
        time_per_iter(Box::new(move || {
            black_box(
                s.overlap_and_gradient_naive(black_box(&y), black_box(&t))
                    .unwrap(),
            );
        }))
    };
    let sparse = {
        let (s, t, y) = (s2.clone(), theta2, target2);
        let mut ws = SymbolicWorkspace::for_state(&s);
        let mut grad = vec![C64::ZERO; s.num_parameters()];
        time_per_iter(Box::new(move || {
            black_box(
                s.overlap_and_gradient_into(black_box(&y), black_box(&t), &mut ws, &mut grad)
                    .unwrap(),
            );
        }))
    };
    println!(
        "\nsymbolic overlap+gradient @ 8 qubits x 8 layers: naive {:.3} µs, sparse {:.3} µs, speedup {:.2}x",
        naive * 1e6,
        sparse * 1e6,
        naive / sparse
    );
    println!(
        "BENCH{{\"name\":\"symbolic_kernel_8q8l/speedup\",\"naive_s\":{naive:e},\"sparse_s\":{sparse:e},\"ratio\":{:.3}}}",
        naive / sparse
    );
    assert!(
        naive / sparse >= 3.0,
        "acceptance criterion: sparse kernel must be >= 3x the naive dense reference (got {:.2}x)",
        naive / sparse
    );
}

criterion_group!(benches, bench_kernels);
criterion_main!(benches);

//! Per-sample evaluation used to regenerate the paper's figures: transpiled
//! circuit metrics, ideal-simulation fidelity, noisy-simulation fidelity, and
//! compilation time.

use crate::baseline::{target_state, BaselineEmbedder};
use crate::error::EnqodeError;
use crate::model::EnqodeModel;
use enq_circuit::{CircuitMetrics, Layout, QuantumCircuit, TranspiledCircuit, Transpiler};
use enq_linalg::{CVector, C64};
use enq_qsim::{NoisySimulator, Statevector};
use std::time::Instant;

/// The evaluation of one sample under one embedding method.
#[derive(Debug, Clone)]
pub struct SampleEvaluation {
    /// Metrics of the hardware-ready (routed + native-basis) circuit.
    pub metrics: CircuitMetrics,
    /// Fidelity of the ideal (noise-free) output against the target state.
    pub ideal_fidelity: f64,
    /// Fidelity of the noisy density-matrix output against the target state,
    /// when a noisy simulator was supplied.
    pub noisy_fidelity: Option<f64>,
    /// Wall-clock time to produce the hardware-ready circuit (synthesis or
    /// online optimisation plus transpilation).
    pub compile_seconds: f64,
}

/// Permutes a logical target state into the physical qubit ordering given by
/// the routing's final layout, so it can be compared against the simulated
/// output of a routed circuit.
fn permute_target(target: &CVector, layout: &Layout, num_qubits: usize) -> CVector {
    let dim = 1usize << num_qubits;
    let mut out = vec![C64::ZERO; dim];
    for (physical_index, slot) in out.iter_mut().enumerate() {
        let mut logical_index = 0usize;
        for p in 0..num_qubits {
            if (physical_index >> p) & 1 == 1 {
                // Every physical qubit in the simulated register hosts a
                // logical qubit (the registers have equal size here).
                let l = layout.logical(p).unwrap_or(p);
                logical_index |= 1 << l;
            }
        }
        *slot = target[logical_index];
    }
    CVector::new(out)
}

/// Computes ideal and (optionally) noisy fidelity of a transpiled circuit
/// against a logical target state.
fn fidelities(
    transpiled: &TranspiledCircuit,
    target: &CVector,
    num_qubits: usize,
    noisy: Option<&NoisySimulator>,
) -> Result<(f64, Option<f64>), EnqodeError> {
    let physical_target = permute_target(target, &transpiled.final_layout, num_qubits);
    let ideal_state = Statevector::from_circuit(&transpiled.circuit)?;
    let ideal = ideal_state
        .to_cvector()
        .overlap_fidelity(&physical_target)?;
    let noisy_fidelity = match noisy {
        Some(sim) => {
            let rho = sim.run(&transpiled.circuit)?;
            Some(rho.fidelity_with_pure(&physical_target)?)
        }
        None => None,
    };
    Ok((ideal, noisy_fidelity))
}

/// Evaluates one sample embedded with EnQode.
///
/// The compile time covers the online optimisation, circuit binding, and
/// transpilation (the paper's "online compilation time").
///
/// # Errors
///
/// Propagates embedding, transpilation, and simulation errors.
pub fn evaluate_enqode_sample(
    model: &EnqodeModel,
    sample: &[f64],
    transpiler: &Transpiler,
    noisy: Option<&NoisySimulator>,
) -> Result<SampleEvaluation, EnqodeError> {
    let start = Instant::now();
    let embedding = model.embed(sample)?;
    let transpiled = transpiler.transpile(&embedding.circuit)?;
    let compile_seconds = start.elapsed().as_secs_f64();
    let target = target_state(sample)?;
    let (ideal, noisy_fidelity) = fidelities(
        &transpiled,
        &target,
        model.config().ansatz.num_qubits,
        noisy,
    )?;
    Ok(SampleEvaluation {
        metrics: transpiled.metrics,
        ideal_fidelity: ideal,
        noisy_fidelity,
        compile_seconds,
    })
}

/// Evaluates one sample embedded with the Baseline (exact state preparation).
///
/// # Errors
///
/// Propagates synthesis, transpilation, and simulation errors.
pub fn evaluate_baseline_sample(
    embedder: &BaselineEmbedder,
    sample: &[f64],
    transpiler: &Transpiler,
    noisy: Option<&NoisySimulator>,
) -> Result<SampleEvaluation, EnqodeError> {
    let start = Instant::now();
    let synthesis = embedder.embed(sample)?;
    let transpiled = transpiler.transpile(&synthesis.circuit)?;
    let compile_seconds = start.elapsed().as_secs_f64();
    let target = target_state(sample)?;
    let (ideal, noisy_fidelity) = fidelities(&transpiled, &target, embedder.num_qubits(), noisy)?;
    Ok(SampleEvaluation {
        metrics: transpiled.metrics,
        ideal_fidelity: ideal,
        noisy_fidelity,
        compile_seconds,
    })
}

/// Returns the logical (un-routed, un-translated) metrics of a circuit, which
/// some ablations report alongside the hardware metrics.
pub fn logical_metrics(circuit: &QuantumCircuit) -> CircuitMetrics {
    CircuitMetrics::of(circuit)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ansatz::{AnsatzConfig, EntanglerKind};
    use crate::model::EnqodeConfig;
    use enq_circuit::Topology;
    use enq_qsim::DeviceNoiseModel;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn samples(n: usize, dim: usize, seed: u64) -> Vec<Vec<f64>> {
        let mut rng = StdRng::seed_from_u64(seed);
        let base: Vec<f64> = (0..dim)
            .map(|i| 0.5 + 0.4 * ((i as f64) * 0.9).sin())
            .collect();
        (0..n)
            .map(|_| {
                base.iter()
                    .map(|v| (v + rng.gen_range(-0.05..0.05)).max(0.0))
                    .collect()
            })
            .collect()
    }

    fn small_model(seed: u64) -> (EnqodeModel, Vec<Vec<f64>>) {
        let data = samples(8, 8, seed);
        let config = EnqodeConfig {
            ansatz: AnsatzConfig {
                num_qubits: 3,
                num_layers: 8,
                entangler: EntanglerKind::Cy,
            },
            fidelity_threshold: 0.9,
            max_clusters: 4,
            offline_max_iterations: 120,
            offline_restarts: 3,
            online_max_iterations: 40,
            offline_rescue: false,
            seed,
        };
        (EnqodeModel::fit(&data, config).unwrap(), data)
    }

    #[test]
    fn enqode_evaluation_reports_consistent_shape_metrics() {
        let (model, data) = small_model(1);
        let transpiler = Transpiler::new(Topology::linear(3));
        let a = evaluate_enqode_sample(&model, &data[0], &transpiler, None).unwrap();
        let b = evaluate_enqode_sample(&model, &data[1], &transpiler, None).unwrap();
        assert_eq!(a.metrics.depth, b.metrics.depth);
        assert_eq!(a.metrics.total_gates, b.metrics.total_gates);
        assert!(a.ideal_fidelity > 0.85);
        assert!(a.noisy_fidelity.is_none());
        assert!(a.compile_seconds > 0.0);
    }

    #[test]
    fn baseline_evaluation_is_exact_in_ideal_simulation() {
        let data = samples(2, 8, 2);
        let transpiler = Transpiler::new(Topology::linear(3));
        let embedder = BaselineEmbedder::new(3);
        let eval = evaluate_baseline_sample(&embedder, &data[0], &transpiler, None).unwrap();
        assert!(
            (eval.ideal_fidelity - 1.0).abs() < 1e-4,
            "baseline should be exact, got {}",
            eval.ideal_fidelity
        );
        assert!(eval.metrics.two_qubit_gates > 0);
    }

    #[test]
    fn noisy_fidelity_is_below_ideal() {
        let (model, data) = small_model(3);
        let transpiler = Transpiler::new(Topology::linear(3));
        let noisy = NoisySimulator::new(DeviceNoiseModel::ibm_brisbane_like());
        let eval = evaluate_enqode_sample(&model, &data[0], &transpiler, Some(&noisy)).unwrap();
        let noisy_f = eval.noisy_fidelity.unwrap();
        assert!(noisy_f < eval.ideal_fidelity + 1e-9);
        assert!(noisy_f > 0.3);
    }

    #[test]
    fn enqode_beats_baseline_under_noise_for_small_example() {
        // Even on 3 qubits the Baseline circuit is deeper than EnQode's fixed
        // ansatz, so under noise EnQode should lose less fidelity relative to
        // its own ideal value.
        let (model, data) = small_model(4);
        let transpiler = Transpiler::new(Topology::linear(3));
        let noisy = NoisySimulator::new(DeviceNoiseModel::ibm_brisbane_like().scaled(4.0).unwrap());
        let embedder = BaselineEmbedder::new(3);
        let e = evaluate_enqode_sample(&model, &data[0], &transpiler, Some(&noisy)).unwrap();
        let b = evaluate_baseline_sample(&embedder, &data[0], &transpiler, Some(&noisy)).unwrap();
        let enqode_drop = e.ideal_fidelity - e.noisy_fidelity.unwrap();
        let baseline_drop = b.ideal_fidelity - b.noisy_fidelity.unwrap();
        assert!(
            enqode_drop < baseline_drop,
            "enqode drop {enqode_drop} vs baseline drop {baseline_drop}"
        );
    }

    #[test]
    fn logical_metrics_helper() {
        let mut qc = QuantumCircuit::new(2);
        qc.sx(0).cx(0, 1);
        let m = logical_metrics(&qc);
        assert_eq!(m.total_gates, 2);
    }
}

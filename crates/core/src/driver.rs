//! The staged out-of-core fit driver.
//!
//! [`StreamDriver`] decomposes the monolithic streaming build into four
//! explicit stages — **Features → Clustering → FidelityAudit → Training** —
//! each independently runnable, timed, and observable through a progress
//! hook. [`crate::EnqodePipeline::build_streaming`] is a thin wrapper that
//! runs all four; benchmarks, services, and tests drive individual stages
//! (e.g. auditing cluster quality without paying for ansatz training, or
//! re-clustering under a new configuration against already-fitted features).
//!
//! Two ingestion optimisations live here:
//!
//! * every pass is **prefetched** ([`enq_data::ChunkPrefetcher`]) so reading
//!   or generating chunk `N + 1` overlaps crunching chunk `N`, and
//! * with [`StreamingFitConfig::spill_features`] the PCA-transformed feature
//!   stream is written once to an mmap-backed `ENQB` temp file, so the many
//!   clustering/audit passes re-read tiny feature records instead of
//!   re-rendering and re-projecting raw samples every pass.
//!
//! Both are bit-identical to the synchronous, re-streaming path (features
//! round-trip losslessly through little-endian `f64` records and chunks
//! arrive in source order).
//!
//! # The streaming fidelity-threshold `k` search
//!
//! The paper grows each class's cluster count until every sample's state
//! fidelity against its nearest cluster mean clears a threshold. In-memory,
//! [`enq_data::fit_with_fidelity_threshold`] re-clusters at increasing `k`;
//! out-of-core, a full re-clustering per candidate `k` is unaffordable.
//! The audit stage instead runs **audit-and-split rounds**: one pass scores
//! every cluster's member fidelities (the closed-form `⟨x̂, ĉ⟩²` bound), then
//! each class splits its *worst* offending cluster by planting a new
//! centroid at that cluster's worst-explained member, re-polishes, and
//! re-audits. Splitting only the per-class argmin cluster makes the state
//! sequence independent of the threshold, so the search is **monotone by
//! construction**: a tighter threshold can only stop later in the same
//! sequence, never with fewer clusters.

use crate::error::EnqodeError;
use crate::model::{EnqodeConfig, EnqodeModel};
use crate::pipeline::{ClassModel, EnqodePipeline, StreamingFitConfig};
use crate::symbolic::SymbolicState;
use enq_data::{
    drive_chunks, embedding_fidelity, BinaryDatasetWriter, BinarySource, DataError,
    FeaturePipeline, IncrementalPca, MiniBatchKMeans, MiniBatchKMeansConfig, SampleChunk,
    SampleSource,
};
use enq_parallel::CancelToken;
use std::collections::{BTreeMap, BTreeSet};
use std::num::NonZeroUsize;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The four stages of a streaming fit, in execution order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamStage {
    /// Incremental PCA + label discovery (and the optional feature spill).
    Features,
    /// Per-class mini-batch k-means with streaming-Lloyd polish.
    Clustering,
    /// Fidelity audit (and adaptive cluster splitting when a threshold is
    /// configured).
    FidelityAudit,
    /// Per-centroid ansatz training.
    Training,
}

impl StreamStage {
    /// Stable lower-case stage name for logs and reports.
    pub fn name(&self) -> &'static str {
        match self {
            StreamStage::Features => "features",
            StreamStage::Clustering => "clustering",
            StreamStage::FidelityAudit => "fidelity-audit",
            StreamStage::Training => "training",
        }
    }
}

/// Timing and progress record of one completed stage.
#[derive(Debug, Clone)]
pub struct StageReport {
    /// Which stage completed.
    pub stage: StreamStage,
    /// Wall-clock duration of the stage.
    pub duration: Duration,
    /// Passes over the sample stream (raw or spilled) the stage performed.
    pub passes_over_source: usize,
    /// Human-readable stage summary (cluster counts, audit rounds, …).
    pub detail: String,
}

/// Audit result for one cluster of one class.
#[derive(Debug, Clone)]
pub struct ClusterAudit {
    /// Members assigned to this cluster during the audit pass.
    pub members: u64,
    /// Minimum member fidelity (`⟨x̂, ĉ⟩²`); `f64::INFINITY` for a cluster
    /// that received no members.
    pub min_fidelity: f64,
    /// Mean member fidelity (`0.0` for an empty cluster).
    pub mean_fidelity: f64,
}

/// Audit results for one class.
#[derive(Debug, Clone)]
pub struct ClassAudit {
    /// The class label.
    pub label: usize,
    /// Per-cluster audit results, in centroid order.
    pub clusters: Vec<ClusterAudit>,
    /// Whether the adaptive search stopped at `max_clusters_per_class`
    /// before every cluster cleared the threshold.
    pub capped: bool,
}

/// The final fidelity audit of a streaming fit.
#[derive(Debug, Clone)]
pub struct FidelityAudit {
    /// Per-class audits, in label order.
    pub classes: Vec<ClassAudit>,
    /// The threshold the adaptive search enforced (`None` for a pure
    /// diagnostic audit).
    pub threshold: Option<f64>,
    /// Audit rounds run (1 = no splits were needed).
    pub rounds: usize,
    /// Total clusters added by splitting.
    pub splits: usize,
}

impl FidelityAudit {
    /// Minimum audited fidelity over every non-empty cluster of every class.
    pub fn min_fidelity(&self) -> f64 {
        self.classes
            .iter()
            .flat_map(|c| c.clusters.iter())
            .filter(|c| c.members > 0)
            .map(|c| c.min_fidelity)
            .fold(f64::INFINITY, f64::min)
    }

    /// Total clusters across all classes.
    pub fn total_clusters(&self) -> usize {
        self.classes.iter().map(|c| c.clusters.len()).sum()
    }

    /// Whether the adaptive postcondition holds: every class either has all
    /// its non-empty clusters at or above the threshold, or stopped at the
    /// per-class cap. Always `true` for a diagnostic audit (no threshold).
    pub fn satisfied(&self) -> bool {
        let Some(threshold) = self.threshold else {
            return true;
        };
        self.classes.iter().all(|class| {
            class.capped
                || class
                    .clusters
                    .iter()
                    .filter(|c| c.members > 0)
                    .all(|c| c.min_fidelity >= threshold)
        })
    }
}

/// A stage-completion progress hook (see [`StreamDriver::set_progress`]).
type ProgressHook<'s> = Box<dyn FnMut(&StageReport) + 's>;

/// Distinguishes concurrently live spill files (multiple drivers in one
/// process).
static SPILL_COUNTER: AtomicU64 = AtomicU64::new(0);

/// A temp file holding the spilled feature stream; removed on drop.
#[derive(Debug)]
struct FeatureSpill {
    path: PathBuf,
}

impl FeatureSpill {
    fn fresh_path() -> PathBuf {
        let mut path = std::env::temp_dir();
        path.push(format!(
            "enq_stream_spill_{}_{}.enqb",
            std::process::id(),
            SPILL_COUNTER.fetch_add(1, Ordering::Relaxed),
        ));
        path
    }
}

impl Drop for FeatureSpill {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

/// Per-cluster accumulator of one audit pass.
#[derive(Debug, Clone)]
struct ClusterStat {
    members: u64,
    fid_sum: f64,
    min_fidelity: f64,
    /// The member realising `min_fidelity` — the split point for an
    /// offending cluster.
    worst_member: Option<Vec<f64>>,
}

impl ClusterStat {
    fn new() -> Self {
        Self {
            members: 0,
            fid_sum: 0.0,
            min_fidelity: f64::INFINITY,
            worst_member: None,
        }
    }
}

/// The staged out-of-core fit driver: **Features → Clustering →
/// FidelityAudit → Training**, each stage independently runnable, timed,
/// and observable, with prefetched ingestion and the optional mmap feature
/// spill (see the module-level docs in `driver.rs` for the full design and
/// the monotonicity argument of the adaptive search).
///
/// # Examples
///
/// Auditing streaming cluster quality without training a single ansatz:
///
/// ```
/// use enq_data::{generate_synthetic, DatasetKind, InMemorySource, SyntheticConfig};
/// use enqode::{AnsatzConfig, EnqodeConfig, StreamDriver, StreamingFitConfig};
///
/// let data = generate_synthetic(
///     DatasetKind::MnistLike,
///     &SyntheticConfig { classes: 2, samples_per_class: 10, seed: 4 },
/// )?;
/// let mut source = InMemorySource::new(&data);
/// let config = EnqodeConfig {
///     ansatz: AnsatzConfig { num_qubits: 3, num_layers: 4, ..Default::default() },
///     seed: 4,
///     ..Default::default()
/// };
/// let stream = StreamingFitConfig {
///     chunk_size: 8,
///     clusters_per_class: 2,
///     fidelity_threshold: Some(0.5),
///     max_clusters_per_class: 4,
///     ..Default::default()
/// };
/// let mut driver = StreamDriver::new(&mut source, config, stream)?;
/// driver.run_features()?;
/// driver.run_clustering()?;
/// driver.run_fidelity_audit()?;
/// let audit = driver.audit().expect("audit ran");
/// assert!(audit.satisfied());
/// # Ok::<(), enqode::EnqodeError>(())
/// ```
pub struct StreamDriver<'s> {
    source: &'s mut dyn SampleSource,
    config: EnqodeConfig,
    stream: StreamingFitConfig,
    threads: NonZeroUsize,
    progress: Option<ProgressHook<'s>>,
    /// Cooperative cancellation flag, polled between chunks, audit rounds,
    /// and training items (see [`StreamDriver::set_cancel`]).
    cancel: Option<CancelToken>,
    /// An adopted, already-fitted feature pipeline: the source is treated as
    /// yielding **feature-space** records and the feature stage skips the
    /// PCA fit (see [`StreamDriver::preset_features`]).
    preset: Option<FeaturePipeline>,
    features: Option<FeaturePipeline>,
    /// Label set discovered by the feature stage — the clustering stage
    /// (re)creates its accumulators from this, so clustering can rerun
    /// even after training consumed the previous accumulators.
    labels: Vec<usize>,
    spill: Option<FeatureSpill>,
    /// The spilled features, opened (and mmapped) once; passes `reset()` it
    /// instead of re-opening the file.
    spill_reader: Option<BinarySource>,
    accumulators: BTreeMap<usize, MiniBatchKMeans>,
    audit: Option<FidelityAudit>,
    reports: Vec<StageReport>,
}

impl std::fmt::Debug for StreamDriver<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StreamDriver")
            .field("stream", &self.stream)
            .field("features_fitted", &self.features.is_some())
            .field("classes", &self.accumulators.len())
            .field("reports", &self.reports)
            .finish_non_exhaustive()
    }
}

impl<'s> StreamDriver<'s> {
    /// Creates a driver with the default worker count.
    ///
    /// # Errors
    ///
    /// Returns configuration errors from the ansatz and
    /// [`StreamingFitConfig::validate`].
    pub fn new(
        source: &'s mut dyn SampleSource,
        config: EnqodeConfig,
        stream: StreamingFitConfig,
    ) -> Result<Self, EnqodeError> {
        Self::with_threads(source, config, stream, enq_parallel::default_threads())
    }

    /// [`StreamDriver::new`] with an explicit worker count (stage results
    /// are bit-identical for every `threads` value).
    ///
    /// # Errors
    ///
    /// Same as [`StreamDriver::new`].
    pub fn with_threads(
        source: &'s mut dyn SampleSource,
        config: EnqodeConfig,
        stream: StreamingFitConfig,
        threads: NonZeroUsize,
    ) -> Result<Self, EnqodeError> {
        config.ansatz.validate()?;
        stream.validate()?;
        Ok(Self {
            source,
            config,
            stream,
            threads,
            progress: None,
            cancel: None,
            preset: None,
            features: None,
            labels: Vec::new(),
            spill: None,
            spill_reader: None,
            accumulators: BTreeMap::new(),
            audit: None,
            reports: Vec::new(),
        })
    }

    /// Installs a progress hook invoked with each stage's [`StageReport`] as
    /// it completes (services use this to surface fit progress; benchmarks
    /// to attribute wall-clock per stage).
    pub fn set_progress(&mut self, hook: impl FnMut(&StageReport) + 's) {
        self.progress = Some(Box::new(hook));
    }

    /// Installs a cooperative cancellation token. The driver polls it at
    /// every natural yield point — per ingested chunk, per audit round, and
    /// per training item — and winds down with [`EnqodeError::Cancelled`]
    /// when it observes the flag. Cancellation never publishes partial
    /// results: the pipeline is only returned by a fully completed
    /// [`StreamDriver::run_training`], and the feature-spill temp file is
    /// removed when the driver drops.
    pub fn set_cancel(&mut self, token: CancelToken) {
        self.cancel = Some(token);
    }

    /// Adopts an already-fitted feature pipeline and treats the source as
    /// yielding **feature-space** records (post-PCA, L2-normalised — exactly
    /// what [`crate::EnqodePipeline::extract_features`] produces, and what a
    /// serving process's traffic accumulator spills to disk).
    ///
    /// With a preset, the feature stage skips the incremental-PCA fit and
    /// runs a single label-discovery pass (merged with the optional verbatim
    /// feature spill); clustering, auditing, and training consume the source
    /// records directly. This is the traffic-refresh path: the model's PCA
    /// basis stays fixed while centroids and ansatz parameters retrain from
    /// live traffic.
    ///
    /// Must be called before [`StreamDriver::run_features`].
    ///
    /// # Errors
    ///
    /// Returns [`EnqodeError::InvalidConfig`] when the pipeline's output
    /// dimension disagrees with the ansatz dimension or with the source's
    /// record dimension.
    pub fn preset_features(&mut self, features: FeaturePipeline) -> Result<(), EnqodeError> {
        let want = self.config.ansatz.dimension();
        if features.output_dim() != want {
            return Err(EnqodeError::InvalidConfig(format!(
                "preset feature pipeline produces {} features but the ansatz embeds {want}",
                features.output_dim()
            )));
        }
        if self.source.feature_dim() != want {
            return Err(EnqodeError::InvalidConfig(format!(
                "preset features require a feature-space source: source records have \
                 dimension {} but the feature space is {want}",
                self.source.feature_dim()
            )));
        }
        self.preset = Some(features);
        Ok(())
    }

    /// A chunk-callback cancellation probe bound to this driver's token.
    fn cancel_probe(&self) -> impl Fn() -> Result<(), DataError> + Send {
        let cancel = self.cancel.clone();
        move || {
            if cancel.as_ref().is_some_and(CancelToken::is_cancelled) {
                Err(DataError::Cancelled)
            } else {
                Ok(())
            }
        }
    }

    /// Stage-boundary cancellation check.
    fn check_cancelled(&self) -> Result<(), EnqodeError> {
        if self.cancel.as_ref().is_some_and(CancelToken::is_cancelled) {
            Err(EnqodeError::Cancelled)
        } else {
            Ok(())
        }
    }

    /// Reports of every stage completed so far, in completion order.
    pub fn reports(&self) -> &[StageReport] {
        &self.reports
    }

    /// The fitted feature pipeline (after [`StreamDriver::run_features`]).
    pub fn features(&self) -> Option<&FeaturePipeline> {
        self.features.as_ref()
    }

    /// The final fidelity audit (after
    /// [`StreamDriver::run_fidelity_audit`]).
    pub fn audit(&self) -> Option<&FidelityAudit> {
        self.audit.as_ref()
    }

    /// Current clusters per class, in label order (after
    /// [`StreamDriver::run_clustering`]; grows during the audit stage's
    /// adaptive splits).
    pub fn clusters_per_class(&self) -> Vec<(usize, usize)> {
        self.accumulators
            .iter()
            .map(|(&label, acc)| (label, acc.num_clusters()))
            .collect()
    }

    fn finish_stage(&mut self, stage: StreamStage, start: Instant, passes: usize, detail: String) {
        let report = StageReport {
            stage,
            duration: start.elapsed(),
            passes_over_source: passes,
            detail,
        };
        if let Some(hook) = self.progress.as_mut() {
            hook(&report);
        }
        self.reports.push(report);
    }

    /// **Stage 1 — Features.** One pass fits the incremental PCA and
    /// discovers the label set; with [`StreamingFitConfig::spill_features`]
    /// a second pass writes the transformed feature stream to an mmap-backed
    /// temp file that all later stages read instead of the raw source.
    ///
    /// Rerunning replaces the fitted features (and invalidates later-stage
    /// state).
    ///
    /// # Errors
    ///
    /// Propagates source and PCA errors; an empty source yields
    /// [`enq_data::DataError::EmptyDataset`].
    pub fn run_features(&mut self) -> Result<(), EnqodeError> {
        self.check_cancelled()?;
        let start = Instant::now();
        let num_features = self.config.ansatz.dimension();
        let chunk_size = self.stream.chunk_size;
        let ingest = self.stream.ingest;
        self.accumulators.clear();
        self.audit = None;
        self.spill = None;
        self.spill_reader = None;
        self.labels.clear();
        let probe = self.cancel_probe();

        if let Some(preset) = self.preset.clone() {
            // Adopted features: the source already yields feature-space
            // records, so one pass discovers the label set and (optionally)
            // spills the records verbatim — no PCA fit at all.
            let mut label_set = BTreeSet::new();
            let spill = self.stream.spill_features.then(|| FeatureSpill {
                path: FeatureSpill::fresh_path(),
            });
            let mut writer = spill
                .as_ref()
                .map(|s| BinaryDatasetWriter::create(&s.path, num_features, true))
                .transpose()?;
            self.source.reset()?;
            drive_chunks(&mut *self.source, chunk_size, ingest, |chunk| {
                probe()?;
                label_set.extend(chunk.labels().iter().copied());
                if let Some(writer) = writer.as_mut() {
                    for (sample, &label) in chunk.samples().iter().zip(chunk.labels()) {
                        writer.append(sample, label)?;
                    }
                }
                Ok(())
            })
            .map_err(EnqodeError::from)?;
            if label_set.is_empty() {
                return Err(EnqodeError::Data(DataError::EmptyDataset));
            }
            if let Some(writer) = writer {
                writer.finish()?;
                let spill = spill.expect("writer implies spill");
                self.spill_reader = Some(BinarySource::open(&spill.path)?);
                self.spill = Some(spill);
            }
            let detail = format!(
                "{} classes, {} features (preset pipeline, PCA fit skipped){}",
                label_set.len(),
                num_features,
                if self.stream.spill_features {
                    ", features spilled"
                } else {
                    ""
                },
            );
            self.features = Some(preset);
            self.labels = label_set.into_iter().collect();
            self.finish_stage(StreamStage::Features, start, 1, detail);
            return Ok(());
        }

        let mut ipca =
            IncrementalPca::with_threads(self.source.feature_dim(), num_features, self.threads)?;
        let mut label_set = BTreeSet::new();
        self.source.reset()?;
        drive_chunks(&mut *self.source, chunk_size, ingest, |chunk| {
            probe()?;
            ipca.partial_fit(chunk.samples())?;
            label_set.extend(chunk.labels().iter().copied());
            Ok(())
        })
        .map_err(EnqodeError::from)?;
        if label_set.is_empty() {
            return Err(EnqodeError::Data(DataError::EmptyDataset));
        }
        let tail_dropped = ipca.tail_mass_dropped();
        let features = FeaturePipeline::from_pca(ipca.finalize_truncated()?, num_features)?;

        let mut passes = 1usize;
        if self.stream.spill_features {
            let spill = FeatureSpill {
                path: FeatureSpill::fresh_path(),
            };
            let mut writer = BinaryDatasetWriter::create(&spill.path, num_features, true)?;
            self.source.reset()?;
            let features_ref = &features;
            drive_chunks(&mut *self.source, chunk_size, ingest, |chunk| {
                probe()?;
                for (sample, &label) in chunk.samples().iter().zip(chunk.labels()) {
                    writer.append(&features_ref.apply(sample)?, label)?;
                }
                Ok(())
            })
            .map_err(EnqodeError::from)?;
            writer.finish()?;
            // Open (and mmap) the spill exactly once; later passes just
            // `reset()` the reader instead of re-opening the file.
            self.spill_reader = Some(BinarySource::open(&spill.path)?);
            self.spill = Some(spill);
            passes = 2;
        }

        let detail = format!(
            "{} classes, {} features, ipca tail mass {:.3e}{}",
            label_set.len(),
            num_features,
            tail_dropped,
            if self.stream.spill_features {
                ", features spilled"
            } else {
                ""
            },
        );
        self.features = Some(features);
        self.labels = label_set.into_iter().collect();
        self.finish_stage(StreamStage::Features, start, passes, detail);
        Ok(())
    }

    fn new_accumulator(
        &self,
        label: usize,
        num_features: usize,
    ) -> Result<MiniBatchKMeans, EnqodeError> {
        let mb_config = MiniBatchKMeansConfig {
            k: self.stream.clusters_per_class,
            chunk_size: self.stream.chunk_size,
            passes: self.stream.passes,
            polish_passes: self.stream.polish_passes,
            ingest: self.stream.ingest,
            // Independent, label-derived stream per class (golden-gamma
            // salting so nearby labels decorrelate; the accumulator's own
            // mix finalises it).
            seed: self.config.seed ^ (label as u64).wrapping_mul(enq_data::seed::GOLDEN_GAMMA),
            ..MiniBatchKMeansConfig::default()
        };
        Ok(MiniBatchKMeans::new(mb_config, num_features, self.threads)?)
    }

    /// Runs `f` over one pass of the **feature** stream: the spilled temp
    /// file when stage 1 spilled, otherwise the raw source transformed on
    /// the fly. Either way the chunks are identical.
    fn for_each_feature_chunk(
        &mut self,
        mut f: impl FnMut(&SampleChunk) -> Result<(), DataError>,
    ) -> Result<(), EnqodeError> {
        let features = self
            .features
            .as_ref()
            .ok_or_else(|| stage_order_error("features"))?;
        let chunk_size = self.stream.chunk_size;
        let ingest = self.stream.ingest;
        let probe = self.cancel_probe();
        let mut f = move |chunk: &SampleChunk| {
            probe()?;
            f(chunk)
        };
        if let Some(spilled) = &mut self.spill_reader {
            spilled.reset()?;
            drive_chunks(spilled, chunk_size, ingest, &mut f).map_err(EnqodeError::from)
        } else if self.preset.is_some() {
            // Adopted features with no spill: the raw source *is* the
            // feature stream.
            self.source.reset()?;
            drive_chunks(&mut *self.source, chunk_size, ingest, &mut f).map_err(EnqodeError::from)
        } else {
            self.source.reset()?;
            let mut transformed = features.stream_features(&mut *self.source);
            drive_chunks(&mut transformed, chunk_size, ingest, &mut f).map_err(EnqodeError::from)
        }
    }

    /// Feeds one feature chunk into the per-class buckets and hands each
    /// non-empty bucket (with its label) to `feed`.
    fn partition_and_feed(
        accumulators: &mut BTreeMap<usize, MiniBatchKMeans>,
        partitions: &mut BTreeMap<usize, Vec<Vec<f64>>>,
        chunk: &SampleChunk,
        mut feed: impl FnMut(usize, &mut MiniBatchKMeans, &[Vec<f64>]) -> Result<(), DataError>,
    ) -> Result<(), DataError> {
        for bucket in partitions.values_mut() {
            bucket.clear();
        }
        for (sample, &label) in chunk.samples().iter().zip(chunk.labels()) {
            partitions.entry(label).or_default().push(sample.clone());
        }
        for (&label, bucket) in partitions.iter() {
            if !bucket.is_empty() {
                feed(
                    label,
                    accumulators
                        .get_mut(&label)
                        .expect("labels discovered in the feature stage"),
                    bucket,
                )?;
            }
        }
        Ok(())
    }

    /// One set of streaming-Lloyd polish passes over all classes,
    /// early-stopped when total centroid movement converges. Returns the
    /// number of passes run.
    fn polish_all(&mut self, max_passes: usize) -> Result<usize, EnqodeError> {
        let mut partitions: BTreeMap<usize, Vec<Vec<f64>>> = BTreeMap::new();
        let mut run = 0usize;
        for _ in 0..max_passes {
            for acc in self.accumulators.values_mut() {
                acc.begin_polish()?;
            }
            let mut accumulators = std::mem::take(&mut self.accumulators);
            let outcome = self.for_each_feature_chunk(|chunk| {
                Self::partition_and_feed(&mut accumulators, &mut partitions, chunk, |_, acc, b| {
                    acc.feed_polish(b)
                })
            });
            self.accumulators = accumulators;
            outcome?;
            let mut total_movement = 0.0;
            for acc in self.accumulators.values_mut() {
                let (movement, _) = acc.end_polish()?;
                total_movement += movement;
            }
            run += 1;
            if total_movement < 1e-9 {
                break;
            }
        }
        Ok(run)
    }

    /// Streaming-Lloyd polish restricted to `active` classes, each polished
    /// until **its own** movement converges (or `max_passes`). Used by the
    /// adaptive audit rounds: polishing only the classes that just split —
    /// with per-class convergence — keeps every class's state trajectory a
    /// pure function of its *own* split history, which is what makes the
    /// fidelity-threshold search monotone (a class that did not split is
    /// untouched no matter how many rounds other classes drive).
    fn polish_classes(
        &mut self,
        mut active: BTreeSet<usize>,
        max_passes: usize,
    ) -> Result<usize, EnqodeError> {
        let mut partitions: BTreeMap<usize, Vec<Vec<f64>>> = BTreeMap::new();
        let mut run = 0usize;
        for _ in 0..max_passes {
            if active.is_empty() {
                break;
            }
            for (label, acc) in self.accumulators.iter_mut() {
                if active.contains(label) {
                    acc.begin_polish()?;
                }
            }
            let mut accumulators = std::mem::take(&mut self.accumulators);
            let active_ref = &active;
            let outcome = self.for_each_feature_chunk(|chunk| {
                Self::partition_and_feed(
                    &mut accumulators,
                    &mut partitions,
                    chunk,
                    |label, acc, b| {
                        if active_ref.contains(&label) {
                            acc.feed_polish(b)?;
                        }
                        Ok(())
                    },
                )
            });
            self.accumulators = accumulators;
            outcome?;
            let mut converged = Vec::new();
            for (label, acc) in self.accumulators.iter_mut() {
                if active.contains(label) {
                    let (movement, _) = acc.end_polish()?;
                    if movement < 1e-9 {
                        converged.push(*label);
                    }
                }
            }
            for label in converged {
                active.remove(&label);
            }
            run += 1;
        }
        Ok(run)
    }

    /// **Stage 2 — Clustering.** `passes` mini-batch k-means passes over the
    /// per-class feature streams, then up to `polish_passes` exact
    /// streaming-Lloyd refinements (early-stopped on convergence).
    ///
    /// Rerunning re-clusters from scratch against the stage-1 features.
    ///
    /// # Errors
    ///
    /// Returns [`EnqodeError::InvalidConfig`] if the feature stage has not
    /// run; propagates source and clustering errors.
    pub fn run_clustering(&mut self) -> Result<(), EnqodeError> {
        self.check_cancelled()?;
        if self.features.is_none() {
            return Err(stage_order_error("features"));
        }
        let start = Instant::now();
        let num_features = self.config.ansatz.dimension();
        self.audit = None;
        // Fresh accumulators (from the stage-1 label set) so reruns do not
        // double-feed — and so clustering can rerun after training consumed
        // the previous accumulators.
        self.accumulators.clear();
        for label in self.labels.clone() {
            let acc = self.new_accumulator(label, num_features)?;
            self.accumulators.insert(label, acc);
        }

        let mut partitions: BTreeMap<usize, Vec<Vec<f64>>> = BTreeMap::new();
        for _ in 0..self.stream.passes {
            let mut accumulators = std::mem::take(&mut self.accumulators);
            let outcome = self.for_each_feature_chunk(|chunk| {
                Self::partition_and_feed(&mut accumulators, &mut partitions, chunk, |_, acc, b| {
                    acc.feed(b)
                })
            });
            self.accumulators = accumulators;
            outcome?;
            for acc in self.accumulators.values_mut() {
                acc.end_pass();
            }
        }
        for acc in self.accumulators.values_mut() {
            acc.ensure_initialized()?;
        }
        let polish_run = self.polish_all(self.stream.polish_passes)?;

        let clusters: usize = self
            .accumulators
            .values()
            .map(MiniBatchKMeans::num_clusters)
            .sum();
        self.finish_stage(
            StreamStage::Clustering,
            start,
            self.stream.passes + polish_run,
            format!(
                "{} clusters across {} classes ({} SGD + {polish_run} polish passes)",
                clusters,
                self.accumulators.len(),
                self.stream.passes,
            ),
        );
        Ok(())
    }

    /// One audit pass: per class and cluster, member count, min/mean
    /// fidelity, and the worst-explained member.
    fn audit_pass(&mut self) -> Result<BTreeMap<usize, Vec<ClusterStat>>, EnqodeError> {
        let mut stats: BTreeMap<usize, Vec<ClusterStat>> = self
            .accumulators
            .iter()
            .map(|(&label, acc)| (label, vec![ClusterStat::new(); acc.num_clusters()]))
            .collect();
        let accumulators = std::mem::take(&mut self.accumulators);
        let outcome = self.for_each_feature_chunk(|chunk| {
            for (sample, &label) in chunk.samples().iter().zip(chunk.labels()) {
                let acc = accumulators
                    .get(&label)
                    .expect("labels discovered in the feature stage");
                let centroids = acc.centroids().expect("clustering stage initialised");
                // Same nearest rule as every clustering path: strict `<`,
                // ties keep the lowest index.
                let mut best = 0usize;
                let mut best_dist = f64::INFINITY;
                for (i, c) in centroids.iter().enumerate() {
                    let d: f64 = sample
                        .iter()
                        .zip(c.iter())
                        .map(|(a, b)| (a - b) * (a - b))
                        .sum();
                    if d < best_dist {
                        best_dist = d;
                        best = i;
                    }
                }
                let fidelity = embedding_fidelity(sample, &centroids[best]);
                let stat = &mut stats.get_mut(&label).expect("stats pre-sized")[best];
                stat.members += 1;
                stat.fid_sum += fidelity;
                if fidelity < stat.min_fidelity {
                    stat.min_fidelity = fidelity;
                    stat.worst_member = Some(sample.clone());
                }
            }
            Ok(())
        });
        self.accumulators = accumulators;
        outcome?;
        Ok(stats)
    }

    /// **Stage 3 — Fidelity audit.** With a configured
    /// [`StreamingFitConfig::fidelity_threshold`], runs audit-and-split
    /// rounds until every class's non-empty clusters clear the threshold or
    /// hit `max_clusters_per_class` (the adaptive `k` search — splitting
    /// only each class's worst cluster keeps the state sequence
    /// threshold-independent, hence monotone). Without a
    /// threshold, runs a single diagnostic audit pass.
    ///
    /// # Errors
    ///
    /// Returns [`EnqodeError::InvalidConfig`] if clustering has not run;
    /// propagates source errors.
    pub fn run_fidelity_audit(&mut self) -> Result<(), EnqodeError> {
        self.check_cancelled()?;
        if self.accumulators.is_empty()
            || self
                .accumulators
                .values()
                .any(|acc| acc.centroids().is_none())
        {
            return Err(stage_order_error("clustering"));
        }
        let start = Instant::now();
        let threshold = self.stream.fidelity_threshold;
        let cap = self.stream.max_clusters_per_class;
        let mut rounds = 0usize;
        let mut splits = 0usize;
        let mut passes = 0usize;
        let final_stats = loop {
            self.check_cancelled()?;
            let stats = self.audit_pass()?;
            rounds += 1;
            passes += 1;
            let mut split_labels = BTreeSet::new();
            if let Some(threshold) = threshold {
                for (label, class_stats) in &stats {
                    let acc = self
                        .accumulators
                        .get_mut(label)
                        .expect("stats mirror accumulators");
                    if acc.num_clusters() >= cap {
                        continue;
                    }
                    // The class's worst cluster (lowest min fidelity; ties
                    // keep the lowest index — deterministic and
                    // threshold-independent).
                    let worst = class_stats
                        .iter()
                        .enumerate()
                        .filter(|(_, s)| s.members > 0)
                        .min_by(|(_, a), (_, b)| {
                            a.min_fidelity
                                .partial_cmp(&b.min_fidelity)
                                .expect("fidelities are finite")
                        });
                    if let Some((_, stat)) = worst {
                        if stat.min_fidelity < threshold {
                            if let Some(member) = stat.worst_member.clone() {
                                acc.add_centroid(member)?;
                                splits += 1;
                                split_labels.insert(*label);
                            }
                        }
                    }
                }
            }
            if split_labels.is_empty() {
                break stats;
            }
            // Re-balance only the classes that just split (each until its
            // own movement converges): classes that did not split are left
            // untouched, so every class's trajectory depends only on its
            // own split history — the monotonicity invariant.
            passes += self.polish_classes(split_labels, self.stream.polish_passes.max(1))?;
        };

        let classes = final_stats
            .into_iter()
            .map(|(label, class_stats)| ClassAudit {
                label,
                capped: self.accumulators[&label].num_clusters() >= cap
                    && threshold.is_some()
                    && class_stats.iter().any(|s| {
                        s.members > 0 && s.min_fidelity < threshold.expect("checked is_some")
                    }),
                clusters: class_stats
                    .into_iter()
                    .map(|s| ClusterAudit {
                        members: s.members,
                        min_fidelity: s.min_fidelity,
                        mean_fidelity: if s.members > 0 {
                            s.fid_sum / s.members as f64
                        } else {
                            0.0
                        },
                    })
                    .collect(),
            })
            .collect();
        let audit = FidelityAudit {
            classes,
            threshold,
            rounds,
            splits,
        };
        let detail = format!(
            "{} rounds, {} splits, min fidelity {:.4}{}",
            audit.rounds,
            audit.splits,
            audit.min_fidelity(),
            match threshold {
                Some(t) => format!(" (threshold {t})"),
                None => " (diagnostic)".to_string(),
            },
        );
        self.audit = Some(audit);
        self.finish_stage(StreamStage::FidelityAudit, start, passes, detail);
        Ok(())
    }

    /// **Stage 4 — Training.** Trains every class's centroids into
    /// [`EnqodeModel`]s (all classes in parallel, one shared symbolic table)
    /// and assembles the [`EnqodePipeline`]. Consumes the clustering state:
    /// rerun [`StreamDriver::run_clustering`] before training again.
    ///
    /// # Errors
    ///
    /// Returns [`EnqodeError::InvalidConfig`] if clustering has not run;
    /// propagates training errors.
    pub fn run_training(&mut self) -> Result<EnqodePipeline, EnqodeError> {
        self.check_cancelled()?;
        if self.features.is_none()
            || self.accumulators.is_empty()
            || self
                .accumulators
                .values()
                .any(|acc| acc.centroids().is_none())
        {
            return Err(stage_order_error("clustering"));
        }
        let start = Instant::now();
        let accumulators = std::mem::take(&mut self.accumulators);
        let labels: Vec<usize> = accumulators.keys().copied().collect();
        let class_centroids: Vec<Vec<Vec<f64>>> = accumulators
            .into_values()
            .map(MiniBatchKMeans::into_centroids)
            .collect::<Result<_, _>>()?;
        let per_class = NonZeroUsize::new(self.threads.get().div_ceil(labels.len().max(1)))
            .unwrap_or(NonZeroUsize::MIN);
        let symbolic = Arc::new(SymbolicState::from_ansatz(&self.config.ansatz)?);
        let config = &self.config;
        let cancel = self.cancel.clone();
        let class_models = enq_parallel::try_par_map(&class_centroids, |i, centroids| {
            // Training is the longest stage; a cancellation observed here
            // skips the remaining class fits instead of finishing them.
            if cancel.as_ref().is_some_and(CancelToken::is_cancelled) {
                return Err(EnqodeError::Cancelled);
            }
            let model = EnqodeModel::fit_from_centroids(
                centroids,
                config.clone(),
                per_class,
                Arc::clone(&symbolic),
            )?;
            Ok::<ClassModel, EnqodeError>(ClassModel {
                label: labels[i],
                model,
            })
        })?;
        let total_clusters: usize = class_centroids.iter().map(Vec::len).sum();
        self.finish_stage(
            StreamStage::Training,
            start,
            0,
            format!(
                "{} ansatz models over {} centroids",
                labels.len(),
                total_clusters
            ),
        );
        let features = self.features.clone().expect("checked above");
        Ok(EnqodePipeline::from_parts(features, class_models))
    }

    /// Runs all stages in order (the audit stage only when a fidelity
    /// threshold is configured) and returns the trained pipeline.
    ///
    /// # Errors
    ///
    /// Propagates the first failing stage's error.
    pub fn run(mut self) -> Result<EnqodePipeline, EnqodeError> {
        self.run_features()?;
        self.run_clustering()?;
        if self.stream.fidelity_threshold.is_some() {
            self.run_fidelity_audit()?;
        }
        self.run_training()
    }
}

fn stage_order_error(missing: &str) -> EnqodeError {
    EnqodeError::InvalidConfig(format!("stream driver: the {missing} stage must run first"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ansatz::{AnsatzConfig, EntanglerKind};
    use enq_data::{generate_synthetic, DatasetKind, InMemorySource, IngestMode, SyntheticConfig};

    fn tiny_config(seed: u64) -> EnqodeConfig {
        EnqodeConfig {
            ansatz: AnsatzConfig {
                num_qubits: 3,
                num_layers: 4,
                entangler: EntanglerKind::Cy,
            },
            fidelity_threshold: 0.9,
            max_clusters: 4,
            offline_max_iterations: 40,
            offline_restarts: 1,
            online_max_iterations: 20,
            offline_rescue: false,
            seed,
        }
    }

    fn tiny_stream() -> StreamingFitConfig {
        StreamingFitConfig {
            chunk_size: 6,
            clusters_per_class: 2,
            passes: 2,
            polish_passes: 2,
            ..Default::default()
        }
    }

    #[test]
    fn stages_must_run_in_order() {
        let data = generate_synthetic(
            DatasetKind::MnistLike,
            &SyntheticConfig {
                classes: 1,
                samples_per_class: 6,
                seed: 2,
            },
        )
        .unwrap();
        let mut source = InMemorySource::new(&data);
        let mut driver = StreamDriver::new(&mut source, tiny_config(2), tiny_stream()).unwrap();
        assert!(driver.run_clustering().is_err());
        assert!(driver.run_fidelity_audit().is_err());
        assert!(driver.run_training().is_err());
        driver.run_features().unwrap();
        assert!(driver.features().is_some());
        assert!(
            driver.run_fidelity_audit().is_err(),
            "audit needs clustering"
        );
        driver.run_clustering().unwrap();
        driver.run_fidelity_audit().unwrap();
        let audit = driver.audit().unwrap();
        assert_eq!(audit.threshold, None);
        assert_eq!(audit.rounds, 1);
        assert!(audit.satisfied(), "diagnostic audits always pass");
        let pipeline = driver.run_training().unwrap();
        assert_eq!(pipeline.class_models().len(), 1);
        // Training consumed the clustering state; training again without
        // re-clustering is an ordering error, not a panic or a bogus
        // EmptyDataset.
        assert!(matches!(
            driver.run_training(),
            Err(EnqodeError::InvalidConfig(_))
        ));
        // Clustering is rerunnable from the stage-1 label set, after which
        // training works again.
        driver.run_clustering().unwrap();
        let again = driver.run_training().unwrap();
        assert_eq!(again.class_models().len(), 1);
        // One report per completed stage, in completion order (including
        // the rerun pair).
        let stages: Vec<&'static str> = driver.reports().iter().map(|r| r.stage.name()).collect();
        assert_eq!(
            stages,
            vec![
                "features",
                "clustering",
                "fidelity-audit",
                "training",
                "clustering",
                "training"
            ]
        );
    }

    #[test]
    fn progress_hook_sees_every_stage() {
        let data = generate_synthetic(
            DatasetKind::MnistLike,
            &SyntheticConfig {
                classes: 2,
                samples_per_class: 6,
                seed: 9,
            },
        )
        .unwrap();
        let mut source = InMemorySource::new(&data);
        let seen = std::sync::Mutex::new(Vec::new());
        let mut driver = StreamDriver::new(&mut source, tiny_config(9), tiny_stream()).unwrap();
        driver.set_progress(|report| seen.lock().unwrap().push(report.stage.name()));
        driver.run_features().unwrap();
        driver.run_clustering().unwrap();
        driver.run_training().unwrap();
        assert_eq!(
            *seen.lock().unwrap(),
            vec!["features", "clustering", "training"]
        );
    }

    #[test]
    fn spill_and_ingest_modes_are_bit_identical() {
        let data = generate_synthetic(
            DatasetKind::MnistLike,
            &SyntheticConfig {
                classes: 2,
                samples_per_class: 8,
                seed: 5,
            },
        )
        .unwrap();
        let fit = |ingest: IngestMode, spill: bool| {
            let mut source = InMemorySource::new(&data);
            let stream = StreamingFitConfig {
                ingest,
                spill_features: spill,
                ..tiny_stream()
            };
            StreamDriver::new(&mut source, tiny_config(5), stream)
                .unwrap()
                .run()
                .unwrap()
        };
        let reference = fit(IngestMode::Synchronous, false);
        for (ingest, spill) in [
            (IngestMode::Synchronous, true),
            (IngestMode::Prefetched, false),
            (IngestMode::Prefetched, true),
        ] {
            let other = fit(ingest, spill);
            for (a, b) in reference.class_models().iter().zip(other.class_models()) {
                assert_eq!(a.label, b.label);
                for (ka, kb) in a.model.clusters().iter().zip(b.model.clusters()) {
                    assert_eq!(ka.centroid, kb.centroid, "{ingest:?}/{spill} drifted");
                    assert_eq!(ka.parameters, kb.parameters);
                }
            }
        }
    }

    #[test]
    fn preset_features_retrain_clusters_against_a_feature_space_source() {
        let data = generate_synthetic(
            DatasetKind::MnistLike,
            &SyntheticConfig {
                classes: 2,
                samples_per_class: 8,
                seed: 11,
            },
        )
        .unwrap();
        // Fit a reference pipeline, then re-train from its *feature* stream,
        // exactly what the traffic-refresh path does.
        let mut source = InMemorySource::new(&data);
        let reference = StreamDriver::new(&mut source, tiny_config(11), tiny_stream())
            .unwrap()
            .run()
            .unwrap();
        let features: Vec<Vec<f64>> = data
            .samples()
            .iter()
            .map(|s| reference.extract_features(s).unwrap())
            .collect();
        let feature_data =
            enq_data::Dataset::new("features", features, data.labels().to_vec()).unwrap();

        for spill in [false, true] {
            let mut feature_source = InMemorySource::new(&feature_data);
            let stream = StreamingFitConfig {
                spill_features: spill,
                ..tiny_stream()
            };
            let mut driver =
                StreamDriver::new(&mut feature_source, tiny_config(11), stream).unwrap();
            driver
                .preset_features(reference.features().clone())
                .unwrap();
            let refreshed = driver.run().unwrap();
            assert_eq!(refreshed.class_models().len(), 2);
            // The adopted feature pipeline is untouched: both pipelines
            // extract bit-identical features from a raw sample.
            let a = reference.extract_features(data.sample(0)).unwrap();
            let b = refreshed.extract_features(data.sample(0)).unwrap();
            assert_eq!(a, b, "spill={spill}");
            // And the refreshed fit matches the reference fit bit for bit:
            // the feature stream it saw is exactly what the reference
            // clustering stage saw.
            for (ca, cb) in reference
                .class_models()
                .iter()
                .zip(refreshed.class_models())
            {
                assert_eq!(ca.label, cb.label);
                for (ka, kb) in ca.model.clusters().iter().zip(cb.model.clusters()) {
                    assert_eq!(ka.centroid, kb.centroid, "spill={spill}");
                    assert_eq!(ka.parameters, kb.parameters, "spill={spill}");
                }
            }
        }
    }

    #[test]
    fn preset_features_reject_mismatched_dimensions() {
        let data = generate_synthetic(
            DatasetKind::MnistLike,
            &SyntheticConfig {
                classes: 1,
                samples_per_class: 4,
                seed: 3,
            },
        )
        .unwrap();
        let mut source = InMemorySource::new(&data);
        let pipeline = StreamDriver::new(&mut source, tiny_config(3), tiny_stream())
            .unwrap()
            .run()
            .unwrap();
        // A raw 784-dim source is not a feature-space source.
        let mut raw = InMemorySource::new(&data);
        let mut driver = StreamDriver::new(&mut raw, tiny_config(3), tiny_stream()).unwrap();
        assert!(matches!(
            driver.preset_features(pipeline.features().clone()),
            Err(EnqodeError::InvalidConfig(_))
        ));
    }

    #[test]
    fn cancellation_winds_down_between_chunks_without_leaking_spills() {
        let data = generate_synthetic(
            DatasetKind::MnistLike,
            &SyntheticConfig {
                classes: 2,
                samples_per_class: 8,
                seed: 13,
            },
        )
        .unwrap();
        let spill_count = || {
            std::fs::read_dir(std::env::temp_dir())
                .unwrap()
                .filter_map(Result::ok)
                .filter(|e| {
                    e.file_name()
                        .to_string_lossy()
                        .starts_with(&format!("enq_stream_spill_{}_", std::process::id()))
                })
                .count()
        };
        let spills_before = spill_count();
        let mut source = InMemorySource::new(&data);
        let token = CancelToken::new();
        {
            let mut driver =
                StreamDriver::new(&mut source, tiny_config(13), tiny_stream()).unwrap();
            driver.set_cancel(token.clone());
            // Features complete, then cancellation lands: the next stage
            // must refuse to run and no pipeline is ever produced.
            driver.run_features().unwrap();
            assert!(driver.spill_reader.is_some(), "spill file exists mid-fit");
            token.cancel();
            assert!(matches!(
                driver.run_clustering(),
                Err(EnqodeError::Cancelled)
            ));
            assert!(matches!(driver.run_training(), Err(EnqodeError::Cancelled)));
        }
        // Dropping the cancelled driver removed its spill file.
        assert_eq!(spill_count(), spills_before);

        // A token cancelled before the first chunk stops the feature stage
        // itself.
        let mut source = InMemorySource::new(&data);
        let mut driver = StreamDriver::new(&mut source, tiny_config(13), tiny_stream()).unwrap();
        let token = CancelToken::new();
        token.cancel();
        driver.set_cancel(token);
        assert!(matches!(driver.run_features(), Err(EnqodeError::Cancelled)));
    }

    #[test]
    fn adaptive_audit_splits_until_threshold_or_cap() {
        let data = generate_synthetic(
            DatasetKind::MnistLike,
            &SyntheticConfig {
                classes: 2,
                samples_per_class: 12,
                seed: 31,
            },
        )
        .unwrap();
        let mut source = InMemorySource::new(&data);
        let stream = StreamingFitConfig {
            clusters_per_class: 1,
            fidelity_threshold: Some(0.999),
            max_clusters_per_class: 3,
            ..tiny_stream()
        };
        let mut driver = StreamDriver::new(&mut source, tiny_config(31), stream).unwrap();
        driver.run_features().unwrap();
        driver.run_clustering().unwrap();
        driver.run_fidelity_audit().unwrap();
        let audit = driver.audit().unwrap().clone();
        assert!(audit.satisfied());
        assert!(audit.rounds >= 1);
        // The near-impossible threshold forces every class to its cap.
        for (label, k) in driver.clusters_per_class() {
            assert_eq!(k, 3, "class {label} did not reach the cap");
        }
        assert_eq!(audit.total_clusters(), 6);
    }
}

//! The crate-wide error type.

use std::error::Error;
use std::fmt;

/// Errors returned by the EnQode training and embedding APIs.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum EnqodeError {
    /// A sample or target vector had the wrong dimension for the configured
    /// register.
    DimensionMismatch {
        /// Expected length (`2^num_qubits`).
        expected: usize,
        /// Found length.
        found: usize,
    },
    /// A configuration parameter was invalid.
    InvalidConfig(String),
    /// The model has not been trained (no clusters available).
    NotTrained,
    /// An error from the circuit layer.
    Circuit(enq_circuit::CircuitError),
    /// An error from the simulators.
    Qsim(enq_qsim::QsimError),
    /// An error from the data substrate.
    Data(enq_data::DataError),
    /// An error from the Baseline state preparation.
    StatePrep(enq_stateprep::StatePrepError),
    /// An error from the linear-algebra layer.
    Linalg(enq_linalg::LinalgError),
    /// A streaming fit wound down after a cooperative cancellation request
    /// (see [`crate::StreamDriver::set_cancel`]). Not a failure: the caller
    /// asked for the work to stop, and no partial results were published.
    Cancelled,
}

impl fmt::Display for EnqodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EnqodeError::DimensionMismatch { expected, found } => {
                write!(
                    f,
                    "feature vector length mismatch: expected {expected}, found {found}"
                )
            }
            EnqodeError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            EnqodeError::NotTrained => write!(f, "the model has no trained clusters"),
            EnqodeError::Circuit(e) => write!(f, "circuit error: {e}"),
            EnqodeError::Qsim(e) => write!(f, "simulation error: {e}"),
            EnqodeError::Data(e) => write!(f, "data error: {e}"),
            EnqodeError::StatePrep(e) => write!(f, "state preparation error: {e}"),
            EnqodeError::Linalg(e) => write!(f, "linear algebra error: {e}"),
            EnqodeError::Cancelled => write!(f, "the streaming fit was cancelled"),
        }
    }
}

impl Error for EnqodeError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            EnqodeError::Circuit(e) => Some(e),
            EnqodeError::Qsim(e) => Some(e),
            EnqodeError::Data(e) => Some(e),
            EnqodeError::StatePrep(e) => Some(e),
            EnqodeError::Linalg(e) => Some(e),
            _ => None,
        }
    }
}

impl From<enq_circuit::CircuitError> for EnqodeError {
    fn from(e: enq_circuit::CircuitError) -> Self {
        EnqodeError::Circuit(e)
    }
}

impl From<enq_qsim::QsimError> for EnqodeError {
    fn from(e: enq_qsim::QsimError) -> Self {
        EnqodeError::Qsim(e)
    }
}

impl From<enq_data::DataError> for EnqodeError {
    fn from(e: enq_data::DataError) -> Self {
        match e {
            // A cancellation surfacing through a chunk callback is this
            // crate's cancellation, not a data failure: collapse the two so
            // every caller matches one variant.
            enq_data::DataError::Cancelled => EnqodeError::Cancelled,
            e => EnqodeError::Data(e),
        }
    }
}

impl From<enq_stateprep::StatePrepError> for EnqodeError {
    fn from(e: enq_stateprep::StatePrepError) -> Self {
        EnqodeError::StatePrep(e)
    }
}

impl From<enq_linalg::LinalgError> for EnqodeError {
    fn from(e: enq_linalg::LinalgError) -> Self {
        EnqodeError::Linalg(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_conversions() {
        let e: EnqodeError = enq_linalg::LinalgError::Singular.into();
        assert!(e.to_string().contains("singular"));
        assert!(e.source().is_some());
        assert!(EnqodeError::NotTrained.to_string().contains("no trained"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<EnqodeError>();
    }
}

//! The Baseline embedder: exact amplitude embedding per sample.

use crate::error::EnqodeError;
use enq_circuit::QuantumCircuit;
use enq_data::l2_normalize;
use enq_linalg::CVector;
use enq_stateprep::exact_amplitude_embedding_with_tolerance;
use std::time::{Duration, Instant};

/// Default synthesis tolerance of the Baseline: rotations below this angle
/// (in radians) are elided, as a hardware-aware synthesiser would do. This is
/// what makes the Baseline's gate count and depth data dependent.
pub const BASELINE_SYNTHESIS_TOLERANCE: f64 = 1e-3;

/// The result of compiling one sample with the Baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct BaselineEmbedding {
    /// The data-dependent exact state-preparation circuit.
    pub circuit: QuantumCircuit,
    /// Wall-clock synthesis time.
    pub duration: Duration,
}

/// Exact amplitude embedding (qiskit-style state preparation), used as the
/// paper's comparison point.
///
/// # Examples
///
/// ```
/// use enqode::BaselineEmbedder;
///
/// let embedder = BaselineEmbedder::new(3);
/// let sample: Vec<f64> = (1..=8).map(f64::from).collect();
/// let result = embedder.embed(&sample)?;
/// assert_eq!(result.circuit.num_qubits(), 3);
/// # Ok::<(), enqode::EnqodeError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BaselineEmbedder {
    num_qubits: usize,
    tolerance: f64,
}

impl BaselineEmbedder {
    /// Creates a Baseline embedder for `num_qubits` qubits
    /// (`2^num_qubits` features) with the default synthesis tolerance
    /// [`BASELINE_SYNTHESIS_TOLERANCE`].
    pub fn new(num_qubits: usize) -> Self {
        Self {
            num_qubits,
            tolerance: BASELINE_SYNTHESIS_TOLERANCE,
        }
    }

    /// Creates a Baseline embedder with an explicit synthesis tolerance
    /// (pass `0.0` for fully exact synthesis with no elision).
    pub fn with_tolerance(num_qubits: usize, tolerance: f64) -> Self {
        Self {
            num_qubits,
            tolerance,
        }
    }

    /// Returns the register size.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// Returns the synthesis tolerance in radians.
    pub fn tolerance(&self) -> f64 {
        self.tolerance
    }

    /// Synthesises the exact embedding circuit for a feature vector.
    ///
    /// # Errors
    ///
    /// Returns [`EnqodeError::DimensionMismatch`] for a vector of the wrong
    /// length and a state-preparation error for zero vectors.
    pub fn embed(&self, sample: &[f64]) -> Result<BaselineEmbedding, EnqodeError> {
        let expected = 1usize << self.num_qubits;
        if sample.len() != expected {
            return Err(EnqodeError::DimensionMismatch {
                expected,
                found: sample.len(),
            });
        }
        let start = Instant::now();
        let circuit = exact_amplitude_embedding_with_tolerance(sample, self.tolerance)?;
        Ok(BaselineEmbedding {
            circuit,
            duration: start.elapsed(),
        })
    }
}

/// Returns the ideal amplitude-embedded target state of a feature vector
/// (normalised, real amplitudes).
///
/// # Errors
///
/// Returns [`EnqodeError::Data`] for zero vectors.
pub fn target_state(sample: &[f64]) -> Result<CVector, EnqodeError> {
    let normalized = l2_normalize(sample)?;
    Ok(CVector::from_real(&normalized))
}

#[cfg(test)]
mod tests {
    use super::*;
    use enq_qsim::Statevector;

    #[test]
    fn synthesis_tolerance_trades_gates_for_tiny_error() {
        let dense: Vec<f64> = (0..32)
            .map(|i| 0.5 + 0.4 * ((i as f64) * 0.3).sin() + 0.05 * ((i as f64) * 2.1).cos())
            .collect();
        let exact = BaselineEmbedder::with_tolerance(5, 0.0);
        let tolerant = BaselineEmbedder::with_tolerance(5, 1e-2);
        let exact_len = exact.embed(&dense).unwrap().circuit.len();
        let tolerant_result = tolerant.embed(&dense).unwrap();
        assert!(tolerant_result.circuit.len() <= exact_len);
        // The state error introduced by the elision is negligible.
        let out = Statevector::from_circuit(&tolerant_result.circuit)
            .unwrap()
            .to_cvector();
        let fidelity = out
            .overlap_fidelity(&target_state(&dense).unwrap())
            .unwrap();
        assert!(fidelity > 0.999, "fidelity {fidelity}");
    }

    #[test]
    fn baseline_embeds_exactly() {
        let embedder = BaselineEmbedder::new(3);
        let sample: Vec<f64> = vec![0.3, -0.4, 0.1, 0.7, 0.0, 0.2, -0.1, 0.35];
        let result = embedder.embed(&sample).unwrap();
        let out = Statevector::from_circuit(&result.circuit)
            .unwrap()
            .to_cvector();
        let target = target_state(&sample).unwrap();
        assert!((out.overlap_fidelity(&target).unwrap() - 1.0).abs() < 1e-5);
    }

    #[test]
    fn baseline_circuits_are_data_dependent() {
        let embedder = BaselineEmbedder::new(4);
        let dense: Vec<f64> = (1..=16).map(|i| f64::from(i) * 0.1).collect();
        let mut sparse = vec![0.0; 16];
        sparse[3] = 1.0;
        let dense_len = embedder.embed(&dense).unwrap().circuit.len();
        let sparse_len = embedder.embed(&sparse).unwrap().circuit.len();
        assert!(sparse_len < dense_len);
    }

    #[test]
    fn baseline_validates_input() {
        let embedder = BaselineEmbedder::new(3);
        assert!(embedder.embed(&[1.0, 2.0]).is_err());
        assert!(embedder.embed(&[0.0; 8]).is_err());
        assert!(target_state(&[0.0; 8]).is_err());
        assert_eq!(embedder.num_qubits(), 3);
    }
}

//! The symbolic phase-table representation of the ansatz state (Eq. 6).
//!
//! Because the interior of EnQode's ansatz applies only diagonal `Rz`
//! rotations and `CY` permutations to the uniform-magnitude product state
//! `⊗(|0⟩+i|1⟩)/√2`, every amplitude stays of the form
//!
//! ```text
//! a_r(θ) = i^{k_r} · exp(i·Σ_j p_{rj}·θ_j / 2) / √(2^n),   p_{rj} ∈ {−1,+1}
//! ```
//!
//! The integer table `(k_r, p_{rj})` is computed once per ansatz shape; the
//! state and its exact Jacobian are then closed-form functions of `θ`, which
//! is what makes EnQode's training fast.
//!
//! # The sparse column structure
//!
//! The dense table hides a much stronger structure that the optimised kernel
//! exploits. Each entangler (`CX`/`CY`) permutes basis rows by the XOR map
//! `r → r ⊕ ((r≫c)&1)≪t`, which is *linear over GF(2)*; `CZ` only touches the
//! constant `k_r`. Composing linear maps keeps them linear, so the sign
//! column of every parameter `j` is a Walsh character: there is a per-column
//! bitmask `m_j` with
//!
//! ```text
//! p_{rj} = −(−1)^{popcount(r & m_j)}.
//! ```
//!
//! Two consequences drive [`SymbolicState::overlap_and_gradient_into`]:
//!
//! * the phase vector `φ_r = Σ_j p_{rj}·θ_j` is the (unnormalised)
//!   Walsh–Hadamard transform of the **P-sparse spectrum** `c[m_j] −= θ_j`,
//!   computable in `O(2^n·n)` instead of the dense `O(2^n·n·L)` walk;
//! * each gradient component is a single entry of the Walsh–Hadamard
//!   transform of the weighted overlap vector, so the whole gradient is one
//!   more `O(2^n·n)` transform followed by a `P`-entry gather.
//!
//! Amplitudes are evaluated in a structure-of-arrays scratch held by a
//! reusable [`SymbolicWorkspace`] with one fused sin/cos per row and zero
//! heap allocations per evaluation. The seed's dense-walk kernel is retained
//! as [`SymbolicState::overlap_and_gradient_naive`] — the reference the
//! equivalence tests and the `symbolic_kernel` micro-benchmark compare
//! against.
//!
//! # Compute backends
//!
//! The three loop shapes the kernel spends its time in — Walsh–Hadamard
//! butterflies, the fused sin/cos row sweep, and the weighted-overlap
//! accumulation — route through [`enq_simd`]'s runtime-dispatched
//! [`enq_simd::ComputeBackend`] layer. All backends are bit-identical by
//! construction (element-wise butterflies, one shared correctly-rounded
//! sin/cos kernel, and a pinned sequential summation order for the overlap),
//! so the golden seeded-determinism pins hold no matter which instruction
//! set the host dispatches to.
//!
//! [`SymbolicBatch`] evaluates `B` overlap/gradient problems per butterfly
//! sweep in an interleaved layout: the micro-batcher amortises one
//! `O(2^n·n)` table traversal across a whole batch, and every butterfly
//! touches `B` contiguous lanes — full-width SIMD even at small `2^n` where
//! the single-problem transform's low stages cannot fill a vector. Each lane
//! is bit-identical to the corresponding solo
//! [`SymbolicState::overlap_and_gradient_into`] call.

use crate::ansatz::{AnsatzConfig, EntanglerKind};
use crate::error::EnqodeError;
use enq_linalg::{CVector, C64};
use std::f64::consts::FRAC_PI_2;

/// The symbolic state `|ψ(θ)⟩` of an EnQode ansatz, before the closing
/// rotation column.
#[derive(Debug, Clone, PartialEq)]
pub struct SymbolicState {
    /// The exact ansatz shape this table was built for (entangler included —
    /// the entangler permutes rows, so tables of equal size are not
    /// interchangeable across entangler kinds).
    ansatz: AnsatzConfig,
    num_qubits: usize,
    num_parameters: usize,
    /// Phase constant per basis index, stored as a power of `i` (mod 4).
    k_power: Vec<u8>,
    /// `k_power` pre-multiplied to radians: `k_r·π/2`.
    base_phase: Vec<f64>,
    /// Integer coefficient of each parameter in each amplitude's phase,
    /// flattened row-major: `coeff[r * num_parameters + j] ∈ {−1, 1}`.
    /// Retained as the naive reference; the fast kernels use `column_masks`.
    coeffs: Vec<i8>,
    /// Per-parameter Walsh bitmask: `p_{rj} = −(−1)^{popcount(r & m_j)}`.
    column_masks: Vec<u32>,
}

/// Reusable scratch buffers for the symbolic kernels.
///
/// Holds the phase accumulator and the structure-of-arrays weighted-overlap
/// buffers so that repeated evaluations (every L-BFGS iteration of every
/// restart) perform **zero heap allocations**. One workspace serves any
/// number of states; buffers grow on demand and are reused in place.
///
/// # Grow-only resize audit
///
/// The internal `ensure` resize never shrinks, so after serving a large
/// state the buffers carry a stale tail beyond the current `dim`. That tail
/// is unobservable by contract: every kernel slices its buffers to
/// `[..dim]` and fully overwrites that prefix before reading it (`phase` is
/// zero-filled then scattered; `args`/`sin`/`cos`/`w_re`/`w_im` are written
/// for every `r < dim` before any read). The `shrink_then_reuse` regression
/// test poisons the tails with NaN and checks smaller states still match
/// the naive reference bit-for-bit on the observable prefix.
#[derive(Debug, Clone, Default)]
pub struct SymbolicWorkspace {
    /// Phase accumulator; doubles as the Walsh spectrum before the transform.
    phase: Vec<f64>,
    /// Per-row sin/cos argument `0.5·φ_r + k_r·π/2`.
    args: Vec<f64>,
    /// `sin(args[r])`, filled by the dispatched fused sin/cos kernel.
    sin: Vec<f64>,
    /// `cos(args[r])`, filled by the dispatched fused sin/cos kernel.
    cos: Vec<f64>,
    /// Real part of `w_r = conj(y_r)·a_r(θ)`.
    w_re: Vec<f64>,
    /// Imaginary part of `w_r`.
    w_im: Vec<f64>,
}

impl SymbolicWorkspace {
    /// Creates an empty workspace (buffers are sized lazily).
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a workspace pre-sized for one state.
    pub fn for_state(state: &SymbolicState) -> Self {
        let mut ws = Self::new();
        ws.ensure(state.dim());
        ws
    }

    fn ensure(&mut self, dim: usize) {
        if self.phase.len() < dim {
            self.phase.resize(dim, 0.0);
            self.args.resize(dim, 0.0);
            self.sin.resize(dim, 0.0);
            self.cos.resize(dim, 0.0);
            self.w_re.resize(dim, 0.0);
            self.w_im.resize(dim, 0.0);
        }
    }

    /// Fills `args[..dim]` from the transformed phases and evaluates the
    /// fused sin/cos sweep through the dispatched backend.
    fn eval_rows(&mut self, base_phase: &[f64], dim: usize) {
        enq_simd::scale_add(
            &self.phase[..dim],
            0.5,
            &base_phase[..dim],
            &mut self.args[..dim],
        );
        enq_simd::sin_cos_slice(
            &self.args[..dim],
            &mut self.sin[..dim],
            &mut self.cos[..dim],
        );
    }
}

/// Views a `C64` slice as its interleaved `[re, im]` `f64` storage — the
/// layout the [`enq_simd::weighted_rows`] kernel consumes without a copy.
fn c64_interleaved(z: &[C64]) -> &[f64] {
    // SAFETY: `C64` is `#[repr(C)]` with exactly two `f64` fields, so a slice
    // of `z.len()` values is precisely `2·z.len()` contiguous `f64`s, and
    // `f64`'s alignment does not exceed `C64`'s.
    unsafe { std::slice::from_raw_parts(z.as_ptr().cast::<f64>(), z.len() * 2) }
}

impl SymbolicState {
    /// Builds the symbolic representation of the given ansatz shape.
    ///
    /// # Errors
    ///
    /// Returns [`EnqodeError::InvalidConfig`] for invalid configurations.
    pub fn from_ansatz(config: &AnsatzConfig) -> Result<Self, EnqodeError> {
        config.validate()?;
        let n = config.num_qubits;
        let dim = 1usize << n;
        let num_parameters = config.num_parameters();

        // Initial state after the Rx(−π/2) column: a_r = i^{popcount(r)}/√2ⁿ.
        let mut k_power: Vec<u8> = (0..dim).map(|r| (r.count_ones() % 4) as u8).collect();
        let mut coeffs = vec![0i8; dim * num_parameters];

        for layer in 0..config.num_layers {
            // Parameterised Rz column: Rz(θ) multiplies |0⟩ amplitudes by
            // e^{−iθ/2} and |1⟩ amplitudes by e^{+iθ/2}.
            for q in 0..n {
                let j = layer * n + q;
                for r in 0..dim {
                    let sign: i8 = if (r >> q) & 1 == 1 { 1 } else { -1 };
                    coeffs[r * num_parameters + j] += sign;
                }
            }
            // Entangler column (the final Rz column has no trailing
            // entangler, mirroring the ansatz construction).
            if layer + 1 < config.num_layers {
                for (control, target) in config.entangler_pairs(layer) {
                    apply_entangler(
                        config.entangler,
                        control,
                        target,
                        n,
                        num_parameters,
                        &mut k_power,
                        &mut coeffs,
                    );
                }
            }
        }

        let column_masks = extract_column_masks(&coeffs, dim, num_parameters)?;
        let base_phase = k_power.iter().map(|&k| f64::from(k) * FRAC_PI_2).collect();
        Ok(Self {
            ansatz: *config,
            num_qubits: n,
            num_parameters,
            k_power,
            base_phase,
            coeffs,
            column_masks,
        })
    }

    /// Returns the exact ansatz shape this table was built for.
    pub fn ansatz(&self) -> &AnsatzConfig {
        &self.ansatz
    }

    /// Returns the number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// Returns the Hilbert-space dimension `2^n`.
    pub fn dim(&self) -> usize {
        1usize << self.num_qubits
    }

    /// Returns the number of trainable parameters.
    pub fn num_parameters(&self) -> usize {
        self.num_parameters
    }

    /// Returns the phase constant `k_r` (power of `i`) of basis index `r`.
    pub fn phase_constant(&self, r: usize) -> u8 {
        self.k_power[r]
    }

    /// Returns the integer coefficient `p_{rj}`.
    pub fn coefficient(&self, r: usize, j: usize) -> i8 {
        self.coeffs[r * self.num_parameters + j]
    }

    /// Returns the Walsh bitmask of parameter `j`: the sparse column-major
    /// encoding of its `±1` row pattern, `p_{rj} = −(−1)^{popcount(r & m_j)}`.
    pub fn column_mask(&self, j: usize) -> u32 {
        self.column_masks[j]
    }

    /// Scatters `θ` into the Walsh spectrum and transforms it into the phase
    /// vector `φ_r = Σ_j p_{rj}·θ_j`, stored in `ws.phase`.
    fn accumulate_phases(&self, theta: &[f64], ws: &mut SymbolicWorkspace) {
        let dim = self.dim();
        ws.ensure(dim);
        let phase = &mut ws.phase[..dim];
        phase.fill(0.0);
        // p_{rj} = −(−1)^{popcount(r & m_j)}, so the spectrum entry is −θ_j.
        for (&mask, &t) in self.column_masks.iter().zip(theta.iter()) {
            phase[mask as usize] -= t;
        }
        enq_simd::walsh_hadamard(phase);
    }

    /// Evaluates the amplitudes `a_r(θ)`.
    ///
    /// # Errors
    ///
    /// Returns [`EnqodeError::DimensionMismatch`] if `theta` has the wrong
    /// length.
    pub fn amplitudes(&self, theta: &[f64]) -> Result<CVector, EnqodeError> {
        self.check_theta(theta)?;
        let mut ws = SymbolicWorkspace::for_state(self);
        self.accumulate_phases(theta, &mut ws);
        let dim = self.dim();
        let scale = 1.0 / (dim as f64).sqrt();
        ws.eval_rows(&self.base_phase, dim);
        let out = (0..dim)
            .map(|r| C64::new(scale * ws.cos[r], scale * ws.sin[r]))
            .collect();
        Ok(CVector::new(out))
    }

    /// Evaluates the overlap `S(θ) = ⟨y|ψ(θ)⟩` without the gradient, using
    /// the caller's workspace (no heap allocations).
    ///
    /// # Errors
    ///
    /// Returns [`EnqodeError::DimensionMismatch`] for mismatched lengths.
    #[allow(clippy::needless_range_loop)]
    pub fn overlap_into(
        &self,
        target_conj: &[C64],
        theta: &[f64],
        ws: &mut SymbolicWorkspace,
    ) -> Result<C64, EnqodeError> {
        self.check_inputs(target_conj, theta)?;
        self.accumulate_phases(theta, ws);
        let dim = self.dim();
        let scale = 1.0 / (dim as f64).sqrt();
        ws.eval_rows(&self.base_phase, dim);
        // Weighted rows through the dispatched backend (w buffers as
        // scratch); the canonical lane-structured sum is the pinned,
        // backend-invariant order. Scale applies once at the end, as the
        // unweighted overlap always has.
        let (sum_re, sum_im) = enq_simd::weighted_rows(
            c64_interleaved(target_conj),
            &ws.sin[..dim],
            &ws.cos[..dim],
            1.0,
            &mut ws.w_re[..dim],
            &mut ws.w_im[..dim],
        );
        Ok(C64::new(scale * sum_re, scale * sum_im))
    }

    /// Evaluates the overlap `S(θ) = ⟨y|ψ(θ)⟩` and its gradient
    /// `∂S/∂θ_j = Σ_r conj(y_r)·(i·p_{rj}/2)·a_r(θ)` into caller-provided
    /// storage, performing **zero heap allocations**.
    ///
    /// The weighted vector `w_r = conj(y_r)·a_r` is built in a
    /// structure-of-arrays layout with one fused `sin_cos` per row; the
    /// gradient is then `∂S/∂θ_j = (i/2)·Ŵ[m_j]` where `Ŵ` is the
    /// Walsh–Hadamard transform of `−w` — one `O(2^n·n)` transform shared by
    /// every parameter, followed by a sparse `P`-entry gather.
    ///
    /// # Errors
    ///
    /// Returns [`EnqodeError::DimensionMismatch`] for mismatched lengths
    /// (including `gradient.len() != num_parameters`).
    #[allow(clippy::needless_range_loop)]
    pub fn overlap_and_gradient_into(
        &self,
        target_conj: &[C64],
        theta: &[f64],
        ws: &mut SymbolicWorkspace,
        gradient: &mut [C64],
    ) -> Result<C64, EnqodeError> {
        self.check_inputs(target_conj, theta)?;
        if gradient.len() != self.num_parameters {
            return Err(EnqodeError::DimensionMismatch {
                expected: self.num_parameters,
                found: gradient.len(),
            });
        }
        self.accumulate_phases(theta, ws);
        let dim = self.dim();
        let scale = 1.0 / (dim as f64).sqrt();
        ws.eval_rows(&self.base_phase, dim);
        // Weighted rows through the dispatched backend; the canonical
        // lane-structured sum is the pinned, backend-invariant order, and
        // [`SymbolicBatch`] reproduces it lane for lane.
        let (sum_re, sum_im) = enq_simd::weighted_rows(
            c64_interleaved(target_conj),
            &ws.sin[..dim],
            &ws.cos[..dim],
            scale,
            &mut ws.w_re[..dim],
            &mut ws.w_im[..dim],
        );
        // d_j = Σ_r p_{rj}·w_r = −WHT(w)[m_j]; ∂S/∂θ_j = (i/2)·d_j.
        enq_simd::walsh_hadamard(&mut ws.w_re[..dim]);
        enq_simd::walsh_hadamard(&mut ws.w_im[..dim]);
        for (g, &mask) in gradient.iter_mut().zip(self.column_masks.iter()) {
            let d_re = -ws.w_re[mask as usize];
            let d_im = -ws.w_im[mask as usize];
            *g = C64::new(-0.5 * d_im, 0.5 * d_re);
        }
        Ok(C64::new(sum_re, sum_im))
    }

    /// Evaluates the overlap `S(θ) = ⟨y|ψ(θ)⟩` and its gradient in a single
    /// pass (allocating convenience wrapper around
    /// [`SymbolicState::overlap_and_gradient_into`]).
    ///
    /// # Errors
    ///
    /// Returns [`EnqodeError::DimensionMismatch`] for mismatched lengths.
    pub fn overlap_and_gradient(
        &self,
        target_conj: &[C64],
        theta: &[f64],
    ) -> Result<(C64, Vec<C64>), EnqodeError> {
        let mut ws = SymbolicWorkspace::for_state(self);
        let mut gradient = vec![C64::ZERO; self.num_parameters];
        let overlap = self.overlap_and_gradient_into(target_conj, theta, &mut ws, &mut gradient)?;
        Ok((overlap, gradient))
    }

    /// The seed's dense row-major reference kernel: walks the full `i8`
    /// coefficient table per row. Kept verbatim as the ground truth the
    /// sparse kernel is tested against (see the `sparse_kernel_equivalence`
    /// integration test) and as the baseline of the `symbolic_kernel`
    /// micro-benchmark.
    ///
    /// # Errors
    ///
    /// Returns [`EnqodeError::DimensionMismatch`] for mismatched lengths.
    #[allow(clippy::needless_range_loop)]
    pub fn overlap_and_gradient_naive(
        &self,
        target_conj: &[C64],
        theta: &[f64],
    ) -> Result<(C64, Vec<C64>), EnqodeError> {
        self.check_inputs(target_conj, theta)?;
        let dim = self.dim();
        let scale = 1.0 / (dim as f64).sqrt();
        let mut overlap = C64::ZERO;
        let mut gradient = vec![C64::ZERO; self.num_parameters];
        for r in 0..dim {
            let mut phase = 0.0f64;
            let row = &self.coeffs[r * self.num_parameters..(r + 1) * self.num_parameters];
            for (p, t) in row.iter().zip(theta.iter()) {
                if *p != 0 {
                    phase += f64::from(*p) * t;
                }
            }
            let amp = C64::cis(phase / 2.0).scale(scale) * i_power(self.k_power[r]);
            let weighted = target_conj[r] * amp;
            overlap += weighted;
            for (j, p) in row.iter().enumerate() {
                if *p != 0 {
                    gradient[j] += weighted.scale(f64::from(*p) * 0.5) * C64::I;
                }
            }
        }
        Ok((overlap, gradient))
    }

    fn check_theta(&self, theta: &[f64]) -> Result<(), EnqodeError> {
        if theta.len() != self.num_parameters {
            return Err(EnqodeError::DimensionMismatch {
                expected: self.num_parameters,
                found: theta.len(),
            });
        }
        Ok(())
    }

    fn check_inputs(&self, target_conj: &[C64], theta: &[f64]) -> Result<(), EnqodeError> {
        if target_conj.len() != self.dim() {
            return Err(EnqodeError::DimensionMismatch {
                expected: self.dim(),
                found: target_conj.len(),
            });
        }
        self.check_theta(theta)
    }
}

/// Batched evaluator: `B` overlap/gradient problems per Walsh–Hadamard
/// sweep, one shared table traversal.
///
/// All per-row buffers are stored **interleaved** — element `r` of problem
/// `b` lives at `buf[r·B + b]` — so every butterfly and every sin/cos sweep
/// touches `B` contiguous lanes. The butterfly schedule is walked once per
/// transform instead of `B` times, and the lanes fill full-width SIMD
/// vectors even at small `2^n` where the single-problem transform's low
/// stages cannot.
///
/// Every lane is **bit-identical** to the corresponding solo
/// [`SymbolicState::overlap_and_gradient_into`] call: the batched butterflies
/// are the same element-wise adds, the sin/cos kernel is shared, and each
/// lane's overlap accumulates sequentially over `r` in the solo order.
///
/// The batch snapshots the state's phase-table metadata and the conjugated
/// targets at construction; [`SymbolicBatch::overlap_and_gradient`] then
/// needs only the flat parameter block and performs zero heap allocations.
#[derive(Debug, Clone)]
pub struct SymbolicBatch {
    lanes: usize,
    num_parameters: usize,
    scale: f64,
    base_phase: Vec<f64>,
    column_masks: Vec<u32>,
    /// Interleaved real parts of the conjugated targets, fixed per batch.
    t_re: Vec<f64>,
    /// Interleaved imaginary parts of the conjugated targets.
    t_im: Vec<f64>,
    phase: Vec<f64>,
    /// Lane-contiguous transpose of the caller's parameter block (scratch).
    theta_t: Vec<f64>,
    w_re: Vec<f64>,
    w_im: Vec<f64>,
    sum_re: Vec<f64>,
    sum_im: Vec<f64>,
}

impl SymbolicBatch {
    /// Builds a batched evaluator for `targets_conj.len()` problems sharing
    /// one symbolic state. Each entry of `targets_conj` is the conjugated
    /// (closing-rotation-adjusted) target of one lane.
    ///
    /// # Errors
    ///
    /// Returns [`EnqodeError::DimensionMismatch`] if any target's length
    /// differs from the state dimension, or [`EnqodeError::InvalidConfig`]
    /// for an empty batch.
    pub fn new(state: &SymbolicState, targets_conj: &[&[C64]]) -> Result<Self, EnqodeError> {
        let lanes = targets_conj.len();
        if lanes == 0 {
            return Err(EnqodeError::InvalidConfig(
                "a symbolic batch needs at least one target".to_string(),
            ));
        }
        let dim = state.dim();
        let mut t_re = vec![0.0; dim * lanes];
        let mut t_im = vec![0.0; dim * lanes];
        for (b, target) in targets_conj.iter().enumerate() {
            if target.len() != dim {
                return Err(EnqodeError::DimensionMismatch {
                    expected: dim,
                    found: target.len(),
                });
            }
            for (r, t) in target.iter().enumerate() {
                t_re[r * lanes + b] = t.re;
                t_im[r * lanes + b] = t.im;
            }
        }
        Ok(Self {
            lanes,
            num_parameters: state.num_parameters(),
            scale: 1.0 / (dim as f64).sqrt(),
            base_phase: state.base_phase.clone(),
            column_masks: state.column_masks.clone(),
            t_re,
            t_im,
            phase: vec![0.0; dim * lanes],
            theta_t: vec![0.0; state.num_parameters() * lanes],
            w_re: vec![0.0; dim * lanes],
            w_im: vec![0.0; dim * lanes],
            sum_re: vec![0.0; lanes],
            sum_im: vec![0.0; lanes],
        })
    }

    /// Returns the number of lanes (problems) in the batch.
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Returns the number of parameters per lane.
    pub fn num_parameters(&self) -> usize {
        self.num_parameters
    }

    /// Evaluates all lanes' overlaps and gradients in one sweep.
    ///
    /// `thetas` and `gradients` are flat lane-major blocks: lane `b`'s
    /// parameter `j` sits at index `b·P + j`. `overlaps[b]` receives lane
    /// `b`'s overlap. Performs zero heap allocations.
    ///
    /// # Errors
    ///
    /// Returns [`EnqodeError::DimensionMismatch`] if any slice length
    /// disagrees with the batch shape.
    pub fn overlap_and_gradient(
        &mut self,
        thetas: &[f64],
        overlaps: &mut [C64],
        gradients: &mut [C64],
    ) -> Result<(), EnqodeError> {
        let (lanes, p) = (self.lanes, self.num_parameters);
        if thetas.len() != lanes * p {
            return Err(EnqodeError::DimensionMismatch {
                expected: lanes * p,
                found: thetas.len(),
            });
        }
        if overlaps.len() != lanes {
            return Err(EnqodeError::DimensionMismatch {
                expected: lanes,
                found: overlaps.len(),
            });
        }
        if gradients.len() != lanes * p {
            return Err(EnqodeError::DimensionMismatch {
                expected: lanes * p,
                found: gradients.len(),
            });
        }
        // Transpose the parameter block to lane-contiguous rows once so the
        // scatter's inner loop runs over contiguous memory on both sides
        // (the straight `thetas[b·P + j]` read walks a different cache line
        // per lane).
        for (b, lane_thetas) in thetas.chunks_exact(p).enumerate() {
            for (j, &t) in lane_thetas.iter().enumerate() {
                self.theta_t[j * lanes + b] = t;
            }
        }
        // Scatter every lane's spectrum, then one batched transform.
        self.phase.fill(0.0);
        for (j, &mask) in self.column_masks.iter().enumerate() {
            let row = mask as usize * lanes;
            let th = &self.theta_t[j * lanes..(j + 1) * lanes];
            for (ph, &t) in self.phase[row..row + lanes].iter_mut().zip(th) {
                *ph -= t;
            }
        }
        enq_simd::walsh_hadamard_batch(&mut self.phase, lanes);
        // One fused sweep (arguments, sin/cos, products, per-lane sums —
        // element-wise over the whole interleaved block, intermediates in
        // registers); each lane reduces in the solo kernel's canonical row
        // order, so the sums are bit-identical per lane.
        enq_simd::fused_weighted_rows(
            &self.phase,
            &self.base_phase,
            &self.t_re,
            &self.t_im,
            self.scale,
            lanes,
            &mut self.w_re,
            &mut self.w_im,
            &mut self.sum_re,
            &mut self.sum_im,
        );
        enq_simd::walsh_hadamard_batch(&mut self.w_re, lanes);
        enq_simd::walsh_hadamard_batch(&mut self.w_im, lanes);
        for (b, o) in overlaps.iter_mut().enumerate() {
            *o = C64::new(self.sum_re[b], self.sum_im[b]);
        }
        // Row-major gather: every mask row's lanes are contiguous.
        for (j, &mask) in self.column_masks.iter().enumerate() {
            let row = mask as usize * lanes;
            for b in 0..lanes {
                let d_re = -self.w_re[row + b];
                let d_im = -self.w_im[row + b];
                gradients[b * p + j] = C64::new(-0.5 * d_im, 0.5 * d_re);
            }
        }
        Ok(())
    }
}

/// Derives the per-column Walsh bitmasks from the dense table and verifies
/// them against every row.
///
/// The Rz columns write `±1` depending on one bit of the (entangler-permuted)
/// row index, and `CX`/`CY` permute rows by XOR maps that are linear over
/// GF(2), so each column must satisfy `p_{rj} = −(−1)^{popcount(r & m_j)}`
/// with `m_j` read off the single-bit rows. The full verification is a
/// one-off `O(2^n·P)` pass at construction; it guards the fast kernels
/// against any future entangler that breaks linearity.
fn extract_column_masks(
    coeffs: &[i8],
    dim: usize,
    num_parameters: usize,
) -> Result<Vec<u32>, EnqodeError> {
    let mut masks = Vec::with_capacity(num_parameters);
    for j in 0..num_parameters {
        let mut mask = 0u32;
        let mut bit = 1usize;
        while bit < dim {
            if coeffs[bit * num_parameters + j] == 1 {
                mask |= bit as u32;
            }
            bit <<= 1;
        }
        masks.push(mask);
    }
    // Verify the character structure for every entry.
    for r in 0..dim {
        let row = &coeffs[r * num_parameters..(r + 1) * num_parameters];
        for (j, &p) in row.iter().enumerate() {
            let expected: i8 = if (r as u32 & masks[j]).count_ones() % 2 == 1 {
                1
            } else {
                -1
            };
            if p != expected {
                return Err(EnqodeError::InvalidConfig(format!(
                    "phase-table column {j} is not a Walsh character at row {r}; \
                     the sparse kernel cannot represent this ansatz"
                )));
            }
        }
    }
    Ok(masks)
}

/// Returns `i^k`.
fn i_power(k: u8) -> C64 {
    match k % 4 {
        0 => C64::ONE,
        1 => C64::I,
        2 => -C64::ONE,
        _ => -C64::I,
    }
}

/// Applies one entangling gate to the phase table.
#[allow(clippy::needless_range_loop)]
fn apply_entangler(
    kind: EntanglerKind,
    control: usize,
    target: usize,
    n: usize,
    num_parameters: usize,
    k_power: &mut [u8],
    coeffs: &mut [i8],
) {
    let dim = 1usize << n;
    let cmask = 1usize << control;
    let tmask = 1usize << target;
    match kind {
        EntanglerKind::Cz => {
            // Diagonal: amplitude picks up −1 when both bits are set.
            for r in 0..dim {
                if r & cmask != 0 && r & tmask != 0 {
                    k_power[r] = (k_power[r] + 2) % 4;
                }
            }
        }
        EntanglerKind::Cx | EntanglerKind::Cy => {
            for r0 in 0..dim {
                // Visit each (control=1, target=0) representative once.
                if r0 & cmask == 0 || r0 & tmask != 0 {
                    continue;
                }
                let r1 = r0 | tmask;
                // The amplitudes at r0 and r1 swap; CY additionally multiplies
                // the one moving into r1 by i and the one moving into r0 by −i.
                k_power.swap(r0, r1);
                for j in 0..num_parameters {
                    coeffs.swap(r0 * num_parameters + j, r1 * num_parameters + j);
                }
                if kind == EntanglerKind::Cy {
                    k_power[r1] = (k_power[r1] + 1) % 4;
                    k_power[r0] = (k_power[r0] + 3) % 4;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use enq_qsim::Statevector;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Reference check: W·ψ_symbolic(θ) must equal the statevector of the
    /// fully bound ansatz circuit.
    fn check_against_simulator(config: &AnsatzConfig, theta: &[f64]) {
        let symbolic = SymbolicState::from_ansatz(config).unwrap();
        let psi = symbolic.amplitudes(theta).unwrap();
        let closed = config.closing_rotation().matvec(&psi);
        let circuit = config.build_bound(theta).unwrap();
        let simulated = Statevector::from_circuit(&circuit).unwrap().to_cvector();
        assert!(
            closed.approx_eq_up_to_phase(&simulated, 1e-9),
            "symbolic state disagrees with the simulator for {config:?}"
        );
    }

    #[test]
    fn matches_simulator_for_small_ansatz() {
        let config = AnsatzConfig {
            num_qubits: 3,
            num_layers: 2,
            entangler: EntanglerKind::Cy,
        };
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..5 {
            let theta: Vec<f64> = (0..config.num_parameters())
                .map(|_| rng.gen_range(-3.0..3.0))
                .collect();
            check_against_simulator(&config, &theta);
        }
    }

    #[test]
    fn matches_simulator_for_paper_shape() {
        let config = AnsatzConfig {
            num_qubits: 5,
            num_layers: 4,
            entangler: EntanglerKind::Cy,
        };
        let mut rng = StdRng::seed_from_u64(2);
        let theta: Vec<f64> = (0..config.num_parameters())
            .map(|_| rng.gen_range(-3.0..3.0))
            .collect();
        check_against_simulator(&config, &theta);
    }

    #[test]
    fn matches_simulator_for_cx_and_cz_entanglers() {
        let mut rng = StdRng::seed_from_u64(3);
        for entangler in [EntanglerKind::Cx, EntanglerKind::Cz] {
            let config = AnsatzConfig {
                num_qubits: 4,
                num_layers: 3,
                entangler,
            };
            let theta: Vec<f64> = (0..config.num_parameters())
                .map(|_| rng.gen_range(-3.0..3.0))
                .collect();
            check_against_simulator(&config, &theta);
        }
    }

    #[test]
    fn amplitudes_have_uniform_magnitude() {
        let config = AnsatzConfig {
            num_qubits: 4,
            num_layers: 3,
            entangler: EntanglerKind::Cy,
        };
        let symbolic = SymbolicState::from_ansatz(&config).unwrap();
        let theta: Vec<f64> = (0..config.num_parameters())
            .map(|j| 0.1 * j as f64)
            .collect();
        let psi = symbolic.amplitudes(&theta).unwrap();
        let expected = 1.0 / 4.0;
        for a in psi.iter() {
            assert!((a.abs() - expected).abs() < 1e-12);
        }
        assert!((psi.norm() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn coefficients_are_ternary() {
        let config = AnsatzConfig::default();
        let symbolic = SymbolicState::from_ansatz(&config).unwrap();
        for r in 0..symbolic.dim() {
            for j in 0..symbolic.num_parameters() {
                let p = symbolic.coefficient(r, j);
                assert!((-1..=1).contains(&p), "coefficient {p} at ({r},{j})");
            }
        }
    }

    #[test]
    fn column_masks_reproduce_the_dense_table() {
        for entangler in [EntanglerKind::Cy, EntanglerKind::Cx, EntanglerKind::Cz] {
            let config = AnsatzConfig {
                num_qubits: 4,
                num_layers: 5,
                entangler,
            };
            let symbolic = SymbolicState::from_ansatz(&config).unwrap();
            for r in 0..symbolic.dim() {
                for j in 0..symbolic.num_parameters() {
                    let mask = symbolic.column_mask(j);
                    let sign = if (r as u32 & mask).count_ones() % 2 == 1 {
                        1
                    } else {
                        -1
                    };
                    assert_eq!(symbolic.coefficient(r, j), sign);
                }
            }
        }
    }

    #[test]
    fn sparse_kernel_matches_naive_reference() {
        let mut rng = StdRng::seed_from_u64(12);
        for entangler in [EntanglerKind::Cy, EntanglerKind::Cx, EntanglerKind::Cz] {
            let config = AnsatzConfig {
                num_qubits: 4,
                num_layers: 4,
                entangler,
            };
            let symbolic = SymbolicState::from_ansatz(&config).unwrap();
            let theta: Vec<f64> = (0..config.num_parameters())
                .map(|_| rng.gen_range(-3.0..3.0))
                .collect();
            let target_conj: Vec<C64> = (0..symbolic.dim())
                .map(|_| C64::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)))
                .collect();
            let (s_fast, g_fast) = symbolic.overlap_and_gradient(&target_conj, &theta).unwrap();
            let (s_naive, g_naive) = symbolic
                .overlap_and_gradient_naive(&target_conj, &theta)
                .unwrap();
            assert!(s_fast.approx_eq(s_naive, 1e-12), "{s_fast} vs {s_naive}");
            for (a, b) in g_fast.iter().zip(g_naive.iter()) {
                assert!(a.approx_eq(*b, 1e-12), "{a} vs {b}");
            }
        }
    }

    #[test]
    fn workspace_reuse_is_consistent_across_states() {
        // One workspace shared by states of different sizes must keep giving
        // correct results (buffers only ever grow).
        let mut ws = SymbolicWorkspace::new();
        let mut rng = StdRng::seed_from_u64(21);
        for qubits in [5usize, 3, 4] {
            let config = AnsatzConfig {
                num_qubits: qubits,
                num_layers: 3,
                entangler: EntanglerKind::Cy,
            };
            let symbolic = SymbolicState::from_ansatz(&config).unwrap();
            let theta: Vec<f64> = (0..config.num_parameters())
                .map(|_| rng.gen_range(-2.0..2.0))
                .collect();
            let target_conj: Vec<C64> = (0..symbolic.dim())
                .map(|_| C64::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)))
                .collect();
            let mut gradient = vec![C64::ZERO; config.num_parameters()];
            let s = symbolic
                .overlap_and_gradient_into(&target_conj, &theta, &mut ws, &mut gradient)
                .unwrap();
            let (s_ref, g_ref) = symbolic
                .overlap_and_gradient_naive(&target_conj, &theta)
                .unwrap();
            assert!(s.approx_eq(s_ref, 1e-12));
            for (a, b) in gradient.iter().zip(g_ref.iter()) {
                assert!(a.approx_eq(*b, 1e-12));
            }
            // The no-gradient path agrees too.
            let s_only = symbolic
                .overlap_into(&target_conj, &theta, &mut ws)
                .unwrap();
            assert!(s_only.approx_eq(s_ref, 1e-12));
        }
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let config = AnsatzConfig {
            num_qubits: 3,
            num_layers: 2,
            entangler: EntanglerKind::Cy,
        };
        let symbolic = SymbolicState::from_ansatz(&config).unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        let theta: Vec<f64> = (0..config.num_parameters())
            .map(|_| rng.gen_range(-1.0..1.0))
            .collect();
        let target: Vec<C64> = (0..symbolic.dim())
            .map(|_| C64::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)))
            .collect();
        let target_conj: Vec<C64> = target.iter().map(|z| z.conj()).collect();

        let (_, gradient) = symbolic.overlap_and_gradient(&target_conj, &theta).unwrap();
        let eps = 1e-6;
        for j in 0..theta.len() {
            let mut plus = theta.clone();
            plus[j] += eps;
            let mut minus = theta.clone();
            minus[j] -= eps;
            let overlap = |t: &[f64]| -> C64 {
                let amps = symbolic.amplitudes(t).unwrap();
                (0..symbolic.dim()).map(|r| target_conj[r] * amps[r]).sum()
            };
            let numerical = (overlap(&plus) - overlap(&minus)) / (2.0 * eps);
            assert!(
                gradient[j].approx_eq(numerical, 1e-5),
                "gradient mismatch at {j}: analytic {} vs numerical {}",
                gradient[j],
                numerical
            );
        }
    }

    #[test]
    fn wrong_theta_length_rejected() {
        let config = AnsatzConfig::with_qubits(3);
        let symbolic = SymbolicState::from_ansatz(&config).unwrap();
        assert!(symbolic.amplitudes(&[0.0; 3]).is_err());
        let mut ws = SymbolicWorkspace::new();
        let target = vec![C64::ZERO; symbolic.dim()];
        assert!(symbolic.overlap_into(&target, &[0.0; 3], &mut ws).is_err());
        let mut short_grad = vec![C64::ZERO; 2];
        let theta = vec![0.0; symbolic.num_parameters()];
        assert!(symbolic
            .overlap_and_gradient_into(&target, &theta, &mut ws, &mut short_grad)
            .is_err());
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn walsh_hadamard_matches_direct_sum() {
        let input = [0.5, -1.0, 2.0, 0.25, -0.75, 1.5, 0.0, 3.0];
        let mut data = input;
        enq_simd::walsh_hadamard(&mut data);
        for r in 0..8usize {
            let direct: f64 = input
                .iter()
                .enumerate()
                .map(|(m, v)| {
                    if (r & m).count_ones() % 2 == 1 {
                        -v
                    } else {
                        *v
                    }
                })
                .sum();
            assert!((data[r] - direct).abs() < 1e-12);
        }
    }

    #[test]
    fn shrink_then_reuse_ignores_poisoned_tails() {
        // Serve a 6-qubit state, poison every scratch tail with NaN, then
        // reuse the workspace for a 3-qubit state: the grow-only buffers'
        // stale region must stay unobservable.
        let mut ws = SymbolicWorkspace::new();
        let mut rng = StdRng::seed_from_u64(33);
        let big = SymbolicState::from_ansatz(&AnsatzConfig {
            num_qubits: 6,
            num_layers: 3,
            entangler: EntanglerKind::Cy,
        })
        .unwrap();
        let theta_big: Vec<f64> = (0..big.num_parameters())
            .map(|_| rng.gen_range(-2.0..2.0))
            .collect();
        let target_big: Vec<C64> = (0..big.dim())
            .map(|_| C64::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)))
            .collect();
        let mut grad_big = vec![C64::ZERO; big.num_parameters()];
        big.overlap_and_gradient_into(&target_big, &theta_big, &mut ws, &mut grad_big)
            .unwrap();

        for buf in [
            &mut ws.phase,
            &mut ws.args,
            &mut ws.sin,
            &mut ws.cos,
            &mut ws.w_re,
            &mut ws.w_im,
        ] {
            buf.fill(f64::NAN);
        }

        let small = SymbolicState::from_ansatz(&AnsatzConfig {
            num_qubits: 3,
            num_layers: 2,
            entangler: EntanglerKind::Cy,
        })
        .unwrap();
        let theta: Vec<f64> = (0..small.num_parameters())
            .map(|_| rng.gen_range(-2.0..2.0))
            .collect();
        let target: Vec<C64> = (0..small.dim())
            .map(|_| C64::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)))
            .collect();
        let mut gradient = vec![C64::ZERO; small.num_parameters()];
        let s = small
            .overlap_and_gradient_into(&target, &theta, &mut ws, &mut gradient)
            .unwrap();
        assert!(s.re.is_finite() && s.im.is_finite());
        let (s_ref, g_ref) = small.overlap_and_gradient_naive(&target, &theta).unwrap();
        assert!(s.approx_eq(s_ref, 1e-12));
        for (a, b) in gradient.iter().zip(g_ref.iter()) {
            assert!(a.approx_eq(*b, 1e-12));
        }
        // The overlap-only path shares the buffers and must be immune too.
        let s_only = small.overlap_into(&target, &theta, &mut ws).unwrap();
        assert!(s_only.approx_eq(s_ref, 1e-12));
    }

    #[test]
    fn batched_lanes_are_bit_identical_to_solo_calls() {
        let config = AnsatzConfig {
            num_qubits: 5,
            num_layers: 4,
            entangler: EntanglerKind::Cy,
        };
        let symbolic = SymbolicState::from_ansatz(&config).unwrap();
        let p = symbolic.num_parameters();
        let mut rng = StdRng::seed_from_u64(44);
        for lanes in [1usize, 2, 7, 16] {
            let targets: Vec<Vec<C64>> = (0..lanes)
                .map(|_| {
                    (0..symbolic.dim())
                        .map(|_| C64::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)))
                        .collect()
                })
                .collect();
            let refs: Vec<&[C64]> = targets.iter().map(|t| t.as_slice()).collect();
            let mut batch = SymbolicBatch::new(&symbolic, &refs).unwrap();
            let thetas: Vec<f64> = (0..lanes * p).map(|_| rng.gen_range(-3.0..3.0)).collect();
            let mut overlaps = vec![C64::ZERO; lanes];
            let mut gradients = vec![C64::ZERO; lanes * p];
            batch
                .overlap_and_gradient(&thetas, &mut overlaps, &mut gradients)
                .unwrap();
            let mut ws = SymbolicWorkspace::for_state(&symbolic);
            for b in 0..lanes {
                let mut solo_grad = vec![C64::ZERO; p];
                let solo = symbolic
                    .overlap_and_gradient_into(
                        &targets[b],
                        &thetas[b * p..(b + 1) * p],
                        &mut ws,
                        &mut solo_grad,
                    )
                    .unwrap();
                assert_eq!(overlaps[b].re.to_bits(), solo.re.to_bits(), "lane {b}");
                assert_eq!(overlaps[b].im.to_bits(), solo.im.to_bits(), "lane {b}");
                for (j, (bg, sg)) in gradients[b * p..(b + 1) * p]
                    .iter()
                    .zip(solo_grad.iter())
                    .enumerate()
                {
                    assert_eq!(bg.re.to_bits(), sg.re.to_bits(), "lane {b} param {j}");
                    assert_eq!(bg.im.to_bits(), sg.im.to_bits(), "lane {b} param {j}");
                }
            }
        }
    }

    #[test]
    fn batch_rejects_bad_shapes() {
        let symbolic = SymbolicState::from_ansatz(&AnsatzConfig::with_qubits(3)).unwrap();
        assert!(SymbolicBatch::new(&symbolic, &[]).is_err());
        let short = vec![C64::ZERO; symbolic.dim() - 1];
        assert!(SymbolicBatch::new(&symbolic, &[short.as_slice()]).is_err());
        let target = vec![C64::ZERO; symbolic.dim()];
        let mut batch = SymbolicBatch::new(&symbolic, &[target.as_slice()]).unwrap();
        let p = batch.num_parameters();
        let mut overlaps = vec![C64::ZERO; 1];
        let mut gradients = vec![C64::ZERO; p];
        assert!(batch
            .overlap_and_gradient(&vec![0.0; p - 1], &mut overlaps, &mut gradients)
            .is_err());
        assert!(batch
            .overlap_and_gradient(&vec![0.0; p], &mut [], &mut gradients)
            .is_err());
        assert!(batch
            .overlap_and_gradient(&vec![0.0; p], &mut overlaps, &mut gradients[..p - 1])
            .is_err());
    }
}

//! The symbolic phase-table representation of the ansatz state (Eq. 6).
//!
//! Because the interior of EnQode's ansatz applies only diagonal `Rz`
//! rotations and `CY` permutations to the uniform-magnitude product state
//! `⊗(|0⟩+i|1⟩)/√2`, every amplitude stays of the form
//!
//! ```text
//! a_r(θ) = i^{k_r} · exp(i·Σ_j p_{rj}·θ_j / 2) / √(2^n),   p_{rj} ∈ {−1,+1}
//! ```
//!
//! The integer table `(k_r, p_{rj})` is computed once per ansatz shape; the
//! state and its exact Jacobian are then closed-form functions of `θ`, which
//! is what makes EnQode's training fast.
//!
//! # The sparse column structure
//!
//! The dense table hides a much stronger structure that the optimised kernel
//! exploits. Each entangler (`CX`/`CY`) permutes basis rows by the XOR map
//! `r → r ⊕ ((r≫c)&1)≪t`, which is *linear over GF(2)*; `CZ` only touches the
//! constant `k_r`. Composing linear maps keeps them linear, so the sign
//! column of every parameter `j` is a Walsh character: there is a per-column
//! bitmask `m_j` with
//!
//! ```text
//! p_{rj} = −(−1)^{popcount(r & m_j)}.
//! ```
//!
//! Two consequences drive [`SymbolicState::overlap_and_gradient_into`]:
//!
//! * the phase vector `φ_r = Σ_j p_{rj}·θ_j` is the (unnormalised)
//!   Walsh–Hadamard transform of the **P-sparse spectrum** `c[m_j] −= θ_j`,
//!   computable in `O(2^n·n)` instead of the dense `O(2^n·n·L)` walk;
//! * each gradient component is a single entry of the Walsh–Hadamard
//!   transform of the weighted overlap vector, so the whole gradient is one
//!   more `O(2^n·n)` transform followed by a `P`-entry gather.
//!
//! Amplitudes are evaluated in a structure-of-arrays scratch held by a
//! reusable [`SymbolicWorkspace`] with one fused [`f64::sin_cos`] per row and
//! zero heap allocations per evaluation. The seed's dense-walk kernel is
//! retained as [`SymbolicState::overlap_and_gradient_naive`] — the reference
//! the equivalence tests and the `symbolic_kernel` micro-benchmark compare
//! against.

use crate::ansatz::{AnsatzConfig, EntanglerKind};
use crate::error::EnqodeError;
use enq_linalg::{CVector, C64};
use std::f64::consts::FRAC_PI_2;

/// The symbolic state `|ψ(θ)⟩` of an EnQode ansatz, before the closing
/// rotation column.
#[derive(Debug, Clone, PartialEq)]
pub struct SymbolicState {
    /// The exact ansatz shape this table was built for (entangler included —
    /// the entangler permutes rows, so tables of equal size are not
    /// interchangeable across entangler kinds).
    ansatz: AnsatzConfig,
    num_qubits: usize,
    num_parameters: usize,
    /// Phase constant per basis index, stored as a power of `i` (mod 4).
    k_power: Vec<u8>,
    /// `k_power` pre-multiplied to radians: `k_r·π/2`.
    base_phase: Vec<f64>,
    /// Integer coefficient of each parameter in each amplitude's phase,
    /// flattened row-major: `coeff[r * num_parameters + j] ∈ {−1, 1}`.
    /// Retained as the naive reference; the fast kernels use `column_masks`.
    coeffs: Vec<i8>,
    /// Per-parameter Walsh bitmask: `p_{rj} = −(−1)^{popcount(r & m_j)}`.
    column_masks: Vec<u32>,
}

/// Reusable scratch buffers for the symbolic kernels.
///
/// Holds the phase accumulator and the structure-of-arrays weighted-overlap
/// buffers so that repeated evaluations (every L-BFGS iteration of every
/// restart) perform **zero heap allocations**. One workspace serves any
/// number of states; buffers grow on demand and are reused in place.
#[derive(Debug, Clone, Default)]
pub struct SymbolicWorkspace {
    /// Phase accumulator; doubles as the Walsh spectrum before the transform.
    phase: Vec<f64>,
    /// Real part of `w_r = conj(y_r)·a_r(θ)`.
    w_re: Vec<f64>,
    /// Imaginary part of `w_r`.
    w_im: Vec<f64>,
}

impl SymbolicWorkspace {
    /// Creates an empty workspace (buffers are sized lazily).
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a workspace pre-sized for one state.
    pub fn for_state(state: &SymbolicState) -> Self {
        let mut ws = Self::new();
        ws.ensure(state.dim());
        ws
    }

    fn ensure(&mut self, dim: usize) {
        if self.phase.len() < dim {
            self.phase.resize(dim, 0.0);
            self.w_re.resize(dim, 0.0);
            self.w_im.resize(dim, 0.0);
        }
    }
}

/// In-place unnormalised Walsh–Hadamard transform:
/// `out[r] = Σ_m in[m]·(−1)^{popcount(r & m)}`.
#[inline]
fn walsh_hadamard_in_place(data: &mut [f64]) {
    let n = data.len();
    let mut h = 1;
    while h < n {
        let mut block = 0;
        while block < n {
            for i in block..block + h {
                let a = data[i];
                let b = data[i + h];
                data[i] = a + b;
                data[i + h] = a - b;
            }
            block += h * 2;
        }
        h *= 2;
    }
}

impl SymbolicState {
    /// Builds the symbolic representation of the given ansatz shape.
    ///
    /// # Errors
    ///
    /// Returns [`EnqodeError::InvalidConfig`] for invalid configurations.
    pub fn from_ansatz(config: &AnsatzConfig) -> Result<Self, EnqodeError> {
        config.validate()?;
        let n = config.num_qubits;
        let dim = 1usize << n;
        let num_parameters = config.num_parameters();

        // Initial state after the Rx(−π/2) column: a_r = i^{popcount(r)}/√2ⁿ.
        let mut k_power: Vec<u8> = (0..dim).map(|r| (r.count_ones() % 4) as u8).collect();
        let mut coeffs = vec![0i8; dim * num_parameters];

        for layer in 0..config.num_layers {
            // Parameterised Rz column: Rz(θ) multiplies |0⟩ amplitudes by
            // e^{−iθ/2} and |1⟩ amplitudes by e^{+iθ/2}.
            for q in 0..n {
                let j = layer * n + q;
                for r in 0..dim {
                    let sign: i8 = if (r >> q) & 1 == 1 { 1 } else { -1 };
                    coeffs[r * num_parameters + j] += sign;
                }
            }
            // Entangler column (the final Rz column has no trailing
            // entangler, mirroring the ansatz construction).
            if layer + 1 < config.num_layers {
                for (control, target) in config.entangler_pairs(layer) {
                    apply_entangler(
                        config.entangler,
                        control,
                        target,
                        n,
                        num_parameters,
                        &mut k_power,
                        &mut coeffs,
                    );
                }
            }
        }

        let column_masks = extract_column_masks(&coeffs, dim, num_parameters)?;
        let base_phase = k_power.iter().map(|&k| f64::from(k) * FRAC_PI_2).collect();
        Ok(Self {
            ansatz: *config,
            num_qubits: n,
            num_parameters,
            k_power,
            base_phase,
            coeffs,
            column_masks,
        })
    }

    /// Returns the exact ansatz shape this table was built for.
    pub fn ansatz(&self) -> &AnsatzConfig {
        &self.ansatz
    }

    /// Returns the number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// Returns the Hilbert-space dimension `2^n`.
    pub fn dim(&self) -> usize {
        1usize << self.num_qubits
    }

    /// Returns the number of trainable parameters.
    pub fn num_parameters(&self) -> usize {
        self.num_parameters
    }

    /// Returns the phase constant `k_r` (power of `i`) of basis index `r`.
    pub fn phase_constant(&self, r: usize) -> u8 {
        self.k_power[r]
    }

    /// Returns the integer coefficient `p_{rj}`.
    pub fn coefficient(&self, r: usize, j: usize) -> i8 {
        self.coeffs[r * self.num_parameters + j]
    }

    /// Returns the Walsh bitmask of parameter `j`: the sparse column-major
    /// encoding of its `±1` row pattern, `p_{rj} = −(−1)^{popcount(r & m_j)}`.
    pub fn column_mask(&self, j: usize) -> u32 {
        self.column_masks[j]
    }

    /// Scatters `θ` into the Walsh spectrum and transforms it into the phase
    /// vector `φ_r = Σ_j p_{rj}·θ_j`, stored in `ws.phase`.
    fn accumulate_phases(&self, theta: &[f64], ws: &mut SymbolicWorkspace) {
        let dim = self.dim();
        ws.ensure(dim);
        let phase = &mut ws.phase[..dim];
        phase.fill(0.0);
        // p_{rj} = −(−1)^{popcount(r & m_j)}, so the spectrum entry is −θ_j.
        for (&mask, &t) in self.column_masks.iter().zip(theta.iter()) {
            phase[mask as usize] -= t;
        }
        walsh_hadamard_in_place(phase);
    }

    /// Evaluates the amplitudes `a_r(θ)`.
    ///
    /// # Errors
    ///
    /// Returns [`EnqodeError::DimensionMismatch`] if `theta` has the wrong
    /// length.
    pub fn amplitudes(&self, theta: &[f64]) -> Result<CVector, EnqodeError> {
        self.check_theta(theta)?;
        let mut ws = SymbolicWorkspace::for_state(self);
        self.accumulate_phases(theta, &mut ws);
        let dim = self.dim();
        let scale = 1.0 / (dim as f64).sqrt();
        let out = (0..dim)
            .map(|r| {
                let (s, c) = (0.5 * ws.phase[r] + self.base_phase[r]).sin_cos();
                C64::new(scale * c, scale * s)
            })
            .collect();
        Ok(CVector::new(out))
    }

    /// Evaluates the overlap `S(θ) = ⟨y|ψ(θ)⟩` without the gradient, using
    /// the caller's workspace (no heap allocations).
    ///
    /// # Errors
    ///
    /// Returns [`EnqodeError::DimensionMismatch`] for mismatched lengths.
    #[allow(clippy::needless_range_loop)]
    pub fn overlap_into(
        &self,
        target_conj: &[C64],
        theta: &[f64],
        ws: &mut SymbolicWorkspace,
    ) -> Result<C64, EnqodeError> {
        self.check_inputs(target_conj, theta)?;
        self.accumulate_phases(theta, ws);
        let dim = self.dim();
        let scale = 1.0 / (dim as f64).sqrt();
        let mut sum_re = 0.0;
        let mut sum_im = 0.0;
        for r in 0..dim {
            let (s, c) = (0.5 * ws.phase[r] + self.base_phase[r]).sin_cos();
            let t = target_conj[r];
            sum_re += t.re * c - t.im * s;
            sum_im += t.re * s + t.im * c;
        }
        Ok(C64::new(scale * sum_re, scale * sum_im))
    }

    /// Evaluates the overlap `S(θ) = ⟨y|ψ(θ)⟩` and its gradient
    /// `∂S/∂θ_j = Σ_r conj(y_r)·(i·p_{rj}/2)·a_r(θ)` into caller-provided
    /// storage, performing **zero heap allocations**.
    ///
    /// The weighted vector `w_r = conj(y_r)·a_r` is built in a
    /// structure-of-arrays layout with one fused `sin_cos` per row; the
    /// gradient is then `∂S/∂θ_j = (i/2)·Ŵ[m_j]` where `Ŵ` is the
    /// Walsh–Hadamard transform of `−w` — one `O(2^n·n)` transform shared by
    /// every parameter, followed by a sparse `P`-entry gather.
    ///
    /// # Errors
    ///
    /// Returns [`EnqodeError::DimensionMismatch`] for mismatched lengths
    /// (including `gradient.len() != num_parameters`).
    #[allow(clippy::needless_range_loop)]
    pub fn overlap_and_gradient_into(
        &self,
        target_conj: &[C64],
        theta: &[f64],
        ws: &mut SymbolicWorkspace,
        gradient: &mut [C64],
    ) -> Result<C64, EnqodeError> {
        self.check_inputs(target_conj, theta)?;
        if gradient.len() != self.num_parameters {
            return Err(EnqodeError::DimensionMismatch {
                expected: self.num_parameters,
                found: gradient.len(),
            });
        }
        self.accumulate_phases(theta, ws);
        let dim = self.dim();
        let scale = 1.0 / (dim as f64).sqrt();
        let mut sum_re = 0.0;
        let mut sum_im = 0.0;
        {
            let phase = &ws.phase[..dim];
            let w_re = &mut ws.w_re[..dim];
            let w_im = &mut ws.w_im[..dim];
            for r in 0..dim {
                let (s, c) = (0.5 * phase[r] + self.base_phase[r]).sin_cos();
                let t = target_conj[r];
                let re = scale * (t.re * c - t.im * s);
                let im = scale * (t.re * s + t.im * c);
                w_re[r] = re;
                w_im[r] = im;
                sum_re += re;
                sum_im += im;
            }
        }
        // d_j = Σ_r p_{rj}·w_r = −WHT(w)[m_j]; ∂S/∂θ_j = (i/2)·d_j.
        walsh_hadamard_in_place(&mut ws.w_re[..dim]);
        walsh_hadamard_in_place(&mut ws.w_im[..dim]);
        for (g, &mask) in gradient.iter_mut().zip(self.column_masks.iter()) {
            let d_re = -ws.w_re[mask as usize];
            let d_im = -ws.w_im[mask as usize];
            *g = C64::new(-0.5 * d_im, 0.5 * d_re);
        }
        Ok(C64::new(sum_re, sum_im))
    }

    /// Evaluates the overlap `S(θ) = ⟨y|ψ(θ)⟩` and its gradient in a single
    /// pass (allocating convenience wrapper around
    /// [`SymbolicState::overlap_and_gradient_into`]).
    ///
    /// # Errors
    ///
    /// Returns [`EnqodeError::DimensionMismatch`] for mismatched lengths.
    pub fn overlap_and_gradient(
        &self,
        target_conj: &[C64],
        theta: &[f64],
    ) -> Result<(C64, Vec<C64>), EnqodeError> {
        let mut ws = SymbolicWorkspace::for_state(self);
        let mut gradient = vec![C64::ZERO; self.num_parameters];
        let overlap = self.overlap_and_gradient_into(target_conj, theta, &mut ws, &mut gradient)?;
        Ok((overlap, gradient))
    }

    /// The seed's dense row-major reference kernel: walks the full `i8`
    /// coefficient table per row. Kept verbatim as the ground truth the
    /// sparse kernel is tested against (see the `sparse_kernel_equivalence`
    /// integration test) and as the baseline of the `symbolic_kernel`
    /// micro-benchmark.
    ///
    /// # Errors
    ///
    /// Returns [`EnqodeError::DimensionMismatch`] for mismatched lengths.
    #[allow(clippy::needless_range_loop)]
    pub fn overlap_and_gradient_naive(
        &self,
        target_conj: &[C64],
        theta: &[f64],
    ) -> Result<(C64, Vec<C64>), EnqodeError> {
        self.check_inputs(target_conj, theta)?;
        let dim = self.dim();
        let scale = 1.0 / (dim as f64).sqrt();
        let mut overlap = C64::ZERO;
        let mut gradient = vec![C64::ZERO; self.num_parameters];
        for r in 0..dim {
            let mut phase = 0.0f64;
            let row = &self.coeffs[r * self.num_parameters..(r + 1) * self.num_parameters];
            for (p, t) in row.iter().zip(theta.iter()) {
                if *p != 0 {
                    phase += f64::from(*p) * t;
                }
            }
            let amp = C64::cis(phase / 2.0).scale(scale) * i_power(self.k_power[r]);
            let weighted = target_conj[r] * amp;
            overlap += weighted;
            for (j, p) in row.iter().enumerate() {
                if *p != 0 {
                    gradient[j] += weighted.scale(f64::from(*p) * 0.5) * C64::I;
                }
            }
        }
        Ok((overlap, gradient))
    }

    fn check_theta(&self, theta: &[f64]) -> Result<(), EnqodeError> {
        if theta.len() != self.num_parameters {
            return Err(EnqodeError::DimensionMismatch {
                expected: self.num_parameters,
                found: theta.len(),
            });
        }
        Ok(())
    }

    fn check_inputs(&self, target_conj: &[C64], theta: &[f64]) -> Result<(), EnqodeError> {
        if target_conj.len() != self.dim() {
            return Err(EnqodeError::DimensionMismatch {
                expected: self.dim(),
                found: target_conj.len(),
            });
        }
        self.check_theta(theta)
    }
}

/// Derives the per-column Walsh bitmasks from the dense table and verifies
/// them against every row.
///
/// The Rz columns write `±1` depending on one bit of the (entangler-permuted)
/// row index, and `CX`/`CY` permute rows by XOR maps that are linear over
/// GF(2), so each column must satisfy `p_{rj} = −(−1)^{popcount(r & m_j)}`
/// with `m_j` read off the single-bit rows. The full verification is a
/// one-off `O(2^n·P)` pass at construction; it guards the fast kernels
/// against any future entangler that breaks linearity.
fn extract_column_masks(
    coeffs: &[i8],
    dim: usize,
    num_parameters: usize,
) -> Result<Vec<u32>, EnqodeError> {
    let mut masks = Vec::with_capacity(num_parameters);
    for j in 0..num_parameters {
        let mut mask = 0u32;
        let mut bit = 1usize;
        while bit < dim {
            if coeffs[bit * num_parameters + j] == 1 {
                mask |= bit as u32;
            }
            bit <<= 1;
        }
        masks.push(mask);
    }
    // Verify the character structure for every entry.
    for r in 0..dim {
        let row = &coeffs[r * num_parameters..(r + 1) * num_parameters];
        for (j, &p) in row.iter().enumerate() {
            let expected: i8 = if (r as u32 & masks[j]).count_ones() % 2 == 1 {
                1
            } else {
                -1
            };
            if p != expected {
                return Err(EnqodeError::InvalidConfig(format!(
                    "phase-table column {j} is not a Walsh character at row {r}; \
                     the sparse kernel cannot represent this ansatz"
                )));
            }
        }
    }
    Ok(masks)
}

/// Returns `i^k`.
fn i_power(k: u8) -> C64 {
    match k % 4 {
        0 => C64::ONE,
        1 => C64::I,
        2 => -C64::ONE,
        _ => -C64::I,
    }
}

/// Applies one entangling gate to the phase table.
#[allow(clippy::needless_range_loop)]
fn apply_entangler(
    kind: EntanglerKind,
    control: usize,
    target: usize,
    n: usize,
    num_parameters: usize,
    k_power: &mut [u8],
    coeffs: &mut [i8],
) {
    let dim = 1usize << n;
    let cmask = 1usize << control;
    let tmask = 1usize << target;
    match kind {
        EntanglerKind::Cz => {
            // Diagonal: amplitude picks up −1 when both bits are set.
            for r in 0..dim {
                if r & cmask != 0 && r & tmask != 0 {
                    k_power[r] = (k_power[r] + 2) % 4;
                }
            }
        }
        EntanglerKind::Cx | EntanglerKind::Cy => {
            for r0 in 0..dim {
                // Visit each (control=1, target=0) representative once.
                if r0 & cmask == 0 || r0 & tmask != 0 {
                    continue;
                }
                let r1 = r0 | tmask;
                // The amplitudes at r0 and r1 swap; CY additionally multiplies
                // the one moving into r1 by i and the one moving into r0 by −i.
                k_power.swap(r0, r1);
                for j in 0..num_parameters {
                    coeffs.swap(r0 * num_parameters + j, r1 * num_parameters + j);
                }
                if kind == EntanglerKind::Cy {
                    k_power[r1] = (k_power[r1] + 1) % 4;
                    k_power[r0] = (k_power[r0] + 3) % 4;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use enq_qsim::Statevector;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Reference check: W·ψ_symbolic(θ) must equal the statevector of the
    /// fully bound ansatz circuit.
    fn check_against_simulator(config: &AnsatzConfig, theta: &[f64]) {
        let symbolic = SymbolicState::from_ansatz(config).unwrap();
        let psi = symbolic.amplitudes(theta).unwrap();
        let closed = config.closing_rotation().matvec(&psi);
        let circuit = config.build_bound(theta).unwrap();
        let simulated = Statevector::from_circuit(&circuit).unwrap().to_cvector();
        assert!(
            closed.approx_eq_up_to_phase(&simulated, 1e-9),
            "symbolic state disagrees with the simulator for {config:?}"
        );
    }

    #[test]
    fn matches_simulator_for_small_ansatz() {
        let config = AnsatzConfig {
            num_qubits: 3,
            num_layers: 2,
            entangler: EntanglerKind::Cy,
        };
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..5 {
            let theta: Vec<f64> = (0..config.num_parameters())
                .map(|_| rng.gen_range(-3.0..3.0))
                .collect();
            check_against_simulator(&config, &theta);
        }
    }

    #[test]
    fn matches_simulator_for_paper_shape() {
        let config = AnsatzConfig {
            num_qubits: 5,
            num_layers: 4,
            entangler: EntanglerKind::Cy,
        };
        let mut rng = StdRng::seed_from_u64(2);
        let theta: Vec<f64> = (0..config.num_parameters())
            .map(|_| rng.gen_range(-3.0..3.0))
            .collect();
        check_against_simulator(&config, &theta);
    }

    #[test]
    fn matches_simulator_for_cx_and_cz_entanglers() {
        let mut rng = StdRng::seed_from_u64(3);
        for entangler in [EntanglerKind::Cx, EntanglerKind::Cz] {
            let config = AnsatzConfig {
                num_qubits: 4,
                num_layers: 3,
                entangler,
            };
            let theta: Vec<f64> = (0..config.num_parameters())
                .map(|_| rng.gen_range(-3.0..3.0))
                .collect();
            check_against_simulator(&config, &theta);
        }
    }

    #[test]
    fn amplitudes_have_uniform_magnitude() {
        let config = AnsatzConfig {
            num_qubits: 4,
            num_layers: 3,
            entangler: EntanglerKind::Cy,
        };
        let symbolic = SymbolicState::from_ansatz(&config).unwrap();
        let theta: Vec<f64> = (0..config.num_parameters())
            .map(|j| 0.1 * j as f64)
            .collect();
        let psi = symbolic.amplitudes(&theta).unwrap();
        let expected = 1.0 / 4.0;
        for a in psi.iter() {
            assert!((a.abs() - expected).abs() < 1e-12);
        }
        assert!((psi.norm() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn coefficients_are_ternary() {
        let config = AnsatzConfig::default();
        let symbolic = SymbolicState::from_ansatz(&config).unwrap();
        for r in 0..symbolic.dim() {
            for j in 0..symbolic.num_parameters() {
                let p = symbolic.coefficient(r, j);
                assert!((-1..=1).contains(&p), "coefficient {p} at ({r},{j})");
            }
        }
    }

    #[test]
    fn column_masks_reproduce_the_dense_table() {
        for entangler in [EntanglerKind::Cy, EntanglerKind::Cx, EntanglerKind::Cz] {
            let config = AnsatzConfig {
                num_qubits: 4,
                num_layers: 5,
                entangler,
            };
            let symbolic = SymbolicState::from_ansatz(&config).unwrap();
            for r in 0..symbolic.dim() {
                for j in 0..symbolic.num_parameters() {
                    let mask = symbolic.column_mask(j);
                    let sign = if (r as u32 & mask).count_ones() % 2 == 1 {
                        1
                    } else {
                        -1
                    };
                    assert_eq!(symbolic.coefficient(r, j), sign);
                }
            }
        }
    }

    #[test]
    fn sparse_kernel_matches_naive_reference() {
        let mut rng = StdRng::seed_from_u64(12);
        for entangler in [EntanglerKind::Cy, EntanglerKind::Cx, EntanglerKind::Cz] {
            let config = AnsatzConfig {
                num_qubits: 4,
                num_layers: 4,
                entangler,
            };
            let symbolic = SymbolicState::from_ansatz(&config).unwrap();
            let theta: Vec<f64> = (0..config.num_parameters())
                .map(|_| rng.gen_range(-3.0..3.0))
                .collect();
            let target_conj: Vec<C64> = (0..symbolic.dim())
                .map(|_| C64::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)))
                .collect();
            let (s_fast, g_fast) = symbolic.overlap_and_gradient(&target_conj, &theta).unwrap();
            let (s_naive, g_naive) = symbolic
                .overlap_and_gradient_naive(&target_conj, &theta)
                .unwrap();
            assert!(s_fast.approx_eq(s_naive, 1e-12), "{s_fast} vs {s_naive}");
            for (a, b) in g_fast.iter().zip(g_naive.iter()) {
                assert!(a.approx_eq(*b, 1e-12), "{a} vs {b}");
            }
        }
    }

    #[test]
    fn workspace_reuse_is_consistent_across_states() {
        // One workspace shared by states of different sizes must keep giving
        // correct results (buffers only ever grow).
        let mut ws = SymbolicWorkspace::new();
        let mut rng = StdRng::seed_from_u64(21);
        for qubits in [5usize, 3, 4] {
            let config = AnsatzConfig {
                num_qubits: qubits,
                num_layers: 3,
                entangler: EntanglerKind::Cy,
            };
            let symbolic = SymbolicState::from_ansatz(&config).unwrap();
            let theta: Vec<f64> = (0..config.num_parameters())
                .map(|_| rng.gen_range(-2.0..2.0))
                .collect();
            let target_conj: Vec<C64> = (0..symbolic.dim())
                .map(|_| C64::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)))
                .collect();
            let mut gradient = vec![C64::ZERO; config.num_parameters()];
            let s = symbolic
                .overlap_and_gradient_into(&target_conj, &theta, &mut ws, &mut gradient)
                .unwrap();
            let (s_ref, g_ref) = symbolic
                .overlap_and_gradient_naive(&target_conj, &theta)
                .unwrap();
            assert!(s.approx_eq(s_ref, 1e-12));
            for (a, b) in gradient.iter().zip(g_ref.iter()) {
                assert!(a.approx_eq(*b, 1e-12));
            }
            // The no-gradient path agrees too.
            let s_only = symbolic
                .overlap_into(&target_conj, &theta, &mut ws)
                .unwrap();
            assert!(s_only.approx_eq(s_ref, 1e-12));
        }
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let config = AnsatzConfig {
            num_qubits: 3,
            num_layers: 2,
            entangler: EntanglerKind::Cy,
        };
        let symbolic = SymbolicState::from_ansatz(&config).unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        let theta: Vec<f64> = (0..config.num_parameters())
            .map(|_| rng.gen_range(-1.0..1.0))
            .collect();
        let target: Vec<C64> = (0..symbolic.dim())
            .map(|_| C64::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)))
            .collect();
        let target_conj: Vec<C64> = target.iter().map(|z| z.conj()).collect();

        let (_, gradient) = symbolic.overlap_and_gradient(&target_conj, &theta).unwrap();
        let eps = 1e-6;
        for j in 0..theta.len() {
            let mut plus = theta.clone();
            plus[j] += eps;
            let mut minus = theta.clone();
            minus[j] -= eps;
            let overlap = |t: &[f64]| -> C64 {
                let amps = symbolic.amplitudes(t).unwrap();
                (0..symbolic.dim()).map(|r| target_conj[r] * amps[r]).sum()
            };
            let numerical = (overlap(&plus) - overlap(&minus)) / (2.0 * eps);
            assert!(
                gradient[j].approx_eq(numerical, 1e-5),
                "gradient mismatch at {j}: analytic {} vs numerical {}",
                gradient[j],
                numerical
            );
        }
    }

    #[test]
    fn wrong_theta_length_rejected() {
        let config = AnsatzConfig::with_qubits(3);
        let symbolic = SymbolicState::from_ansatz(&config).unwrap();
        assert!(symbolic.amplitudes(&[0.0; 3]).is_err());
        let mut ws = SymbolicWorkspace::new();
        let target = vec![C64::ZERO; symbolic.dim()];
        assert!(symbolic.overlap_into(&target, &[0.0; 3], &mut ws).is_err());
        let mut short_grad = vec![C64::ZERO; 2];
        let theta = vec![0.0; symbolic.num_parameters()];
        assert!(symbolic
            .overlap_and_gradient_into(&target, &theta, &mut ws, &mut short_grad)
            .is_err());
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn walsh_hadamard_matches_direct_sum() {
        let input = [0.5, -1.0, 2.0, 0.25, -0.75, 1.5, 0.0, 3.0];
        let mut data = input;
        walsh_hadamard_in_place(&mut data);
        for r in 0..8usize {
            let direct: f64 = input
                .iter()
                .enumerate()
                .map(|(m, v)| {
                    if (r & m).count_ones() % 2 == 1 {
                        -v
                    } else {
                        *v
                    }
                })
                .sum();
            assert!((data[r] - direct).abs() < 1e-12);
        }
    }
}

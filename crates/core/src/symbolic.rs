//! The symbolic phase-table representation of the ansatz state (Eq. 6).
//!
//! Because the interior of EnQode's ansatz applies only diagonal `Rz`
//! rotations and `CY` permutations to the uniform-magnitude product state
//! `⊗(|0⟩+i|1⟩)/√2`, every amplitude stays of the form
//!
//! ```text
//! a_r(θ) = i^{k_r} · exp(i·Σ_j p_{rj}·θ_j / 2) / √(2^n),   p_{rj} ∈ {−1,0,1}
//! ```
//!
//! The integer table `(k_r, p_{rj})` is computed once per ansatz shape; the
//! state and its exact Jacobian are then closed-form functions of `θ`, which
//! is what makes EnQode's training fast.

use crate::ansatz::{AnsatzConfig, EntanglerKind};
use crate::error::EnqodeError;
use enq_linalg::{C64, CVector};

/// The symbolic state `|ψ(θ)⟩` of an EnQode ansatz, before the closing
/// rotation column.
#[derive(Debug, Clone, PartialEq)]
pub struct SymbolicState {
    num_qubits: usize,
    num_parameters: usize,
    /// Phase constant per basis index, stored as a power of `i` (mod 4).
    k_power: Vec<u8>,
    /// Integer coefficient of each parameter in each amplitude's phase,
    /// flattened row-major: `coeff[r * num_parameters + j] ∈ {−1, 0, 1}`.
    coeffs: Vec<i8>,
}

impl SymbolicState {
    /// Builds the symbolic representation of the given ansatz shape.
    ///
    /// # Errors
    ///
    /// Returns [`EnqodeError::InvalidConfig`] for invalid configurations.
    pub fn from_ansatz(config: &AnsatzConfig) -> Result<Self, EnqodeError> {
        config.validate()?;
        let n = config.num_qubits;
        let dim = 1usize << n;
        let num_parameters = config.num_parameters();

        // Initial state after the Rx(−π/2) column: a_r = i^{popcount(r)}/√2ⁿ.
        let mut k_power: Vec<u8> = (0..dim).map(|r| (r.count_ones() % 4) as u8).collect();
        let mut coeffs = vec![0i8; dim * num_parameters];

        for layer in 0..config.num_layers {
            // Parameterised Rz column: Rz(θ) multiplies |0⟩ amplitudes by
            // e^{−iθ/2} and |1⟩ amplitudes by e^{+iθ/2}.
            for q in 0..n {
                let j = layer * n + q;
                for r in 0..dim {
                    let sign: i8 = if (r >> q) & 1 == 1 { 1 } else { -1 };
                    coeffs[r * num_parameters + j] += sign;
                }
            }
            // Entangler column (the final Rz column has no trailing
            // entangler, mirroring the ansatz construction).
            if layer + 1 < config.num_layers {
                for (control, target) in config.entangler_pairs(layer) {
                    apply_entangler(
                        config.entangler,
                        control,
                        target,
                        n,
                        num_parameters,
                        &mut k_power,
                        &mut coeffs,
                    );
                }
            }
        }
        Ok(Self {
            num_qubits: n,
            num_parameters,
            k_power,
            coeffs,
        })
    }

    /// Returns the number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// Returns the Hilbert-space dimension `2^n`.
    pub fn dim(&self) -> usize {
        1usize << self.num_qubits
    }

    /// Returns the number of trainable parameters.
    pub fn num_parameters(&self) -> usize {
        self.num_parameters
    }

    /// Returns the phase constant `k_r` (power of `i`) of basis index `r`.
    pub fn phase_constant(&self, r: usize) -> u8 {
        self.k_power[r]
    }

    /// Returns the integer coefficient `p_{rj}`.
    pub fn coefficient(&self, r: usize, j: usize) -> i8 {
        self.coeffs[r * self.num_parameters + j]
    }

    /// Evaluates the amplitudes `a_r(θ)`.
    ///
    /// # Errors
    ///
    /// Returns [`EnqodeError::DimensionMismatch`] if `theta` has the wrong
    /// length.
    pub fn amplitudes(&self, theta: &[f64]) -> Result<CVector, EnqodeError> {
        if theta.len() != self.num_parameters {
            return Err(EnqodeError::DimensionMismatch {
                expected: self.num_parameters,
                found: theta.len(),
            });
        }
        let dim = self.dim();
        let scale = 1.0 / (dim as f64).sqrt();
        let mut out = Vec::with_capacity(dim);
        for r in 0..dim {
            let mut phase = 0.0f64;
            let row = &self.coeffs[r * self.num_parameters..(r + 1) * self.num_parameters];
            for (p, t) in row.iter().zip(theta.iter()) {
                if *p != 0 {
                    phase += f64::from(*p) * t;
                }
            }
            let mut amp = C64::cis(phase / 2.0).scale(scale);
            amp = amp * i_power(self.k_power[r]);
            out.push(amp);
        }
        Ok(CVector::new(out))
    }

    /// Evaluates the overlap `S(θ) = ⟨y|ψ(θ)⟩` and its gradient
    /// `∂S/∂θ_j = Σ_r conj(y_r)·(i·p_{rj}/2)·a_r(θ)` in a single pass.
    ///
    /// # Errors
    ///
    /// Returns [`EnqodeError::DimensionMismatch`] for mismatched lengths.
    pub fn overlap_and_gradient(
        &self,
        target_conj: &[C64],
        theta: &[f64],
    ) -> Result<(C64, Vec<C64>), EnqodeError> {
        if target_conj.len() != self.dim() {
            return Err(EnqodeError::DimensionMismatch {
                expected: self.dim(),
                found: target_conj.len(),
            });
        }
        let amplitudes = self.amplitudes(theta)?;
        let mut overlap = C64::ZERO;
        let mut gradient = vec![C64::ZERO; self.num_parameters];
        for r in 0..self.dim() {
            let weighted = target_conj[r] * amplitudes[r];
            overlap += weighted;
            let row = &self.coeffs[r * self.num_parameters..(r + 1) * self.num_parameters];
            for (j, p) in row.iter().enumerate() {
                if *p != 0 {
                    gradient[j] += weighted.scale(f64::from(*p) * 0.5) * C64::I;
                }
            }
        }
        Ok((overlap, gradient))
    }
}

/// Returns `i^k`.
fn i_power(k: u8) -> C64 {
    match k % 4 {
        0 => C64::ONE,
        1 => C64::I,
        2 => -C64::ONE,
        _ => -C64::I,
    }
}

/// Applies one entangling gate to the phase table.
fn apply_entangler(
    kind: EntanglerKind,
    control: usize,
    target: usize,
    n: usize,
    num_parameters: usize,
    k_power: &mut [u8],
    coeffs: &mut [i8],
) {
    let dim = 1usize << n;
    let cmask = 1usize << control;
    let tmask = 1usize << target;
    match kind {
        EntanglerKind::Cz => {
            // Diagonal: amplitude picks up −1 when both bits are set.
            for r in 0..dim {
                if r & cmask != 0 && r & tmask != 0 {
                    k_power[r] = (k_power[r] + 2) % 4;
                }
            }
        }
        EntanglerKind::Cx | EntanglerKind::Cy => {
            for r0 in 0..dim {
                // Visit each (control=1, target=0) representative once.
                if r0 & cmask == 0 || r0 & tmask != 0 {
                    continue;
                }
                let r1 = r0 | tmask;
                // The amplitudes at r0 and r1 swap; CY additionally multiplies
                // the one moving into r1 by i and the one moving into r0 by −i.
                k_power.swap(r0, r1);
                for j in 0..num_parameters {
                    coeffs.swap(r0 * num_parameters + j, r1 * num_parameters + j);
                }
                if kind == EntanglerKind::Cy {
                    k_power[r1] = (k_power[r1] + 1) % 4;
                    k_power[r0] = (k_power[r0] + 3) % 4;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use enq_qsim::Statevector;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Reference check: W·ψ_symbolic(θ) must equal the statevector of the
    /// fully bound ansatz circuit.
    fn check_against_simulator(config: &AnsatzConfig, theta: &[f64]) {
        let symbolic = SymbolicState::from_ansatz(config).unwrap();
        let psi = symbolic.amplitudes(theta).unwrap();
        let closed = config.closing_rotation().matvec(&psi);
        let circuit = config.build_bound(theta).unwrap();
        let simulated = Statevector::from_circuit(&circuit).unwrap().to_cvector();
        assert!(
            closed.approx_eq_up_to_phase(&simulated, 1e-9),
            "symbolic state disagrees with the simulator for {config:?}"
        );
    }

    #[test]
    fn matches_simulator_for_small_ansatz() {
        let config = AnsatzConfig {
            num_qubits: 3,
            num_layers: 2,
            entangler: EntanglerKind::Cy,
        };
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..5 {
            let theta: Vec<f64> = (0..config.num_parameters())
                .map(|_| rng.gen_range(-3.0..3.0))
                .collect();
            check_against_simulator(&config, &theta);
        }
    }

    #[test]
    fn matches_simulator_for_paper_shape() {
        let config = AnsatzConfig {
            num_qubits: 5,
            num_layers: 4,
            entangler: EntanglerKind::Cy,
        };
        let mut rng = StdRng::seed_from_u64(2);
        let theta: Vec<f64> = (0..config.num_parameters())
            .map(|_| rng.gen_range(-3.0..3.0))
            .collect();
        check_against_simulator(&config, &theta);
    }

    #[test]
    fn matches_simulator_for_cx_and_cz_entanglers() {
        let mut rng = StdRng::seed_from_u64(3);
        for entangler in [EntanglerKind::Cx, EntanglerKind::Cz] {
            let config = AnsatzConfig {
                num_qubits: 4,
                num_layers: 3,
                entangler,
            };
            let theta: Vec<f64> = (0..config.num_parameters())
                .map(|_| rng.gen_range(-3.0..3.0))
                .collect();
            check_against_simulator(&config, &theta);
        }
    }

    #[test]
    fn amplitudes_have_uniform_magnitude() {
        let config = AnsatzConfig {
            num_qubits: 4,
            num_layers: 3,
            entangler: EntanglerKind::Cy,
        };
        let symbolic = SymbolicState::from_ansatz(&config).unwrap();
        let theta: Vec<f64> = (0..config.num_parameters()).map(|j| 0.1 * j as f64).collect();
        let psi = symbolic.amplitudes(&theta).unwrap();
        let expected = 1.0 / 4.0;
        for a in psi.iter() {
            assert!((a.abs() - expected).abs() < 1e-12);
        }
        assert!((psi.norm() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn coefficients_are_ternary() {
        let config = AnsatzConfig::default();
        let symbolic = SymbolicState::from_ansatz(&config).unwrap();
        for r in 0..symbolic.dim() {
            for j in 0..symbolic.num_parameters() {
                let p = symbolic.coefficient(r, j);
                assert!((-1..=1).contains(&p), "coefficient {p} at ({r},{j})");
            }
        }
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let config = AnsatzConfig {
            num_qubits: 3,
            num_layers: 2,
            entangler: EntanglerKind::Cy,
        };
        let symbolic = SymbolicState::from_ansatz(&config).unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        let theta: Vec<f64> = (0..config.num_parameters())
            .map(|_| rng.gen_range(-1.0..1.0))
            .collect();
        let target: Vec<C64> = (0..symbolic.dim())
            .map(|_| C64::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)))
            .collect();
        let target_conj: Vec<C64> = target.iter().map(|z| z.conj()).collect();

        let (_, gradient) = symbolic.overlap_and_gradient(&target_conj, &theta).unwrap();
        let eps = 1e-6;
        for j in 0..theta.len() {
            let mut plus = theta.clone();
            plus[j] += eps;
            let mut minus = theta.clone();
            minus[j] -= eps;
            let overlap = |t: &[f64]| -> C64 {
                let amps = symbolic.amplitudes(t).unwrap();
                (0..symbolic.dim()).map(|r| target_conj[r] * amps[r]).sum()
            };
            let numerical = (overlap(&plus) - overlap(&minus)) / (2.0 * eps);
            assert!(
                gradient[j].approx_eq(numerical, 1e-5),
                "gradient mismatch at {j}: analytic {} vs numerical {}",
                gradient[j],
                numerical
            );
        }
    }

    #[test]
    fn wrong_theta_length_rejected() {
        let config = AnsatzConfig::with_qubits(3);
        let symbolic = SymbolicState::from_ansatz(&config).unwrap();
        assert!(symbolic.amplitudes(&[0.0; 3]).is_err());
    }
}

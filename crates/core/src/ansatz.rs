//! EnQode's hardware-efficient ansatz (Fig. 2 of the paper).
//!
//! The ansatz is a fixed-shape circuit:
//!
//! 1. `Rx(−π/2)` on every qubit — rotates `|0⟩` to `|+i⟩` so the interior of
//!    the circuit only needs (virtual) `Rz` rotations;
//! 2. `L` layers, each consisting of a parameterised `Rz(θ)` column on every
//!    qubit followed by a sparse `CY` entangler that alternates between the
//!    `(0,1),(2,3),…` and `(1,2),(3,4),…` brick patterns, matching a linear
//!    section of the heavy-hex lattice so that no SWAPs are ever required;
//! 3. a closing `Ry(−π/2)`, `Rx(−π/2)` column that rotates the accumulated
//!    relative phases back into real amplitudes.

use crate::error::EnqodeError;
use enq_circuit::{Angle, Gate, QuantumCircuit};
use enq_linalg::CMatrix;
use std::f64::consts::FRAC_PI_2;

/// The two-qubit entangling gate used between `Rz` columns.
///
/// The paper selects `CY` because it preserves the x-y-plane alignment of the
/// qubits; `CX`/`CZ` are provided for the ablation study.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum EntanglerKind {
    /// Controlled-Y (the paper's choice).
    #[default]
    Cy,
    /// Controlled-X.
    Cx,
    /// Controlled-Z.
    Cz,
}

impl EntanglerKind {
    /// Returns the concrete gate.
    pub fn gate(&self) -> Gate {
        match self {
            EntanglerKind::Cy => Gate::Cy,
            EntanglerKind::Cx => Gate::Cx,
            EntanglerKind::Cz => Gate::Cz,
        }
    }
}

/// Static description of an EnQode ansatz.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnsatzConfig {
    /// Number of qubits `n` (the embedding encodes `2^n` features).
    pub num_qubits: usize,
    /// Number of `Rz` + entangler layers (the paper uses 8).
    pub num_layers: usize,
    /// Entangling gate between layers.
    pub entangler: EntanglerKind,
}

impl Default for AnsatzConfig {
    fn default() -> Self {
        // The paper's configuration: 8 qubits (256 features), 8 layers.
        Self {
            num_qubits: 8,
            num_layers: 8,
            entangler: EntanglerKind::Cy,
        }
    }
}

impl AnsatzConfig {
    /// Creates a configuration with the paper's defaults for a given register
    /// size.
    pub fn with_qubits(num_qubits: usize) -> Self {
        Self {
            num_qubits,
            ..Self::default()
        }
    }

    /// Returns the number of trainable `Rz` parameters (`num_qubits ×
    /// num_layers`).
    pub fn num_parameters(&self) -> usize {
        self.num_qubits * self.num_layers
    }

    /// Returns the number of amplitudes the ansatz can encode (`2^n`).
    pub fn dimension(&self) -> usize {
        1usize << self.num_qubits
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`EnqodeError::InvalidConfig`] when the register is empty, has
    /// more than 16 qubits (the dense simulators would be impractical), or
    /// has no layers.
    pub fn validate(&self) -> Result<(), EnqodeError> {
        if self.num_qubits == 0 || self.num_qubits > 16 {
            return Err(EnqodeError::InvalidConfig(format!(
                "num_qubits = {} must be between 1 and 16",
                self.num_qubits
            )));
        }
        if self.num_layers == 0 {
            return Err(EnqodeError::InvalidConfig(
                "num_layers must be at least 1".to_string(),
            ));
        }
        Ok(())
    }

    /// Returns the entangler pairs `(control, target)` of layer `layer`
    /// (0-based): even layers couple `(0,1),(2,3),…`, odd layers couple
    /// `(1,2),(3,4),…` — the alternating brick pattern on a line.
    pub fn entangler_pairs(&self, layer: usize) -> Vec<(usize, usize)> {
        let start = layer % 2;
        (start..self.num_qubits.saturating_sub(1))
            .step_by(2)
            .map(|q| (q, q + 1))
            .collect()
    }

    /// Builds the parameterised ansatz circuit. Parameter `layer·n + q` is
    /// the `Rz` angle of qubit `q` in layer `layer`.
    ///
    /// # Errors
    ///
    /// Returns [`EnqodeError::InvalidConfig`] for invalid configurations.
    pub fn build_parameterized(&self) -> Result<QuantumCircuit, EnqodeError> {
        self.validate()?;
        let n = self.num_qubits;
        let mut qc = QuantumCircuit::new(n);
        for q in 0..n {
            qc.rx(-FRAC_PI_2, q);
        }
        for layer in 0..self.num_layers {
            for q in 0..n {
                qc.rz(Angle::parameter(layer * n + q), q);
            }
            // The last Rz column is followed directly by the closing basis
            // change (Fig. 2): this lets the final parameter column tune every
            // qubit's phase right before it is converted back into a real
            // amplitude, which is essential for the CY ansatz's fidelity.
            if layer + 1 < self.num_layers {
                for (c, t) in self.entangler_pairs(layer) {
                    qc.append(self.entangler.gate(), &[c, t])?;
                }
            }
        }
        for q in 0..n {
            // Circuit order Rx(−π/2) then Ry(−π/2): the Rx maps the
            // accumulated x-y-plane phases onto the x-z (real-amplitude)
            // plane, and the Ry rotates within that plane, so the adjoint of
            // the closing column sends every real product state to a
            // uniform-magnitude phase state — the property EnQode's
            // approximation quality rests on.
            qc.rx(-FRAC_PI_2, q);
            qc.ry(-FRAC_PI_2, q);
        }
        Ok(qc)
    }

    /// Builds the ansatz with concrete parameter values bound.
    ///
    /// # Errors
    ///
    /// Returns [`EnqodeError::InvalidConfig`] for invalid configurations or a
    /// circuit error if `theta` is shorter than
    /// [`AnsatzConfig::num_parameters`].
    pub fn build_bound(&self, theta: &[f64]) -> Result<QuantumCircuit, EnqodeError> {
        let circuit = self.build_parameterized()?;
        Ok(circuit.bind_parameters(theta)?)
    }

    /// Returns the single-qubit closing rotation `W₁ = Ry(−π/2)·Rx(−π/2)`
    /// (circuit order: `Rx(−π/2)` then `Ry(−π/2)`) applied to every qubit at
    /// the end of the ansatz.
    pub fn closing_rotation_1q(&self) -> CMatrix {
        let rx = Gate::Rx(Angle::fixed(-FRAC_PI_2))
            .matrix()
            .expect("fixed angle");
        let ry = Gate::Ry(Angle::fixed(-FRAC_PI_2))
            .matrix()
            .expect("fixed angle");
        ry.matmul(&rx)
    }

    /// Returns the full closing rotation `W = W₁^{⊗n}` (ordered so that qubit
    /// 0 is the least significant index bit, matching the simulators).
    pub fn closing_rotation(&self) -> CMatrix {
        let w1 = self.closing_rotation_1q();
        let mut w = CMatrix::identity(1);
        // kron(A, B) indexes A's bits above B's, so fold from the most
        // significant qubit down to qubit 0.
        for _ in 0..self.num_qubits {
            w = w.kron(&w1);
        }
        w
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use enq_circuit::{CircuitMetrics, Topology, Transpiler};

    #[test]
    fn default_matches_paper_configuration() {
        let cfg = AnsatzConfig::default();
        assert_eq!(cfg.num_qubits, 8);
        assert_eq!(cfg.num_layers, 8);
        assert_eq!(cfg.num_parameters(), 64);
        assert_eq!(cfg.dimension(), 256);
        assert_eq!(cfg.entangler, EntanglerKind::Cy);
    }

    #[test]
    fn validation_rejects_bad_configs() {
        assert!(AnsatzConfig {
            num_qubits: 0,
            num_layers: 4,
            entangler: EntanglerKind::Cy
        }
        .validate()
        .is_err());
        assert!(AnsatzConfig {
            num_qubits: 20,
            num_layers: 4,
            entangler: EntanglerKind::Cy
        }
        .validate()
        .is_err());
        assert!(AnsatzConfig {
            num_qubits: 4,
            num_layers: 0,
            entangler: EntanglerKind::Cy
        }
        .validate()
        .is_err());
    }

    #[test]
    fn entangler_pairs_alternate() {
        let cfg = AnsatzConfig::with_qubits(6);
        assert_eq!(cfg.entangler_pairs(0), vec![(0, 1), (2, 3), (4, 5)]);
        assert_eq!(cfg.entangler_pairs(1), vec![(1, 2), (3, 4)]);
        assert_eq!(cfg.entangler_pairs(2), vec![(0, 1), (2, 3), (4, 5)]);
    }

    #[test]
    fn parameter_count_and_structure() {
        let cfg = AnsatzConfig {
            num_qubits: 4,
            num_layers: 3,
            entangler: EntanglerKind::Cy,
        };
        let qc = cfg.build_parameterized().unwrap();
        assert!(qc.is_parameterized());
        assert_eq!(qc.num_parameters(), 12);
        // Gate inventory: 4 Rx + 3·4 Rz + (2+1) CY (no entangler after the
        // final Rz column) + 4 Rx + 4 Ry.
        assert_eq!(qc.len(), 4 + 12 + 3 + 8);
    }

    #[test]
    fn bound_circuit_is_fixed_shape() {
        let cfg = AnsatzConfig::with_qubits(4);
        let a = cfg.build_bound(&vec![0.1; cfg.num_parameters()]).unwrap();
        let b = cfg.build_bound(&vec![2.3; cfg.num_parameters()]).unwrap();
        // Same number of gates and same depth regardless of the data: this is
        // the "zero variability" property of EnQode.
        assert_eq!(a.len(), b.len());
        assert_eq!(
            CircuitMetrics::of(&a).total_gates,
            CircuitMetrics::of(&b).total_gates
        );
        assert_eq!(CircuitMetrics::of(&a).depth, CircuitMetrics::of(&b).depth);
    }

    #[test]
    fn ansatz_needs_no_swaps_on_linear_topology() {
        let cfg = AnsatzConfig::default();
        let qc = cfg.build_bound(&vec![0.3; cfg.num_parameters()]).unwrap();
        let transpiler = Transpiler::new(Topology::ibm_brisbane_like());
        let out = transpiler.transpile(&qc).unwrap();
        assert_eq!(out.swap_count, 0);
        // One CX per CY: 7 entangler layers alternating 4 and 3 pairs.
        assert_eq!(out.metrics.two_qubit_gates, 4 * 4 + 3 * 3);
    }

    #[test]
    fn closing_rotation_is_unitary_product() {
        let cfg = AnsatzConfig::with_qubits(3);
        let w = cfg.closing_rotation();
        assert_eq!(w.nrows(), 8);
        assert!(w.is_unitary(1e-10));
    }

    #[test]
    fn entangler_kind_gates() {
        assert_eq!(EntanglerKind::Cy.gate(), Gate::Cy);
        assert_eq!(EntanglerKind::Cx.gate(), Gate::Cx);
        assert_eq!(EntanglerKind::Cz.gate(), Gate::Cz);
        assert_eq!(EntanglerKind::default(), EntanglerKind::Cy);
    }
}

//! End-to-end pipeline: raw dataset → PCA features → per-class EnQode models.
//!
//! The paper trains EnQode "per dataset and class": each class is clustered
//! and optimised independently (Sec. III-C), and new samples are embedded by
//! transfer learning from the nearest cluster of their class (or of any
//! class, for unlabelled inference data). Per-class training is independent,
//! so [`EnqodePipeline::build`] fits all class models in parallel.

use crate::driver::StreamDriver;
use crate::error::EnqodeError;
use crate::model::{Embedding, EnqodeConfig, EnqodeModel};
use crate::symbolic::SymbolicState;
use enq_data::{Dataset, FeaturePipeline, IngestMode, SampleSource};
use std::collections::BTreeMap;
use std::num::NonZeroUsize;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Shape of an out-of-core streaming fit ([`EnqodePipeline::build_streaming`]
/// / [`crate::StreamDriver`]).
///
/// The streaming build holds one chunk of raw samples plus `O(k × dim)`
/// model state resident, so memory is independent of the source length.
/// Setting [`StreamingFitConfig::fidelity_threshold`] recovers the paper's
/// adaptive cluster-count rule out-of-core: after clustering, an audit pass
/// measures each cluster's representative fidelity and offending clusters
/// are split until every cluster clears the threshold or
/// [`StreamingFitConfig::max_clusters_per_class`] is reached.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamingFitConfig {
    /// Samples held resident per chunk.
    pub chunk_size: usize,
    /// Clusters trained per class — the fixed count when
    /// `fidelity_threshold` is `None`, the starting count of the adaptive
    /// search otherwise.
    pub clusters_per_class: usize,
    /// Mini-batch SGD passes over the source.
    pub passes: usize,
    /// Maximum exact streaming-Lloyd refinement passes (early-stopped once
    /// centroids move less than the mini-batch tolerance).
    pub polish_passes: usize,
    /// How source passes are driven: synchronous chunk reads between compute
    /// steps, or double-buffered prefetch (bit-identical; the default
    /// overlaps ingestion with compute).
    pub ingest: IngestMode,
    /// When `true` (the default), the PCA-transformed feature stream is
    /// spilled once to an mmap-backed temp file after the feature stage, and
    /// every later clustering/audit pass reads the spilled features instead
    /// of re-reading (and re-projecting) the raw source. Disk usage is
    /// `O(N × features)`; resident memory stays `O(chunk)`. Bit-identical to
    /// re-streaming (features round-trip losslessly through the `ENQB`
    /// layout).
    pub spill_features: bool,
    /// Minimum per-cluster representative fidelity (the closed-form
    /// `⟨x̂, ĉ⟩²` amplitude-embedding fidelity between each member and its
    /// centroid, an upper bound on the post-ansatz fidelity). `Some(t)`
    /// enables the streaming fidelity-threshold `k` search; `None` keeps the
    /// fixed `clusters_per_class` behaviour.
    pub fidelity_threshold: Option<f64>,
    /// Upper bound on clusters per class for the adaptive search.
    pub max_clusters_per_class: usize,
}

impl Default for StreamingFitConfig {
    fn default() -> Self {
        Self {
            chunk_size: 256,
            clusters_per_class: 8,
            passes: 3,
            polish_passes: 2,
            ingest: IngestMode::default(),
            spill_features: true,
            fidelity_threshold: None,
            max_clusters_per_class: 64,
        }
    }
}

impl StreamingFitConfig {
    /// Validates the configuration, returning a descriptive
    /// [`EnqodeError::InvalidConfig`] instead of letting a degenerate value
    /// panic (zero chunk reads) or silently produce a broken fit (zero
    /// clusters, NaN thresholds) downstream.
    ///
    /// # Errors
    ///
    /// Returns [`EnqodeError::InvalidConfig`] for a zero `chunk_size`,
    /// `clusters_per_class`, or `passes`; a non-finite or out-of-range
    /// (`(0, 1]`) `fidelity_threshold`; or an adaptive cap below the
    /// starting cluster count.
    pub fn validate(&self) -> Result<(), EnqodeError> {
        if self.chunk_size == 0 {
            return Err(EnqodeError::InvalidConfig(
                "streaming fit: chunk_size must be positive".to_string(),
            ));
        }
        if self.clusters_per_class == 0 {
            return Err(EnqodeError::InvalidConfig(
                "streaming fit: clusters_per_class must be positive".to_string(),
            ));
        }
        if self.passes == 0 {
            return Err(EnqodeError::InvalidConfig(
                "streaming fit: at least one mini-batch pass is required".to_string(),
            ));
        }
        if let Some(threshold) = self.fidelity_threshold {
            if !threshold.is_finite() {
                return Err(EnqodeError::InvalidConfig(format!(
                    "streaming fit: fidelity_threshold must be finite, got {threshold}"
                )));
            }
            if !(0.0..=1.0).contains(&threshold) || threshold == 0.0 {
                return Err(EnqodeError::InvalidConfig(format!(
                    "streaming fit: fidelity_threshold {threshold} must be in (0, 1]"
                )));
            }
            if self.max_clusters_per_class < self.clusters_per_class {
                return Err(EnqodeError::InvalidConfig(format!(
                    "streaming fit: max_clusters_per_class ({}) is below the starting \
                     clusters_per_class ({})",
                    self.max_clusters_per_class, self.clusters_per_class
                )));
            }
        }
        Ok(())
    }
}

/// A trained per-class model.
#[derive(Debug, Clone)]
pub struct ClassModel {
    /// The class label this model was trained on.
    pub label: usize,
    /// The trained EnQode model for this class.
    pub model: EnqodeModel,
}

/// The full EnQode pipeline for one dataset: feature extraction plus one
/// trained model per class.
#[derive(Debug, Clone)]
pub struct EnqodePipeline {
    features: FeaturePipeline,
    class_models: Vec<ClassModel>,
}

impl EnqodePipeline {
    /// Builds the pipeline from a raw dataset: fits PCA to
    /// `2^num_qubits` features on the whole dataset, then trains one EnQode
    /// model per class, all classes in parallel.
    ///
    /// # Errors
    ///
    /// Propagates feature-extraction and training errors.
    pub fn build(dataset: &Dataset, config: EnqodeConfig) -> Result<Self, EnqodeError> {
        let num_features = config.ansatz.dimension();
        let features = FeaturePipeline::fit(dataset, num_features)?;
        let transformed = features.apply_dataset(dataset)?;
        let labels = transformed.classes();
        let class_datasets: Result<Vec<_>, _> = labels
            .iter()
            .map(|&label| transformed.class_subset(label))
            .collect();
        let class_datasets = class_datasets?;
        // Split the thread budget between the class level and each fit's
        // (cluster, restart) level: enq_parallel has no shared pool, so an
        // undivided budget would spawn classes × threads CPU-bound workers.
        let budget = enq_parallel::default_threads();
        let per_class = NonZeroUsize::new(budget.get().div_ceil(class_datasets.len().max(1)))
            .unwrap_or(NonZeroUsize::MIN);
        // One symbolic phase table for the whole pipeline: the table depends
        // only on the ansatz shape, which all class models share, so every
        // class fit (and every embedding any of them ever serves) aliases the
        // same `Arc` instead of rebuilding an identical table per class.
        config.ansatz.validate()?;
        let symbolic = Arc::new(SymbolicState::from_ansatz(&config.ansatz)?);
        let class_models = enq_parallel::try_par_map(&class_datasets, |i, class_data| {
            let model = EnqodeModel::fit_with_shared_symbolic(
                class_data.samples(),
                config.clone(),
                per_class,
                Arc::clone(&symbolic),
            )?;
            Ok::<ClassModel, EnqodeError>(ClassModel {
                label: labels[i],
                model,
            })
        })?;
        Ok(Self {
            features,
            class_models,
        })
    }

    /// Builds the pipeline out-of-core from a [`SampleSource`], holding at
    /// most one chunk of raw samples resident. This is the one-call wrapper
    /// over the staged [`StreamDriver`]:
    ///
    /// 1. **Features** — one prefetched pass fits the PCA incrementally
    ///    ([`enq_data::IncrementalPca`]) and discovers the label set (plus
    ///    one spill pass when `stream.spill_features` is on),
    /// 2. **Clustering** — `passes` mini-batch k-means passes (plus up to
    ///    `polish_passes` exact streaming-Lloyd refinements) cluster each
    ///    class's feature vectors with `O(clusters × dim)` state,
    /// 3. **Fidelity audit** (only with
    ///    [`StreamingFitConfig::fidelity_threshold`]) — audit-and-split
    ///    rounds recover the paper's adaptive cluster-count rule,
    /// 4. **Training** — each class's centroids are trained into an
    ///    [`EnqodeModel`] via [`EnqodeModel::fit_from_centroids`]; ansatz
    ///    optimisation only ever touches centroids, never samples.
    ///
    /// The resulting pipeline serves every embed path exactly like one from
    /// [`EnqodePipeline::build`]; the fits differ only in how the PCA basis
    /// and centroids were estimated. The fit is deterministic for a fixed
    /// `(config.seed, chunk_size)` across thread counts **and across every
    /// `ingest`/`spill_features` combination**.
    ///
    /// # Errors
    ///
    /// Propagates source, feature-fit, clustering, and training errors; an
    /// empty source yields the underlying
    /// [`enq_data::DataError::EmptyDataset`]; invalid streaming parameters
    /// are rejected by [`StreamingFitConfig::validate`].
    pub fn build_streaming(
        source: &mut dyn SampleSource,
        config: EnqodeConfig,
        stream: &StreamingFitConfig,
    ) -> Result<Self, EnqodeError> {
        StreamDriver::new(source, config, stream.clone())?.run()
    }

    /// Assembles a pipeline from an already-fitted feature pipeline and
    /// trained class models (the [`StreamDriver`] training stage's exit
    /// point).
    pub(crate) fn from_parts(features: FeaturePipeline, class_models: Vec<ClassModel>) -> Self {
        Self {
            features,
            class_models,
        }
    }

    /// Assembles a pipeline from externally supplied **already-trained**
    /// parts — the decoding half of model persistence (`enq_store`), the
    /// public sibling of the stream driver's internal exit point.
    ///
    /// Class models are adopted verbatim (see
    /// [`EnqodeModel::from_trained_parts`]); only cross-part shapes are
    /// validated here.
    ///
    /// # Errors
    ///
    /// Returns [`EnqodeError::DimensionMismatch`] when a class model's
    /// ansatz dimension differs from the feature pipeline's output
    /// dimension, and [`EnqodeError::InvalidConfig`] for duplicate class
    /// labels.
    pub fn from_trained_parts(
        features: FeaturePipeline,
        class_models: Vec<ClassModel>,
    ) -> Result<Self, EnqodeError> {
        let mut seen = std::collections::BTreeSet::new();
        for cm in &class_models {
            let dim = cm.model.config().ansatz.dimension();
            if dim != features.output_dim() {
                return Err(EnqodeError::DimensionMismatch {
                    expected: features.output_dim(),
                    found: dim,
                });
            }
            if !seen.insert(cm.label) {
                return Err(EnqodeError::InvalidConfig(format!(
                    "duplicate class label {} in trained parts",
                    cm.label
                )));
            }
        }
        Ok(Self::from_parts(features, class_models))
    }

    /// Returns the fitted feature pipeline.
    pub fn features(&self) -> &FeaturePipeline {
        &self.features
    }

    /// Returns the feature dimension every embed path expects
    /// (`2^num_qubits`).
    pub fn feature_dimension(&self) -> usize {
        self.features.output_dim()
    }

    /// Returns the symbolic phase table shared by every class model of this
    /// pipeline (`None` for a pipeline with no trained classes). All class
    /// models alias one table, so handing this `Arc` around (or cloning the
    /// pipeline behind its own `Arc`) never copies symbolic state.
    pub fn shared_symbolic(&self) -> Option<Arc<SymbolicState>> {
        self.class_models.first().map(|cm| cm.model.symbolic_arc())
    }

    /// Returns the per-class models.
    pub fn class_models(&self) -> &[ClassModel] {
        &self.class_models
    }

    /// Returns the model trained for a specific class label.
    pub fn model_for_class(&self, label: usize) -> Option<&EnqodeModel> {
        self.class_models
            .iter()
            .find(|cm| cm.label == label)
            .map(|cm| &cm.model)
    }

    /// Returns the total number of trained clusters across all classes.
    pub fn total_clusters(&self) -> usize {
        self.class_models
            .iter()
            .map(|cm| cm.model.num_clusters())
            .sum()
    }

    /// Returns the total offline training time across all classes (the
    /// paper's "offline compilation time").
    pub fn offline_duration(&self) -> Duration {
        self.class_models
            .iter()
            .map(|cm| cm.model.offline_duration())
            .sum()
    }

    /// Maps a raw sample to its normalised feature vector.
    ///
    /// # Errors
    ///
    /// Propagates feature-extraction errors.
    pub fn extract_features(&self, raw_sample: &[f64]) -> Result<Vec<f64>, EnqodeError> {
        Ok(self.features.apply(raw_sample)?)
    }

    /// Embeds a raw sample whose class label is known (the training /
    /// supervised-inference path).
    ///
    /// # Errors
    ///
    /// Returns [`EnqodeError::NotTrained`] if the class has no model.
    pub fn embed_with_class(
        &self,
        raw_sample: &[f64],
        label: usize,
    ) -> Result<Embedding, EnqodeError> {
        let model = self.model_for_class(label).ok_or(EnqodeError::NotTrained)?;
        let features = self.extract_features(raw_sample)?;
        model.embed(&features)
    }

    /// Embeds a raw sample with unknown label by searching the nearest
    /// cluster across every class model.
    ///
    /// Returns the class label used along with the embedding.
    ///
    /// The sample is normalised exactly once and the winning class's cluster
    /// index is reused for the fine-tuning initialisation, so the search does
    /// no redundant normalisation or nearest-cluster recomputation.
    ///
    /// # Errors
    ///
    /// Returns [`EnqodeError::NotTrained`] for an empty pipeline.
    pub fn embed(&self, raw_sample: &[f64]) -> Result<(usize, Embedding), EnqodeError> {
        let features = self.extract_features(raw_sample)?;
        self.embed_features(&features)
    }

    /// Embeds an already feature-extracted sample — the second half of
    /// [`EnqodePipeline::embed`] after [`EnqodePipeline::extract_features`].
    ///
    /// Serving layers that need the feature vector themselves (for cache
    /// keys or request dedup) call this so features are extracted exactly
    /// once per request; `embed_features(extract_features(x))` is
    /// bit-identical to `embed(x)` apart from wall-clock durations.
    ///
    /// # Errors
    ///
    /// Returns [`EnqodeError::NotTrained`] for an empty pipeline, dimension
    /// errors for bad feature lengths, and data errors for zero vectors.
    pub fn embed_features(&self, features: &[f64]) -> Result<(usize, Embedding), EnqodeError> {
        if self.class_models.is_empty() {
            return Err(EnqodeError::NotTrained);
        }
        // The online-compile clock starts after feature extraction, matching
        // what `EnqodeModel::embed` measures (normalise + cluster lookup +
        // fine-tune + bind), so durations are comparable across both paths.
        let start = Instant::now();
        // Pick the class whose nearest cluster centroid is closest.
        let normalized = self.class_models[0].model.normalize_checked(features)?;
        let mut best: Option<(usize, usize, f64)> = None; // (class idx, cluster idx, dist²)
        for (class_idx, cm) in self.class_models.iter().enumerate() {
            let (cluster_idx, dist) = cm.model.nearest_cluster_of_normalized(&normalized)?;
            if best.map(|(_, _, d)| dist < d).unwrap_or(true) {
                best = Some((class_idx, cluster_idx, dist));
            }
        }
        let (class_idx, cluster_idx, _) = best.expect("class_models is non-empty");
        let cm = &self.class_models[class_idx];
        let embedding = cm.model.embed_normalized(&normalized, cluster_idx, start)?;
        Ok((cm.label, embedding))
    }

    /// Closed-form upper bound on the fidelity this pipeline can reach for
    /// an already feature-extracted sample, **without running the
    /// optimiser**: the squared overlap `⟨x̂, ĉ⟩²` between the normalised
    /// feature vector and its nearest cluster centroid (centroids are
    /// L2-normalised at fit time, so the overlap falls out of the nearest
    /// distance: `⟨x̂, ĉ⟩ = 1 − d²/2`).
    ///
    /// The ansatz fine-tunes *towards the centroid*, so this is the ceiling
    /// on the post-ansatz fidelity — cheap enough (one nearest-cluster
    /// search, no kernel sweeps) to audit live traffic continuously. A
    /// falling audit value means traffic has drifted away from every fitted
    /// centroid and the model wants retraining.
    ///
    /// # Errors
    ///
    /// Returns [`EnqodeError::NotTrained`] for an empty pipeline, dimension
    /// errors for bad feature lengths, and data errors for zero vectors.
    pub fn closed_form_fidelity(&self, features: &[f64]) -> Result<f64, EnqodeError> {
        if self.class_models.is_empty() {
            return Err(EnqodeError::NotTrained);
        }
        let normalized = self.class_models[0].model.normalize_checked(features)?;
        let mut best: Option<f64> = None;
        for cm in &self.class_models {
            let (_, dist) = cm.model.nearest_cluster_of_normalized(&normalized)?;
            if best.map(|d| dist < d).unwrap_or(true) {
                best = Some(dist);
            }
        }
        let dist_sq = best.expect("class_models is non-empty");
        let overlap = 1.0 - dist_sq / 2.0;
        Ok((overlap * overlap).clamp(0.0, 1.0))
    }

    /// Embeds a batch of already feature-extracted samples with one fused
    /// kernel sweep per optimisation round — the batched counterpart of
    /// [`EnqodePipeline::embed_features`].
    ///
    /// Samples are grouped by their winning class model and each group is
    /// fine-tuned in lockstep through the batched Walsh kernels (see
    /// [`crate::SymbolicBatch`]). Every per-sample result — class label,
    /// parameters, fidelity, iteration count — is **bit-identical** to the
    /// per-request [`EnqodePipeline::embed_features`] call (apart from
    /// wall-clock durations), and errors stay per-sample: one bad feature
    /// vector does not fail its batchmates.
    /// Accepts anything that dereferences to a feature slice (`Vec<f64>`,
    /// `&[f64]`, …) so batching callers can pass borrowed views instead of
    /// deep-copying every sample into an owned vector first.
    pub fn embed_features_batch<S: AsRef<[f64]>>(
        &self,
        features: &[S],
    ) -> Vec<Result<(usize, Embedding), EnqodeError>> {
        let mut out: Vec<Option<Result<(usize, Embedding), EnqodeError>>> =
            (0..features.len()).map(|_| None).collect();
        // Per-sample prep, mirroring `embed_features` exactly: normalise
        // once, then cross-class nearest-cluster search with strict `<`.
        // Group entries: original index, normalised features, cluster index,
        // and the per-sample start instant.
        type PreparedGroup = Vec<(usize, Vec<f64>, usize, Instant)>;
        let mut groups: BTreeMap<usize, PreparedGroup> = BTreeMap::new();
        for (i, feature) in features.iter().enumerate() {
            let feature = feature.as_ref();
            let start = Instant::now();
            if self.class_models.is_empty() {
                out[i] = Some(Err(EnqodeError::NotTrained));
                continue;
            }
            let prep = (|| {
                let normalized = self.class_models[0].model.normalize_checked(feature)?;
                let mut best: Option<(usize, usize, f64)> = None;
                for (class_idx, cm) in self.class_models.iter().enumerate() {
                    let (cluster_idx, dist) =
                        cm.model.nearest_cluster_of_normalized(&normalized)?;
                    if best.map(|(_, _, d)| dist < d).unwrap_or(true) {
                        best = Some((class_idx, cluster_idx, dist));
                    }
                }
                let (class_idx, cluster_idx, _) = best.expect("class_models is non-empty");
                Ok((class_idx, cluster_idx, normalized))
            })();
            match prep {
                Ok((class_idx, cluster_idx, normalized)) => groups
                    .entry(class_idx)
                    .or_default()
                    .push((i, normalized, cluster_idx, start)),
                Err(e) => out[i] = Some(Err(e)),
            }
        }
        for (class_idx, group) in groups {
            let cm = &self.class_models[class_idx];
            // Move the normalised vectors into the job list instead of
            // cloning them — the group is not needed afterwards.
            let mut indices = Vec::with_capacity(group.len());
            let jobs: Vec<(Vec<f64>, usize, Instant)> = group
                .into_iter()
                .map(|(i, normalized, cluster_idx, start)| {
                    indices.push(i);
                    (normalized, cluster_idx, start)
                })
                .collect();
            let results = cm.model.embed_normalized_batch(&jobs);
            for (i, result) in indices.into_iter().zip(results) {
                out[i] = Some(result.map(|embedding| (cm.label, embedding)));
            }
        }
        out.into_iter()
            .map(|r| r.expect("every sample resolves exactly once"))
            .collect()
    }

    /// Embeds a batch of raw, unlabelled samples in parallel. Results are in
    /// input order and identical to calling [`EnqodePipeline::embed`] per
    /// sample (apart from wall-clock durations).
    ///
    /// # Errors
    ///
    /// Returns an error from a failing sample (remaining samples are
    /// cancelled once a failure is observed).
    pub fn embed_batch(
        &self,
        raw_samples: &[Vec<f64>],
    ) -> Result<Vec<(usize, Embedding)>, EnqodeError> {
        enq_parallel::try_par_map(raw_samples, |_, sample| self.embed(sample))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ansatz::{AnsatzConfig, EntanglerKind};
    use enq_data::{generate_synthetic, DatasetKind, SyntheticConfig};

    fn tiny_pipeline() -> (EnqodePipeline, Dataset) {
        let dataset = generate_synthetic(
            DatasetKind::MnistLike,
            &SyntheticConfig {
                classes: 2,
                samples_per_class: 8,
                seed: 21,
            },
        )
        .unwrap();
        let config = EnqodeConfig {
            ansatz: AnsatzConfig {
                num_qubits: 4,
                num_layers: 8,
                entangler: EntanglerKind::Cy,
            },
            fidelity_threshold: 0.9,
            max_clusters: 4,
            offline_max_iterations: 120,
            offline_restarts: 3,
            online_max_iterations: 40,
            offline_rescue: false,
            seed: 21,
        };
        (EnqodePipeline::build(&dataset, config).unwrap(), dataset)
    }

    #[test]
    fn builds_one_model_per_class() {
        let (pipeline, _) = tiny_pipeline();
        assert_eq!(pipeline.class_models().len(), 2);
        assert!(pipeline.model_for_class(0).is_some());
        assert!(pipeline.model_for_class(1).is_some());
        assert!(pipeline.model_for_class(9).is_none());
        assert!(pipeline.total_clusters() >= 2);
        assert!(pipeline.offline_duration() > Duration::ZERO);
    }

    #[test]
    fn embeds_training_samples_with_good_fidelity() {
        let (pipeline, dataset) = tiny_pipeline();
        let label = dataset.labels()[0];
        let embedding = pipeline.embed_with_class(dataset.sample(0), label).unwrap();
        assert!(
            embedding.ideal_fidelity > 0.8,
            "fidelity {}",
            embedding.ideal_fidelity
        );
    }

    #[test]
    fn label_free_embedding_chooses_a_class() {
        let (pipeline, dataset) = tiny_pipeline();
        let (label, embedding) = pipeline.embed(dataset.sample(0)).unwrap();
        assert!(label == 0 || label == 1);
        assert!(embedding.ideal_fidelity > 0.8);
    }

    #[test]
    fn batch_embedding_matches_per_sample_embedding() {
        let (pipeline, dataset) = tiny_pipeline();
        let raw: Vec<Vec<f64>> = (0..4).map(|i| dataset.sample(i).to_vec()).collect();
        let batch = pipeline.embed_batch(&raw).unwrap();
        assert_eq!(batch.len(), raw.len());
        for (sample, (label, embedding)) in raw.iter().zip(batch.iter()) {
            let (single_label, single) = pipeline.embed(sample).unwrap();
            assert_eq!(single_label, *label);
            assert_eq!(single.parameters, embedding.parameters);
            assert_eq!(single.cluster_index, embedding.cluster_index);
        }
    }

    #[test]
    fn class_models_share_one_symbolic_table() {
        let (pipeline, _) = tiny_pipeline();
        let shared = pipeline.shared_symbolic().expect("trained pipeline");
        for cm in pipeline.class_models() {
            assert!(
                Arc::ptr_eq(&shared, &cm.model.symbolic_arc()),
                "class {} rebuilt its own symbolic table",
                cm.label
            );
        }
        assert_eq!(pipeline.feature_dimension(), 16);
    }

    #[test]
    fn embed_features_matches_embed() {
        let (pipeline, dataset) = tiny_pipeline();
        let sample = dataset.sample(1);
        let features = pipeline.extract_features(sample).unwrap();
        let (label_a, a) = pipeline.embed(sample).unwrap();
        let (label_b, b) = pipeline.embed_features(&features).unwrap();
        assert_eq!(label_a, label_b);
        assert_eq!(a.parameters, b.parameters);
        assert_eq!(a.cluster_index, b.cluster_index);
        assert_eq!(a.ideal_fidelity, b.ideal_fidelity);
    }

    #[test]
    fn embed_features_batch_is_bit_identical_to_solo_calls() {
        let (pipeline, dataset) = tiny_pipeline();
        let features: Vec<Vec<f64>> = (0..6)
            .map(|i| pipeline.extract_features(dataset.sample(i)).unwrap())
            .collect();
        let batch = pipeline.embed_features_batch(&features);
        assert_eq!(batch.len(), features.len());
        for (feature, result) in features.iter().zip(batch.iter()) {
            let (label, embedding) = result.as_ref().unwrap();
            let (solo_label, solo) = pipeline.embed_features(feature).unwrap();
            assert_eq!(*label, solo_label);
            assert_eq!(embedding.cluster_index, solo.cluster_index);
            assert_eq!(embedding.iterations, solo.iterations);
            assert_eq!(embedding.parameters.len(), solo.parameters.len());
            for (a, b) in embedding.parameters.iter().zip(solo.parameters.iter()) {
                assert_eq!(a.to_bits(), b.to_bits(), "parameter drift in batch");
            }
            assert_eq!(
                embedding.ideal_fidelity.to_bits(),
                solo.ideal_fidelity.to_bits(),
                "fidelity drift in batch"
            );
        }
    }

    #[test]
    fn embed_features_batch_keeps_errors_per_sample() {
        let (pipeline, dataset) = tiny_pipeline();
        let good = pipeline.extract_features(dataset.sample(0)).unwrap();
        let batch = pipeline.embed_features_batch(&[
            good.clone(),
            vec![0.0; 3], // wrong dimension
            good.clone(),
        ]);
        assert!(batch[0].is_ok());
        assert!(batch[1].is_err());
        assert!(batch[2].is_ok());
        let (_, from_batch) = batch[0].as_ref().unwrap();
        let (_, solo) = pipeline.embed_features(&good).unwrap();
        assert_eq!(from_batch.parameters, solo.parameters);
    }

    #[test]
    fn feature_extraction_has_expected_dimension() {
        let (pipeline, dataset) = tiny_pipeline();
        let features = pipeline.extract_features(dataset.sample(3)).unwrap();
        assert_eq!(features.len(), 16);
        let norm: f64 = features.iter().map(|v| v * v).sum();
        assert!((norm - 1.0).abs() < 1e-9);
    }

    #[test]
    fn streaming_build_serves_all_embed_paths() {
        let dataset = generate_synthetic(
            DatasetKind::MnistLike,
            &SyntheticConfig {
                classes: 2,
                samples_per_class: 12,
                seed: 33,
            },
        )
        .unwrap();
        let config = EnqodeConfig {
            ansatz: AnsatzConfig {
                num_qubits: 3,
                num_layers: 6,
                entangler: EntanglerKind::Cy,
            },
            fidelity_threshold: 0.9,
            max_clusters: 4,
            offline_max_iterations: 100,
            offline_restarts: 2,
            online_max_iterations: 40,
            offline_rescue: false,
            seed: 33,
        };
        let stream = StreamingFitConfig {
            chunk_size: 6,
            clusters_per_class: 2,
            passes: 2,
            polish_passes: 2,
            ..Default::default()
        };
        let mut source = enq_data::InMemorySource::new(&dataset);
        let pipeline = EnqodePipeline::build_streaming(&mut source, config, &stream).unwrap();
        assert_eq!(pipeline.class_models().len(), 2);
        assert_eq!(pipeline.total_clusters(), 4);
        assert_eq!(pipeline.feature_dimension(), 8);
        // Streaming-trained models share one symbolic table like the
        // in-memory build.
        let shared = pipeline.shared_symbolic().expect("trained pipeline");
        for cm in pipeline.class_models() {
            assert!(Arc::ptr_eq(&shared, &cm.model.symbolic_arc()));
        }
        // All embed paths work and reach reasonable fidelity on training
        // data.
        let (label, embedding) = pipeline.embed(dataset.sample(0)).unwrap();
        assert!(label == 0 || label == 1);
        assert!(
            embedding.ideal_fidelity > 0.8,
            "fidelity {}",
            embedding.ideal_fidelity
        );
        let supervised = pipeline
            .embed_with_class(dataset.sample(1), dataset.labels()[1])
            .unwrap();
        assert!(supervised.ideal_fidelity > 0.8);
    }

    #[test]
    fn streaming_build_is_chunk_order_deterministic() {
        let dataset = generate_synthetic(
            DatasetKind::MnistLike,
            &SyntheticConfig {
                classes: 2,
                samples_per_class: 8,
                seed: 5,
            },
        )
        .unwrap();
        let config = EnqodeConfig {
            ansatz: AnsatzConfig {
                num_qubits: 3,
                num_layers: 4,
                entangler: EntanglerKind::Cy,
            },
            fidelity_threshold: 0.9,
            max_clusters: 4,
            offline_max_iterations: 60,
            offline_restarts: 1,
            online_max_iterations: 20,
            offline_rescue: false,
            seed: 5,
        };
        let stream = StreamingFitConfig {
            chunk_size: 5,
            clusters_per_class: 2,
            passes: 2,
            polish_passes: 1,
            ..Default::default()
        };
        let build = || {
            let mut source = enq_data::InMemorySource::new(&dataset);
            EnqodePipeline::build_streaming(&mut source, config.clone(), &stream).unwrap()
        };
        let a = build();
        let b = build();
        for (ca, cb) in a.class_models().iter().zip(b.class_models()) {
            assert_eq!(ca.label, cb.label);
            for (ka, kb) in ca.model.clusters().iter().zip(cb.model.clusters()) {
                assert_eq!(ka.centroid, kb.centroid);
                assert_eq!(ka.parameters, kb.parameters);
            }
        }
    }

    #[test]
    fn streaming_build_rejects_empty_sources() {
        let config = EnqodeConfig {
            ansatz: AnsatzConfig {
                num_qubits: 3,
                num_layers: 4,
                entangler: EntanglerKind::Cy,
            },
            ..EnqodeConfig::default()
        };
        // A CSV source cannot even be constructed empty; use a dataset and
        // an exhausted cursor via a zero-sample synthetic config instead.
        assert!(enq_data::SyntheticSource::new(
            DatasetKind::MnistLike,
            &SyntheticConfig {
                classes: 0,
                samples_per_class: 1,
                seed: 0,
            },
        )
        .is_err());
        // Dimension mismatch between the source and the ansatz surfaces as
        // an error, not junk features: 8-dim ansatz needs 2^3 features but
        // raw MNIST-like samples are 784-dim, so this must *succeed* via
        // PCA; an ansatz wider than the raw dimension must fail.
        let wide = EnqodeConfig {
            ansatz: AnsatzConfig {
                num_qubits: 12,
                num_layers: 2,
                entangler: EntanglerKind::Cy,
            },
            ..config
        };
        let dataset = generate_synthetic(
            DatasetKind::MnistLike,
            &SyntheticConfig {
                classes: 1,
                samples_per_class: 4,
                seed: 1,
            },
        )
        .unwrap();
        let mut source = enq_data::InMemorySource::new(&dataset);
        assert!(
            EnqodePipeline::build_streaming(&mut source, wide, &StreamingFitConfig::default())
                .is_err()
        );
    }

    #[test]
    fn unknown_class_errors() {
        let (pipeline, dataset) = tiny_pipeline();
        assert!(matches!(
            pipeline.embed_with_class(dataset.sample(0), 42),
            Err(EnqodeError::NotTrained)
        ));
    }
}

//! End-to-end pipeline: raw dataset → PCA features → per-class EnQode models.
//!
//! The paper trains EnQode "per dataset and class": each class is clustered
//! and optimised independently (Sec. III-C), and new samples are embedded by
//! transfer learning from the nearest cluster of their class (or of any
//! class, for unlabelled inference data).

use crate::error::EnqodeError;
use crate::model::{Embedding, EnqodeConfig, EnqodeModel};
use enq_data::{Dataset, FeaturePipeline};
use std::time::Duration;

/// A trained per-class model.
#[derive(Debug, Clone)]
pub struct ClassModel {
    /// The class label this model was trained on.
    pub label: usize,
    /// The trained EnQode model for this class.
    pub model: EnqodeModel,
}

/// The full EnQode pipeline for one dataset: feature extraction plus one
/// trained model per class.
#[derive(Debug, Clone)]
pub struct EnqodePipeline {
    features: FeaturePipeline,
    class_models: Vec<ClassModel>,
}

impl EnqodePipeline {
    /// Builds the pipeline from a raw dataset: fits PCA to
    /// `2^num_qubits` features on the whole dataset, then trains one EnQode
    /// model per class.
    ///
    /// # Errors
    ///
    /// Propagates feature-extraction and training errors.
    pub fn build(dataset: &Dataset, config: EnqodeConfig) -> Result<Self, EnqodeError> {
        let num_features = config.ansatz.dimension();
        let features = FeaturePipeline::fit(dataset, num_features)?;
        let transformed = features.apply_dataset(dataset)?;
        let mut class_models = Vec::new();
        for label in transformed.classes() {
            let class_data = transformed.class_subset(label)?;
            let model = EnqodeModel::fit(class_data.samples(), config.clone())?;
            class_models.push(ClassModel { label, model });
        }
        Ok(Self {
            features,
            class_models,
        })
    }

    /// Returns the fitted feature pipeline.
    pub fn features(&self) -> &FeaturePipeline {
        &self.features
    }

    /// Returns the per-class models.
    pub fn class_models(&self) -> &[ClassModel] {
        &self.class_models
    }

    /// Returns the model trained for a specific class label.
    pub fn model_for_class(&self, label: usize) -> Option<&EnqodeModel> {
        self.class_models
            .iter()
            .find(|cm| cm.label == label)
            .map(|cm| &cm.model)
    }

    /// Returns the total number of trained clusters across all classes.
    pub fn total_clusters(&self) -> usize {
        self.class_models
            .iter()
            .map(|cm| cm.model.num_clusters())
            .sum()
    }

    /// Returns the total offline training time across all classes (the
    /// paper's "offline compilation time").
    pub fn offline_duration(&self) -> Duration {
        self.class_models
            .iter()
            .map(|cm| cm.model.offline_duration())
            .sum()
    }

    /// Maps a raw sample to its normalised feature vector.
    ///
    /// # Errors
    ///
    /// Propagates feature-extraction errors.
    pub fn extract_features(&self, raw_sample: &[f64]) -> Result<Vec<f64>, EnqodeError> {
        Ok(self.features.apply(raw_sample)?)
    }

    /// Embeds a raw sample whose class label is known (the training /
    /// supervised-inference path).
    ///
    /// # Errors
    ///
    /// Returns [`EnqodeError::NotTrained`] if the class has no model.
    pub fn embed_with_class(
        &self,
        raw_sample: &[f64],
        label: usize,
    ) -> Result<Embedding, EnqodeError> {
        let model = self.model_for_class(label).ok_or(EnqodeError::NotTrained)?;
        let features = self.extract_features(raw_sample)?;
        model.embed(&features)
    }

    /// Embeds a raw sample with unknown label by searching the nearest
    /// cluster across every class model.
    ///
    /// Returns the class label used along with the embedding.
    ///
    /// # Errors
    ///
    /// Returns [`EnqodeError::NotTrained`] for an empty pipeline.
    pub fn embed(&self, raw_sample: &[f64]) -> Result<(usize, Embedding), EnqodeError> {
        if self.class_models.is_empty() {
            return Err(EnqodeError::NotTrained);
        }
        let features = self.extract_features(raw_sample)?;
        // Pick the class whose nearest cluster centroid is closest.
        let mut best: Option<(usize, f64)> = None;
        for cm in &self.class_models {
            let idx = cm.model.nearest_cluster(&features)?;
            let centroid = &cm.model.clusters()[idx].centroid;
            let normalized = enq_data::l2_normalize(&features)?;
            let dist: f64 = normalized
                .iter()
                .zip(centroid.iter())
                .map(|(a, b)| (a - b) * (a - b))
                .sum();
            if best.map(|(_, d)| dist < d).unwrap_or(true) {
                best = Some((cm.label, dist));
            }
        }
        let (label, _) = best.expect("class_models is non-empty");
        let embedding = self
            .model_for_class(label)
            .expect("label came from class_models")
            .embed(&features)?;
        Ok((label, embedding))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ansatz::{AnsatzConfig, EntanglerKind};
    use enq_data::{generate_synthetic, DatasetKind, SyntheticConfig};

    fn tiny_pipeline() -> (EnqodePipeline, Dataset) {
        let dataset = generate_synthetic(
            DatasetKind::MnistLike,
            &SyntheticConfig {
                classes: 2,
                samples_per_class: 8,
                seed: 21,
            },
        )
        .unwrap();
        let config = EnqodeConfig {
            ansatz: AnsatzConfig {
                num_qubits: 4,
                num_layers: 8,
                entangler: EntanglerKind::Cy,
            },
            fidelity_threshold: 0.9,
            max_clusters: 4,
            offline_max_iterations: 120,
            offline_restarts: 3,
            online_max_iterations: 40,
            seed: 21,
        };
        (EnqodePipeline::build(&dataset, config).unwrap(), dataset)
    }

    #[test]
    fn builds_one_model_per_class() {
        let (pipeline, _) = tiny_pipeline();
        assert_eq!(pipeline.class_models().len(), 2);
        assert!(pipeline.model_for_class(0).is_some());
        assert!(pipeline.model_for_class(1).is_some());
        assert!(pipeline.model_for_class(9).is_none());
        assert!(pipeline.total_clusters() >= 2);
        assert!(pipeline.offline_duration() > Duration::ZERO);
    }

    #[test]
    fn embeds_training_samples_with_good_fidelity() {
        let (pipeline, dataset) = tiny_pipeline();
        let label = dataset.labels()[0];
        let embedding = pipeline.embed_with_class(dataset.sample(0), label).unwrap();
        assert!(
            embedding.ideal_fidelity > 0.8,
            "fidelity {}",
            embedding.ideal_fidelity
        );
    }

    #[test]
    fn label_free_embedding_chooses_a_class() {
        let (pipeline, dataset) = tiny_pipeline();
        let (label, embedding) = pipeline.embed(dataset.sample(0)).unwrap();
        assert!(label == 0 || label == 1);
        assert!(embedding.ideal_fidelity > 0.8);
    }

    #[test]
    fn feature_extraction_has_expected_dimension() {
        let (pipeline, dataset) = tiny_pipeline();
        let features = pipeline.extract_features(dataset.sample(3)).unwrap();
        assert_eq!(features.len(), 16);
        let norm: f64 = features.iter().map(|v| v * v).sum();
        assert!((norm - 1.0).abs() < 1e-9);
    }

    #[test]
    fn unknown_class_errors() {
        let (pipeline, dataset) = tiny_pipeline();
        assert!(matches!(
            pipeline.embed_with_class(dataset.sample(0), 42),
            Err(EnqodeError::NotTrained)
        ));
    }
}

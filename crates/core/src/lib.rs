//! # enqode
//!
//! A from-scratch Rust reproduction of **EnQode** (Han et al., DAC 2025):
//! fast, approximate amplitude embedding for quantum machine learning on
//! NISQ devices.
//!
//! EnQode replaces exact (deep, data-dependent) amplitude-embedding circuits
//! with a **fixed-shape, hardware-efficient ansatz** whose `Rz` parameters
//! are trained against each sample. Training is fast because the ansatz state
//! has a closed-form **symbolic representation** (every amplitude is a unit
//! phase that is linear in the parameters), and it is amortised by
//! **k-means clustering**: each cluster mean is optimised once offline, and
//! new samples are embedded online by **transfer learning** from their
//! nearest cluster.
//!
//! ## Crate map
//!
//! * [`AnsatzConfig`] / [`EntanglerKind`] — the Fig. 2 ansatz;
//! * [`SymbolicState`] — the Eq. 6 phase table with analytic gradients;
//! * [`FidelityObjective`] — the `1 − |⟨y|ψ(θ)⟩|²` training loss;
//! * [`EnqodeModel`] — offline clustering + per-cluster training, online
//!   transfer-learning embedding;
//! * [`EnqodePipeline`] — dataset-level convenience (PCA features + one model
//!   per class);
//! * [`BaselineEmbedder`] — the exact state-preparation Baseline;
//! * [`evaluation`] — per-sample circuit metrics, ideal/noisy fidelity, and
//!   compile-time measurements used to regenerate the paper's figures.
//!
//! ## Quick example
//!
//! ```
//! use enqode::{AnsatzConfig, EnqodeConfig, EnqodeModel};
//!
//! // Train on a handful of 3-qubit (8-feature) samples.
//! let samples: Vec<Vec<f64>> = (0..6)
//!     .map(|i| (0..8).map(|j| ((i * 3 + j) as f64 * 0.37).sin().abs() + 0.1).collect())
//!     .collect();
//! let config = EnqodeConfig {
//!     ansatz: AnsatzConfig { num_qubits: 3, num_layers: 8, ..Default::default() },
//!     ..Default::default()
//! };
//! let model = EnqodeModel::fit(&samples, config)?;
//! let embedding = model.embed(&samples[0])?;
//! assert!(embedding.ideal_fidelity > 0.8);
//! assert_eq!(embedding.circuit.num_qubits(), 3);
//! # Ok::<(), enqode::EnqodeError>(())
//! ```

#![warn(missing_docs)]

mod ansatz;
mod baseline;
mod driver;
mod error;
pub mod evaluation;
mod loss;
mod model;
mod pipeline;
mod symbolic;

pub use ansatz::{AnsatzConfig, EntanglerKind};
pub use baseline::{
    target_state, BaselineEmbedder, BaselineEmbedding, BASELINE_SYNTHESIS_TOLERANCE,
};
pub use driver::{ClassAudit, ClusterAudit, FidelityAudit, StageReport, StreamDriver, StreamStage};
pub use error::EnqodeError;
pub use evaluation::{evaluate_baseline_sample, evaluate_enqode_sample, SampleEvaluation};
pub use loss::{BatchedFidelityObjective, FidelityObjective};
pub use model::{Embedding, EnqodeConfig, EnqodeModel, TrainedCluster};
pub use pipeline::{ClassModel, EnqodePipeline, StreamingFitConfig};
pub use symbolic::{SymbolicBatch, SymbolicState, SymbolicWorkspace};

#[cfg(test)]
mod proptests {
    use super::*;
    use enq_optim::Objective;
    use proptest::prelude::*;

    fn small_config() -> AnsatzConfig {
        AnsatzConfig {
            num_qubits: 3,
            num_layers: 3,
            entangler: EntanglerKind::Cy,
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn symbolic_state_is_always_normalised(
            theta in proptest::collection::vec(-3.0..3.0f64, 9)
        ) {
            let symbolic = SymbolicState::from_ansatz(&small_config()).unwrap();
            let psi = symbolic.amplitudes(&theta).unwrap();
            prop_assert!((psi.norm() - 1.0).abs() < 1e-9);
        }

        #[test]
        fn fidelity_loss_stays_in_unit_interval(
            theta in proptest::collection::vec(-3.0..3.0f64, 9),
            target in proptest::collection::vec(-1.0..1.0f64, 8),
        ) {
            prop_assume!(target.iter().map(|v| v * v).sum::<f64>() > 1e-3);
            let obj = FidelityObjective::new(&small_config(), &target).unwrap();
            let value = obj.value(&theta);
            prop_assert!((-1e-9..=1.0 + 1e-9).contains(&value));
            prop_assert!((obj.fidelity(&theta) + value - 1.0).abs() < 1e-9);
        }

        #[test]
        fn bound_ansatz_circuits_always_have_the_same_shape(
            a in proptest::collection::vec(-3.0..3.0f64, 9),
            b in proptest::collection::vec(-3.0..3.0f64, 9),
        ) {
            let cfg = small_config();
            let ca = cfg.build_bound(&a).unwrap();
            let cb = cfg.build_bound(&b).unwrap();
            prop_assert_eq!(ca.len(), cb.len());
            prop_assert_eq!(ca.depth(), cb.depth());
        }

        #[test]
        fn symbolic_fidelity_matches_circuit_fidelity(
            theta in proptest::collection::vec(-3.0..3.0f64, 9),
            target in proptest::collection::vec(0.05..1.0f64, 8),
        ) {
            let cfg = small_config();
            let obj = FidelityObjective::new(&cfg, &target).unwrap();
            let symbolic_fidelity = obj.fidelity(&theta);
            let circuit = cfg.build_bound(&theta).unwrap();
            let out = enq_qsim::Statevector::from_circuit(&circuit).unwrap();
            let want = enq_qsim::Statevector::from_real_normalized(&target).unwrap();
            let circuit_fidelity = out.fidelity(&want).unwrap();
            prop_assert!((symbolic_fidelity - circuit_fidelity).abs() < 1e-7);
        }
    }
}

//! Offline cluster training and online transfer-learning embedding.

use crate::ansatz::AnsatzConfig;
use crate::error::EnqodeError;
use crate::loss::FidelityObjective;
use crate::symbolic::SymbolicState;
use enq_circuit::QuantumCircuit;
use enq_data::{fit_with_fidelity_threshold, l2_normalize};
use enq_optim::{Lbfgs, Optimizer};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::{Duration, Instant};

/// Configuration of an EnQode model.
#[derive(Debug, Clone, PartialEq)]
pub struct EnqodeConfig {
    /// Shape of the hardware-efficient ansatz.
    pub ansatz: AnsatzConfig,
    /// Minimum embedding fidelity between any sample and its nearest cluster
    /// mean; the number of clusters grows until this is met (the paper uses
    /// 0.95).
    pub fidelity_threshold: f64,
    /// Upper bound on the number of clusters.
    pub max_clusters: usize,
    /// L-BFGS iteration budget for the offline (per-cluster) optimisation.
    pub offline_max_iterations: usize,
    /// Number of random restarts for each cluster's offline optimisation (the
    /// best run is kept); the fidelity loss is non-convex, so a few restarts
    /// noticeably improve the trained fidelity at modest offline cost.
    pub offline_restarts: usize,
    /// L-BFGS iteration budget for the online (per-sample) fine-tuning.
    pub online_max_iterations: usize,
    /// Seed for clustering and parameter initialisation.
    pub seed: u64,
}

impl Default for EnqodeConfig {
    fn default() -> Self {
        Self {
            ansatz: AnsatzConfig::default(),
            fidelity_threshold: 0.95,
            max_clusters: 64,
            offline_max_iterations: 250,
            offline_restarts: 4,
            online_max_iterations: 40,
            seed: 11,
        }
    }
}

impl EnqodeConfig {
    /// Creates a configuration with the paper's defaults for `num_qubits`.
    pub fn with_qubits(num_qubits: usize) -> Self {
        Self {
            ansatz: AnsatzConfig::with_qubits(num_qubits),
            ..Self::default()
        }
    }
}

/// One trained cluster: its (normalised) mean sample and the optimised ansatz
/// parameters that embed it.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainedCluster {
    /// The normalised cluster mean `⃗cᵢ`.
    pub centroid: Vec<f64>,
    /// Optimised `Rz` parameters for the cluster mean.
    pub parameters: Vec<f64>,
    /// Ideal (noise-free) embedding fidelity achieved for the cluster mean.
    pub fidelity: f64,
    /// Number of optimiser iterations spent on this cluster.
    pub iterations: usize,
}

/// The result of embedding one sample with a trained model ("online" phase).
#[derive(Debug, Clone, PartialEq)]
pub struct Embedding {
    /// The fine-tuned ansatz parameters for this sample.
    pub parameters: Vec<f64>,
    /// The bound, fixed-shape embedding circuit.
    pub circuit: QuantumCircuit,
    /// Index of the cluster whose parameters initialised the optimisation.
    pub cluster_index: usize,
    /// Ideal (noise-free) fidelity of the embedded state against the sample.
    pub ideal_fidelity: f64,
    /// Wall-clock time of the online compilation.
    pub duration: Duration,
    /// Optimiser iterations used during fine-tuning.
    pub iterations: usize,
}

/// A trained EnQode model: the clusters of one dataset/class and the shared
/// symbolic machinery needed to embed new samples.
///
/// # Examples
///
/// ```
/// use enqode::{AnsatzConfig, EnqodeConfig, EnqodeModel};
///
/// // Four 8-dimensional feature vectors (3 qubits) in two loose groups.
/// let samples = vec![
///     vec![0.9, 0.1, 0.0, 0.1, 0.0, 0.0, 0.1, 0.0],
///     vec![0.8, 0.2, 0.1, 0.0, 0.0, 0.1, 0.0, 0.0],
///     vec![0.0, 0.1, 0.0, 0.1, 0.9, 0.1, 0.0, 0.1],
///     vec![0.1, 0.0, 0.1, 0.0, 0.8, 0.0, 0.2, 0.0],
/// ];
/// let config = EnqodeConfig {
///     ansatz: AnsatzConfig { num_qubits: 3, num_layers: 8, ..Default::default() },
///     ..Default::default()
/// };
/// let model = EnqodeModel::fit(&samples, config)?;
/// let embedding = model.embed(&samples[0])?;
/// assert!(embedding.ideal_fidelity > 0.9);
/// # Ok::<(), enqode::EnqodeError>(())
/// ```
#[derive(Debug, Clone)]
pub struct EnqodeModel {
    config: EnqodeConfig,
    symbolic: SymbolicState,
    clusters: Vec<TrainedCluster>,
    offline_duration: Duration,
}

impl EnqodeModel {
    /// Trains the model on a set of feature vectors (the "offline" phase):
    /// k-means clustering followed by per-cluster symbolic optimisation.
    ///
    /// Samples must have length `2^num_qubits`; they are normalised
    /// internally.
    ///
    /// # Errors
    ///
    /// Returns [`EnqodeError::Data`] for empty or malformed sample sets and
    /// configuration errors from the ansatz.
    pub fn fit(samples: &[Vec<f64>], config: EnqodeConfig) -> Result<Self, EnqodeError> {
        config.ansatz.validate()?;
        let dim = config.ansatz.dimension();
        for s in samples {
            if s.len() != dim {
                return Err(EnqodeError::DimensionMismatch {
                    expected: dim,
                    found: s.len(),
                });
            }
        }
        let start = Instant::now();
        let normalized: Result<Vec<Vec<f64>>, _> =
            samples.iter().map(|s| l2_normalize(s)).collect();
        let normalized = normalized?;

        let clustering = fit_with_fidelity_threshold(
            &normalized,
            config.fidelity_threshold,
            config.max_clusters,
            config.seed,
        )?;

        let symbolic = SymbolicState::from_ansatz(&config.ansatz)?;
        let mut rng = StdRng::seed_from_u64(config.seed ^ 0xE17);
        let mut clusters = Vec::with_capacity(clustering.num_clusters());
        for centroid in clustering.centroids() {
            let centroid_normalized = l2_normalize(centroid)?;
            let objective = FidelityObjective::with_symbolic(
                symbolic.clone(),
                &config.ansatz,
                &centroid_normalized,
            )?;
            let optimizer = Lbfgs::with_max_iterations(config.offline_max_iterations);
            let restarts = config.offline_restarts.max(1);
            let mut best: Option<(Vec<f64>, f64, usize)> = None;
            for restart in 0..restarts {
                let spread = if restart == 0 { 0.3 } else { std::f64::consts::PI };
                let start_theta: Vec<f64> = (0..config.ansatz.num_parameters())
                    .map(|_| rng.gen_range(-spread..spread))
                    .collect();
                let result = optimizer.minimize(&objective, &start_theta);
                let fidelity = objective.fidelity(&result.x);
                let iterations = result.iterations;
                if best.as_ref().map(|(_, f, _)| fidelity > *f).unwrap_or(true) {
                    best = Some((result.x, fidelity, iterations));
                }
            }
            let (parameters, fidelity, iterations) = best.expect("at least one restart runs");
            clusters.push(TrainedCluster {
                centroid: centroid_normalized,
                fidelity,
                parameters,
                iterations,
            });
        }
        Ok(Self {
            config,
            symbolic,
            clusters,
            offline_duration: start.elapsed(),
        })
    }

    /// Returns the model configuration.
    pub fn config(&self) -> &EnqodeConfig {
        &self.config
    }

    /// Returns the trained clusters.
    pub fn clusters(&self) -> &[TrainedCluster] {
        &self.clusters
    }

    /// Returns the number of clusters selected by the fidelity-threshold
    /// rule.
    pub fn num_clusters(&self) -> usize {
        self.clusters.len()
    }

    /// Returns the wall-clock duration of the offline training phase.
    pub fn offline_duration(&self) -> Duration {
        self.offline_duration
    }

    /// Returns the shared symbolic state of the ansatz.
    pub fn symbolic(&self) -> &SymbolicState {
        &self.symbolic
    }

    /// Returns the index of the cluster whose centroid is nearest (in
    /// Euclidean distance) to the normalised sample.
    ///
    /// # Errors
    ///
    /// Returns [`EnqodeError::NotTrained`] if the model has no clusters and
    /// [`EnqodeError::DimensionMismatch`] for bad sample lengths.
    pub fn nearest_cluster(&self, sample: &[f64]) -> Result<usize, EnqodeError> {
        if self.clusters.is_empty() {
            return Err(EnqodeError::NotTrained);
        }
        let dim = self.config.ansatz.dimension();
        if sample.len() != dim {
            return Err(EnqodeError::DimensionMismatch {
                expected: dim,
                found: sample.len(),
            });
        }
        let normalized = l2_normalize(sample)?;
        let mut best = 0usize;
        let mut best_dist = f64::INFINITY;
        for (i, cluster) in self.clusters.iter().enumerate() {
            let dist: f64 = normalized
                .iter()
                .zip(cluster.centroid.iter())
                .map(|(a, b)| (a - b) * (a - b))
                .sum();
            if dist < best_dist {
                best_dist = dist;
                best = i;
            }
        }
        Ok(best)
    }

    /// Builds the bound, fixed-shape embedding circuit for given parameters.
    ///
    /// # Errors
    ///
    /// Returns a circuit error if `parameters` is too short.
    pub fn circuit(&self, parameters: &[f64]) -> Result<QuantumCircuit, EnqodeError> {
        self.config.ansatz.build_bound(parameters)
    }

    /// Embeds a new sample (the "online" phase): nearest-cluster lookup,
    /// transfer-learning initialisation, and a short symbolic fine-tune.
    ///
    /// # Errors
    ///
    /// Returns [`EnqodeError::NotTrained`] for an untrained model, dimension
    /// errors for bad samples, and data errors for zero vectors.
    pub fn embed(&self, sample: &[f64]) -> Result<Embedding, EnqodeError> {
        let start = Instant::now();
        let cluster_index = self.nearest_cluster(sample)?;
        let normalized = l2_normalize(sample)?;
        let objective = FidelityObjective::with_symbolic(
            self.symbolic.clone(),
            &self.config.ansatz,
            &normalized,
        )?;
        let initial = self.clusters[cluster_index].parameters.clone();
        let result = Lbfgs::with_max_iterations(self.config.online_max_iterations)
            .minimize(&objective, &initial);
        let ideal_fidelity = objective.fidelity(&result.x);
        let circuit = self.config.ansatz.build_bound(&result.x)?;
        Ok(Embedding {
            parameters: result.x,
            circuit,
            cluster_index,
            ideal_fidelity,
            duration: start.elapsed(),
            iterations: result.iterations,
        })
    }

    /// Embeds a sample without fine-tuning, using the nearest cluster's
    /// parameters directly (the cheapest possible online path; used by the
    /// ablation benchmarks).
    ///
    /// # Errors
    ///
    /// Same as [`EnqodeModel::embed`].
    pub fn embed_without_finetuning(&self, sample: &[f64]) -> Result<Embedding, EnqodeError> {
        let start = Instant::now();
        let cluster_index = self.nearest_cluster(sample)?;
        let normalized = l2_normalize(sample)?;
        let objective = FidelityObjective::with_symbolic(
            self.symbolic.clone(),
            &self.config.ansatz,
            &normalized,
        )?;
        let parameters = self.clusters[cluster_index].parameters.clone();
        let ideal_fidelity = objective.fidelity(&parameters);
        let circuit = self.config.ansatz.build_bound(&parameters)?;
        Ok(Embedding {
            parameters,
            circuit,
            cluster_index,
            ideal_fidelity,
            duration: start.elapsed(),
            iterations: 0,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ansatz::EntanglerKind;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn small_config() -> EnqodeConfig {
        EnqodeConfig {
            ansatz: AnsatzConfig {
                num_qubits: 3,
                num_layers: 8,
                entangler: EntanglerKind::Cy,
            },
            fidelity_threshold: 0.9,
            max_clusters: 8,
            offline_max_iterations: 150,
            offline_restarts: 3,
            online_max_iterations: 40,
            seed: 3,
        }
    }

    /// Two groups of similar 8-dimensional vectors.
    fn grouped_samples(per_group: usize, seed: u64) -> Vec<Vec<f64>> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut out = Vec::new();
        let base_a = [0.9, 0.2, 0.1, 0.05, 0.02, 0.1, 0.05, 0.01];
        let base_b = [0.05, 0.1, 0.02, 0.2, 0.9, 0.05, 0.1, 0.02];
        for _ in 0..per_group {
            out.push(
                base_a
                    .iter()
                    .map(|v| v + rng.gen_range(-0.03..0.03))
                    .collect(),
            );
            out.push(
                base_b
                    .iter()
                    .map(|v| v + rng.gen_range(-0.03..0.03))
                    .collect(),
            );
        }
        out
    }

    #[test]
    fn fit_trains_clusters_with_high_fidelity() {
        let samples = grouped_samples(6, 1);
        let model = EnqodeModel::fit(&samples, small_config()).unwrap();
        assert!(model.num_clusters() >= 1);
        for cluster in model.clusters() {
            assert!(
                cluster.fidelity > 0.9,
                "cluster fidelity {} too low",
                cluster.fidelity
            );
            assert_eq!(cluster.parameters.len(), 24);
        }
        assert!(model.offline_duration() > Duration::ZERO);
    }

    #[test]
    fn embed_reaches_high_fidelity_and_assigns_sensible_cluster() {
        let samples = grouped_samples(6, 2);
        let model = EnqodeModel::fit(&samples, small_config()).unwrap();
        let embedding = model.embed(&samples[0]).unwrap();
        assert!(
            embedding.ideal_fidelity > 0.9,
            "fidelity {}",
            embedding.ideal_fidelity
        );
        assert!(embedding.cluster_index < model.num_clusters());
        assert_eq!(embedding.parameters.len(), 24);
        assert!(!embedding.circuit.is_parameterized());
    }

    #[test]
    fn embedding_circuits_have_identical_shape_across_samples() {
        let samples = grouped_samples(4, 3);
        let model = EnqodeModel::fit(&samples, small_config()).unwrap();
        let a = model.embed(&samples[0]).unwrap();
        let b = model.embed(&samples[1]).unwrap();
        assert_eq!(a.circuit.len(), b.circuit.len());
        assert_eq!(a.circuit.depth(), b.circuit.depth());
    }

    #[test]
    fn transfer_learning_initialisation_is_better_than_cold_start() {
        // Fine-tuning from the cluster parameters should converge in fewer
        // iterations than the offline optimisation needed from scratch.
        let samples = grouped_samples(6, 4);
        let model = EnqodeModel::fit(&samples, small_config()).unwrap();
        let embedding = model.embed(&samples[2]).unwrap();
        let offline_iters = model.clusters()[embedding.cluster_index].iterations;
        assert!(
            embedding.iterations <= offline_iters,
            "online {} vs offline {}",
            embedding.iterations,
            offline_iters
        );
    }

    #[test]
    fn embed_without_finetuning_is_reasonable_for_cluster_members() {
        let samples = grouped_samples(6, 5);
        let model = EnqodeModel::fit(&samples, small_config()).unwrap();
        let quick = model.embed_without_finetuning(&samples[0]).unwrap();
        let tuned = model.embed(&samples[0]).unwrap();
        assert!(quick.ideal_fidelity > 0.8);
        assert!(tuned.ideal_fidelity >= quick.ideal_fidelity - 1e-9);
        assert_eq!(quick.iterations, 0);
    }

    #[test]
    fn fit_rejects_wrong_dimensions() {
        let samples = vec![vec![1.0, 0.0, 0.0, 0.0]];
        assert!(matches!(
            EnqodeModel::fit(&samples, small_config()),
            Err(EnqodeError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn embed_rejects_bad_samples() {
        let samples = grouped_samples(3, 6);
        let model = EnqodeModel::fit(&samples, small_config()).unwrap();
        assert!(model.embed(&[1.0, 2.0]).is_err());
        assert!(model.embed(&[0.0; 8]).is_err());
    }

    #[test]
    fn default_config_matches_paper() {
        let cfg = EnqodeConfig::default();
        assert_eq!(cfg.ansatz.num_qubits, 8);
        assert_eq!(cfg.ansatz.num_layers, 8);
        assert!((cfg.fidelity_threshold - 0.95).abs() < 1e-12);
    }
}

//! Offline cluster training and online transfer-learning embedding.
//!
//! The offline phase is embarrassingly parallel: every `(cluster, restart)`
//! optimisation is independent, so [`EnqodeModel::fit`] fans the flattened
//! job list out across threads (see `enq_parallel`). Each job derives its own
//! RNG seed from `(config.seed, cluster, restart)` — never from scheduling
//! order — so a parallel fit is bit-identical to [`EnqodeModel::fit_sequential`].
//!
//! The online phase shares one [`Arc<SymbolicState>`] across all objectives
//! (the phase table depends only on the ansatz shape); nothing is cloned per
//! embedded sample, and [`EnqodeModel::embed_batch`] embeds whole evaluation
//! sets in parallel.

use crate::ansatz::AnsatzConfig;
use crate::error::EnqodeError;
use crate::loss::{BatchedFidelityObjective, FidelityObjective};
use crate::symbolic::SymbolicState;
use enq_circuit::QuantumCircuit;
use enq_data::{fit_with_fidelity_threshold, l2_normalize};
use enq_optim::{Lbfgs, LbfgsDriver, Optimizer};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::num::NonZeroUsize;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Configuration of an EnQode model.
#[derive(Debug, Clone, PartialEq)]
pub struct EnqodeConfig {
    /// Shape of the hardware-efficient ansatz.
    pub ansatz: AnsatzConfig,
    /// Minimum embedding fidelity between any sample and its nearest cluster
    /// mean; the number of clusters grows until this is met (the paper uses
    /// 0.95).
    pub fidelity_threshold: f64,
    /// Upper bound on the number of clusters.
    pub max_clusters: usize,
    /// L-BFGS iteration budget for the offline (per-cluster) optimisation.
    pub offline_max_iterations: usize,
    /// Number of random restarts for each cluster's offline optimisation (the
    /// best run is kept); the fidelity loss is non-convex, so a few restarts
    /// noticeably improve the trained fidelity at modest offline cost.
    pub offline_restarts: usize,
    /// L-BFGS iteration budget for the online (per-sample) fine-tuning.
    pub online_max_iterations: usize,
    /// Opt-in robustness: when `true`, clusters whose best restart misses
    /// `fidelity_threshold` get one deterministic rescue wave of
    /// `max(2·offline_restarts, 4)` extra restarts. Defaults to `false`,
    /// matching the paper's fixed-restart budget so benchmark columns stay
    /// comparable to the DAC-2025 methodology.
    pub offline_rescue: bool,
    /// Seed for clustering and parameter initialisation.
    pub seed: u64,
}

impl Default for EnqodeConfig {
    fn default() -> Self {
        Self {
            ansatz: AnsatzConfig::default(),
            fidelity_threshold: 0.95,
            max_clusters: 64,
            offline_max_iterations: 250,
            offline_restarts: 4,
            online_max_iterations: 40,
            offline_rescue: false,
            seed: 11,
        }
    }
}

impl EnqodeConfig {
    /// Creates a configuration with the paper's defaults for `num_qubits`.
    pub fn with_qubits(num_qubits: usize) -> Self {
        Self {
            ansatz: AnsatzConfig::with_qubits(num_qubits),
            ..Self::default()
        }
    }
}

/// One trained cluster: its (normalised) mean sample and the optimised ansatz
/// parameters that embed it.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainedCluster {
    /// The normalised cluster mean `⃗cᵢ`.
    pub centroid: Vec<f64>,
    /// Optimised `Rz` parameters for the cluster mean.
    pub parameters: Vec<f64>,
    /// Ideal (noise-free) embedding fidelity achieved for the cluster mean.
    pub fidelity: f64,
    /// Number of optimiser iterations spent on this cluster.
    pub iterations: usize,
}

/// The result of embedding one sample with a trained model ("online" phase).
#[derive(Debug, Clone, PartialEq)]
pub struct Embedding {
    /// The fine-tuned ansatz parameters for this sample.
    pub parameters: Vec<f64>,
    /// The bound, fixed-shape embedding circuit.
    pub circuit: QuantumCircuit,
    /// Index of the cluster whose parameters initialised the optimisation.
    pub cluster_index: usize,
    /// Ideal (noise-free) fidelity of the embedded state against the sample.
    pub ideal_fidelity: f64,
    /// Wall-clock time of the online compilation.
    pub duration: Duration,
    /// Optimiser iterations used during fine-tuning.
    pub iterations: usize,
}

/// Derives an independent, scheduling-invariant RNG seed for one
/// `(cluster, restart)` optimisation job ([`enq_data::seed::splitmix64`]
/// finaliser).
fn restart_seed(base: u64, cluster: usize, restart: usize) -> u64 {
    enq_data::seed::splitmix64(
        base ^ 0xE17
            ^ ((cluster as u64).wrapping_shl(32))
            ^ (restart as u64).wrapping_mul(enq_data::seed::GOLDEN_GAMMA),
    )
}

/// The outcome of one restart of one cluster's offline optimisation.
#[derive(Clone)]
struct RestartOutcome {
    parameters: Vec<f64>,
    fidelity: f64,
    iterations: usize,
}

/// A trained EnQode model: the clusters of one dataset/class and the shared
/// symbolic machinery needed to embed new samples.
///
/// # Examples
///
/// ```
/// use enqode::{AnsatzConfig, EnqodeConfig, EnqodeModel};
///
/// // Four 8-dimensional feature vectors (3 qubits) in two loose groups.
/// let samples = vec![
///     vec![0.9, 0.1, 0.0, 0.1, 0.0, 0.0, 0.1, 0.0],
///     vec![0.8, 0.2, 0.1, 0.0, 0.0, 0.1, 0.0, 0.0],
///     vec![0.0, 0.1, 0.0, 0.1, 0.9, 0.1, 0.0, 0.1],
///     vec![0.1, 0.0, 0.1, 0.0, 0.8, 0.0, 0.2, 0.0],
/// ];
/// let config = EnqodeConfig {
///     ansatz: AnsatzConfig { num_qubits: 3, num_layers: 8, ..Default::default() },
///     ..Default::default()
/// };
/// let model = EnqodeModel::fit(&samples, config)?;
/// let embedding = model.embed(&samples[0])?;
/// assert!(embedding.ideal_fidelity > 0.9);
/// # Ok::<(), enqode::EnqodeError>(())
/// ```
#[derive(Debug, Clone)]
pub struct EnqodeModel {
    config: EnqodeConfig,
    symbolic: Arc<SymbolicState>,
    clusters: Vec<TrainedCluster>,
    offline_duration: Duration,
}

impl EnqodeModel {
    /// Trains the model on a set of feature vectors (the "offline" phase):
    /// k-means clustering followed by per-cluster symbolic optimisation, with
    /// every `(cluster, restart)` job running in parallel.
    ///
    /// Samples must have length `2^num_qubits`; they are normalised
    /// internally.
    ///
    /// # Errors
    ///
    /// Returns [`EnqodeError::Data`] for empty or malformed sample sets and
    /// configuration errors from the ansatz.
    pub fn fit(samples: &[Vec<f64>], config: EnqodeConfig) -> Result<Self, EnqodeError> {
        Self::fit_with_threads(samples, config, enq_parallel::default_threads())
    }

    /// [`EnqodeModel::fit`] on the calling thread only. Produces bit-identical
    /// results to the parallel path (seeds are derived per job, not from
    /// scheduling order); used by reproducibility checks.
    ///
    /// # Errors
    ///
    /// Same as [`EnqodeModel::fit`].
    pub fn fit_sequential(samples: &[Vec<f64>], config: EnqodeConfig) -> Result<Self, EnqodeError> {
        Self::fit_with_threads(samples, config, NonZeroUsize::MIN)
    }

    /// [`EnqodeModel::fit`] with an explicit worker count.
    ///
    /// # Errors
    ///
    /// Same as [`EnqodeModel::fit`].
    pub fn fit_with_threads(
        samples: &[Vec<f64>],
        config: EnqodeConfig,
        threads: NonZeroUsize,
    ) -> Result<Self, EnqodeError> {
        // from_ansatz validates; fit_with_shared_symbolic re-validates and
        // checks the table shape.
        let symbolic = Arc::new(SymbolicState::from_ansatz(&config.ansatz)?);
        Self::fit_with_shared_symbolic(samples, config, threads, symbolic)
    }

    /// [`EnqodeModel::fit_with_threads`] against a pre-built, shared symbolic
    /// phase table. The table depends only on the ansatz *shape*, so callers
    /// training many models of the same shape (one per class in
    /// [`crate::EnqodePipeline`], one per dataset in a model registry) build
    /// it once and hand every fit the same `Arc` — no per-model table copies,
    /// and every embedding served from any of those models shares the one
    /// allocation.
    ///
    /// # Errors
    ///
    /// Returns [`EnqodeError::InvalidConfig`] if `symbolic` was built for a
    /// different ansatz shape, plus everything [`EnqodeModel::fit`] returns.
    pub fn fit_with_shared_symbolic(
        samples: &[Vec<f64>],
        config: EnqodeConfig,
        threads: NonZeroUsize,
        symbolic: Arc<SymbolicState>,
    ) -> Result<Self, EnqodeError> {
        Self::validate_shared(&config, &symbolic)?;
        let dim = config.ansatz.dimension();
        for s in samples {
            if s.len() != dim {
                return Err(EnqodeError::DimensionMismatch {
                    expected: dim,
                    found: s.len(),
                });
            }
        }
        let start = Instant::now();
        let normalized: Result<Vec<Vec<f64>>, _> =
            samples.iter().map(|s| l2_normalize(s)).collect();
        let normalized = normalized?;

        let clustering = fit_with_fidelity_threshold(
            &normalized,
            config.fidelity_threshold,
            config.max_clusters,
            config.seed,
        )?;

        let centroids: Result<Vec<Vec<f64>>, _> = clustering
            .centroids()
            .iter()
            .map(|c| l2_normalize(c))
            .collect();
        let centroids = centroids?;
        Self::train_clusters(centroids, config, threads, symbolic, start)
    }

    /// Trains per-cluster ansatz parameters directly from externally supplied
    /// cluster centroids — the entry point for out-of-core training, where
    /// the centroids come from streaming mini-batch k-means and the raw
    /// samples were never resident. Centroids are L2-normalised internally;
    /// the per-cluster optimisation (restart grid, rescue wave, seeds) is
    /// identical to [`EnqodeModel::fit_with_shared_symbolic`] after its
    /// clustering step, so a streaming fit that reproduces the in-memory
    /// clustering bit-for-bit also reproduces the trained parameters.
    ///
    /// # Errors
    ///
    /// Same contract as [`EnqodeModel::fit_with_shared_symbolic`], with the
    /// clustering-related errors replaced by validation of the supplied
    /// centroids (empty set, wrong dimension, zero vectors).
    pub fn fit_from_centroids(
        centroids: &[Vec<f64>],
        config: EnqodeConfig,
        threads: NonZeroUsize,
        symbolic: Arc<SymbolicState>,
    ) -> Result<Self, EnqodeError> {
        Self::validate_shared(&config, &symbolic)?;
        if centroids.is_empty() {
            return Err(EnqodeError::Data(enq_data::DataError::EmptyDataset));
        }
        let dim = config.ansatz.dimension();
        for c in centroids {
            if c.len() != dim {
                return Err(EnqodeError::DimensionMismatch {
                    expected: dim,
                    found: c.len(),
                });
            }
        }
        let start = Instant::now();
        let normalized: Result<Vec<Vec<f64>>, _> =
            centroids.iter().map(|c| l2_normalize(c)).collect();
        Self::train_clusters(normalized?, config, threads, symbolic, start)
    }

    /// Assembles a model from externally supplied **already-trained** parts
    /// — the decoding half of model persistence (`enq_store`), where the
    /// clusters come from a durable artifact rather than a fit.
    ///
    /// Cluster values are adopted **verbatim**: centroids and parameters
    /// are *not* renormalised, so a trained model round-trips through
    /// serialisation bit-for-bit and embeds identically afterwards. Only
    /// shapes are validated (the artifact's integrity hash guards the
    /// values themselves against corruption).
    ///
    /// The symbolic table is rebuildable from the ansatz shape alone, so
    /// artifacts never store it; callers reconstruct one per shape (see
    /// [`SymbolicState::from_ansatz`]) and share the `Arc` across every
    /// model of that shape, exactly like the training paths.
    ///
    /// # Errors
    ///
    /// Returns [`EnqodeError::InvalidConfig`] for an invalid ansatz or a
    /// symbolic table built for a different shape,
    /// [`EnqodeError::NotTrained`] for an empty cluster set, and
    /// [`EnqodeError::DimensionMismatch`] when a centroid's length is not
    /// `2^num_qubits` or a parameter vector's length is not
    /// `num_qubits × num_layers`.
    pub fn from_trained_parts(
        config: EnqodeConfig,
        symbolic: Arc<SymbolicState>,
        clusters: Vec<TrainedCluster>,
        offline_duration: Duration,
    ) -> Result<Self, EnqodeError> {
        Self::validate_shared(&config, &symbolic)?;
        if clusters.is_empty() {
            return Err(EnqodeError::NotTrained);
        }
        let dim = config.ansatz.dimension();
        let num_parameters = config.ansatz.num_parameters();
        for cluster in &clusters {
            if cluster.centroid.len() != dim {
                return Err(EnqodeError::DimensionMismatch {
                    expected: dim,
                    found: cluster.centroid.len(),
                });
            }
            if cluster.parameters.len() != num_parameters {
                return Err(EnqodeError::DimensionMismatch {
                    expected: num_parameters,
                    found: cluster.parameters.len(),
                });
            }
        }
        Ok(Self {
            config,
            symbolic,
            clusters,
            offline_duration,
        })
    }

    /// Validates the ansatz and checks that the shared symbolic table was
    /// built for exactly this shape.
    fn validate_shared(
        config: &EnqodeConfig,
        symbolic: &Arc<SymbolicState>,
    ) -> Result<(), EnqodeError> {
        config.ansatz.validate()?;
        // The full shape must match — the entangler permutes phase-table
        // rows, so two tables of identical size are still not
        // interchangeable across entangler kinds (or layer/qubit splits
        // with the same parameter count).
        if *symbolic.ansatz() != config.ansatz {
            return Err(EnqodeError::InvalidConfig(format!(
                "shared symbolic state was built for {:?}, but the config needs {:?}",
                symbolic.ansatz(),
                config.ansatz,
            )));
        }
        Ok(())
    }

    /// Shared training core: optimises every (already normalised) centroid
    /// over the restart grid, applying the rescue wave when configured.
    fn train_clusters(
        centroids: Vec<Vec<f64>>,
        config: EnqodeConfig,
        threads: NonZeroUsize,
        symbolic: Arc<SymbolicState>,
        start: Instant,
    ) -> Result<Self, EnqodeError> {
        // Flatten the (cluster, restart) grid into one parallel job list so
        // uneven convergence never leaves workers idle.
        let restarts = config.offline_restarts.max(1);
        let jobs: Vec<(usize, usize)> = (0..centroids.len())
            .flat_map(|c| (0..restarts).map(move |r| (c, r)))
            .collect();
        let outcomes = enq_parallel::par_map_with_threads(threads, &jobs, |_, &(c, r)| {
            Self::train_restart(&symbolic, &config, &centroids[c], c, r)
        });
        let mut outcomes_ok = Vec::with_capacity(outcomes.len());
        for outcome in outcomes {
            outcomes_ok.push(outcome?);
        }

        // Reduce restart outcomes per cluster; strict `>` keeps the earliest
        // restart on ties, matching a sequential loop.
        let mut best_per_cluster: Vec<RestartOutcome> = outcomes_ok
            .chunks_exact(restarts)
            .map(|cluster_outcomes| {
                cluster_outcomes
                    .iter()
                    .reduce(|best, next| {
                        if next.fidelity > best.fidelity {
                            next
                        } else {
                            best
                        }
                    })
                    .expect("at least one restart runs")
                    .clone()
            })
            .collect();

        // Rescue wave: clusters whose best restart missed the fidelity
        // threshold get a deterministic second round of restarts (fresh
        // derived seeds), bounding the damage of an unlucky initial draw
        // without inflating the budget of clusters that already converged.
        let needy: Vec<usize> = if config.offline_rescue {
            best_per_cluster
                .iter()
                .enumerate()
                .filter(|(_, o)| o.fidelity < config.fidelity_threshold)
                .map(|(c, _)| c)
                .collect()
        } else {
            Vec::new()
        };
        if !needy.is_empty() {
            let rescue_per_cluster = (2 * restarts).max(4);
            let rescue_jobs: Vec<(usize, usize)> = needy
                .iter()
                .flat_map(|&c| (restarts..restarts + rescue_per_cluster).map(move |r| (c, r)))
                .collect();
            let rescue_outcomes =
                enq_parallel::par_map_with_threads(threads, &rescue_jobs, |_, &(c, r)| {
                    Self::train_restart(&symbolic, &config, &centroids[c], c, r)
                });
            for (&(c, _), outcome) in rescue_jobs.iter().zip(rescue_outcomes) {
                let outcome = outcome?;
                if outcome.fidelity > best_per_cluster[c].fidelity {
                    best_per_cluster[c] = outcome;
                }
            }
        }

        let clusters: Vec<TrainedCluster> = centroids
            .into_iter()
            .zip(best_per_cluster)
            .map(|(centroid, best)| TrainedCluster {
                centroid,
                parameters: best.parameters,
                fidelity: best.fidelity,
                iterations: best.iterations,
            })
            .collect();
        Ok(Self {
            config,
            symbolic,
            clusters,
            offline_duration: start.elapsed(),
        })
    }

    /// Runs one restart of one cluster's offline optimisation.
    fn train_restart(
        symbolic: &Arc<SymbolicState>,
        config: &EnqodeConfig,
        centroid: &[f64],
        cluster: usize,
        restart: usize,
    ) -> Result<RestartOutcome, EnqodeError> {
        let objective =
            FidelityObjective::with_symbolic(Arc::clone(symbolic), &config.ansatz, centroid)?;
        let mut rng = StdRng::seed_from_u64(restart_seed(config.seed, cluster, restart));
        let spread = if restart == 0 {
            0.3
        } else {
            std::f64::consts::PI
        };
        let start_theta: Vec<f64> = (0..config.ansatz.num_parameters())
            .map(|_| rng.gen_range(-spread..spread))
            .collect();
        let optimizer = Lbfgs::with_max_iterations(config.offline_max_iterations);
        let result = optimizer.minimize(&objective, &start_theta);
        let fidelity = objective.fidelity(&result.x);
        Ok(RestartOutcome {
            parameters: result.x,
            fidelity,
            iterations: result.iterations,
        })
    }

    /// Returns the model configuration.
    pub fn config(&self) -> &EnqodeConfig {
        &self.config
    }

    /// Returns the trained clusters.
    pub fn clusters(&self) -> &[TrainedCluster] {
        &self.clusters
    }

    /// Returns the number of clusters selected by the fidelity-threshold
    /// rule.
    pub fn num_clusters(&self) -> usize {
        self.clusters.len()
    }

    /// Returns the wall-clock duration of the offline training phase.
    pub fn offline_duration(&self) -> Duration {
        self.offline_duration
    }

    /// Returns the shared symbolic state of the ansatz.
    pub fn symbolic(&self) -> &SymbolicState {
        &self.symbolic
    }

    /// Returns a handle to the shared symbolic state (no table copy).
    pub fn symbolic_arc(&self) -> Arc<SymbolicState> {
        Arc::clone(&self.symbolic)
    }

    /// Returns the index of the cluster whose centroid is nearest (in
    /// Euclidean distance) to the normalised sample.
    ///
    /// # Errors
    ///
    /// Returns [`EnqodeError::NotTrained`] if the model has no clusters and
    /// [`EnqodeError::DimensionMismatch`] for bad sample lengths.
    pub fn nearest_cluster(&self, sample: &[f64]) -> Result<usize, EnqodeError> {
        let normalized = self.normalize_checked(sample)?;
        Ok(self.nearest_cluster_of_normalized(&normalized)?.0)
    }

    /// Validates the sample dimension and L2-normalises it.
    pub(crate) fn normalize_checked(&self, sample: &[f64]) -> Result<Vec<f64>, EnqodeError> {
        let dim = self.config.ansatz.dimension();
        if sample.len() != dim {
            return Err(EnqodeError::DimensionMismatch {
                expected: dim,
                found: sample.len(),
            });
        }
        Ok(l2_normalize(sample)?)
    }

    /// Nearest-cluster lookup for an already normalised sample, returning
    /// `(cluster index, squared distance)` so callers comparing across
    /// models (the pipeline's cross-class search) need no second pass.
    pub(crate) fn nearest_cluster_of_normalized(
        &self,
        normalized: &[f64],
    ) -> Result<(usize, f64), EnqodeError> {
        if self.clusters.is_empty() {
            return Err(EnqodeError::NotTrained);
        }
        let mut best = 0usize;
        let mut best_dist = f64::INFINITY;
        for (i, cluster) in self.clusters.iter().enumerate() {
            let dist: f64 = normalized
                .iter()
                .zip(cluster.centroid.iter())
                .map(|(a, b)| (a - b) * (a - b))
                .sum();
            if dist < best_dist {
                best_dist = dist;
                best = i;
            }
        }
        Ok((best, best_dist))
    }

    /// Builds the bound, fixed-shape embedding circuit for given parameters.
    ///
    /// # Errors
    ///
    /// Returns a circuit error if `parameters` is too short.
    pub fn circuit(&self, parameters: &[f64]) -> Result<QuantumCircuit, EnqodeError> {
        self.config.ansatz.build_bound(parameters)
    }

    /// Embeds a new sample (the "online" phase): nearest-cluster lookup,
    /// transfer-learning initialisation, and a short symbolic fine-tune.
    ///
    /// # Errors
    ///
    /// Returns [`EnqodeError::NotTrained`] for an untrained model, dimension
    /// errors for bad samples, and data errors for zero vectors.
    pub fn embed(&self, sample: &[f64]) -> Result<Embedding, EnqodeError> {
        let start = Instant::now();
        let normalized = self.normalize_checked(sample)?;
        let (cluster_index, _) = self.nearest_cluster_of_normalized(&normalized)?;
        self.embed_normalized(&normalized, cluster_index, start)
    }

    /// Embedding core shared by [`EnqodeModel::embed`] and the pipeline: the
    /// sample is already normalised and its initialisation cluster chosen, so
    /// no work is repeated.
    pub(crate) fn embed_normalized(
        &self,
        normalized: &[f64],
        cluster_index: usize,
        start: Instant,
    ) -> Result<Embedding, EnqodeError> {
        let objective = FidelityObjective::with_symbolic(
            Arc::clone(&self.symbolic),
            &self.config.ansatz,
            normalized,
        )?;
        let initial = &self.clusters[cluster_index].parameters;
        let result = Lbfgs::with_max_iterations(self.config.online_max_iterations)
            .minimize(&objective, initial);
        let ideal_fidelity = objective.fidelity(&result.x);
        let circuit = self.config.ansatz.build_bound(&result.x)?;
        Ok(Embedding {
            parameters: result.x,
            circuit,
            cluster_index,
            ideal_fidelity,
            duration: start.elapsed(),
            iterations: result.iterations,
        })
    }

    /// Batched core of the embedding path: fine-tunes `jobs.len()` already
    /// normalised samples in **lockstep**, one fused
    /// [`BatchedFidelityObjective`] sweep per optimisation round instead of
    /// one kernel invocation per sample per round.
    ///
    /// Each lane runs an [`LbfgsDriver`] — a bit-exact port of the solo
    /// L-BFGS loop — against the batched loss, whose per-lane arithmetic is
    /// bit-identical to the solo objective. Every returned [`Embedding`] is
    /// therefore **bit-identical** to what [`EnqodeModel::embed_normalized`]
    /// produces for the same job (apart from wall-clock `duration`), and the
    /// final `ideal_fidelity` is scored through the same solo objective path.
    ///
    /// Errors are per-job: one failing lane does not poison its batchmates.
    pub(crate) fn embed_normalized_batch(
        &self,
        jobs: &[(Vec<f64>, usize, Instant)],
    ) -> Vec<Result<Embedding, EnqodeError>> {
        let mut out: Vec<Option<Result<Embedding, EnqodeError>>> =
            (0..jobs.len()).map(|_| None).collect();
        // Lanes whose objective constructs successfully join the batch; the
        // rest resolve to their construction error immediately.
        let mut live: Vec<usize> = Vec::new();
        let mut objectives: Vec<FidelityObjective> = Vec::new();
        for (idx, (normalized, _, _)) in jobs.iter().enumerate() {
            match FidelityObjective::with_symbolic(
                Arc::clone(&self.symbolic),
                &self.config.ansatz,
                normalized,
            ) {
                Ok(objective) => {
                    live.push(idx);
                    objectives.push(objective);
                }
                Err(e) => out[idx] = Some(Err(e)),
            }
        }
        if !objectives.is_empty() {
            let refs: Vec<&FidelityObjective> = objectives.iter().collect();
            let mut batched = BatchedFidelityObjective::new(&refs)
                .expect("lanes share the model's symbolic state");
            let lanes = live.len();
            let p = batched.num_parameters();
            let params = Lbfgs::with_max_iterations(self.config.online_max_iterations);
            let mut drivers: Vec<LbfgsDriver> = live
                .iter()
                .map(|&idx| {
                    let cluster_index = jobs[idx].1;
                    LbfgsDriver::new(params.clone(), &self.clusters[cluster_index].parameters)
                })
                .collect();
            // Lockstep rounds: every driver always has exactly one pending
            // evaluation, so each round is one batched kernel sweep. Lanes
            // that finish early keep their last point in the block — the
            // extra evaluations are discarded and cannot affect other lanes
            // (all batched arithmetic is element-wise per lane).
            let mut thetas = vec![0.0; lanes * p];
            for (b, driver) in drivers.iter().enumerate() {
                thetas[b * p..(b + 1) * p]
                    .copy_from_slice(driver.pending().expect("fresh driver is never done"));
            }
            let mut values = vec![0.0; lanes];
            let mut gradients = vec![0.0; lanes * p];
            while drivers.iter().any(|d| !d.is_done()) {
                batched
                    .eval(&thetas, &mut values, &mut gradients)
                    .expect("batch shapes fixed at construction");
                for (b, driver) in drivers.iter_mut().enumerate() {
                    if driver.is_done() {
                        continue;
                    }
                    driver.supply(values[b], &gradients[b * p..(b + 1) * p]);
                    if let Some(point) = driver.pending() {
                        thetas[b * p..(b + 1) * p].copy_from_slice(point);
                    }
                }
            }
            for ((&idx, driver), objective) in
                live.iter().zip(drivers.iter()).zip(objectives.iter())
            {
                let result = driver.result().expect("lockstep loop ran to completion");
                let (_, cluster_index, start) = &jobs[idx];
                let (cluster_index, start) = (*cluster_index, *start);
                // Score through the solo objective so the reported fidelity
                // is bit-identical to the per-request path.
                let ideal_fidelity = objective.fidelity(&result.x);
                out[idx] =
                    Some(
                        self.config
                            .ansatz
                            .build_bound(&result.x)
                            .map(|circuit| Embedding {
                                parameters: result.x.clone(),
                                circuit,
                                cluster_index,
                                ideal_fidelity,
                                duration: start.elapsed(),
                                iterations: result.iterations,
                            }),
                    );
            }
        }
        out.into_iter()
            .map(|r| r.expect("every job resolves exactly once"))
            .collect()
    }

    /// Embeds a batch of samples in parallel. Results are returned in input
    /// order and are identical to calling [`EnqodeModel::embed`] in a loop
    /// (apart from each embedding's wall-clock `duration`).
    ///
    /// # Errors
    ///
    /// Returns an error from a failing sample (remaining samples are
    /// cancelled once a failure is observed).
    pub fn embed_batch(&self, samples: &[Vec<f64>]) -> Result<Vec<Embedding>, EnqodeError> {
        enq_parallel::try_par_map(samples, |_, sample| self.embed(sample))
    }

    /// Embeds a sample without fine-tuning, using the nearest cluster's
    /// parameters directly (the cheapest possible online path; used by the
    /// ablation benchmarks).
    ///
    /// The fidelity score runs through the shared symbolic workspace — one
    /// overlap evaluation with no gradient and no per-call table copies.
    ///
    /// # Errors
    ///
    /// Same as [`EnqodeModel::embed`].
    pub fn embed_without_finetuning(&self, sample: &[f64]) -> Result<Embedding, EnqodeError> {
        let start = Instant::now();
        let normalized = self.normalize_checked(sample)?;
        let (cluster_index, _) = self.nearest_cluster_of_normalized(&normalized)?;
        let objective = FidelityObjective::with_symbolic(
            Arc::clone(&self.symbolic),
            &self.config.ansatz,
            &normalized,
        )?;
        let parameters = self.clusters[cluster_index].parameters.clone();
        let ideal_fidelity = objective.fidelity(&parameters);
        let circuit = self.config.ansatz.build_bound(&parameters)?;
        Ok(Embedding {
            parameters,
            circuit,
            cluster_index,
            ideal_fidelity,
            duration: start.elapsed(),
            iterations: 0,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ansatz::EntanglerKind;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn small_config() -> EnqodeConfig {
        EnqodeConfig {
            ansatz: AnsatzConfig {
                num_qubits: 3,
                num_layers: 8,
                entangler: EntanglerKind::Cy,
            },
            fidelity_threshold: 0.9,
            max_clusters: 8,
            offline_max_iterations: 150,
            offline_restarts: 3,
            online_max_iterations: 40,
            offline_rescue: false,
            seed: 3,
        }
    }

    /// Two groups of similar 8-dimensional vectors.
    fn grouped_samples(per_group: usize, seed: u64) -> Vec<Vec<f64>> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut out = Vec::new();
        let base_a = [0.9, 0.2, 0.1, 0.05, 0.02, 0.1, 0.05, 0.01];
        let base_b = [0.05, 0.1, 0.02, 0.2, 0.9, 0.05, 0.1, 0.02];
        for _ in 0..per_group {
            out.push(
                base_a
                    .iter()
                    .map(|v| v + rng.gen_range(-0.03..0.03))
                    .collect(),
            );
            out.push(
                base_b
                    .iter()
                    .map(|v| v + rng.gen_range(-0.03..0.03))
                    .collect(),
            );
        }
        out
    }

    #[test]
    fn fit_trains_clusters_with_high_fidelity() {
        let samples = grouped_samples(6, 1);
        let model = EnqodeModel::fit(&samples, small_config()).unwrap();
        assert!(model.num_clusters() >= 1);
        for cluster in model.clusters() {
            assert!(
                cluster.fidelity > 0.9,
                "cluster fidelity {} too low",
                cluster.fidelity
            );
            assert_eq!(cluster.parameters.len(), 24);
        }
        assert!(model.offline_duration() > Duration::ZERO);
    }

    #[test]
    fn embed_reaches_high_fidelity_and_assigns_sensible_cluster() {
        let samples = grouped_samples(6, 2);
        let model = EnqodeModel::fit(&samples, small_config()).unwrap();
        let embedding = model.embed(&samples[0]).unwrap();
        assert!(
            embedding.ideal_fidelity > 0.9,
            "fidelity {}",
            embedding.ideal_fidelity
        );
        assert!(embedding.cluster_index < model.num_clusters());
        assert_eq!(embedding.parameters.len(), 24);
        assert!(!embedding.circuit.is_parameterized());
    }

    #[test]
    fn embedding_circuits_have_identical_shape_across_samples() {
        let samples = grouped_samples(4, 3);
        let model = EnqodeModel::fit(&samples, small_config()).unwrap();
        let a = model.embed(&samples[0]).unwrap();
        let b = model.embed(&samples[1]).unwrap();
        assert_eq!(a.circuit.len(), b.circuit.len());
        assert_eq!(a.circuit.depth(), b.circuit.depth());
    }

    #[test]
    fn transfer_learning_initialisation_is_better_than_cold_start() {
        // Fine-tuning from the cluster parameters should converge in fewer
        // iterations than the offline optimisation needed from scratch.
        let samples = grouped_samples(6, 4);
        let model = EnqodeModel::fit(&samples, small_config()).unwrap();
        let embedding = model.embed(&samples[2]).unwrap();
        let offline_iters = model.clusters()[embedding.cluster_index].iterations;
        assert!(
            embedding.iterations <= offline_iters,
            "online {} vs offline {}",
            embedding.iterations,
            offline_iters
        );
    }

    #[test]
    fn embed_without_finetuning_is_reasonable_for_cluster_members() {
        let samples = grouped_samples(6, 5);
        let model = EnqodeModel::fit(&samples, small_config()).unwrap();
        let quick = model.embed_without_finetuning(&samples[0]).unwrap();
        let tuned = model.embed(&samples[0]).unwrap();
        assert!(quick.ideal_fidelity > 0.8);
        assert!(tuned.ideal_fidelity >= quick.ideal_fidelity - 1e-9);
        assert_eq!(quick.iterations, 0);
    }

    #[test]
    fn embed_batch_matches_sequential_embeds() {
        let samples = grouped_samples(4, 7);
        let model = EnqodeModel::fit(&samples, small_config()).unwrap();
        let batch = model.embed_batch(&samples).unwrap();
        assert_eq!(batch.len(), samples.len());
        for (sample, from_batch) in samples.iter().zip(batch.iter()) {
            let single = model.embed(sample).unwrap();
            assert_eq!(single.parameters, from_batch.parameters);
            assert_eq!(single.cluster_index, from_batch.cluster_index);
            assert_eq!(single.ideal_fidelity, from_batch.ideal_fidelity);
            assert_eq!(single.iterations, from_batch.iterations);
        }
    }

    #[test]
    fn fit_rejects_wrong_dimensions() {
        let samples = vec![vec![1.0, 0.0, 0.0, 0.0]];
        assert!(matches!(
            EnqodeModel::fit(&samples, small_config()),
            Err(EnqodeError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn embed_rejects_bad_samples() {
        let samples = grouped_samples(3, 6);
        let model = EnqodeModel::fit(&samples, small_config()).unwrap();
        assert!(model.embed(&[1.0, 2.0]).is_err());
        assert!(model.embed(&[0.0; 8]).is_err());
        assert!(model
            .embed_batch(&[samples[0].clone(), vec![0.0; 8]])
            .is_err());
    }

    #[test]
    fn fit_with_shared_symbolic_rejects_mismatched_shape() {
        let samples = grouped_samples(3, 9);
        let config = small_config();
        // Same qubit and parameter counts, different entangler: the phase
        // tables differ, so this must be rejected, not silently accepted.
        let mut other = config.clone();
        other.ansatz.entangler = EntanglerKind::Cx;
        let symbolic = Arc::new(SymbolicState::from_ansatz(&other.ansatz).unwrap());
        assert!(matches!(
            EnqodeModel::fit_with_shared_symbolic(&samples, config, NonZeroUsize::MIN, symbolic),
            Err(EnqodeError::InvalidConfig(_))
        ));
    }

    #[test]
    fn default_config_matches_paper() {
        let cfg = EnqodeConfig::default();
        assert_eq!(cfg.ansatz.num_qubits, 8);
        assert_eq!(cfg.ansatz.num_layers, 8);
        assert!((cfg.fidelity_threshold - 0.95).abs() < 1e-12);
    }
}

//! The fidelity loss optimised during EnQode training.
//!
//! For a real target amplitude vector `x` the full ansatz output is
//! `W·|ψ(θ)⟩` (with `W` the fixed closing rotation), so the training problem
//! is to maximise `|⟨x|W|ψ(θ)⟩|² = |⟨y|ψ(θ)⟩|²` with the back-rotated target
//! `y = W†·x`. The loss is `L(θ) = 1 − |⟨y|ψ(θ)⟩|²`, whose exact gradient
//! follows from the symbolic representation.

use crate::ansatz::AnsatzConfig;
use crate::error::EnqodeError;
use crate::symbolic::SymbolicState;
use enq_data::l2_normalize;
use enq_linalg::{C64, CVector};
use enq_optim::Objective;

/// The EnQode training objective `L(θ) = 1 − |⟨y|ψ(θ)⟩|²`.
#[derive(Debug, Clone)]
pub struct FidelityObjective {
    symbolic: SymbolicState,
    /// Conjugated back-rotated target `conj(y_r)`, pre-computed once.
    target_conj: Vec<C64>,
}

impl FidelityObjective {
    /// Builds the objective for a real-valued target amplitude vector (which
    /// is normalised internally).
    ///
    /// # Errors
    ///
    /// Returns [`EnqodeError::DimensionMismatch`] if the target length is not
    /// `2^num_qubits` and [`EnqodeError::Data`] if it has zero norm.
    pub fn new(config: &AnsatzConfig, target: &[f64]) -> Result<Self, EnqodeError> {
        let symbolic = SymbolicState::from_ansatz(config)?;
        Self::with_symbolic(symbolic, config, target)
    }

    /// Builds the objective reusing a pre-computed symbolic state (the phase
    /// table only depends on the ansatz shape, so it is shared across all
    /// clusters and samples).
    ///
    /// # Errors
    ///
    /// Same as [`FidelityObjective::new`].
    pub fn with_symbolic(
        symbolic: SymbolicState,
        config: &AnsatzConfig,
        target: &[f64],
    ) -> Result<Self, EnqodeError> {
        if target.len() != symbolic.dim() {
            return Err(EnqodeError::DimensionMismatch {
                expected: symbolic.dim(),
                found: target.len(),
            });
        }
        let normalized = l2_normalize(target)?;
        let x = CVector::from_real(&normalized);
        // y = W†·x; we store conj(y).
        let y = config.closing_rotation().adjoint().matvec(&x);
        let target_conj: Vec<C64> = y.iter().map(|z| z.conj()).collect();
        Ok(Self {
            symbolic,
            target_conj,
        })
    }

    /// Returns the embedding fidelity `|⟨y|ψ(θ)⟩|²` at the given parameters.
    pub fn fidelity(&self, theta: &[f64]) -> f64 {
        1.0 - self.value(theta)
    }

    /// Returns the shared symbolic state.
    pub fn symbolic(&self) -> &SymbolicState {
        &self.symbolic
    }
}

impl Objective for FidelityObjective {
    fn dimension(&self) -> usize {
        self.symbolic.num_parameters()
    }

    fn value(&self, x: &[f64]) -> f64 {
        let (overlap, _) = self
            .symbolic
            .overlap_and_gradient(&self.target_conj, x)
            .expect("dimensions fixed at construction");
        1.0 - overlap.norm_sqr()
    }

    fn gradient(&self, x: &[f64]) -> Vec<f64> {
        self.value_and_gradient(x).1
    }

    fn value_and_gradient(&self, x: &[f64]) -> (f64, Vec<f64>) {
        let (overlap, d_overlap) = self
            .symbolic
            .overlap_and_gradient(&self.target_conj, x)
            .expect("dimensions fixed at construction");
        let value = 1.0 - overlap.norm_sqr();
        let gradient = d_overlap
            .iter()
            .map(|ds| -2.0 * (overlap.conj() * *ds).re)
            .collect();
        (value, gradient)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ansatz::EntanglerKind;
    use enq_optim::{Lbfgs, Optimizer};
    use enq_qsim::Statevector;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn small_config() -> AnsatzConfig {
        AnsatzConfig {
            num_qubits: 3,
            num_layers: 4,
            entangler: EntanglerKind::Cy,
        }
    }

    #[test]
    fn loss_is_bounded_in_unit_interval() {
        let config = small_config();
        let target: Vec<f64> = (1..=8).map(f64::from).collect();
        let obj = FidelityObjective::new(&config, &target).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..10 {
            let theta: Vec<f64> = (0..obj.dimension()).map(|_| rng.gen_range(-3.0..3.0)).collect();
            let v = obj.value(&theta);
            assert!((0.0..=1.0 + 1e-9).contains(&v), "loss {v} out of range");
            assert!((obj.fidelity(&theta) - (1.0 - v)).abs() < 1e-12);
        }
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let config = small_config();
        let target: Vec<f64> = vec![0.7, -0.2, 0.1, 0.4, -0.3, 0.2, 0.05, -0.1];
        let obj = FidelityObjective::new(&config, &target).unwrap();
        let mut rng = StdRng::seed_from_u64(6);
        let theta: Vec<f64> = (0..obj.dimension()).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let (_, grad) = obj.value_and_gradient(&theta);
        let eps = 1e-6;
        for j in 0..theta.len() {
            let mut plus = theta.clone();
            plus[j] += eps;
            let mut minus = theta.clone();
            minus[j] -= eps;
            let numerical = (obj.value(&plus) - obj.value(&minus)) / (2.0 * eps);
            assert!(
                (grad[j] - numerical).abs() < 1e-5,
                "component {j}: analytic {} vs numerical {numerical}",
                grad[j]
            );
        }
    }

    #[test]
    fn optimised_loss_fidelity_matches_circuit_simulation() {
        // Whatever fidelity the symbolic loss reports must equal the fidelity
        // of the actual bound ansatz circuit against the target state.
        let config = small_config();
        let target: Vec<f64> = vec![0.9, 0.1, 0.3, -0.2, 0.4, 0.0, -0.5, 0.2];
        let obj = FidelityObjective::new(&config, &target).unwrap();
        let result = Lbfgs::with_max_iterations(200).minimize(&obj, &vec![0.1; obj.dimension()]);
        let symbolic_fidelity = obj.fidelity(&result.x);

        let circuit = config.build_bound(&result.x).unwrap();
        let output = Statevector::from_circuit(&circuit).unwrap();
        let target_state = Statevector::from_real_normalized(&target).unwrap();
        let circuit_fidelity = output.fidelity(&target_state).unwrap();
        assert!(
            (symbolic_fidelity - circuit_fidelity).abs() < 1e-8,
            "symbolic {symbolic_fidelity} vs circuit {circuit_fidelity}"
        );
    }

    #[test]
    fn optimisation_reaches_high_fidelity_on_small_problems() {
        // With enough layers (parameters ≳ 2·2^n) and a few restarts the
        // optimiser should get close to the phase-only fidelity bound.
        let config = AnsatzConfig {
            num_qubits: 3,
            num_layers: 8,
            entangler: EntanglerKind::Cy,
        };
        let mut rng = StdRng::seed_from_u64(9);
        let target: Vec<f64> = (0..8).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let obj = FidelityObjective::new(&config, &target).unwrap();
        let mut best = 0.0f64;
        for _ in 0..4 {
            let start: Vec<f64> = (0..obj.dimension())
                .map(|_| rng.gen_range(-std::f64::consts::PI..std::f64::consts::PI))
                .collect();
            let result = Lbfgs::with_max_iterations(300).minimize(&obj, &start);
            best = best.max(obj.fidelity(&result.x));
        }
        assert!(best > 0.8, "fidelity only reached {best}");
    }

    #[test]
    fn invalid_targets_rejected() {
        let config = small_config();
        assert!(FidelityObjective::new(&config, &[1.0, 0.0]).is_err());
        assert!(FidelityObjective::new(&config, &[0.0; 8]).is_err());
    }
}

//! The fidelity loss optimised during EnQode training.
//!
//! For a real target amplitude vector `x` the full ansatz output is
//! `W·|ψ(θ)⟩` (with `W` the fixed closing rotation), so the training problem
//! is to maximise `|⟨x|W|ψ(θ)⟩|² = |⟨y|ψ(θ)⟩|²` with the back-rotated target
//! `y = W†·x`. The loss is `L(θ) = 1 − |⟨y|ψ(θ)⟩|²`, whose exact gradient
//! follows from the symbolic representation.
//!
//! The objective shares its [`SymbolicState`] through an [`Arc`] (the phase
//! table depends only on the ansatz shape, so training never copies it) and
//! owns a [`SymbolicWorkspace`] that is reused across evaluations: the
//! L-BFGS inner loop runs without heap allocations. The back-rotation
//! `y = W†·x` exploits `W = W₁^{⊗n}` via
//! [`enq_linalg::CMatrix::apply_kron_power`] — `O(n·2^n)` instead of a dense
//! `O(4^n)` matvec.

use crate::ansatz::AnsatzConfig;
use crate::error::EnqodeError;
use crate::symbolic::{SymbolicState, SymbolicWorkspace};
use enq_data::l2_normalize;
use enq_linalg::C64;
use enq_optim::Objective;
use std::cell::RefCell;
use std::sync::Arc;

/// Reusable per-objective evaluation scratch.
#[derive(Debug, Clone, Default)]
struct EvalScratch {
    workspace: SymbolicWorkspace,
    /// Complex overlap gradient `∂S/∂θ_j` before projection onto the loss.
    d_overlap: Vec<C64>,
}

/// The EnQode training objective `L(θ) = 1 − |⟨y|ψ(θ)⟩|²`.
#[derive(Debug, Clone)]
pub struct FidelityObjective {
    symbolic: Arc<SymbolicState>,
    /// Conjugated back-rotated target `conj(y_r)`, pre-computed once.
    target_conj: Vec<C64>,
    scratch: RefCell<EvalScratch>,
}

impl FidelityObjective {
    /// Builds the objective for a real-valued target amplitude vector (which
    /// is normalised internally).
    ///
    /// # Errors
    ///
    /// Returns [`EnqodeError::DimensionMismatch`] if the target length is not
    /// `2^num_qubits` and [`EnqodeError::Data`] if it has zero norm.
    pub fn new(config: &AnsatzConfig, target: &[f64]) -> Result<Self, EnqodeError> {
        let symbolic = Arc::new(SymbolicState::from_ansatz(config)?);
        Self::with_symbolic(symbolic, config, target)
    }

    /// Builds the objective reusing a shared pre-computed symbolic state (the
    /// phase table only depends on the ansatz shape, so one `Arc` serves all
    /// clusters, samples, and worker threads without copying).
    ///
    /// # Errors
    ///
    /// Same as [`FidelityObjective::new`].
    pub fn with_symbolic(
        symbolic: Arc<SymbolicState>,
        config: &AnsatzConfig,
        target: &[f64],
    ) -> Result<Self, EnqodeError> {
        if target.len() != symbolic.dim() {
            return Err(EnqodeError::DimensionMismatch {
                expected: symbolic.dim(),
                found: target.len(),
            });
        }
        let normalized = l2_normalize(target)?;
        // y = W†·x through the tensor-power structure of W; we store conj(y).
        let w1_adjoint = config.closing_rotation_1q().adjoint();
        let mut y: Vec<C64> = normalized.iter().map(|&v| C64::real(v)).collect();
        w1_adjoint.apply_kron_power(&mut y)?;
        let target_conj: Vec<C64> = y.iter().map(|z| z.conj()).collect();
        let num_parameters = symbolic.num_parameters();
        let scratch = RefCell::new(EvalScratch {
            workspace: SymbolicWorkspace::for_state(&symbolic),
            d_overlap: vec![C64::ZERO; num_parameters],
        });
        Ok(Self {
            symbolic,
            target_conj,
            scratch,
        })
    }

    /// Returns the embedding fidelity `|⟨y|ψ(θ)⟩|²` at the given parameters.
    pub fn fidelity(&self, theta: &[f64]) -> f64 {
        1.0 - self.value(theta)
    }

    /// Returns the shared symbolic state.
    pub fn symbolic(&self) -> &SymbolicState {
        &self.symbolic
    }

    /// Returns a clone of the shared symbolic-state handle.
    pub fn symbolic_arc(&self) -> Arc<SymbolicState> {
        Arc::clone(&self.symbolic)
    }
}

impl Objective for FidelityObjective {
    fn dimension(&self) -> usize {
        self.symbolic.num_parameters()
    }

    fn value(&self, x: &[f64]) -> f64 {
        let mut scratch = self.scratch.borrow_mut();
        let overlap = self
            .symbolic
            .overlap_into(&self.target_conj, x, &mut scratch.workspace)
            .expect("dimensions fixed at construction");
        1.0 - overlap.norm_sqr()
    }

    fn gradient(&self, x: &[f64]) -> Vec<f64> {
        let mut gradient = vec![0.0; self.dimension()];
        self.value_and_gradient_into(x, &mut gradient);
        gradient
    }

    fn value_and_gradient(&self, x: &[f64]) -> (f64, Vec<f64>) {
        let mut gradient = vec![0.0; self.dimension()];
        let value = self.value_and_gradient_into(x, &mut gradient);
        (value, gradient)
    }

    fn value_and_gradient_into(&self, x: &[f64], gradient: &mut [f64]) -> f64 {
        let scratch = &mut *self.scratch.borrow_mut();
        let overlap = self
            .symbolic
            .overlap_and_gradient_into(
                &self.target_conj,
                x,
                &mut scratch.workspace,
                &mut scratch.d_overlap,
            )
            .expect("dimensions fixed at construction");
        let value = 1.0 - overlap.norm_sqr();
        let overlap_conj = overlap.conj();
        for (g, ds) in gradient.iter_mut().zip(scratch.d_overlap.iter()) {
            *g = -2.0 * (overlap_conj * *ds).re;
        }
        value
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ansatz::EntanglerKind;
    use enq_optim::{Lbfgs, Optimizer};
    use enq_qsim::Statevector;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn small_config() -> AnsatzConfig {
        AnsatzConfig {
            num_qubits: 3,
            num_layers: 4,
            entangler: EntanglerKind::Cy,
        }
    }

    #[test]
    fn loss_is_bounded_in_unit_interval() {
        let config = small_config();
        let target: Vec<f64> = (1..=8).map(f64::from).collect();
        let obj = FidelityObjective::new(&config, &target).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..10 {
            let theta: Vec<f64> = (0..obj.dimension())
                .map(|_| rng.gen_range(-3.0..3.0))
                .collect();
            let v = obj.value(&theta);
            assert!((0.0..=1.0 + 1e-9).contains(&v), "loss {v} out of range");
            assert!((obj.fidelity(&theta) - (1.0 - v)).abs() < 1e-12);
        }
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let config = small_config();
        let target: Vec<f64> = vec![0.7, -0.2, 0.1, 0.4, -0.3, 0.2, 0.05, -0.1];
        let obj = FidelityObjective::new(&config, &target).unwrap();
        let mut rng = StdRng::seed_from_u64(6);
        let theta: Vec<f64> = (0..obj.dimension())
            .map(|_| rng.gen_range(-1.0..1.0))
            .collect();
        let (_, grad) = obj.value_and_gradient(&theta);
        let eps = 1e-6;
        for j in 0..theta.len() {
            let mut plus = theta.clone();
            plus[j] += eps;
            let mut minus = theta.clone();
            minus[j] -= eps;
            let numerical = (obj.value(&plus) - obj.value(&minus)) / (2.0 * eps);
            assert!(
                (grad[j] - numerical).abs() < 1e-5,
                "component {j}: analytic {} vs numerical {numerical}",
                grad[j]
            );
        }
    }

    #[test]
    fn buffer_writing_path_matches_allocating_path() {
        let config = small_config();
        let target: Vec<f64> = vec![0.3, 0.9, -0.2, 0.15, 0.4, -0.6, 0.05, 0.2];
        let obj = FidelityObjective::new(&config, &target).unwrap();
        let mut rng = StdRng::seed_from_u64(8);
        let mut buffer = vec![0.0; obj.dimension()];
        for _ in 0..5 {
            let theta: Vec<f64> = (0..obj.dimension())
                .map(|_| rng.gen_range(-2.0..2.0))
                .collect();
            let (v, g) = obj.value_and_gradient(&theta);
            let v_into = obj.value_and_gradient_into(&theta, &mut buffer);
            assert_eq!(v, v_into);
            assert_eq!(g, buffer);
        }
    }

    #[test]
    fn back_rotation_matches_dense_adjoint_matvec() {
        // The O(n·2^n) tensor-power application must agree with the dense
        // W†·x product the seed computed.
        let config = small_config();
        let target: Vec<f64> = vec![0.7, -0.2, 0.1, 0.4, -0.3, 0.2, 0.05, -0.1];
        let normalized = l2_normalize(&target).unwrap();
        let dense_y = config
            .closing_rotation()
            .adjoint()
            .matvec(&enq_linalg::CVector::from_real(&normalized));
        let mut fast_y: Vec<C64> = normalized.iter().map(|&v| C64::real(v)).collect();
        config
            .closing_rotation_1q()
            .adjoint()
            .apply_kron_power(&mut fast_y)
            .unwrap();
        for (a, b) in fast_y.iter().zip(dense_y.iter()) {
            assert!(a.approx_eq(*b, 1e-12), "{a} vs {b}");
        }
    }

    #[test]
    fn optimised_loss_fidelity_matches_circuit_simulation() {
        // Whatever fidelity the symbolic loss reports must equal the fidelity
        // of the actual bound ansatz circuit against the target state.
        let config = small_config();
        let target: Vec<f64> = vec![0.9, 0.1, 0.3, -0.2, 0.4, 0.0, -0.5, 0.2];
        let obj = FidelityObjective::new(&config, &target).unwrap();
        let result = Lbfgs::with_max_iterations(200).minimize(&obj, &vec![0.1; obj.dimension()]);
        let symbolic_fidelity = obj.fidelity(&result.x);

        let circuit = config.build_bound(&result.x).unwrap();
        let output = Statevector::from_circuit(&circuit).unwrap();
        let target_state = Statevector::from_real_normalized(&target).unwrap();
        let circuit_fidelity = output.fidelity(&target_state).unwrap();
        assert!(
            (symbolic_fidelity - circuit_fidelity).abs() < 1e-8,
            "symbolic {symbolic_fidelity} vs circuit {circuit_fidelity}"
        );
    }

    #[test]
    fn optimisation_reaches_high_fidelity_on_small_problems() {
        // With enough layers (parameters ≳ 2·2^n) and a few restarts the
        // optimiser should get close to the phase-only fidelity bound.
        let config = AnsatzConfig {
            num_qubits: 3,
            num_layers: 8,
            entangler: EntanglerKind::Cy,
        };
        let mut rng = StdRng::seed_from_u64(9);
        let target: Vec<f64> = (0..8).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let obj = FidelityObjective::new(&config, &target).unwrap();
        let mut best = 0.0f64;
        for _ in 0..4 {
            let start: Vec<f64> = (0..obj.dimension())
                .map(|_| rng.gen_range(-std::f64::consts::PI..std::f64::consts::PI))
                .collect();
            let result = Lbfgs::with_max_iterations(300).minimize(&obj, &start);
            best = best.max(obj.fidelity(&result.x));
        }
        assert!(best > 0.8, "fidelity only reached {best}");
    }

    #[test]
    fn invalid_targets_rejected() {
        let config = small_config();
        assert!(FidelityObjective::new(&config, &[1.0, 0.0]).is_err());
        assert!(FidelityObjective::new(&config, &[0.0; 8]).is_err());
    }
}

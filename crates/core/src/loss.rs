//! The fidelity loss optimised during EnQode training.
//!
//! For a real target amplitude vector `x` the full ansatz output is
//! `W·|ψ(θ)⟩` (with `W` the fixed closing rotation), so the training problem
//! is to maximise `|⟨x|W|ψ(θ)⟩|² = |⟨y|ψ(θ)⟩|²` with the back-rotated target
//! `y = W†·x`. The loss is `L(θ) = 1 − |⟨y|ψ(θ)⟩|²`, whose exact gradient
//! follows from the symbolic representation.
//!
//! The objective shares its [`SymbolicState`] through an [`Arc`] (the phase
//! table depends only on the ansatz shape, so training never copies it) and
//! owns a [`SymbolicWorkspace`] that is reused across evaluations: the
//! L-BFGS inner loop runs without heap allocations. The back-rotation
//! `y = W†·x` exploits `W = W₁^{⊗n}` via
//! [`enq_linalg::CMatrix::apply_kron_power`] — `O(n·2^n)` instead of a dense
//! `O(4^n)` matvec.

use crate::ansatz::AnsatzConfig;
use crate::error::EnqodeError;
use crate::symbolic::{SymbolicBatch, SymbolicState, SymbolicWorkspace};
use enq_data::l2_normalize;
use enq_linalg::C64;
use enq_optim::Objective;
use std::cell::RefCell;
use std::sync::Arc;

/// Reusable per-objective evaluation scratch.
#[derive(Debug, Clone, Default)]
struct EvalScratch {
    workspace: SymbolicWorkspace,
    /// Complex overlap gradient `∂S/∂θ_j` before projection onto the loss.
    d_overlap: Vec<C64>,
}

/// The EnQode training objective `L(θ) = 1 − |⟨y|ψ(θ)⟩|²`.
#[derive(Debug, Clone)]
pub struct FidelityObjective {
    symbolic: Arc<SymbolicState>,
    /// Conjugated back-rotated target `conj(y_r)`, pre-computed once.
    target_conj: Vec<C64>,
    scratch: RefCell<EvalScratch>,
}

impl FidelityObjective {
    /// Builds the objective for a real-valued target amplitude vector (which
    /// is normalised internally).
    ///
    /// # Errors
    ///
    /// Returns [`EnqodeError::DimensionMismatch`] if the target length is not
    /// `2^num_qubits` and [`EnqodeError::Data`] if it has zero norm.
    pub fn new(config: &AnsatzConfig, target: &[f64]) -> Result<Self, EnqodeError> {
        let symbolic = Arc::new(SymbolicState::from_ansatz(config)?);
        Self::with_symbolic(symbolic, config, target)
    }

    /// Builds the objective reusing a shared pre-computed symbolic state (the
    /// phase table only depends on the ansatz shape, so one `Arc` serves all
    /// clusters, samples, and worker threads without copying).
    ///
    /// # Errors
    ///
    /// Same as [`FidelityObjective::new`].
    pub fn with_symbolic(
        symbolic: Arc<SymbolicState>,
        config: &AnsatzConfig,
        target: &[f64],
    ) -> Result<Self, EnqodeError> {
        if target.len() != symbolic.dim() {
            return Err(EnqodeError::DimensionMismatch {
                expected: symbolic.dim(),
                found: target.len(),
            });
        }
        let normalized = l2_normalize(target)?;
        // y = W†·x through the tensor-power structure of W; we store conj(y).
        let w1_adjoint = config.closing_rotation_1q().adjoint();
        let mut y: Vec<C64> = normalized.iter().map(|&v| C64::real(v)).collect();
        w1_adjoint.apply_kron_power(&mut y)?;
        let target_conj: Vec<C64> = y.iter().map(|z| z.conj()).collect();
        let num_parameters = symbolic.num_parameters();
        let scratch = RefCell::new(EvalScratch {
            workspace: SymbolicWorkspace::for_state(&symbolic),
            d_overlap: vec![C64::ZERO; num_parameters],
        });
        Ok(Self {
            symbolic,
            target_conj,
            scratch,
        })
    }

    /// Returns the embedding fidelity `|⟨y|ψ(θ)⟩|²` at the given parameters.
    pub fn fidelity(&self, theta: &[f64]) -> f64 {
        1.0 - self.value(theta)
    }

    /// Returns the shared symbolic state.
    pub fn symbolic(&self) -> &SymbolicState {
        &self.symbolic
    }

    /// Returns a clone of the shared symbolic-state handle.
    pub fn symbolic_arc(&self) -> Arc<SymbolicState> {
        Arc::clone(&self.symbolic)
    }

    /// The conjugated back-rotated target this objective scores against
    /// (shared with the batched evaluator).
    pub(crate) fn target_conj(&self) -> &[C64] {
        &self.target_conj
    }
}

/// `B` fidelity losses evaluated per kernel sweep through a
/// [`SymbolicBatch`].
///
/// Built from per-sample [`FidelityObjective`]s that share one symbolic
/// state; [`BatchedFidelityObjective::eval`] reproduces each lane's solo
/// [`Objective::value_and_gradient_into`] arithmetic exactly, so values and
/// gradients are **bit-identical** to evaluating the objectives one by one —
/// only faster, because the Walsh-table traversals are amortised across the
/// batch.
#[derive(Debug, Clone)]
pub struct BatchedFidelityObjective {
    batch: SymbolicBatch,
    overlaps: Vec<C64>,
    d_overlap: Vec<C64>,
}

impl BatchedFidelityObjective {
    /// Builds the batched loss over `objectives.len()` lanes. All objectives
    /// must share the symbolic state of the first (the model constructs them
    /// from one `Arc`).
    ///
    /// # Errors
    ///
    /// Returns [`EnqodeError::InvalidConfig`] for an empty batch and
    /// [`EnqodeError::DimensionMismatch`] for shape disagreements.
    pub fn new(objectives: &[&FidelityObjective]) -> Result<Self, EnqodeError> {
        let first = objectives.first().ok_or_else(|| {
            EnqodeError::InvalidConfig("a batched objective needs at least one lane".to_string())
        })?;
        let targets: Vec<&[C64]> = objectives.iter().map(|o| o.target_conj()).collect();
        let batch = SymbolicBatch::new(first.symbolic(), &targets)?;
        let lanes = batch.lanes();
        let p = batch.num_parameters();
        Ok(Self {
            batch,
            overlaps: vec![C64::ZERO; lanes],
            d_overlap: vec![C64::ZERO; lanes * p],
        })
    }

    /// Returns the number of lanes.
    pub fn lanes(&self) -> usize {
        self.batch.lanes()
    }

    /// Returns the number of parameters per lane.
    pub fn num_parameters(&self) -> usize {
        self.batch.num_parameters()
    }

    /// Evaluates every lane's loss value and gradient in one sweep.
    ///
    /// `thetas` and `gradients` are flat lane-major blocks (`b·P + j`);
    /// `values[b]` receives lane `b`'s loss. Performs zero heap allocations.
    ///
    /// # Errors
    ///
    /// Returns [`EnqodeError::DimensionMismatch`] for wrong slice lengths.
    pub fn eval(
        &mut self,
        thetas: &[f64],
        values: &mut [f64],
        gradients: &mut [f64],
    ) -> Result<(), EnqodeError> {
        let lanes = self.batch.lanes();
        let p = self.batch.num_parameters();
        if values.len() != lanes {
            return Err(EnqodeError::DimensionMismatch {
                expected: lanes,
                found: values.len(),
            });
        }
        if gradients.len() != lanes * p {
            return Err(EnqodeError::DimensionMismatch {
                expected: lanes * p,
                found: gradients.len(),
            });
        }
        self.batch
            .overlap_and_gradient(thetas, &mut self.overlaps, &mut self.d_overlap)?;
        for b in 0..lanes {
            let overlap = self.overlaps[b];
            values[b] = 1.0 - overlap.norm_sqr();
            let overlap_conj = overlap.conj();
            let row = &mut gradients[b * p..(b + 1) * p];
            for (g, ds) in row.iter_mut().zip(self.d_overlap[b * p..].iter()) {
                *g = -2.0 * (overlap_conj * *ds).re;
            }
        }
        Ok(())
    }
}

impl Objective for FidelityObjective {
    fn dimension(&self) -> usize {
        self.symbolic.num_parameters()
    }

    fn value(&self, x: &[f64]) -> f64 {
        let mut scratch = self.scratch.borrow_mut();
        let overlap = self
            .symbolic
            .overlap_into(&self.target_conj, x, &mut scratch.workspace)
            .expect("dimensions fixed at construction");
        1.0 - overlap.norm_sqr()
    }

    fn gradient(&self, x: &[f64]) -> Vec<f64> {
        let mut gradient = vec![0.0; self.dimension()];
        self.value_and_gradient_into(x, &mut gradient);
        gradient
    }

    fn value_and_gradient(&self, x: &[f64]) -> (f64, Vec<f64>) {
        let mut gradient = vec![0.0; self.dimension()];
        let value = self.value_and_gradient_into(x, &mut gradient);
        (value, gradient)
    }

    fn value_and_gradient_into(&self, x: &[f64], gradient: &mut [f64]) -> f64 {
        let scratch = &mut *self.scratch.borrow_mut();
        let overlap = self
            .symbolic
            .overlap_and_gradient_into(
                &self.target_conj,
                x,
                &mut scratch.workspace,
                &mut scratch.d_overlap,
            )
            .expect("dimensions fixed at construction");
        let value = 1.0 - overlap.norm_sqr();
        let overlap_conj = overlap.conj();
        for (g, ds) in gradient.iter_mut().zip(scratch.d_overlap.iter()) {
            *g = -2.0 * (overlap_conj * *ds).re;
        }
        value
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ansatz::EntanglerKind;
    use enq_optim::{Lbfgs, Optimizer};
    use enq_qsim::Statevector;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn small_config() -> AnsatzConfig {
        AnsatzConfig {
            num_qubits: 3,
            num_layers: 4,
            entangler: EntanglerKind::Cy,
        }
    }

    #[test]
    fn loss_is_bounded_in_unit_interval() {
        let config = small_config();
        let target: Vec<f64> = (1..=8).map(f64::from).collect();
        let obj = FidelityObjective::new(&config, &target).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..10 {
            let theta: Vec<f64> = (0..obj.dimension())
                .map(|_| rng.gen_range(-3.0..3.0))
                .collect();
            let v = obj.value(&theta);
            assert!((0.0..=1.0 + 1e-9).contains(&v), "loss {v} out of range");
            assert!((obj.fidelity(&theta) - (1.0 - v)).abs() < 1e-12);
        }
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let config = small_config();
        let target: Vec<f64> = vec![0.7, -0.2, 0.1, 0.4, -0.3, 0.2, 0.05, -0.1];
        let obj = FidelityObjective::new(&config, &target).unwrap();
        let mut rng = StdRng::seed_from_u64(6);
        let theta: Vec<f64> = (0..obj.dimension())
            .map(|_| rng.gen_range(-1.0..1.0))
            .collect();
        let (_, grad) = obj.value_and_gradient(&theta);
        let eps = 1e-6;
        for j in 0..theta.len() {
            let mut plus = theta.clone();
            plus[j] += eps;
            let mut minus = theta.clone();
            minus[j] -= eps;
            let numerical = (obj.value(&plus) - obj.value(&minus)) / (2.0 * eps);
            assert!(
                (grad[j] - numerical).abs() < 1e-5,
                "component {j}: analytic {} vs numerical {numerical}",
                grad[j]
            );
        }
    }

    #[test]
    fn buffer_writing_path_matches_allocating_path() {
        let config = small_config();
        let target: Vec<f64> = vec![0.3, 0.9, -0.2, 0.15, 0.4, -0.6, 0.05, 0.2];
        let obj = FidelityObjective::new(&config, &target).unwrap();
        let mut rng = StdRng::seed_from_u64(8);
        let mut buffer = vec![0.0; obj.dimension()];
        for _ in 0..5 {
            let theta: Vec<f64> = (0..obj.dimension())
                .map(|_| rng.gen_range(-2.0..2.0))
                .collect();
            let (v, g) = obj.value_and_gradient(&theta);
            let v_into = obj.value_and_gradient_into(&theta, &mut buffer);
            assert_eq!(v, v_into);
            assert_eq!(g, buffer);
        }
    }

    #[test]
    fn back_rotation_matches_dense_adjoint_matvec() {
        // The O(n·2^n) tensor-power application must agree with the dense
        // W†·x product the seed computed.
        let config = small_config();
        let target: Vec<f64> = vec![0.7, -0.2, 0.1, 0.4, -0.3, 0.2, 0.05, -0.1];
        let normalized = l2_normalize(&target).unwrap();
        let dense_y = config
            .closing_rotation()
            .adjoint()
            .matvec(&enq_linalg::CVector::from_real(&normalized));
        let mut fast_y: Vec<C64> = normalized.iter().map(|&v| C64::real(v)).collect();
        config
            .closing_rotation_1q()
            .adjoint()
            .apply_kron_power(&mut fast_y)
            .unwrap();
        for (a, b) in fast_y.iter().zip(dense_y.iter()) {
            assert!(a.approx_eq(*b, 1e-12), "{a} vs {b}");
        }
    }

    #[test]
    fn optimised_loss_fidelity_matches_circuit_simulation() {
        // Whatever fidelity the symbolic loss reports must equal the fidelity
        // of the actual bound ansatz circuit against the target state.
        let config = small_config();
        let target: Vec<f64> = vec![0.9, 0.1, 0.3, -0.2, 0.4, 0.0, -0.5, 0.2];
        let obj = FidelityObjective::new(&config, &target).unwrap();
        let result = Lbfgs::with_max_iterations(200).minimize(&obj, &vec![0.1; obj.dimension()]);
        let symbolic_fidelity = obj.fidelity(&result.x);

        let circuit = config.build_bound(&result.x).unwrap();
        let output = Statevector::from_circuit(&circuit).unwrap();
        let target_state = Statevector::from_real_normalized(&target).unwrap();
        let circuit_fidelity = output.fidelity(&target_state).unwrap();
        assert!(
            (symbolic_fidelity - circuit_fidelity).abs() < 1e-8,
            "symbolic {symbolic_fidelity} vs circuit {circuit_fidelity}"
        );
    }

    #[test]
    fn optimisation_reaches_high_fidelity_on_small_problems() {
        // With enough layers (parameters ≳ 2·2^n) and a few restarts the
        // optimiser should get close to the phase-only fidelity bound.
        let config = AnsatzConfig {
            num_qubits: 3,
            num_layers: 8,
            entangler: EntanglerKind::Cy,
        };
        let mut rng = StdRng::seed_from_u64(9);
        let target: Vec<f64> = (0..8).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let obj = FidelityObjective::new(&config, &target).unwrap();
        let mut best = 0.0f64;
        for _ in 0..4 {
            let start: Vec<f64> = (0..obj.dimension())
                .map(|_| rng.gen_range(-std::f64::consts::PI..std::f64::consts::PI))
                .collect();
            let result = Lbfgs::with_max_iterations(300).minimize(&obj, &start);
            best = best.max(obj.fidelity(&result.x));
        }
        assert!(best > 0.8, "fidelity only reached {best}");
    }

    #[test]
    fn invalid_targets_rejected() {
        let config = small_config();
        assert!(FidelityObjective::new(&config, &[1.0, 0.0]).is_err());
        assert!(FidelityObjective::new(&config, &[0.0; 8]).is_err());
    }

    #[test]
    fn batched_loss_is_bit_identical_to_solo_objectives() {
        let config = small_config();
        let symbolic = Arc::new(SymbolicState::from_ansatz(&config).unwrap());
        let mut rng = StdRng::seed_from_u64(17);
        for lanes in [1usize, 2, 7] {
            let objectives: Vec<FidelityObjective> = (0..lanes)
                .map(|_| {
                    let target: Vec<f64> = (0..symbolic.dim())
                        .map(|_| rng.gen_range(-1.0..1.0))
                        .collect();
                    FidelityObjective::with_symbolic(Arc::clone(&symbolic), &config, &target)
                        .unwrap()
                })
                .collect();
            let refs: Vec<&FidelityObjective> = objectives.iter().collect();
            let mut batched = BatchedFidelityObjective::new(&refs).unwrap();
            let p = batched.num_parameters();
            let thetas: Vec<f64> = (0..lanes * p).map(|_| rng.gen_range(-3.0..3.0)).collect();
            let mut values = vec![0.0; lanes];
            let mut gradients = vec![0.0; lanes * p];
            batched.eval(&thetas, &mut values, &mut gradients).unwrap();
            for (b, obj) in objectives.iter().enumerate() {
                let mut solo_grad = vec![0.0; p];
                let solo_value =
                    obj.value_and_gradient_into(&thetas[b * p..(b + 1) * p], &mut solo_grad);
                assert_eq!(values[b].to_bits(), solo_value.to_bits(), "lane {b}");
                for (j, (bg, sg)) in gradients[b * p..(b + 1) * p]
                    .iter()
                    .zip(solo_grad.iter())
                    .enumerate()
                {
                    assert_eq!(bg.to_bits(), sg.to_bits(), "lane {b} component {j}");
                }
            }
        }
    }

    #[test]
    fn batched_loss_rejects_bad_shapes() {
        assert!(BatchedFidelityObjective::new(&[]).is_err());
        let config = small_config();
        let target: Vec<f64> = (1..=8).map(f64::from).collect();
        let obj = FidelityObjective::new(&config, &target).unwrap();
        let mut batched = BatchedFidelityObjective::new(&[&obj]).unwrap();
        let p = batched.num_parameters();
        let mut values = vec![0.0; 1];
        let mut gradients = vec![0.0; p];
        assert!(batched
            .eval(&vec![0.0; p - 1], &mut values, &mut gradients)
            .is_err());
        assert!(batched
            .eval(&vec![0.0; p], &mut [], &mut gradients)
            .is_err());
        assert!(batched
            .eval(&vec![0.0; p], &mut values, &mut gradients[..p - 1])
            .is_err());
    }
}

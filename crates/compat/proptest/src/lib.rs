//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of the proptest API this workspace's property tests
//! use: range and tuple strategies, `collection::vec`, `prop_map`, the
//! `proptest!` macro with an optional `proptest_config` attribute, and the
//! `prop_assert!` / `prop_assert_eq!` / `prop_assume!` macros.
//!
//! Unlike real proptest there is no shrinking: a failing case reports its
//! inputs via `Debug`-free messages and the deterministic per-test seed makes
//! reruns reproduce it exactly. `prop_assume!` skips the offending case
//! rather than drawing a replacement.

#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::ops::Range;

/// The deterministic RNG driving strategy sampling.
#[derive(Debug, Clone)]
pub struct TestRng(StdRng);

impl TestRng {
    /// Creates an RNG seeded from a test name, so every test has a distinct
    /// but reproducible stream.
    pub fn deterministic(name: &str) -> Self {
        let mut h = DefaultHasher::new();
        name.hash(&mut h);
        Self(StdRng::seed_from_u64(h.finish() ^ 0x9E37_79B9))
    }

    /// Returns the underlying generator.
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.0
    }
}

/// Run-time configuration of a `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases each property is checked against.
    pub cases: u32,
}

impl ProptestConfig {
    /// Creates a configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// A generator of random values (subset of `proptest::strategy::Strategy`).
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps the produced values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

/// The strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// A strategy that always produces a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                rand::Rng::gen_range(rng.rng(), self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A: 0);
impl_tuple_strategy!(A: 0, B: 1);
impl_tuple_strategy!(A: 0, B: 1, C: 2);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);

/// Collection strategies (subset of `proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// A length specification: either exact or a half-open range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec length range");
            Self {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// The strategy returned by [`vec()`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Produces vectors whose elements come from `element` and whose length
    /// falls in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rand::Rng::gen_range(rng.rng(), self.size.lo..self.size.hi);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Everything a property test needs in scope.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just, ProptestConfig,
        Strategy, TestRng,
    };
}

/// Defines `#[test]` functions whose arguments are drawn from strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $( #[test] fn $name:ident ( $( $arg:ident in $strat:expr ),* $(,)? ) $body:block )* ) => {
        $(
            #[test]
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut __proptest_rng = $crate::TestRng::deterministic(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                for __proptest_case in 0..config.cases {
                    $( let $arg = $crate::Strategy::sample(&($strat), &mut __proptest_rng); )*
                    let __proptest_outcome: ::std::result::Result<(), ::std::string::String> =
                        (|| {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(msg) = __proptest_outcome {
                        panic!(
                            "property '{}' failed on case {}/{}: {}",
                            stringify!($name),
                            __proptest_case + 1,
                            config.cases,
                            msg
                        );
                    }
                }
            }
        )*
    };
}

/// Asserts a condition inside a `proptest!` body, failing the case with a
/// message instead of panicking mid-closure.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err(
                ::std::format!("assertion failed: {}", stringify!($cond)),
            );
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err(::std::format!($($fmt)*));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let l = $left;
        let r = $right;
        if l != r {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {} == {} (left: {:?}, right: {:?})",
                stringify!($left),
                stringify!($right),
                l,
                r
            ));
        }
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let l = $left;
        let r = $right;
        if l == r {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {} != {} (both: {:?})",
                stringify!($left),
                stringify!($right),
                l
            ));
        }
    }};
}

/// Skips the current case when its inputs do not satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Ok(());
        }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn strategies_are_deterministic_per_name() {
        let mut a = TestRng::deterministic("x");
        let mut b = TestRng::deterministic("x");
        let s = collection::vec(-1.0..1.0f64, 4..9);
        assert_eq!(s.sample(&mut a), s.sample(&mut b));
    }

    #[test]
    fn vec_lengths_respect_range() {
        let mut rng = TestRng::deterministic("lens");
        let s = collection::vec(0..10usize, 4..9);
        for _ in 0..100 {
            let v = s.sample(&mut rng);
            assert!((4..9).contains(&v.len()));
        }
    }

    #[test]
    fn tuples_and_map_compose() {
        let mut rng = TestRng::deterministic("tuple");
        let s = (0..6u8, 0..3usize, -1.0..1.0f64).prop_map(|(a, b, c)| (a as usize + b, c));
        let (n, x) = s.sample(&mut rng);
        assert!(n < 9);
        assert!((-1.0..1.0).contains(&x));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn macro_draws_arguments(v in collection::vec(-5.0..5.0f64, 3), k in 1usize..4) {
            prop_assert_eq!(v.len(), 3);
            prop_assert!((1..4).contains(&k), "k out of range: {}", k);
            prop_assume!(k != 0);
        }
    }
}

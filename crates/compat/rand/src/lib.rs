//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this crate provides
//! the small slice of the rand 0.8 API the workspace actually uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], [`Rng::gen`],
//! [`Rng::gen_range`], and [`Rng::gen_bool`]. The generator is a
//! xoshiro256**-style PRNG seeded through SplitMix64 — not cryptographic, but
//! deterministic, fast, and statistically solid for test data, k-means
//! seeding, and parameter initialisation.

#![warn(missing_docs)]

use std::ops::Range;

/// Types that can be sampled uniformly from a half-open [`Range`].
pub trait SampleUniform: Sized + PartialOrd {
    /// Draws a uniform sample in `[low, high)` from `rng`.
    fn sample_range<R: Rng + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_range<R: Rng + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range called with an empty range");
                let span = (high as i128 - low as i128) as u128;
                let draw = (rng.next_u64() as u128) % span;
                (low as i128 + draw as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    #[inline]
    fn sample_range<R: Rng + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        assert!(low < high, "gen_range called with an empty range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        low + (high - low) * unit
    }
}

impl SampleUniform for f32 {
    #[inline]
    fn sample_range<R: Rng + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        f64::sample_range(rng, low as f64, high as f64) as f32
    }
}

/// Types that [`Rng::gen`] can produce from the "standard" distribution:
/// uniform in `[0, 1)` for floats, uniform over all values for integers.
pub trait StandardSample {
    /// Draws one standard sample from `rng`.
    fn standard_sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    #[inline]
    fn standard_sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    #[inline]
    fn standard_sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        f64::standard_sample(rng) as f32
    }
}

impl StandardSample for u64 {
    #[inline]
    fn standard_sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    #[inline]
    fn standard_sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl StandardSample for bool {
    #[inline]
    fn standard_sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// The random-number-generator interface (subset of `rand::Rng`).
pub trait Rng {
    /// Returns the next raw 64-bit output of the generator.
    fn next_u64(&mut self) -> u64;

    /// Draws a standard sample (uniform `[0, 1)` for floats).
    #[inline]
    fn gen<T: StandardSample>(&mut self) -> T {
        T::standard_sample(self)
    }

    /// Draws a uniform sample from a half-open range.
    #[inline]
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        T::sample_range(self, range.start, range.end)
    }

    /// Returns `true` with probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::standard_sample(self) < p
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable construction (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Creates a generator deterministically from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic xoshiro256**-style generator (shim for `rand::rngs::StdRng`).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            Self {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl Rng for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.gen_range(-3.0..3.0);
            assert!((-3.0..3.0).contains(&x));
            let n = rng.gen_range(0usize..17);
            assert!(n < 17);
            let b = rng.gen_range(0u8..6);
            assert!(b < 6);
        }
    }

    #[test]
    fn unit_float_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(9);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn works_through_generic_and_unsized_bounds() {
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> u64 {
            rng.next_u64()
        }
        let mut rng = StdRng::seed_from_u64(3);
        let _ = draw(&mut rng);
        let r: f64 = rng.gen();
        assert!((0.0..1.0).contains(&r));
    }
}

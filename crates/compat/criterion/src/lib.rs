//! Offline stand-in for the `criterion` benchmark harness.
//!
//! Provides the subset of the criterion API the workspace's benches use:
//! [`Criterion::benchmark_group`] / [`Criterion::bench_function`], group
//! `sample_size` / `measurement_time` tuning, the [`Bencher::iter`] timing
//! loop, and the [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Each benchmark runs a short warm-up, then `sample_size` timed samples
//! (each sample iterates the closure enough times to be measurable within
//! the group's `measurement_time` budget) and prints mean / min / standard
//! deviation per benchmark in both human-readable and machine-greppable
//! (`BENCH{...}` JSON-lines) form.

#![warn(missing_docs)]

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Top-level benchmark driver.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            sample_size: 20,
            measurement_time: Duration::from_secs(2),
        }
    }
}

impl Criterion {
    /// Starts a named group of benchmarks sharing tuning parameters.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            sample_size: 20,
            measurement_time: Duration::from_secs(2),
        }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(name, self.sample_size, self.measurement_time, f);
        self
    }
}

/// A group of benchmarks with shared sample-size / time budgets.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Sets the per-benchmark measurement budget.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, name);
        run_bench(&full, self.sample_size, self.measurement_time, f);
        self
    }

    /// Finishes the group (printing is incremental, so this is a no-op).
    pub fn finish(self) {}
}

/// Passed to the benchmark closure to drive the timing loop.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` executions of `routine`.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        let start = Instant::now();
        for _ in 0..self.iters {
            std_black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_bench<F>(name: &str, sample_size: usize, budget: Duration, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    // Warm-up and calibration: find an iteration count whose sample takes
    // roughly budget / sample_size.
    let mut calib = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut calib);
    let per_iter = (calib.elapsed.as_secs_f64() / calib.iters as f64).max(1e-9);
    let target_sample = (budget.as_secs_f64() / sample_size as f64).max(1e-4);
    let iters = ((target_sample / per_iter).round() as u64).clamp(1, 10_000_000);

    let mut samples = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        samples.push(b.elapsed.as_secs_f64() / iters as f64);
    }
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    let min = samples.iter().cloned().fold(f64::INFINITY, f64::min);
    let var = samples.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>()
        / (samples.len() - 1).max(1) as f64;
    let std = var.sqrt();
    println!(
        "{name:<55} mean {:>12}  min {:>12}  std {:>12}  ({} samples x {} iters)",
        format_time(mean),
        format_time(min),
        format_time(std),
        samples.len(),
        iters
    );
    println!(
        "BENCH{{\"name\":\"{name}\",\"mean_s\":{mean:e},\"min_s\":{min:e},\"std_s\":{std:e},\"samples\":{},\"iters\":{iters}}}",
        samples.len()
    );
}

fn format_time(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:.3} s")
    } else if seconds >= 1e-3 {
        format!("{:.3} ms", seconds * 1e3)
    } else if seconds >= 1e-6 {
        format!("{:.3} µs", seconds * 1e6)
    } else {
        format!("{:.1} ns", seconds * 1e9)
    }
}

/// Bundles benchmark functions into a runner, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running the given benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group
            .sample_size(3)
            .measurement_time(Duration::from_millis(30));
        group.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        group.finish();
    }

    #[test]
    fn format_time_scales() {
        assert!(format_time(2.0).ends_with(" s"));
        assert!(format_time(2e-3).ends_with("ms"));
        assert!(format_time(2e-6).ends_with("µs"));
        assert!(format_time(2e-9).ends_with("ns"));
    }
}

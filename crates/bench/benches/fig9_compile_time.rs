//! Criterion benchmark behind Figure 9: per-sample compilation time of the
//! Baseline (exact synthesis) vs EnQode (online transfer-learning
//! optimisation), plus the offline training cost per cluster.

use criterion::{criterion_group, criterion_main, Criterion};
use enq_bench::context::DatasetContext;
use enq_bench::experiment::ExperimentConfig;
use enq_data::DatasetKind;
use enq_optim::{Lbfgs, Objective, Optimizer};
use enqode::FidelityObjective;
use std::hint::black_box;
use std::time::Duration;

fn bench_fig9(c: &mut Criterion) {
    let config = ExperimentConfig::tiny();
    let ctx = DatasetContext::build(DatasetKind::MnistLike, &config)
        .expect("dataset preparation succeeds");
    let sample = ctx.features.sample(1).to_vec();
    let label = ctx.features.labels()[1];
    let model = ctx.model_for(label);
    let ansatz = config.enqode_config().ansatz;
    let centroid = model.clusters()[0].centroid.clone();

    let mut group = c.benchmark_group("fig9_compile_time");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    group.bench_function("baseline_online_compile", |b| {
        b.iter(|| {
            let circuit = ctx.baseline.embed(black_box(&sample)).unwrap().circuit;
            black_box(ctx.transpiler.transpile(&circuit).unwrap())
        })
    });
    group.bench_function("enqode_online_compile", |b| {
        b.iter(|| {
            let embedding = model.embed(black_box(&sample)).unwrap();
            black_box(ctx.transpiler.transpile(&embedding.circuit).unwrap())
        })
    });
    group.bench_function("enqode_online_no_finetune", |b| {
        b.iter(|| {
            let embedding = model.embed_without_finetuning(black_box(&sample)).unwrap();
            black_box(ctx.transpiler.transpile(&embedding.circuit).unwrap())
        })
    });
    group.bench_function("enqode_offline_single_cluster", |b| {
        b.iter(|| {
            let objective = FidelityObjective::new(&ansatz, black_box(&centroid)).unwrap();
            let start = vec![0.1; objective.dimension()];
            black_box(Lbfgs::with_max_iterations(250).minimize(&objective, &start))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_fig9);
criterion_main!(benches);

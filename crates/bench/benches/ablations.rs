//! Criterion benchmarks for the design-choice ablations: the symbolic
//! representation vs full statevector simulation, and the optimiser choice.

use criterion::{criterion_group, criterion_main, Criterion};
use enq_optim::{Adam, Lbfgs, Objective, Optimizer};
use enq_qsim::Statevector;
use enqode::{AnsatzConfig, EntanglerKind, FidelityObjective, SymbolicState};
use std::hint::black_box;
use std::time::Duration;

fn bench_ablations(c: &mut Criterion) {
    let ansatz = AnsatzConfig {
        num_qubits: 6,
        num_layers: 6,
        entangler: EntanglerKind::Cy,
    };
    let symbolic = SymbolicState::from_ansatz(&ansatz).expect("valid ansatz");
    let theta: Vec<f64> = (0..ansatz.num_parameters())
        .map(|j| 0.11 * j as f64 - 1.0)
        .collect();
    let target: Vec<f64> = (0..ansatz.dimension())
        .map(|i| 0.4 + ((i as f64) * 0.37).sin().abs())
        .collect();
    let objective = FidelityObjective::new(&ansatz, &target).expect("valid target");
    let bound_circuit = ansatz.build_bound(&theta).expect("bound circuit");
    let start = vec![0.1; objective.dimension()];

    let mut group = c.benchmark_group("ablations");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    // The symbolic representation replaces repeated statevector simulation:
    // compare one loss+gradient evaluation against one full circuit
    // simulation.
    group.bench_function("symbolic_loss_and_gradient", |b| {
        b.iter(|| black_box(objective.value_and_gradient(black_box(&theta))))
    });
    group.bench_function("statevector_simulation_of_ansatz", |b| {
        b.iter(|| black_box(Statevector::from_circuit(black_box(&bound_circuit)).unwrap()))
    });
    group.bench_function("symbolic_amplitudes_only", |b| {
        b.iter(|| black_box(symbolic.amplitudes(black_box(&theta)).unwrap()))
    });
    // Optimiser choice on the same objective and budgeted iterations.
    group.bench_function("train_cluster_lbfgs_50_iters", |b| {
        b.iter(|| black_box(Lbfgs::with_max_iterations(50).minimize(&objective, &start)))
    });
    group.bench_function("train_cluster_adam_50_iters", |b| {
        b.iter(|| {
            let adam = Adam {
                max_iterations: 50,
                ..Adam::default()
            };
            black_box(adam.minimize(&objective, &start))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_ablations);
criterion_main!(benches);

//! Fit-throughput benchmark: streaming (out-of-core) training vs the
//! full-batch in-memory reference, the pipelined-vs-synchronous ingestion
//! comparison, and the adaptive fidelity-threshold cluster search.
//!
//! Run with `cargo bench -p enq_bench --bench fit_throughput`. Writes
//! `BENCH_fit.json` at the repository root and enforces the acceptance
//! gates:
//!
//! * the trained dataset is ≥ 10× the streaming chunk budget,
//! * streaming k-means inertia stays ≤ 1.05× the full-batch Lloyd inertia,
//! * the pipelined engine (prefetch + feature spill) is ≥ 1.3× faster than
//!   the synchronous streaming baseline on the ingestion-bound workload
//!   (full shape only — sub-second smoke timings are noise), and
//! * the adaptive audit reports every cluster fidelity ≥ its threshold.
//!
//! Set `ENQ_FIT_BENCH_TINY=1` for a smoke run (used by CI to keep the
//! regeneration path from rotting without paying the full measurement; the
//! smoke run exercises prefetched ingestion, the spill path, and the
//! adaptive audit end to end).

use enq_bench::fit::{run, FitBenchConfig};
use std::path::Path;

fn main() {
    let tiny = std::env::var("ENQ_FIT_BENCH_TINY").is_ok_and(|v| v == "1");
    let config = if tiny {
        FitBenchConfig::tiny()
    } else {
        FitBenchConfig::paper()
    };
    let result = run(&config).expect("fit benchmark runs");
    println!("{result}");

    let json = result.to_json();
    let out_path = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_fit.json");
    if tiny {
        // Smoke mode validates the full regeneration path without
        // overwriting the measured numbers with toy-shape ones.
        println!("(tiny smoke run; BENCH_fit.json left untouched)");
        println!("{json}");
    } else {
        std::fs::write(&out_path, &json).expect("writing BENCH_fit.json");
        println!("wrote {}", out_path.display());
    }

    let inertia_ratio = result.inertia_ratio();
    let scale = result.dataset_over_chunk();
    // The shape-invariant gates hold even in smoke mode so a regression in
    // the streaming fit is caught by the cheap CI run too.
    assert!(
        scale >= 10.0,
        "acceptance: the dataset must be >= 10x the chunk budget (got {scale:.1}x)"
    );
    assert!(
        inertia_ratio <= 1.05,
        "acceptance: streaming fit must reach <= 1.05x the full-batch k-means \
         inertia (got {inertia_ratio:.4}x)"
    );
    assert!(
        result.adaptive.min_fidelity >= result.adaptive.threshold,
        "acceptance: adaptive audit must end with every cluster fidelity >= {} \
         (got {:.4})",
        result.adaptive.threshold,
        result.adaptive.min_fidelity
    );
    if !tiny {
        let speedup = result.pipelined_speedup();
        assert!(
            speedup >= 1.3,
            "acceptance: pipelined ingestion must be >= 1.3x the synchronous \
             streaming baseline (got {speedup:.2}x)"
        );
    }
}

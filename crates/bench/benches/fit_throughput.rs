//! Fit-throughput benchmark: streaming (out-of-core) training vs the
//! full-batch in-memory reference.
//!
//! Run with `cargo bench -p enq_bench --bench fit_throughput`. Writes
//! `BENCH_fit.json` at the repository root and enforces the acceptance
//! gates:
//!
//! * the trained dataset is ≥ 10× the streaming chunk budget, and
//! * streaming k-means inertia stays ≤ 1.05× the full-batch Lloyd inertia
//!   on the held-in reference set.
//!
//! Set `ENQ_FIT_BENCH_TINY=1` for a smoke run (used by CI to keep the
//! regeneration path from rotting without paying the full measurement).

use enq_bench::fit::{run, FitBenchConfig};
use std::path::Path;

fn main() {
    let tiny = std::env::var("ENQ_FIT_BENCH_TINY").is_ok_and(|v| v == "1");
    let config = if tiny {
        FitBenchConfig::tiny()
    } else {
        FitBenchConfig::paper()
    };
    let result = run(&config).expect("fit benchmark runs");
    println!("{result}");

    let json = result.to_json();
    let out_path = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_fit.json");
    if tiny {
        // Smoke mode validates the full regeneration path without
        // overwriting the measured numbers with toy-shape ones.
        println!("(tiny smoke run; BENCH_fit.json left untouched)");
        println!("{json}");
    } else {
        std::fs::write(&out_path, &json).expect("writing BENCH_fit.json");
        println!("wrote {}", out_path.display());
    }

    let inertia_ratio = result.inertia_ratio();
    let scale = result.dataset_over_chunk();
    // Both shapes satisfy the gates by construction; assert in smoke mode
    // too so a regression in the streaming fit is caught even by the cheap
    // CI run.
    assert!(
        scale >= 10.0,
        "acceptance: the dataset must be >= 10x the chunk budget (got {scale:.1}x)"
    );
    assert!(
        inertia_ratio <= 1.05,
        "acceptance: streaming fit must reach <= 1.05x the full-batch k-means \
         inertia (got {inertia_ratio:.4}x)"
    );
}

//! Serve-layer throughput benchmark at the paper shape (8 qubits, 8
//! layers).
//!
//! Run with `cargo bench -p enq_bench --bench serve_throughput`. Writes
//! `BENCH_serve.json` at the repository root and enforces the acceptance
//! gates:
//!
//! * micro-batched serve throughput ≥ 2× the one-request-at-a-time
//!   `pipeline.embed` loop on the replayed request stream,
//! * cache hits ≥ 10× faster (median latency) than cold embeds,
//! * serving-machinery overhead (cache-off batched p50 over sequential
//!   p50) bounded, and **zero heap allocations** per steady-state cache
//!   hit — this binary installs a counting global allocator feeding
//!   `enq_bench::alloc_probe`, so the recorded `hit_allocs_per_request`
//!   is a real measurement, and
//! * p99 compute-path latency during a background model rebuild ≤ 6× idle
//!   (the rebuild worker competes for cores, never blocks serving; on a
//!   single core the under-rebuild tail bottoms out at a couple of
//!   scheduler quanta, so the bound leaves headroom over that floor), and
//! * the ops-autopilot leg: under an hours-compressed traffic drift the
//!   autopilot must fire unaided, the audited fidelity must recover to at
//!   least the recorded floor, and the drift-phase serve p99 must stay
//!   within the same 6× rebuild gate relative to baseline.
//!
//! Set `ENQ_SERVE_BENCH_TINY=1` for a smoke run (used by CI to keep the
//! regeneration path from rotting without paying the full measurement).

use enq_bench::alloc_probe;
use enq_bench::serve::{run, ServeBenchConfig};
use std::alloc::{GlobalAlloc, Layout, System};
use std::path::Path;
use std::sync::atomic::Ordering;

/// Counts every allocation into [`alloc_probe::COUNTER`] so the hot-path
/// leg can record allocations per cache hit (deallocations are free to
/// stay uncounted: the gate is on acquiring memory, not returning it).
struct CountingAllocator;

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        alloc_probe::COUNTER.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        alloc_probe::COUNTER.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        alloc_probe::COUNTER.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

fn main() {
    let tiny = std::env::var("ENQ_SERVE_BENCH_TINY").is_ok_and(|v| v == "1");
    let config = if tiny {
        ServeBenchConfig::tiny()
    } else {
        ServeBenchConfig::paper()
    };
    let result = run(&config).expect("serve benchmark runs");
    println!("{result}");

    let json = result.to_json();
    let out_path = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_serve.json");
    if tiny {
        // Smoke mode validates the full regeneration path without
        // overwriting the measured numbers with toy-shape ones.
        println!("(tiny smoke run; BENCH_serve.json left untouched)");
        println!("{json}");
    } else {
        std::fs::write(&out_path, &json).expect("writing BENCH_serve.json");
        println!("wrote {}", out_path.display());
    }

    let throughput_ratio = result.batched_over_sequential();
    let latency_ratio = result.cold_over_hot_p50();
    let overhead_ratio = result.serve_overhead_p50_ratio();
    let hit_allocs = result.hit_allocs_per_request;
    let rebuild_ratio = result.rebuild_p99_ratio();
    let autopilot_ratio = result.autopilot_p99_ratio();
    if tiny {
        // The smoke run exercises the regeneration path end to end; the
        // latency/throughput thresholds are calibrated for the paper shape
        // only. The zero-allocation contract is shape-independent, though
        // — a hit must never allocate, toy model or not.
        assert!(
            hit_allocs == 0.0,
            "steady-state cache hits must not allocate (got {hit_allocs:.2}/request)"
        );
        println!(
            "smoke ratios (not gated): batched/sequential {throughput_ratio:.2}x, cold/hot p50 {latency_ratio:.1}x, serve overhead p50 {overhead_ratio:.2}x, rebuild p99 {rebuild_ratio:.2}x, autopilot p99 {autopilot_ratio:.2}x"
        );
        return;
    }
    assert!(
        throughput_ratio >= 2.0,
        "acceptance: batched serve must be >= 2x the sequential embed loop (got {throughput_ratio:.2}x)"
    );
    assert!(
        latency_ratio >= 10.0,
        "acceptance: cache hits must be >= 10x faster than cold embeds (got {latency_ratio:.1}x)"
    );
    assert!(
        overhead_ratio <= 7.0,
        "acceptance: serving machinery must cost <= 7x the bare sequential p50 (got {overhead_ratio:.2}x)"
    );
    assert!(
        hit_allocs == 0.0,
        "acceptance: steady-state cache hits must not allocate (got {hit_allocs:.2}/request)"
    );
    assert!(
        result.max_largest_batch() >= 9,
        "acceptance: the sweep must form a batch beyond the default client count (largest {})",
        result.max_largest_batch()
    );
    assert!(
        result.rebuild.rebuild_outlasted_measurement,
        "the background rebuild finished before the measured passes ended; raise rebuild_samples_per_class"
    );
    assert!(
        rebuild_ratio <= 6.0,
        "acceptance: p99 under a background rebuild must stay <= 6x idle p99 (got {rebuild_ratio:.2}x)"
    );
    assert!(
        result.autopilot.fidelity_recovered >= result.autopilot.fidelity_threshold,
        "acceptance: the autopilot refresh must recover audited fidelity above the floor \
         (got {:.3} < {:.2})",
        result.autopilot.fidelity_recovered,
        result.autopilot.fidelity_threshold
    );
    assert!(
        autopilot_ratio <= 6.0,
        "acceptance: drift-phase serve p99 with the autopilot refresh in flight must stay \
         <= 6x baseline p99 (got {autopilot_ratio:.2}x)"
    );
}

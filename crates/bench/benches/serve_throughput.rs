//! Serve-layer throughput benchmark at the paper shape (8 qubits, 8
//! layers).
//!
//! Run with `cargo bench -p enq_bench --bench serve_throughput`. Writes
//! `BENCH_serve.json` at the repository root and enforces the acceptance
//! gates:
//!
//! * micro-batched serve throughput ≥ 2× the one-request-at-a-time
//!   `pipeline.embed` loop on the replayed request stream,
//! * cache hits ≥ 10× faster (median latency) than cold embeds, and
//! * p99 compute-path latency during a background model rebuild ≤ 3× idle
//!   (the rebuild worker competes for cores, never blocks serving).
//!
//! Set `ENQ_SERVE_BENCH_TINY=1` for a smoke run (used by CI to keep the
//! regeneration path from rotting without paying the full measurement).

use enq_bench::serve::{run, ServeBenchConfig};
use std::path::Path;

fn main() {
    let tiny = std::env::var("ENQ_SERVE_BENCH_TINY").is_ok_and(|v| v == "1");
    let config = if tiny {
        ServeBenchConfig::tiny()
    } else {
        ServeBenchConfig::paper()
    };
    let result = run(&config).expect("serve benchmark runs");
    println!("{result}");

    let json = result.to_json();
    let out_path = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_serve.json");
    if tiny {
        // Smoke mode validates the full regeneration path without
        // overwriting the measured numbers with toy-shape ones.
        println!("(tiny smoke run; BENCH_serve.json left untouched)");
        println!("{json}");
    } else {
        std::fs::write(&out_path, &json).expect("writing BENCH_serve.json");
        println!("wrote {}", out_path.display());
    }

    let throughput_ratio = result.batched_over_sequential();
    let latency_ratio = result.cold_over_hot_p50();
    let rebuild_ratio = result.rebuild_p99_ratio();
    if tiny {
        // The smoke run exercises the regeneration path end to end; the
        // acceptance thresholds are calibrated for the paper shape only.
        println!(
            "smoke ratios (not gated): batched/sequential {throughput_ratio:.2}x, cold/hot p50 {latency_ratio:.1}x, rebuild p99 {rebuild_ratio:.2}x"
        );
        return;
    }
    assert!(
        throughput_ratio >= 2.0,
        "acceptance: batched serve must be >= 2x the sequential embed loop (got {throughput_ratio:.2}x)"
    );
    assert!(
        latency_ratio >= 10.0,
        "acceptance: cache hits must be >= 10x faster than cold embeds (got {latency_ratio:.1}x)"
    );
    assert!(
        result.rebuild.rebuild_outlasted_measurement,
        "the background rebuild finished before the measured passes ended; raise rebuild_samples_per_class"
    );
    assert!(
        rebuild_ratio <= 3.0,
        "acceptance: p99 under a background rebuild must stay <= 3x idle p99 (got {rebuild_ratio:.2}x)"
    );
}

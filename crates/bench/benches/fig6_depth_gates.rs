//! Criterion benchmark behind Figure 6: per-sample cost of producing the
//! hardware-ready circuit (whose depth/gate metrics the figure reports) for
//! the Baseline and for EnQode.

use criterion::{criterion_group, criterion_main, Criterion};
use enq_bench::context::DatasetContext;
use enq_bench::experiment::ExperimentConfig;
use enq_data::DatasetKind;
use std::hint::black_box;
use std::time::Duration;

fn bench_fig6(c: &mut Criterion) {
    let config = ExperimentConfig::tiny();
    let ctx = DatasetContext::build(DatasetKind::MnistLike, &config)
        .expect("dataset preparation succeeds");
    let sample = ctx.features.sample(0).to_vec();
    let label = ctx.features.labels()[0];

    // Report the figure's headline numbers once so `cargo bench` output also
    // carries the depth/gate comparison.
    let baseline_metrics = ctx
        .transpiler
        .transpile(&ctx.baseline.embed(&sample).unwrap().circuit)
        .unwrap()
        .metrics;
    let enqode_metrics = ctx
        .transpiler
        .transpile(&ctx.model_for(label).embed(&sample).unwrap().circuit)
        .unwrap()
        .metrics;
    eprintln!("fig6 sample metrics — baseline: {baseline_metrics}; enqode: {enqode_metrics}");

    let mut group = c.benchmark_group("fig6_depth_gates");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    group.bench_function("baseline_synthesize_and_transpile", |b| {
        b.iter(|| {
            let circuit = ctx.baseline.embed(black_box(&sample)).unwrap().circuit;
            black_box(ctx.transpiler.transpile(&circuit).unwrap().metrics)
        })
    });
    group.bench_function("enqode_embed_and_transpile", |b| {
        b.iter(|| {
            let circuit = ctx
                .model_for(label)
                .embed(black_box(&sample))
                .unwrap()
                .circuit;
            black_box(ctx.transpiler.transpile(&circuit).unwrap().metrics)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_fig6);
criterion_main!(benches);

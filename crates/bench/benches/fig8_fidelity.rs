//! Criterion benchmark behind Figure 8: ideal (statevector) and noisy
//! (density-matrix) simulation of Baseline and EnQode embedding circuits.

use criterion::{criterion_group, criterion_main, Criterion};
use enq_bench::context::DatasetContext;
use enq_bench::experiment::ExperimentConfig;
use enq_data::DatasetKind;
use enq_qsim::{DeviceNoiseModel, NoisySimulator, Statevector};
use enqode::target_state;
use std::hint::black_box;
use std::time::Duration;

fn bench_fig8(c: &mut Criterion) {
    let config = ExperimentConfig::tiny();
    let ctx = DatasetContext::build(DatasetKind::CifarLike, &config)
        .expect("dataset preparation succeeds");
    let sample = ctx.features.sample(0).to_vec();
    let label = ctx.features.labels()[0];

    let baseline = ctx
        .transpiler
        .transpile(&ctx.baseline.embed(&sample).unwrap().circuit)
        .unwrap()
        .circuit;
    let enqode = ctx
        .transpiler
        .transpile(&ctx.model_for(label).embed(&sample).unwrap().circuit)
        .unwrap()
        .circuit;
    let target = target_state(&sample).unwrap();
    let noisy = NoisySimulator::new(DeviceNoiseModel::ibm_brisbane_like());

    let ideal_baseline = Statevector::from_circuit(&baseline)
        .unwrap()
        .to_cvector()
        .overlap_fidelity(&target)
        .unwrap();
    eprintln!("fig8 sanity — baseline ideal fidelity on this sample: {ideal_baseline:.4}");

    let mut group = c.benchmark_group("fig8_fidelity");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    group.bench_function("ideal_simulation_baseline", |b| {
        b.iter(|| black_box(Statevector::from_circuit(black_box(&baseline)).unwrap()))
    });
    group.bench_function("ideal_simulation_enqode", |b| {
        b.iter(|| black_box(Statevector::from_circuit(black_box(&enqode)).unwrap()))
    });
    group.bench_function("noisy_simulation_enqode", |b| {
        b.iter(|| black_box(noisy.run(black_box(&enqode)).unwrap()))
    });
    group.bench_function("noisy_simulation_baseline", |b| {
        b.iter(|| black_box(noisy.run(black_box(&baseline)).unwrap()))
    });
    group.finish();
}

criterion_group!(benches, bench_fig8);
criterion_main!(benches);

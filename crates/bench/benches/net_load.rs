//! Network-tier load benchmark at the paper shape (8 qubits, 8 layers).
//!
//! Run with `cargo bench -p enq_bench --bench net_load`. Spawns a live
//! `enqd` front door (solution cache off, small `max_pending`), probes its
//! closed-loop capacity, then offers 1×/2×/4× that capacity open-loop.
//! Writes `BENCH_net.json` at the repository root and enforces the
//! acceptance gates:
//!
//! * admitted p99 at 4× overload ≤ 5× the un-overloaded p99 (shedding
//!   bounds the tail instead of letting the queue grow),
//! * goodput at 4× overload ≥ 1 req/s (the server keeps doing useful work
//!   while shedding), and
//! * every rejected request carries a typed retryable error — the typed
//!   reject fraction is exactly 1.0.
//!
//! Set `ENQ_NET_BENCH_TINY=1` for a smoke run (used by CI to keep the
//! regeneration path from rotting without paying the full measurement).

use enq_bench::net::{run, NetBenchConfig};
use std::path::Path;

fn main() {
    let tiny = std::env::var("ENQ_NET_BENCH_TINY").is_ok_and(|v| v == "1");
    let config = if tiny {
        NetBenchConfig::tiny()
    } else {
        NetBenchConfig::paper()
    };
    let result = run(&config).expect("network load benchmark runs");
    println!("{result}");

    let json = result.to_json();
    let out_path = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_net.json");
    if tiny {
        // Smoke mode validates the full regeneration path without
        // overwriting the measured numbers with toy-shape ones.
        println!("(tiny smoke run; BENCH_net.json left untouched)");
        println!("{json}");
    } else {
        std::fs::write(&out_path, &json).expect("writing BENCH_net.json");
        println!("wrote {}", out_path.display());
    }

    let p99_ratio = result.overload_admitted_p99_ratio();
    let goodput = result.overload_goodput_rps();
    let typed_fraction = result.overload_typed_reject_fraction();
    if tiny {
        // The smoke run exercises the regeneration path end to end; the
        // latency thresholds are calibrated for the paper shape only. The
        // typed-reject contract holds at any shape.
        println!(
            "smoke ratios (not gated): admitted p99 {p99_ratio:.2}x idle, \
             goodput {goodput:.0} req/s, typed fraction {typed_fraction:.3}"
        );
        assert!(
            (typed_fraction - 1.0).abs() < f64::EPSILON,
            "every reject must be typed, even at smoke shape (got {typed_fraction:.4})"
        );
        return;
    }
    assert!(
        p99_ratio <= 5.0,
        "acceptance: admitted p99 at 4x overload must stay <= 5x idle p99 (got {p99_ratio:.2}x)"
    );
    assert!(
        goodput >= 1.0,
        "acceptance: goodput at 4x overload must stay nonzero (got {goodput:.1} req/s)"
    );
    assert!(
        (typed_fraction - 1.0).abs() < f64::EPSILON,
        "acceptance: every rejected request must carry a typed retryable error (got {typed_fraction:.4})"
    );
}

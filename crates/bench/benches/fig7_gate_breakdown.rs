//! Criterion benchmark behind Figure 7: the physical one-/two-qubit gate
//! breakdown of Baseline vs EnQode circuits, and the cost of the transpiler
//! passes that produce it.

use criterion::{criterion_group, criterion_main, Criterion};
use enq_bench::context::DatasetContext;
use enq_bench::experiment::ExperimentConfig;
use enq_circuit::{translate_to_native, CircuitMetrics};
use enq_data::DatasetKind;
use std::hint::black_box;
use std::time::Duration;

fn bench_fig7(c: &mut Criterion) {
    let config = ExperimentConfig::tiny();
    let ctx = DatasetContext::build(DatasetKind::FashionMnistLike, &config)
        .expect("dataset preparation succeeds");
    let sample = ctx.features.sample(0).to_vec();
    let label = ctx.features.labels()[0];

    let baseline_circuit = ctx.baseline.embed(&sample).unwrap().circuit;
    let enqode_circuit = ctx.model_for(label).embed(&sample).unwrap().circuit;
    let baseline_routed = ctx.transpiler.transpile(&baseline_circuit).unwrap().circuit;
    let enqode_routed = ctx.transpiler.transpile(&enqode_circuit).unwrap().circuit;
    eprintln!(
        "fig7 sample gate breakdown — baseline: {}; enqode: {}",
        CircuitMetrics::of(&baseline_routed),
        CircuitMetrics::of(&enqode_routed)
    );

    let mut group = c.benchmark_group("fig7_gate_breakdown");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    group.bench_function("baseline_basis_translation", |b| {
        b.iter(|| black_box(translate_to_native(black_box(&baseline_circuit)).unwrap()))
    });
    group.bench_function("enqode_basis_translation", |b| {
        b.iter(|| black_box(translate_to_native(black_box(&enqode_circuit)).unwrap()))
    });
    group.bench_function("baseline_metric_extraction", |b| {
        b.iter(|| black_box(CircuitMetrics::of(black_box(&baseline_routed))))
    });
    group.bench_function("enqode_metric_extraction", |b| {
        b.iter(|| black_box(CircuitMetrics::of(black_box(&enqode_routed))))
    });
    group.finish();
}

criterion_group!(benches, bench_fig7);
criterion_main!(benches);

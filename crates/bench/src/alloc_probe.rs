//! Allocation-count probe for benchmark binaries.
//!
//! The serve benchmark records `hit_allocs_per_request` — heap allocations
//! per steady-state cache hit — alongside its latency numbers, so the
//! zero-allocation hot path is regression-gated by `bench_check` like any
//! other headline figure. Rust only allows one `#[global_allocator]` per
//! binary and the library cannot install one on behalf of its callers, so
//! the contract is split: a bench binary that wants the probe installs a
//! counting allocator that bumps [`COUNTER`] on every `alloc`,
//! `alloc_zeroed`, and `realloc` (see `benches/serve_throughput.rs`), and
//! the measurement code reads deltas through [`allocations`]. In a binary
//! without the counting allocator the counter simply never moves and the
//! recorded figure degenerates to `0.0` — which is why the committed
//! artifact is only ever written by the instrumented bench binary.

use std::sync::atomic::{AtomicU64, Ordering};

/// Process-global allocation counter, incremented by the hosting binary's
/// counting allocator.
pub static COUNTER: AtomicU64 = AtomicU64::new(0);

/// Current allocation count. Subtract two readings for a window's delta.
pub fn allocations() -> u64 {
    COUNTER.load(Ordering::Relaxed)
}

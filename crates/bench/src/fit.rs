//! Fit-throughput benchmark: the streaming (out-of-core) training path vs
//! the full-batch in-memory reference.
//!
//! The workload mirrors the EnQode offline phase on a dataset ≥ 10× larger
//! than the streaming chunk budget: PCA feature extraction followed by
//! k-means clustering of the normalised features. The streaming leg runs
//! [`FeaturePipeline::fit_streaming`] (incremental PCA) and
//! [`minibatch_kmeans`] over a [`SyntheticSource`] that *generates* samples
//! chunk by chunk — nothing larger than one chunk is ever resident. The
//! full-batch leg materialises the identical sample stream and runs the
//! exact reference fits ([`FeaturePipeline::fit`] + Lloyd [`kmeans`]).
//!
//! Two acceptance gates (enforced by the `fit_throughput` bench binary and
//! re-checked in CI by `bench_check` against the committed
//! `BENCH_fit.json`):
//!
//! * the trained dataset is at least 10× the chunk budget, and
//! * streaming clustering quality stays within 1.05× of the full-batch
//!   k-means inertia on the held-in reference set.
//!
//! Peak-memory is reported as a *proxy*: the number of resident `f64`s each
//! path needs for its sample buffers and model state (chunk buffers +
//! sketch + centroids for streaming; the materialised raw and feature
//! matrices for full batch). It deliberately ignores constant overheads, so
//! the ratio understates nothing that scales with N.

use crate::report::markdown_table;
use enq_data::{
    inertia_of, kmeans, materialize, minibatch_kmeans, DataError, DatasetKind, FeaturePipeline,
    KMeansConfig, MiniBatchKMeansConfig, SampleSource, SyntheticConfig, SyntheticSource,
};
use std::fmt;
use std::time::Instant;

/// Extra directions the incremental PCA keeps beyond the output components
/// (mirrors `enq_data`'s oversampling; used only for the memory proxy).
const IPCA_OVERSAMPLE: usize = 8;

/// Shape of one fit benchmark run.
#[derive(Debug, Clone)]
pub struct FitBenchConfig {
    /// Synthetic dataset family providing the raw samples.
    pub kind: DatasetKind,
    /// Number of classes in the stream.
    pub classes: usize,
    /// Samples per class (total N = `classes × samples_per_class`).
    pub samples_per_class: usize,
    /// Streaming chunk budget (the gate requires `N ≥ 10 × chunk_size`).
    pub chunk_size: usize,
    /// PCA output dimension (`2^n` in the paper pipeline).
    pub components: usize,
    /// Clusters for the k-means comparison.
    pub k: usize,
    /// Mini-batch SGD passes.
    pub passes: usize,
    /// Maximum streaming-Lloyd polish passes.
    pub polish_passes: usize,
    /// Seed for generation and both fits.
    pub seed: u64,
}

impl FitBenchConfig {
    /// The measured shape: 3 000 MNIST-like samples (784-dim) against a
    /// 256-sample chunk budget — 11.7× the resident window.
    pub fn paper() -> Self {
        Self {
            kind: DatasetKind::MnistLike,
            classes: 4,
            samples_per_class: 750,
            chunk_size: 256,
            components: 32,
            k: 8,
            passes: 3,
            polish_passes: 8,
            seed: 0xF17,
        }
    }

    /// A seconds-scale smoke shape (still ≥ 10× the chunk budget).
    pub fn tiny() -> Self {
        Self {
            kind: DatasetKind::MnistLike,
            classes: 2,
            samples_per_class: 60,
            chunk_size: 12,
            components: 8,
            k: 3,
            passes: 2,
            polish_passes: 4,
            seed: 0xF17,
        }
    }

    /// Total samples one pass yields.
    pub fn total_samples(&self) -> usize {
        self.classes * self.samples_per_class
    }
}

/// One training leg's measurements.
#[derive(Debug, Clone, Copy)]
pub struct FitLeg {
    /// Wall-clock seconds for the complete fit (features + clustering).
    pub fit_s: f64,
    /// Raw samples consumed per second of fit time, counting every pass
    /// (streaming reads the source several times; full batch reads once).
    pub samples_per_sec: f64,
    /// Peak-RSS proxy: resident `f64` count of sample buffers + model state.
    pub resident_f64: usize,
    /// k-means inertia on the held-in reference set (each leg's own feature
    /// geometry).
    pub inertia: f64,
    /// Passes over the data the leg performed.
    pub passes_over_data: usize,
}

/// The full fit benchmark result.
#[derive(Debug, Clone)]
pub struct FitBenchResult {
    /// The configuration that produced this result.
    pub config: FitBenchConfig,
    /// Cores visible to the process.
    pub cores: usize,
    /// Raw feature dimension of the generated samples.
    pub raw_dim: usize,
    /// The streaming (out-of-core) leg.
    pub streaming: FitLeg,
    /// The full-batch in-memory reference leg.
    pub full_batch: FitLeg,
}

impl FitBenchResult {
    /// Streaming inertia over full-batch inertia (gate: ≤ 1.05).
    pub fn inertia_ratio(&self) -> f64 {
        self.streaming.inertia / self.full_batch.inertia
    }

    /// Dataset size over the chunk budget (gate: ≥ 10).
    pub fn dataset_over_chunk(&self) -> f64 {
        self.config.total_samples() as f64 / self.config.chunk_size as f64
    }

    /// Full-batch resident memory over streaming resident memory.
    pub fn memory_ratio(&self) -> f64 {
        self.full_batch.resident_f64 as f64 / self.streaming.resident_f64 as f64
    }

    /// Renders the result as the `BENCH_fit.json` document.
    pub fn to_json(&self) -> String {
        let leg = |l: &FitLeg| {
            format!(
                "{{\"fit_s\": {:.3}, \"samples_per_sec\": {:.1}, \"resident_f64\": {}, \
                 \"inertia\": {:.6}, \"passes_over_data\": {}}}",
                l.fit_s, l.samples_per_sec, l.resident_f64, l.inertia, l.passes_over_data
            )
        };
        format!(
            "{{\n  \"name\": \"fit_streaming_{}\",\n  \"cores\": {},\n  \
             \"workload\": {{\"samples\": {}, \"raw_dim\": {}, \"components\": {}, \"k\": {}, \
             \"chunk\": {}, \"sgd_passes\": {}, \"polish_passes\": {}}},\n  \
             \"streaming\": {},\n  \
             \"full_batch\": {},\n  \
             \"acceptance\": {{\"inertia_ratio\": {:.4}, \"dataset_over_chunk\": {:.2}, \
             \"memory_ratio\": {:.2}}}\n}}\n",
            self.config.kind.name().to_lowercase().replace('-', ""),
            self.cores,
            self.config.total_samples(),
            self.raw_dim,
            self.config.components,
            self.config.k,
            self.config.chunk_size,
            self.config.passes,
            self.config.polish_passes,
            leg(&self.streaming),
            leg(&self.full_batch),
            self.inertia_ratio(),
            self.dataset_over_chunk(),
            self.memory_ratio(),
        )
    }

    /// Renders a human-readable summary table.
    pub fn to_markdown(&self) -> String {
        let row = |name: &str, l: &FitLeg| {
            vec![
                name.to_string(),
                format!("{:.2}", l.fit_s),
                format!("{:.0}", l.samples_per_sec),
                format!("{:.1} MB", l.resident_f64 as f64 * 8.0 / 1e6),
                format!("{:.3}", l.inertia),
                format!("{}", l.passes_over_data),
            ]
        };
        markdown_table(
            &[
                "path",
                "fit (s)",
                "samples/s",
                "resident",
                "inertia",
                "passes",
            ],
            &[
                row("streaming (out-of-core)", &self.streaming),
                row("full batch (reference)", &self.full_batch),
            ],
        )
    }
}

impl fmt::Display for FitBenchResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "== Fit throughput ({} samples × {} dim → {} features, k = {}, chunk {}, {} core(s)) ==",
            self.config.total_samples(),
            self.raw_dim,
            self.config.components,
            self.config.k,
            self.config.chunk_size,
            self.cores
        )?;
        writeln!(f, "{}", self.to_markdown())?;
        writeln!(
            f,
            "inertia ratio (streaming / full batch): {:.4}; dataset / chunk: {:.1}x; \
             resident-memory ratio (full / streaming): {:.1}x",
            self.inertia_ratio(),
            self.dataset_over_chunk(),
            self.memory_ratio()
        )
    }
}

/// Runs the fit benchmark.
///
/// # Errors
///
/// Propagates generation, feature-fit, and clustering errors.
pub fn run(config: &FitBenchConfig) -> Result<FitBenchResult, DataError> {
    let synth = SyntheticConfig {
        classes: config.classes,
        samples_per_class: config.samples_per_class,
        seed: config.seed,
    };
    let mut source = SyntheticSource::new(config.kind, &synth)?;
    let raw_dim = source.feature_dim();
    let n = config.total_samples();
    let cores = std::thread::available_parallelism().map_or(1, |c| c.get());
    let mb_config = MiniBatchKMeansConfig {
        k: config.k,
        chunk_size: config.chunk_size,
        passes: config.passes,
        polish_passes: config.polish_passes,
        seed: config.seed,
        ..MiniBatchKMeansConfig::default()
    };

    // Streaming leg: incremental PCA (one pass), then mini-batch k-means
    // over the transformed stream. Resident: one raw chunk + one feature
    // chunk + the PCA sketch + the centroids.
    let stream_start = Instant::now();
    let stream_features =
        FeaturePipeline::fit_streaming(&mut source, config.components, config.chunk_size)?;
    let streaming_model = {
        let mut transformed = stream_features.stream_features(&mut source);
        minibatch_kmeans(&mut transformed, &mb_config)?
    };
    let stream_s = stream_start.elapsed().as_secs_f64();
    // Passes: 1 (PCA) + SGD + polish actually run + 1 (final inertia).
    let stream_passes = 1 + config.passes + streaming_model.polish_passes() + 1;
    let streaming = FitLeg {
        fit_s: stream_s,
        samples_per_sec: (n * stream_passes) as f64 / stream_s.max(1e-12),
        resident_f64: config.chunk_size * raw_dim
            + config.chunk_size * config.components
            + (config.components + IPCA_OVERSAMPLE + 1) * raw_dim
            + config.k * config.components,
        inertia: streaming_model.inertia(),
        passes_over_data: stream_passes,
    };

    // Full-batch leg: materialise everything, run the exact reference fits.
    let full_start = Instant::now();
    let dataset = materialize(&mut source, config.kind.name())?;
    let full_features = FeaturePipeline::fit(&dataset, config.components)?;
    let feature_set = full_features.apply_dataset(&dataset)?;
    let full_model = kmeans(
        feature_set.samples(),
        &KMeansConfig {
            k: config.k,
            seed: config.seed,
            ..KMeansConfig::default()
        },
    )?;
    let full_s = full_start.elapsed().as_secs_f64();
    let full_batch = FitLeg {
        fit_s: full_s,
        samples_per_sec: n as f64 / full_s.max(1e-12),
        resident_f64: n * raw_dim + n * config.components,
        inertia: inertia_of(full_model.centroids(), feature_set.samples()),
        passes_over_data: 1,
    };

    Ok(FitBenchResult {
        config: config.clone(),
        cores,
        raw_dim,
        streaming,
        full_batch,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_fit_bench_produces_consistent_results() {
        let config = FitBenchConfig::tiny();
        let result = run(&config).unwrap();
        assert_eq!(result.raw_dim, 784);
        assert!(result.streaming.fit_s > 0.0);
        assert!(result.full_batch.fit_s > 0.0);
        assert!(result.streaming.inertia > 0.0);
        assert!(result.full_batch.inertia > 0.0);
        // The gates themselves must hold even at the smoke shape.
        assert!(
            result.dataset_over_chunk() >= 10.0,
            "dataset/chunk = {}",
            result.dataset_over_chunk()
        );
        assert!(
            result.inertia_ratio() <= 1.05,
            "inertia ratio = {}",
            result.inertia_ratio()
        );
        assert!(
            result.memory_ratio() > 1.0,
            "streaming must be smaller than full batch"
        );
        let json = result.to_json();
        assert!(json.contains("\"inertia_ratio\""));
        assert!(json.contains("\"dataset_over_chunk\""));
        assert!(result.to_string().contains("Fit throughput"));
    }
}

//! Fit-throughput benchmark: the streaming (out-of-core) training path vs
//! the full-batch in-memory reference, plus the pipelined-ingestion and
//! adaptive-cluster-search legs of the streaming engine.
//!
//! The workload mirrors the EnQode offline phase on a dataset ≥ 10× larger
//! than the streaming chunk budget: PCA feature extraction followed by
//! k-means clustering of the normalised features, fed by a
//! [`SyntheticSource`] that *generates* samples chunk by chunk — the
//! ingestion-bound regime (re-rendering raw samples dominates multi-pass
//! streaming wall-clock). Four legs run:
//!
//! * **streaming (pipelined)** — the engine path: prefetched incremental
//!   PCA, one pass spilling the transformed features to an mmap-backed
//!   `ENQB` temp file, then mini-batch k-means reading the spilled features
//!   (every later pass re-reads 32-dim records instead of re-rendering
//!   784-dim images),
//! * **streaming (synchronous)** — the pre-pipelined baseline: synchronous
//!   chunk reads, every clustering pass re-renders and re-projects the raw
//!   stream. Produces **bit-identical** centroids/inertia to the pipelined
//!   leg (asserted), so the wall-clock ratio is pure ingestion win,
//! * **full batch** — materialise everything, exact PCA + Lloyd
//!   (the quality/memory reference), and
//! * **adaptive audit** — the staged [`StreamDriver`] running features →
//!   clustering → fidelity audit with a threshold, measuring what the
//!   paper's adaptive cluster-count rule costs out-of-core.
//!
//! Acceptance gates (enforced by the `fit_throughput` bench binary and
//! re-checked in CI by `bench_check` against the committed
//! `BENCH_fit.json`):
//!
//! * the trained dataset is at least 10× the chunk budget,
//! * streaming clustering quality stays within 1.05× of the full-batch
//!   k-means inertia,
//! * the pipelined leg is ≥ 1.3× faster than the synchronous leg on this
//!   ingestion-bound workload, and
//! * the adaptive audit ends with every audited cluster fidelity at or
//!   above its threshold (the per-class cap is sized so it never binds).
//!
//! Peak-memory is reported as a *proxy*: the number of resident `f64`s each
//! path needs for its sample buffers and model state. The pipelined leg's
//! spill file is disk, not memory — it is reported separately.

use crate::report::markdown_table;
use enq_data::{
    drive_chunks, inertia_of, kmeans, materialize, minibatch_kmeans, BinaryDatasetWriter,
    BinarySource, DataError, DatasetKind, FeaturePipeline, IngestMode, KMeansConfig,
    MiniBatchKMeansConfig, MiniBatchKMeansModel, SampleSource, SyntheticConfig, SyntheticSource,
};
use enqode::{AnsatzConfig, EnqodeConfig, StreamDriver, StreamStage, StreamingFitConfig};
use std::fmt;
use std::path::PathBuf;
use std::time::Instant;

/// Extra directions the incremental PCA keeps beyond the output components
/// (mirrors `enq_data`'s base oversampling; used only for the memory proxy).
const IPCA_OVERSAMPLE: usize = 8;

/// Shape of one fit benchmark run.
#[derive(Debug, Clone)]
pub struct FitBenchConfig {
    /// Synthetic dataset family providing the raw samples.
    pub kind: DatasetKind,
    /// Number of classes in the stream.
    pub classes: usize,
    /// Samples per class (total N = `classes × samples_per_class`).
    pub samples_per_class: usize,
    /// Streaming chunk budget (the gate requires `N ≥ 10 × chunk_size`).
    pub chunk_size: usize,
    /// PCA output dimension (`2^n` in the paper pipeline).
    pub components: usize,
    /// Clusters for the k-means comparison.
    pub k: usize,
    /// Mini-batch SGD passes.
    pub passes: usize,
    /// Maximum streaming-Lloyd polish passes.
    pub polish_passes: usize,
    /// Per-cluster fidelity threshold for the adaptive audit leg.
    pub audit_threshold: f64,
    /// Starting clusters per class for the adaptive audit leg.
    pub audit_clusters_per_class: usize,
    /// Per-class cluster cap for the adaptive audit leg.
    pub audit_cap: usize,
    /// Seed for generation and every fit.
    pub seed: u64,
}

impl FitBenchConfig {
    /// The measured shape: 3 000 MNIST-like samples (784-dim) against a
    /// 256-sample chunk budget — 11.7× the resident window.
    pub fn paper() -> Self {
        Self {
            kind: DatasetKind::MnistLike,
            classes: 4,
            samples_per_class: 750,
            chunk_size: 256,
            components: 32,
            k: 8,
            passes: 3,
            polish_passes: 8,
            // Probed on the benchmark dataset: the search terminates with
            // every class uncapped (~31 clusters total) and min fidelity
            // 0.604 — tightening to 0.7 already caps a class at 32.
            audit_threshold: 0.6,
            audit_clusters_per_class: 2,
            audit_cap: 32,
            seed: 0xF17,
        }
    }

    /// A seconds-scale smoke shape (still ≥ 10× the chunk budget).
    pub fn tiny() -> Self {
        Self {
            kind: DatasetKind::MnistLike,
            classes: 2,
            samples_per_class: 60,
            chunk_size: 12,
            components: 8,
            k: 3,
            passes: 2,
            polish_passes: 4,
            // Probed: needs 15 clusters across both classes (max 9 in one
            // class), comfortably inside the cap.
            audit_threshold: 0.6,
            audit_clusters_per_class: 2,
            audit_cap: 16,
            seed: 0xF17,
        }
    }

    /// Total samples one pass yields.
    pub fn total_samples(&self) -> usize {
        self.classes * self.samples_per_class
    }

    fn synth(&self) -> SyntheticConfig {
        SyntheticConfig {
            classes: self.classes,
            samples_per_class: self.samples_per_class,
            seed: self.seed,
        }
    }

    fn minibatch(&self, ingest: IngestMode) -> MiniBatchKMeansConfig {
        MiniBatchKMeansConfig {
            k: self.k,
            chunk_size: self.chunk_size,
            passes: self.passes,
            polish_passes: self.polish_passes,
            seed: self.seed,
            ingest,
            ..MiniBatchKMeansConfig::default()
        }
    }
}

/// One training leg's measurements.
#[derive(Debug, Clone, Copy)]
pub struct FitLeg {
    /// Wall-clock seconds for the complete fit (features + clustering).
    pub fit_s: f64,
    /// Raw samples consumed per second of fit time, counting every pass
    /// (streaming reads the source several times; full batch reads once).
    pub samples_per_sec: f64,
    /// Peak-RSS proxy: resident `f64` count of sample buffers + model state.
    pub resident_f64: usize,
    /// k-means inertia on the held-in reference set (each leg's own feature
    /// geometry).
    pub inertia: f64,
    /// Passes over the data the leg performed.
    pub passes_over_data: usize,
}

/// The adaptive fidelity-threshold cluster-search leg.
#[derive(Debug, Clone, Copy)]
pub struct AdaptiveLeg {
    /// Wall-clock seconds for the audit stage alone (the adaptive-rule
    /// surcharge on top of clustering).
    pub audit_s: f64,
    /// Feature-stream passes the audit stage consumed.
    pub audit_passes: usize,
    /// Audit-and-split rounds run.
    pub rounds: usize,
    /// Clusters added by splitting.
    pub splits: usize,
    /// Final clusters across all classes.
    pub clusters: usize,
    /// Minimum audited cluster fidelity after the search.
    pub min_fidelity: f64,
    /// The enforced threshold.
    pub threshold: f64,
}

/// The full fit benchmark result.
#[derive(Debug, Clone)]
pub struct FitBenchResult {
    /// The configuration that produced this result.
    pub config: FitBenchConfig,
    /// Cores visible to the process.
    pub cores: usize,
    /// Raw feature dimension of the generated samples.
    pub raw_dim: usize,
    /// The pipelined streaming leg (prefetch + feature spill).
    pub streaming: FitLeg,
    /// The synchronous streaming baseline (pre-pipelined ingestion).
    pub streaming_sync: FitLeg,
    /// The full-batch in-memory reference leg.
    pub full_batch: FitLeg,
    /// The adaptive fidelity-threshold search leg.
    pub adaptive: AdaptiveLeg,
    /// Spilled feature bytes the pipelined leg kept on disk (not memory).
    pub spill_bytes: u64,
}

impl FitBenchResult {
    /// Streaming inertia over full-batch inertia (gate: ≤ 1.05).
    pub fn inertia_ratio(&self) -> f64 {
        self.streaming.inertia / self.full_batch.inertia
    }

    /// Dataset size over the chunk budget (gate: ≥ 10).
    pub fn dataset_over_chunk(&self) -> f64 {
        self.config.total_samples() as f64 / self.config.chunk_size as f64
    }

    /// Full-batch resident memory over streaming resident memory.
    pub fn memory_ratio(&self) -> f64 {
        self.full_batch.resident_f64 as f64 / self.streaming.resident_f64 as f64
    }

    /// Synchronous streaming wall-clock over pipelined streaming wall-clock
    /// (gate: ≥ 1.3 on the ingestion-bound shape).
    pub fn pipelined_speedup(&self) -> f64 {
        self.streaming_sync.fit_s / self.streaming.fit_s
    }

    /// Renders the result as the `BENCH_fit.json` document.
    pub fn to_json(&self) -> String {
        let leg = |l: &FitLeg| {
            format!(
                "{{\"fit_s\": {:.3}, \"samples_per_sec\": {:.1}, \"resident_f64\": {}, \
                 \"inertia\": {:.6}, \"passes_over_data\": {}}}",
                l.fit_s, l.samples_per_sec, l.resident_f64, l.inertia, l.passes_over_data
            )
        };
        format!(
            "{{\n  \"name\": \"fit_streaming_{}\",\n  \"cores\": {},\n  \
             \"workload\": {{\"samples\": {}, \"raw_dim\": {}, \"components\": {}, \"k\": {}, \
             \"chunk\": {}, \"sgd_passes\": {}, \"polish_passes\": {}}},\n  \
             \"streaming\": {},\n  \
             \"streaming_sync\": {},\n  \
             \"full_batch\": {},\n  \
             \"spill_bytes\": {},\n  \
             \"adaptive\": {{\"audit_s\": {:.3}, \"audit_passes\": {}, \"audit_rounds\": {}, \
             \"audit_splits\": {}, \"adaptive_clusters\": {}, \"audit_min_fidelity\": {:.6}, \
             \"audit_threshold\": {:.6}}},\n  \
             \"acceptance\": {{\"inertia_ratio\": {:.4}, \"dataset_over_chunk\": {:.2}, \
             \"memory_ratio\": {:.2}, \"pipelined_speedup\": {:.3}}}\n}}\n",
            self.config.kind.name().to_lowercase().replace('-', ""),
            self.cores,
            self.config.total_samples(),
            self.raw_dim,
            self.config.components,
            self.config.k,
            self.config.chunk_size,
            self.config.passes,
            self.config.polish_passes,
            leg(&self.streaming),
            leg(&self.streaming_sync),
            leg(&self.full_batch),
            self.spill_bytes,
            self.adaptive.audit_s,
            self.adaptive.audit_passes,
            self.adaptive.rounds,
            self.adaptive.splits,
            self.adaptive.clusters,
            self.adaptive.min_fidelity,
            self.adaptive.threshold,
            self.inertia_ratio(),
            self.dataset_over_chunk(),
            self.memory_ratio(),
            self.pipelined_speedup(),
        )
    }

    /// Renders a human-readable summary table.
    pub fn to_markdown(&self) -> String {
        let row = |name: &str, l: &FitLeg| {
            vec![
                name.to_string(),
                format!("{:.2}", l.fit_s),
                format!("{:.0}", l.samples_per_sec),
                format!("{:.1} MB", l.resident_f64 as f64 * 8.0 / 1e6),
                format!("{:.3}", l.inertia),
                format!("{}", l.passes_over_data),
            ]
        };
        markdown_table(
            &[
                "path",
                "fit (s)",
                "samples/s",
                "resident",
                "inertia",
                "passes",
            ],
            &[
                row("streaming (pipelined)", &self.streaming),
                row("streaming (synchronous)", &self.streaming_sync),
                row("full batch (reference)", &self.full_batch),
            ],
        )
    }
}

impl fmt::Display for FitBenchResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "== Fit throughput ({} samples × {} dim → {} features, k = {}, chunk {}, {} core(s)) ==",
            self.config.total_samples(),
            self.raw_dim,
            self.config.components,
            self.config.k,
            self.config.chunk_size,
            self.cores
        )?;
        writeln!(f, "{}", self.to_markdown())?;
        writeln!(
            f,
            "inertia ratio (streaming / full batch): {:.4}; dataset / chunk: {:.1}x; \
             resident-memory ratio (full / streaming): {:.1}x; pipelined speedup \
             (sync / pipelined): {:.2}x; spill: {:.1} MB on disk",
            self.inertia_ratio(),
            self.dataset_over_chunk(),
            self.memory_ratio(),
            self.pipelined_speedup(),
            self.spill_bytes as f64 / 1e6,
        )?;
        writeln!(
            f,
            "adaptive audit: {:.2}s over {} passes, {} rounds / {} splits -> {} clusters, \
             min fidelity {:.4} (threshold {:.2})",
            self.adaptive.audit_s,
            self.adaptive.audit_passes,
            self.adaptive.rounds,
            self.adaptive.splits,
            self.adaptive.clusters,
            self.adaptive.min_fidelity,
            self.adaptive.threshold,
        )
    }
}

/// A throwaway spill path for the pipelined leg.
fn spill_path(seed: u64) -> PathBuf {
    let mut path = std::env::temp_dir();
    path.push(format!(
        "enq_fit_bench_spill_{}_{seed:x}.enqb",
        std::process::id()
    ));
    path
}

/// The synchronous streaming baseline: every pass re-reads (re-renders) and
/// re-projects the raw source.
fn run_streaming_sync(
    config: &FitBenchConfig,
    source: &mut SyntheticSource,
) -> Result<MiniBatchKMeansModel, DataError> {
    let features = FeaturePipeline::fit_streaming_with_options(
        source,
        config.components,
        config.chunk_size,
        enq_parallel::default_threads(),
        IngestMode::Synchronous,
    )?;
    let mut transformed = features.stream_features(source);
    minibatch_kmeans(&mut transformed, &config.minibatch(IngestMode::Synchronous))
}

/// The pipelined streaming engine: prefetched PCA pass, one prefetched spill
/// pass, then every clustering pass reads the mmap-backed spilled features.
fn run_streaming_pipelined(
    config: &FitBenchConfig,
    source: &mut SyntheticSource,
) -> Result<(MiniBatchKMeansModel, u64), DataError> {
    let features = FeaturePipeline::fit_streaming_with_options(
        source,
        config.components,
        config.chunk_size,
        enq_parallel::default_threads(),
        IngestMode::Prefetched,
    )?;
    let path = spill_path(config.seed);
    let mut writer = BinaryDatasetWriter::create(&path, config.components, false)?;
    source.reset()?;
    drive_chunks(source, config.chunk_size, IngestMode::Prefetched, |chunk| {
        for sample in chunk.samples() {
            writer.append(&features.apply(sample)?, 0)?;
        }
        Ok(())
    })?;
    writer.finish()?;
    let spill_bytes = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
    let mut spilled = BinarySource::open(&path)?;
    let model = minibatch_kmeans(&mut spilled, &config.minibatch(IngestMode::Prefetched));
    let _ = std::fs::remove_file(&path);
    Ok((model?, spill_bytes))
}

/// The adaptive fidelity-threshold leg: staged driver through the audit
/// stage (no ansatz training — this measures the clustering-side cost of
/// the paper's adaptive rule).
fn run_adaptive(
    config: &FitBenchConfig,
    source: &mut SyntheticSource,
) -> Result<AdaptiveLeg, DataError> {
    let num_qubits = (usize::BITS - 1 - config.components.leading_zeros()) as usize;
    assert_eq!(
        1 << num_qubits,
        config.components,
        "components must be a power of two"
    );
    let enq_config = EnqodeConfig {
        ansatz: AnsatzConfig {
            num_qubits,
            num_layers: 2,
            ..AnsatzConfig::default()
        },
        seed: config.seed,
        ..EnqodeConfig::default()
    };
    let stream = StreamingFitConfig {
        chunk_size: config.chunk_size,
        clusters_per_class: config.audit_clusters_per_class,
        passes: config.passes,
        polish_passes: config.polish_passes,
        fidelity_threshold: Some(config.audit_threshold),
        max_clusters_per_class: config.audit_cap,
        ..StreamingFitConfig::default()
    };
    let mut driver = StreamDriver::new(source, enq_config, stream)
        .map_err(|e| DataError::InvalidParameter(e.to_string()))?;
    let run = |driver: &mut StreamDriver<'_>| -> Result<(), DataError> {
        driver
            .run_features()
            .and_then(|()| driver.run_clustering())
            .and_then(|()| driver.run_fidelity_audit())
            .map_err(|e| DataError::InvalidParameter(e.to_string()))
    };
    run(&mut driver)?;
    let audit = driver.audit().expect("audit stage ran").clone();
    let report = driver
        .reports()
        .iter()
        .find(|r| r.stage == StreamStage::FidelityAudit)
        .expect("audit stage reported");
    assert!(
        audit.satisfied(),
        "adaptive audit postcondition violated: min fidelity {:.4} < {:.4} without cap",
        audit.min_fidelity(),
        config.audit_threshold,
    );
    Ok(AdaptiveLeg {
        audit_s: report.duration.as_secs_f64(),
        audit_passes: report.passes_over_source,
        rounds: audit.rounds,
        splits: audit.splits,
        clusters: audit.total_clusters(),
        min_fidelity: audit.min_fidelity(),
        threshold: config.audit_threshold,
    })
}

/// Runs the fit benchmark.
///
/// # Errors
///
/// Propagates generation, feature-fit, and clustering errors.
pub fn run(config: &FitBenchConfig) -> Result<FitBenchResult, DataError> {
    let mut source = SyntheticSource::new(config.kind, &config.synth())?;
    let raw_dim = source.feature_dim();
    let n = config.total_samples();
    let cores = std::thread::available_parallelism().map_or(1, |c| c.get());

    // Pipelined streaming leg: prefetch + feature spill. Resident: one raw
    // chunk + one feature chunk (×2 for the double buffer) + the PCA sketch
    // + the centroids; the spilled features live on disk.
    let pipelined_start = Instant::now();
    let (pipelined_model, spill_bytes) = run_streaming_pipelined(config, &mut source)?;
    let pipelined_s = pipelined_start.elapsed().as_secs_f64();
    // Raw passes: 1 (PCA) + 1 (spill); feature passes: SGD + polish + inertia.
    let pipelined_passes = 2 + config.passes + pipelined_model.polish_passes() + 1;
    let streaming = FitLeg {
        fit_s: pipelined_s,
        samples_per_sec: (n * pipelined_passes) as f64 / pipelined_s.max(1e-12),
        resident_f64: 3 * config.chunk_size * raw_dim
            + 3 * config.chunk_size * config.components
            + (config.components + IPCA_OVERSAMPLE + 1) * raw_dim
            + config.k * config.components,
        inertia: pipelined_model.inertia(),
        passes_over_data: pipelined_passes,
    };

    // Synchronous streaming baseline (the PR-3 path).
    let sync_start = Instant::now();
    let sync_model = run_streaming_sync(config, &mut source)?;
    let sync_s = sync_start.elapsed().as_secs_f64();
    let sync_passes = 1 + config.passes + sync_model.polish_passes() + 1;
    let streaming_sync = FitLeg {
        fit_s: sync_s,
        samples_per_sec: (n * sync_passes) as f64 / sync_s.max(1e-12),
        resident_f64: config.chunk_size * raw_dim
            + config.chunk_size * config.components
            + (config.components + IPCA_OVERSAMPLE + 1) * raw_dim
            + config.k * config.components,
        inertia: sync_model.inertia(),
        passes_over_data: sync_passes,
    };
    assert_eq!(
        sync_model, pipelined_model,
        "pipelined ingestion must be bit-identical to the synchronous path"
    );

    // Full-batch leg: materialise everything, run the exact reference fits.
    let full_start = Instant::now();
    let dataset = materialize(&mut source, config.kind.name())?;
    let full_features = FeaturePipeline::fit(&dataset, config.components)?;
    let feature_set = full_features.apply_dataset(&dataset)?;
    let full_model = kmeans(
        feature_set.samples(),
        &KMeansConfig {
            k: config.k,
            seed: config.seed,
            ..KMeansConfig::default()
        },
    )?;
    let full_s = full_start.elapsed().as_secs_f64();
    let full_batch = FitLeg {
        fit_s: full_s,
        samples_per_sec: n as f64 / full_s.max(1e-12),
        resident_f64: n * raw_dim + n * config.components,
        inertia: inertia_of(full_model.centroids(), feature_set.samples()),
        passes_over_data: 1,
    };

    // Adaptive fidelity-threshold search leg.
    let adaptive = run_adaptive(config, &mut source)?;

    Ok(FitBenchResult {
        config: config.clone(),
        cores,
        raw_dim,
        streaming,
        streaming_sync,
        full_batch,
        adaptive,
        spill_bytes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_fit_bench_produces_consistent_results() {
        let config = FitBenchConfig::tiny();
        let result = run(&config).unwrap();
        assert_eq!(result.raw_dim, 784);
        assert!(result.streaming.fit_s > 0.0);
        assert!(result.streaming_sync.fit_s > 0.0);
        assert!(result.full_batch.fit_s > 0.0);
        assert!(result.streaming.inertia > 0.0);
        // Bit-identicality across ingestion modes is asserted inside `run`;
        // the recorded inertias must therefore agree exactly.
        assert_eq!(
            result.streaming.inertia.to_bits(),
            result.streaming_sync.inertia.to_bits()
        );
        // The gates themselves must hold even at the smoke shape (except the
        // wall-clock speedup, which is noise at sub-second scale).
        assert!(
            result.dataset_over_chunk() >= 10.0,
            "dataset/chunk = {}",
            result.dataset_over_chunk()
        );
        assert!(
            result.inertia_ratio() <= 1.05,
            "inertia ratio = {}",
            result.inertia_ratio()
        );
        assert!(
            result.memory_ratio() > 1.0,
            "streaming must be smaller than full batch"
        );
        assert!(result.spill_bytes > 0);
        // Adaptive postcondition: every audited fidelity clears the
        // threshold (the cap is sized so it does not bind).
        assert!(
            result.adaptive.min_fidelity >= result.adaptive.threshold,
            "audit min fidelity {} < threshold {}",
            result.adaptive.min_fidelity,
            result.adaptive.threshold
        );
        assert!(result.adaptive.clusters >= config.classes * config.audit_clusters_per_class);
        let json = result.to_json();
        assert!(json.contains("\"inertia_ratio\""));
        assert!(json.contains("\"dataset_over_chunk\""));
        assert!(json.contains("\"pipelined_speedup\""));
        assert!(json.contains("\"audit_min_fidelity\""));
        assert!(result.to_string().contains("Fit throughput"));
    }
}

//! Ablation studies over EnQode's design choices: entangler gate, layer
//! count, optimiser, and transfer learning vs cold-start online compilation.
//!
//! These are not figures in the paper, but Sec. III motivates each choice
//! (CY entangler, 8 layers, L-BFGS with symbolic gradients, transfer
//! learning); the ablations quantify them on the same synthetic datasets.

use crate::context::DatasetContext;
use crate::experiment::ExperimentConfig;
use crate::report::markdown_table;
use enq_optim::{Adam, GradientDescent, Lbfgs, NelderMead, Objective, Optimizer};
use enqode::{
    AnsatzConfig, EnqodeConfig, EnqodeError, EnqodeModel, EntanglerKind, FidelityObjective,
};
use std::fmt;

/// Fidelity achieved for each entangler choice.
#[derive(Debug, Clone)]
pub struct EntanglerAblation {
    /// (entangler name, mean ideal fidelity over evaluated samples).
    pub rows: Vec<(String, f64)>,
}

/// Fidelity as a function of the number of ansatz layers.
#[derive(Debug, Clone)]
pub struct LayerAblation {
    /// (layer count, mean ideal fidelity).
    pub rows: Vec<(usize, f64)>,
}

/// Optimiser comparison on a single cluster mean.
#[derive(Debug, Clone)]
pub struct OptimizerAblation {
    /// (optimiser name, final fidelity, objective evaluations).
    pub rows: Vec<(String, f64, usize)>,
}

/// Transfer learning vs cold-start online compilation.
#[derive(Debug, Clone)]
pub struct TransferAblation {
    /// Mean online iterations with transfer-learning initialisation.
    pub transfer_iterations: f64,
    /// Mean online iterations starting from scratch.
    pub cold_iterations: f64,
    /// Mean fidelity with transfer-learning initialisation.
    pub transfer_fidelity: f64,
    /// Mean fidelity starting from scratch (same iteration budget).
    pub cold_fidelity: f64,
}

/// All ablation results.
#[derive(Debug, Clone)]
pub struct AblationResult {
    /// Entangler-gate ablation.
    pub entangler: EntanglerAblation,
    /// Layer-count ablation.
    pub layers: LayerAblation,
    /// Optimiser ablation.
    pub optimizer: OptimizerAblation,
    /// Transfer-learning ablation.
    pub transfer: TransferAblation,
}

impl fmt::Display for AblationResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "== Ablation: entangler gate ==")?;
        let rows: Vec<Vec<String>> = self
            .entangler
            .rows
            .iter()
            .map(|(name, fid)| vec![name.clone(), format!("{fid:.4}")])
            .collect();
        writeln!(
            f,
            "{}",
            markdown_table(&["entangler", "mean ideal fidelity"], &rows)
        )?;

        writeln!(f, "== Ablation: ansatz layers ==")?;
        let rows: Vec<Vec<String>> = self
            .layers
            .rows
            .iter()
            .map(|(l, fid)| vec![l.to_string(), format!("{fid:.4}")])
            .collect();
        writeln!(
            f,
            "{}",
            markdown_table(&["layers", "mean ideal fidelity"], &rows)
        )?;

        writeln!(f, "== Ablation: optimiser (single cluster mean) ==")?;
        let rows: Vec<Vec<String>> = self
            .optimizer
            .rows
            .iter()
            .map(|(name, fid, evals)| vec![name.clone(), format!("{fid:.4}"), evals.to_string()])
            .collect();
        writeln!(
            f,
            "{}",
            markdown_table(&["optimiser", "fidelity", "objective evaluations"], &rows)
        )?;

        writeln!(
            f,
            "== Ablation: transfer learning vs cold start (online) =="
        )?;
        writeln!(
            f,
            "{}",
            markdown_table(
                &["strategy", "mean iterations", "mean fidelity"],
                &[
                    vec![
                        "transfer learning".to_string(),
                        format!("{:.1}", self.transfer.transfer_iterations),
                        format!("{:.4}", self.transfer.transfer_fidelity),
                    ],
                    vec![
                        "cold start".to_string(),
                        format!("{:.1}", self.transfer.cold_iterations),
                        format!("{:.4}", self.transfer.cold_fidelity),
                    ],
                ],
            )
        )
    }
}

/// Runs every ablation on the first dataset context.
///
/// # Errors
///
/// Propagates training and embedding errors.
pub fn run(
    contexts: &[DatasetContext],
    config: &ExperimentConfig,
) -> Result<AblationResult, EnqodeError> {
    let ctx = contexts.first().ok_or(EnqodeError::NotTrained)?;
    let label = ctx.features.classes()[0];
    let class_data = ctx.features.class_subset(label)?;
    let eval_limit = config.eval_samples.min(class_data.len()).max(1);
    let eval_samples: Vec<&[f64]> = (0..eval_limit).map(|i| class_data.sample(i)).collect();

    // --- Entangler ablation -------------------------------------------------
    let mut entangler_rows = Vec::new();
    for entangler in [EntanglerKind::Cy, EntanglerKind::Cx, EntanglerKind::Cz] {
        let enq_config = EnqodeConfig {
            ansatz: AnsatzConfig {
                num_qubits: config.num_qubits,
                num_layers: config.num_layers,
                entangler,
            },
            ..config.enqode_config()
        };
        let model = EnqodeModel::fit(class_data.samples(), enq_config)?;
        let mean_fid = mean_fidelity(&model, &eval_samples)?;
        entangler_rows.push((format!("{entangler:?}"), mean_fid));
    }

    // --- Layer ablation ------------------------------------------------------
    let mut layer_rows = Vec::new();
    for layers in [2usize, 4, config.num_layers, config.num_layers + 4] {
        let enq_config = EnqodeConfig {
            ansatz: AnsatzConfig {
                num_qubits: config.num_qubits,
                num_layers: layers,
                entangler: EntanglerKind::Cy,
            },
            ..config.enqode_config()
        };
        let model = EnqodeModel::fit(class_data.samples(), enq_config)?;
        layer_rows.push((layers, mean_fidelity(&model, &eval_samples)?));
    }

    // --- Optimiser ablation --------------------------------------------------
    let base_model = ctx.model_for(label);
    let centroid = base_model.clusters()[0].centroid.clone();
    let ansatz = config.enqode_config().ansatz;
    let objective = FidelityObjective::new(&ansatz, &centroid)?;
    let start = vec![0.1; objective.dimension()];
    let mut optimizer_rows = Vec::new();
    let optimizers: Vec<(&str, Box<dyn Optimizer>)> = vec![
        ("L-BFGS", Box::new(Lbfgs::with_max_iterations(250))),
        (
            "Adam",
            Box::new(Adam {
                max_iterations: 500,
                ..Adam::default()
            }),
        ),
        (
            "Gradient descent",
            Box::new(GradientDescent {
                max_iterations: 500,
                ..GradientDescent::default()
            }),
        ),
        (
            "Nelder-Mead",
            Box::new(NelderMead {
                max_iterations: 2000,
                ..NelderMead::default()
            }),
        ),
    ];
    for (name, optimizer) in optimizers {
        let result = optimizer.minimize(&objective, &start);
        optimizer_rows.push((
            name.to_string(),
            objective.fidelity(&result.x),
            result.evaluations,
        ));
    }

    // --- Transfer learning ablation -------------------------------------------
    let mut transfer_iters = Vec::new();
    let mut transfer_fids = Vec::new();
    let mut cold_iters = Vec::new();
    let mut cold_fids = Vec::new();
    let online_budget = config.enqode_config().online_max_iterations;
    let owned_samples: Vec<Vec<f64>> = eval_samples.iter().map(|s| s.to_vec()).collect();
    for embedding in base_model.embed_batch(&owned_samples)? {
        transfer_iters.push(embedding.iterations as f64);
        transfer_fids.push(embedding.ideal_fidelity);
    }
    for sample in &eval_samples {
        let normalized = enq_data::l2_normalize(sample)?;
        let obj = FidelityObjective::new(&ansatz, &normalized)?;
        let cold =
            Lbfgs::with_max_iterations(online_budget).minimize(&obj, &vec![0.05; obj.dimension()]);
        cold_iters.push(cold.iterations as f64);
        cold_fids.push(obj.fidelity(&cold.x));
    }

    Ok(AblationResult {
        entangler: EntanglerAblation {
            rows: entangler_rows,
        },
        layers: LayerAblation { rows: layer_rows },
        optimizer: OptimizerAblation {
            rows: optimizer_rows,
        },
        transfer: TransferAblation {
            transfer_iterations: mean(&transfer_iters),
            cold_iterations: mean(&cold_iters),
            transfer_fidelity: mean(&transfer_fids),
            cold_fidelity: mean(&cold_fids),
        },
    })
}

fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

fn mean_fidelity(model: &EnqodeModel, samples: &[&[f64]]) -> Result<f64, EnqodeError> {
    // One parallel sweep over the evaluation set via the batch API.
    let owned: Vec<Vec<f64>> = samples.iter().map(|s| s.to_vec()).collect();
    let embeddings = model.embed_batch(&owned)?;
    let acc: f64 = embeddings.iter().map(|e| e.ideal_fidelity).sum();
    Ok(acc / samples.len() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::build_contexts;
    use enq_data::DatasetKind;

    #[test]
    fn ablations_run_on_tiny_config() {
        let cfg = ExperimentConfig::tiny();
        let contexts = build_contexts(&[DatasetKind::MnistLike], &cfg).unwrap();
        let result = run(&contexts, &cfg).unwrap();
        assert_eq!(result.entangler.rows.len(), 3);
        assert_eq!(result.layers.rows.len(), 4);
        assert_eq!(result.optimizer.rows.len(), 4);
        // L-BFGS with analytic gradients should not be the worst optimiser.
        let lbfgs_fid = result.optimizer.rows[0].1;
        assert!(lbfgs_fid > 0.5);
        // Fidelity should not decrease when layers increase from 2 to the
        // configured count.
        let first = result.layers.rows[0].1;
        let last = result.layers.rows[2].1;
        assert!(last >= first - 0.05);
        assert!(result.to_string().contains("Ablation"));
    }
}

//! Figures 6 and 7: circuit depth, total gate count, and physical one-/two-
//! qubit gate counts of the Baseline vs EnQode, per dataset (mean ± σ over
//! samples).

use crate::context::DatasetContext;
use crate::experiment::ExperimentConfig;
use crate::report::{cell, improvement_ratio, markdown_table};
use enq_circuit::{CircuitMetrics, MetricsSummary};
use enqode::EnqodeError;
use std::fmt;

/// The per-dataset rows of Figures 6 and 7.
#[derive(Debug, Clone)]
pub struct Fig67Row {
    /// Dataset display name ("MNIST", "F-MNIST", "CIFAR").
    pub dataset: String,
    /// Baseline circuit-metric statistics across samples.
    pub baseline: MetricsSummary,
    /// EnQode circuit-metric statistics across samples.
    pub enqode: MetricsSummary,
}

/// The full result of the Fig. 6 / Fig. 7 experiment.
#[derive(Debug, Clone)]
pub struct Fig67Result {
    /// One row per dataset.
    pub rows: Vec<Fig67Row>,
}

impl Fig67Result {
    /// Average depth reduction factor (Baseline / EnQode) across datasets.
    pub fn mean_depth_reduction(&self) -> f64 {
        mean(
            self.rows
                .iter()
                .map(|r| improvement_ratio(&r.baseline.depth, &r.enqode.depth)),
        )
    }

    /// Average total-gate reduction factor across datasets.
    pub fn mean_gate_reduction(&self) -> f64 {
        mean(
            self.rows
                .iter()
                .map(|r| improvement_ratio(&r.baseline.total_gates, &r.enqode.total_gates)),
        )
    }

    /// Average one-qubit-gate reduction factor across datasets.
    pub fn mean_one_qubit_reduction(&self) -> f64 {
        mean(
            self.rows
                .iter()
                .map(|r| improvement_ratio(&r.baseline.one_qubit_gates, &r.enqode.one_qubit_gates)),
        )
    }

    /// Average two-qubit-gate reduction factor across datasets.
    pub fn mean_two_qubit_reduction(&self) -> f64 {
        mean(
            self.rows
                .iter()
                .map(|r| improvement_ratio(&r.baseline.two_qubit_gates, &r.enqode.two_qubit_gates)),
        )
    }

    /// Renders the Fig. 6 table (depth and total gates).
    pub fn figure6_markdown(&self) -> String {
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                vec![
                    r.dataset.clone(),
                    cell(&r.baseline.depth),
                    cell(&r.enqode.depth),
                    cell(&r.baseline.total_gates),
                    cell(&r.enqode.total_gates),
                ]
            })
            .collect();
        markdown_table(
            &[
                "dataset",
                "baseline depth",
                "enqode depth",
                "baseline total gates",
                "enqode total gates",
            ],
            &rows,
        )
    }

    /// Renders the Fig. 7 table (physical 1q and 2q gates).
    pub fn figure7_markdown(&self) -> String {
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                vec![
                    r.dataset.clone(),
                    cell(&r.baseline.one_qubit_gates),
                    cell(&r.enqode.one_qubit_gates),
                    cell(&r.baseline.two_qubit_gates),
                    cell(&r.enqode.two_qubit_gates),
                ]
            })
            .collect();
        markdown_table(
            &[
                "dataset",
                "baseline 1q gates",
                "enqode 1q gates",
                "baseline 2q gates",
                "enqode 2q gates",
            ],
            &rows,
        )
    }
}

impl fmt::Display for Fig67Result {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "== Figure 6: circuit depth & total gate count ==")?;
        writeln!(f, "{}", self.figure6_markdown())?;
        writeln!(f, "== Figure 7: physical 1-qubit & 2-qubit gate count ==")?;
        writeln!(f, "{}", self.figure7_markdown())?;
        writeln!(
            f,
            "reduction factors (baseline / enqode): depth {:.1}x, total gates {:.1}x, 1q {:.1}x, 2q {:.1}x",
            self.mean_depth_reduction(),
            self.mean_gate_reduction(),
            self.mean_one_qubit_reduction(),
            self.mean_two_qubit_reduction()
        )
    }
}

fn mean(values: impl Iterator<Item = f64>) -> f64 {
    let v: Vec<f64> = values.collect();
    if v.is_empty() {
        0.0
    } else {
        v.iter().sum::<f64>() / v.len() as f64
    }
}

/// Runs the Fig. 6 / Fig. 7 experiment over the prepared dataset contexts.
///
/// # Errors
///
/// Propagates embedding and transpilation errors.
pub fn run(
    contexts: &[DatasetContext],
    config: &ExperimentConfig,
) -> Result<Fig67Result, EnqodeError> {
    let mut rows = Vec::with_capacity(contexts.len());
    for ctx in contexts {
        let indices = ctx.eval_indices(config.eval_samples);
        let mut baseline_metrics: Vec<CircuitMetrics> = Vec::with_capacity(indices.len());
        let mut enqode_metrics: Vec<CircuitMetrics> = Vec::with_capacity(indices.len());
        for &i in &indices {
            let sample = ctx.features.sample(i);
            let label = ctx.features.labels()[i];

            let baseline_circuit = ctx.baseline.embed(sample)?.circuit;
            let transpiled = ctx.transpiler.transpile(&baseline_circuit)?;
            baseline_metrics.push(transpiled.metrics);

            let embedding = ctx.model_for(label).embed(sample)?;
            let transpiled = ctx.transpiler.transpile(&embedding.circuit)?;
            enqode_metrics.push(transpiled.metrics);
        }
        rows.push(Fig67Row {
            dataset: ctx.kind.name().to_string(),
            baseline: MetricsSummary::from_metrics(&baseline_metrics),
            enqode: MetricsSummary::from_metrics(&enqode_metrics),
        });
    }
    Ok(Fig67Result { rows })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::build_contexts;
    use enq_data::DatasetKind;

    #[test]
    fn enqode_metrics_have_zero_variance_and_beat_baseline() {
        let cfg = ExperimentConfig::tiny();
        let contexts = build_contexts(&[DatasetKind::MnistLike], &cfg).unwrap();
        let result = run(&contexts, &cfg).unwrap();
        assert_eq!(result.rows.len(), 1);
        let row = &result.rows[0];
        // EnQode's fixed ansatz ⇒ zero variability.
        assert!(row.enqode.depth.std_dev.abs() < 1e-12);
        assert!(row.enqode.total_gates.std_dev.abs() < 1e-12);
        // Baseline is deeper and uses more two-qubit gates.
        assert!(row.baseline.depth.mean > row.enqode.depth.mean);
        assert!(row.baseline.two_qubit_gates.mean > row.enqode.two_qubit_gates.mean);
        assert!(result.mean_depth_reduction() > 1.0);
        // Tables render.
        let text = result.to_string();
        assert!(text.contains("Figure 6"));
        assert!(text.contains("MNIST"));
    }
}

//! # enq-bench
//!
//! The benchmark harness that regenerates every table and figure of the
//! EnQode evaluation:
//!
//! * [`fig67`] — circuit depth, total gates, and physical 1q/2q gate counts
//!   (Fig. 6 and Fig. 7),
//! * [`fig8`] — ideal- and noisy-simulation state fidelity (Fig. 8a/8b),
//! * [`fig9`] — online/offline compilation times (Fig. 9a/9b),
//! * [`ablation`] — entangler, layer-count, optimiser, and transfer-learning
//!   ablations for the design choices of Sec. III,
//! * [`serve`] — online-serving throughput and latency through `enq_serve`
//!   (micro-batching, solution cache, hot-path percentiles;
//!   regenerates `BENCH_serve.json`),
//! * [`fit`] — streaming (out-of-core) training vs the full-batch reference
//!   (incremental PCA + mini-batch k-means; regenerates `BENCH_fit.json`),
//! * [`net`] — the `enqd` TCP front door under controlled overload:
//!   goodput, admitted-tail latency, and typed-shed behaviour at 1×/2×/4×
//!   the measured capacity (regenerates `BENCH_net.json`),
//! * [`check`] — the `bench_check` regression gates CI enforces over every
//!   committed `BENCH_*.json` artifact.
//!
//! The `reproduce` binary drives these modules from the command line;
//! `cargo bench` runs criterion timing benchmarks over the same code paths.
//!
//! ```no_run
//! use enq_bench::{context::build_contexts, experiment::ExperimentConfig, fig67};
//! use enq_data::DatasetKind;
//!
//! let config = ExperimentConfig::quick();
//! let contexts = build_contexts(&DatasetKind::all(), &config)?;
//! let result = fig67::run(&contexts, &config)?;
//! println!("{result}");
//! # Ok::<(), enqode::EnqodeError>(())
//! ```

#![warn(missing_docs)]

pub mod ablation;
pub mod alloc_probe;
pub mod check;
pub mod context;
pub mod experiment;
pub mod fig67;
pub mod fig8;
pub mod fig9;
pub mod fit;
pub mod net;
pub mod report;
pub mod serve;

//! Serve-layer throughput benchmark: requests/sec and latency percentiles
//! for the `enq_serve` micro-batched service against the plain
//! one-request-at-a-time `pipeline.embed` loop.
//!
//! The workload models production embedding traffic: a pool of unique
//! samples replayed with a duplication factor (real request streams repeat —
//! the same frames, tiles, and user vectors recur), shuffled
//! deterministically, and issued by several concurrent clients. The serve
//! layer's wins come from three places, and the result separates them
//! honestly:
//!
//! * `sequential_embed_loop` — the baseline: cold fine-tuning per request;
//! * `serve_no_cache` — the serving-machinery overhead leg: cache off, **one
//!   synchronous client**, so its p50 is compute plus exactly what the queue
//!   hop, the batcher wakeup, and the reply path cost a request — the
//!   queueing delay concurrency itself implies is measured by the batched
//!   sweep, not here;
//! * `serve_batched` — the full registry + cache + batcher path, where
//!   repeated samples skip fine-tuning (the reported `cache_hit_rate` shows
//!   exactly how much of the win the cache provided);
//! * `hot_path` — steady-state latency of a pure cache hit;
//! * `rebuild_under_load` — the same compute-path workload (cache off, so
//!   every request fine-tunes) with and without a **background model
//!   rebuild** running on a worker thread. The p99 ratio is the lifecycle
//!   acceptance gate: a rebuild must degrade tail latency by at most 3×,
//!   i.e. it competes for cores but never blocks the serve control plane.

use crate::report::markdown_table;
use enq_data::{generate_synthetic, Dataset, DatasetKind, SyntheticConfig};
use enq_serve::{
    Autopilot, AutopilotEvent, CacheConfig, EmbedService, FireReason, RefreshPolicy, ServeConfig,
    TrafficConfig,
};
use enqode::{AnsatzConfig, EnqodeConfig, EnqodeError, EnqodePipeline, EntanglerKind};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Shape and workload of one serve benchmark run.
#[derive(Debug, Clone)]
pub struct ServeBenchConfig {
    /// Ansatz qubit count (the paper shape is 8).
    pub num_qubits: usize,
    /// Ansatz layer count.
    pub num_layers: usize,
    /// Number of unique samples in the request pool.
    pub unique_samples: usize,
    /// How many times the pool is replayed (duplication factor of the
    /// request stream).
    pub duplication: usize,
    /// Concurrent client threads issuing requests.
    pub clients: usize,
    /// Batch-size sweep for the micro-batched runs.
    pub batch_sizes: Vec<usize>,
    /// Online fine-tuning iteration budget (dominates per-request cost).
    pub online_iterations: usize,
    /// Samples per class of the synthetic corpus the background rebuild
    /// trains over (sized so the rebuild outlasts the measured passes).
    pub rebuild_samples_per_class: usize,
    /// RNG seed for training data, perturbations, and stream shuffling.
    pub seed: u64,
}

impl ServeBenchConfig {
    /// The paper shape (8 qubits) at a scale that finishes in seconds.
    ///
    /// `online_iterations` is calibrated so a cold fine-tune costs a few
    /// hundred microseconds on the SIMD-dispatched kernels — enough that
    /// the measured ratios compare serving structure against compute, not
    /// against single-core scheduling noise. (The pre-SIMD calibration of
    /// 20 iterations dated from when the scalar kernel alone cost that
    /// much.)
    pub fn paper() -> Self {
        Self {
            num_qubits: 8,
            num_layers: 8,
            unique_samples: 48,
            // Real embedding traffic is repeat-heavy (the same frames,
            // tiles, and user vectors recur); 16 replays puts the stream in
            // that regime and gives the cache tiers enough hits to amortise
            // the per-pass thread spawn + queue-hop overhead on one core.
            duplication: 16,
            clients: 8,
            batch_sizes: vec![1, 8, 32],
            online_iterations: 60,
            rebuild_samples_per_class: 4000,
            seed: 0x5EEE,
        }
    }

    /// A seconds-scale smoke shape for tests.
    pub fn tiny() -> Self {
        Self {
            num_qubits: 3,
            num_layers: 4,
            unique_samples: 8,
            duplication: 3,
            clients: 4,
            batch_sizes: vec![1, 4],
            online_iterations: 10,
            rebuild_samples_per_class: 40,
            seed: 0x5EEE,
        }
    }
}

/// Throughput and latency of one measured pass over the request stream.
#[derive(Debug, Clone, Copy)]
pub struct PassStats {
    /// Requests per second over the whole pass.
    pub rps: f64,
    /// Median per-request latency in microseconds.
    pub p50_us: f64,
    /// 99th-percentile per-request latency in microseconds.
    pub p99_us: f64,
}

/// One micro-batched pass at a given batch size.
#[derive(Debug, Clone, Copy)]
pub struct BatchedRow {
    /// `max_batch_size` of the service.
    pub max_batch: usize,
    /// Concurrent clients that drove this row: at least
    /// [`ServeBenchConfig::clients`], raised to `max_batch` so a row's
    /// batch limit can actually be reached (8 clients can never form a
    /// batch of 32).
    pub clients: usize,
    /// The pass statistics.
    pub stats: PassStats,
    /// Fraction of requests served without fine-tuning (cache + dedup).
    pub cache_hit_rate: f64,
    /// Largest micro-batch the batcher formed.
    pub largest_batch: u64,
}

/// The rebuild-under-load leg: compute-path latency with and without a
/// background rebuild competing for cores.
#[derive(Debug, Clone, Copy)]
pub struct RebuildUnderLoad {
    /// Cache-off serve latency with nothing else running.
    pub idle: PassStats,
    /// The same workload while a background rebuild trains on a worker
    /// thread.
    pub under_rebuild: PassStats,
    /// Whether the rebuild was still in flight when the measured passes
    /// ended (it is cancelled afterwards either way). `false` means the
    /// contention window did not cover the whole measurement — resize
    /// [`ServeBenchConfig::rebuild_samples_per_class`].
    pub rebuild_outlasted_measurement: bool,
}

impl RebuildUnderLoad {
    /// The gated ratio: p99 under rebuild over idle p99.
    pub fn p99_ratio(&self) -> f64 {
        self.under_rebuild.p99_us / self.idle.p99_us.max(1e-9)
    }
}

/// The ops-autopilot leg: an hours-compressed drift scenario where the
/// [`Autopilot`] scheduler — not the benchmark — detects audit-fidelity
/// decay and fires a traffic-fed refresh. Records the fidelity collapse,
/// the post-swap recovery, and the serve-tail cost of the unattended
/// rebuild.
#[derive(Debug, Clone, Copy)]
pub struct AutopilotLeg {
    /// The audited mean fidelity the trigger fired on (below the floor).
    pub fidelity_before: f64,
    /// The audited mean fidelity on the same drifted traffic after the
    /// autopilot's refresh swapped (gated `>= fidelity_threshold`).
    pub fidelity_recovered: f64,
    /// The policy floor the autopilot defends.
    pub fidelity_threshold: f64,
    /// Serve p99 (µs) over the pre-drift baseline traffic.
    pub baseline_p99_us: f64,
    /// Serve p99 (µs) over the drift phase, autopilot refresh included.
    pub drift_p99_us: f64,
    /// Refreshes the autopilot fired.
    pub fires: u64,
    /// Background shard compactions it performed.
    pub compactions: u64,
}

impl AutopilotLeg {
    /// The gated ratio: drift-phase p99 (unattended rebuild in flight)
    /// over baseline p99 — bounded by the same 6× rebuild gate.
    pub fn p99_ratio(&self) -> f64 {
        self.drift_p99_us / self.baseline_p99_us.max(1e-9)
    }
}

/// The full serve benchmark result.
#[derive(Debug, Clone)]
pub struct ServeBenchResult {
    /// The configuration that produced this result.
    pub config: ServeBenchConfig,
    /// Cores visible to the process.
    pub cores: usize,
    /// Offline training time for the served pipeline (seconds).
    pub offline_seconds: f64,
    /// Baseline: sequential `pipeline.embed` loop over the stream.
    pub sequential: PassStats,
    /// Micro-batching without the cache (scheduling effects only).
    pub no_cache: PassStats,
    /// The full serve path across the batch-size sweep.
    pub batched: Vec<BatchedRow>,
    /// Steady-state cache-hit latency (service warm, every request hits).
    pub hot: PassStats,
    /// Heap allocations per request over the hot (all-hit) pass, read from
    /// [`crate::alloc_probe`]. `0.0` when the hosting binary installed the
    /// counting allocator and the pooled hot path held its zero-allocation
    /// contract (also `0.0`, vacuously, in un-instrumented binaries — the
    /// committed artifact is written by the instrumented bench only).
    pub hit_allocs_per_request: f64,
    /// Tail latency with a background model rebuild competing for cores.
    pub rebuild: RebuildUnderLoad,
    /// The self-driving lifecycle leg: drift detected and repaired by the
    /// autopilot scheduler, unaided.
    pub autopilot: AutopilotLeg,
}

impl ServeBenchResult {
    /// Best full-path throughput over the sweep.
    pub fn best_batched_rps(&self) -> f64 {
        self.batched.iter().map(|r| r.stats.rps).fold(0.0, f64::max)
    }

    /// Headline ratio: best micro-batched serve throughput over the
    /// sequential embed loop.
    pub fn batched_over_sequential(&self) -> f64 {
        self.best_batched_rps() / self.sequential.rps
    }

    /// Headline ratio: cold median latency over hot (cache-hit) median
    /// latency.
    pub fn cold_over_hot_p50(&self) -> f64 {
        self.sequential.p50_us / self.hot.p50_us
    }

    /// Serving-machinery overhead: cache-off **single-client** median
    /// latency over the bare sequential embed median. Everything above 1×
    /// is what the queue, the batcher thread, and the reply path cost a
    /// request on top of its compute — the figure the pooled
    /// zero-allocation hot path exists to keep bounded. (Driven by one
    /// client on purpose: with N concurrent clients the p50 carries an
    /// ≈N× queueing-delay floor on a single core, which measures load, not
    /// machinery.)
    pub fn serve_overhead_p50_ratio(&self) -> f64 {
        self.no_cache.p50_us / self.sequential.p50_us.max(1e-9)
    }

    /// Largest micro-batch formed anywhere in the sweep. Gated `≥ 9` so
    /// the high-batch row provably exercises batches beyond the default
    /// client count — the regression this catches is the sweep silently
    /// degenerating to small batches.
    pub fn max_largest_batch(&self) -> u64 {
        self.batched
            .iter()
            .map(|r| r.largest_batch)
            .max()
            .unwrap_or(0)
    }

    /// Headline ratio: p99 compute-path latency during a background rebuild
    /// over idle p99 (gated ≤ 3×).
    pub fn rebuild_p99_ratio(&self) -> f64 {
        self.rebuild.p99_ratio()
    }

    /// Headline ratio: drift-phase serve p99 (autopilot refresh in flight)
    /// over baseline p99 (gated ≤ 6×, the rebuild gate).
    pub fn autopilot_p99_ratio(&self) -> f64 {
        self.autopilot.p99_ratio()
    }

    /// Renders the result as the `BENCH_serve.json` document.
    pub fn to_json(&self) -> String {
        let batched_rows: Vec<String> = self
            .batched
            .iter()
            .map(|r| {
                format!(
                    "    {{\"max_batch\": {}, \"row_clients\": {}, \"rps\": {:.1}, \
                     \"p50_us\": {:.1}, \"p99_us\": {:.1}, \"cache_hit_rate\": {:.4}, \
                     \"largest_batch\": {}}}",
                    r.max_batch,
                    r.clients,
                    r.stats.rps,
                    r.stats.p50_us,
                    r.stats.p99_us,
                    r.cache_hit_rate,
                    r.largest_batch
                )
            })
            .collect();
        format!(
            "{{\n  \"name\": \"serve_throughput_{}q{}l\",\n  \"cores\": {},\n  \
             \"workload\": {{\"unique_samples\": {}, \"requests\": {}, \"duplication\": {}, \
             \"clients\": {}, \"online_iterations\": {}}},\n  \
             \"offline_train_s\": {:.3},\n  \
             \"sequential_embed_loop\": {},\n  \
             \"serve_no_cache\": {},\n  \
             \"serve_batched\": [\n{}\n  ],\n  \
             \"max_largest_batch\": {},\n  \
             \"cache_hot_path\": {},\n  \
             \"hit_allocs_per_request\": {:.2},\n  \
             \"rebuild_under_load\": {{\"rebuild_idle_p99_us\": {:.1}, \
             \"rebuild_under_p99_us\": {:.1}, \"rebuild_outlasted_measurement\": {}}},\n  \
             \"autopilot\": {{\"autopilot_fidelity_before\": {:.4}, \
             \"autopilot_fidelity_threshold\": {:.2}, \"autopilot_fidelity_recovered\": {:.4}, \
             \"autopilot_baseline_p99_us\": {:.1}, \"autopilot_drift_p99_us\": {:.1}, \
             \"autopilot_fires\": {}, \"autopilot_compactions\": {}}},\n  \
             \"acceptance\": {{\"batched_over_sequential\": {:.2}, \"cold_over_hot_p50\": {:.2}, \
             \"serve_overhead_p50_ratio\": {:.2}, \"rebuild_p99_ratio\": {:.2}, \
             \"autopilot_p99_ratio\": {:.2}}}\n}}\n",
            self.config.num_qubits,
            self.config.num_layers,
            self.cores,
            self.config.unique_samples,
            self.config.unique_samples * self.config.duplication,
            self.config.duplication,
            self.config.clients,
            self.config.online_iterations,
            self.offline_seconds,
            json_pass(&self.sequential),
            json_pass(&self.no_cache),
            batched_rows.join(",\n"),
            self.max_largest_batch(),
            json_pass(&self.hot),
            self.hit_allocs_per_request,
            self.rebuild.idle.p99_us,
            self.rebuild.under_rebuild.p99_us,
            self.rebuild.rebuild_outlasted_measurement,
            self.autopilot.fidelity_before,
            self.autopilot.fidelity_threshold,
            self.autopilot.fidelity_recovered,
            self.autopilot.baseline_p99_us,
            self.autopilot.drift_p99_us,
            self.autopilot.fires,
            self.autopilot.compactions,
            self.batched_over_sequential(),
            self.cold_over_hot_p50(),
            self.serve_overhead_p50_ratio(),
            self.rebuild_p99_ratio(),
            self.autopilot_p99_ratio(),
        )
    }

    /// Renders a human-readable summary table.
    pub fn to_markdown(&self) -> String {
        let mut rows = vec![
            vec![
                "sequential embed loop".to_string(),
                format!("{:.0}", self.sequential.rps),
                format!("{:.0}", self.sequential.p50_us),
                format!("{:.0}", self.sequential.p99_us),
                "-".to_string(),
            ],
            vec![
                "serve (cache off, 1 client)".to_string(),
                format!("{:.0}", self.no_cache.rps),
                format!("{:.0}", self.no_cache.p50_us),
                format!("{:.0}", self.no_cache.p99_us),
                "0".to_string(),
            ],
        ];
        for r in &self.batched {
            rows.push(vec![
                format!("serve (batch ≤ {}, {} clients)", r.max_batch, r.clients),
                format!("{:.0}", r.stats.rps),
                format!("{:.0}", r.stats.p50_us),
                format!("{:.0}", r.stats.p99_us),
                format!("{:.0}%", r.cache_hit_rate * 100.0),
            ]);
        }
        rows.push(vec![
            "cache hot path".to_string(),
            format!("{:.0}", self.hot.rps),
            format!("{:.0}", self.hot.p50_us),
            format!("{:.0}", self.hot.p99_us),
            "100%".to_string(),
        ]);
        rows.push(vec![
            "compute path, idle".to_string(),
            format!("{:.0}", self.rebuild.idle.rps),
            format!("{:.0}", self.rebuild.idle.p50_us),
            format!("{:.0}", self.rebuild.idle.p99_us),
            "0".to_string(),
        ]);
        rows.push(vec![
            "compute path, rebuild running".to_string(),
            format!("{:.0}", self.rebuild.under_rebuild.rps),
            format!("{:.0}", self.rebuild.under_rebuild.p50_us),
            format!("{:.0}", self.rebuild.under_rebuild.p99_us),
            "0".to_string(),
        ]);
        markdown_table(
            &["path", "req/s", "p50 (µs)", "p99 (µs)", "hit rate"],
            &rows,
        )
    }
}

impl fmt::Display for ServeBenchResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "== Serve throughput ({}q/{}l, {} unique × {} replays, {} clients, {} core(s)) ==",
            self.config.num_qubits,
            self.config.num_layers,
            self.config.unique_samples,
            self.config.duplication,
            self.config.clients,
            self.cores
        )?;
        writeln!(f, "{}", self.to_markdown())?;
        writeln!(
            f,
            "batched serve vs sequential loop: {:.2}x; cold vs hot p50: {:.1}x; \
             serve overhead p50: {:.2}x; hit allocs/request: {:.2}; \
             p99 under background rebuild: {:.2}x idle{}",
            self.batched_over_sequential(),
            self.cold_over_hot_p50(),
            self.serve_overhead_p50_ratio(),
            self.hit_allocs_per_request,
            self.rebuild_p99_ratio(),
            if self.rebuild.rebuild_outlasted_measurement {
                ""
            } else {
                " (rebuild finished early!)"
            },
        )?;
        writeln!(
            f,
            "autopilot drift recovery: fidelity {:.3} -> {:.3} (floor {:.2}), \
             drift p99 {:.2}x baseline, {} fire(s), {} compaction(s)",
            self.autopilot.fidelity_before,
            self.autopilot.fidelity_recovered,
            self.autopilot.fidelity_threshold,
            self.autopilot_p99_ratio(),
            self.autopilot.fires,
            self.autopilot.compactions,
        )
    }
}

fn json_pass(p: &PassStats) -> String {
    format!(
        "{{\"rps\": {:.1}, \"p50_us\": {:.1}, \"p99_us\": {:.1}}}",
        p.rps, p.p50_us, p.p99_us
    )
}

fn percentile_us(sorted: &[Duration], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * q).round() as usize;
    sorted[idx.min(sorted.len() - 1)].as_secs_f64() * 1e6
}

fn pass_stats(mut latencies: Vec<Duration>, wall: Duration) -> PassStats {
    latencies.sort_unstable();
    PassStats {
        rps: latencies.len() as f64 / wall.as_secs_f64().max(1e-12),
        p50_us: percentile_us(&latencies, 0.50),
        p99_us: percentile_us(&latencies, 0.99),
    }
}

/// A built workload: the served pipeline, the replayed request stream, and
/// the offline training time in seconds.
type Workload = (Arc<EnqodePipeline>, Vec<Vec<f64>>, f64);

/// Builds the served pipeline and the replayed request stream.
fn build_workload(config: &ServeBenchConfig) -> Result<Workload, EnqodeError> {
    let dataset: Dataset = generate_synthetic(
        DatasetKind::MnistLike,
        &SyntheticConfig {
            classes: 2,
            samples_per_class: 12,
            seed: config.seed,
        },
    )?;
    let model_config = EnqodeConfig {
        ansatz: AnsatzConfig {
            num_qubits: config.num_qubits,
            num_layers: config.num_layers,
            entangler: EntanglerKind::Cy,
        },
        fidelity_threshold: 0.85,
        max_clusters: 3,
        offline_max_iterations: 80,
        offline_restarts: 1,
        online_max_iterations: config.online_iterations,
        offline_rescue: false,
        seed: config.seed,
    };
    let train_start = Instant::now();
    let pipeline = Arc::new(EnqodePipeline::build(&dataset, model_config)?);
    let offline_seconds = train_start.elapsed().as_secs_f64();

    // Unique pool: perturbed training samples (inference-like traffic near
    // the training distribution, so fine-tuning converges realistically).
    let mut rng = StdRng::seed_from_u64(config.seed ^ 0xAB);
    let unique: Vec<Vec<f64>> = (0..config.unique_samples)
        .map(|i| {
            dataset
                .sample(i % dataset.len())
                .iter()
                .map(|v| v + rng.gen_range(-0.02..0.02))
                .collect()
        })
        .collect();
    // Replayed stream, deterministically shuffled.
    let mut stream: Vec<Vec<f64>> = Vec::with_capacity(unique.len() * config.duplication);
    for _ in 0..config.duplication {
        stream.extend(unique.iter().cloned());
    }
    for i in (1..stream.len()).rev() {
        let j = rng.gen_range(0..i + 1);
        stream.swap(i, j);
    }
    Ok((pipeline, stream, offline_seconds))
}

/// Issues the stream through the service from `clients` concurrent threads
/// and returns (wall time, per-request latencies).
fn drive_service(
    service: &Arc<EmbedService>,
    stream: &[Vec<f64>],
    clients: usize,
) -> (Duration, Vec<Duration>) {
    let start = Instant::now();
    let chunk = stream.len().div_ceil(clients.max(1));
    let latencies: Vec<Duration> = std::thread::scope(|scope| {
        let handles: Vec<_> = stream
            .chunks(chunk)
            .map(|part| {
                let service = Arc::clone(service);
                scope.spawn(move || {
                    part.iter()
                        .map(|sample| {
                            service
                                .embed("bench", sample)
                                .expect("bench requests are valid")
                                .latency
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("client thread"))
            .collect()
    });
    (start.elapsed(), latencies)
}

fn serve_config(max_batch: usize, cache_capacity: usize) -> ServeConfig {
    ServeConfig {
        max_batch_size: max_batch,
        // Greedy flush: batch whatever is queued, never trade latency for
        // batch size — with synchronous clients a deadline would only stall
        // the stream.
        flush_deadline: Duration::ZERO,
        cache: CacheConfig {
            capacity: cache_capacity,
            quantum: 1e-6,
            shards: 16,
        },
        ..Default::default()
    }
}

/// Runs the serve benchmark.
///
/// # Errors
///
/// Propagates training and embedding errors.
pub fn run(config: &ServeBenchConfig) -> Result<ServeBenchResult, EnqodeError> {
    let (pipeline, stream, offline_seconds) = build_workload(config)?;
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());

    // Baseline: one-request-at-a-time pipeline.embed over the same stream.
    let mut seq_latencies = Vec::with_capacity(stream.len());
    let seq_start = Instant::now();
    for sample in &stream {
        let t = Instant::now();
        let _ = pipeline.embed(sample)?;
        seq_latencies.push(t.elapsed());
    }
    let sequential = pass_stats(seq_latencies, seq_start.elapsed());

    // Serving-machinery overhead: cache off, one synchronous client. Every
    // request pays the queue hop, the batcher wakeup, and the reply path on
    // top of its compute, with no queueing delay from concurrency — the p50
    // over the sequential baseline is exactly what the machinery costs, the
    // figure the `serve_overhead_p50_ratio` gate bounds.
    let no_cache = {
        let service = Arc::new(EmbedService::new(serve_config(
            config.batch_sizes.last().copied().unwrap_or(32),
            0,
        )));
        service.register_model("bench", Arc::clone(&pipeline));
        let (wall, latencies) = drive_service(&service, &stream, 1);
        pass_stats(latencies, wall)
    };

    // The full serve path across the batch-size sweep (fresh service and
    // cold cache per row). Each row gets at least `max_batch` clients —
    // with fewer concurrent submitters than the batch limit, the limit can
    // never be reached and the row would silently measure a smaller batch
    // shape than its label claims.
    let mut batched = Vec::new();
    for &max_batch in &config.batch_sizes {
        let row_clients = config.clients.max(max_batch);
        let service = Arc::new(EmbedService::new(serve_config(max_batch, 1 << 14)));
        service.register_model("bench", Arc::clone(&pipeline));
        let (wall, latencies) = drive_service(&service, &stream, row_clients);
        let stats = service.stats();
        let answered = stats.cache_hits + stats.batch_dedup_hits + stats.computed;
        batched.push(BatchedRow {
            max_batch,
            clients: row_clients,
            stats: pass_stats(latencies, wall),
            cache_hit_rate: if answered == 0 {
                0.0
            } else {
                (stats.cache_hits + stats.batch_dedup_hits) as f64 / answered as f64
            },
            largest_batch: stats.largest_batch,
        });
    }

    // Steady-state hot path: warm the cache with the full stream, then
    // measure pure hits through `embed_direct` — the caller-thread path that
    // isolates the cache-hit cost (registry resolve + feature extraction +
    // lookup) from batcher scheduling.
    let (hot, hit_allocs_per_request) = {
        let service = Arc::new(EmbedService::new(serve_config(
            config.batch_sizes.last().copied().unwrap_or(32),
            1 << 14,
        )));
        service.register_model("bench", Arc::clone(&pipeline));
        // Fill every cache bucket, then warm this thread's scratch keys
        // (`embed_direct` uses a thread-local; the fill pass only warmed
        // the batcher's) so the measured window starts allocation-free.
        let _ = drive_service(&service, &stream, config.clients);
        for sample in stream.iter().take(4) {
            let _ = service
                .embed_direct("bench", sample)
                .expect("warmed requests are valid");
        }
        let mut latencies = Vec::with_capacity(stream.len());
        let allocs_before = crate::alloc_probe::allocations();
        let hot_start = Instant::now();
        for sample in &stream {
            let response = service
                .embed_direct("bench", sample)
                .expect("warmed requests are valid");
            debug_assert_eq!(response.source, enq_serve::SolutionSource::CacheHit);
            latencies.push(response.latency);
        }
        let wall = hot_start.elapsed();
        // Allocation accounting per hit, 0.0 on the pooled hot path (only
        // meaningful in binaries that installed the counting allocator —
        // see `alloc_probe`).
        let allocs = crate::alloc_probe::allocations() - allocs_before;
        (
            pass_stats(latencies, wall),
            allocs as f64 / stream.len() as f64,
        )
    };

    // Rebuild-under-load: the compute path (cache off, every request
    // fine-tunes) measured idle, then again with a background rebuild of
    // the same model id training on a worker thread. The rebuild is sized
    // to outlast the measured passes and cancelled afterwards, so no swap
    // perturbs the measurement — the leg isolates pure core contention.
    let rebuild = {
        let service = Arc::new(EmbedService::new(serve_config(
            config.batch_sizes.last().copied().unwrap_or(32),
            0,
        )));
        service.register_model("bench", Arc::clone(&pipeline));
        let measure = |service: &Arc<EmbedService>| {
            let mut latencies = Vec::new();
            let mut wall = Duration::ZERO;
            for _ in 0..2 {
                let (pass_wall, pass_latencies) = drive_service(service, &stream, config.clients);
                wall += pass_wall;
                latencies.extend(pass_latencies);
            }
            pass_stats(latencies, wall)
        };
        let idle = measure(&service);
        let rebuild_source = enq_data::SyntheticSource::new(
            DatasetKind::MnistLike,
            &SyntheticConfig {
                classes: 2,
                samples_per_class: config.rebuild_samples_per_class,
                seed: config.seed ^ 0xBEEF,
            },
        )?;
        let ticket = match service.rebuild_controller().start(
            "bench",
            rebuild_source,
            enq_serve::RebuildSpec::new(
                EnqodeConfig {
                    ansatz: AnsatzConfig {
                        num_qubits: config.num_qubits,
                        num_layers: config.num_layers,
                        entangler: EntanglerKind::Cy,
                    },
                    offline_max_iterations: 80,
                    offline_restarts: 1,
                    online_max_iterations: config.online_iterations,
                    offline_rescue: false,
                    seed: config.seed,
                    ..EnqodeConfig::default()
                },
                enqode::StreamingFitConfig {
                    chunk_size: 128,
                    clusters_per_class: 3,
                    passes: 2,
                    polish_passes: 1,
                    ..Default::default()
                },
            ),
        ) {
            Ok(ticket) => ticket,
            Err(enq_serve::ServeError::Embed(e)) => return Err(e),
            Err(e) => return Err(EnqodeError::InvalidConfig(e.to_string())),
        };
        let under_rebuild = measure(&service);
        let rebuild_outlasted_measurement = !ticket.is_finished();
        ticket.cancel();
        let _ = ticket.wait();
        RebuildUnderLoad {
            idle,
            under_rebuild,
            rebuild_outlasted_measurement,
        }
    };

    let autopilot = run_autopilot_leg(config.seed)?;

    Ok(ServeBenchResult {
        config: config.clone(),
        cores,
        offline_seconds,
        sequential,
        no_cache,
        batched,
        hot,
        hit_allocs_per_request,
        rebuild,
        autopilot,
    })
}

/// Drives the hours-compressed drift scenario of `tests/autopilot_soak.rs`
/// as a measured benchmark leg: baseline in-distribution traffic, then a
/// hard distribution shift that the [`Autopilot`] must detect (audit
/// fidelity below the floor) and repair (traffic-fed refresh) on its own.
/// Deliberately runs on a small 3-qubit shape: the leg measures lifecycle
/// behaviour and its serve-tail cost, not embedding compute.
fn run_autopilot_leg(seed: u64) -> Result<AutopilotLeg, EnqodeError> {
    const FIDELITY_FLOOR: f64 = 0.55;
    let dataset = generate_synthetic(
        DatasetKind::MnistLike,
        &SyntheticConfig {
            classes: 2,
            samples_per_class: 8,
            seed,
        },
    )?;
    let model_config = EnqodeConfig {
        ansatz: AnsatzConfig {
            num_qubits: 3,
            num_layers: 4,
            entangler: EntanglerKind::Cy,
        },
        fidelity_threshold: 0.8,
        max_clusters: 4,
        offline_max_iterations: 40,
        offline_restarts: 1,
        online_max_iterations: 15,
        offline_rescue: false,
        seed,
    };
    let pipeline = Arc::new(EnqodePipeline::build(&dataset, model_config)?);
    let service = Arc::new(EmbedService::new(ServeConfig {
        flush_deadline: Duration::ZERO,
        traffic: TrafficConfig {
            enabled: true,
            buffer_samples: 32,
            audit_window: 64,
            ..Default::default()
        },
        ..Default::default()
    }));
    service.register_model("autopilot", Arc::clone(&pipeline));
    let policy = RefreshPolicy {
        min_requests: 48,
        min_fidelity: FIDELITY_FLOOR,
        hit_rate_drop: 0.0,
        audit_samples: 64,
        hysteresis_polls: 2,
        cooldown_polls: 5,
        jitter_polls: 2,
        poll_interval: Duration::from_millis(4),
        compact_above_shards: 3,
        stream: enqode::StreamingFitConfig {
            chunk_size: 16,
            clusters_per_class: 8,
            passes: 2,
            polish_passes: 1,
            ..Default::default()
        },
        ..RefreshPolicy::default()
    };
    let autopilot = Autopilot::spawn(Arc::clone(&service), policy);
    let mut rng = StdRng::seed_from_u64(seed ^ 0xA0_70);

    // Baseline: in-distribution traffic, each request distinct (cache
    // misses, so every one is recorded and fine-tuned).
    let mut baseline_latencies = Vec::new();
    for _ in 0..400 {
        let i = rng.gen_range(0..dataset.len());
        let sample: Vec<f64> = dataset
            .sample(i)
            .iter()
            .map(|v| v + rng.gen_range(-1e-3..1e-3))
            .collect();
        let t = Instant::now();
        service
            .embed("autopilot", &sample)
            .expect("baseline requests are valid");
        baseline_latencies.push(t.elapsed());
    }

    // Drift: tight clusters around unseen large-amplitude prototypes, far
    // from every trained centroid, served until the autopilot's refresh
    // lands.
    let raw_dim = dataset.sample(0).len();
    let prototypes: Vec<Vec<f64>> = (0..3)
        .map(|_| (0..raw_dim).map(|_| rng.gen_range(-8.0..8.0)).collect())
        .collect();
    let drift_sample = |rng: &mut StdRng| -> Vec<f64> {
        let p = &prototypes[rng.gen_range(0..prototypes.len())];
        p.iter().map(|v| v + rng.gen_range(-0.02..0.02)).collect()
    };
    let mut drift_latencies = Vec::new();
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        for _ in 0..60 {
            let sample = drift_sample(&mut rng);
            let t = Instant::now();
            service
                .embed("autopilot", &sample)
                .expect("drift requests are valid");
            drift_latencies.push(t.elapsed());
        }
        if autopilot.stats().refresh_successes >= 1 {
            break;
        }
        if Instant::now() >= deadline {
            return Err(EnqodeError::InvalidConfig(format!(
                "autopilot never completed a refresh under drift: {:?}",
                autopilot.stats()
            )));
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    let fidelity_before = autopilot
        .drain_events()
        .iter()
        .find_map(|e| match e {
            AutopilotEvent::Fired {
                reason: FireReason::FidelityDecay { observed, .. },
                ..
            } => Some(*observed),
            _ => None,
        })
        .ok_or_else(|| {
            EnqodeError::InvalidConfig("autopilot fired without a fidelity-decay event".into())
        })?;

    // Recovery: refill the audit ring with post-swap drifted traffic and
    // re-audit against the refreshed model.
    for _ in 0..120 {
        let sample = drift_sample(&mut rng);
        service
            .embed("autopilot", &sample)
            .expect("recovery requests are valid");
    }
    let recovered = service
        .spot_audit("autopilot", 64)
        .ok_or_else(|| EnqodeError::InvalidConfig("post-swap audit ring is empty".into()))?;

    let stats = autopilot.stats();
    let mut baseline = baseline_latencies;
    let mut drift = drift_latencies;
    baseline.sort_unstable();
    drift.sort_unstable();
    Ok(AutopilotLeg {
        fidelity_before,
        fidelity_recovered: recovered.mean_fidelity,
        fidelity_threshold: FIDELITY_FLOOR,
        baseline_p99_us: percentile_us(&baseline, 0.99),
        drift_p99_us: percentile_us(&drift, 0.99),
        fires: stats.fires,
        compactions: stats.compactions,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_serve_bench_produces_consistent_results() {
        let result = run(&ServeBenchConfig::tiny()).unwrap();
        assert!(result.sequential.rps > 0.0);
        assert!(result.no_cache.rps > 0.0);
        assert_eq!(result.batched.len(), 2);
        for row in &result.batched {
            assert!(row.stats.rps > 0.0);
            assert!(row.stats.p99_us >= row.stats.p50_us);
            assert!(
                row.cache_hit_rate > 0.0,
                "a duplicated stream must produce cache hits"
            );
        }
        for row in &result.batched {
            assert!(
                row.clients >= row.max_batch,
                "a row must have enough clients to reach its batch limit"
            );
        }
        assert!(result.hot.p50_us > 0.0);
        assert!(result.cold_over_hot_p50() > 1.0);
        assert!(result.serve_overhead_p50_ratio() > 0.0);
        assert!(result.max_largest_batch() >= 1);
        // No counting allocator is installed in the test binary, so the
        // probe must read exactly zero (the field is only meaningful in
        // the instrumented bench binary).
        assert_eq!(result.hit_allocs_per_request, 0.0);
        assert!(result.rebuild.idle.p99_us > 0.0);
        assert!(result.rebuild.under_rebuild.p99_us > 0.0);
        assert!(result.rebuild_p99_ratio() > 0.0);
        // The autopilot leg fired (on the benchmark's own drift scenario)
        // and recovered above its recorded floor.
        assert!(result.autopilot.fires >= 1);
        assert!(result.autopilot.fidelity_before < result.autopilot.fidelity_threshold);
        assert!(result.autopilot.fidelity_recovered >= result.autopilot.fidelity_threshold);
        assert!(result.autopilot_p99_ratio() > 0.0);
        let json = result.to_json();
        assert!(json.contains("\"serve_batched\""));
        assert!(json.contains("\"acceptance\""));
        assert!(json.contains("\"rebuild_p99_ratio\""));
        assert!(json.contains("\"rebuild_under_load\""));
        assert!(json.contains("\"serve_overhead_p50_ratio\""));
        assert!(json.contains("\"hit_allocs_per_request\""));
        assert!(json.contains("\"max_largest_batch\""));
        assert!(json.contains("\"autopilot_fidelity_recovered\""));
        assert!(json.contains("\"autopilot_fidelity_threshold\""));
        assert!(json.contains("\"autopilot_p99_ratio\""));
        assert!(result.to_string().contains("Serve throughput"));
        assert!(result.to_string().contains("background rebuild"));
        assert!(result.to_string().contains("autopilot drift recovery"));
    }
}

//! Regenerates the paper's figures from the command line.
//!
//! ```text
//! cargo run --release -p enq-bench --bin reproduce -- [fig6|fig7|fig8|fig9|ablation|all] [--quick|--full]
//! ```
//!
//! `--quick` (default) uses a reduced sample budget with the paper's 8-qubit,
//! 8-layer configuration; `--full` mirrors the paper's 5 classes × 500
//! samples per dataset.

use enq_bench::context::build_contexts;
use enq_bench::experiment::ExperimentConfig;
use enq_bench::{ablation, fig67, fig8, fig9};
use enq_data::DatasetKind;
use std::process::ExitCode;
use std::time::Instant;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut target = "all".to_string();
    let mut config = ExperimentConfig::quick();
    for arg in &args {
        match arg.as_str() {
            "--quick" => config = ExperimentConfig::quick(),
            "--full" => config = ExperimentConfig::full(),
            "--tiny" => config = ExperimentConfig::tiny(),
            "fig6" | "fig7" | "fig67" | "fig8" | "fig9" | "ablation" | "all" => {
                target = arg.clone();
            }
            "--help" | "-h" => {
                print_usage();
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument: {other}");
                print_usage();
                return ExitCode::FAILURE;
            }
        }
    }

    println!(
        "EnQode reproduction harness — target: {target}, qubits: {}, layers: {}, \
         classes: {}, samples/class: {}, eval samples: {}, noisy samples: {}",
        config.num_qubits,
        config.num_layers,
        config.classes,
        config.samples_per_class,
        config.eval_samples,
        config.noisy_samples
    );

    let start = Instant::now();
    let kinds = DatasetKind::all();
    println!("preparing datasets and training EnQode models (offline phase)…");
    let contexts = match build_contexts(&kinds, &config) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("failed to prepare datasets: {e}");
            return ExitCode::FAILURE;
        }
    };
    for ctx in &contexts {
        println!(
            "  {}: {} samples, {} clusters across {} classes, offline {:.2} s",
            ctx.kind,
            ctx.features.len(),
            ctx.total_clusters(),
            ctx.class_models.len(),
            ctx.offline_seconds
        );
    }

    let result = run_target(&target, &contexts, &config);
    match result {
        Ok(()) => {
            println!("total wall-clock: {:.1} s", start.elapsed().as_secs_f64());
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("experiment failed: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run_target(
    target: &str,
    contexts: &[enq_bench::context::DatasetContext],
    config: &ExperimentConfig,
) -> Result<(), enqode::EnqodeError> {
    match target {
        "fig6" | "fig7" | "fig67" => {
            let result = fig67::run(contexts, config)?;
            println!("{result}");
        }
        "fig8" => {
            let result = fig8::run(contexts, config)?;
            println!("{result}");
        }
        "fig9" => {
            let result = fig9::run(contexts, config)?;
            println!("{result}");
        }
        "ablation" => {
            let result = ablation::run(contexts, config)?;
            println!("{result}");
        }
        _ => {
            let f67 = fig67::run(contexts, config)?;
            println!("{f67}");
            let f8 = fig8::run(contexts, config)?;
            println!("{f8}");
            let f9 = fig9::run(contexts, config)?;
            println!("{f9}");
            let ab = ablation::run(contexts, config)?;
            println!("{ab}");
        }
    }
    Ok(())
}

fn print_usage() {
    println!(
        "usage: reproduce [fig6|fig7|fig8|fig9|ablation|all] [--quick|--full|--tiny]\n\
         regenerates the corresponding figure(s) of the EnQode paper"
    );
}

//! CI regression gate over the committed benchmark artifacts.
//!
//! `cargo run -p enq_bench --bin bench_check [root]` parses
//! `BENCH_symbolic.json`, `BENCH_serve.json`, and `BENCH_fit.json` under
//! `root` (default: the repository root) and exits non-zero if any recorded
//! gate field regresses past its threshold — or if an artifact is missing or
//! no longer parseable, which would otherwise silently disable its gate.

use enq_bench::check::run_checks;
use std::path::PathBuf;

fn main() {
    let root = std::env::args().nth(1).map_or_else(
        || PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../.."),
        PathBuf::from,
    );
    println!("bench_check: gating artifacts under {}", root.display());
    match run_checks(&root) {
        Ok(outcomes) => {
            let mut failed = 0usize;
            for outcome in &outcomes {
                println!("{outcome}");
                if !outcome.passed {
                    failed += 1;
                }
            }
            if failed > 0 {
                eprintln!("bench_check: {failed} gate(s) regressed");
                std::process::exit(1);
            }
            println!("bench_check: all {} gate(s) hold", outcomes.len());
        }
        Err(message) => {
            eprintln!("bench_check: {message}");
            std::process::exit(1);
        }
    }
}

//! Per-dataset evaluation context shared by all figures: prepared features,
//! trained per-class EnQode models, the Baseline embedder, and the device
//! transpiler.

use crate::experiment::{evaluation_indices, prepare_dataset, ExperimentConfig};
use enq_circuit::{Topology, Transpiler};
use enq_data::{Dataset, DatasetKind};
use enqode::{BaselineEmbedder, EnqodeError, EnqodeModel};

/// Everything needed to evaluate one dataset.
#[derive(Debug, Clone)]
pub struct DatasetContext {
    /// The dataset surrogate being evaluated.
    pub kind: DatasetKind,
    /// PCA-reduced, normalised feature vectors with labels.
    pub features: Dataset,
    /// One trained EnQode model per class, keyed by label.
    pub class_models: Vec<(usize, EnqodeModel)>,
    /// Transpiler targeting the linear section of the heavy-hex device.
    pub transpiler: Transpiler,
    /// The exact-embedding Baseline.
    pub baseline: BaselineEmbedder,
    /// Total offline (clustering + per-cluster training) time in seconds.
    pub offline_seconds: f64,
}

impl DatasetContext {
    /// Prepares the dataset and trains all per-class models.
    ///
    /// # Errors
    ///
    /// Propagates data-preparation and training errors.
    pub fn build(kind: DatasetKind, config: &ExperimentConfig) -> Result<Self, EnqodeError> {
        let prepared = prepare_dataset(kind, config)?;
        let enqode_config = config.enqode_config();
        let mut class_models = Vec::new();
        let mut offline_seconds = 0.0;
        for label in prepared.features.classes() {
            let class_data = prepared.features.class_subset(label)?;
            let model = EnqodeModel::fit(class_data.samples(), enqode_config.clone())?;
            offline_seconds += model.offline_duration().as_secs_f64();
            class_models.push((label, model));
        }
        Ok(Self {
            kind,
            features: prepared.features,
            class_models,
            transpiler: Transpiler::new(Topology::linear(config.num_qubits)),
            baseline: BaselineEmbedder::new(config.num_qubits),
            offline_seconds,
        })
    }

    /// Returns the trained model of a class label.
    ///
    /// # Panics
    ///
    /// Panics if the label was not part of the dataset (callers iterate the
    /// dataset's own labels).
    pub fn model_for(&self, label: usize) -> &EnqodeModel {
        &self
            .class_models
            .iter()
            .find(|(l, _)| *l == label)
            .expect("label comes from the dataset")
            .1
    }

    /// Returns the total number of trained clusters across classes.
    pub fn total_clusters(&self) -> usize {
        self.class_models
            .iter()
            .map(|(_, m)| m.num_clusters())
            .sum()
    }

    /// Returns up to `limit` sample indices used for evaluation.
    pub fn eval_indices(&self, limit: usize) -> Vec<usize> {
        evaluation_indices(&self.features, limit)
    }
}

/// Builds the contexts for every requested dataset.
///
/// # Errors
///
/// Propagates per-dataset errors.
pub fn build_contexts(
    kinds: &[DatasetKind],
    config: &ExperimentConfig,
) -> Result<Vec<DatasetContext>, EnqodeError> {
    kinds
        .iter()
        .map(|&k| DatasetContext::build(k, config))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn context_builds_and_trains() {
        let cfg = ExperimentConfig::tiny();
        let ctx = DatasetContext::build(DatasetKind::MnistLike, &cfg).unwrap();
        assert_eq!(ctx.class_models.len(), 2);
        assert!(ctx.total_clusters() >= 2);
        assert!(ctx.offline_seconds > 0.0);
        assert_eq!(ctx.baseline.num_qubits(), cfg.num_qubits);
        let idx = ctx.eval_indices(4);
        assert_eq!(idx.len(), 4);
        // model_for works for every label in the dataset.
        for &label in &ctx.features.classes() {
            assert!(ctx.model_for(label).num_clusters() >= 1);
        }
    }
}

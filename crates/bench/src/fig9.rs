//! Figure 9: compilation times — Baseline vs EnQode online compilation
//! (Fig. 9a), and EnQode's offline vs online breakdown (Fig. 9b).

use crate::context::DatasetContext;
use crate::experiment::ExperimentConfig;
use crate::report::{cell, markdown_table};
use enq_circuit::MetricStats;
use enqode::EnqodeError;
use std::fmt;
use std::time::Instant;

/// Per-dataset compile-time statistics (seconds).
#[derive(Debug, Clone)]
pub struct Fig9Row {
    /// Dataset display name.
    pub dataset: String,
    /// Baseline per-sample compile time (synthesis + transpilation).
    pub baseline_compile: MetricStats,
    /// EnQode per-sample online compile time (fine-tune + bind +
    /// transpilation), measured sequentially.
    pub enqode_online: MetricStats,
    /// EnQode parallel batch-embedding throughput (samples/s) through
    /// `embed_batch`, the production serving path.
    pub enqode_batch_throughput: f64,
    /// EnQode one-off offline time (clustering + per-cluster training) for
    /// the whole dataset (all classes).
    pub enqode_offline_seconds: f64,
}

/// The result of the Fig. 9 experiment.
#[derive(Debug, Clone)]
pub struct Fig9Result {
    /// One row per dataset.
    pub rows: Vec<Fig9Row>,
}

impl Fig9Result {
    /// Average ratio of Baseline to EnQode compile-time standard deviation
    /// (the paper reports ≈3× lower σ for EnQode).
    pub fn mean_std_reduction(&self) -> f64 {
        let ratios: Vec<f64> = self
            .rows
            .iter()
            .filter(|r| r.enqode_online.std_dev > 1e-12)
            .map(|r| r.baseline_compile.std_dev / r.enqode_online.std_dev)
            .collect();
        if ratios.is_empty() {
            0.0
        } else {
            ratios.iter().sum::<f64>() / ratios.len() as f64
        }
    }

    /// Renders the Fig. 9a/9b table.
    pub fn to_markdown(&self) -> String {
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                vec![
                    r.dataset.clone(),
                    cell(&r.baseline_compile),
                    cell(&r.enqode_online),
                    format!("{:.0}", r.enqode_batch_throughput),
                    format!("{:.2}", r.enqode_offline_seconds),
                ]
            })
            .collect();
        markdown_table(
            &[
                "dataset",
                "baseline compile (s)",
                "enqode online (s)",
                "enqode batch (samples/s)",
                "enqode offline total (s)",
            ],
            &rows,
        )
    }
}

impl fmt::Display for Fig9Result {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "== Figure 9: compilation time (online / offline) ==")?;
        writeln!(f, "{}", self.to_markdown())?;
        writeln!(
            f,
            "compile-time standard-deviation reduction (baseline σ / enqode σ): {:.1}x",
            self.mean_std_reduction()
        )
    }
}

/// Runs the Fig. 9 experiment.
///
/// # Errors
///
/// Propagates embedding and transpilation errors.
pub fn run(
    contexts: &[DatasetContext],
    config: &ExperimentConfig,
) -> Result<Fig9Result, EnqodeError> {
    let mut rows = Vec::with_capacity(contexts.len());
    for ctx in contexts {
        let indices = ctx.eval_indices(config.eval_samples);
        let mut baseline_times = Vec::with_capacity(indices.len());
        for &i in &indices {
            let sample = ctx.features.sample(i);
            let start = Instant::now();
            let baseline_circuit = ctx.baseline.embed(sample)?.circuit;
            let _ = ctx.transpiler.transpile(&baseline_circuit)?;
            baseline_times.push(start.elapsed().as_secs_f64());
        }

        // Per-sample online latency is measured sequentially, exactly like
        // the baseline column: timing inside a parallel batch would fold
        // scheduler and memory contention into every sample and understate
        // the single-sample latency Fig. 9 reports.
        let mut enqode_times = Vec::with_capacity(indices.len());
        for &i in &indices {
            let sample = ctx.features.sample(i);
            let label = ctx.features.labels()[i];
            let start = Instant::now();
            let embedding = ctx.model_for(label).embed(sample)?;
            let _ = ctx.transpiler.transpile(&embedding.circuit)?;
            enqode_times.push(start.elapsed().as_secs_f64());
        }

        // Batch throughput (the production serving path): one parallel
        // `embed_batch` sweep per class group, wall-clocked end to end.
        let mut by_label: Vec<(usize, Vec<Vec<f64>>)> = Vec::new();
        for &i in &indices {
            let label = ctx.features.labels()[i];
            let sample = ctx.features.sample(i).to_vec();
            match by_label.iter_mut().find(|(l, _)| *l == label) {
                Some((_, samples)) => samples.push(sample),
                None => by_label.push((label, vec![sample])),
            }
        }
        let batch_start = Instant::now();
        for (label, samples) in &by_label {
            let _ = ctx.model_for(*label).embed_batch(samples)?;
        }
        let batch_seconds = batch_start.elapsed().as_secs_f64();
        let enqode_batch_throughput = if batch_seconds > 0.0 {
            indices.len() as f64 / batch_seconds
        } else {
            f64::INFINITY
        };
        rows.push(Fig9Row {
            dataset: ctx.kind.name().to_string(),
            baseline_compile: MetricStats::from_values(&baseline_times),
            enqode_online: MetricStats::from_values(&enqode_times),
            enqode_batch_throughput,
            enqode_offline_seconds: ctx.offline_seconds,
        });
    }
    Ok(Fig9Result { rows })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::build_contexts;
    use enq_data::DatasetKind;

    #[test]
    fn compile_times_are_positive_and_offline_is_bounded() {
        let cfg = ExperimentConfig::tiny();
        let contexts = build_contexts(&[DatasetKind::FashionMnistLike], &cfg).unwrap();
        let result = run(&contexts, &cfg).unwrap();
        let row = &result.rows[0];
        assert!(row.baseline_compile.mean > 0.0);
        assert!(row.enqode_online.mean > 0.0);
        assert!(row.enqode_offline_seconds > 0.0);
        assert!(row.enqode_batch_throughput > 0.0);
        // The paper's headline bound: offline training stays well under 200 s
        // per dataset/class even at full scale; at tiny scale it is far below.
        assert!(row.enqode_offline_seconds < 200.0);
        assert!(result.to_string().contains("Figure 9"));
    }
}

//! Figure 8: state fidelity of the Baseline and EnQode under (a) ideal and
//! (b) noisy simulation, per dataset.

use crate::context::DatasetContext;
use crate::experiment::ExperimentConfig;
use crate::report::{cell, markdown_table};
use enq_circuit::MetricStats;
use enq_qsim::{DeviceNoiseModel, NoisySimulator};
use enqode::{evaluate_baseline_sample, evaluate_enqode_sample, EnqodeError};
use std::fmt;

/// Per-dataset fidelity statistics.
#[derive(Debug, Clone)]
pub struct Fig8Row {
    /// Dataset display name.
    pub dataset: String,
    /// Baseline fidelity in ideal simulation (should be ≈ 1).
    pub baseline_ideal: MetricStats,
    /// EnQode fidelity in ideal simulation (the approximation quality).
    pub enqode_ideal: MetricStats,
    /// Baseline fidelity under the `ibm_brisbane`-like noise model.
    pub baseline_noisy: MetricStats,
    /// EnQode fidelity under the same noise model.
    pub enqode_noisy: MetricStats,
}

/// The result of the Fig. 8 experiment.
#[derive(Debug, Clone)]
pub struct Fig8Result {
    /// One row per dataset.
    pub rows: Vec<Fig8Row>,
}

impl Fig8Result {
    /// Average noisy-fidelity improvement factor (EnQode / Baseline).
    pub fn mean_noisy_improvement(&self) -> f64 {
        let ratios: Vec<f64> = self
            .rows
            .iter()
            .filter(|r| r.baseline_noisy.mean > 1e-12)
            .map(|r| r.enqode_noisy.mean / r.baseline_noisy.mean)
            .collect();
        if ratios.is_empty() {
            0.0
        } else {
            ratios.iter().sum::<f64>() / ratios.len() as f64
        }
    }

    /// Average EnQode ideal-simulation fidelity across datasets.
    pub fn mean_enqode_ideal(&self) -> f64 {
        if self.rows.is_empty() {
            return 0.0;
        }
        self.rows.iter().map(|r| r.enqode_ideal.mean).sum::<f64>() / self.rows.len() as f64
    }

    /// Renders the combined Fig. 8a/8b table.
    pub fn to_markdown(&self) -> String {
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                vec![
                    r.dataset.clone(),
                    cell(&r.baseline_ideal),
                    cell(&r.enqode_ideal),
                    cell(&r.baseline_noisy),
                    cell(&r.enqode_noisy),
                ]
            })
            .collect();
        markdown_table(
            &[
                "dataset",
                "baseline ideal",
                "enqode ideal",
                "baseline noisy",
                "enqode noisy",
            ],
            &rows,
        )
    }
}

impl fmt::Display for Fig8Result {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "== Figure 8: state fidelity (ideal / noisy simulation) =="
        )?;
        writeln!(f, "{}", self.to_markdown())?;
        writeln!(
            f,
            "mean enqode ideal fidelity {:.3}; noisy-fidelity improvement (enqode / baseline) {:.1}x",
            self.mean_enqode_ideal(),
            self.mean_noisy_improvement()
        )
    }
}

/// Runs the Fig. 8 experiment: ideal fidelity on `eval_samples` samples and
/// noisy fidelity on `noisy_samples` samples per dataset.
///
/// # Errors
///
/// Propagates embedding, transpilation, and simulation errors.
pub fn run(
    contexts: &[DatasetContext],
    config: &ExperimentConfig,
) -> Result<Fig8Result, EnqodeError> {
    let noisy = NoisySimulator::new(DeviceNoiseModel::ibm_brisbane_like());
    let mut rows = Vec::with_capacity(contexts.len());
    for ctx in contexts {
        let indices = ctx.eval_indices(config.eval_samples);
        let noisy_limit = config.noisy_samples.min(indices.len());

        let mut baseline_ideal = Vec::new();
        let mut enqode_ideal = Vec::new();
        let mut baseline_noisy = Vec::new();
        let mut enqode_noisy = Vec::new();

        for (pos, &i) in indices.iter().enumerate() {
            let sample = ctx.features.sample(i);
            let label = ctx.features.labels()[i];
            let with_noise = pos < noisy_limit;
            let noise_ref = if with_noise { Some(&noisy) } else { None };

            let b = evaluate_baseline_sample(&ctx.baseline, sample, &ctx.transpiler, noise_ref)?;
            baseline_ideal.push(b.ideal_fidelity);
            if let Some(f) = b.noisy_fidelity {
                baseline_noisy.push(f);
            }

            let e =
                evaluate_enqode_sample(ctx.model_for(label), sample, &ctx.transpiler, noise_ref)?;
            enqode_ideal.push(e.ideal_fidelity);
            if let Some(f) = e.noisy_fidelity {
                enqode_noisy.push(f);
            }
        }

        rows.push(Fig8Row {
            dataset: ctx.kind.name().to_string(),
            baseline_ideal: MetricStats::from_values(&baseline_ideal),
            enqode_ideal: MetricStats::from_values(&enqode_ideal),
            baseline_noisy: MetricStats::from_values(&baseline_noisy),
            enqode_noisy: MetricStats::from_values(&enqode_noisy),
        });
    }
    Ok(Fig8Result { rows })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::build_contexts;
    use enq_data::DatasetKind;

    #[test]
    fn fidelity_relationships_hold_on_tiny_config() {
        let cfg = ExperimentConfig::tiny();
        let contexts = build_contexts(&[DatasetKind::MnistLike], &cfg).unwrap();
        let result = run(&contexts, &cfg).unwrap();
        let row = &result.rows[0];
        // Baseline is exact in ideal simulation.
        assert!(row.baseline_ideal.mean > 0.999);
        // EnQode is approximate but decent.
        assert!(row.enqode_ideal.mean > 0.6);
        // Under noise, the deep Baseline circuits lose much more fidelity.
        assert!(row.enqode_noisy.mean > row.baseline_noisy.mean);
        assert!(result.mean_noisy_improvement() > 1.0);
        assert!(result.to_string().contains("Figure 8"));
    }
}

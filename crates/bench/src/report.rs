//! Plain-text/markdown table rendering of experiment results.

use enq_circuit::MetricStats;
use std::fmt::Write as _;

/// Formats a mean ± standard-deviation cell.
pub fn cell(stats: &MetricStats) -> String {
    if stats.mean.abs() >= 100.0 {
        format!("{:.1} ± {:.1}", stats.mean, stats.std_dev)
    } else if stats.mean.abs() >= 1.0 {
        format!("{:.2} ± {:.2}", stats.mean, stats.std_dev)
    } else {
        format!("{:.4} ± {:.4}", stats.mean, stats.std_dev)
    }
}

/// Renders a markdown table from a header row and data rows.
pub fn markdown_table(header: &[&str], rows: &[Vec<String>]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "| {} |", header.join(" | "));
    let _ = writeln!(
        out,
        "|{}|",
        header.iter().map(|_| "---").collect::<Vec<_>>().join("|")
    );
    for row in rows {
        let _ = writeln!(out, "| {} |", row.join(" | "));
    }
    out
}

/// Computes the ratio `a.mean / b.mean`, guarding against division by zero.
pub fn improvement_ratio(a: &MetricStats, b: &MetricStats) -> f64 {
    if b.mean.abs() < 1e-12 {
        f64::INFINITY
    } else {
        a.mean / b.mean
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cell_formats_by_magnitude() {
        let big = MetricStats {
            mean: 1234.5,
            std_dev: 10.0,
            min: 0.0,
            max: 0.0,
        };
        assert!(cell(&big).starts_with("1234.5"));
        let small = MetricStats {
            mean: 0.123456,
            std_dev: 0.01,
            min: 0.0,
            max: 0.0,
        };
        assert!(cell(&small).starts_with("0.1235"));
    }

    #[test]
    fn markdown_table_shape() {
        let t = markdown_table(
            &["a", "b"],
            &[vec!["1".into(), "2".into()], vec!["3".into(), "4".into()]],
        );
        assert_eq!(t.lines().count(), 4);
        assert!(t.contains("| 1 | 2 |"));
    }

    #[test]
    fn ratio_handles_zero_denominator() {
        let a = MetricStats {
            mean: 10.0,
            ..Default::default()
        };
        let b = MetricStats {
            mean: 2.0,
            ..Default::default()
        };
        assert!((improvement_ratio(&a, &b) - 5.0).abs() < 1e-12);
        assert!(improvement_ratio(&a, &MetricStats::default()).is_infinite());
    }
}

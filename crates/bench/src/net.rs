//! Network-tier load benchmark: goodput, latency percentiles, and shed
//! behaviour of the `enqd` TCP front door under controlled overload.
//!
//! The run has two phases against one live [`EnqdServer`] (solution cache
//! off, so every admitted request pays real fine-tuning compute):
//!
//! 1. **Closed-loop capacity probe** — a small pool of blocking clients
//!    (few enough that the queue never reaches the shed threshold) measures
//!    the service's sustainable rate (`capacity_rps`) and its un-overloaded
//!    (idle) latency percentiles.
//! 2. **Open-loop overload levels** — paced sender fleets offer 1×, 2×,
//!    and 4× the measured capacity. The fleet grows with the factor, so
//!    outstanding requests genuinely exceed `max_pending` and the front
//!    door must shed. Every outcome is classified: an `EmbedReply`
//!    (admitted, latency recorded), a typed retryable reject
//!    (`RetryAfter`/`RateLimited` — the overload contract), or an untyped
//!    failure (transport/protocol — must be zero).
//!
//! The acceptance numbers recorded in `BENCH_net.json` and gated by
//! `bench_check`:
//!
//! * `overload_admitted_p99_ratio` — p99 of **admitted** requests at 4×
//!   overload over the idle p99, ≤ 5×: shedding keeps tail latency bounded
//!   instead of letting the queue grow.
//! * `overload_goodput_rps` — completed requests/sec at 4× overload, ≥ 1:
//!   the server keeps doing useful work while shedding.
//! * `overload_typed_reject_fraction` — typed rejects over all rejects at
//!   4× overload, ≥ 1.0: every turned-away request got a typed
//!   `RetryAfter`-style answer, never a dropped connection.

use crate::report::markdown_table;
use enq_data::{generate_synthetic, DatasetKind, SyntheticConfig};
use enq_net::{ClientError, EnqClient, EnqdServer, FaultPlan, NetConfig, RetryPolicy};
use enq_serve::{CacheConfig, EmbedService, ServeConfig};
use enqode::{AnsatzConfig, EnqodeConfig, EnqodeError, EnqodePipeline, EntanglerKind};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Shape and workload of one network load benchmark run.
#[derive(Debug, Clone)]
pub struct NetBenchConfig {
    /// Ansatz qubit count (the paper shape is 8).
    pub num_qubits: usize,
    /// Ansatz layer count.
    pub num_layers: usize,
    /// Unique samples cycled by the senders (cache is off; uniqueness only
    /// de-correlates per-request convergence).
    pub unique_samples: usize,
    /// Base sender-thread count: the capacity probe uses half of it, the
    /// overload fleet at factor `f` uses `f × clients`.
    pub clients: usize,
    /// Online fine-tuning iteration budget (dominates per-request cost).
    pub online_iterations: usize,
    /// Requests issued by the closed-loop capacity probe.
    pub capacity_requests: usize,
    /// Wall-clock length of each open-loop offered-load level.
    pub level_duration: Duration,
    /// The server's queue-depth shed threshold.
    pub max_pending: usize,
    /// Offered-load multipliers over the measured capacity (the last one
    /// is the gated overload level).
    pub overload_factors: Vec<f64>,
    /// RNG seed for training data and sample perturbations.
    pub seed: u64,
}

impl NetBenchConfig {
    /// The paper shape (8 qubits) at a scale that finishes in seconds.
    pub fn paper() -> Self {
        Self {
            num_qubits: 8,
            num_layers: 8,
            unique_samples: 64,
            clients: 8,
            online_iterations: 20,
            capacity_requests: 48,
            level_duration: Duration::from_secs(2),
            max_pending: 10,
            overload_factors: vec![1.0, 2.0, 4.0],
            seed: 0x2E7B,
        }
    }

    /// A seconds-scale smoke shape for tests and CI.
    pub fn tiny() -> Self {
        Self {
            num_qubits: 3,
            num_layers: 4,
            unique_samples: 8,
            clients: 4,
            online_iterations: 10,
            capacity_requests: 16,
            level_duration: Duration::from_millis(400),
            max_pending: 4,
            overload_factors: vec![1.0, 4.0],
            seed: 0x2E7B,
        }
    }
}

/// One request's classified outcome.
enum Outcome {
    /// An `EmbedReply`; the client-observed latency rides along.
    Admitted(Duration),
    /// A typed retryable reject (`RetryAfter`, `RateLimited`, `Draining`).
    TypedReject,
    /// Anything else: transport errors, protocol violations, terminal
    /// codes. The overload contract says this never happens.
    Untyped,
}

/// Merged counters of one driven load level.
struct RawLevel {
    admitted: Vec<Duration>,
    typed_rejects: u64,
    untyped_failures: u64,
    sent: u64,
    wall: Duration,
}

/// One open-loop offered-load level, reduced.
#[derive(Debug, Clone)]
pub struct LevelStats {
    /// Offered load as a multiple of measured capacity.
    pub factor: f64,
    /// The nominal paced rate (requests/sec).
    pub offered_rps: f64,
    /// The rate the senders actually achieved (pacing slips when admitted
    /// requests block a sender).
    pub achieved_rps: f64,
    /// Completed (admitted and answered) requests per second.
    pub goodput_rps: f64,
    /// Fraction of sent requests that were shed with a typed reject.
    pub shed_rate: f64,
    /// Median latency of admitted requests, microseconds.
    pub admitted_p50_us: f64,
    /// 99th-percentile latency of admitted requests, microseconds.
    pub admitted_p99_us: f64,
    /// Requests sent at this level.
    pub sent: u64,
    /// Requests answered with an `EmbedReply`.
    pub admitted: u64,
    /// Requests rejected with a typed retryable error.
    pub typed_rejects: u64,
    /// Requests that failed any other way (must be zero).
    pub untyped_failures: u64,
}

/// The closed-loop capacity probe's result.
#[derive(Debug, Clone, Copy)]
pub struct CapacityStats {
    /// Sustainable closed-loop throughput, requests/sec.
    pub rps: f64,
    /// Median latency, microseconds.
    pub p50_us: f64,
    /// 99th-percentile latency, microseconds.
    pub p99_us: f64,
}

/// The full network load benchmark result.
#[derive(Debug, Clone)]
pub struct NetBenchResult {
    /// The configuration that produced this result.
    pub config: NetBenchConfig,
    /// Cores visible to the process.
    pub cores: usize,
    /// Offline training time for the served pipeline (seconds).
    pub offline_seconds: f64,
    /// The closed-loop capacity probe (the un-overloaded baseline).
    pub capacity: CapacityStats,
    /// The open-loop offered-load sweep, in factor order.
    pub levels: Vec<LevelStats>,
}

impl NetBenchResult {
    /// The gated overload level (the largest offered factor).
    fn overload(&self) -> &LevelStats {
        self.levels.last().expect("at least one load level")
    }

    /// Gated: admitted p99 at the overload level over idle p99.
    pub fn overload_admitted_p99_ratio(&self) -> f64 {
        self.overload().admitted_p99_us / self.capacity.p99_us.max(1e-9)
    }

    /// Gated: goodput at the overload level, requests/sec.
    pub fn overload_goodput_rps(&self) -> f64 {
        self.overload().goodput_rps
    }

    /// Gated: typed rejects over all rejects at the overload level (1.0
    /// when nothing needed rejecting).
    pub fn overload_typed_reject_fraction(&self) -> f64 {
        let o = self.overload();
        let rejected = o.typed_rejects + o.untyped_failures;
        if rejected == 0 {
            1.0
        } else {
            o.typed_rejects as f64 / rejected as f64
        }
    }

    /// Renders the result as the `BENCH_net.json` document.
    pub fn to_json(&self) -> String {
        let level_rows: Vec<String> = self
            .levels
            .iter()
            .map(|l| {
                format!(
                    "    {{\"factor\": {:.1}, \"offered_rps\": {:.1}, \"achieved_rps\": {:.1}, \
                     \"goodput_rps\": {:.1}, \"shed_rate\": {:.4}, \"admitted_p50_us\": {:.1}, \
                     \"admitted_p99_us\": {:.1}, \"sent\": {}, \"admitted\": {}, \
                     \"typed_rejects\": {}, \"untyped_failures\": {}}}",
                    l.factor,
                    l.offered_rps,
                    l.achieved_rps,
                    l.goodput_rps,
                    l.shed_rate,
                    l.admitted_p50_us,
                    l.admitted_p99_us,
                    l.sent,
                    l.admitted,
                    l.typed_rejects,
                    l.untyped_failures,
                )
            })
            .collect();
        format!(
            "{{\n  \"name\": \"net_load_{}q{}l\",\n  \"cores\": {},\n  \
             \"workload\": {{\"unique_samples\": {}, \"clients\": {}, \
             \"online_iterations\": {}, \"max_pending\": {}, \"level_duration_ms\": {}}},\n  \
             \"offline_train_s\": {:.3},\n  \
             \"capacity\": {{\"capacity_rps\": {:.1}, \"idle_p50_us\": {:.1}, \
             \"idle_p99_us\": {:.1}}},\n  \
             \"levels\": [\n{}\n  ],\n  \
             \"acceptance\": {{\"overload_admitted_p99_ratio\": {:.2}, \
             \"overload_goodput_rps\": {:.1}, \
             \"overload_typed_reject_fraction\": {:.4}}}\n}}\n",
            self.config.num_qubits,
            self.config.num_layers,
            self.cores,
            self.config.unique_samples,
            self.config.clients,
            self.config.online_iterations,
            self.config.max_pending,
            self.config.level_duration.as_millis(),
            self.offline_seconds,
            self.capacity.rps,
            self.capacity.p50_us,
            self.capacity.p99_us,
            level_rows.join(",\n"),
            self.overload_admitted_p99_ratio(),
            self.overload_goodput_rps(),
            self.overload_typed_reject_fraction(),
        )
    }

    /// Renders a human-readable summary table.
    pub fn to_markdown(&self) -> String {
        let mut rows = vec![vec![
            "closed-loop probe".to_string(),
            format!("{:.0}", self.capacity.rps),
            format!("{:.0}", self.capacity.rps),
            "0%".to_string(),
            format!("{:.0}", self.capacity.p50_us),
            format!("{:.0}", self.capacity.p99_us),
        ]];
        for l in &self.levels {
            rows.push(vec![
                format!("open loop {:.0}x", l.factor),
                format!("{:.0}", l.achieved_rps),
                format!("{:.0}", l.goodput_rps),
                format!("{:.0}%", l.shed_rate * 100.0),
                format!("{:.0}", l.admitted_p50_us),
                format!("{:.0}", l.admitted_p99_us),
            ]);
        }
        markdown_table(
            &[
                "load",
                "offered req/s",
                "goodput req/s",
                "shed",
                "adm p50 (µs)",
                "adm p99 (µs)",
            ],
            &rows,
        )
    }
}

impl fmt::Display for NetBenchResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "== Network serving under load ({}q/{}l, max_pending {}, {} core(s)) ==",
            self.config.num_qubits, self.config.num_layers, self.config.max_pending, self.cores
        )?;
        writeln!(f, "{}", self.to_markdown())?;
        writeln!(
            f,
            "overload ({}x): admitted p99 {:.2}x idle, goodput {:.0} req/s, \
             typed-reject fraction {:.3}",
            self.overload().factor,
            self.overload_admitted_p99_ratio(),
            self.overload_goodput_rps(),
            self.overload_typed_reject_fraction(),
        )
    }
}

fn percentile_us(sorted: &[Duration], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * q).round() as usize;
    sorted[idx.min(sorted.len() - 1)].as_secs_f64() * 1e6
}

fn no_retry() -> RetryPolicy {
    RetryPolicy {
        max_attempts: 1,
        ..RetryPolicy::default()
    }
}

fn classify(result: Result<enq_net::WireEmbedding, ClientError>, started: Instant) -> Outcome {
    match result {
        Ok(_) => Outcome::Admitted(started.elapsed()),
        Err(ClientError::RetriesExhausted {
            last_code: Some(code),
            ..
        }) if code.is_retryable() => Outcome::TypedReject,
        Err(_) => Outcome::Untyped,
    }
}

/// The trained pipeline, the sender sample pool, and the offline fit time.
type Workload = (Arc<EnqodePipeline>, Vec<Vec<f64>>, f64);

/// Builds the served pipeline and the sender sample pool.
fn build_workload(config: &NetBenchConfig) -> Result<Workload, EnqodeError> {
    let dataset = generate_synthetic(
        DatasetKind::MnistLike,
        &SyntheticConfig {
            classes: 2,
            samples_per_class: 12,
            seed: config.seed,
        },
    )?;
    let model_config = EnqodeConfig {
        ansatz: AnsatzConfig {
            num_qubits: config.num_qubits,
            num_layers: config.num_layers,
            entangler: EntanglerKind::Cy,
        },
        fidelity_threshold: 0.85,
        max_clusters: 3,
        offline_max_iterations: 80,
        offline_restarts: 1,
        online_max_iterations: config.online_iterations,
        offline_rescue: false,
        seed: config.seed,
    };
    let train_start = Instant::now();
    let pipeline = Arc::new(EnqodePipeline::build(&dataset, model_config)?);
    let offline_seconds = train_start.elapsed().as_secs_f64();
    let mut rng = StdRng::seed_from_u64(config.seed ^ 0xAB);
    let pool: Vec<Vec<f64>> = (0..config.unique_samples)
        .map(|i| {
            dataset
                .sample(i % dataset.len())
                .iter()
                .map(|v| v + rng.gen_range(-0.02..0.02))
                .collect()
        })
        .collect();
    Ok((pipeline, pool, offline_seconds))
}

/// Closed-loop capacity probe: `threads` blocking clients issue
/// `requests` total; returns the sustained rate and latency percentiles.
fn closed_loop_probe(addr: &str, pool: &[Vec<f64>], threads: usize, requests: usize) -> RawLevel {
    let threads = threads.max(1);
    let per_thread = requests.div_ceil(threads);
    let start = Instant::now();
    let admitted: Vec<Duration> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                scope.spawn(move || {
                    // The probe retries (it measures capacity, not
                    // shedding), so transient sheds at the probe's own
                    // concurrency don't poison the baseline.
                    let mut client = EnqClient::new(addr.to_string(), RetryPolicy::default());
                    (0..per_thread)
                        .map(|i| {
                            let sample = &pool[(t + i * threads) % pool.len()];
                            let t0 = Instant::now();
                            client
                                .embed("bench", "m", sample, 0)
                                .expect("capacity probe requests are valid");
                            t0.elapsed()
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("probe thread"))
            .collect()
    });
    let sent = admitted.len() as u64;
    RawLevel {
        admitted,
        typed_rejects: 0,
        untyped_failures: 0,
        sent,
        wall: start.elapsed(),
    }
}

/// Open-loop level: `threads` paced senders offer `offered_rps` in
/// aggregate for `duration`. No retries — every outcome is classified raw.
fn open_loop_level(
    addr: &str,
    pool: &[Vec<f64>],
    threads: usize,
    offered_rps: f64,
    duration: Duration,
) -> RawLevel {
    let threads = threads.max(1);
    let interval = Duration::from_secs_f64(threads as f64 / offered_rps.max(1.0));
    let start = Instant::now();
    let merged: Vec<(Vec<Duration>, u64, u64, u64)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                scope.spawn(move || {
                    let mut client = EnqClient::new(addr.to_string(), no_retry());
                    let mut admitted = Vec::new();
                    let (mut typed, mut untyped, mut sent) = (0u64, 0u64, 0u64);
                    // Stagger thread start phases across one interval so the
                    // fleet's sends spread out instead of arriving in waves.
                    let mut next = start + interval.mul_f64(t as f64 / threads as f64);
                    let end = start + duration;
                    let mut i = t;
                    loop {
                        let now = Instant::now();
                        if now >= end {
                            break;
                        }
                        if now < next {
                            std::thread::sleep(next - now);
                        }
                        next += interval;
                        let sample = &pool[i % pool.len()];
                        i += threads;
                        let t0 = Instant::now();
                        match classify(client.embed("bench", "m", sample, 0), t0) {
                            Outcome::Admitted(latency) => admitted.push(latency),
                            Outcome::TypedReject => typed += 1,
                            Outcome::Untyped => untyped += 1,
                        }
                        sent += 1;
                    }
                    (admitted, typed, untyped, sent)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("sender thread"))
            .collect()
    });
    let wall = start.elapsed();
    let mut raw = RawLevel {
        admitted: Vec::new(),
        typed_rejects: 0,
        untyped_failures: 0,
        sent: 0,
        wall,
    };
    for (admitted, typed, untyped, sent) in merged {
        raw.admitted.extend(admitted);
        raw.typed_rejects += typed;
        raw.untyped_failures += untyped;
        raw.sent += sent;
    }
    raw
}

fn reduce_level(factor: f64, offered_rps: f64, mut raw: RawLevel) -> LevelStats {
    raw.admitted.sort_unstable();
    let wall_s = raw.wall.as_secs_f64().max(1e-12);
    LevelStats {
        factor,
        offered_rps,
        achieved_rps: raw.sent as f64 / wall_s,
        goodput_rps: raw.admitted.len() as f64 / wall_s,
        shed_rate: if raw.sent == 0 {
            0.0
        } else {
            raw.typed_rejects as f64 / raw.sent as f64
        },
        admitted_p50_us: percentile_us(&raw.admitted, 0.50),
        admitted_p99_us: percentile_us(&raw.admitted, 0.99),
        sent: raw.sent,
        admitted: raw.admitted.len() as u64,
        typed_rejects: raw.typed_rejects,
        untyped_failures: raw.untyped_failures,
    }
}

/// Runs the network load benchmark.
///
/// # Errors
///
/// Propagates training errors; panics on transport failures in the
/// capacity probe (they mean the harness itself is broken).
pub fn run(config: &NetBenchConfig) -> Result<NetBenchResult, EnqodeError> {
    let (pipeline, pool, offline_seconds) = build_workload(config)?;
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());

    // Cache off: every admitted request pays compute, so capacity is the
    // compute rate and overload is real.
    let service = Arc::new(EmbedService::new(ServeConfig {
        flush_deadline: Duration::ZERO,
        cache: CacheConfig {
            capacity: 0,
            ..CacheConfig::default()
        },
        ..ServeConfig::default()
    }));
    service.register_model("m", Arc::clone(&pipeline));
    let max_factor = config
        .overload_factors
        .iter()
        .copied()
        .fold(1.0f64, f64::max);
    let handle = EnqdServer::spawn(
        Arc::clone(&service),
        "127.0.0.1:0",
        NetConfig {
            max_pending: config.max_pending,
            // Room for the largest fleet plus probe stragglers.
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            max_connections: (config.clients * (max_factor.ceil() as usize + 1)).max(16),
            ..NetConfig::default()
        },
        FaultPlan::none(),
    )
    .expect("binding the benchmark server");
    let addr = handle.addr().to_string();

    // Phase 1: closed-loop capacity probe at half the base concurrency —
    // low enough that the queue stays under max_pending and nothing sheds.
    let probe_threads = (config.clients / 2).max(1);
    let mut probe = closed_loop_probe(&addr, &pool, probe_threads, config.capacity_requests);
    probe.admitted.sort_unstable();
    let capacity = CapacityStats {
        rps: probe.sent as f64 / probe.wall.as_secs_f64().max(1e-12),
        p50_us: percentile_us(&probe.admitted, 0.50),
        p99_us: percentile_us(&probe.admitted, 0.99),
    };

    // Phase 2: open-loop offered-load sweep. The fleet grows with the
    // factor so outstanding requests can actually exceed max_pending.
    let mut levels = Vec::new();
    for &factor in &config.overload_factors {
        let offered_rps = capacity.rps * factor;
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let threads = (config.clients as f64 * factor).ceil() as usize;
        let raw = open_loop_level(&addr, &pool, threads, offered_rps, config.level_duration);
        levels.push(reduce_level(factor, offered_rps, raw));
    }
    handle.join();

    Ok(NetBenchResult {
        config: config.clone(),
        cores,
        offline_seconds,
        capacity,
        levels,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_net_bench_produces_consistent_results() {
        let result = run(&NetBenchConfig::tiny()).unwrap();
        assert!(result.capacity.rps > 0.0);
        assert!(result.capacity.p99_us >= result.capacity.p50_us);
        assert_eq!(result.levels.len(), 2);
        for level in &result.levels {
            assert_eq!(
                level.untyped_failures, 0,
                "every failure must be a typed reject"
            );
            assert_eq!(
                level.admitted + level.typed_rejects,
                level.sent,
                "every sent request must be classified"
            );
        }
        assert!(result.overload_goodput_rps() > 0.0);
        assert!(
            (result.overload_typed_reject_fraction() - 1.0).abs() < f64::EPSILON,
            "typed fraction must be exactly 1.0"
        );
        let json = result.to_json();
        assert!(json.contains("\"overload_admitted_p99_ratio\""));
        assert!(json.contains("\"overload_goodput_rps\""));
        assert!(json.contains("\"overload_typed_reject_fraction\""));
        assert!(json.contains("\"levels\""));
        assert!(result.to_string().contains("Network serving under load"));
    }
}

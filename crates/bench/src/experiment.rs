//! Shared experiment configuration and dataset preparation.

use enq_data::{generate_synthetic, Dataset, DatasetKind, FeaturePipeline, SyntheticConfig};
use enqode::{AnsatzConfig, EnqodeConfig, EnqodeError, EntanglerKind};

/// Configuration of a full evaluation run (all figures share it).
#[derive(Debug, Clone)]
pub struct ExperimentConfig {
    /// Number of classes sampled per dataset (the paper uses 5).
    pub classes: usize,
    /// Number of samples generated per class (the paper uses 500).
    pub samples_per_class: usize,
    /// Number of samples per dataset evaluated for circuit metrics, ideal
    /// fidelity, and compile time.
    pub eval_samples: usize,
    /// Number of samples per dataset evaluated under the noisy simulator
    /// (density-matrix simulation of the Baseline is expensive).
    pub noisy_samples: usize,
    /// Number of qubits (2^n features after PCA); the paper uses 8.
    pub num_qubits: usize,
    /// Ansatz layers; the paper uses 8.
    pub num_layers: usize,
    /// Clusters stop growing once every sample reaches this fidelity to its
    /// nearest cluster mean.
    pub fidelity_threshold: f64,
    /// Maximum clusters per class.
    pub max_clusters: usize,
    /// RNG seed for data generation, clustering, and initialisation.
    pub seed: u64,
}

impl ExperimentConfig {
    /// A configuration sized for quick runs (CI, laptops): fewer samples and
    /// a smaller noisy-simulation budget, same qubit/layer counts as the
    /// paper.
    pub fn quick() -> Self {
        Self {
            classes: 3,
            samples_per_class: 60,
            eval_samples: 24,
            noisy_samples: 4,
            num_qubits: 8,
            num_layers: 8,
            fidelity_threshold: 0.95,
            max_clusters: 24,
            seed: 7,
        }
    }

    /// The full-scale configuration mirroring the paper's methodology
    /// (5 classes × 500 samples per dataset, 8 qubits, 8 layers).
    pub fn full() -> Self {
        Self {
            classes: 5,
            samples_per_class: 500,
            eval_samples: 100,
            noisy_samples: 10,
            num_qubits: 8,
            num_layers: 8,
            fidelity_threshold: 0.95,
            max_clusters: 64,
            seed: 7,
        }
    }

    /// A tiny configuration used by integration tests and criterion benches
    /// that must run in debug builds.
    pub fn tiny() -> Self {
        Self {
            classes: 2,
            samples_per_class: 12,
            eval_samples: 6,
            noisy_samples: 2,
            num_qubits: 4,
            num_layers: 6,
            fidelity_threshold: 0.9,
            max_clusters: 8,
            seed: 7,
        }
    }

    /// Returns the [`EnqodeConfig`] derived from this experiment
    /// configuration.
    pub fn enqode_config(&self) -> EnqodeConfig {
        EnqodeConfig {
            ansatz: AnsatzConfig {
                num_qubits: self.num_qubits,
                num_layers: self.num_layers,
                entangler: EntanglerKind::Cy,
            },
            fidelity_threshold: self.fidelity_threshold,
            max_clusters: self.max_clusters,
            offline_max_iterations: 400,
            offline_restarts: 4,
            online_max_iterations: 40,
            offline_rescue: false,
            seed: self.seed,
        }
    }

    /// Number of PCA features (`2^num_qubits`).
    pub fn num_features(&self) -> usize {
        1usize << self.num_qubits
    }
}

/// A dataset prepared for embedding: PCA-reduced, L2-normalised features.
#[derive(Debug, Clone)]
pub struct PreparedDataset {
    /// Which surrogate dataset this is.
    pub kind: DatasetKind,
    /// The normalised feature vectors with class labels.
    pub features: Dataset,
}

/// Generates the synthetic surrogate for `kind` and runs the PCA +
/// normalisation pipeline of the paper.
///
/// # Errors
///
/// Propagates data-generation and PCA errors.
pub fn prepare_dataset(
    kind: DatasetKind,
    config: &ExperimentConfig,
) -> Result<PreparedDataset, EnqodeError> {
    let raw = generate_synthetic(
        kind,
        &SyntheticConfig {
            classes: config.classes,
            samples_per_class: config.samples_per_class,
            seed: config.seed,
        },
    )?;
    let pipeline = FeaturePipeline::fit(&raw, config.num_features())?;
    let features = pipeline.apply_dataset(&raw)?;
    Ok(PreparedDataset { kind, features })
}

/// Selects up to `limit` evaluation sample indices spread across the dataset.
pub fn evaluation_indices(dataset: &Dataset, limit: usize) -> Vec<usize> {
    let n = dataset.len();
    if n <= limit {
        return (0..n).collect();
    }
    let stride = n as f64 / limit as f64;
    (0..limit).map(|i| (i as f64 * stride) as usize).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn configs_have_sensible_defaults() {
        let quick = ExperimentConfig::quick();
        assert_eq!(quick.num_qubits, 8);
        assert_eq!(quick.num_features(), 256);
        let full = ExperimentConfig::full();
        assert_eq!(full.classes, 5);
        assert_eq!(full.samples_per_class, 500);
        let enq = full.enqode_config();
        assert_eq!(enq.ansatz.num_parameters(), 64);
    }

    #[test]
    fn prepare_dataset_produces_normalized_features() {
        let cfg = ExperimentConfig::tiny();
        let prepared = prepare_dataset(DatasetKind::MnistLike, &cfg).unwrap();
        assert_eq!(prepared.features.feature_dim(), 16);
        assert_eq!(prepared.features.len(), 24);
        let norm: f64 = prepared.features.sample(0).iter().map(|v| v * v).sum();
        assert!((norm - 1.0).abs() < 1e-9);
    }

    #[test]
    fn evaluation_indices_are_spread_and_bounded() {
        let cfg = ExperimentConfig::tiny();
        let prepared = prepare_dataset(DatasetKind::FashionMnistLike, &cfg).unwrap();
        let idx = evaluation_indices(&prepared.features, 5);
        assert_eq!(idx.len(), 5);
        assert!(idx.iter().all(|&i| i < prepared.features.len()));
        let all = evaluation_indices(&prepared.features, 10_000);
        assert_eq!(all.len(), prepared.features.len());
    }
}

//! Benchmark regression gates over the committed `BENCH_*.json` artifacts.
//!
//! Every bench binary records its headline acceptance numbers in a JSON
//! document at the repository root. Historically each binary *also* asserted
//! its own gates — but only when that binary ran, so a regression could land
//! as long as nobody regenerated the file. The `bench_check` binary closes
//! that hole: CI parses the committed artifacts and fails when any recorded
//! gate field sits on the wrong side of its threshold, independent of which
//! benches the PR ran.
//!
//! The parser is a minimal scanner (`"key": <number>`), not a JSON
//! implementation: the documents are machine-written by this crate with
//! unique gate keys, which is exactly the contract [`extract_number`]
//! checks.

use std::fmt;
use std::path::Path;

/// Direction of a gate comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// The recorded value must be `≥ threshold`.
    AtLeast,
    /// The recorded value must be `≤ threshold`.
    AtMost,
}

/// Where a gate's threshold comes from.
#[derive(Debug, Clone, Copy)]
pub enum Threshold {
    /// A fixed constant maintained here.
    Fixed(f64),
    /// Another key of the same document (the artifact records its own
    /// acceptance threshold).
    FromKey(&'static str),
}

/// One gate over one recorded field of one benchmark artifact.
#[derive(Debug, Clone, Copy)]
pub struct GateSpec {
    /// Artifact file name at the repository root.
    pub file: &'static str,
    /// JSON key holding the measured value (must be unique in the file).
    pub key: &'static str,
    /// Comparison direction.
    pub direction: Direction,
    /// Threshold source.
    pub threshold: Threshold,
}

/// The outcome of evaluating one gate.
#[derive(Debug, Clone)]
pub struct GateOutcome {
    /// The gate that was evaluated.
    pub spec: GateSpec,
    /// The value recorded in the artifact.
    pub value: f64,
    /// The resolved threshold.
    pub threshold: f64,
    /// Whether the gate holds.
    pub passed: bool,
}

impl fmt::Display for GateOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let op = match self.spec.direction {
            Direction::AtLeast => ">=",
            Direction::AtMost => "<=",
        };
        write!(
            f,
            "[{}] {} / {}: {} {} {} (recorded {})",
            if self.passed { "PASS" } else { "FAIL" },
            self.spec.file,
            self.spec.key,
            self.value,
            op,
            self.threshold,
            self.value,
        )
    }
}

/// The gates CI enforces, one entry per recorded acceptance field.
pub fn default_gates() -> Vec<GateSpec> {
    vec![
        // Sparse symbolic kernel vs the retained dense reference; the file
        // records its own acceptance threshold.
        GateSpec {
            file: "BENCH_symbolic.json",
            key: "speedup",
            direction: Direction::AtLeast,
            threshold: Threshold::FromKey("acceptance_threshold"),
        },
        // The runtime-dispatched SIMD backend vs the forced scalar one on
        // the same sparse kernel (outputs bit-identical; pure wall-clock).
        GateSpec {
            file: "BENCH_symbolic.json",
            key: "simd_speedup",
            direction: Direction::AtLeast,
            threshold: Threshold::FromKey("simd_acceptance_threshold"),
        },
        // The B=16 batched transform vs 16 per-request solo calls (every
        // lane bit-identical to the corresponding solo evaluation).
        GateSpec {
            file: "BENCH_symbolic.json",
            key: "batched_speedup",
            direction: Direction::AtLeast,
            threshold: Threshold::FromKey("batched_acceptance_threshold"),
        },
        // Serve layer: micro-batched throughput vs the sequential embed
        // loop, and hot cache-hit latency vs cold embeds.
        GateSpec {
            file: "BENCH_serve.json",
            key: "batched_over_sequential",
            direction: Direction::AtLeast,
            threshold: Threshold::Fixed(2.0),
        },
        GateSpec {
            file: "BENCH_serve.json",
            key: "cold_over_hot_p50",
            direction: Direction::AtLeast,
            threshold: Threshold::Fixed(10.0),
        },
        // The zero-allocation request hot path: the cache-off *single
        // client* p50 must stay within 7× the bare sequential embed p50 —
        // one client isolates the machinery cost (queue hop, batcher
        // wakeup, reply path); with N concurrent clients on one core the
        // p50 would carry an ≈N× queueing-delay floor that measures load,
        // not machinery. And a steady-state cache hit must perform exactly
        // zero heap allocations (measured by the bench binary's counting
        // allocator).
        GateSpec {
            file: "BENCH_serve.json",
            key: "serve_overhead_p50_ratio",
            direction: Direction::AtMost,
            threshold: Threshold::Fixed(7.0),
        },
        GateSpec {
            file: "BENCH_serve.json",
            key: "hit_allocs_per_request",
            direction: Direction::AtMost,
            threshold: Threshold::Fixed(0.0),
        },
        // The batch sweep must actually exercise large batches: with the
        // per-row client raise (clients ≥ max_batch), the high-batch row
        // forms batches beyond the default 8-client concurrency.
        GateSpec {
            file: "BENCH_serve.json",
            key: "max_largest_batch",
            direction: Direction::AtLeast,
            threshold: Threshold::Fixed(9.0),
        },
        // Model lifecycle: a background rebuild competes for cores but must
        // never block the serve control plane. The bound is calibrated for a
        // single-core box, where the under-rebuild tail has a hard floor of
        // a couple of scheduler quanta (~8 ms): when the SIMD backends cut
        // the idle compute-path p99 from ~7.8 ms to ~1.7 ms, that floor
        // alone became ~5× idle — with *both* absolute tails better than
        // before. 6× keeps headroom over the floor while still catching the
        // real regression (a rebuild that blocks the batcher pushes the
        // ratio into the tens-to-hundreds: the tail becomes the rebuild's
        // duration, not a scheduling quantum).
        GateSpec {
            file: "BENCH_serve.json",
            key: "rebuild_p99_ratio",
            direction: Direction::AtMost,
            threshold: Threshold::Fixed(6.0),
        },
        // Ops autopilot: under an hours-compressed traffic drift the
        // scheduler must fire a traffic-fed refresh unaided and recover
        // the audited fidelity to at least the floor the leg recorded,
        // and the drift-phase serve p99 (refresh fitting in the
        // background) must stay within the same 6× rebuild gate.
        GateSpec {
            file: "BENCH_serve.json",
            key: "autopilot_fidelity_recovered",
            direction: Direction::AtLeast,
            threshold: Threshold::FromKey("autopilot_fidelity_threshold"),
        },
        GateSpec {
            file: "BENCH_serve.json",
            key: "autopilot_p99_ratio",
            direction: Direction::AtMost,
            threshold: Threshold::Fixed(6.0),
        },
        // Streaming fit: clustering quality within 1.05× of full-batch
        // Lloyd, trained on a dataset ≥ 10× the chunk budget.
        GateSpec {
            file: "BENCH_fit.json",
            key: "inertia_ratio",
            direction: Direction::AtMost,
            threshold: Threshold::Fixed(1.05),
        },
        GateSpec {
            file: "BENCH_fit.json",
            key: "dataset_over_chunk",
            direction: Direction::AtLeast,
            threshold: Threshold::Fixed(10.0),
        },
        // Pipelined streaming engine: prefetched ingestion + feature spill
        // must beat the synchronous re-streaming baseline by ≥ 1.3× on the
        // ingestion-bound benchmark (bit-identical results, pure
        // wall-clock).
        GateSpec {
            file: "BENCH_fit.json",
            key: "pipelined_speedup",
            direction: Direction::AtLeast,
            threshold: Threshold::Fixed(1.3),
        },
        // Network serving tier: the enqd front door under 4× offered
        // overload. Shedding must bound the admitted tail (p99 ≤ 5× the
        // un-overloaded p99), keep goodput nonzero, and answer every
        // turned-away request with a typed retryable error (fraction is
        // exactly 1.0 — a single silently dropped request fails the gate).
        GateSpec {
            file: "BENCH_net.json",
            key: "overload_admitted_p99_ratio",
            direction: Direction::AtMost,
            threshold: Threshold::Fixed(5.0),
        },
        GateSpec {
            file: "BENCH_net.json",
            key: "overload_goodput_rps",
            direction: Direction::AtLeast,
            threshold: Threshold::Fixed(1.0),
        },
        GateSpec {
            file: "BENCH_net.json",
            key: "overload_typed_reject_fraction",
            direction: Direction::AtLeast,
            threshold: Threshold::Fixed(1.0),
        },
        // Adaptive fidelity-threshold search: every audited cluster
        // fidelity ends at or above the recorded threshold (the per-class
        // cap is sized so it never binds on the benchmark dataset).
        GateSpec {
            file: "BENCH_fit.json",
            key: "audit_min_fidelity",
            direction: Direction::AtLeast,
            threshold: Threshold::FromKey("audit_threshold"),
        },
    ]
}

/// Extracts the number following the **unique** occurrence of
/// `"key":` in a machine-written JSON document. Returns `None` when the key
/// is missing, duplicated, or not followed by a number — all of which mean
/// the artifact no longer matches the gate table and must fail loudly.
pub fn extract_number(json: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\"");
    let mut matches = json.match_indices(&needle);
    let (at, _) = matches.next()?;
    if matches.next().is_some() {
        return None;
    }
    let rest = &json[at + needle.len()..];
    let rest = rest.trim_start();
    let rest = rest.strip_prefix(':')?.trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || matches!(c, '-' | '+' | '.' | 'e' | 'E')))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Evaluates one gate against a document's contents.
///
/// # Errors
///
/// Returns a description when the gated key (or its threshold key) cannot
/// be extracted.
pub fn evaluate_gate(spec: &GateSpec, json: &str) -> Result<GateOutcome, String> {
    let value = extract_number(json, spec.key).ok_or_else(|| {
        format!(
            "{}: gate key {:?} missing, duplicated, or non-numeric",
            spec.file, spec.key
        )
    })?;
    let threshold = match spec.threshold {
        Threshold::Fixed(t) => t,
        Threshold::FromKey(key) => extract_number(json, key).ok_or_else(|| {
            format!(
                "{}: threshold key {:?} missing, duplicated, or non-numeric",
                spec.file, key
            )
        })?,
    };
    let passed = value.is_finite()
        && match spec.direction {
            Direction::AtLeast => value >= threshold,
            Direction::AtMost => value <= threshold,
        };
    Ok(GateOutcome {
        spec: *spec,
        value,
        threshold,
        passed,
    })
}

/// Evaluates every default gate against the artifacts in `root`.
///
/// # Errors
///
/// Returns a description for unreadable artifacts or unparseable gate
/// fields (treated as failures by the binary, never skipped).
pub fn run_checks(root: &Path) -> Result<Vec<GateOutcome>, String> {
    let mut outcomes = Vec::new();
    for spec in default_gates() {
        let path = root.join(spec.file);
        let json = std::fs::read_to_string(&path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        outcomes.push(evaluate_gate(&spec, &json)?);
    }
    Ok(outcomes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extracts_numbers_from_machine_json() {
        let json = "{\n  \"a\": {\"speedup\": 5.11, \"acceptance_threshold\": 3.0},\n  \
                    \"neg\": -1.5e-3\n}";
        assert_eq!(extract_number(json, "speedup"), Some(5.11));
        assert_eq!(extract_number(json, "acceptance_threshold"), Some(3.0));
        assert_eq!(extract_number(json, "neg"), Some(-1.5e-3));
        assert_eq!(extract_number(json, "missing"), None);
        // Duplicated keys are ambiguous and must refuse to parse.
        let dup = "{\"x\": 1, \"x\": 2}";
        assert_eq!(extract_number(dup, "x"), None);
        // Non-numeric payloads refuse to parse.
        assert_eq!(extract_number("{\"x\": \"y\"}", "x"), None);
    }

    #[test]
    fn gate_directions_enforced() {
        let spec = GateSpec {
            file: "t.json",
            key: "v",
            direction: Direction::AtLeast,
            threshold: Threshold::Fixed(2.0),
        };
        assert!(evaluate_gate(&spec, "{\"v\": 2.5}").unwrap().passed);
        assert!(!evaluate_gate(&spec, "{\"v\": 1.5}").unwrap().passed);
        let at_most = GateSpec {
            direction: Direction::AtMost,
            ..spec
        };
        assert!(evaluate_gate(&at_most, "{\"v\": 1.5}").unwrap().passed);
        assert!(!evaluate_gate(&at_most, "{\"v\": 2.5}").unwrap().passed);
        // NaN never passes.
        assert!(!evaluate_gate(&spec, "{\"v\": NaN}").is_ok_and(|o| o.passed));
    }

    #[test]
    fn threshold_from_sibling_key() {
        let spec = GateSpec {
            file: "t.json",
            key: "speedup",
            direction: Direction::AtLeast,
            threshold: Threshold::FromKey("acceptance_threshold"),
        };
        let ok = evaluate_gate(&spec, "{\"speedup\": 5.0, \"acceptance_threshold\": 3.0}").unwrap();
        assert!(ok.passed);
        assert_eq!(ok.threshold, 3.0);
        assert!(evaluate_gate(&spec, "{\"speedup\": 5.0}").is_err());
    }

    #[test]
    fn committed_artifacts_pass_all_gates() {
        // The real repository artifacts are themselves the regression
        // baseline: this test is the in-tree mirror of CI's bench_check
        // step.
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let outcomes = run_checks(&root).expect("artifacts readable and parseable");
        assert_eq!(outcomes.len(), default_gates().len());
        for outcome in &outcomes {
            assert!(outcome.passed, "{outcome}");
        }
    }
}

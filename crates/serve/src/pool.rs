//! Reusable request-buffer pools for the zero-allocation hot path.
//!
//! Every [`EmbedService::embed`](crate::EmbedService::embed) call needs an
//! owned copy of the caller's raw sample (the request outlives the caller's
//! borrow once it is queued) and a reply slot to block on. Allocating both
//! per request puts two heap round-trips plus allocator lock traffic on the
//! hottest path in the system; instead the service checks them out of
//! bounded pools and recycles them when the request is answered.
//!
//! Hygiene is structural, not protocol-based: a checked-out buffer rides
//! inside the request object and returns to its pool in `Drop`, so every
//! exit — normal reply, typed error, deadline expiry, batcher panic unwind,
//! shutdown drain — recycles it without any code path having to remember
//! to. Pools are bounded on the *parked* side: returning a buffer to a full
//! pool simply drops it, so a burst can never ratchet idle memory up
//! permanently. [`PoolStats`] exposes the accounting for tests and
//! operators ([`EmbedService::pool_stats`](crate::EmbedService::pool_stats)).

use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Observability snapshot of one buffer pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PoolStats {
    /// Buffers parked in the pool, ready to check out. Never exceeds
    /// `capacity`.
    pub available: usize,
    /// Hard cap on parked buffers; returns beyond it are dropped instead of
    /// parked, so idle pool memory is bounded.
    pub capacity: usize,
    /// Buffers currently checked out (in-flight requests). Returns to zero
    /// when the service quiesces — a persistent residue is a leak.
    pub outstanding: usize,
    /// Fresh buffers ever created — checkouts that found the pool empty.
    /// Flat under steady-state traffic; growing with concurrency bursts.
    pub created: u64,
}

/// A bounded pool of reusable `Vec<f64>` sample buffers.
#[derive(Debug)]
pub(crate) struct BufferPool {
    bufs: Mutex<Vec<Vec<f64>>>,
    capacity: usize,
    outstanding: AtomicUsize,
    created: AtomicU64,
}

impl BufferPool {
    /// Creates a pool that parks at most `capacity` idle buffers. The park
    /// list is pre-reserved so steady-state returns never allocate.
    pub(crate) fn new(capacity: usize) -> Arc<Self> {
        Arc::new(Self {
            bufs: Mutex::new(Vec::with_capacity(capacity)),
            capacity,
            outstanding: AtomicUsize::new(0),
            created: AtomicU64::new(0),
        })
    }

    /// Checks out an empty buffer, reusing a parked one when available.
    pub(crate) fn checkout(self: &Arc<Self>) -> PooledBuf {
        let parked = self.bufs.lock().expect("buffer pool poisoned").pop();
        let vec = parked.unwrap_or_else(|| {
            self.created.fetch_add(1, Ordering::Relaxed);
            Vec::new()
        });
        self.outstanding.fetch_add(1, Ordering::Relaxed);
        debug_assert!(vec.is_empty(), "parked buffers are cleared on return");
        PooledBuf {
            vec,
            pool: Some(Arc::clone(self)),
        }
    }

    fn put(&self, mut vec: Vec<f64>) {
        self.outstanding.fetch_sub(1, Ordering::Relaxed);
        vec.clear();
        let mut bufs = self.bufs.lock().expect("buffer pool poisoned");
        if bufs.len() < self.capacity {
            bufs.push(vec);
        }
        // Over capacity: drop the buffer — bounded idle memory beats a
        // perfect recycle rate after a burst.
    }

    /// Current accounting snapshot.
    pub(crate) fn stats(&self) -> PoolStats {
        PoolStats {
            available: self.bufs.lock().expect("buffer pool poisoned").len(),
            capacity: self.capacity,
            outstanding: self.outstanding.load(Ordering::Relaxed),
            created: self.created.load(Ordering::Relaxed),
        }
    }
}

/// An owned `Vec<f64>` checked out of a [`BufferPool`]; derefs to the
/// vector and returns itself to the pool on drop, whatever path drops it.
#[derive(Debug)]
pub(crate) struct PooledBuf {
    vec: Vec<f64>,
    /// `None` for detached buffers (tests, callers without a pool): those
    /// just drop their vector normally.
    pool: Option<Arc<BufferPool>>,
}

impl PooledBuf {
    /// Wraps a plain vector with no pool attached.
    pub(crate) fn detached(vec: Vec<f64>) -> Self {
        Self { vec, pool: None }
    }
}

impl From<Vec<f64>> for PooledBuf {
    fn from(vec: Vec<f64>) -> Self {
        Self::detached(vec)
    }
}

impl Deref for PooledBuf {
    type Target = Vec<f64>;
    fn deref(&self) -> &Vec<f64> {
        &self.vec
    }
}

impl DerefMut for PooledBuf {
    fn deref_mut(&mut self) -> &mut Vec<f64> {
        &mut self.vec
    }
}

impl Drop for PooledBuf {
    fn drop(&mut self) {
        if let Some(pool) = self.pool.take() {
            pool.put(std::mem::take(&mut self.vec));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checkout_reuses_the_returned_allocation() {
        let pool = BufferPool::new(4);
        let mut buf = pool.checkout();
        buf.extend_from_slice(&[1.0, 2.0, 3.0]);
        let ptr = buf.as_ptr();
        let grown_capacity = buf.capacity();
        assert_eq!(
            pool.stats(),
            PoolStats {
                available: 0,
                capacity: 4,
                outstanding: 1,
                created: 1
            }
        );
        drop(buf);
        assert_eq!(pool.stats().available, 1);
        assert_eq!(pool.stats().outstanding, 0);
        let again = pool.checkout();
        assert!(again.is_empty(), "returned buffers come back cleared");
        assert_eq!(again.capacity(), grown_capacity);
        assert_eq!(again.as_ptr(), ptr, "the allocation itself is reused");
        assert_eq!(pool.stats().created, 1, "no fresh buffer was needed");
    }

    #[test]
    fn parked_buffers_are_capped_at_capacity() {
        let pool = BufferPool::new(2);
        let held: Vec<_> = (0..5).map(|_| pool.checkout()).collect();
        assert_eq!(pool.stats().outstanding, 5);
        assert_eq!(pool.stats().created, 5);
        drop(held);
        let stats = pool.stats();
        assert_eq!(stats.outstanding, 0, "every drop returns its buffer");
        assert_eq!(stats.available, 2, "the pool parks at most `capacity`");
    }

    #[test]
    fn detached_buffers_have_no_pool() {
        let pool = BufferPool::new(2);
        drop(PooledBuf::detached(vec![1.0]));
        assert_eq!(pool.stats().available, 0);
        assert_eq!(pool.stats().outstanding, 0);
        let from: PooledBuf = vec![2.0].into();
        assert_eq!(*from, vec![2.0]);
    }
}

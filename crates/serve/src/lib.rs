//! # enq-serve
//!
//! The **online embedding service** layer of the EnQode reproduction: the
//! paper's offline/online split (Sec. III-C) makes per-sample embedding a
//! nearest-cluster lookup plus a short fine-tune, and this crate turns that
//! primitive into a serving system:
//!
//! * [`ModelRegistry`] — a sharded, read-mostly map from model id to
//!   `Arc<EnqodePipeline>`; lookups are pointer clones, deploys only lock one
//!   shard.
//! * [`SolutionCache`] — an LRU cache keyed by **quantized feature vectors**:
//!   repeated and near-duplicate samples (ubiquitous in production traffic)
//!   skip fine-tuning entirely and are answered with the exact previously
//!   computed solution. The service keeps a second instance as an
//!   **exact-match memo** in front of it, keyed by the raw sample's bit
//!   pattern, so literal repeats also skip feature extraction — the
//!   dominant classical cost of a hit.
//! * [`EmbedService`] — a micro-batching front end: concurrent
//!   [`embed`](EmbedService::embed) calls queue up, are grouped into batches
//!   (bounded by [`ServeConfig::max_batch_size`] and flushed after
//!   [`ServeConfig::flush_deadline`]), deduplicated within the batch, and
//!   fanned out through `enq_parallel`.
//!
//! ## Request lifecycle
//!
//! ```text
//!  embed(id, x) ──► BatchQueue ──► micro-batch ──► registry.get(id)
//!                                      │                │
//!                                      │          exact memo? ──hit──► reply
//!                                      │                │ miss
//!                                      │           extract_features
//!                                      │                │
//!                                      │        quantize ─► cache? ──hit──► reply
//!                                      │                │ miss
//!                                      │        dedup within batch
//!                                      │                │
//!                                      └── enq_parallel fan-out: embed_features
//!                                                       │
//!                                      memo.insert + cache.insert ─► reply
//! ```
//!
//! Determinism: with the cache disabled, serve-layer results are
//! bit-identical to calling [`enqode::EnqodePipeline::embed`] per sample —
//! the batcher changes scheduling, never math. With the cache enabled, a hit
//! returns the exact solution object computed for the first request of its
//! quantization bucket.
//!
//! ## Model lifecycle
//!
//! Serving is only half of a production system; the other half is getting
//! fresh models *back in* without pausing the first half. Three pieces close
//! the loop:
//!
//! * [`TrafficAccumulator`] — every request that pays for feature
//!   extraction records its post-PCA feature vector (and served label) into
//!   a bounded per-model buffer that spills to `ENQB` shards on disk;
//! * [`RebuildController`] — runs the staged [`enqode::StreamDriver`] on a
//!   worker thread with per-stage progress, cooperative cancellation, and a
//!   generation-bumped atomic swap on success (registry untouched on
//!   cancel/error);
//! * [`EmbedService::refresh_from_traffic`] — the one-call loop: snapshot
//!   the traffic shards, retrain clusters + ansatz parameters against the
//!   model's existing PCA basis in the background, swap;
//! * [`Autopilot`] — closes the loop without an operator: a scheduler
//!   thread watches per-model signals (traffic volume, cache-hit-rate
//!   drops, closed-form audit-fidelity decay) and fires
//!   [`EmbedService::refresh_from_traffic_with`] under a deterministic
//!   hysteresis/cooldown/jitter policy ([`RefreshPolicy`]).
//!
//! ## Durability
//!
//! Everything above lives in process memory; `enq_store`'s `ENQM` artifact
//! makes it survive a restart. [`snapshot_registry`] persists every live
//! registration (id, generation, pipeline) to a directory of artifacts, and
//! [`restore_registry`] warm-boots a registry from one — two-phase
//! (decode everything, then adopt), so a corrupt artifact fails the whole
//! restore with the registry untouched. Generations are preserved across
//! the restart and the counter resumes past the restored maximum, keeping
//! cache keys and rebuild bumps monotonic. With
//! [`EmbedService::enable_persistence`], every successful background-rebuild
//! swap also rewrites the model's artifact, so the newest generation is
//! what the next boot restores. The byte format is specified in
//! `docs/FORMATS.md`; restored pipelines embed **bit-identically** to the
//! ones that were persisted.

#![warn(missing_docs)]

mod autopilot;
mod batcher;
mod cache;
mod error;
mod pool;
mod rebuild;
mod registry;
mod service;
mod snapshot;
mod solution;
mod traffic;

pub use autopilot::{
    Autopilot, AutopilotEvent, AutopilotStats, FireReason, RefreshPolicy, SignalSnapshot,
    TriggerState,
};
pub use cache::{quantize_features, CacheConfig, CacheKey, CacheStats, SolutionCache};
pub use error::ServeError;
pub use pool::PoolStats;
pub use rebuild::{RebuildController, RebuildSpec, RebuildStatus, RebuildTicket, StageProgress};
pub use registry::{ModelRegistry, DEFAULT_REGISTRY_SHARDS};
pub use service::{
    AuditReport, EmbedResponse, EmbedService, RefreshOptions, ServeConfig, ServicePoolStats,
    ServiceStats, SolutionSource,
};
pub use snapshot::{restore_registry, snapshot_registry, RestoredModel};
// The artifact error type, re-exported so snapshot/restore callers don't
// need a direct `enq_store` dependency.
pub use enq_store::StoreError;
pub use solution::Solution;
pub use traffic::{
    CorpusWeighting, TrafficAccumulator, TrafficConfig, TrafficCorpus, TrafficShard, TrafficSource,
    TrafficStats,
};

//! # enq-serve
//!
//! The **online embedding service** layer of the EnQode reproduction: the
//! paper's offline/online split (Sec. III-C) makes per-sample embedding a
//! nearest-cluster lookup plus a short fine-tune, and this crate turns that
//! primitive into a serving system:
//!
//! * [`ModelRegistry`] — a sharded, read-mostly map from model id to
//!   `Arc<EnqodePipeline>`; lookups are pointer clones, deploys only lock one
//!   shard.
//! * [`SolutionCache`] — an LRU cache keyed by **quantized feature vectors**:
//!   repeated and near-duplicate samples (ubiquitous in production traffic)
//!   skip fine-tuning entirely and are answered with the exact previously
//!   computed solution. The service keeps a second instance as an
//!   **exact-match memo** in front of it, keyed by the raw sample's bit
//!   pattern, so literal repeats also skip feature extraction — the
//!   dominant classical cost of a hit.
//! * [`EmbedService`] — a micro-batching front end: concurrent
//!   [`embed`](EmbedService::embed) calls queue up, are grouped into batches
//!   (bounded by [`ServeConfig::max_batch_size`] and flushed after
//!   [`ServeConfig::flush_deadline`]), deduplicated within the batch, and
//!   fanned out through `enq_parallel`.
//!
//! ## Request lifecycle
//!
//! ```text
//!  embed(id, x) ──► BatchQueue ──► micro-batch ──► registry.get(id)
//!                                      │                │
//!                                      │          exact memo? ──hit──► reply
//!                                      │                │ miss
//!                                      │           extract_features
//!                                      │                │
//!                                      │        quantize ─► cache? ──hit──► reply
//!                                      │                │ miss
//!                                      │        dedup within batch
//!                                      │                │
//!                                      └── enq_parallel fan-out: embed_features
//!                                                       │
//!                                      memo.insert + cache.insert ─► reply
//! ```
//!
//! Determinism: with the cache disabled, serve-layer results are
//! bit-identical to calling [`enqode::EnqodePipeline::embed`] per sample —
//! the batcher changes scheduling, never math. With the cache enabled, a hit
//! returns the exact solution object computed for the first request of its
//! quantization bucket.

#![warn(missing_docs)]

mod batcher;
mod cache;
mod error;
mod registry;
mod service;
mod solution;

pub use cache::{quantize_features, CacheConfig, CacheKey, CacheStats, SolutionCache};
pub use error::ServeError;
pub use registry::{ModelRegistry, DEFAULT_REGISTRY_SHARDS};
pub use service::{EmbedResponse, EmbedService, ServeConfig, ServiceStats, SolutionSource};
pub use solution::Solution;
